package rex

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// storeBaseTSV connects alice—bob but leaves carol and dave isolated
// from each other, so (carol, dave) only becomes explainable after a
// delta ingests the missing edge.
const storeBaseTSV = `node	alice	person
node	bob	person
node	carol	person
node	dave	person
label	knows	U
edge	alice	bob	knows
`

func newTestStore(t *testing.T, opt Options) *Store {
	t.Helper()
	k, err := ReadKB(strings.NewReader(storeBaseTSV))
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(k, opt)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreApplySwapsGeneration(t *testing.T) {
	st := newTestStore(t, Options{Measure: "size", CacheSize: 16})
	s1 := st.Current()
	if s1.Generation != 1 || st.Generation() != 1 || st.Swaps() != 0 {
		t.Fatalf("initial generation/swaps = %d/%d", s1.Generation, st.Swaps())
	}
	if s1.Fingerprint == "" {
		t.Fatal("empty fingerprint")
	}

	// (carol, dave) has no explanation on generation 1; the empty result
	// is cached on that snapshot.
	res, err := s1.Explainer.Explain("carol", "dave")
	if err != nil || len(res.Explanations) != 0 {
		t.Fatalf("pre-swap (carol, dave): res=%v err=%v, want empty", res, err)
	}
	res, err = s1.Explainer.Explain("carol", "dave")
	if err != nil {
		t.Fatal(err)
	}
	if cs := s1.Explainer.CacheStats(); cs.Hits != 1 {
		t.Fatalf("pre-swap cache hits = %d, want 1", cs.Hits)
	}

	info, err := st.Apply(strings.NewReader("edge\tcarol\tdave\tknows\n"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 2 || info.EdgesAdded != 1 || st.Swaps() != 1 {
		t.Fatalf("swap info = %+v, swaps = %d", info, st.Swaps())
	}
	if info.Fingerprint == s1.Fingerprint {
		t.Error("fingerprint unchanged by mutating delta")
	}
	if info.KB.Edges != 2 {
		t.Errorf("new KB edges = %d, want 2", info.KB.Edges)
	}

	// The new snapshot answers via the ingested edge — and does NOT
	// serve the old snapshot's cached empty result.
	s2 := st.Current()
	if s2.Generation != 2 {
		t.Fatalf("generation = %d, want 2", s2.Generation)
	}
	res, err = s2.Explainer.Explain("carol", "dave")
	if err != nil || len(res.Explanations) == 0 {
		t.Fatalf("post-swap (carol, dave): res=%v err=%v, want an explanation", res, err)
	}
	if cs := s2.Explainer.CacheStats(); cs.Hits != 0 || cs.Misses != 1 {
		t.Errorf("post-swap cache = %+v, want a fresh cache (0 hits, 1 miss)", cs)
	}

	// The pinned old snapshot still serves its own frozen view.
	res, err = s1.Explainer.Explain("carol", "dave")
	if err != nil || len(res.Explanations) != 0 {
		t.Fatalf("pinned old snapshot: res=%v err=%v, want empty", res, err)
	}
}

func TestStoreApplyErrorsLeaveStoreUntouched(t *testing.T) {
	st := newTestStore(t, Options{Measure: "size"})
	fp := st.Current().Fingerprint
	cases := []string{
		"",                             // empty delta
		"edge\tghost\tbob\tknows\n",    // unknown node
		"garbage\tline\n",              // parse error
		"label\tknows\tD\n",            // directedness conflict
		"node\tonly\tnode\nnosuch\t\n", // parse error after a valid record
	}
	for _, src := range cases {
		if _, err := st.Apply(strings.NewReader(src)); err == nil {
			t.Errorf("Apply(%q) succeeded, want error", src)
		}
	}
	if st.Generation() != 1 || st.Swaps() != 0 || st.Current().Fingerprint != fp {
		t.Error("failed applies disturbed the active snapshot")
	}

	// A redelivered no-op delta succeeds but publishes nothing: same
	// generation, same snapshot, warm cache intact.
	info, err := st.Apply(strings.NewReader("edge\talice\tbob\tknows\n"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 1 || info.EdgesAdded != 0 || st.Swaps() != 0 {
		t.Errorf("no-op delta swapped: %+v, swaps %d", info, st.Swaps())
	}
}

// TestStoreErrorPathsPreserveState pins down the all-or-nothing
// contract in full: a failed Apply or ReloadFrom leaves the generation,
// the fingerprint, every LiveStats counter and the warm result cache
// exactly as they were — the failed attempt is invisible to readers.
func TestStoreErrorPathsPreserveState(t *testing.T) {
	st := newTestStore(t, Options{Measure: "size", CacheSize: 16})
	// One successful swap first, so the counters have non-trivial values
	// a buggy error path could disturb.
	if _, err := st.Apply(strings.NewReader("edge\tcarol\tdave\tknows\n")); err != nil {
		t.Fatal(err)
	}
	snap := st.Current()
	// Warm the cache on the active snapshot.
	if _, err := snap.Explainer.Explain("carol", "dave"); err != nil {
		t.Fatal(err)
	}
	before := st.LiveStats()
	cacheBefore := snap.Explainer.CacheStats()
	gen, fp := st.Generation(), snap.Fingerprint

	if _, err := st.Apply(strings.NewReader("edge\tghost\tnobody\tknows\n")); err == nil {
		t.Fatal("bad delta accepted")
	}
	if _, err := st.ReloadFrom(filepath.Join(t.TempDir(), "missing.tsv")); err == nil {
		t.Fatal("reload from missing file succeeded")
	}
	// A file that exists but fails to parse exercises the later error
	// branch of ReloadFrom.
	bad := filepath.Join(t.TempDir(), "bad.tsv")
	if err := os.WriteFile(bad, []byte("not\ta\tvalid\tkb\tline\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReloadFrom(bad); err == nil {
		t.Fatal("reload of malformed file succeeded")
	}

	if st.Generation() != gen || st.Current().Fingerprint != fp {
		t.Fatalf("error paths moved the snapshot: (gen %d, %s), want (gen %d, %s)",
			st.Generation(), st.Current().Fingerprint, gen, fp)
	}
	if after := st.LiveStats(); after != before {
		t.Fatalf("error paths disturbed LiveStats: %+v, want %+v", after, before)
	}
	// The warm cache still serves: same snapshot, one more hit.
	cur := st.Current()
	if _, err := cur.Explainer.Explain("carol", "dave"); err != nil {
		t.Fatal(err)
	}
	cacheAfter := cur.Explainer.CacheStats()
	if cacheAfter.Hits != cacheBefore.Hits+1 || cacheAfter.Entries != cacheBefore.Entries {
		t.Fatalf("cache disturbed by error paths: %+v -> %+v, want one more hit on the same entries",
			cacheBefore, cacheAfter)
	}
}

func TestStoreReloadFrom(t *testing.T) {
	st := newTestStore(t, Options{Measure: "size"})

	// Apply a delta, then reload from a file holding the original KB:
	// the generation keeps rising, the content returns to the original.
	fp1 := st.Current().Fingerprint
	if _, err := st.Apply(strings.NewReader("edge\tcarol\tdave\tknows\n")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "kb.tsv")
	if err := os.WriteFile(path, []byte(storeBaseTSV), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := st.ReloadFrom(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 3 || st.Swaps() != 2 {
		t.Fatalf("generation/swaps after reload = %d/%d, want 3/2", info.Generation, st.Swaps())
	}
	if info.Fingerprint != fp1 {
		t.Errorf("reloaded fingerprint %s != original %s", info.Fingerprint, fp1)
	}
	if info.NodesAdded != 0 || info.EdgesAdded != 0 {
		t.Errorf("reload reported delta counts: %+v", info)
	}

	if _, err := st.ReloadFrom(filepath.Join(t.TempDir(), "missing.tsv")); err == nil {
		t.Error("reload from missing file succeeded")
	}
	if st.Generation() != 3 {
		t.Error("failed reload bumped the generation")
	}
}

func TestOpenStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.tsv")
	if err := os.WriteFile(path, []byte(storeBaseTSV), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(path, Options{Measure: "size"})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Current().KB.Stats().Nodes; got != 4 {
		t.Errorf("nodes = %d, want 4", got)
	}
	if _, err := OpenStore(filepath.Join(t.TempDir(), "missing.tsv"), Options{}); err == nil {
		t.Error("OpenStore of missing file succeeded")
	}
	if _, err := NewStore(nil, Options{}); err == nil {
		t.Error("NewStore(nil) succeeded")
	}
	k, _ := ReadKB(strings.NewReader(storeBaseTSV))
	if _, err := NewStore(k, Options{Measure: "nope"}); err == nil {
		t.Error("invalid options accepted")
	}
}

// ApplyAt is the conditional (compare-and-swap) apply the sync engine
// replays peer WAL records through: at the expected generation it
// behaves like Apply, at any other it must refuse without mutating.
func TestStoreApplyAtGenerationConflict(t *testing.T) {
	st := newTestStore(t, Options{Measure: "size", CacheSize: 16})

	info, err := st.ApplyAt(strings.NewReader("edge\tcarol\tdave\tknows\n"), 2)
	if err != nil || info.Generation != 2 {
		t.Fatalf("ApplyAt(2): gen=%d err=%v, want 2/nil", info.Generation, err)
	}
	fp := st.Current().Fingerprint

	// Replaying the same record at the now-stale expectation must hit
	// the conflict sentinel and leave the store untouched — this is the
	// double-apply the unconditional path could not prevent.
	if _, err := st.ApplyAt(strings.NewReader("edge\tcarol\tdave\tknows\n"), 2); !errors.Is(err, ErrGenerationConflict) {
		t.Fatalf("ApplyAt at stale generation: err=%v, want ErrGenerationConflict", err)
	}
	if _, err := st.ApplyAt(strings.NewReader("edge\tbob\tcarol\tknows\n"), 4); !errors.Is(err, ErrGenerationConflict) {
		t.Fatalf("ApplyAt past the next generation: err=%v, want ErrGenerationConflict", err)
	}
	if got := st.Current(); got.Generation != 2 || got.Fingerprint != fp {
		t.Fatalf("store mutated by refused ApplyAt: gen=%d fp=%s", got.Generation, got.Fingerprint)
	}

	if _, err := st.ApplyAt(strings.NewReader("edge\tbob\tcarol\tknows\n"), 3); err != nil {
		t.Fatalf("ApplyAt(3): %v", err)
	}
	if got := st.Generation(); got != 3 {
		t.Fatalf("generation = %d, want 3", got)
	}
}
