package rex

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"rex/internal/obs"
)

// flightGroup deduplicates concurrent identical queries: when several
// goroutines ask for the same (pair, budget) key at once — duplicate
// pairs in one BatchExplain, a hot pair under serving traffic — exactly
// one leader computes and every follower receives the leader's shared,
// read-only *Result. Unlike a cache this holds no completed results:
// an entry exists only while its computation is in flight, so memory is
// bounded by concurrency and the semantics compose with (but do not
// require) the result cache.
//
// Each Explainer owns one group (shared by the shallow engine copies
// BatchExplain makes), so a key fully identifies the computation: the
// options dimension is the group's identity, exactly like the cache.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall

	// deduped counts follower joins (queries answered by another
	// in-flight computation); computes counts leader executions.
	// Surfaced via CacheStats.
	deduped  atomic.Uint64
	computes atomic.Uint64
}

// flightCall is one in-flight computation. res and err are written by
// the leader before done is closed and read by followers only after.
type flightCall struct {
	done    chan struct{}
	waiters int // leader + followers currently sharing the call
	res     *Result
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do returns the result of fn for key, coalescing concurrent duplicate
// calls onto one execution. A follower whose own context expires stops
// waiting and returns its ctx error; the leader keeps computing for the
// remaining followers. When the leader itself fails with a context
// error (its deadline, not the followers'), followers retry rather than
// inherit a cancellation that was never theirs.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*Result, error)) (*Result, error) {
	for {
		g.mu.Lock()
		if c, ok := g.calls[key]; ok {
			c.waiters++
			g.mu.Unlock()
			g.deduped.Add(1)
			obs.FromContext(ctx).MarkDeduped()
			select {
			case <-c.done:
				if c.err != nil && (errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)) {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					continue // the leader's cancellation, not ours: retry
				}
				return c.res, c.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		c := &flightCall{done: make(chan struct{}), waiters: 1}
		g.calls[key] = c
		g.mu.Unlock()
		g.computes.Add(1)
		// Cleanup is deferred so a panicking computation (recovered by
		// net/http's serve loop, say) still unregisters the call and
		// releases its followers — otherwise the key would be poisoned
		// forever, every future query for it blocking on a done channel
		// nobody will close. The panic itself propagates to the leader;
		// followers receive errFlightAborted (not a context error, so
		// they do not retry a computation that just crashed).
		completed := false
		func() {
			defer func() {
				if !completed {
					c.res, c.err = nil, errFlightAborted
				}
				g.mu.Lock()
				delete(g.calls, key)
				g.mu.Unlock()
				close(c.done)
			}()
			c.res, c.err = fn()
			completed = true
		}()
		return c.res, c.err
	}
}

// errFlightAborted is delivered to followers whose leader's computation
// panicked: the call completed abnormally, so there is no result to
// share and no point re-running it.
var errFlightAborted = errors.New("rex: coalesced query computation aborted")

// totalWaiters reports the number of goroutines currently sharing any
// in-flight computation (leaders included); tests use it to know every
// expected caller has arrived before releasing a blocked leader.
func (g *flightGroup) totalWaiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, c := range g.calls {
		n += c.waiters
	}
	return n
}
