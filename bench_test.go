package rex

// Benchmarks mirroring every figure and table of the paper's evaluation
// (Section 5), plus micro-benchmarks for the load-bearing primitives.
// The experiment harness behind `cmd/rexbench` produces the full
// tables; these testing.B benchmarks pin the same code paths into
// `go test -bench` so regressions surface in ordinary development.
//
// Workloads are built once per process at a reduced scale so the whole
// suite completes on a single core; rexbench regenerates the figures at
// full workload size.

import (
	"context"
	"strings"
	"sync"
	"testing"

	"rex/internal/enumerate"
	"rex/internal/harness"
	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/match"
	"rex/internal/measure"
	"rex/internal/pattern"
	"rex/internal/rank"
	"rex/internal/relstore"
	"rex/internal/study"
)

var (
	benchOnce sync.Once
	benchEnv  *harness.Env
	benchRep  map[kb.ConnBucket]kbgen.Pair // one representative pair per bucket
)

func benchSetup(b *testing.B) (*harness.Env, map[kb.ConnBucket]kbgen.Pair) {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv = harness.NewEnv(harness.EnvOptions{
			Scale: 0.5, Seed: 42, PerBucket: 3, GlobalSamples: 10,
		})
		benchRep = map[kb.ConnBucket]kbgen.Pair{}
		for _, bu := range harness.Buckets() {
			ps := benchEnv.PairsIn(bu)
			if len(ps) > 0 {
				benchRep[bu] = ps[0]
			}
		}
	})
	return benchEnv, benchRep
}

var benchCfg = enumerate.Config{
	MaxPatternSize: 5,
	PathAlg:        enumerate.PathPrioritized,
	UnionAlg:       enumerate.UnionPrune,
}

// BenchmarkFig7Enumeration covers Figure 7: the enumeration algorithm
// combinations per connectedness bucket. The NaiveEnum baseline runs
// only on the low bucket — on denser pairs a single iteration takes tens
// of seconds, which is the paper's point but not a useful benchmark.
func BenchmarkFig7Enumeration(b *testing.B) {
	env, rep := benchSetup(b)
	for _, combo := range harness.Fig7Combos() {
		for _, bucket := range harness.Buckets() {
			if combo.Naive && bucket != kb.ConnLow {
				continue
			}
			p, ok := rep[bucket]
			if !ok {
				continue
			}
			b.Run(combo.Name+"/"+bucket.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if combo.Naive {
						enumerate.NaiveEnum(env.G, p.Start, p.End, 5)
					} else {
						enumerate.Explanations(env.G, p.Start, p.End, enumerate.Config{
							MaxPatternSize: 5, PathAlg: combo.Path, UnionAlg: combo.Union,
						})
					}
				}
			})
		}
	}
}

// BenchmarkFig8Scaling covers Figure 8: enumeration cost on the densest
// workload pair with the best algorithms (time per enumerated instance
// is the figure's slope).
func BenchmarkFig8Scaling(b *testing.B) {
	env, rep := benchSetup(b)
	p, ok := rep[kb.ConnHigh]
	if !ok {
		b.Skip("no high-connectedness pair at bench scale")
	}
	instances := 0
	for _, ex := range enumerate.Explanations(env.G, p.Start, p.End, benchCfg) {
		instances += len(ex.Instances)
	}
	b.ReportMetric(float64(instances), "instances")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enumerate.Explanations(env.G, p.Start, p.End, benchCfg)
	}
}

// BenchmarkFig9TopK covers Figure 9: full enumerate-then-rank vs the
// interleaved top-10 pruning for monocount.
func BenchmarkFig9TopK(b *testing.B) {
	env, rep := benchSetup(b)
	p, ok := rep[kb.ConnMedium]
	if !ok {
		b.Skip("no medium pair at bench scale")
	}
	ctx := &measure.Context{G: env.G, Start: p.Start, End: p.End}
	m := measure.Monocount{}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			es := enumerate.Explanations(env.G, p.Start, p.End, benchCfg)
			rank.General(ctx, es, m, 10)
		}
	})
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rank.TopKAntiMonotone(env.G, p.Start, p.End, benchCfg, ctx, m, 10)
		}
	})
}

// BenchmarkFig10KSweep covers Figure 10: pruned ranking cost versus k.
func BenchmarkFig10KSweep(b *testing.B) {
	env, rep := benchSetup(b)
	p, ok := rep[kb.ConnMedium]
	if !ok {
		b.Skip("no medium pair at bench scale")
	}
	ctx := &measure.Context{G: env.G, Start: p.Start, End: p.End}
	m := measure.Monocount{}
	for _, k := range []int{1, 10, 100} {
		b.Run(benchName("k", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rank.TopKAntiMonotone(env.G, p.Start, p.End, benchCfg, ctx, m, k)
			}
		})
	}
}

// BenchmarkFig11Distributional covers Figure 11: the four distributional
// ranking scenarios.
func BenchmarkFig11Distributional(b *testing.B) {
	env, rep := benchSetup(b)
	p, ok := rep[kb.ConnMedium]
	if !ok {
		b.Skip("no medium pair at bench scale")
	}
	es := enumerate.Explanations(env.G, p.Start, p.End, benchCfg)
	ctx := &measure.Context{
		G: env.G, Start: p.Start, End: p.End,
		SampleStarts: measure.SampleStartsOfType(
			env.G, env.G.Node(p.Start).Type, env.Opt.GlobalSamples, env.Opt.Seed),
	}
	local := measure.LocalPosition{}
	global := measure.GlobalPosition{}
	b.Run("local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rank.General(ctx, es, local, 10)
		}
	})
	b.Run("local-prune", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rank.TopKDistributional(ctx, es, local, 10)
		}
	})
	b.Run("global", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rank.General(ctx, es, global, 10)
		}
	})
	b.Run("global-prune", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rank.TopKDistributional(ctx, es, global, 10)
		}
	})
}

// BenchmarkTable1Effectiveness covers Table 1's inner loop: ranking and
// judging one pair under one measure (size+local-dist, the winner).
func BenchmarkTable1Effectiveness(b *testing.B) {
	g := kbgen.Sample()
	s := g.NodeByName("brad_pitt")
	e := g.NodeByName("angelina_jolie")
	es := enumerate.Explanations(g, s, e, benchCfg)
	ctx := &measure.Context{G: g, Start: s, End: e}
	panel := study.NewPanel(g, s, e, es, 10, 42)
	m := measure.Combined{Primary: measure.Size{}, Secondary: measure.LocalPosition{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranked := rank.General(ctx, es, m, 10)
		judged := make([]study.Judged, len(ranked))
		for j, r := range ranked {
			judged[j] = panel.Judge(r.Ex)
		}
		study.DCG(judged, 10)
	}
}

// --- Micro-benchmarks for the primitives behind the figures. ---

func samplePatterns(b *testing.B) (*kb.Graph, []*pattern.Explanation, kb.NodeID, kb.NodeID) {
	b.Helper()
	g := kbgen.Sample()
	s := g.NodeByName("brad_pitt")
	e := g.NodeByName("angelina_jolie")
	return g, enumerate.Explanations(g, s, e, benchCfg), s, e
}

func BenchmarkCanonicalKey(b *testing.B) {
	g, es, _, _ := samplePatterns(b)
	_ = g
	// Rebuild patterns each round so the key cache cannot amortise.
	edges := make([][]pattern.Edge, len(es))
	ns := make([]int, len(es))
	for i, ex := range es {
		edges[i] = append([]pattern.Edge{}, ex.P.Edges()...)
		ns[i] = ex.P.NumVars()
	}
	sch := es[0].P.Schema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pattern.MustNew(sch, ns[i%len(ns)], edges[i%len(edges)])
		_ = p.CanonicalKey()
	}
}

// BenchmarkPatternKey measures the interned 64-bit key on fresh
// patterns: the full dedup cost the union and rank layers now pay per
// candidate pattern.
func BenchmarkPatternKey(b *testing.B) {
	_, es, _, _ := samplePatterns(b)
	edges := make([][]pattern.Edge, len(es))
	ns := make([]int, len(es))
	for i, ex := range es {
		edges[i] = append([]pattern.Edge{}, ex.P.Edges()...)
		ns[i] = ex.P.NumVars()
	}
	sch := es[0].P.Schema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pattern.MustNew(sch, ns[i%len(ns)], edges[i%len(edges)])
		_ = p.Key()
	}
}

func BenchmarkMerge(b *testing.B) {
	_, es, _, _ := samplePatterns(b)
	var re1, re2 *pattern.Explanation
	for _, ex := range es {
		if ex.P.IsPath() && ex.P.NumVars() == 3 {
			if re1 == nil {
				re1 = ex
			} else if re2 == nil {
				re2 = ex
			}
		}
	}
	if re1 == nil || re2 == nil {
		b.Skip("need two 3-variable paths")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pattern.Merge(re1, re2, 5)
	}
}

// BenchmarkMatchCount is the alloc-regression benchmark for the pooled
// matcher's steady-state Count path (the hot operation behind every
// aggregate and distributional measure). The committed BENCH_seed.json
// baseline recorded 15 allocs/op before pooling; steady state is now
// allocation-free.
func BenchmarkMatchCount(b *testing.B) {
	g, es, s, e := samplePatterns(b)
	p := es[len(es)-1].P // the largest pattern
	match.Count(g, p, s, e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		match.Count(g, p, s, e)
	}
}

func BenchmarkMatcherFreeEnd(b *testing.B) {
	g, es, s, _ := samplePatterns(b)
	p := es[0].P
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		match.CountByEnd(g, p, s)
	}
}

func BenchmarkRelstoreGroupCounts(b *testing.B) {
	g, es, s, _ := samplePatterns(b)
	st := relstore.FromGraph(g)
	q := relstore.Compile(g, es[0].P, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.GroupCounts(q)
	}
}

func BenchmarkConnectedness(b *testing.B) {
	env, rep := benchSetup(b)
	p, ok := rep[kb.ConnHigh]
	if !ok {
		b.Skip("no high pair")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.G.Connectedness(p.Start, p.End, 4, -1)
	}
}

func BenchmarkKBGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		kbgen.Generate(kbgen.Options{Scale: 0.25, Seed: int64(i)})
	}
}

// --- Concurrency and caching benchmarks for the serving-layer path. ---

// benchBatchPairs draws the bucketed workload as name pairs for the
// batch benchmarks.
func benchBatchPairs(b *testing.B, env *harness.Env) []Pair {
	b.Helper()
	var pairs []Pair
	for _, bu := range harness.Buckets() {
		for _, p := range env.PairsIn(bu) {
			pairs = append(pairs, Pair{
				Start: env.G.NodeName(p.Start),
				End:   env.G.NodeName(p.End),
			})
		}
	}
	if len(pairs) == 0 {
		b.Skip("no workload pairs at bench scale")
	}
	return pairs
}

// BenchmarkBatchExplain measures batch throughput serial vs fanned out
// over the worker pool: the parallel/serial ratio is the speedup the
// concurrent serving layer buys on multi-core hardware. Enumeration is
// pinned serial (Parallelism: 1) so the ratio isolates the pair-level
// fan-out, and caching is off so every pair pays full query cost.
func BenchmarkBatchExplain(b *testing.B) {
	env, _ := benchSetup(b)
	kbv := &KB{g: env.G}
	ex, err := NewExplainer(kbv, Options{Measure: "size+monocount", TopK: 10, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	pairs := benchBatchPairs(b, env)
	ctx := context.Background()
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := ex.BatchExplain(ctx, pairs, BatchOptions{Concurrency: bench.workers})
				for _, br := range out {
					if br.Err != nil {
						b.Fatal(br.Err)
					}
				}
			}
			b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkExplainCache measures the cold query path against the LRU hit
// path that the serving layer rides on repeated traffic.
func BenchmarkExplainCache(b *testing.B) {
	kbv := SampleKB()
	cold, err := NewExplainer(kbv, Options{Measure: "size+local-dist", TopK: 10})
	if err != nil {
		b.Fatal(err)
	}
	hot, err := NewExplainer(kbv, Options{Measure: "size+local-dist", TopK: 10, CacheSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := hot.Explain("kate_winslet", "leonardo_dicaprio"); err != nil {
		b.Fatal(err) // prime the cache
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cold.Explain("kate_winslet", "leonardo_dicaprio"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hot.Explain("kate_winslet", "leonardo_dicaprio"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEnumerationWorkers measures the prioritized enumerator's
// worker-pool scaling on the densest workload pair.
func BenchmarkEnumerationWorkers(b *testing.B) {
	env, rep := benchSetup(b)
	p, ok := rep[kb.ConnHigh]
	if !ok {
		b.Skip("no high-connectedness pair at bench scale")
	}
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "gomaxprocs"
		}
		cfg := benchCfg
		cfg.Workers = workers
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				enumerate.Explanations(env.G, p.Start, p.End, cfg)
			}
		})
	}
}

// BenchmarkExplain is the end-to-end wall-time benchmark: one uncached
// query under the paper's default measure, through enumeration, the
// shared-computation evaluator and ranking.
func BenchmarkExplain(b *testing.B) {
	kbv := SampleKB()
	ex, err := NewExplainer(kbv, Options{Measure: "size+local-dist", TopK: 10})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Explain("kate_winslet", "leonardo_dicaprio"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreApplyDelta is the write-path benchmark: one small
// localized delta applied and hot-swapped through a live store per
// iteration — O(delta) overlay build, explainer construction and cache
// carry-over included. Each iteration's delta attaches a fresh chain of
// entities under one label, so successive applies stack overlay
// generations and periodically exercise compaction.
func BenchmarkStoreApplyDelta(b *testing.B) {
	st, err := NewStore(SampleKB(), Options{Measure: "size", TopK: 10, CacheSize: 128})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Current().Explainer.Explain("kate_winslet", "leonardo_dicaprio"); err != nil {
		b.Fatal(err) // something warm to carry across every swap
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta := "label\tbench_ingest\tU\n" +
			"node\t" + benchName("bench_node", i) + "\tconcept\n" +
			"edge\tkate_winslet\t" + benchName("bench_node", i) + "\tbench_ingest\n"
		if _, err := st.Apply(strings.NewReader(delta)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, k int) string {
	const digits = "0123456789"
	if k == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for k > 0 {
		i--
		buf[i] = digits[k%10]
		k /= 10
	}
	return prefix + "=" + string(buf[i:])
}
