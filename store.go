package rex

import (
	"fmt"
	"io"

	"rex/internal/kb"
	"rex/internal/live"
)

// Store is a live knowledge base: it owns a sequence of versioned,
// immutable (KB, Explainer, result cache) snapshots and hot-swaps the
// active one under traffic. Readers pin a snapshot with Current — a
// single lock-free atomic load — and keep using it for the rest of
// their request even while Apply or ReloadFrom publishes a newer
// generation. Because every generation gets a freshly built Explainer
// (and therefore a fresh result cache), swap-time cache invalidation is
// automatic: a stale answer computed on an old graph can never be
// served for a new one.
//
// Writers are serialised internally; Apply and ReloadFrom may be called
// concurrently with any number of readers.
type Store struct {
	mgr *live.Manager
	opt Options
}

// storePayload is the per-snapshot serving state the live manager
// builds for every published graph.
type storePayload struct {
	kb *KB
	ex *Explainer
}

// StoreSnapshot is one pinned knowledge-base version. The KB and
// Explainer are immutable and safe for concurrent use; Generation and
// Fingerprint identify the version for logging and response metadata.
type StoreSnapshot struct {
	KB          *KB
	Explainer   *Explainer
	Generation  uint64
	Fingerprint string
}

// SwapInfo describes one completed snapshot swap.
type SwapInfo struct {
	// Generation and Fingerprint identify the newly active version.
	Generation  uint64
	Fingerprint string
	// KB summarises the new graph.
	KB Stats
	// Effective mutation counts; all zero for ReloadFrom, which
	// replaces the graph wholesale.
	NodesAdded, LabelsAdded, EdgesAdded, EdgesRemoved, TypesSet int
}

// NewStore builds a live store serving k as generation 1. The options
// configure the Explainer built for every snapshot (including the
// per-snapshot result cache via Options.CacheSize) and are validated
// here, so a store that constructs successfully can always swap. The
// store takes ownership of k's graph: callers must not mutate k after
// construction.
func NewStore(k *KB, opt Options) (*Store, error) {
	if k == nil {
		return nil, fmt.Errorf("rex: NewStore: nil KB")
	}
	build := func(g *kb.Graph) (any, error) {
		snapKB := &KB{g: g}
		ex, err := NewExplainer(snapKB, opt)
		if err != nil {
			return nil, err
		}
		return &storePayload{kb: snapKB, ex: ex}, nil
	}
	mgr, err := live.NewManager(k.g, build)
	if err != nil {
		return nil, err
	}
	return &Store{mgr: mgr, opt: opt}, nil
}

// OpenStore loads a knowledge base from a file (see LoadKB) and builds
// a live store over it.
func OpenStore(path string, opt Options) (*Store, error) {
	k, err := LoadKB(path)
	if err != nil {
		return nil, err
	}
	return NewStore(k, opt)
}

// Current pins the active snapshot. The result stays valid and
// immutable for as long as the caller holds it, regardless of later
// swaps.
func (s *Store) Current() StoreSnapshot {
	return snapshotOf(s.mgr.Current())
}

func snapshotOf(sn *live.Snapshot) StoreSnapshot {
	p := sn.Payload.(*storePayload)
	return StoreSnapshot{
		KB:          p.kb,
		Explainer:   p.ex,
		Generation:  sn.Generation,
		Fingerprint: sn.Fingerprint,
	}
}

// Generation returns the active snapshot's generation (1 at
// construction, +1 per swap).
func (s *Store) Generation() uint64 { return s.mgr.Generation() }

// Swaps returns the number of completed snapshot swaps.
func (s *Store) Swaps() uint64 { return s.mgr.Swaps() }

// Apply streams a mutation log in the delta wire format (the TSV record
// syntax plus settype/deledge records, see internal/live), replays it
// onto the current graph and atomically publishes the result as the
// next generation. Application is all-or-nothing: on any parse or
// apply error the active snapshot is unchanged. A delta whose records
// are all no-ops changes nothing and publishes nothing — the returned
// SwapInfo then reports the unchanged current generation, keeping
// at-least-once delta delivery idempotent instead of flushing the warm
// cache. In-flight readers keep their pinned snapshot; only requests
// that call Current after Apply returns see the new version.
func (s *Store) Apply(r io.Reader) (SwapInfo, error) {
	d, err := live.ParseDelta(r)
	if err != nil {
		return SwapInfo{}, err
	}
	snap, st, err := s.mgr.ApplyDelta(d)
	if err != nil {
		return SwapInfo{}, err
	}
	info := s.swapInfo(snap)
	info.NodesAdded = st.NodesAdded
	info.LabelsAdded = st.LabelsAdded
	info.EdgesAdded = st.EdgesAdded
	info.EdgesRemoved = st.EdgesRemoved
	info.TypesSet = st.TypesSet
	return info, nil
}

// ReloadFrom re-reads a knowledge base from disk (see LoadKB) and
// publishes it wholesale as the next generation — the recovery path
// when the delta stream and the authoritative file have diverged.
func (s *Store) ReloadFrom(path string) (SwapInfo, error) {
	k, err := LoadKB(path)
	if err != nil {
		return SwapInfo{}, err
	}
	snap, err := s.mgr.SwapGraph(k.g)
	if err != nil {
		return SwapInfo{}, err
	}
	return s.swapInfo(snap), nil
}

func (s *Store) swapInfo(sn *live.Snapshot) SwapInfo {
	ss := snapshotOf(sn)
	return SwapInfo{
		Generation:  ss.Generation,
		Fingerprint: ss.Fingerprint,
		KB:          ss.KB.Stats(),
	}
}
