package rex

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"rex/internal/kb"
	"rex/internal/live"
	"rex/internal/measure"
)

// Store is a live knowledge base: it owns a sequence of versioned,
// immutable (KB, Explainer, result cache) snapshots and hot-swaps the
// active one under traffic. Readers pin a snapshot with Current — a
// single lock-free atomic load — and keep using it for the rest of
// their request even while Apply or ReloadFrom publishes a newer
// generation. Because every generation gets a freshly built Explainer
// (and therefore a fresh result cache), swap-time cache invalidation is
// automatic: a stale answer computed on an old graph can never be
// served for a new one.
//
// Writers are serialised internally; Apply and ReloadFrom may be called
// concurrently with any number of readers.
type Store struct {
	mgr *live.Manager
	opt Options

	// journal is the durability sidecar (WAL + checkpoints), nil unless
	// Options.Durability.Dir was set. Appends and checkpoints run on the
	// manager-serialised write path; ckptFailures counts checkpoints
	// that failed after their delta was already durable in the WAL
	// (non-fatal: the next swap retries, recovery replays the longer
	// WAL tail).
	journal      *live.Journal
	ckptFailures atomic.Uint64

	// Carry-over effectiveness counters, cumulative across swaps.
	resultsCarried atomic.Uint64
	resultsDropped atomic.Uint64
	// promosRetired accumulates the memo-promotion counts of evaluators
	// as their generation is replaced, so LiveStats can report a running
	// total without keeping retired evaluators alive.
	promosRetired atomic.Uint64

	// onSwap, when set via OnSwap, is invoked after every successful
	// swap (Apply or ReloadFrom) with the completed SwapInfo.
	onSwap atomic.Pointer[func(SwapInfo)]
}

// OnSwap registers fn to be called after every successful swap, with
// the same SwapInfo the mutating call returns. One hook is kept (the
// last registration wins); pass nil to clear it. The hook runs on the
// mutating goroutine after the new generation is published, so it must
// be fast and must not call back into the store's write path. The
// serving tier uses it to feed swap-latency metrics.
func (s *Store) OnSwap(fn func(SwapInfo)) {
	if fn == nil {
		s.onSwap.Store(nil)
		return
	}
	s.onSwap.Store(&fn)
}

// notifySwap invokes the OnSwap hook, if any.
func (s *Store) notifySwap(info SwapInfo) {
	if fn := s.onSwap.Load(); fn != nil {
		(*fn)(info)
	}
}

// storePayload is the per-snapshot serving state the live manager
// builds for every published graph.
type storePayload struct {
	kb *KB
	ex *Explainer
	// carried and dropped count the previous generation's cached results
	// that survived into (or were invalidated out of) this snapshot's
	// cache at build time.
	carried, dropped int
}

// StoreSnapshot is one pinned knowledge-base version. The KB and
// Explainer are immutable and safe for concurrent use; Generation and
// Fingerprint identify the version for logging and response metadata.
type StoreSnapshot struct {
	KB          *KB
	Explainer   *Explainer
	Generation  uint64
	Fingerprint string
}

// SwapInfo describes one completed snapshot swap.
type SwapInfo struct {
	// Generation and Fingerprint identify the newly active version.
	Generation  uint64
	Fingerprint string
	// KB summarises the new graph.
	KB Stats
	// Effective mutation counts; all zero for ReloadFrom, which
	// replaces the graph wholesale.
	NodesAdded, LabelsAdded, EdgesAdded, EdgesRemoved, TypesSet int
	// Overlay reports the new generation was built as an O(delta)
	// overlay; Compacted that the overlay chain was folded into fresh
	// CSR arrays during this swap; OverlayDepth the published
	// generation's overlay depth.
	Overlay      bool
	Compacted    bool
	OverlayDepth int
	// ResultsCarried and ResultsDropped count the previous generation's
	// cached results that survived into, or were invalidated out of, the
	// new snapshot's cache.
	ResultsCarried, ResultsDropped int
	// Elapsed is the wall time of the whole mutating call: parse (or
	// load), graph build, payload build (cache carry, evaluator), and
	// publication.
	Elapsed time.Duration
}

// NewStore builds a live store serving k as generation 1. The options
// configure the Explainer built for every snapshot (including the
// per-snapshot result cache via Options.CacheSize) and are validated
// here, so a store that constructs successfully can always swap. The
// store takes ownership of k's graph: callers must not mutate k after
// construction.
//
// With Options.Durability.Dir set the store is crash-safe: if the
// directory already holds a journal, its recovered state (newest valid
// checkpoint plus WAL tail) replaces k entirely and the generation
// sequence resumes where the previous process stopped; a fresh
// directory is seeded with a checkpoint of k so the WAL always has a
// replay base. Call Close when done with a durable store.
func NewStore(k *KB, opt Options) (*Store, error) {
	if k == nil {
		return nil, fmt.Errorf("rex: NewStore: nil KB")
	}
	s := &Store{opt: opt}
	build := func(g *kb.Graph, prev *live.Snapshot, cs *live.ChangeSet) (any, error) {
		snapKB := &KB{g: g}
		var prevPay *storePayload
		if prev != nil {
			prevPay = prev.Payload.(*storePayload)
		}
		// Evaluator memo carry is sound under the label rule alone:
		// match counting reads exactly the edges whose labels the
		// pattern mentions, and never entity types, so the per-lookup
		// untouched-label test in measure covers every delta — including
		// retypes (see internal/measure/carry.go).
		var prevEval *measure.Evaluator
		var touched map[kb.LabelID]struct{}
		if prevPay != nil && cs != nil {
			prevEval = prevPay.ex.eval
			touched = cs.Labels
		}
		ex, err := newExplainer(snapKB, opt, prevEval, touched)
		if err != nil {
			return nil, err
		}
		pay := &storePayload{kb: snapKB, ex: ex}
		if prevPay != nil {
			// Retire the predecessor: bank its promotion count for the
			// running total and sever its own carry link, so at most two
			// generations of memos stay reachable at once.
			s.promosRetired.Add(prevPay.ex.eval.Promotions())
			prevPay.ex.eval.DropCarry()
			pay.carried, pay.dropped = carryResults(ex, prevPay.ex, g, cs, opt)
			s.resultsCarried.Add(uint64(pay.carried))
			s.resultsDropped.Add(uint64(pay.dropped))
		}
		return pay, nil
	}
	g, gen := k.g, uint64(1)
	var jn *live.Journal
	if d := opt.Durability; d.Dir != "" {
		jn2, rg, rgen, err := openJournal(d)
		if err != nil {
			return nil, err
		}
		jn = jn2
		if rg != nil {
			g, gen = rg, rgen
		}
	}
	mgr, err := live.NewManagerAt(g, build, gen)
	if err != nil {
		if jn != nil {
			jn.Close() //nolint:errcheck // construction failed anyway
		}
		return nil, err
	}
	s.mgr = mgr
	s.journal = jn
	if jn != nil && !jn.HasState() {
		// Seed a fresh journal with the initial graph as its first
		// checkpoint, so every future WAL record has a replay base even
		// if the process dies before the first policy-driven checkpoint.
		if err := jn.Checkpoint(mgr.Current().Graph, gen); err != nil {
			jn.Close() //nolint:errcheck
			return nil, fmt.Errorf("rex: seeding journal: %w", err)
		}
	}
	return s, nil
}

// openJournal opens the durability journal and recovers its state, if
// any. A nil recovered graph means the directory was fresh.
func openJournal(d DurabilityOptions) (*live.Journal, *kb.Graph, uint64, error) {
	pol := live.FsyncAlways
	if d.Fsync != "" {
		p, err := live.ParseFsyncPolicy(d.Fsync)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("rex: %w", err)
		}
		pol = p
	}
	jn, err := live.OpenJournal(d.Dir, live.JournalOptions{
		Fsync:           pol,
		FsyncInterval:   d.FsyncInterval,
		CheckpointEvery: d.CheckpointEvery,
		CheckpointBytes: d.CheckpointBytes,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	g, gen, err := jn.Recover()
	if err != nil {
		jn.Close() //nolint:errcheck
		return nil, nil, 0, fmt.Errorf("rex: recovering journal: %w", err)
	}
	return jn, g, gen, nil
}

// Close flushes and closes the durability journal, if any. The store's
// read path stays usable (it is purely in-memory), but further Apply or
// ReloadFrom calls on a durable store will fail. Safe to call more than
// once.
func (s *Store) Close() error {
	if s.journal == nil {
		return nil
	}
	return s.journal.Close()
}

// maxCarryBallNodes caps the affected-ball breadth-first search behind
// result carry-over. A delta touching a hub can reach a large fraction
// of the graph within the pattern radius; past this many nodes the ball
// no longer proves anything cheaply, so carry-over degrades to the
// sound default of dropping everything.
const maxCarryBallNodes = 1 << 17

// carryResults seeds the new snapshot's result cache with the previous
// generation's entries that provably cannot observe the delta, and
// reports how many were carried vs. dropped.
//
// Soundness: with M = MaxPatternSize, every instance of an explanation
// for the pair (s, t) — including the free-end instances behind the
// local-distribution measure — lies within M−1 hops of s or t, and the
// prioritized enumeration additionally reads the degrees of nodes one
// hop beyond the nodes it visits. So every graph read a query makes
// stays within M hops of its endpoints, and a cached result can change
// only if some changed edge or entity lies within that horizon —
// equivalently, if an endpoint falls inside the radius-M ball grown
// from the delta's touched nodes. The ball is grown over the new graph,
// which also covers paths that existed only in the old one: any such
// path crosses a removed edge, and both endpoints of every removed edge
// seed the ball (live.ChangeSet.Nodes).
//
// Drop-when-in-doubt cases: no change set (whole-graph reload), a
// retype (entity types steer decoration and sampling), a global
// measure (its sampled start set can shift under any node addition),
// a ball that overflows maxCarryBallNodes, and budget-truncated
// results (their coverage depends on enumeration order, which degree
// changes can reorder).
func carryResults(next, prev *Explainer, g *kb.Graph, cs *live.ChangeSet, opt Options) (carried, dropped int) {
	if prev.cache == nil || next.cache == nil {
		return 0, 0
	}
	entries := prev.cache.entries()
	if len(entries) == 0 {
		return 0, 0
	}
	if cs == nil || cs.Retyped || needsGlobalSamples(next.m) {
		return 0, len(entries)
	}
	radius := opt.normalized().MaxPatternSize
	ball, ok := cs.AffectedBall(g, radius, maxCarryBallNodes)
	if !ok {
		return 0, len(entries)
	}
	for _, en := range entries {
		if en.res.Truncated {
			dropped++
			continue
		}
		st := g.NodeByName(en.res.Start)
		en2 := g.NodeByName(en.res.End)
		_, sIn := ball[st]
		_, tIn := ball[en2]
		if sIn || tIn {
			dropped++
			continue
		}
		next.cache.put(en.key, en.res)
		carried++
	}
	return carried, dropped
}

// OpenStore loads a knowledge base from a file (see LoadKB) and builds
// a live store over it.
func OpenStore(path string, opt Options) (*Store, error) {
	k, err := LoadKB(path)
	if err != nil {
		return nil, err
	}
	return NewStore(k, opt)
}

// Current pins the active snapshot. The result stays valid and
// immutable for as long as the caller holds it, regardless of later
// swaps.
func (s *Store) Current() StoreSnapshot {
	return snapshotOf(s.mgr.Current())
}

func snapshotOf(sn *live.Snapshot) StoreSnapshot {
	p := sn.Payload.(*storePayload)
	return StoreSnapshot{
		KB:          p.kb,
		Explainer:   p.ex,
		Generation:  sn.Generation,
		Fingerprint: sn.Fingerprint,
	}
}

// Generation returns the active snapshot's generation (1 at
// construction, +1 per swap).
func (s *Store) Generation() uint64 { return s.mgr.Generation() }

// Swaps returns the number of completed snapshot swaps.
func (s *Store) Swaps() uint64 { return s.mgr.Swaps() }

// Apply streams a mutation log in the delta wire format (the TSV record
// syntax plus settype/deledge records, see internal/live), replays it
// onto the current graph and atomically publishes the result as the
// next generation. Application is all-or-nothing: on any parse or
// apply error the active snapshot is unchanged. A delta whose records
// are all no-ops changes nothing and publishes nothing — the returned
// SwapInfo then reports the unchanged current generation, keeping
// at-least-once delta delivery idempotent instead of flushing the warm
// cache. In-flight readers keep their pinned snapshot; only requests
// that call Current after Apply returns see the new version.
func (s *Store) Apply(r io.Reader) (SwapInfo, error) {
	return s.apply(r, 0)
}

// ErrGenerationConflict is the store-level alias of
// live.ErrGenerationConflict (errors.Is works against either): an
// ApplyAt found the store at a different generation than expected and
// refused without mutating.
var ErrGenerationConflict = live.ErrGenerationConflict

// ApplyAt is Apply conditioned on the store's current generation: the
// delta is applied only if it would publish exactly generation gen,
// checked under the same lock that serialises writers — the
// compare-and-swap a replica's sync engine needs to replay a peer's
// WAL record without double-applying it when a delta broadcast lands
// concurrently. When the store is at any generation other than gen-1,
// nothing is mutated and the error wraps ErrGenerationConflict.
func (s *Store) ApplyAt(r io.Reader, gen uint64) (SwapInfo, error) {
	return s.apply(r, gen)
}

// apply parses and applies one delta; a non-zero expect demands the
// published generation be exactly expect (see ApplyAt).
func (s *Store) apply(r io.Reader, expect uint64) (SwapInfo, error) {
	t0 := time.Now()
	d, err := live.ParseDelta(r)
	if err != nil {
		return SwapInfo{}, err
	}
	var commit live.CommitFunc
	if s.journal != nil {
		commit = func(gen uint64, g *kb.Graph) error {
			if err := s.journal.Append(gen, d.AppendWire(nil)); err != nil {
				return err
			}
			if s.journal.ShouldCheckpoint() {
				if err := s.journal.Checkpoint(g, gen); err != nil {
					// The delta is already durable in the WAL, so a failed
					// checkpoint must not abort the swap: count it, let the
					// next swap retry, and let recovery replay the longer
					// WAL tail in the meantime.
					s.ckptFailures.Add(1)
				}
			}
			return nil
		}
	}
	var snap *live.Snapshot
	var st live.ApplyStats
	if expect != 0 {
		snap, st, err = s.mgr.ApplyDeltaCommitAt(d, expect, commit)
	} else {
		snap, st, err = s.mgr.ApplyDeltaCommit(d, commit)
	}
	if err != nil {
		return SwapInfo{}, err
	}
	info := s.swapInfo(snap)
	info.NodesAdded = st.NodesAdded
	info.LabelsAdded = st.LabelsAdded
	info.EdgesAdded = st.EdgesAdded
	info.EdgesRemoved = st.EdgesRemoved
	info.TypesSet = st.TypesSet
	info.Overlay = st.Overlay
	info.Compacted = st.Compacted
	info.OverlayDepth = st.OverlayDepth
	if st.Changed() {
		p := snap.Payload.(*storePayload)
		info.ResultsCarried = p.carried
		info.ResultsDropped = p.dropped
	}
	info.Elapsed = time.Since(t0)
	s.notifySwap(info)
	return info, nil
}

// LiveStats reports the write-path and carry-over counters of the
// store, cumulative since construction (except OverlayDepth, which
// describes the currently active snapshot).
type LiveStats struct {
	// OverlayDepth is the active snapshot's overlay depth: 0 for a
	// plain graph, k after k stacked O(delta) applies since the last
	// compaction or full build.
	OverlayDepth int
	// Compactions counts overlay chains folded into fresh CSR arrays.
	Compactions uint64
	// ResultsCarried and ResultsDropped count cached results carried
	// into, or invalidated out of, new snapshots across all swaps.
	ResultsCarried, ResultsDropped uint64
	// MemoPromotions counts evaluator memos (match counts, count
	// tables, prefix walks) promoted from a previous generation instead
	// of recomputed.
	MemoPromotions uint64
}

// LiveStats returns a snapshot of the store's write-path counters.
func (s *Store) LiveStats() LiveStats {
	cur := s.mgr.Current()
	p := cur.Payload.(*storePayload)
	return LiveStats{
		OverlayDepth:   cur.Graph.Overlay().Depth,
		Compactions:    s.mgr.Compactions(),
		ResultsCarried: s.resultsCarried.Load(),
		ResultsDropped: s.resultsDropped.Load(),
		MemoPromotions: s.promosRetired.Load() + p.ex.eval.Promotions(),
	}
}

// DurabilityStats reports the state of the store's crash-safety
// journal. Enabled is false (and every other field zero) for a store
// built without Options.Durability.Dir.
type DurabilityStats struct {
	// Enabled reports whether the store has a journal at all.
	Enabled bool
	// Appends and AppendedBytes count WAL records and bytes written
	// since the journal was opened; Fsyncs the WAL flushes issued.
	Appends, AppendedBytes, Fsyncs uint64
	// Checkpoints counts checkpoints completed since open;
	// CheckpointFailures those that failed after their delta was
	// already durable (non-fatal, retried on a later swap).
	Checkpoints, CheckpointFailures uint64
	// Replayed is the number of WAL records replayed at boot; TornTail
	// reports that recovery dropped a torn or corrupt final record (the
	// crash window of an in-flight append).
	Replayed int
	TornTail bool
	// WALSize is the WAL's current size in bytes; CheckpointGen the
	// newest on-disk checkpoint's generation.
	WALSize       int64
	CheckpointGen uint64
}

// DurabilityStats snapshots the journal counters; safe to call from any
// goroutine.
func (s *Store) DurabilityStats() DurabilityStats {
	if s.journal == nil {
		return DurabilityStats{}
	}
	js := s.journal.Stats()
	return DurabilityStats{
		Enabled:            true,
		Appends:            js.Appends,
		AppendedBytes:      js.AppendedBytes,
		Fsyncs:             js.Fsyncs,
		Checkpoints:        js.Checkpoints,
		CheckpointFailures: s.ckptFailures.Load(),
		Replayed:           js.Replayed,
		TornTail:           js.TornTail,
		WALSize:            js.WALSize,
		CheckpointGen:      js.CheckpointGen,
	}
}

// ReloadFrom re-reads a knowledge base from disk (see LoadKB) and
// publishes it wholesale as the next generation — the recovery path
// when the delta stream and the authoritative file have diverged.
func (s *Store) ReloadFrom(path string) (SwapInfo, error) {
	t0 := time.Now()
	k, err := LoadKB(path)
	if err != nil {
		return SwapInfo{}, err
	}
	var commit live.CommitFunc
	if s.journal != nil {
		// A wholesale replacement has no delta a WAL replay could
		// reproduce, so durability demands a checkpoint before the swap
		// publishes — and unlike the Apply path, a failure here must
		// abort the swap: acknowledging an unjournaled reload would lose
		// it on the next crash.
		commit = func(gen uint64, g *kb.Graph) error {
			return s.journal.Checkpoint(g, gen)
		}
	}
	snap, err := s.mgr.SwapGraphCommit(k.g, commit)
	if err != nil {
		return SwapInfo{}, err
	}
	info := s.swapInfo(snap)
	info.Elapsed = time.Since(t0)
	s.notifySwap(info)
	return info, nil
}

func (s *Store) swapInfo(sn *live.Snapshot) SwapInfo {
	ss := snapshotOf(sn)
	return SwapInfo{
		Generation:  ss.Generation,
		Fingerprint: ss.Fingerprint,
		KB:          ss.KB.Stats(),
	}
}
