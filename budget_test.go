package rex

// Tests for the anytime query budget at the facade: truncated results
// are honest prefixes of the exhaustive answer, unbudgeted queries are
// unaffected, and budgeted results interact safely with the cache.

import (
	"context"
	"testing"
	"time"
)

// TestExplainBudgetedSubset checks the facade budget contract on the
// default measure: a generous expansion budget reproduces the
// unbudgeted result exactly (Truncated false), and a tight one returns
// Truncated=true with every explanation drawn from the exhaustive
// explanation set, deterministically across repeated runs.
func TestExplainBudgetedSubset(t *testing.T) {
	kb := SampleKB()
	ex, err := NewExplainer(kb, Options{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	p := samplePairs[0]
	full, err := ex.Explain(p.Start, p.End)
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatal("unbudgeted result is marked truncated")
	}

	// Generous budget: must match the exhaustive result byte for byte.
	res, err := ex.ExplainBudgeted(context.Background(), p.Start, p.End, Budget{MaxExpansions: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("generous budget truncated")
	}
	if !resultsEqual(res, full) {
		t.Fatal("generous budget changed the result")
	}

	// The exhaustive pattern universe: everything the unbudgeted query
	// could rank, not just its top-k.
	exAll, err := NewExplainer(kb, Options{TopK: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	fullAll, err := exAll.Explain(p.Start, p.End)
	if err != nil {
		t.Fatal(err)
	}
	universe := map[string]bool{}
	for _, e := range fullAll.Explanations {
		universe[e.Pattern] = true
	}

	sawTruncated := false
	for budget := 1; budget <= 64; budget *= 4 {
		b := Budget{MaxExpansions: budget}
		res1, err := ex.ExplainBudgeted(context.Background(), p.Start, p.End, b)
		if err != nil {
			t.Fatal(err)
		}
		res2, err := ex.ExplainBudgeted(context.Background(), p.Start, p.End, b)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(res1, res2) || res1.Truncated != res2.Truncated {
			t.Fatalf("budget %d: repeated budgeted queries disagree", budget)
		}
		if res1.Truncated {
			sawTruncated = true
		}
		for _, e := range res1.Explanations {
			if !universe[e.Pattern] {
				t.Fatalf("budget %d: pattern %q not in the exhaustive explanation set", budget, e.Pattern)
			}
		}
	}
	if !sawTruncated {
		t.Fatal("budget sweep never truncated; the test exercised nothing")
	}
}

// TestExplainBudgetTimeout checks the wall-clock budget: an effectively
// zero timeout returns a truncated result promptly without error, and
// timeout-budgeted results bypass the cache (they are wall-clock
// dependent) while leaving unbudgeted entries untouched.
func TestExplainBudgetTimeout(t *testing.T) {
	kb := SampleKB()
	ex, err := NewExplainer(kb, Options{TopK: 10, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := samplePairs[0]

	res, err := ex.ExplainBudgeted(context.Background(), p.Start, p.End, Budget{Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("nanosecond budget did not truncate")
	}
	if st := ex.CacheStats(); st.Entries != 0 {
		t.Fatalf("timeout-budgeted result was cached: %+v", st)
	}

	// The unbudgeted query must compute fresh and cache normally.
	full, err := ex.Explain(p.Start, p.End)
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatal("unbudgeted result truncated after a budgeted query")
	}
	if st := ex.CacheStats(); st.Entries != 1 {
		t.Fatalf("unbudgeted result not cached: %+v", st)
	}

	// An expansion budget is deterministic and caches under its own key:
	// it must never serve for (or be served from) the unbudgeted entry.
	bres, err := ex.ExplainBudgeted(context.Background(), p.Start, p.End, Budget{MaxExpansions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bres.Truncated {
		t.Fatal("one-expansion budget did not truncate")
	}
	if st := ex.CacheStats(); st.Entries != 2 {
		t.Fatalf("expansion-budgeted result not cached separately: %+v", st)
	}
	again, err := ex.Explain(p.Start, p.End)
	if err != nil {
		t.Fatal(err)
	}
	if again != full {
		t.Fatal("unbudgeted cache entry was displaced by the budgeted one")
	}

	// A timeout-budgeted query that finishes untruncated is identical to
	// the unbudgeted answer and must cache (under its own key): a server
	// default wall-clock budget must not turn the cache into dead weight
	// for the pairs that finish inside it.
	tres, err := ex.ExplainBudgeted(context.Background(), p.Start, p.End, Budget{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if tres.Truncated {
		t.Fatal("one-minute budget truncated a sample-KB query")
	}
	if st := ex.CacheStats(); st.Entries != 3 {
		t.Fatalf("untruncated timeout-budgeted result not cached: %+v", st)
	}
	tagain, err := ex.ExplainBudgeted(context.Background(), p.Start, p.End, Budget{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if tagain != tres {
		t.Fatal("untruncated timeout-budgeted result not served from cache")
	}
}

// TestBatchExplainBudget checks budget plumbing through BatchExplain:
// the per-batch budget truncates every heavy pair and per-pair Elapsed
// is populated.
func TestBatchExplainBudget(t *testing.T) {
	kb := SampleKB()
	ex, err := NewExplainer(kb, Options{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	out := ex.BatchExplain(context.Background(), samplePairs, BatchOptions{Budget: Budget{MaxExpansions: 1}})
	for i, br := range out {
		if br.Err != nil {
			t.Fatalf("pair %d: %v", i, br.Err)
		}
		if !br.Result.Truncated {
			t.Errorf("pair %d: one-expansion budget did not truncate", i)
		}
		if br.Elapsed <= 0 {
			t.Errorf("pair %d: Elapsed not populated", i)
		}
	}
}
