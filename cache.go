package rex

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// resultCache is a synchronised LRU cache of rendered explanation
// results. Each cache belongs to exactly one Explainer, so entries are
// keyed by entity pair alone (see Explainer.cacheKey); the options
// dimension is the cache identity itself. Hit, miss and eviction
// counts are tracked for the /stats endpoint of cmd/rexserve and for
// capacity tuning.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// cacheEntry is one LRU element: the key (needed for eviction) and the
// shared, read-only result.
type cacheEntry struct {
	key string
	res *Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key, promoting it to most recently
// used, and records the hit or miss. The element value is read under the
// lock: put may rewrite el.Value when refreshing an existing key.
func (c *resultCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	var res *Result
	if ok {
		c.ll.MoveToFront(el)
		res = el.Value.(cacheEntry).res
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return res, true
}

// put stores a result, evicting the least recently used entry when the
// cache is full. Storing an existing key refreshes its value and
// recency.
func (c *resultCache) put(key string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = cacheEntry{key: key, res: res}
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(cacheEntry).key)
		c.evictions.Add(1)
	}
}

// len reports the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats reports result-cache effectiveness counters.
type CacheStats struct {
	// Hits and Misses count cache lookups since construction. Misses
	// includes lookups for results that were never stored (e.g. queries
	// that errored).
	Hits, Misses uint64
	// Evictions counts entries displaced by the LRU capacity bound — the
	// signal that Options.CacheSize is too small for the working set.
	// Refreshing an existing key is not an eviction.
	Evictions uint64
	// Entries is the current entry count; Capacity the configured
	// maximum. Both are 0 when caching is disabled.
	Entries, Capacity int
}

// CacheStats returns a snapshot of the explainer's result-cache counters.
// The zero value is returned when caching is disabled.
func (e *Explainer) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:      e.cache.hits.Load(),
		Misses:    e.cache.misses.Load(),
		Evictions: e.cache.evictions.Load(),
		Entries:   e.cache.len(),
		Capacity:  e.cache.cap,
	}
}
