package rex

import (
	"container/list"
	"sync"
	"sync/atomic"

	"rex/internal/measure"
)

// resultCache is a synchronised LRU cache of rendered explanation
// results. Each cache belongs to exactly one Explainer, so entries are
// keyed by (entity pair, query budget) alone (see Explainer.queryKey);
// the options dimension is the cache identity itself. Hit, miss and
// eviction counts are tracked for the /stats endpoint of cmd/rexserve
// and for capacity tuning.
//
// Large caches are split into power-of-two lock shards selected by a
// hash of the key, so concurrent BatchExplain workers and serving
// traffic stop serialising on one mutex. Each shard is an independent
// LRU over its slice of the capacity; the hit/miss/eviction counters
// are process-wide atomics shared by all shards, so CacheStats reads
// are never torn. Small caches (below cacheShardThreshold entries) stay
// single-sharded and keep exact global LRU order.
type resultCache struct {
	capacity  int
	shardMask uint64
	shards    []cacheShard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// cacheShard is one lock shard: an independent LRU over its share of
// the capacity.
type cacheShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

const (
	// cacheShardCount is the shard fan-out for large caches; power of
	// two so selection is a mask.
	cacheShardCount = 16
	// cacheShardThreshold is the capacity below which the cache stays
	// single-sharded: splitting a tiny capacity across 16 LRUs would
	// distort eviction order for no contention win.
	cacheShardThreshold = 64
)

// cacheEntry is one LRU element: the key (needed for eviction) and the
// shared, read-only result.
type cacheEntry struct {
	key string
	res *Result
}

func newResultCache(capacity int) *resultCache {
	n := 1
	if capacity >= cacheShardThreshold {
		n = cacheShardCount
	}
	c := &resultCache{capacity: capacity, shardMask: uint64(n - 1), shards: make([]cacheShard, n)}
	per := (capacity + n - 1) / n
	for i := range c.shards {
		c.shards[i] = cacheShard{cap: per, ll: list.New(), items: make(map[string]*list.Element, per)}
	}
	return c
}

// shard selects the lock shard for a key by FNV-1a hash.
func (c *resultCache) shard(key string) *cacheShard {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	return &c.shards[h&c.shardMask]
}

// get returns the cached result for key, promoting it to most recently
// used in its shard, and records the hit or miss. The element value is
// read under the shard lock: put may rewrite el.Value when refreshing
// an existing key.
func (c *resultCache) get(key string) (*Result, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	var res *Result
	if ok {
		s.ll.MoveToFront(el)
		res = el.Value.(cacheEntry).res
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return res, true
}

// put stores a result, evicting the shard's least recently used entry
// when the shard is full. Storing an existing key refreshes its value
// and recency.
func (c *resultCache) put(key string, res *Result) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value = cacheEntry{key: key, res: res}
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(cacheEntry{key: key, res: res})
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(cacheEntry).key)
		c.evictions.Add(1)
	}
}

// entries snapshots every cached (key, result) pair, least recently
// used first, so re-putting them in order into a fresh cache preserves
// relative recency. Used by the store's swap-time carry-over.
func (c *resultCache) entries() []cacheEntry {
	out := make([]cacheEntry, 0, c.len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Back(); el != nil; el = el.Prev() {
			out = append(out, el.Value.(cacheEntry))
		}
		s.mu.Unlock()
	}
	return out
}

// len reports the number of cached entries across all shards.
func (c *resultCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// CacheStats reports result-cache effectiveness counters.
type CacheStats struct {
	// Hits and Misses count cache lookups since construction. Misses
	// includes lookups for results that were never stored (e.g. queries
	// that errored). Both are process-wide atomics aggregated across
	// cache shards, so a snapshot is never torn.
	Hits, Misses uint64
	// Evictions counts entries displaced by the LRU capacity bound — the
	// signal that Options.CacheSize is too small for the working set.
	// Refreshing an existing key is not an eviction.
	Evictions uint64
	// Deduped counts queries that were coalesced into an identical
	// in-flight computation by the single-flight layer instead of
	// recomputing (or racing to recompute) the same result. It is
	// tracked even when caching is disabled.
	Deduped uint64
	// Entries is the current entry count; Capacity the configured
	// maximum. Both are 0 when caching is disabled.
	Entries, Capacity int
}

// CacheStats returns a snapshot of the explainer's result-cache counters.
// Cache fields are zero when caching is disabled; Deduped counts
// single-flight coalescing either way.
func (e *Explainer) CacheStats() CacheStats {
	st := CacheStats{Deduped: e.flight.deduped.Load()}
	if e.cache == nil {
		return st
	}
	st.Hits = e.cache.hits.Load()
	st.Misses = e.cache.misses.Load()
	st.Evictions = e.cache.evictions.Load()
	st.Entries = e.cache.len()
	st.Capacity = e.cache.capacity
	return st
}

// EvaluatorStats reports the measure evaluator's memo occupancy and
// effectiveness: pair-memo entries and table cells across shards,
// prefix walk-cache occupancy, and hit/miss counters for both layers.
// Counters are per-snapshot (they reset when a hot swap rebuilds the
// evaluator); occupancy is current. Used by the /metrics gauges.
type EvaluatorStats = measure.MemoStats

// MemoStats returns a snapshot of the evaluator's memo statistics.
func (e *Explainer) MemoStats() EvaluatorStats {
	return e.eval.MemoStats()
}
