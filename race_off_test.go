//go:build !race

package rex

// See race_on_test.go.
const raceEnabled = false
