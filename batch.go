package rex

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Pair names one entity pair to explain.
type Pair struct {
	Start string `json:"start"`
	End   string `json:"end"`
}

// BatchOptions configures a BatchExplain fan-out.
type BatchOptions struct {
	// Concurrency is the number of worker goroutines explaining pairs;
	// 0 uses GOMAXPROCS. It is additionally capped at the pair count.
	Concurrency int
	// PerPairTimeout, when positive, bounds each pair's query with its
	// own deadline (derived from the batch context), so one pathological
	// pair cannot consume the whole batch budget. Exceeding it is an
	// error on that pair; prefer Budget for a graceful best-so-far
	// answer instead.
	PerPairTimeout time.Duration
	// Budget bounds each pair's work, returning truncated best-so-far
	// results instead of errors when it expires (see Budget). The zero
	// value inherits the explainer's Options.Budget.
	Budget Budget
	// Traced attaches a fresh per-pair trace context (see WithTrace) to
	// every pair, so each BatchResult.Result carries its own
	// Result.Trace. A trace on the batch context itself would aggregate
	// all pairs' stages into one incoherent trace; per-pair is the only
	// shape that makes sense for a fan-out.
	Traced bool
}

// BatchResult is the outcome for one pair of a batch: either a result or
// that pair's error, never both. Errors are isolated per pair — one
// failing pair does not affect the others.
type BatchResult struct {
	Pair   Pair
	Result *Result
	Err    error
	// Elapsed is the wall-clock time this pair's query took (including
	// any wait on a coalesced duplicate computation); the contended
	// benchmark derives its latency percentiles from it.
	Elapsed time.Duration
}

// BatchExplain explains many pairs concurrently over a worker pool,
// returning one BatchResult per input pair in input order. Per-pair
// errors (unknown entities, per-pair timeouts) are recorded in the
// corresponding slot; cancelling ctx aborts in-flight queries and marks
// every unfinished pair with ctx.Err(). The explainer's result cache,
// when enabled, is consulted and populated as usual, and duplicate
// pairs in flight at the same time are coalesced onto one computation —
// their slots share one read-only *Result.
func (e *Explainer) BatchExplain(ctx context.Context, pairs []Pair, opts BatchOptions) []BatchResult {
	out := make([]BatchResult, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	workers := opts.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}

	// When the batch itself fans out, split the core budget between the
	// two levels instead of nesting a full GOMAXPROCS enumeration pool
	// inside every batch worker (which would run ~P² CPU-bound
	// goroutines and multiply scheduler contention): each query gets
	// GOMAXPROCS/workers enumeration workers, at least one. Only the
	// auto setting (Workers == 0) is rebudgeted — an explicit
	// Options.Parallelism is respected. Results are identical either way
	// (the engine's worker count never changes output), so the shallow
	// copy can share the result cache.
	eng := e
	if workers > 1 && e.cfg.Workers == 0 {
		per := runtime.GOMAXPROCS(0) / workers
		if per < 1 {
			per = 1
		}
		budgeted := *e
		budgeted.cfg.Workers = per
		eng = &budgeted
	}

	bud := opts.Budget
	if !bud.active() {
		bud = e.opt.Budget
	}

	var next sync.Mutex
	idx := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := idx
				idx++
				next.Unlock()
				if i >= len(pairs) {
					return
				}
				p := pairs[i]
				pctx := ctx
				var cancel context.CancelFunc
				if opts.PerPairTimeout > 0 {
					pctx, cancel = context.WithTimeout(ctx, opts.PerPairTimeout)
				}
				if opts.Traced {
					pctx = WithTrace(pctx)
				}
				t0 := time.Now()
				res, err := explainContained(eng, pctx, p, bud)
				elapsed := time.Since(t0)
				if cancel != nil {
					cancel()
				}
				out[i] = BatchResult{Pair: p, Result: res, Err: err, Elapsed: elapsed}
			}
		}()
	}
	wg.Wait()
	return out
}

// explainContained runs one pair's query with panic containment: a
// panic in the engine — a bug tripped by this particular pair, not a
// user error — becomes that pair's BatchResult.Err instead of
// unwinding a worker goroutine and crashing the whole process. A
// panicking worker would otherwise also strand BatchExplain's wg.Wait
// forever, hanging every other pair of the batch.
func explainContained(eng *Explainer, ctx context.Context, p Pair, bud Budget) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("rex: internal panic explaining (%s, %s): %v", p.Start, p.End, r)
		}
	}()
	return eng.ExplainBudgeted(ctx, p.Start, p.End, bud)
}
