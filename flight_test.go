package rex

// Tests for the single-flight query deduplication layer: concurrent
// identical (pair, budget) queries must share one computation — both at
// the flightGroup primitive level and end to end through BatchExplain
// (run with -race). See DESIGN.md's contention map.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestFlightGroupCoalesces pins the primitive: N concurrent do() calls
// for one key run fn exactly once and all receive the same result. The
// leader is held inside fn until every caller has registered, so the
// coalescing is deterministic, not a scheduling accident.
func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	const callers = 8
	var computes atomic.Int32
	release := make(chan struct{})
	shared := &Result{Start: "a", End: "b"}

	var wg sync.WaitGroup
	results := make([]*Result, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = g.do(context.Background(), "k", func() (*Result, error) {
				computes.Add(1)
				<-release
				return shared, nil
			})
		}(i)
	}
	waitFor(t, "all callers to join the flight", func() bool { return g.totalWaiters() == callers })
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("fn ran %d times for %d concurrent callers, want 1", n, callers)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != shared {
			t.Fatalf("caller %d did not receive the shared result", i)
		}
	}
	if got := g.deduped.Load(); got != callers-1 {
		t.Errorf("deduped = %d, want %d", got, callers-1)
	}
	if got := g.computes.Load(); got != 1 {
		t.Errorf("computes = %d, want 1", got)
	}

	// The flight table must be empty afterwards: entries live only
	// while a computation is in flight.
	if n := g.totalWaiters(); n != 0 {
		t.Errorf("%d waiters after completion, want 0", n)
	}
}

// TestFlightFollowerOwnContext checks that a follower whose context
// expires stops waiting with its own error while the leader keeps
// computing, and that a leader cancellation is not inherited: the
// follower retries and becomes the new leader.
func TestFlightFollowerOwnContext(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	leaderStarted := make(chan struct{})

	go g.do(context.Background(), "k", func() (*Result, error) {
		close(leaderStarted)
		<-release
		return &Result{}, nil
	})
	<-leaderStarted

	ctx, cancel := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		_, err := g.do(ctx, "k", func() (*Result, error) { return &Result{}, nil })
		followerErr <- err
	}()
	waitFor(t, "follower to join", func() bool { return g.totalWaiters() == 2 })
	cancel()
	if err := <-followerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower got %v, want context.Canceled", err)
	}
	close(release) // leader finishes normally

	// Leader cancellation: followers with live contexts must retry, not
	// inherit the leader's context error.
	lctx, lcancel := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	go g.do(lctx, "k2", func() (*Result, error) {
		close(leaderIn)
		<-lctx.Done()
		return nil, lctx.Err()
	})
	<-leaderIn
	retried := make(chan *Result, 1)
	go func() {
		res, err := g.do(context.Background(), "k2", func() (*Result, error) {
			return &Result{Start: "retry"}, nil
		})
		if err != nil {
			t.Error(err)
		}
		retried <- res
	}()
	waitFor(t, "follower to join k2", func() bool { return g.totalWaiters() == 2 })
	lcancel()
	if res := <-retried; res == nil || res.Start != "retry" {
		t.Fatalf("follower did not retry after leader cancellation: %+v", res)
	}
}

// TestBatchExplainSingleFlight drives one BatchExplain containing each
// distinct pair many times over (run with -race): the single-flight
// layer must execute each distinct pair exactly once, with every
// duplicate slot sharing the leader's result pointer. Leaders are held
// until all workers have joined a flight, so every duplicate provably
// overlaps an in-flight computation.
func TestBatchExplainSingleFlight(t *testing.T) {
	kb := SampleKB()
	ex, err := NewExplainer(kb, Options{Measure: "size", TopK: 5}) // no cache: dedup is flight-only
	if err != nil {
		t.Fatal(err)
	}

	const dup = 8
	distinct := []Pair{samplePairs[0], samplePairs[1]}
	var pairs []Pair
	for i := 0; i < dup; i++ {
		pairs = append(pairs, distinct...)
	}

	// The hook holds each leader until every batch worker has arrived at
	// the flight layer. The wait condition is the monotone cumulative
	// count (leader executions + follower joins), not the instantaneous
	// waiter count: the latter drops when the other key's flight
	// completes, which would strand a still-blocked leader.
	arrived := func() uint64 { return ex.flight.computes.Load() + ex.flight.deduped.Load() }
	testHookComputeStart = func(string) {
		deadline := time.Now().Add(10 * time.Second)
		for arrived() < uint64(len(pairs)) {
			if time.Now().After(deadline) {
				t.Error("timed out waiting for all workers to join")
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	defer func() { testHookComputeStart = nil }()

	out := ex.BatchExplain(context.Background(), pairs, BatchOptions{Concurrency: len(pairs)})

	if got := ex.flight.computes.Load(); got != uint64(len(distinct)) {
		t.Fatalf("batch with %d distinct pairs ran %d computations, want %d", len(distinct), got, len(distinct))
	}
	if got := ex.flight.deduped.Load(); got != uint64(len(pairs)-len(distinct)) {
		t.Errorf("deduped = %d, want %d", got, len(pairs)-len(distinct))
	}
	if st := ex.CacheStats(); st.Deduped != uint64(len(pairs)-len(distinct)) {
		t.Errorf("CacheStats.Deduped = %d, want %d", st.Deduped, len(pairs)-len(distinct))
	}
	byPair := map[Pair]*Result{}
	for i, br := range out {
		if br.Err != nil {
			t.Fatalf("slot %d: %v", i, br.Err)
		}
		if prev, ok := byPair[br.Pair]; ok {
			if br.Result != prev {
				t.Fatalf("slot %d: duplicate pair got a distinct result object", i)
			}
		} else {
			byPair[br.Pair] = br.Result
		}
	}
	// The coalesced results must still be correct.
	for p, res := range byPair {
		want, err := ex.Explain(p.Start, p.End)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(res, want) {
			t.Errorf("coalesced result for %v differs from serial reference", p)
		}
	}
}

// TestCacheHitAllocBound pins the facade fast path: with the sharded
// cache warm, a repeated Explain performs only key construction and one
// sharded lookup — sharding and single-flight must add no steady-state
// allocations (the bound covers the key's fmt.Sprintf and interface
// boxing, nothing else).
func TestCacheHitAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds bookkeeping allocations; counts are not meaningful")
	}
	kb := SampleKB()
	ex, err := NewExplainer(kb, Options{Measure: "size", TopK: 5, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := samplePairs[0]
	if _, err := ex.Explain(p.Start, p.End); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ex.Explain(p.Start, p.End); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("cache-hit Explain allocates %.0f times per op; want ≤ 4", allocs)
	}
}
