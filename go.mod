module rex

go 1.24
