package rex

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSampleKBStats(t *testing.T) {
	kb := SampleKB()
	st := kb.Stats()
	if st.Nodes == 0 || st.Edges == 0 || st.Labels == 0 {
		t.Fatalf("empty sample KB: %+v", st)
	}
	if !kb.HasEntity("brad_pitt") || kb.HasEntity("ghost_entity") {
		t.Error("HasEntity broken")
	}
	actors := kb.Entities("actor")
	if len(actors) == 0 {
		t.Error("no actors listed")
	}
	all := kb.Entities("")
	if len(all) != st.Nodes {
		t.Errorf("Entities(\"\") = %d, want %d", len(all), st.Nodes)
	}
}

func TestTSVRoundTripPublic(t *testing.T) {
	kb := SampleKB()
	path := filepath.Join(t.TempDir(), "kb.tsv")
	if err := kb.SaveTSV(path); err != nil {
		t.Fatal(err)
	}
	kb2, err := LoadKB(path)
	if err != nil {
		t.Fatal(err)
	}
	if kb2.Stats() != kb.Stats() {
		t.Errorf("stats changed: %+v vs %+v", kb2.Stats(), kb.Stats())
	}
	var buf bytes.Buffer
	if err := kb.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	kb3, err := ReadKB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kb3.Stats() != kb.Stats() {
		t.Error("ReadKB stats differ")
	}
}

func TestLoadKBMissingFile(t *testing.T) {
	if _, err := LoadKB(filepath.Join(t.TempDir(), "nope.tsv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestGenerateKBPublic(t *testing.T) {
	kb := GenerateKB(GenOptions{Scale: 0.3, Seed: 5})
	if kb.Stats().Nodes == 0 {
		t.Fatal("generated KB empty")
	}
	kb2 := GenerateKB(GenOptions{Scale: 0.3, Seed: 5})
	if kb.Stats() != kb2.Stats() {
		t.Error("generation not deterministic through the public API")
	}
}

func TestNewExplainerValidation(t *testing.T) {
	kb := SampleKB()
	cases := []Options{
		{PathAlgorithm: "bogus"},
		{UnionAlgorithm: "bogus"},
		{Measure: "bogus"},
	}
	for i, opt := range cases {
		if _, err := NewExplainer(kb, opt); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if _, err := NewExplainer(kb, Options{}); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

func TestMeasureNamesResolve(t *testing.T) {
	for _, name := range MeasureNames() {
		m, err := MeasureByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if m.Name() != name {
			t.Errorf("measure %q reports name %q", name, m.Name())
		}
	}
	if _, err := MeasureByName("nope"); err == nil {
		t.Error("unknown measure accepted")
	}
}

func TestExplainErrors(t *testing.T) {
	kb := SampleKB()
	ex, err := NewExplainer(kb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Explain("ghost", "brad_pitt"); err == nil {
		t.Error("unknown start accepted")
	}
	if _, err := ex.Explain("brad_pitt", "ghost"); err == nil {
		t.Error("unknown end accepted")
	}
	if _, err := ex.Explain("brad_pitt", "brad_pitt"); err == nil {
		t.Error("identical pair accepted")
	}
}

func TestExplainBasics(t *testing.T) {
	kb := SampleKB()
	ex, err := NewExplainer(kb, Options{Measure: "size", TopK: 5, MaxInstancesPerExplanation: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Explain("brad_pitt", "angelina_jolie")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) == 0 || len(res.Explanations) > 5 {
		t.Fatalf("got %d explanations", len(res.Explanations))
	}
	top := res.Explanations[0]
	if !strings.Contains(top.Pattern, "spouse") {
		t.Errorf("smallest explanation should be the spouse edge, got %s", top.Pattern)
	}
	if !top.IsPath || top.Size != 2 || top.NumInstances != 1 || top.Monocount != 1 {
		t.Errorf("spouse explanation fields: %+v", top)
	}
	if len(top.Instances) != 1 || top.Instances[0].Bindings[0] != "brad_pitt" {
		t.Errorf("instances rendered wrong: %+v", top.Instances)
	}
	if !strings.Contains(top.SQL, "spouse") {
		t.Errorf("SQL rendering missing label: %s", top.SQL)
	}
	if top.Description == "" {
		t.Error("empty description")
	}
	for _, e := range res.Explanations {
		if len(e.Instances) > 2 {
			t.Errorf("instance truncation ignored: %d", len(e.Instances))
		}
	}
}

// TestExplainPruningEquivalence checks that pruned and unpruned ranking
// return the same explanations for every measure on a real pair.
func TestExplainPruningEquivalence(t *testing.T) {
	kb := SampleKB()
	for _, name := range MeasureNames() {
		if name == "global-dist" {
			continue // exercised separately; slow with 100 samples
		}
		pruned, err := NewExplainer(kb, Options{Measure: name, TopK: 5})
		if err != nil {
			t.Fatal(err)
		}
		full, err := NewExplainer(kb, Options{Measure: name, TopK: 5, DisablePruning: true})
		if err != nil {
			t.Fatal(err)
		}
		a, err := pruned.Explain("kate_winslet", "leonardo_dicaprio")
		if err != nil {
			t.Fatal(err)
		}
		b, err := full.Explain("kate_winslet", "leonardo_dicaprio")
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Explanations) != len(b.Explanations) {
			t.Errorf("%s: pruned %d vs full %d", name, len(a.Explanations), len(b.Explanations))
			continue
		}
		for i := range a.Explanations {
			if a.Explanations[i].Pattern != b.Explanations[i].Pattern {
				t.Errorf("%s: rank %d differs: %s vs %s",
					name, i, a.Explanations[i].Pattern, b.Explanations[i].Pattern)
				break
			}
		}
	}
}

func TestExplainGlobalDist(t *testing.T) {
	kb := SampleKB()
	ex, err := NewExplainer(kb, Options{Measure: "global-dist", TopK: 3, GlobalSamples: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Explain("brad_pitt", "angelina_jolie")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) == 0 {
		t.Fatal("no explanations under global-dist")
	}
}

func TestConnectednessPublic(t *testing.T) {
	kb := SampleKB()
	c, err := kb.Connectedness("brad_pitt", "angelina_jolie", 4)
	if err != nil || c == 0 {
		t.Fatalf("connectedness = %d, err %v", c, err)
	}
	if _, err := kb.Connectedness("ghost", "brad_pitt", 4); err == nil {
		t.Error("unknown entity accepted")
	}
	if _, err := kb.Connectedness("brad_pitt", "ghost", 4); err == nil {
		t.Error("unknown entity accepted")
	}
}

func TestResultMetadata(t *testing.T) {
	kb := SampleKB()
	ex, _ := NewExplainer(kb, Options{Measure: "monocount", TopK: 3})
	res, err := ex.Explain("tom_cruise", "nicole_kidman")
	if err != nil {
		t.Fatal(err)
	}
	if res.Start != "tom_cruise" || res.End != "nicole_kidman" || res.Measure != "monocount" {
		t.Errorf("result metadata: %+v", res)
	}
}
