package rex

// Tests for the query-path tracing layer: the trace must be free when
// absent (the alloc budgets of BENCH.json hold with no trace on the
// context), O(stages) when present, and its report must attribute work
// and truncation to the right pipeline stages.

import (
	"context"
	"testing"
	"time"

	"rex/internal/enumerate"
	"rex/internal/kbgen"
	"rex/internal/match"
)

// traceBenchExplainer builds the explainer of the explain_end_to_end
// micro workload (uncached, so every query walks the full pipeline).
func traceBenchExplainer(t *testing.T) *Explainer {
	t.Helper()
	ex, err := NewExplainer(SampleKB(), Options{Measure: "size+local-dist", TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// TestTracingOffAllocBudgets pins the zero-cost-when-off contract
// against the committed BENCH.json baselines: with no trace on the
// context, the instrumented hot paths must not allocate one byte more
// than before instrumentation (match_count: 0 allocs/op,
// explain_end_to_end: 1195 allocs/op).
func TestTracingOffAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds bookkeeping allocations; counts are not meaningful")
	}
	t.Run("match_count", func(t *testing.T) {
		g := kbgen.Sample()
		s := g.NodeByName("brad_pitt")
		e := g.NodeByName("angelina_jolie")
		es := enumerate.Explanations(g, s, e, enumerate.Config{
			MaxPatternSize: 5,
			PathAlg:        enumerate.PathPrioritized,
			UnionAlg:       enumerate.UnionPrune,
		})
		p := es[len(es)-1].P
		ctx := context.Background()
		if _, err := match.CountContext(ctx, g, p, s, e); err != nil {
			t.Fatal(err) // warm the matcher pool
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := match.CountContext(ctx, g, p, s, e); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("untraced match.CountContext allocates %.0f times per op; baseline is 0", allocs)
		}
	})
	t.Run("explain_end_to_end", func(t *testing.T) {
		ex := traceBenchExplainer(t)
		if _, err := ex.Explain("kate_winslet", "leonardo_dicaprio"); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := ex.Explain("kate_winslet", "leonardo_dicaprio"); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 1195 {
			t.Errorf("untraced Explain allocates %.0f times per op; BENCH.json baseline is 1195", allocs)
		}
	})
}

// TestTracingOnAllocBound bounds the tracing overhead: a traced query
// may add only the O(stages) report materialisation — the trace itself,
// the report, its stage slice and the result copy — never per-expansion
// or per-instance work.
func TestTracingOnAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds bookkeeping allocations; counts are not meaningful")
	}
	ex := traceBenchExplainer(t)
	if _, err := ex.Explain("kate_winslet", "leonardo_dicaprio"); err != nil {
		t.Fatal(err)
	}
	off := testing.AllocsPerRun(20, func() {
		if _, err := ex.Explain("kate_winslet", "leonardo_dicaprio"); err != nil {
			t.Fatal(err)
		}
	})
	on := testing.AllocsPerRun(20, func() {
		ctx := WithTrace(context.Background())
		res, err := ex.ExplainBudgeted(ctx, "kate_winslet", "leonardo_dicaprio", Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace == nil {
			t.Fatal("traced query returned no trace")
		}
	})
	const bound = 16 // trace + context + report + stage slice + result copy
	if on-off > bound {
		t.Errorf("tracing adds %.0f allocs per query (off %.0f, on %.0f); want ≤ %d",
			on-off, off, on, bound)
	}
}

// TestTraceReportContents checks the report of a full uncached query:
// every pipeline stage that ran is present with plausible numbers, and
// untraced queries carry no report at all.
func TestTraceReportContents(t *testing.T) {
	ex := traceBenchExplainer(t)

	res, err := ex.Explain("kate_winslet", "leonardo_dicaprio")
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("untraced query carries a trace report")
	}

	ctx := WithTrace(context.Background())
	b := Budget{Timeout: time.Minute, MaxExpansions: 1 << 20}
	res, err = ex.ExplainBudgeted(ctx, "kate_winslet", "leonardo_dicaprio", b)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("traced query returned no trace")
	}
	if tr.TotalMS <= 0 {
		t.Errorf("TotalMS = %v, want > 0", tr.TotalMS)
	}
	if tr.BudgetMS != int64(b.Timeout/time.Millisecond) || tr.BudgetExpansions != b.MaxExpansions {
		t.Errorf("budget echo = (%d ms, %d exp), want (%d, %d)",
			tr.BudgetMS, tr.BudgetExpansions, int64(b.Timeout/time.Millisecond), b.MaxExpansions)
	}
	stages := map[string]bool{}
	for _, st := range tr.Stages {
		stages[st.Stage] = true
		if st.Calls <= 0 {
			t.Errorf("stage %s: calls = %d, want > 0", st.Stage, st.Calls)
		}
	}
	for _, want := range []string{"enumerate", "measure"} {
		if !stages[want] {
			t.Errorf("trace has no %s stage; stages = %v", want, tr.Stages)
		}
	}
	if tr.Expansions <= 0 {
		t.Errorf("Expansions = %d, want > 0", tr.Expansions)
	}
	if tr.CacheHit || tr.Deduped {
		t.Errorf("uncached solo query reports CacheHit=%v Deduped=%v", tr.CacheHit, tr.Deduped)
	}
	if tr.TruncatedBy != "" {
		t.Errorf("unbudget-bound query reports TruncatedBy=%q", tr.TruncatedBy)
	}
}

// TestTraceCacheHitFlag checks that a repeat query against a warm cache
// reports CacheHit on its own fresh trace, without the pipeline stages
// it never ran.
func TestTraceCacheHitFlag(t *testing.T) {
	ex, err := NewExplainer(SampleKB(), Options{Measure: "size", TopK: 5, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := samplePairs[0]

	first, err := ex.ExplainBudgeted(WithTrace(context.Background()), p.Start, p.End, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Trace == nil || first.Trace.CacheHit {
		t.Fatalf("cold query trace = %+v, want present and CacheHit=false", first.Trace)
	}

	second, err := ex.ExplainBudgeted(WithTrace(context.Background()), p.Start, p.End, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	tr := second.Trace
	if tr == nil || !tr.CacheHit {
		t.Fatalf("warm query trace = %+v, want CacheHit=true", tr)
	}
	if len(tr.Stages) != 0 {
		t.Errorf("cache hit ran stages %v, want none", tr.Stages)
	}
	if !resultsEqual(first, second) {
		t.Error("traced cache hit returned a different result than the cold query")
	}
}

// TestTraceTruncationAttribution pins budget attribution: a query
// strangled by a one-expansion budget must blame the enumerate stage's
// expansion budget, first-wins.
func TestTraceTruncationAttribution(t *testing.T) {
	ex := traceBenchExplainer(t)
	res, err := ex.ExplainBudgeted(WithTrace(context.Background()),
		"kate_winslet", "leonardo_dicaprio", Budget{MaxExpansions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("one-expansion budget did not truncate")
	}
	if res.Trace == nil {
		t.Fatal("traced query returned no trace")
	}
	if got := res.Trace.TruncatedBy; got != "enumerate:expansions" {
		t.Errorf("TruncatedBy = %q, want %q", got, "enumerate:expansions")
	}
}

// TestBatchTraced checks BatchOptions.Traced: every pair gets its own
// report — including followers that coalesced onto another pair's
// computation, whose reports carry the dedup flag instead of stage
// timings they never ran.
func TestBatchTraced(t *testing.T) {
	ex, err := NewExplainer(SampleKB(), Options{Measure: "size", TopK: 5}) // no cache: dedup is flight-only
	if err != nil {
		t.Fatal(err)
	}

	const dup = 4
	distinct := []Pair{samplePairs[0], samplePairs[1]}
	var pairs []Pair
	for i := 0; i < dup; i++ {
		pairs = append(pairs, distinct...)
	}

	// Hold each leader until every worker has reached the flight layer,
	// so duplicate slots provably join in-flight computations (the same
	// choreography as TestBatchExplainSingleFlight).
	arrived := func() uint64 { return ex.flight.computes.Load() + ex.flight.deduped.Load() }
	testHookComputeStart = func(string) {
		deadline := time.Now().Add(10 * time.Second)
		for arrived() < uint64(len(pairs)) {
			if time.Now().After(deadline) {
				t.Error("timed out waiting for all workers to join")
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	defer func() { testHookComputeStart = nil }()

	out := ex.BatchExplain(context.Background(), pairs,
		BatchOptions{Concurrency: len(pairs), Traced: true})

	deduped := 0
	for i, br := range out {
		if br.Err != nil {
			t.Fatalf("slot %d: %v", i, br.Err)
		}
		if br.Result.Trace == nil {
			t.Fatalf("slot %d: traced batch entry has no trace", i)
		}
		if br.Result.Trace.Deduped {
			deduped++
		}
	}
	if want := len(pairs) - len(distinct); deduped != want {
		t.Errorf("%d traces carry the dedup flag, want %d", deduped, want)
	}

	// Untraced batches must stay trace-free.
	out = ex.BatchExplain(context.Background(), distinct, BatchOptions{})
	for i, br := range out {
		if br.Err != nil {
			t.Fatalf("untraced slot %d: %v", i, br.Err)
		}
		if br.Result.Trace != nil {
			t.Errorf("untraced slot %d carries a trace", i)
		}
	}
}

// TestBuildInfo checks the public build-info surface the CLIs print.
func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.GoVersion == "" {
		t.Error("BuildInfo.GoVersion is empty")
	}
	if b.Revision == "" {
		t.Error("BuildInfo.Revision is empty")
	}
	if b.String() == "" {
		t.Error("BuildInfo.String() is empty")
	}
}
