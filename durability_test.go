package rex

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rex/internal/fail"
	"rex/internal/kb"
)

// durableOptions is the store configuration the durability tests share:
// a small checkpoint interval so soaks cross checkpoint boundaries, and
// fsync on every append so acknowledged means on-disk.
func durableOptions(dir string) Options {
	return Options{
		Measure:   "size",
		CacheSize: 8,
		Durability: DurabilityOptions{
			Dir:             dir,
			Fsync:           "always",
			CheckpointEvery: 3,
		},
	}
}

func durableKB(t *testing.T) *KB {
	t.Helper()
	k, err := ReadKB(strings.NewReader(storeBaseTSV))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// soakDelta returns the delta producing generation i+2 from generation
// i+1: a fresh node chained onto alice.
func soakDelta(i int) string {
	return fmt.Sprintf("node\tw%d\tperson\nedge\talice\tw%d\tknows\n", i, i)
}

// soakOracle runs the crash-free reference: the same deltas applied to
// a non-durable store, returning fingerprint-by-generation (index g
// holds generation g; index 0 is unused).
func soakOracle(t *testing.T, deltas []string) []string {
	t.Helper()
	st, err := NewStore(durableKB(t), Options{Measure: "size"})
	if err != nil {
		t.Fatal(err)
	}
	oracle := make([]string, len(deltas)+2)
	oracle[1] = st.Current().Fingerprint
	for i, d := range deltas {
		info, err := st.Apply(strings.NewReader(d))
		if err != nil {
			t.Fatal(err)
		}
		if info.Generation != uint64(i+2) {
			t.Fatalf("oracle generation = %d, want %d", info.Generation, i+2)
		}
		oracle[i+2] = info.Fingerprint
	}
	return oracle
}

func TestStoreDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(durableKB(t), durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	if ds := st.DurabilityStats(); !ds.Enabled || ds.CheckpointGen != 1 {
		t.Fatalf("fresh durable store stats = %+v, want enabled with seed checkpoint at 1", ds)
	}
	var want string
	for i := 0; i < 5; i++ {
		info, err := st.Apply(strings.NewReader(soakDelta(i)))
		if err != nil {
			t.Fatal(err)
		}
		want = info.Fingerprint
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen over the same directory with a DIFFERENT seed KB: the
	// journal's recovered state wins, generation numbering resumes.
	seed, err := ReadKB(strings.NewReader("node\tzelda\tperson\n"))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := NewStore(seed, durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Generation(); got != 6 {
		t.Fatalf("recovered generation = %d, want 6", got)
	}
	if got := st2.Current().Fingerprint; got != want {
		t.Fatalf("recovered fingerprint = %s, want %s", got, want)
	}
	if st2.Current().KB.g.NodeByName("zelda") != kb.InvalidNode {
		t.Fatal("seed KB leaked into the recovered store")
	}
	// CheckpointEvery=3 means the 5 appends checkpointed at least once,
	// so recovery replayed only the tail.
	if ds := st2.DurabilityStats(); ds.CheckpointGen < 4 || ds.Replayed > 2 {
		t.Fatalf("recovered stats = %+v, want checkpoint >= 4 and <= 2 replayed", ds)
	}
	// The recovered store keeps serving and mutating.
	res, err := st2.Current().Explainer.Explain("alice", "w3")
	if err != nil || len(res.Explanations) == 0 {
		t.Fatalf("recovered query = (%v, %v), want an explanation", res, err)
	}
	if _, err := st2.Apply(strings.NewReader(soakDelta(9))); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDurableNoopDeltaNotJournaled(t *testing.T) {
	st, err := NewStore(durableKB(t), durableOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	info, err := st.Apply(strings.NewReader("edge\talice\tbob\tknows\n"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 1 {
		t.Fatalf("no-op delta published generation %d", info.Generation)
	}
	if ds := st.DurabilityStats(); ds.Appends != 0 {
		t.Fatalf("no-op delta reached the WAL: %+v", ds)
	}
	// Failed deltas don't reach the WAL either.
	if _, err := st.Apply(strings.NewReader("edge\tghost\tbob\tknows\n")); err == nil {
		t.Fatal("bad delta accepted")
	}
	if ds := st.DurabilityStats(); ds.Appends != 0 {
		t.Fatalf("failed delta reached the WAL: %+v", ds)
	}
}

func TestStoreDurableReloadFromCheckpoints(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(durableKB(t), durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply(strings.NewReader(soakDelta(0))); err != nil {
		t.Fatal(err)
	}
	path := writeTempKB(t, storeBaseTSV)
	info, err := st.ReloadFrom(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds := st.DurabilityStats(); ds.CheckpointGen != info.Generation {
		t.Fatalf("reload did not checkpoint: stats %+v, generation %d", ds, info.Generation)
	}
	st.Close()

	st2, err := NewStore(durableKB(t), durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Generation() != info.Generation || st2.Current().Fingerprint != info.Fingerprint {
		t.Fatalf("recovered (gen %d, %s), want the reloaded (gen %d, %s)",
			st2.Generation(), st2.Current().Fingerprint, info.Generation, info.Fingerprint)
	}

	// A failed reload-checkpoint aborts the swap: nothing acknowledged,
	// nothing published.
	defer fail.Reset()
	fail.Enable("checkpoint.write")
	if _, err := st2.ReloadFrom(path); err == nil {
		t.Fatal("reload with failing checkpoint succeeded")
	}
	fail.Reset()
	if st2.Generation() != info.Generation {
		t.Fatal("aborted reload bumped the generation")
	}
}

func writeTempKB(t *testing.T, tsv string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "kb.tsv")
	if err := os.WriteFile(path, []byte(tsv), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCrashRecoverySoak is the fault-injection soak of the durability
// tentpole: for every failpoint on the write path, crash a durable
// store mid-apply at several positions (straddling checkpoint
// boundaries), reopen the directory, and assert the recovered state is
// a crash-free state at or past the last acknowledged generation — no
// acknowledged delta is ever lost, and an unacknowledged one is either
// fully in or fully out (at-least-once, never torn).
func TestCrashRecoverySoak(t *testing.T) {
	const nDeltas = 8
	deltas := make([]string, nDeltas)
	for i := range deltas {
		deltas[i] = soakDelta(i)
	}
	oracle := soakOracle(t, deltas)
	finalGen := uint64(nDeltas + 1)

	points := []string{
		"wal.append",        // injected error before the frame is written
		"wal.append.torn",   // crash mid-write: half a frame on disk
		"wal.sync",          // fsync fails inside the sync path
		"wal.sync.error",    // write succeeded, flush layer fails
		"checkpoint.write",  // crash mid-checkpoint: partial temp file
		"checkpoint.rename", // checkpoint durable as temp, never renamed
		"checkpoint.gc",     // new checkpoint durable, old files + WAL remain
		"live.publish",      // delta durable in WAL, crash before publish
	}
	// Crash positions 3 and 5 straddle the CheckpointEvery=3 boundary
	// (the 3rd append triggers the checkpoint attempt); 1 exercises the
	// young-journal path.
	crashAts := []int{1, 3, 5}

	for _, point := range points {
		for _, crashAt := range crashAts {
			t.Run(fmt.Sprintf("%s@%d", point, crashAt), func(t *testing.T) {
				defer fail.Reset()
				dir := t.TempDir()
				st, err := NewStore(durableKB(t), durableOptions(dir))
				if err != nil {
					t.Fatal(err)
				}
				acked := uint64(1)
				for i := 0; i <= crashAt; i++ {
					if i == crashAt {
						fail.EnableTimes(point, 1)
					}
					info, err := st.Apply(strings.NewReader(deltas[i]))
					if i == crashAt {
						fail.Reset()
						// The injected fault may or may not surface as an
						// error (checkpoint failures are absorbed); either
						// way the process "crashes" here — the store is
						// abandoned without Close.
						if err == nil {
							acked = info.Generation
						}
						break
					}
					if err != nil {
						t.Fatalf("apply %d before the failpoint: %v", i, err)
					}
					acked = info.Generation
				}

				// Reopen the directory as a fresh process would.
				st2, err := NewStore(durableKB(t), durableOptions(dir))
				if err != nil {
					t.Fatalf("recovery after %s: %v", point, err)
				}
				defer st2.Close()
				gen := st2.Generation()
				if gen < acked {
					t.Fatalf("lost acknowledged delta: recovered generation %d < acked %d", gen, acked)
				}
				if gen >= uint64(len(oracle)) {
					t.Fatalf("recovered generation %d past the oracle", gen)
				}
				if got := st2.Current().Fingerprint; got != oracle[gen] {
					t.Fatalf("recovered generation %d fingerprint = %s, want crash-free %s", gen, got, oracle[gen])
				}

				// The recovered store finishes the run and converges on the
				// crash-free final state.
				for g := gen; g < finalGen; g++ {
					info, err := st2.Apply(strings.NewReader(deltas[g-1]))
					if err != nil {
						t.Fatalf("post-recovery apply for generation %d: %v", g+1, err)
					}
					if info.Generation != g+1 || info.Fingerprint != oracle[g+1] {
						t.Fatalf("post-recovery generation %d = %s, want %s", info.Generation, info.Fingerprint, oracle[g+1])
					}
				}
				res, err := st2.Current().Explainer.Explain("alice", fmt.Sprintf("w%d", nDeltas-1))
				if err != nil || len(res.Explanations) == 0 {
					t.Fatalf("converged store query = (%v, %v), want an explanation", res, err)
				}
			})
		}
	}
}
