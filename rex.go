// Package rex explains relationships between entity pairs over a
// knowledge base, reproducing the REX system of Fang, Das Sarma, Yu and
// Bohannon (PVLDB 5(3), 2011).
//
// Given two entities, REX enumerates all minimal relationship
// explanations — constrained graph patterns connecting the pair,
// together with their instances in the knowledge base — and ranks them
// by configurable interestingness measures:
//
//	kb, _ := rex.LoadKB("entertainment.tsv")
//	ex, _ := rex.NewExplainer(kb, rex.Options{Measure: "size+local-dist", TopK: 5})
//	res, _ := ex.Explain("brad_pitt", "angelina_jolie")
//	for _, e := range res.Explanations {
//	    fmt.Println(e.Description)
//	}
//
// The package is a facade over the internal engine; see DESIGN.md for
// the architecture and the mapping to the paper's algorithms.
package rex

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"rex/internal/decorate"
	"rex/internal/enumerate"
	"rex/internal/fail"
	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/match"
	"rex/internal/measure"
	"rex/internal/obs"
	"rex/internal/pattern"
	"rex/internal/rank"
	"rex/internal/relstore"
)

// ErrUnknownEntity is wrapped by errors returned for entity names absent
// from the knowledge base; match with errors.Is.
var ErrUnknownEntity = errors.New("unknown entity")

// KB is a knowledge base: a graph of entities connected by labeled,
// directed or undirected primary relationships.
type KB struct {
	g *kb.Graph
}

// LoadKB reads a knowledge base from a file, auto-detecting the format:
// the fast binary format (see KB.SaveBinary) by its magic header,
// otherwise the TSV interchange format (node/label/edge records).
func LoadKB(path string) (*KB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(5)
	if err == nil && string(head) == "REXKB" {
		g, err := kb.ReadBinary(br)
		if err != nil {
			return nil, err
		}
		return &KB{g: g}, nil
	}
	g, err := kb.ReadTSV(br)
	if err != nil {
		return nil, err
	}
	return &KB{g: g}, nil
}

// SaveBinary writes the knowledge base in the fast binary format, which
// loads an order of magnitude faster than TSV at paper scale.
func (k *KB) SaveBinary(path string) error { return k.g.SaveBinary(path) }

// ReadKB parses a knowledge base from TSV input.
func ReadKB(r io.Reader) (*KB, error) {
	g, err := kb.ReadTSV(r)
	if err != nil {
		return nil, err
	}
	return &KB{g: g}, nil
}

// WriteTSV serialises the knowledge base.
func (k *KB) WriteTSV(w io.Writer) error { return k.g.WriteTSV(w) }

// SaveTSV writes the knowledge base to a file.
func (k *KB) SaveTSV(path string) error { return k.g.SaveTSV(path) }

// SampleKB returns the curated entertainment knowledge base used by the
// examples and the paper's running example (Brad Pitt, Angelina Jolie,
// Tom Cruise, Kate Winslet, ...).
func SampleKB() *KB { return &KB{g: kbgen.Sample()} }

// GenOptions configures synthetic knowledge-base generation.
type GenOptions struct {
	// Scale multiplies the entity populations; 1.0 ≈ 2,700 entities,
	// 75 ≈ the paper's 200K-entity DBpedia extraction.
	Scale float64
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateKB builds a synthetic entertainment knowledge base with the
// schema of the paper's DBpedia extraction.
func GenerateKB(opt GenOptions) *KB {
	return &KB{g: kbgen.Generate(kbgen.Options{Scale: opt.Scale, Seed: opt.Seed})}
}

// Stats summarises a knowledge base.
type Stats struct {
	Nodes, Edges, Labels int
	MaxDegree            int
	AvgDegree            float64
}

// Stats reports knowledge-base summary statistics.
func (k *KB) Stats() Stats {
	s := k.g.Stats()
	return Stats{Nodes: s.Nodes, Edges: s.Edges, Labels: s.Labels,
		MaxDegree: s.MaxDegree, AvgDegree: s.AvgDegree}
}

// Fingerprint returns the knowledge base's 16-hex-digit content hash —
// the same value served in query responses and /stats, and carried in
// the binary snapshot format for load-time identity checks.
func (k *KB) Fingerprint() string { return k.g.Fingerprint() }

// HasEntity reports whether the knowledge base contains the named entity.
func (k *KB) HasEntity(name string) bool { return k.g.NodeByName(name) != kb.InvalidNode }

// Entities returns all entity names of a given type ("" for all), in
// insertion order.
func (k *KB) Entities(typ string) []string {
	var out []string
	for _, n := range k.g.Nodes() {
		if typ == "" || n.Type == typ {
			out = append(out, n.Name)
		}
	}
	return out
}

// Connectedness counts the simple paths of length ≤ maxLen between two
// named entities — the workload-bucketing metric of the paper's
// evaluation. It returns an error for unknown entities.
func (k *KB) Connectedness(start, end string, maxLen int) (int, error) {
	s := k.g.NodeByName(start)
	if s == kb.InvalidNode {
		return 0, fmt.Errorf("rex: %w %q", ErrUnknownEntity, start)
	}
	e := k.g.NodeByName(end)
	if e == kb.InvalidNode {
		return 0, fmt.Errorf("rex: %w %q", ErrUnknownEntity, end)
	}
	return k.g.Connectedness(s, e, maxLen, -1), nil
}

// Options configures an Explainer. The zero value uses the paper's
// experimental defaults: pattern size limit 5, prioritized path
// enumeration, pruned path union, the size+local-dist combined measure
// that won the paper's user study, top-10 results, and pruned ranking.
type Options struct {
	// MaxPatternSize bounds explanation pattern size in nodes (paper: 5).
	MaxPatternSize int
	// PathAlgorithm is one of "naive", "basic", "prioritized".
	PathAlgorithm string
	// UnionAlgorithm is one of "basic", "prune".
	UnionAlgorithm string
	// Measure names the interestingness measure: size, random-walk,
	// count, monocount, local-dist, global-dist, size+monocount,
	// size+local-dist.
	Measure string
	// TopK bounds the number of returned explanations (paper: 10).
	TopK int
	// GlobalSamples is the number of sampled start entities estimating
	// the global distribution (paper: 100). Only used by global-dist.
	GlobalSamples int
	// Seed drives the deterministic sampling used by global-dist.
	Seed int64
	// DisablePruning forces the general enumerate-then-rank pipeline
	// even when measure-specific pruning is available; used by the
	// benchmarks to quantify pruning gains.
	DisablePruning bool
	// MaxInstancesPerExplanation truncates the instance lists included
	// in results (0 keeps everything). Enumeration itself is unaffected.
	MaxInstancesPerExplanation int
	// Decorate re-attaches non-essential context facts (e.g. the
	// director of a co-starred film) to each returned explanation — the
	// post-processing stage Section 2.3 of the paper defers.
	Decorate bool
	// Parallelism sizes the worker pool the engine fans the prioritized
	// enumeration frontier over: 0 uses GOMAXPROCS, 1 forces serial
	// enumeration. Results are identical either way.
	Parallelism int
	// CacheSize enables an LRU cache of rendered results keyed by
	// (entity pair, normalized options) when positive; 0 disables
	// caching. Cached results are shared between callers and must be
	// treated as read-only.
	CacheSize int
	// Budget bounds the work of every query answered by this explainer,
	// making heavy pairs anytime: when the budget expires the best
	// explanations found so far are returned with Result.Truncated set
	// instead of running to exhaustion. The zero value never truncates.
	// ExplainBudgeted and BatchOptions.Budget override it per request.
	Budget Budget
	// Durability, when its Dir is set, makes a Store built with these
	// options crash-safe: accepted deltas are written to a write-ahead
	// log before they are published, the graph is periodically
	// checkpointed, and a store reopened over the same directory
	// recovers the last acknowledged state. Ignored by plain Explainers.
	Durability DurabilityOptions
}

// DurabilityOptions configures the crash-safety journal of a Store: a
// directory holding a write-ahead log of accepted delta batches plus
// periodic full checkpoints. The zero value disables durability.
type DurabilityOptions struct {
	// Dir is the journal directory (created if missing). Empty disables
	// durability entirely. When the directory already holds a journal,
	// the recovered state wins over the KB the store is constructed
	// with: generation numbering resumes where the previous process
	// stopped.
	Dir string
	// Fsync selects when the WAL is flushed to stable storage: "always"
	// (the default — an acknowledged delta survives machine crashes),
	// "interval" (flush at most once per FsyncInterval), or "off"
	// (leave flushing to the OS page cache; a machine crash can lose
	// recently acknowledged deltas, a process crash cannot).
	Fsync string
	// FsyncInterval bounds the unsynced window under Fsync "interval"
	// (default 100ms).
	FsyncInterval time.Duration
	// CheckpointEvery checkpoints after this many WAL appends (default
	// 64; negative disables count-driven checkpoints).
	CheckpointEvery int
	// CheckpointBytes checkpoints once the WAL exceeds this size
	// (default 64 MiB; negative disables).
	CheckpointBytes int64
}

// Budget bounds the work of one query, turning the prioritized
// enumeration into the anytime search the paper's activation ordering
// was designed for (Section 5): cheap, high-value explanations are
// found first, so stopping early keeps the best ones. An exhausted
// budget is not an error — the query returns its best-so-far
// explanations with Result.Truncated set. The zero value never
// truncates and is byte-identical to an unbudgeted query.
type Budget struct {
	// MaxExpansions bounds the node expansions of the prioritized path
	// search (0 = unlimited). Expansion-budgeted enumeration is
	// deterministic: the result is a prefix-consistent subset of the
	// unbudgeted explanation set, identical across runs and worker
	// counts. Requires PathAlgorithm "prioritized" (the default); the
	// naive and basic strawmen ignore it.
	MaxExpansions int
	// Timeout bounds the query's wall-clock time (0 = none), polled at
	// bounded intervals in enumeration, union and ranking. Unlike a
	// context deadline — which aborts with an error — an expired budget
	// timeout returns the truncated best-so-far result. Timeout
	// truncation is timing-dependent, so such results are never cached.
	Timeout time.Duration
}

// active reports whether the budget can truncate at all.
func (b Budget) active() bool { return b.MaxExpansions > 0 || b.Timeout > 0 }

// normalized clamps nonsensical negative fields to "unlimited".
func (b Budget) normalized() Budget {
	if b.MaxExpansions < 0 {
		b.MaxExpansions = 0
	}
	if b.Timeout < 0 {
		b.Timeout = 0
	}
	return b
}

func (o Options) normalized() Options {
	o.Budget = o.Budget.normalized()
	if o.MaxPatternSize <= 0 {
		o.MaxPatternSize = 5
	}
	if o.PathAlgorithm == "" {
		o.PathAlgorithm = "prioritized"
	}
	if o.UnionAlgorithm == "" {
		o.UnionAlgorithm = "prune"
	}
	if o.Measure == "" {
		o.Measure = "size+local-dist"
	}
	if o.TopK <= 0 {
		o.TopK = 10
	}
	if o.GlobalSamples <= 0 {
		o.GlobalSamples = 100
	}
	return o
}

// Explainer answers relationship-explanation queries over one knowledge
// base. It is safe for concurrent use: the knowledge base is frozen at
// construction so every query path is a pure read, and the optional
// result cache is internally synchronised.
type Explainer struct {
	kb    *KB
	opt   Options
	m     measure.Measure
	cfg   enumerate.Config
	cache *resultCache
	// flight coalesces concurrent identical (pair, budget) queries onto
	// one computation — duplicate pairs in a batch, or a hot pair under
	// serving traffic, cost one execution instead of racing N times.
	// Always on (it needs no capacity), independent of the cache.
	flight *flightGroup
	// eval is the shared-computation measure evaluator for this
	// explainer's (frozen) graph: match counts and local-distribution
	// tables are memoised across explanations and queries. It is pinned
	// to the graph, so stores that hot-swap snapshots get a fresh one
	// per generation automatically (each snapshot builds its own
	// Explainer) — swap-time invalidation mirrors the result cache's.
	eval *measure.Evaluator
}

// NewExplainer validates the options and builds an explainer.
func NewExplainer(k *KB, opt Options) (*Explainer, error) {
	return newExplainer(k, opt, nil, nil)
}

// newExplainer is NewExplainer with an optional evaluator carry basis:
// prevEval is the previous snapshot's evaluator and touched the labels
// changed by the delta separating the snapshots, so memos for untouched
// patterns warm the new generation instead of recomputing (see
// internal/measure/carry.go). Both nil for a cold build.
func newExplainer(k *KB, opt Options, prevEval *measure.Evaluator, touched map[kb.LabelID]struct{}) (*Explainer, error) {
	opt = opt.normalized()
	cfg := enumerate.Config{MaxPatternSize: opt.MaxPatternSize, Workers: opt.Parallelism}
	switch opt.PathAlgorithm {
	case "naive":
		cfg.PathAlg = enumerate.PathNaive
	case "basic":
		cfg.PathAlg = enumerate.PathBasic
	case "prioritized":
		cfg.PathAlg = enumerate.PathPrioritized
	default:
		return nil, fmt.Errorf("rex: unknown path algorithm %q", opt.PathAlgorithm)
	}
	switch opt.UnionAlgorithm {
	case "basic":
		cfg.UnionAlg = enumerate.UnionBasic
	case "prune":
		cfg.UnionAlg = enumerate.UnionPrune
	default:
		return nil, fmt.Errorf("rex: unknown union algorithm %q", opt.UnionAlgorithm)
	}
	m, err := MeasureByName(opt.Measure)
	if err != nil {
		return nil, err
	}
	// Freezing here (idempotent for the loaders, which already freeze)
	// guarantees the graph's read indexes exist before the first query
	// and that concurrent queries never mutate shared state.
	k.g.Freeze()
	// The enumeration pool shares the evaluator's lifetime contract: one
	// per snapshot, so steady-state queries reuse frontier and merge
	// buffers, and a hot swap releases them with the old explainer.
	cfg.Pool = enumerate.NewPool()
	e := &Explainer{kb: k, opt: opt, m: m, cfg: cfg,
		flight: newFlightGroup(), eval: measure.NewEvaluatorFrom(k.g, prevEval, touched)}
	if opt.CacheSize > 0 {
		e.cache = newResultCache(opt.CacheSize)
	}
	return e, nil
}

// MeasureNames lists the supported interestingness measures. The first
// eight are the paper's Table 1 rows; local-dev and global-dev are the
// standard-deviation distributional variant the paper sketches in
// Section 4.3.
func MeasureNames() []string {
	return []string{"size", "random-walk", "count", "monocount",
		"local-dist", "global-dist", "size+monocount", "size+local-dist",
		"local-dev", "global-dev"}
}

// MeasureByName resolves a measure name.
func MeasureByName(name string) (measure.Measure, error) {
	switch name {
	case "size":
		return measure.Size{}, nil
	case "random-walk":
		return measure.RandomWalk{}, nil
	case "count":
		return measure.Count{}, nil
	case "monocount":
		return measure.Monocount{}, nil
	case "local-dist":
		return measure.LocalPosition{}, nil
	case "global-dist":
		return measure.GlobalPosition{}, nil
	case "size+monocount":
		return measure.Combined{Primary: measure.Size{}, Secondary: measure.Monocount{}}, nil
	case "size+local-dist":
		return measure.Combined{Primary: measure.Size{}, Secondary: measure.LocalPosition{}}, nil
	case "local-dev":
		return measure.LocalDeviation{}, nil
	case "global-dev":
		return measure.GlobalDeviation{}, nil
	}
	return nil, fmt.Errorf("rex: unknown measure %q (supported: %v)", name, MeasureNames())
}

// Instance is one concrete realisation of an explanation pattern: entity
// names bound to the pattern's variables. Bindings[0] is the start
// entity, Bindings[1] the end entity; the rest follow variable order.
type Instance struct {
	Bindings []string
}

// Explanation is a ranked relationship explanation.
type Explanation struct {
	// Pattern is the compact pattern rendering with variables.
	Pattern string
	// Description substitutes the first instance's entities into the
	// pattern for display ("brad_pitt --spouse-- angelina_jolie; ...").
	Description string
	// SQL is the paper-style SQL query whose groups compute the local
	// count distribution of this pattern (Section 5.3.2).
	SQL string
	// IsPath reports whether the pattern is a simple path.
	IsPath bool
	// Size is the number of pattern nodes including the targets.
	Size int
	// NumInstances is the count of distinct instances (M_count).
	NumInstances int
	// Monocount is the anti-monotonic aggregate (M_monocount).
	Monocount int
	// Score is the measure's lexicographic score (greater = more
	// interesting).
	Score []float64
	// Instances lists (possibly truncated) concrete instances.
	Instances []Instance
	// Decorations lists rendered non-essential context facts when
	// Options.Decorate is set ("v2 --directed_by--> doug_liman").
	Decorations []string
}

// Result is a ranked explanation list for one entity pair.
type Result struct {
	Start, End   string
	Measure      string
	Explanations []Explanation
	// Truncated reports that the query exhausted its Budget and
	// Explanations holds the best explanations found within it rather
	// than the exhaustive ranking. Every listed explanation is complete
	// (real pattern, real instances, exact scores); only coverage of the
	// candidate space was cut short. Always false for unbudgeted
	// queries.
	Truncated bool
	// Trace is the per-stage execution trace when the query ran under a
	// context from WithTrace, nil otherwise. Traced results are always
	// private shallow copies, so the trace is per-caller even when the
	// underlying result came from the cache or a coalesced computation.
	Trace *QueryTrace `json:"trace,omitempty"`
}

// Explain enumerates and ranks relationship explanations between two
// named entities. It is ExplainContext without a deadline.
func (e *Explainer) Explain(start, end string) (*Result, error) {
	return e.ExplainContext(context.Background(), start, end)
}

// ExplainContext enumerates and ranks relationship explanations between
// two named entities under a context: cancellation or an expired deadline
// aborts enumeration, matching and ranking mid-flight (checked at bounded
// intervals) and returns ctx.Err(). When the explainer was built with a
// positive Options.CacheSize, results are served from and stored into the
// LRU cache. Concurrent identical queries are coalesced onto a single
// computation, so results — cached or not — are shared between callers
// and must be treated as read-only. Queries run under Options.Budget;
// use ExplainBudgeted to override it per request.
func (e *Explainer) ExplainContext(ctx context.Context, start, end string) (*Result, error) {
	return e.ExplainBudgeted(ctx, start, end, e.opt.Budget)
}

// testHookComputeStart, when set by a test, is called by the
// single-flight leader before it starts computing; tests block it to
// pin concurrent duplicate queries in the joined state.
var testHookComputeStart func(key string)

// ExplainBudgeted is ExplainContext with a per-request work budget
// overriding Options.Budget: when the budget expires the query returns
// the best explanations found so far with Result.Truncated set (see
// Budget). A zero budget runs to exhaustion and is byte-identical to an
// unbudgeted query.
func (e *Explainer) ExplainBudgeted(ctx context.Context, start, end string, b Budget) (*Result, error) {
	b = b.normalized()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Failpoint for the panic-containment tests: armed with a panicking
	// function it simulates an engine bug inside the query path; unarmed
	// it is a single atomic load.
	_ = fail.Hit("explain.query")
	tr := obs.FromContext(ctx)
	t0 := tr.Begin()
	g := e.kb.g
	s := g.NodeByName(start)
	if s == kb.InvalidNode {
		return nil, fmt.Errorf("rex: %w %q", ErrUnknownEntity, start)
	}
	t := g.NodeByName(end)
	if t == kb.InvalidNode {
		return nil, fmt.Errorf("rex: %w %q", ErrUnknownEntity, end)
	}
	if s == t {
		return nil, fmt.Errorf("rex: start and end entity are both %q", start)
	}
	key := e.queryKey(start, end, b)
	if e.cache != nil {
		if res, ok := e.cache.get(key); ok {
			tr.MarkCacheHit()
			return tracedResult(res, tr, t0, b), nil
		}
	}
	res, err := e.flight.do(ctx, key, func() (*Result, error) {
		if h := testHookComputeStart; h != nil {
			h(key)
		}
		res, err := e.compute(ctx, start, end, s, t, b)
		// Timeout-TRUNCATED results are wall-clock-dependent and never
		// stored: a result truncated under momentary load must not keep
		// answering for a pair that deserves the full budget later. An
		// untruncated result is byte-identical to the unbudgeted answer
		// regardless of the budget, and expansion-budget truncation is
		// deterministic — both cache fine (under the budget-suffixed
		// key), so a wall-clock default budget does not disable the
		// cache for the pairs that finish inside it.
		if err == nil && e.cache != nil && !(b.Timeout > 0 && res.Truncated) {
			e.cache.put(key, res)
		}
		return res, err
	})
	return tracedResult(res, tr, t0, b), err
}

// compute runs the full enumerate → measure → rank → render pipeline
// for one resolved pair under a budget. Exactly one goroutine runs it
// per in-flight (pair, budget) key.
func (e *Explainer) compute(ctx context.Context, start, end string, s, t kb.NodeID, b Budget) (*Result, error) {
	g := e.kb.g
	cfg := e.cfg
	if b.active() {
		cfg.Budget.MaxExpansions = b.MaxExpansions
		if b.Timeout > 0 {
			cfg.Budget.Deadline = time.Now().Add(b.Timeout)
		}
	}
	mctx := &measure.Context{G: g, Start: s, End: t, Ctx: ctx, Eval: e.eval}
	if needsGlobalSamples(e.m) {
		mctx.SampleStarts = measure.SampleStartsOfType(g, g.Node(s).Type, e.opt.GlobalSamples, e.opt.Seed)
	}

	var (
		ranked    []rank.Ranked
		truncated bool
		err       error
	)
	switch {
	case !e.opt.DisablePruning && e.m.AntiMonotonic():
		ranked, truncated, err = rank.TopKAntiMonotoneBudgeted(ctx, g, s, t, cfg, mctx, e.m, e.opt.TopK)
	case !e.opt.DisablePruning && isLimited(e.m):
		var es []*pattern.Explanation
		var etrunc, rtrunc bool
		es, etrunc, err = enumerate.ExplanationsBudgeted(ctx, g, s, t, cfg)
		if err == nil {
			ranked, rtrunc, err = rank.TopKDistributionalBudgeted(ctx, mctx, es, e.m.(measure.Limited), e.opt.TopK, cfg.Budget.Deadline)
		}
		truncated = etrunc || rtrunc
	default:
		var es []*pattern.Explanation
		var etrunc, rtrunc bool
		es, etrunc, err = enumerate.ExplanationsBudgeted(ctx, g, s, t, cfg)
		if err == nil {
			ranked, rtrunc, err = rank.GeneralBudgeted(ctx, mctx, es, e.m, e.opt.TopK, cfg.Budget.Deadline)
		}
		truncated = etrunc || rtrunc
	}
	if err != nil {
		return nil, err
	}
	// Final guard: a context that expired at the very end of ranking must
	// never let a possibly-partial result be returned — or worse, cached
	// and served to callers that had no deadline at all.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{Start: start, End: end, Measure: e.m.Name(), Truncated: truncated}
	for _, r := range ranked {
		res.Explanations = append(res.Explanations, e.render(r))
	}
	return res, nil
}

// queryKey builds the cache and single-flight key for a (pair, budget)
// query. The cache and flight group belong to exactly one explainer
// (and therefore one normalized option set), so the pair plus the
// budget identifies the computation. Length-prefixing makes the key
// unambiguous for arbitrary entity names — no separator byte needs to
// be excluded — and unbudgeted queries keep the historical pair-only
// key shape.
func (e *Explainer) queryKey(start, end string, b Budget) string {
	key := fmt.Sprintf("%d:%s%d:%s", len(start), start, len(end), end)
	if b.active() {
		key += fmt.Sprintf("|x%d|t%d", b.MaxExpansions, int64(b.Timeout))
	}
	return key
}

func isLimited(m measure.Measure) bool {
	_, ok := m.(measure.Limited)
	return ok
}

// needsGlobalSamples reports whether a measure (or either half of a
// combination) evaluates a global distribution and therefore needs the
// sampled start entities in its context.
func needsGlobalSamples(m measure.Measure) bool {
	switch v := m.(type) {
	case measure.GlobalPosition, measure.GlobalDeviation:
		return true
	case measure.Combined:
		return needsGlobalSamples(v.Primary) || needsGlobalSamples(v.Secondary)
	}
	return false
}

// render converts an internal ranked explanation to the public shape.
func (e *Explainer) render(r rank.Ranked) Explanation {
	g := e.kb.g
	ex := r.Ex
	out := Explanation{
		Pattern:      ex.P.String(),
		IsPath:       ex.P.IsPath(),
		Size:         ex.P.NumVars(),
		NumInstances: ex.Count(),
		Monocount:    ex.Monocount(),
		Score:        append([]float64{}, r.Score...),
		SQL:          relstore.SQL(g, ex.P, ex.Count(), -1),
	}
	if len(ex.Instances) > 0 {
		out.Description = ex.P.Describe(g, ex.Instances[0])
	} else {
		out.Description = ex.P.Describe(g, nil)
	}
	limit := e.opt.MaxInstancesPerExplanation
	for i, in := range ex.Instances {
		if limit > 0 && i >= limit {
			break
		}
		names := make([]string, len(in))
		for v, id := range in {
			names[v] = g.NodeName(id)
		}
		out.Instances = append(out.Instances, Instance{Bindings: names})
	}
	if e.opt.Decorate {
		for _, d := range decorate.Explanation(g, ex, decorate.Options{}) {
			out.Decorations = append(out.Decorations, d.Describe(g))
		}
	}
	return out
}

// CountInstances recounts an explanation pattern's instances with the
// independent subgraph matcher — exposed for verification tooling.
func (e *Explainer) CountInstances(p *pattern.Pattern, start, end string) (int, error) {
	g := e.kb.g
	s := g.NodeByName(start)
	t := g.NodeByName(end)
	if s == kb.InvalidNode || t == kb.InvalidNode {
		return 0, fmt.Errorf("rex: %w in pair (%q, %q)", ErrUnknownEntity, start, end)
	}
	return match.Count(g, p, s, t), nil
}
