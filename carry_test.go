package rex

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// clusteredKB builds n disconnected four-node clusters, each with two
// parallel two-hop paths between its (s_i, t_i) pair:
//
//	s_i --rel-- m1_i --rel-- t_i
//	s_i --rel-- m2_i --rel-- t_i
//
// Clusters share no nodes or edges, so a delta inside cluster 0 is
// provably unobservable from every other cluster's pair.
func clusteredKB(t *testing.T, n int) *KB {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("label\trel\tU\nlabel\textra\tU\n")
	for i := 0; i < n; i++ {
		for _, v := range []string{"s", "m1", "m2", "t"} {
			fmt.Fprintf(&sb, "node\t%s%d\tperson\n", v, i)
		}
		fmt.Fprintf(&sb, "edge\ts%d\tm1%d\trel\n", i, i)
		fmt.Fprintf(&sb, "edge\tm1%d\tt%d\trel\n", i, i)
		fmt.Fprintf(&sb, "edge\ts%d\tm2%d\trel\n", i, i)
		fmt.Fprintf(&sb, "edge\tm2%d\tt%d\trel\n", i, i)
	}
	k, err := ReadKB(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestCarryOverAcrossSwap is the carry-over acceptance test: after a
// delta touching one label inside one cluster, every other cluster's
// cached result survives the swap (≥ 90% here: 11 of 12), each carried
// result is byte-identical to a fresh recomputation on the new
// snapshot, and the touched pair is never served its stale answer.
func TestCarryOverAcrossSwap(t *testing.T) {
	const clusters = 12
	// CacheSize below the shard threshold keeps the cache single-sharded
	// with exact global LRU, so all 12 warm entries coexist.
	st := mustStore(t, clusteredKB(t, clusters), Options{
		Measure: "size+local-dist", TopK: 10, CacheSize: 32,
	})

	// Warm the cache on every cluster's hot pair.
	warm := make([]*Result, clusters)
	for i := 0; i < clusters; i++ {
		res := mustExplain(t, st, fmt.Sprintf("s%d", i), fmt.Sprintf("t%d", i))
		warm[i] = res
	}
	if got := st.Current().Explainer.CacheStats().Entries; got != clusters {
		t.Fatalf("warm cache entries = %d, want %d", got, clusters)
	}

	// One-label delta inside cluster 0: a direct s0—t0 edge under the
	// otherwise unused "extra" label, which adds a size-2 explanation
	// for the touched pair.
	info, err := st.Apply(strings.NewReader("edge\ts0\tt0\textra\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Overlay {
		t.Errorf("delta not applied as overlay: %+v", info)
	}
	if info.ResultsCarried != clusters-1 || info.ResultsDropped != 1 {
		t.Fatalf("carried/dropped = %d/%d, want %d/1", info.ResultsCarried, info.ResultsDropped, clusters-1)
	}

	snap := st.Current()
	stats0 := snap.Explainer.CacheStats()

	// Every untouched pair is a post-swap cache hit, and the served
	// result is byte-identical to a cold recomputation on the new graph.
	cold, err := NewExplainer(snap.KB, st.opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < clusters; i++ {
		start, end := fmt.Sprintf("s%d", i), fmt.Sprintf("t%d", i)
		got := mustExplain(t, st, start, end)
		if got != warm[i] {
			t.Errorf("pair %d: carried result is not the cached pointer", i)
		}
		fresh, err := cold.Explain(start, end)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, fresh) {
			t.Errorf("pair %d: carried result diverges from fresh recomputation\ngot:   %+v\nfresh: %+v", i, got, fresh)
		}
	}
	stats1 := snap.Explainer.CacheStats()
	if hits := stats1.Hits - stats0.Hits; hits != clusters-1 {
		t.Errorf("post-swap hits = %d, want %d (≥90%% survival)", hits, clusters-1)
	}

	// The touched pair must not see its stale answer: the new direct
	// edge creates a size-2 explanation absent pre-swap.
	got0 := mustExplain(t, st, "s0", "t0")
	if reflect.DeepEqual(got0, warm[0]) {
		t.Fatal("touched pair served its pre-swap result")
	}
	found := false
	for _, ex := range got0.Explanations {
		if ex.Size == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("touched pair's fresh result lacks the new direct-edge explanation: %+v", got0.Explanations)
	}

	ls := st.LiveStats()
	if ls.ResultsCarried != uint64(clusters-1) || ls.ResultsDropped != 1 {
		t.Errorf("LiveStats carried/dropped = %d/%d", ls.ResultsCarried, ls.ResultsDropped)
	}
	if ls.OverlayDepth != 1 {
		t.Errorf("LiveStats overlay depth = %d, want 1", ls.OverlayDepth)
	}
}

// TestCarryPromotesMemos checks the evaluator side: re-ranking an
// untouched pair after a swap promotes memos (count tables, prefix
// walks) from the previous generation instead of recomputing, and the
// promotion counter surfaces in LiveStats.
func TestCarryPromotesMemos(t *testing.T) {
	st := mustStore(t, clusteredKB(t, 4), Options{
		Measure: "size+local-dist", TopK: 10, CacheSize: 0, // no result cache: force re-rank
	})
	for i := 0; i < 4; i++ {
		mustExplain(t, st, fmt.Sprintf("s%d", i), fmt.Sprintf("t%d", i))
	}
	if _, err := st.Apply(strings.NewReader("edge\ts0\tt0\textra\n")); err != nil {
		t.Fatal(err)
	}
	if got := st.LiveStats().MemoPromotions; got != 0 {
		t.Fatalf("promotions before any post-swap query = %d", got)
	}
	mustExplain(t, st, "s1", "t1") // rel-only patterns: all memos promotable
	if got := st.LiveStats().MemoPromotions; got == 0 {
		t.Error("re-ranking an untouched pair promoted no memos")
	}
}

// TestCarryDropsWhenInDoubt pins the wholesale-drop cases: retypes and
// whole-graph reloads forfeit the carry basis entirely.
func TestCarryDropsWhenInDoubt(t *testing.T) {
	st := mustStore(t, clusteredKB(t, 3), Options{
		Measure: "size", TopK: 5, CacheSize: 16,
	})
	for i := 0; i < 3; i++ {
		mustExplain(t, st, fmt.Sprintf("s%d", i), fmt.Sprintf("t%d", i))
	}
	info, err := st.Apply(strings.NewReader("settype\tm10\trobot\n"))
	if err != nil {
		t.Fatal(err)
	}
	if info.ResultsCarried != 0 || info.ResultsDropped != 3 {
		t.Errorf("retype delta carried %d, dropped %d; want 0/3", info.ResultsCarried, info.ResultsDropped)
	}
	if got := st.Current().Explainer.CacheStats().Entries; got != 0 {
		t.Errorf("cache entries after retype swap = %d, want 0", got)
	}
}

// TestCarryGlobalMeasureDropsResults pins that global-distribution
// measures never carry results: their sampled start set can shift under
// any node addition.
func TestCarryGlobalMeasureDropsResults(t *testing.T) {
	st := mustStore(t, clusteredKB(t, 3), Options{
		Measure: "global-dist", TopK: 5, CacheSize: 16, GlobalSamples: 8,
	})
	for i := 0; i < 3; i++ {
		mustExplain(t, st, fmt.Sprintf("s%d", i), fmt.Sprintf("t%d", i))
	}
	info, err := st.Apply(strings.NewReader("node\tnew0\tperson\nedge\ts0\tnew0\textra\n"))
	if err != nil {
		t.Fatal(err)
	}
	if info.ResultsCarried != 0 || info.ResultsDropped != 3 {
		t.Errorf("global-measure delta carried %d, dropped %d; want 0/3", info.ResultsCarried, info.ResultsDropped)
	}
}

func mustStore(t *testing.T, k *KB, opt Options) *Store {
	t.Helper()
	st, err := NewStore(k, opt)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustExplain(t *testing.T, st *Store, start, end string) *Result {
	t.Helper()
	res, err := st.Current().Explainer.Explain(start, end)
	if err != nil {
		t.Fatalf("explain %s %s: %v", start, end, err)
	}
	return res
}
