package rank

import (
	"testing"

	"rex/internal/enumerate"
	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/measure"
)

var rankCfg = enumerate.Config{
	PathAlg:  enumerate.PathPrioritized,
	UnionAlg: enumerate.UnionPrune,
}

func setup(t *testing.T, start, end string) (*kb.Graph, kb.NodeID, kb.NodeID, *measure.Context) {
	t.Helper()
	g := kbgen.Sample()
	s := g.NodeByName(start)
	e := g.NodeByName(end)
	if s == kb.InvalidNode || e == kb.InvalidNode {
		t.Fatalf("missing entities %s/%s", start, end)
	}
	return g, s, e, &measure.Context{G: g, Start: s, End: e}
}

var rankPairs = [][2]string{
	{"brad_pitt", "angelina_jolie"},
	{"kate_winslet", "leonardo_dicaprio"},
	{"tom_cruise", "will_smith"},
	{"brad_pitt", "julia_roberts"},
}

func assertSameRanking(t *testing.T, name string, want, got []Ranked) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d vs %d results", name, len(want), len(got))
		return
	}
	for i := range want {
		if want[i].Ex.P.CanonicalKey() != got[i].Ex.P.CanonicalKey() {
			t.Errorf("%s: rank %d differs: %v vs %v", name, i, want[i].Ex.P, got[i].Ex.P)
			return
		}
		if want[i].Score.Cmp(got[i].Score) != 0 {
			t.Errorf("%s: rank %d score differs: %v vs %v", name, i, want[i].Score, got[i].Score)
			return
		}
	}
}

// TestTopKAntiMonotoneEqualsGeneral is the correctness test for the
// Theorem 4 pruning: interleaved top-k ranking must return exactly what
// full enumeration plus sorting returns, for every anti-monotonic
// measure and several k.
func TestTopKAntiMonotoneEqualsGeneral(t *testing.T) {
	for _, pairNames := range rankPairs {
		g, s, e, ctx := setup(t, pairNames[0], pairNames[1])
		all := enumerate.Explanations(g, s, e, rankCfg)
		for _, m := range []measure.Measure{
			measure.Monocount{},
			measure.Size{},
			measure.Combined{Primary: measure.Size{}, Secondary: measure.Monocount{}},
		} {
			for _, k := range []int{1, 3, 10, 100} {
				want := General(ctx, all, m, k)
				got := TopKAntiMonotone(g, s, e, rankCfg, ctx, m, k)
				assertSameRanking(t, pairNames[0]+"/"+pairNames[1]+" "+m.Name(), want, got)
			}
		}
	}
}

// TestTopKDistributionalEqualsGeneral checks the LIMIT-style pruning for
// the distributional measures and their combinations.
func TestTopKDistributionalEqualsGeneral(t *testing.T) {
	for _, pairNames := range rankPairs {
		g, s, e, ctx := setup(t, pairNames[0], pairNames[1])
		ctx.SampleStarts = measure.SampleStarts(g, 15, 3)
		all := enumerate.Explanations(g, s, e, rankCfg)
		for _, m := range []measure.Limited{
			measure.LocalPosition{},
			measure.GlobalPosition{},
			measure.Combined{Primary: measure.Size{}, Secondary: measure.LocalPosition{}},
		} {
			for _, k := range []int{1, 5, 10} {
				want := General(ctx, all, m, k)
				got := TopKDistributional(ctx, all, m, k)
				assertSameRanking(t, pairNames[0]+"/"+pairNames[1]+" "+m.Name(), want, got)
			}
		}
	}
}

// TestGeneralDeterministic checks stable ordering under ties.
func TestGeneralDeterministic(t *testing.T) {
	g, s, e, ctx := setup(t, "brad_pitt", "angelina_jolie")
	all := enumerate.Explanations(g, s, e, rankCfg)
	a := General(ctx, all, measure.Size{}, 0)
	b := General(ctx, all, measure.Size{}, 0)
	assertSameRanking(t, "determinism", a, b)
	// Scores must be non-increasing.
	for i := 1; i < len(a); i++ {
		if a[i-1].Score.Less(a[i].Score) {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}
}

// TestGeneralCutsAtK checks the k boundary behaviour.
func TestGeneralCutsAtK(t *testing.T) {
	g, s, e, ctx := setup(t, "brad_pitt", "angelina_jolie")
	all := enumerate.Explanations(g, s, e, rankCfg)
	if len(all) < 4 {
		t.Fatalf("want several explanations, got %d", len(all))
	}
	if got := General(ctx, all, measure.Size{}, 3); len(got) != 3 {
		t.Fatalf("k=3 returned %d", len(got))
	}
	if got := General(ctx, all, measure.Size{}, 0); len(got) != len(all) {
		t.Fatalf("k=0 should return all, got %d/%d", len(got), len(all))
	}
	if got := General(ctx, all, measure.Size{}, len(all)+10); len(got) != len(all) {
		t.Fatalf("k beyond size returned %d", len(got))
	}
}

// TestTopKAntiMonotoneSparsePair exercises the edge case of a pair with
// very few explanations.
func TestTopKAntiMonotoneSparsePair(t *testing.T) {
	g, s, e, ctx := setup(t, "will_smith", "jada_pinkett_smith")
	got := TopKAntiMonotone(g, s, e, rankCfg, ctx, measure.Monocount{}, 10)
	all := enumerate.Explanations(g, s, e, rankCfg)
	want := General(ctx, all, measure.Monocount{}, 10)
	assertSameRanking(t, "sparse pair", want, got)
}

// TestRankingUnchangedByEvaluator locks the shared-computation engine's
// correctness bar at the ranking level: with a measure evaluator in the
// context, both pruned rankers still return exactly what full
// enumeration plus sorting returns without one.
func TestRankingUnchangedByEvaluator(t *testing.T) {
	for _, pairNames := range rankPairs {
		g, s, e, ctx := setup(t, pairNames[0], pairNames[1])
		ctx.SampleStarts = measure.SampleStarts(g, 15, 3)
		evCtx := &measure.Context{G: g, Start: s, End: e, SampleStarts: ctx.SampleStarts, Eval: measure.NewEvaluator(g)}
		all := enumerate.Explanations(g, s, e, rankCfg)
		am := measure.Combined{Primary: measure.Size{}, Secondary: measure.Monocount{}}
		for _, k := range []int{1, 3, 10} {
			want := General(ctx, all, am, k)
			got := TopKAntiMonotone(g, s, e, rankCfg, evCtx, am, k)
			assertSameRanking(t, "eval anti-monotone k="+am.Name(), want, got)
		}
		dm := measure.Combined{Primary: measure.Size{}, Secondary: measure.LocalPosition{}}
		for _, k := range []int{1, 5, 10} {
			want := General(ctx, all, dm, k)
			got := TopKDistributional(evCtx, all, dm, k)
			assertSameRanking(t, "eval distributional "+dm.Name(), want, got)
		}
	}
}
