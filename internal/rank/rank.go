// Package rank turns enumerated explanations into ranked explanation
// lists (Section 4.4):
//
//   - General: Algorithm 5 — enumerate everything, score everything,
//     sort, cut at k.
//   - TopKAntiMonotone: the interleaved algorithm for anti-monotonic
//     measures — only explanations currently in the top-k list are
//     expanded further, justified by Theorem 4 (any expansion can only
//     lower an anti-monotonic score).
//   - TopKDistributional: full enumeration, but the per-explanation
//     distributional position computation is bounded by the current
//     k-th best position (the SQL "LIMIT p" trick of Section 5.3.2).
package rank

import (
	"sort"

	"rex/internal/enumerate"
	"rex/internal/kb"
	"rex/internal/measure"
	"rex/internal/pattern"
)

// Ranked pairs an explanation with its interestingness score.
type Ranked struct {
	Ex    *pattern.Explanation
	Score measure.Score
}

// sortRanked orders by score descending. Ties break by (pattern size,
// edge count, key hash): deterministic, and — crucially for the
// Theorem 4 pruning — ancestor-consistent: a merge result always has
// more nodes, or equal nodes and more edges, than the explanations it
// was merged from, so on tied scores every ancestor of a top-k
// explanation is itself top-k and the interleaved expansion cannot miss
// it. (This also mirrors the paper's emission order: the ring-by-ring
// union produces small patterns first.)
func sortRanked(rs []Ranked) {
	sort.Slice(rs, func(i, j int) bool {
		if c := rs[i].Score.Cmp(rs[j].Score); c != 0 {
			return c > 0
		}
		pi, pj := rs[i].Ex.P, rs[j].Ex.P
		if pi.NumVars() != pj.NumVars() {
			return pi.NumVars() < pj.NumVars()
		}
		if pi.NumEdges() != pj.NumEdges() {
			return pi.NumEdges() < pj.NumEdges()
		}
		ki, kj := pi.CanonicalKey(), pj.CanonicalKey()
		hi, hj := fnv64(ki), fnv64(kj)
		if hi != hj {
			return hi < hj
		}
		return ki < kj
	})
}

// fnv64 is the FNV-1a hash, inlined to keep the package dependency-free.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// General implements Algorithm 5 over an already-enumerated explanation
// list: score, sort, return the top k (all, when k ≤ 0).
func General(ctx *measure.Context, es []*pattern.Explanation, m measure.Measure, k int) []Ranked {
	rs := make([]Ranked, len(es))
	for i, ex := range es {
		rs[i] = Ranked{Ex: ex, Score: m.Score(ctx, ex)}
	}
	sortRanked(rs)
	if k > 0 && len(rs) > k {
		rs = rs[:k]
	}
	return rs
}

// TopKAntiMonotone interleaves enumeration, scoring and ranking for an
// anti-monotonic measure: path explanations seed a candidate pool, and
// expansion (merging with path explanations) proceeds only from
// explanations currently in the top-k list, per Theorem 4. The final list
// equals General's on the full enumeration, usually at a fraction of the
// cost.
func TopKAntiMonotone(g *kb.Graph, start, end kb.NodeID, cfg enumerate.Config, ctx *measure.Context, m measure.Measure, k int) []Ranked {
	if k <= 0 {
		k = 10
	}
	paths := enumerate.Paths(g, start, end, cfg)
	maxVars := cfg.MaxPatternSize
	if maxVars <= 0 {
		maxVars = enumerate.DefaultMaxPatternSize
	}

	pool := make([]Ranked, 0, len(paths))
	seen := make(map[string]struct{}, len(paths))
	expanded := make(map[string]struct{})
	for _, ex := range paths {
		pool = append(pool, Ranked{Ex: ex, Score: m.Score(ctx, ex)})
		seen[ex.P.CanonicalKey()] = struct{}{}
	}

	for {
		sortRanked(pool)
		top := pool
		if len(top) > k {
			top = top[:k]
		}
		var frontier []*pattern.Explanation
		for _, r := range top {
			key := r.Ex.P.CanonicalKey()
			if _, done := expanded[key]; !done {
				expanded[key] = struct{}{}
				frontier = append(frontier, r.Ex)
			}
		}
		if len(frontier) == 0 {
			out := make([]Ranked, len(top))
			copy(out, top)
			return out
		}
		for _, re1 := range frontier {
			for _, re2 := range paths {
				for _, re := range pattern.Merge(re1, re2, maxVars) {
					key := re.P.CanonicalKey()
					if _, dup := seen[key]; dup {
						continue
					}
					seen[key] = struct{}{}
					pool = append(pool, Ranked{Ex: re, Score: m.Score(ctx, re)})
				}
			}
		}
	}
}

// TopKDistributional ranks with a prunable (Limited) measure: the current
// k-th best score bounds each subsequent evaluation, so hopeless
// position computations abort early. The result equals General's ranking
// under the same measure.
func TopKDistributional(ctx *measure.Context, es []*pattern.Explanation, m measure.Limited, k int) []Ranked {
	if k <= 0 {
		k = 10
	}
	var top []Ranked
	for _, ex := range es {
		var threshold measure.Score
		if len(top) >= k {
			threshold = top[len(top)-1].Score
		}
		s, ok := m.ScoreWithLimit(ctx, ex, threshold)
		if !ok {
			continue // cannot beat the current k-th best
		}
		top = append(top, Ranked{Ex: ex, Score: s})
		sortRanked(top)
		if len(top) > k {
			top = top[:k]
		}
	}
	return top
}
