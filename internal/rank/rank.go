// Package rank turns enumerated explanations into ranked explanation
// lists (Section 4.4):
//
//   - General: Algorithm 5 — enumerate everything, score everything,
//     sort, cut at k.
//   - TopKAntiMonotone: the interleaved algorithm for anti-monotonic
//     measures — only explanations currently in the top-k list are
//     expanded further, justified by Theorem 4 (any expansion can only
//     lower an anti-monotonic score).
//   - TopKDistributional: full enumeration, but the per-explanation
//     distributional position computation is bounded by the current
//     k-th best position (the SQL "LIMIT p" trick of Section 5.3.2).
package rank

import (
	"context"
	"sort"

	"rex/internal/enumerate"
	"rex/internal/kb"
	"rex/internal/measure"
	"rex/internal/pattern"
)

// Ranked pairs an explanation with its interestingness score.
type Ranked struct {
	Ex    *pattern.Explanation
	Score measure.Score
}

// sortRanked orders by score descending. Ties break by (pattern size,
// edge count, key hash): deterministic, and — crucially for the
// Theorem 4 pruning — ancestor-consistent: a merge result always has
// more nodes, or equal nodes and more edges, than the explanations it
// was merged from, so on tied scores every ancestor of a top-k
// explanation is itself top-k and the interleaved expansion cannot miss
// it. (This also mirrors the paper's emission order: the ring-by-ring
// union produces small patterns first.) pattern.Key is the FNV-1a hash
// of the canonical encoding — the exact hash this sort historically
// computed itself — so the interned key preserves the tie order
// bit-for-bit while skipping the per-comparison string hashing.
func sortRanked(rs []Ranked) {
	sort.Slice(rs, func(i, j int) bool {
		if c := rs[i].Score.Cmp(rs[j].Score); c != 0 {
			return c > 0
		}
		pi, pj := rs[i].Ex.P, rs[j].Ex.P
		if pi.NumVars() != pj.NumVars() {
			return pi.NumVars() < pj.NumVars()
		}
		if pi.NumEdges() != pj.NumEdges() {
			return pi.NumEdges() < pj.NumEdges()
		}
		if hi, hj := pi.Key(), pj.Key(); hi != hj {
			return hi < hj
		}
		return pi.CanonicalKey() < pj.CanonicalKey()
	})
}

// General implements Algorithm 5 over an already-enumerated explanation
// list: score, sort, return the top k (all, when k ≤ 0).
func General(ctx *measure.Context, es []*pattern.Explanation, m measure.Measure, k int) []Ranked {
	rs, _ := GeneralContext(context.Background(), ctx, es, m, k)
	return rs
}

// GeneralContext is General with cancellation: the context is checked
// before each (potentially expensive) measure evaluation, and a done
// context aborts ranking mid-flight with ctx.Err(). Scores computed while
// the context expires are discarded, never partially returned.
func GeneralContext(cctx context.Context, ctx *measure.Context, es []*pattern.Explanation, m measure.Measure, k int) ([]Ranked, error) {
	rs := make([]Ranked, len(es))
	for i, ex := range es {
		if err := cctx.Err(); err != nil {
			return nil, err
		}
		rs[i] = Ranked{Ex: ex, Score: m.Score(ctx, ex)}
	}
	// A context that expired during the final Score call would otherwise
	// slip a partial score into the result: measures abort with
	// incomplete values on cancellation and rely on this post-loop check.
	if err := cctx.Err(); err != nil {
		return nil, err
	}
	sortRanked(rs)
	if k > 0 && len(rs) > k {
		rs = rs[:k]
	}
	return rs, nil
}

// TopKAntiMonotone interleaves enumeration, scoring and ranking for an
// anti-monotonic measure: path explanations seed a candidate pool, and
// expansion (merging with path explanations) proceeds only from
// explanations currently in the top-k list, per Theorem 4. The final list
// equals General's on the full enumeration, usually at a fraction of the
// cost.
func TopKAntiMonotone(g *kb.Graph, start, end kb.NodeID, cfg enumerate.Config, ctx *measure.Context, m measure.Measure, k int) []Ranked {
	rs, _ := TopKAntiMonotoneContext(context.Background(), g, start, end, cfg, ctx, m, k)
	return rs
}

// TopKAntiMonotoneContext is TopKAntiMonotone with cancellation: path
// enumeration aborts via the enumerate layer, and the interleaved
// expansion checks the context once per frontier explanation.
func TopKAntiMonotoneContext(cctx context.Context, g *kb.Graph, start, end kb.NodeID, cfg enumerate.Config, ctx *measure.Context, m measure.Measure, k int) ([]Ranked, error) {
	if k <= 0 {
		k = 10
	}
	paths, err := enumerate.PathsContext(cctx, g, start, end, cfg)
	if err != nil {
		return nil, err
	}
	maxVars := cfg.MaxPatternSize
	if maxVars <= 0 {
		maxVars = enumerate.DefaultMaxPatternSize
	}

	pool := make([]Ranked, 0, len(paths))
	seen := make(map[pattern.Key]struct{}, len(paths))
	expanded := make(map[pattern.Key]struct{})
	for _, ex := range paths {
		pool = append(pool, Ranked{Ex: ex, Score: m.Score(ctx, ex)})
		seen[ex.P.Key()] = struct{}{}
	}
	lim, isLimited := m.(measure.Limited)
	merger := pattern.AcquireMerger()
	defer pattern.ReleaseMerger(merger)
	// Key-first merge protocol: candidates duplicating an already-seen
	// pattern are dropped before materialisation, so the expansion loop
	// only allocates for explanations that enter the candidate pool.
	decide := func(k pattern.Key) pattern.MergeAction {
		if _, dup := seen[k]; dup {
			return pattern.MergeSkip
		}
		return pattern.MergeTake
	}

	for {
		if err := cctx.Err(); err != nil {
			return nil, err
		}
		sortRanked(pool)
		top := pool
		if len(top) > k {
			top = top[:k]
		}
		// The current k-th best score bounds every further evaluation:
		// a Limited measure may abort once a candidate is provably
		// strictly below it. The threshold only rises as the pool grows,
		// so a candidate strictly below it now can never reach the final
		// top-k (scores are fixed) and is safe to drop outright — the
		// returned ranking is identical to the unpruned one.
		var threshold measure.Score
		if isLimited && len(pool) >= k {
			threshold = pool[k-1].Score
		}
		var frontier []*pattern.Explanation
		for _, r := range top {
			key := r.Ex.P.Key()
			if _, done := expanded[key]; !done {
				expanded[key] = struct{}{}
				frontier = append(frontier, r.Ex)
			}
		}
		if len(frontier) == 0 {
			// Guard against a context that expired during the last
			// Score call of the previous expansion round (see
			// GeneralContext).
			if err := cctx.Err(); err != nil {
				return nil, err
			}
			out := make([]Ranked, len(top))
			copy(out, top)
			return out, nil
		}
		take := func(key pattern.Key, re *pattern.Explanation) {
			seen[key] = struct{}{}
			if threshold != nil {
				s, ok := lim.ScoreWithLimit(ctx, re, threshold)
				if !ok {
					return // provably below the k-th best
				}
				pool = append(pool, Ranked{Ex: re, Score: s})
				return
			}
			pool = append(pool, Ranked{Ex: re, Score: m.Score(ctx, re)})
		}
		for _, re1 := range frontier {
			if err := cctx.Err(); err != nil {
				return nil, err
			}
			for _, re2 := range paths {
				merger.Merge(re1, re2, maxVars, decide, take)
			}
		}
	}
}

// TopKDistributional ranks with a prunable (Limited) measure: the current
// k-th best score bounds each subsequent evaluation, so hopeless
// position computations abort early. The result equals General's ranking
// under the same measure.
func TopKDistributional(ctx *measure.Context, es []*pattern.Explanation, m measure.Limited, k int) []Ranked {
	rs, _ := TopKDistributionalContext(context.Background(), ctx, es, m, k)
	return rs
}

// TopKDistributionalContext is TopKDistributional with cancellation,
// checked before each bounded evaluation.
func TopKDistributionalContext(cctx context.Context, ctx *measure.Context, es []*pattern.Explanation, m measure.Limited, k int) ([]Ranked, error) {
	if k <= 0 {
		k = 10
	}
	var top []Ranked
	for _, ex := range es {
		if err := cctx.Err(); err != nil {
			return nil, err
		}
		var threshold measure.Score
		if len(top) >= k {
			threshold = top[len(top)-1].Score
		}
		s, ok := m.ScoreWithLimit(ctx, ex, threshold)
		if !ok {
			continue // cannot beat the current k-th best
		}
		top = append(top, Ranked{Ex: ex, Score: s})
		sortRanked(top)
		if len(top) > k {
			top = top[:k]
		}
	}
	// Cancellation mid-evaluation surfaces as ok=false (indistinguishable
	// from "cannot beat the k-th best"), so a context that expired during
	// the final ScoreWithLimit call must fail the ranking here rather
	// than return a silently truncated top-k.
	if err := cctx.Err(); err != nil {
		return nil, err
	}
	return top, nil
}
