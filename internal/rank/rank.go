// Package rank turns enumerated explanations into ranked explanation
// lists (Section 4.4):
//
//   - General: Algorithm 5 — enumerate everything, score everything,
//     sort, cut at k.
//   - TopKAntiMonotone: the interleaved algorithm for anti-monotonic
//     measures — only explanations currently in the top-k list are
//     expanded further, justified by Theorem 4 (any expansion can only
//     lower an anti-monotonic score).
//   - TopKDistributional: full enumeration, but the per-explanation
//     distributional position computation is bounded by the current
//     k-th best position (the SQL "LIMIT p" trick of Section 5.3.2).
package rank

import (
	"context"
	"sort"
	"time"

	"rex/internal/enumerate"
	"rex/internal/kb"
	"rex/internal/measure"
	"rex/internal/obs"
	"rex/internal/pattern"
)

// rankTimer snapshots the wall clock and the trace's inner-stage time
// (enumerate + measure + merge) so rankDone can attribute a ranker's
// exclusive time — sorting, pool bookkeeping, pruning decisions — to
// the rank stage without double-counting the work it drives. On a nil
// trace it never reads the clock.
func rankTimer(tr *obs.Trace) (time.Time, int64) {
	if tr == nil {
		return time.Time{}, 0
	}
	return time.Now(), tr.InnerNs()
}

// rankDone records the rank stage as total elapsed minus the
// inner-stage time accumulated since rankTimer.
func rankDone(tr *obs.Trace, t0 time.Time, preInner int64, items int) {
	if tr == nil {
		return
	}
	excl := time.Since(t0) - time.Duration(tr.InnerNs()-preInner)
	if excl < 0 {
		excl = 0
	}
	tr.AddStage(obs.StageRank, excl, 1, int64(items))
}

// rankClock reports expiry of the anytime budget context (nil = never
// expires); expiry is sticky so one observation truncates the rest of
// the ranking.
type rankClock struct {
	bctx    context.Context
	expired bool
}

func (c *rankClock) hit() bool {
	if c.expired {
		return true
	}
	if c.bctx == nil {
		return false
	}
	c.expired = c.bctx.Err() != nil
	return c.expired
}

// budgetedMeasureCtx prepares anytime scoring for a deadline: measure
// evaluations run under a context that expires at the deadline (derived
// from cctx, so real cancellation still flows through), which the
// engine's bounded-interval checks — matcher bindings, evaluator walks,
// streaming positions — already poll. A heavy evaluation therefore
// aborts within the budget instead of overshooting it by its own full
// cost; the rank loops observe the expiry via rankClock, discard the
// aborted (incomplete) evaluation, and return the ranking built so far.
// With a zero deadline everything is returned unchanged.
func budgetedMeasureCtx(cctx context.Context, mctx *measure.Context, deadline time.Time) (*measure.Context, *rankClock, context.CancelFunc) {
	if deadline.IsZero() {
		return mctx, &rankClock{}, func() {}
	}
	bctx, cancel := context.WithDeadline(cctx, deadline)
	bm := *mctx
	bm.Ctx = bctx
	return &bm, &rankClock{bctx: bctx}, cancel
}

// Ranked pairs an explanation with its interestingness score.
type Ranked struct {
	Ex    *pattern.Explanation
	Score measure.Score
}

// sortRanked orders by score descending. Ties break by (pattern size,
// edge count, key hash): deterministic, and — crucially for the
// Theorem 4 pruning — ancestor-consistent: a merge result always has
// more nodes, or equal nodes and more edges, than the explanations it
// was merged from, so on tied scores every ancestor of a top-k
// explanation is itself top-k and the interleaved expansion cannot miss
// it. (This also mirrors the paper's emission order: the ring-by-ring
// union produces small patterns first.) pattern.Key is the FNV-1a hash
// of the canonical encoding — the exact hash this sort historically
// computed itself — so the interned key preserves the tie order
// bit-for-bit while skipping the per-comparison string hashing.
func sortRanked(rs []Ranked) {
	sort.Slice(rs, func(i, j int) bool {
		if c := rs[i].Score.Cmp(rs[j].Score); c != 0 {
			return c > 0
		}
		pi, pj := rs[i].Ex.P, rs[j].Ex.P
		if pi.NumVars() != pj.NumVars() {
			return pi.NumVars() < pj.NumVars()
		}
		if pi.NumEdges() != pj.NumEdges() {
			return pi.NumEdges() < pj.NumEdges()
		}
		if hi, hj := pi.Key(), pj.Key(); hi != hj {
			return hi < hj
		}
		return pi.CanonicalKey() < pj.CanonicalKey()
	})
}

// General implements Algorithm 5 over an already-enumerated explanation
// list: score, sort, return the top k (all, when k ≤ 0).
func General(ctx *measure.Context, es []*pattern.Explanation, m measure.Measure, k int) []Ranked {
	rs, _ := GeneralContext(context.Background(), ctx, es, m, k)
	return rs
}

// GeneralContext is General with cancellation: the context is checked
// before each (potentially expensive) measure evaluation, and a done
// context aborts ranking mid-flight with ctx.Err(). Scores computed while
// the context expires are discarded, never partially returned.
func GeneralContext(cctx context.Context, ctx *measure.Context, es []*pattern.Explanation, m measure.Measure, k int) ([]Ranked, error) {
	rs, _, err := GeneralBudgeted(cctx, ctx, es, m, k, time.Time{})
	return rs, err
}

// GeneralBudgeted is GeneralContext with an anytime deadline: scoring
// stops when the deadline passes and the explanations scored so far are
// ranked and returned with truncated = true. A zero deadline never
// truncates and is byte-identical to GeneralContext.
func GeneralBudgeted(cctx context.Context, ctx *measure.Context, es []*pattern.Explanation, m measure.Measure, k int, deadline time.Time) ([]Ranked, bool, error) {
	tr := obs.FromContext(cctx)
	rt0, rinner := rankTimer(tr)
	bm, clock, cancel := budgetedMeasureCtx(cctx, ctx, deadline)
	defer cancel()
	rs := make([]Ranked, 0, len(es))
	for _, ex := range es {
		if err := cctx.Err(); err != nil {
			return nil, false, err
		}
		if clock.hit() {
			tr.Truncated(obs.StageMeasure, obs.TruncDeadline)
			break
		}
		mt0 := tr.Begin()
		s := m.Score(bm, ex)
		tr.End(obs.StageMeasure, mt0, 1)
		if clock.hit() {
			tr.Truncated(obs.StageMeasure, obs.TruncDeadline)
			break // the budget cut this evaluation short: discard it
		}
		rs = append(rs, Ranked{Ex: ex, Score: s})
	}
	// A context that expired during the final Score call would otherwise
	// slip a partial score into the result: measures abort with
	// incomplete values on cancellation and rely on this post-loop check.
	if err := cctx.Err(); err != nil {
		return nil, false, err
	}
	sortRanked(rs)
	if k > 0 && len(rs) > k {
		rs = rs[:k]
	}
	rankDone(tr, rt0, rinner, len(rs))
	return rs, clock.expired, nil
}

// TopKAntiMonotone interleaves enumeration, scoring and ranking for an
// anti-monotonic measure: path explanations seed a candidate pool, and
// expansion (merging with path explanations) proceeds only from
// explanations currently in the top-k list, per Theorem 4. The final list
// equals General's on the full enumeration, usually at a fraction of the
// cost.
func TopKAntiMonotone(g *kb.Graph, start, end kb.NodeID, cfg enumerate.Config, ctx *measure.Context, m measure.Measure, k int) []Ranked {
	rs, _ := TopKAntiMonotoneContext(context.Background(), g, start, end, cfg, ctx, m, k)
	return rs
}

// TopKAntiMonotoneContext is TopKAntiMonotone with cancellation: path
// enumeration aborts via the enumerate layer, and the interleaved
// expansion checks the context once per frontier explanation.
func TopKAntiMonotoneContext(cctx context.Context, g *kb.Graph, start, end kb.NodeID, cfg enumerate.Config, ctx *measure.Context, m measure.Measure, k int) ([]Ranked, error) {
	rs, _, err := TopKAntiMonotoneBudgeted(cctx, g, start, end, cfg, ctx, m, k)
	return rs, err
}

// TopKAntiMonotoneBudgeted is TopKAntiMonotoneContext surfacing the
// anytime contract of cfg.Budget: path enumeration truncates per the
// enumerate layer, and when the budget deadline passes mid-expansion the
// current top-k list (complete explanations, correctly ranked among
// everything scored so far) is returned with truncated = true. A zero
// budget never truncates and the result is byte-identical to
// TopKAntiMonotoneContext.
func TopKAntiMonotoneBudgeted(cctx context.Context, g *kb.Graph, start, end kb.NodeID, cfg enumerate.Config, ctx *measure.Context, m measure.Measure, k int) ([]Ranked, bool, error) {
	if k <= 0 {
		k = 10
	}
	tr := obs.FromContext(cctx)
	rt0, rinner := rankTimer(tr)
	var mergeCount int64
	bm, clock, cancel := budgetedMeasureCtx(cctx, ctx, cfg.Budget.Deadline)
	defer cancel()
	paths, truncated, err := enumerate.PathsBudgeted(cctx, g, start, end, cfg)
	if err != nil {
		return nil, false, err
	}
	maxVars := cfg.MaxPatternSize
	if maxVars <= 0 {
		maxVars = enumerate.DefaultMaxPatternSize
	}

	pool := make([]Ranked, 0, len(paths))
	seen := make(map[pattern.Key]struct{}, len(paths))
	expanded := make(map[pattern.Key]struct{})
	for _, ex := range paths {
		if clock.hit() {
			tr.Truncated(obs.StageMeasure, obs.TruncDeadline)
			break // remaining paths stay unscored; the first round exits
		}
		mt0 := tr.Begin()
		s := m.Score(bm, ex)
		tr.End(obs.StageMeasure, mt0, 1)
		if clock.hit() {
			tr.Truncated(obs.StageMeasure, obs.TruncDeadline)
			break // the budget cut this evaluation short: discard it
		}
		pool = append(pool, Ranked{Ex: ex, Score: s})
		seen[ex.P.Key()] = struct{}{}
	}
	lim, isLimited := m.(measure.Limited)
	merger := pattern.AcquireMerger()
	defer pattern.ReleaseMerger(merger)
	// Key-first merge protocol: candidates duplicating an already-seen
	// pattern are dropped before materialisation, so the expansion loop
	// only allocates for explanations that enter the candidate pool.
	decide := func(k pattern.Key) pattern.MergeAction {
		if _, dup := seen[k]; dup {
			return pattern.MergeSkip
		}
		return pattern.MergeTake
	}

	for {
		if err := cctx.Err(); err != nil {
			return nil, false, err
		}
		sortRanked(pool)
		top := pool
		if len(top) > k {
			top = top[:k]
		}
		// Anytime exit: the pool holds every explanation scored so far,
		// so the current top-k is the best answer the budget bought.
		if clock.hit() {
			out := make([]Ranked, len(top))
			copy(out, top)
			tr.Truncated(obs.StageRank, obs.TruncDeadline)
			tr.AddMerges(mergeCount)
			rankDone(tr, rt0, rinner, len(out))
			return out, true, nil
		}
		// The current k-th best score bounds every further evaluation:
		// a Limited measure may abort once a candidate is provably
		// strictly below it. The threshold only rises as the pool grows,
		// so a candidate strictly below it now can never reach the final
		// top-k (scores are fixed) and is safe to drop outright — the
		// returned ranking is identical to the unpruned one.
		var threshold measure.Score
		if isLimited && len(pool) >= k {
			threshold = pool[k-1].Score
		}
		var frontier []*pattern.Explanation
		for _, r := range top {
			key := r.Ex.P.Key()
			if _, done := expanded[key]; !done {
				expanded[key] = struct{}{}
				frontier = append(frontier, r.Ex)
			}
		}
		if len(frontier) == 0 {
			// Guard against a context that expired during the last
			// Score call of the previous expansion round (see
			// GeneralContext).
			if err := cctx.Err(); err != nil {
				return nil, false, err
			}
			out := make([]Ranked, len(top))
			copy(out, top)
			tr.AddMerges(mergeCount)
			rankDone(tr, rt0, rinner, len(out))
			return out, truncated, nil
		}
		take := func(key pattern.Key, re *pattern.Explanation) {
			seen[key] = struct{}{}
			mt0 := tr.Begin()
			if threshold != nil {
				s, ok := lim.ScoreWithLimit(bm, re, threshold)
				tr.End(obs.StageMeasure, mt0, 1)
				if !ok || clock.hit() {
					return // provably below the k-th best, or budget-cut
				}
				pool = append(pool, Ranked{Ex: re, Score: s})
				return
			}
			s := m.Score(bm, re)
			tr.End(obs.StageMeasure, mt0, 1)
			if clock.hit() {
				return // the budget cut this evaluation short: discard it
			}
			pool = append(pool, Ranked{Ex: re, Score: s})
		}
		for _, re1 := range frontier {
			if err := cctx.Err(); err != nil {
				return nil, false, err
			}
			if clock.hit() {
				// Candidates merged so far are already scored into the
				// pool; the next round's top-of-loop exit returns them
				// ranked.
				break
			}
			for _, re2 := range paths {
				mergeCount++
				merger.Merge(re1, re2, maxVars, decide, take)
			}
		}
	}
}

// TopKDistributional ranks with a prunable (Limited) measure: the current
// k-th best score bounds each subsequent evaluation, so hopeless
// position computations abort early. The result equals General's ranking
// under the same measure.
func TopKDistributional(ctx *measure.Context, es []*pattern.Explanation, m measure.Limited, k int) []Ranked {
	rs, _ := TopKDistributionalContext(context.Background(), ctx, es, m, k)
	return rs
}

// TopKDistributionalContext is TopKDistributional with cancellation,
// checked before each bounded evaluation.
func TopKDistributionalContext(cctx context.Context, ctx *measure.Context, es []*pattern.Explanation, m measure.Limited, k int) ([]Ranked, error) {
	rs, _, err := TopKDistributionalBudgeted(cctx, ctx, es, m, k, time.Time{})
	return rs, err
}

// TopKDistributionalBudgeted is TopKDistributionalContext with an
// anytime deadline: when it passes, evaluation stops and the top-k over
// the explanations scored so far is returned with truncated = true. A
// zero deadline never truncates and is byte-identical to
// TopKDistributionalContext.
func TopKDistributionalBudgeted(cctx context.Context, ctx *measure.Context, es []*pattern.Explanation, m measure.Limited, k int, deadline time.Time) ([]Ranked, bool, error) {
	if k <= 0 {
		k = 10
	}
	tr := obs.FromContext(cctx)
	rt0, rinner := rankTimer(tr)
	bm, clock, cancel := budgetedMeasureCtx(cctx, ctx, deadline)
	defer cancel()
	var top []Ranked
	for _, ex := range es {
		if err := cctx.Err(); err != nil {
			return nil, false, err
		}
		if clock.hit() {
			tr.Truncated(obs.StageMeasure, obs.TruncDeadline)
			break
		}
		var threshold measure.Score
		if len(top) >= k {
			threshold = top[len(top)-1].Score
		}
		mt0 := tr.Begin()
		s, ok := m.ScoreWithLimit(bm, ex, threshold)
		tr.End(obs.StageMeasure, mt0, 1)
		if clock.hit() {
			tr.Truncated(obs.StageMeasure, obs.TruncDeadline)
			break // the budget cut this evaluation short: discard it
		}
		if !ok {
			continue // cannot beat the current k-th best
		}
		top = append(top, Ranked{Ex: ex, Score: s})
		sortRanked(top)
		if len(top) > k {
			top = top[:k]
		}
	}
	// Cancellation mid-evaluation surfaces as ok=false (indistinguishable
	// from "cannot beat the k-th best"), so a context that expired during
	// the final ScoreWithLimit call must fail the ranking here rather
	// than return a silently truncated top-k.
	if err := cctx.Err(); err != nil {
		return nil, false, err
	}
	rankDone(tr, rt0, rinner, len(top))
	return top, clock.expired, nil
}
