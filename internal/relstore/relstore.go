// Package relstore is the relational substrate of Section 5.3.2: the
// knowledge base's primary relationships stored as a relation
// R(eid1, eid2, rel), over which distributional interestingness measures
// are computed as self-join aggregation queries —
//
//	SELECT v_start, R2.eid1, count(*) AS count
//	FROM R AS R1, R AS R2
//	WHERE v_start = R1.eid1 AND R1.eid2 = R2.eid2
//	  AND R1.rel = 'starring' AND R2.rel = 'starring'
//	GROUP BY v_start, R2.eid1
//	HAVING count > c
//	LIMIT p
//
// The package implements exactly the evaluation such queries need: hash
// indexes on (eid1, rel) and (eid2, rel), backtracking self-joins, GROUP
// BY the free end entity, HAVING count > c, and early termination after
// LIMIT p groups. REX uses it both as an alternative engine for the
// distributional measures (cross-checked against the graph matcher in
// tests) and to render the paper's SQL for display.
package relstore

import (
	"fmt"
	"sort"
	"strings"

	"rex/internal/kb"
	"rex/internal/pattern"
)

// Row is one tuple of R: a primary relationship instance. Undirected
// relationships appear in both orientations so that a single join
// pattern matches either.
type Row struct {
	EID1, EID2 kb.NodeID
	Rel        kb.LabelID
}

// Store holds R with the hash indexes the self-joins probe.
type Store struct {
	rows []Row
	// by1[key(eid1,rel)] lists eid2 values; by2 the reverse.
	by1 map[idxKey][]kb.NodeID
	by2 map[idxKey][]kb.NodeID
}

type idxKey struct {
	eid kb.NodeID
	rel kb.LabelID
}

// FromGraph materialises R from a knowledge base. Directed edges store
// one row (from, to); undirected edges store both orientations, which is
// how an RDBMS encoding of an undirected relationship behaves under
// symmetric query loads.
func FromGraph(g *kb.Graph) *Store {
	st := &Store{
		by1: make(map[idxKey][]kb.NodeID),
		by2: make(map[idxKey][]kb.NodeID),
	}
	add := func(a, b kb.NodeID, rel kb.LabelID) {
		st.rows = append(st.rows, Row{EID1: a, EID2: b, Rel: rel})
		st.by1[idxKey{a, rel}] = append(st.by1[idxKey{a, rel}], b)
		st.by2[idxKey{b, rel}] = append(st.by2[idxKey{b, rel}], a)
	}
	for _, e := range g.Edges() {
		add(e.From, e.To, e.Label)
		if !g.LabelDirected(e.Label) {
			add(e.To, e.From, e.Label)
		}
	}
	for _, lst := range st.by1 {
		sortNodeIDs(lst)
	}
	for _, lst := range st.by2 {
		sortNodeIDs(lst)
	}
	return st
}

func sortNodeIDs(a []kb.NodeID) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// NumRows reports the cardinality of R.
func (st *Store) NumRows() int { return len(st.rows) }

// Lookup1 returns the eid2 values of rows with the given eid1 and rel.
func (st *Store) Lookup1(eid1 kb.NodeID, rel kb.LabelID) []kb.NodeID {
	return st.by1[idxKey{eid1, rel}]
}

// Lookup2 returns the eid1 values of rows with the given eid2 and rel.
func (st *Store) Lookup2(eid2 kb.NodeID, rel kb.LabelID) []kb.NodeID {
	return st.by2[idxKey{eid2, rel}]
}

// Has reports whether R contains the exact row.
func (st *Store) Has(eid1, eid2 kb.NodeID, rel kb.LabelID) bool {
	for _, x := range st.by1[idxKey{eid1, rel}] {
		if x == eid2 {
			return true
		}
	}
	return false
}

// Atom is one R alias in the FROM clause: a join constraint
// R(term1, term2, rel) where terms are pattern variables.
type Atom struct {
	V1, V2 pattern.VarID
	Rel    kb.LabelID
}

// Query is the compiled form of an explanation pattern as a self-join
// over R, with the start variable bound to a constant and the end
// variable as the GROUP BY column.
type Query struct {
	Atoms   []Atom
	NumVars int
	Start   kb.NodeID
}

// Compile translates a pattern into a Query: each pattern edge becomes an
// atom; directed labels map (U, V) onto (eid1, eid2), and undirected
// labels rely on the doubled rows.
func Compile(g *kb.Graph, p *pattern.Pattern, start kb.NodeID) Query {
	atoms := make([]Atom, 0, p.NumEdges())
	for _, e := range p.Edges() {
		atoms = append(atoms, Atom{V1: e.U, V2: e.V, Rel: e.Label})
	}
	return Query{Atoms: atoms, NumVars: p.NumVars(), Start: start}
}

// GroupCounts evaluates the query, returning the instance count per end
// entity: the relational form of the local distribution. Variable
// bindings are injective (REX instance semantics — in SQL these are the
// v_i <> v_j inequality predicates).
func (st *Store) GroupCounts(q Query) map[kb.NodeID]int {
	counts := make(map[kb.NodeID]int)
	st.run(q, func(endv kb.NodeID) bool {
		counts[endv]++
		return true
	})
	return counts
}

// PositionHaving evaluates the paper's full query shape: the number of
// GROUP BY groups whose count strictly exceeds c — the position of the
// explanation in the local distribution. When limit ≥ 0 the evaluation
// stops (ok=false) as soon as more than limit groups qualify, which is
// the LIMIT clause the pruned ranking adds.
func (st *Store) PositionHaving(q Query, c, limit int) (pos int, ok bool) {
	counts := make(map[kb.NodeID]int)
	exceeded := 0
	aborted := false
	st.run(q, func(endv kb.NodeID) bool {
		counts[endv]++
		if counts[endv] == c+1 {
			exceeded++
			if limit >= 0 && exceeded > limit {
				aborted = true
				return false
			}
		}
		return true
	})
	if aborted {
		return 0, false
	}
	return exceeded, true
}

// run enumerates all satisfying assignments, invoking emit with the end
// binding of each; emit returns false to stop. The join order is greedy:
// always the atom with the most bound variables, seeded by the start
// constant.
func (st *Store) run(q Query, emit func(end kb.NodeID) bool) {
	binding := make([]kb.NodeID, q.NumVars)
	bound := make([]bool, q.NumVars)
	binding[pattern.Start] = q.Start
	bound[pattern.Start] = true

	order := planAtoms(q, bound)
	st.join(q, order, 0, binding, bound, emit)
}

// planAtoms orders atoms so each has at least one bound variable when
// evaluated (patterns are connected to the start).
func planAtoms(q Query, boundInit []bool) []Atom {
	bound := make([]bool, len(boundInit))
	copy(bound, boundInit)
	remaining := append([]Atom{}, q.Atoms...)
	var order []Atom
	for len(remaining) > 0 {
		best := -1
		bestScore := -1
		for i, a := range remaining {
			score := 0
			if bound[a.V1] {
				score++
			}
			if bound[a.V2] {
				score++
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		a := remaining[best]
		order = append(order, a)
		bound[a.V1], bound[a.V2] = true, true
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return order
}

// join recursively evaluates order[i:]. Injectivity is enforced at each
// fresh binding.
func (st *Store) join(q Query, order []Atom, i int, binding []kb.NodeID, bound []bool, emit func(kb.NodeID) bool) bool {
	if i == len(order) {
		if !bound[pattern.End] {
			// Pattern without edges at the end variable cannot occur for
			// minimal patterns; guard anyway.
			return true
		}
		return emit(binding[pattern.End])
	}
	a := order[i]
	switch {
	case bound[a.V1] && bound[a.V2]:
		if st.Has(binding[a.V1], binding[a.V2], a.Rel) {
			return st.join(q, order, i+1, binding, bound, emit)
		}
		return true
	case bound[a.V1]:
		for _, cand := range st.Lookup1(binding[a.V1], a.Rel) {
			if !bindOK(binding, bound, cand) {
				continue
			}
			binding[a.V2] = cand
			bound[a.V2] = true
			ok := st.join(q, order, i+1, binding, bound, emit)
			bound[a.V2] = false
			if !ok {
				return false
			}
		}
		return true
	case bound[a.V2]:
		for _, cand := range st.Lookup2(binding[a.V2], a.Rel) {
			if !bindOK(binding, bound, cand) {
				continue
			}
			binding[a.V1] = cand
			bound[a.V1] = true
			ok := st.join(q, order, i+1, binding, bound, emit)
			bound[a.V1] = false
			if !ok {
				return false
			}
		}
		return true
	default:
		// Disconnected atom: scan R filtered by rel. Minimal patterns
		// never need this; kept for completeness.
		for _, r := range st.rows {
			if r.Rel != a.Rel {
				continue
			}
			if !bindOK(binding, bound, r.EID1) {
				continue
			}
			binding[a.V1] = r.EID1
			bound[a.V1] = true
			if !bindOK(binding, bound, r.EID2) {
				bound[a.V1] = false
				continue
			}
			binding[a.V2] = r.EID2
			bound[a.V2] = true
			ok := st.join(q, order, i+1, binding, bound, emit)
			bound[a.V1], bound[a.V2] = false, false
			if !ok {
				return false
			}
		}
		return true
	}
}

// bindOK enforces injectivity: the candidate must differ from every
// currently bound value.
func bindOK(binding []kb.NodeID, bound []bool, cand kb.NodeID) bool {
	for v, ok := range bound {
		if ok && binding[v] == cand {
			return false
		}
	}
	return true
}

// SQL renders the query in the paper's SQL dialect for display: one R
// alias per atom, join predicates in WHERE, GROUP BY the end variable,
// HAVING count > c, and LIMIT p when limit ≥ 0.
func SQL(g *kb.Graph, p *pattern.Pattern, c, limit int) string {
	var b strings.Builder
	b.WriteString("SELECT v_start, v_end, count(*) AS count\nFROM ")
	for i := range p.Edges() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "R AS R%d", i+1)
	}
	b.WriteString("\nWHERE ")
	terms := make([]string, 0, 3*p.NumEdges())
	varTerm := func(v pattern.VarID) string {
		switch v {
		case pattern.Start:
			return "v_start"
		case pattern.End:
			return "v_end"
		default:
			return fmt.Sprintf("v%d", v)
		}
	}
	for i, e := range p.Edges() {
		terms = append(terms,
			fmt.Sprintf("R%d.eid1 = %s", i+1, varTerm(e.U)),
			fmt.Sprintf("R%d.eid2 = %s", i+1, varTerm(e.V)),
			fmt.Sprintf("R%d.rel = '%s'", i+1, g.LabelName(e.Label)))
	}
	b.WriteString(strings.Join(terms, "\n  AND "))
	fmt.Fprintf(&b, "\nGROUP BY v_start, v_end\nHAVING count > %d", c)
	if limit >= 0 {
		fmt.Fprintf(&b, "\nLIMIT %d", limit+1)
	}
	return b.String()
}
