package relstore

import (
	"strings"
	"testing"

	"rex/internal/enumerate"
	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/match"
	"rex/internal/pattern"
)

func TestFromGraphRowCounts(t *testing.T) {
	g := kb.New()
	a := g.AddNode("a", "t")
	b := g.AddNode("b", "t")
	c := g.AddNode("c", "t")
	d := g.MustLabel("directed", true)
	u := g.MustLabel("undirected", false)
	g.MustAddEdge(a, b, d)
	g.MustAddEdge(b, c, u)
	g.Freeze()
	st := FromGraph(g)
	// One directed row plus a doubled undirected edge.
	if st.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", st.NumRows())
	}
	if !st.Has(a, b, d) || st.Has(b, a, d) {
		t.Error("directed row orientation wrong")
	}
	if !st.Has(b, c, u) || !st.Has(c, b, u) {
		t.Error("undirected rows must exist in both orientations")
	}
	if got := st.Lookup1(a, d); len(got) != 1 || got[0] != b {
		t.Errorf("Lookup1 = %v", got)
	}
	if got := st.Lookup2(b, d); len(got) != 1 || got[0] != a {
		t.Errorf("Lookup2 = %v", got)
	}
}

// TestGroupCountsMatchGraphMatcher is the cross-engine test: the
// relational self-join evaluation must agree with the graph matcher on
// every enumerated pattern of several real pairs.
func TestGroupCountsMatchGraphMatcher(t *testing.T) {
	g := kbgen.Sample()
	st := FromGraph(g)
	pairs := [][2]string{
		{"brad_pitt", "angelina_jolie"},
		{"kate_winslet", "leonardo_dicaprio"},
		{"tom_cruise", "will_smith"},
	}
	for _, names := range pairs {
		start := g.NodeByName(names[0])
		end := g.NodeByName(names[1])
		es := enumerate.Explanations(g, start, end, enumerate.Config{
			PathAlg: enumerate.PathPrioritized, UnionAlg: enumerate.UnionPrune,
		})
		for _, ex := range es {
			q := Compile(g, ex.P, start)
			got := st.GroupCounts(q)
			want := match.CountByEnd(g, ex.P, start)
			if len(got) != len(want) {
				t.Errorf("%v %v: %d groups vs %d", names, ex.P, len(got), len(want))
				continue
			}
			for endv, c := range want {
				if got[endv] != c {
					t.Errorf("%v %v: end %s count %d vs %d",
						names, ex.P, g.NodeName(endv), got[endv], c)
				}
			}
			// The pair's own group count equals the explanation's
			// enumerated instance count.
			if got[end] != ex.Count() {
				t.Errorf("%v %v: SQL count %d != enumerated %d",
					names, ex.P, got[end], ex.Count())
			}
		}
	}
}

// TestPositionHavingMatchesDefinition compares HAVING count > c semantics
// against a direct computation from GroupCounts.
func TestPositionHavingMatchesDefinition(t *testing.T) {
	g := kbgen.Sample()
	st := FromGraph(g)
	start := g.NodeByName("brad_pitt")
	end := g.NodeByName("angelina_jolie")
	es := enumerate.Explanations(g, start, end, enumerate.Config{})
	for _, ex := range es {
		q := Compile(g, ex.P, start)
		counts := st.GroupCounts(q)
		c := ex.Count()
		want := 0
		for _, cnt := range counts {
			if cnt > c {
				want++
			}
		}
		got, ok := st.PositionHaving(q, c, -1)
		if !ok || got != want {
			t.Errorf("%v: position %d ok=%v, want %d", ex.P, got, ok, want)
		}
		// LIMIT semantics: limit == position keeps the result; limit
		// below aborts.
		if got2, ok2 := st.PositionHaving(q, c, want); !ok2 || got2 != want {
			t.Errorf("%v: limit==position pruned (ok=%v)", ex.P, ok2)
		}
		if want > 0 {
			if _, ok3 := st.PositionHaving(q, c, want-1); ok3 {
				t.Errorf("%v: limit below position not aborted", ex.P)
			}
		}
	}
}

func TestSQLRendering(t *testing.T) {
	g := kbgen.Sample()
	star := g.LabelByName(kbgen.RelStarring)
	costar := pattern.MustNew(g, 3, []pattern.Edge{
		{U: 2, V: pattern.Start, Label: star},
		{U: 2, V: pattern.End, Label: star},
	})
	sql := SQL(g, costar, 1, 20)
	for _, want := range []string{
		"SELECT v_start, v_end, count(*) AS count",
		"R AS R1", "R AS R2",
		"R1.rel = 'starring'",
		"GROUP BY v_start, v_end",
		"HAVING count > 1",
		"LIMIT 21",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
	if strings.Contains(SQL(g, costar, 1, -1), "LIMIT") {
		t.Error("negative limit must omit the LIMIT clause")
	}
}
