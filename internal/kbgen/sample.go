// Package kbgen builds knowledge bases for REX: a small curated
// entertainment graph mirroring the paper's running example (Figure 3),
// and a scalable synthetic generator that substitutes for the paper's
// DBpedia entertainment extraction (200K entities, 1.3M primary
// relationships) — see DESIGN.md for the substitution rationale.
package kbgen

import "rex/internal/kb"

// Entity type names used by both the sample and the generator.
const (
	TypeActor     = "actor"
	TypeDirector  = "director"
	TypeProducer  = "producer"
	TypeWriter    = "writer"
	TypeMusician  = "musician"
	TypeFilm      = "film"
	TypeTVShow    = "tvshow"
	TypeBand      = "band"
	TypeAlbum     = "album"
	TypeSong      = "song"
	TypeGenre     = "genre"
	TypeAward     = "award"
	TypeStudio    = "studio"
	TypeCity      = "city"
	TypeCountry   = "country"
	TypeCharacter = "character"
	TypeFranchise = "franchise"
	TypeChannel   = "channel"
	TypeFestival  = "festival"
	TypeLabel     = "label"
)

// Relationship label names. Directedness is registered on first use and
// must stay consistent everywhere.
const (
	RelStarring   = "starring"      // film → actor, directed
	RelTVStarring = "tv_starring"   // tvshow → actor, directed
	RelDirectedBy = "directed_by"   // film → director, directed
	RelProducedBy = "produced_by"   // film → producer/actor, directed
	RelWrittenBy  = "written_by"    // film → writer, directed
	RelSpouse     = "spouse"        // person — person, undirected
	RelPartner    = "partner"       // person — person, undirected
	RelSibling    = "sibling"       // person — person, undirected
	RelMemberOf   = "member_of"     // musician → band, directed
	RelPerformdBy = "performed_by"  // song → musician/band, directed
	RelOnAlbum    = "on_album"      // song → album, directed
	RelAlbumBy    = "album_by"      // album → band/musician, directed
	RelHasGenre   = "has_genre"     // film/song → genre, directed
	RelWonAward   = "won_award"     // person/film → award, directed
	RelNominated  = "nominated_for" // person/film → award, directed
	RelStudioOf   = "studio"        // film → studio, directed
	RelBornIn     = "born_in"       // person → city, directed
	RelLocatedIn  = "located_in"    // city → country, directed
	RelCharIn     = "character_in"  // character → film, directed
	RelPlayedBy   = "played_by"     // character → actor, directed
	RelPartOf     = "part_of"       // film → franchise, directed
	RelSequelOf   = "sequel_of"     // film → film, directed
	RelAirsOn     = "airs_on"       // tvshow → channel, directed
	RelSignedTo   = "signed_to"     // band → label, directed
	RelThemeBy    = "theme_by"      // film → musician, directed
	RelPremiered  = "premiered_at"  // film → festival, directed
)

// relDirected maps every relationship label to its directedness.
var relDirected = map[string]bool{
	RelStarring: true, RelTVStarring: true, RelDirectedBy: true,
	RelProducedBy: true, RelWrittenBy: true,
	RelSpouse: false, RelPartner: false, RelSibling: false,
	RelMemberOf: true, RelPerformdBy: true, RelOnAlbum: true,
	RelAlbumBy: true, RelHasGenre: true, RelWonAward: true,
	RelNominated: true, RelStudioOf: true, RelBornIn: true,
	RelLocatedIn: true, RelCharIn: true, RelPlayedBy: true,
	RelPartOf: true, RelSequelOf: true, RelAirsOn: true,
	RelSignedTo: true, RelThemeBy: true, RelPremiered: true,
}

// Sample builds the curated entertainment knowledge base used throughout
// the tests and examples. It mirrors the paper's running example: the
// Brad Pitt / Angelina Jolie / Tom Cruise / Kate Winslet neighbourhood of
// the Yahoo! entertainment graph (Figures 3, 4 and 6), extended with
// enough co-starring volume that the distributional examples (Example 7)
// are non-trivial.
func Sample() *kb.Graph {
	g := kb.New()
	b := builder{g: g, labels: map[string]kb.LabelID{}}

	// People.
	actors := []string{
		"brad_pitt", "angelina_jolie", "jennifer_aniston", "tom_cruise",
		"nicole_kidman", "penelope_cruz", "will_smith", "jada_pinkett_smith",
		"kate_winslet", "leonardo_dicaprio", "mel_gibson", "helen_hunt",
		"julia_roberts", "george_clooney", "matt_damon", "catherine_zeta_jones",
		"michael_douglas", "cameron_diaz", "kathleen_quinlan", "eric_bana",
		"orlando_bloom", "diane_kruger", "kirsten_dunst", "christian_bale",
		"russell_crowe", "paul_bettany", "jon_voight", "eva_mendes",
		"sophie_marceau", "rene_russo", "jack_nicholson", "greg_kinnear",
		"tom_hanks", "bill_paxton", "jamie_foxx",
	}
	for _, a := range actors {
		b.node(a, TypeActor)
	}
	directors := []string{
		"sam_mendes", "james_cameron", "doug_liman", "steven_soderbergh",
		"gore_verbinski", "wolfgang_petersen", "neil_jordan", "cameron_crowe",
		"ron_howard", "nancy_meyers", "brian_de_palma", "michael_mann",
		"andy_tennant", "mel_gibson_dir", "james_l_brooks",
		"robert_zemeckis", "jan_de_bont",
	}
	for _, d := range directors {
		b.node(d, TypeDirector)
	}
	b.node("jerry_bruckheimer", TypeProducer)
	b.node("brian_grazer", TypeProducer)
	b.node("dede_gardner", TypeProducer)

	// Films with casts (first element) and directors.
	films := []struct {
		name     string
		cast     []string
		director string
	}{
		{"mr_and_mrs_smith", []string{"brad_pitt", "angelina_jolie"}, "doug_liman"},
		{"interview_with_the_vampire", []string{"brad_pitt", "tom_cruise", "kirsten_dunst", "christian_bale"}, "neil_jordan"},
		{"oceans_eleven", []string{"brad_pitt", "george_clooney", "matt_damon", "julia_roberts"}, "steven_soderbergh"},
		{"oceans_twelve", []string{"brad_pitt", "george_clooney", "matt_damon", "julia_roberts", "catherine_zeta_jones"}, "steven_soderbergh"},
		{"the_mexican", []string{"brad_pitt", "julia_roberts"}, "gore_verbinski"},
		{"troy", []string{"brad_pitt", "eric_bana", "orlando_bloom", "diane_kruger"}, "wolfgang_petersen"},
		{"titanic", []string{"kate_winslet", "leonardo_dicaprio", "kathleen_quinlan"}, "james_cameron"},
		{"revolutionary_road", []string{"kate_winslet", "leonardo_dicaprio", "kathleen_quinlan"}, "sam_mendes"},
		{"vanilla_sky", []string{"tom_cruise", "penelope_cruz", "cameron_diaz"}, "cameron_crowe"},
		{"far_and_away", []string{"tom_cruise", "nicole_kidman"}, "ron_howard"},
		{"what_women_want", []string{"mel_gibson", "helen_hunt"}, "nancy_meyers"},
		{"a_mighty_heart", []string{"angelina_jolie"}, "doug_liman"},
		// P5 neighbourhood (mel_gibson, helen_hunt): enough surrounding
		// structure that the pair has a meaningful explanation mix.
		{"braveheart", []string{"mel_gibson", "sophie_marceau"}, "mel_gibson_dir"},
		{"ransom", []string{"mel_gibson", "rene_russo"}, "ron_howard"},
		{"as_good_as_it_gets", []string{"helen_hunt", "jack_nicholson", "greg_kinnear"}, "james_l_brooks"},
		{"cast_away", []string{"helen_hunt", "tom_hanks"}, "robert_zemeckis"},
		{"twister", []string{"helen_hunt", "bill_paxton"}, "jan_de_bont"},
		// Bridge structure for the P3 study pair (tom_cruise, will_smith):
		// Jon Voight co-stars with Tom Cruise in Mission: Impossible and
		// with Will Smith in Ali, and awards provide a second route.
		{"mission_impossible", []string{"tom_cruise", "jon_voight"}, "brian_de_palma"},
		{"ali", []string{"will_smith", "jon_voight", "jada_pinkett_smith", "jamie_foxx"}, "michael_mann"},
		{"hitch", []string{"will_smith", "eva_mendes"}, "andy_tennant"},
		{"collateral", []string{"tom_cruise", "jamie_foxx"}, "michael_mann"},
	}
	for _, f := range films {
		b.node(f.name, TypeFilm)
		for _, a := range f.cast {
			b.edge(f.name, a, RelStarring)
		}
		b.edge(f.name, f.director, RelDirectedBy)
	}

	// Producing: Brad Pitt produced A Mighty Heart (with Dede Gardner)
	// and co-produced Mr. & Mrs. Smith in this sample — this realises the
	// Figure 4(c) pattern (starring + producing the same film).
	b.edge("a_mighty_heart", "brad_pitt", RelProducedBy)
	b.edge("a_mighty_heart", "dede_gardner", RelProducedBy)
	b.edge("mr_and_mrs_smith", "brad_pitt", RelProducedBy)
	b.edge("oceans_eleven", "jerry_bruckheimer", RelProducedBy)
	b.edge("far_and_away", "brian_grazer", RelProducedBy)

	// Marriages and partnerships (Figure 4(a)).
	b.edge("brad_pitt", "angelina_jolie", RelSpouse)
	b.edge("brad_pitt", "jennifer_aniston", RelSpouse)
	b.edge("tom_cruise", "nicole_kidman", RelSpouse)
	b.edge("will_smith", "jada_pinkett_smith", RelSpouse)
	b.edge("kate_winslet", "sam_mendes", RelSpouse)
	b.edge("michael_douglas", "catherine_zeta_jones", RelSpouse)
	b.edge("angelina_jolie", "jon_voight", RelSibling) // father in reality; family edge for tests

	// Genres and awards for a little breadth.
	for _, gn := range []string{"action", "drama", "romance", "crime"} {
		b.node(gn, TypeGenre)
	}
	b.edge("mr_and_mrs_smith", "action", RelHasGenre)
	b.edge("troy", "action", RelHasGenre)
	b.edge("titanic", "romance", RelHasGenre)
	b.edge("titanic", "drama", RelHasGenre)
	b.edge("revolutionary_road", "drama", RelHasGenre)
	b.edge("oceans_eleven", "crime", RelHasGenre)
	b.edge("oceans_twelve", "crime", RelHasGenre)

	b.node("academy_award", TypeAward)
	b.node("golden_globe", TypeAward)
	b.edge("kate_winslet", "academy_award", RelWonAward)
	b.edge("leonardo_dicaprio", "academy_award", RelWonAward)
	b.edge("titanic", "academy_award", RelWonAward)
	b.edge("brad_pitt", "golden_globe", RelWonAward)
	b.edge("angelina_jolie", "golden_globe", RelWonAward)
	b.edge("tom_cruise", "golden_globe", RelWonAward)
	b.edge("helen_hunt", "academy_award", RelWonAward)
	b.edge("helen_hunt", "golden_globe", RelWonAward)
	b.edge("mel_gibson", "golden_globe", RelWonAward)
	b.edge("mel_gibson", "academy_award", RelWonAward) // for Braveheart
	b.edge("braveheart", "academy_award", RelWonAward)
	b.edge("as_good_as_it_gets", "golden_globe", RelWonAward)
	b.edge("jack_nicholson", "academy_award", RelWonAward)
	b.edge("tom_hanks", "academy_award", RelWonAward)
	b.edge("will_smith", "golden_globe", RelWonAward)
	b.edge("what_women_want", "romance", RelHasGenre)
	b.edge("as_good_as_it_gets", "romance", RelHasGenre)
	b.edge("cast_away", "drama", RelHasGenre)
	b.edge("braveheart", "drama", RelHasGenre)
	b.edge("ransom", "crime", RelHasGenre)

	b.edge("oceans_twelve", "oceans_eleven", RelSequelOf)

	g.Freeze()
	return g
}

// builder keeps label registration terse during static construction.
type builder struct {
	g      *kb.Graph
	labels map[string]kb.LabelID
}

func (b *builder) node(name, typ string) kb.NodeID { return b.g.AddNode(name, typ) }

func (b *builder) label(name string) kb.LabelID {
	if id, ok := b.labels[name]; ok {
		return id
	}
	directed, ok := relDirected[name]
	if !ok {
		panic("kbgen: unregistered relationship label " + name)
	}
	id := b.g.MustLabel(name, directed)
	b.labels[name] = id
	return id
}

func (b *builder) edge(from, to, rel string) {
	f := b.g.NodeByName(from)
	t := b.g.NodeByName(to)
	if f == kb.InvalidNode || t == kb.InvalidNode {
		panic("kbgen: edge references unknown node " + from + " / " + to)
	}
	b.g.MustAddEdge(f, t, b.label(rel))
}
