package kbgen

import (
	"math/rand"

	"rex/internal/kb"
)

// Pair is a related entity pair with its connectedness bucket, standing
// in for the paper's search-engine "related entities" suggestions
// (Section 5.1). The substitution: we sample pairs within a small hop
// radius — which is what statistical relatedness from query logs yields
// in practice — and bucket them with the paper's own connectedness
// thresholds.
type Pair struct {
	Start, End    kb.NodeID
	Connectedness int
	Bucket        kb.ConnBucket
}

// PairOptions controls sampling.
type PairOptions struct {
	// PerBucket is how many pairs to collect in each of the low, medium
	// and high connectedness groups (the paper uses 10).
	PerBucket int
	// MaxLen is the path-length limit for the connectedness count (the
	// paper uses 4, matching the pattern size limit of 5).
	MaxLen int
	// Seed drives the deterministic sampling.
	Seed int64
	// MaxAttempts bounds the search for pairs; 0 means a generous
	// default proportional to the request.
	MaxAttempts int
}

func (o PairOptions) normalized() PairOptions {
	if o.PerBucket <= 0 {
		o.PerBucket = 10
	}
	if o.MaxLen <= 0 {
		o.MaxLen = 4
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4000 * o.PerBucket
	}
	return o
}

// SamplePairs draws entity pairs from the graph until each connectedness
// bucket holds PerBucket pairs (or attempts are exhausted — dense or
// sparse graphs may not populate every bucket). A pair is found by
// picking a random start entity and walking 1–2 hops to a random end
// entity, mimicking "related" suggestions which are overwhelmingly near
// neighbours in the knowledge graph.
func SamplePairs(g *kb.Graph, opt PairOptions) []Pair {
	opt = opt.normalized()
	rng := rand.New(rand.NewSource(opt.Seed))
	buckets := map[kb.ConnBucket][]Pair{}
	seen := map[[2]kb.NodeID]struct{}{}
	full := func() bool {
		return len(buckets[kb.ConnLow]) >= opt.PerBucket &&
			len(buckets[kb.ConnMedium]) >= opt.PerBucket &&
			len(buckets[kb.ConnHigh]) >= opt.PerBucket
	}
	for attempt := 0; attempt < opt.MaxAttempts && !full(); attempt++ {
		start := kb.NodeID(rng.Intn(g.NumNodes()))
		if g.Degree(start) == 0 {
			continue
		}
		// Walk one or two hops to a candidate end.
		cur := start
		hops := 1 + rng.Intn(2)
		for h := 0; h < hops; h++ {
			nbrs := g.Neighbors(cur)
			if len(nbrs) == 0 {
				break
			}
			cur = nbrs[rng.Intn(len(nbrs))].To
		}
		end := cur
		if end == start {
			continue
		}
		key := [2]kb.NodeID{start, end}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		// Cap the count just above the high threshold: bucketing only
		// needs to know which side of 100 the pair falls on, and the cap
		// keeps sampling on dense graphs cheap. The precise count (used
		// by Figure 8's x-axis) is recomputed for selected pairs.
		conn := g.Connectedness(start, end, opt.MaxLen, 101)
		bucket := kb.Bucket(conn)
		if len(buckets[bucket]) >= opt.PerBucket {
			continue
		}
		buckets[bucket] = append(buckets[bucket], Pair{
			Start: start, End: end, Connectedness: conn, Bucket: bucket,
		})
	}
	out := make([]Pair, 0, 3*opt.PerBucket)
	out = append(out, buckets[kb.ConnLow]...)
	out = append(out, buckets[kb.ConnMedium]...)
	out = append(out, buckets[kb.ConnHigh]...)
	return out
}
