package kbgen

import (
	"fmt"
	"math"
	"math/rand"

	"rex/internal/kb"
)

// Options parameterises the synthetic entertainment knowledge base. All
// counts scale linearly with Scale; the defaults at Scale=1 produce a
// graph of roughly 2,700 entities and 9,000 relationships whose local
// density around popular entities resembles the paper's DBpedia
// extraction. Scale≈75 approximates the paper's 200K entities / 1.3M
// relationships.
type Options struct {
	// Scale multiplies every entity population. Values ≤ 0 mean 1.
	Scale float64
	// Seed drives the deterministic pseudo-random construction.
	Seed int64
	// ZipfExponent shapes the popularity skew of people and films;
	// larger values concentrate work on fewer hubs. Default 0.9.
	ZipfExponent float64
}

func (o Options) normalized() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.ZipfExponent <= 0 {
		o.ZipfExponent = 0.9
	}
	return o
}

// Generate builds a synthetic entertainment knowledge base. The schema
// follows the paper's DBpedia extraction: films with casts, directors,
// producers, writers, studios, genres, franchises and sequels; TV shows;
// a music sub-domain (bands, albums, songs); people with marriages,
// partnerships, siblings, awards and birthplaces. Popularity is
// Zipf-distributed so popular actors star in many films — exactly the
// density skew that stresses explanation enumeration.
func Generate(opt Options) *kb.Graph {
	opt = opt.normalized()
	rng := rand.New(rand.NewSource(opt.Seed))
	g := kb.New()
	b := builder{g: g, labels: map[string]kb.LabelID{}}

	n := func(base int) int {
		v := int(float64(base) * opt.Scale)
		if v < 1 {
			v = 1
		}
		return v
	}

	// Entity populations at Scale=1.
	numActors := n(600)
	numDirectors := n(80)
	numProducers := n(60)
	numWriters := n(80)
	numMusicians := n(150)
	numFilms := n(700)
	numTVShows := n(60)
	numBands := n(40)
	numAlbums := n(90)
	numSongs := n(250)
	numCharacters := n(200)
	numGenres := clampInt(n(18), 6, 40)
	numAwards := clampInt(n(10), 4, 24)
	numStudios := clampInt(n(15), 5, 40)
	numCities := clampInt(n(40), 10, 120)
	numCountries := clampInt(n(12), 6, 30)
	numFranchises := clampInt(n(20), 5, 60)
	numChannels := clampInt(n(8), 4, 20)
	numFestivals := clampInt(n(6), 3, 15)
	numLabels := clampInt(n(10), 4, 25)

	mk := func(prefix, typ string, count int) []kb.NodeID {
		ids := make([]kb.NodeID, count)
		for i := range ids {
			ids[i] = b.node(fmt.Sprintf("%s_%04d", prefix, i), typ)
		}
		return ids
	}
	actors := mk("actor", TypeActor, numActors)
	directors := mk("director", TypeDirector, numDirectors)
	producers := mk("producer", TypeProducer, numProducers)
	writers := mk("writer", TypeWriter, numWriters)
	musicians := mk("musician", TypeMusician, numMusicians)
	films := mk("film", TypeFilm, numFilms)
	tvshows := mk("tvshow", TypeTVShow, numTVShows)
	bands := mk("band", TypeBand, numBands)
	albums := mk("album", TypeAlbum, numAlbums)
	songs := mk("song", TypeSong, numSongs)
	characters := mk("character", TypeCharacter, numCharacters)
	genres := mk("genre", TypeGenre, numGenres)
	awards := mk("award", TypeAward, numAwards)
	studios := mk("studio", TypeStudio, numStudios)
	cities := mk("city", TypeCity, numCities)
	countries := mk("country", TypeCountry, numCountries)
	franchises := mk("franchise", TypeFranchise, numFranchises)
	channels := mk("channel", TypeChannel, numChannels)
	festivals := mk("festival", TypeFestival, numFestivals)
	labels := mk("label", TypeLabel, numLabels)

	actorPick := newZipfPicker(rng, actors, opt.ZipfExponent)
	directorPick := newZipfPicker(rng, directors, opt.ZipfExponent)
	producerPick := newZipfPicker(rng, producers, opt.ZipfExponent)
	writerPick := newZipfPicker(rng, writers, opt.ZipfExponent)
	musicianPick := newZipfPicker(rng, musicians, opt.ZipfExponent)

	uniform := func(ids []kb.NodeID) kb.NodeID { return ids[rng.Intn(len(ids))] }

	// Films: cast, crew, metadata.
	for _, f := range films {
		castSize := 2 + rng.Intn(6)
		cast := pickDistinct(actorPick, castSize)
		for _, a := range cast {
			b.edgeIDs(f, a, RelStarring)
		}
		b.edgeIDs(f, directorPick.pick(), RelDirectedBy)
		for i := 0; i < 1+rng.Intn(2); i++ {
			b.edgeIDs(f, producerPick.pick(), RelProducedBy)
		}
		// Star-producers: occasionally a cast member produces too,
		// enabling the Figure 4(c) pattern.
		if rng.Float64() < 0.08 && len(cast) > 0 {
			b.edgeIDs(f, cast[0], RelProducedBy)
		}
		for i := 0; i < 1+rng.Intn(2); i++ {
			b.edgeIDs(f, writerPick.pick(), RelWrittenBy)
		}
		for i := 0; i < 1+rng.Intn(2); i++ {
			b.edgeIDs(f, uniform(genres), RelHasGenre)
		}
		b.edgeIDs(f, uniform(studios), RelStudioOf)
		if rng.Float64() < 0.25 {
			b.edgeIDs(f, uniform(franchises), RelPartOf)
		}
		if rng.Float64() < 0.10 {
			b.edgeIDs(f, uniform(festivals), RelPremiered)
		}
		if rng.Float64() < 0.15 {
			b.edgeIDs(f, musicianPick.pick(), RelThemeBy)
		}
		if rng.Float64() < 0.06 {
			b.edgeIDs(f, uniform(awards), RelWonAward)
		} else if rng.Float64() < 0.10 {
			b.edgeIDs(f, uniform(awards), RelNominated)
		}
	}
	// Sequels among films in the same franchise-ish window.
	for i := 1; i < len(films); i++ {
		if rng.Float64() < 0.05 {
			b.edgeIDs(films[i], films[rng.Intn(i)], RelSequelOf)
		}
	}

	// TV shows.
	for _, s := range tvshows {
		for i, cnt := 0, 3+rng.Intn(5); i < cnt; i++ {
			b.edgeIDs(s, actorPick.pick(), RelTVStarring)
		}
		b.edgeIDs(s, uniform(channels), RelAirsOn)
		b.edgeIDs(s, uniform(genres), RelHasGenre)
	}

	// Characters bind actors and films one more way.
	for _, c := range characters {
		f := uniform(films)
		b.edgeIDs(c, f, RelCharIn)
		b.edgeIDs(c, actorPick.pick(), RelPlayedBy)
	}

	// Music sub-domain.
	for _, m := range musicians {
		if rng.Float64() < 0.5 {
			b.edgeIDs(m, uniform(bands), RelMemberOf)
		}
	}
	for _, al := range albums {
		b.edgeIDs(al, uniform(bands), RelAlbumBy)
	}
	for _, s := range songs {
		if rng.Float64() < 0.6 {
			b.edgeIDs(s, musicianPick.pick(), RelPerformdBy)
		} else {
			b.edgeIDs(s, uniform(bands), RelPerformdBy)
		}
		b.edgeIDs(s, uniform(albums), RelOnAlbum)
		if rng.Float64() < 0.4 {
			b.edgeIDs(s, uniform(genres), RelHasGenre)
		}
	}
	for _, band := range bands {
		b.edgeIDs(band, uniform(labels), RelSignedTo)
	}

	// People: marriages (biased toward co-stars, which is what makes
	// spouse+costar explanations appear together), partnerships,
	// siblings, awards, birthplaces.
	people := make([]kb.NodeID, 0, numActors+numDirectors+numProducers+numWriters+numMusicians)
	people = append(people, actors...)
	people = append(people, directors...)
	people = append(people, producers...)
	people = append(people, writers...)
	people = append(people, musicians...)

	costars := collectCostars(g, films, b.label(RelStarring))
	numMarriages := len(people) / 8
	for i := 0; i < numMarriages; i++ {
		if len(costars) > 0 && rng.Float64() < 0.4 {
			pair := costars[rng.Intn(len(costars))]
			b.edgeIDs(pair[0], pair[1], RelSpouse)
		} else {
			a, c := uniform(people), uniform(people)
			if a != c {
				b.edgeIDs(a, c, RelSpouse)
			}
		}
	}
	for i := 0; i < len(people)/12; i++ {
		a, c := uniform(people), uniform(people)
		if a != c {
			b.edgeIDs(a, c, RelPartner)
		}
	}
	for i := 0; i < len(people)/15; i++ {
		a, c := uniform(people), uniform(people)
		if a != c {
			b.edgeIDs(a, c, RelSibling)
		}
	}
	for _, p := range people {
		if rng.Float64() < 0.12 {
			b.edgeIDs(p, uniform(awards), RelWonAward)
		} else if rng.Float64() < 0.15 {
			b.edgeIDs(p, uniform(awards), RelNominated)
		}
		if rng.Float64() < 0.7 {
			b.edgeIDs(p, uniform(cities), RelBornIn)
		}
	}
	for _, c := range cities {
		b.edgeIDs(c, uniform(countries), RelLocatedIn)
	}

	g.Freeze()
	return g
}

// edgeIDs adds an edge between known IDs, registering the label lazily.
// Duplicate edges are silently ignored (AddEdge semantics), which the
// generator relies on.
func (b *builder) edgeIDs(from, to kb.NodeID, rel string) {
	if from == to {
		return
	}
	b.g.MustAddEdge(from, to, b.label(rel))
}

// collectCostars returns actor pairs that co-star in at least one film.
// The list is ordered by film and cast order, hence deterministic.
func collectCostars(g *kb.Graph, films []kb.NodeID, starring kb.LabelID) [][2]kb.NodeID {
	var out [][2]kb.NodeID
	for _, f := range films {
		var cast []kb.NodeID
		for _, he := range g.Neighbors(f) {
			if he.Label == starring && he.Dir == kb.Out {
				cast = append(cast, he.To)
			}
		}
		for i := 0; i < len(cast); i++ {
			for j := i + 1; j < len(cast); j++ {
				out = append(out, [2]kb.NodeID{cast[i], cast[j]})
			}
		}
	}
	return out
}

// zipfPicker samples from a fixed ID slice with Zipf-skewed popularity:
// element i has weight (i+1)^-s.
type zipfPicker struct {
	rng    *rand.Rand
	ids    []kb.NodeID
	prefix []float64 // cumulative weights
}

func newZipfPicker(rng *rand.Rand, ids []kb.NodeID, s float64) *zipfPicker {
	prefix := make([]float64, len(ids))
	sum := 0.0
	for i := range ids {
		sum += pow(float64(i+1), -s)
		prefix[i] = sum
	}
	return &zipfPicker{rng: rng, ids: ids, prefix: prefix}
}

func (z *zipfPicker) pick() kb.NodeID {
	total := z.prefix[len(z.prefix)-1]
	x := z.rng.Float64() * total
	lo, hi := 0, len(z.prefix)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.prefix[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return z.ids[lo]
}

// pickDistinct draws up to k distinct IDs from the picker (best effort:
// it retries a bounded number of times, so heavily skewed small
// populations may return fewer).
func pickDistinct(z *zipfPicker, k int) []kb.NodeID {
	seen := make(map[kb.NodeID]struct{}, k)
	out := make([]kb.NodeID, 0, k)
	for attempts := 0; len(out) < k && attempts < 8*k; attempts++ {
		id := z.pick()
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
