package kbgen

import "fmt"

// Generation presets: named sizes shared by the kbgen CLI and the macro
// benchmark, so "the million-edge KB" means the same graph everywhere.
// All presets are deterministic in the seed — same (preset, seed) ⇒
// byte-identical graph and fingerprint (see TestGenerateReproducible).
//
//	small   ≈ 2.7K entities /   11K relationships (scale 1)
//	medium  ≈  23K entities /  110K relationships (scale 10)
//	million ≈ 254K entities / 1.21M relationships (scale 110)
var presetScales = map[string]float64{
	"small":   1,
	"medium":  10,
	"million": 110,
}

// PresetNames lists the supported preset names.
func PresetNames() []string { return []string{"small", "medium", "million"} }

// PresetOptions resolves a named preset into generation options with the
// given seed.
func PresetOptions(preset string, seed int64) (Options, error) {
	scale, ok := presetScales[preset]
	if !ok {
		return Options{}, fmt.Errorf("kbgen: unknown preset %q (supported: %v)", preset, PresetNames())
	}
	return Options{Scale: scale, Seed: seed}, nil
}
