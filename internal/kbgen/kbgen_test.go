package kbgen

import (
	"bytes"
	"testing"

	"rex/internal/kb"
)

func TestSampleBasics(t *testing.T) {
	g := Sample()
	if !g.Frozen() {
		t.Error("sample graph must be frozen")
	}
	for _, name := range []string{
		"brad_pitt", "angelina_jolie", "tom_cruise", "nicole_kidman",
		"kate_winslet", "leonardo_dicaprio", "will_smith", "james_cameron",
		"mel_gibson", "helen_hunt", "titanic", "mr_and_mrs_smith",
	} {
		if g.NodeByName(name) == kb.InvalidNode {
			t.Errorf("sample KB missing %q", name)
		}
	}
	// Paper flagship facts.
	spouse := g.LabelByName(RelSpouse)
	star := g.LabelByName(RelStarring)
	if !g.HasEdge(g.NodeByName("brad_pitt"), g.NodeByName("angelina_jolie"), spouse) {
		t.Error("brad and angelina must be married in the sample")
	}
	if !g.HasEdge(g.NodeByName("interview_with_the_vampire"), g.NodeByName("tom_cruise"), star) {
		t.Error("tom cruise must star in interview with the vampire")
	}
	if g.LabelDirected(spouse) {
		t.Error("spouse must be undirected")
	}
	if !g.LabelDirected(star) {
		t.Error("starring must be directed")
	}
}

func TestSampleStudyPairsConnected(t *testing.T) {
	g := Sample()
	pairs := [][2]string{
		{"brad_pitt", "angelina_jolie"},
		{"kate_winslet", "leonardo_dicaprio"},
		{"tom_cruise", "will_smith"},
		{"james_cameron", "kate_winslet"},
		{"mel_gibson", "helen_hunt"},
	}
	for _, p := range pairs {
		s, e := g.NodeByName(p[0]), g.NodeByName(p[1])
		if s == kb.InvalidNode || e == kb.InvalidNode {
			t.Fatalf("study pair %v missing", p)
		}
		if c := g.Connectedness(s, e, 4, -1); c == 0 {
			t.Errorf("study pair %v disconnected within 4 hops", p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Options{Scale: 0.3, Seed: 11})
	b := Generate(Options{Scale: 0.3, Seed: 11})
	var ba, bb bytes.Buffer
	if err := a.WriteTSV(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteTSV(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Error("same seed produced different graphs")
	}
	c := Generate(Options{Scale: 0.3, Seed: 12})
	var bc bytes.Buffer
	if err := c.WriteTSV(&bc); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ba.Bytes(), bc.Bytes()) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGenerateScales(t *testing.T) {
	small := Generate(Options{Scale: 0.3, Seed: 5}).Stats()
	big := Generate(Options{Scale: 1.2, Seed: 5}).Stats()
	if big.Nodes <= small.Nodes || big.Edges <= small.Edges {
		t.Errorf("scale 1.2 (%+v) not larger than 0.3 (%+v)", big, small)
	}
}

func TestGenerateSchemaSanity(t *testing.T) {
	g := Generate(Options{Scale: 0.5, Seed: 9})
	// All 20 entity types are populated.
	for _, typ := range []string{
		TypeActor, TypeDirector, TypeProducer, TypeWriter, TypeMusician,
		TypeFilm, TypeTVShow, TypeBand, TypeAlbum, TypeSong, TypeGenre,
		TypeAward, TypeStudio, TypeCity, TypeCountry, TypeCharacter,
		TypeFranchise, TypeChannel, TypeFestival, TypeLabel,
	} {
		if len(g.NodesOfType(typ)) == 0 {
			t.Errorf("no entities of type %q", typ)
		}
	}
	// Every registered relationship label appears in relDirected.
	for _, l := range g.Labels() {
		if _, ok := relDirected[g.LabelName(l)]; !ok {
			t.Errorf("label %q not in relDirected", g.LabelName(l))
		}
	}
	// Films must have casts: every film has ≥1 outgoing starring edge.
	star := g.LabelByName(RelStarring)
	films := g.NodesOfType(TypeFilm)
	misses := 0
	for _, f := range films {
		found := false
		for _, he := range g.Neighbors(f) {
			if he.Label == star && he.Dir == kb.Out {
				found = true
				break
			}
		}
		if !found {
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("%d/%d films without cast", misses, len(films))
	}
}

func TestGeneratePopularitySkew(t *testing.T) {
	g := Generate(Options{Scale: 1, Seed: 42})
	star := g.LabelByName(RelStarring)
	deg := func(name string) int {
		n := g.NodeByName(name)
		c := 0
		for _, he := range g.Neighbors(n) {
			if he.Label == star {
				c++
			}
		}
		return c
	}
	// Zipf popularity: the first actor must star far more often than a
	// mid-tier one.
	top := deg("actor_0000")
	mid := deg("actor_0300")
	if top < 3*mid+3 {
		t.Errorf("popularity skew too weak: actor_0000=%d actor_0300=%d", top, mid)
	}
}

func TestSamplePairsBuckets(t *testing.T) {
	g := Generate(Options{Scale: 1, Seed: 42})
	pairs := SamplePairs(g, PairOptions{PerBucket: 5, Seed: 43})
	counts := map[kb.ConnBucket]int{}
	seen := map[[2]kb.NodeID]bool{}
	for _, p := range pairs {
		counts[p.Bucket]++
		if p.Start == p.End {
			t.Error("degenerate pair")
		}
		if seen[[2]kb.NodeID{p.Start, p.End}] {
			t.Error("duplicate pair")
		}
		seen[[2]kb.NodeID{p.Start, p.End}] = true
		// Bucket must match a recomputed (capped like the sampler)
		// connectedness.
		conn := g.Connectedness(p.Start, p.End, 4, 101)
		if kb.Bucket(conn) != p.Bucket {
			t.Errorf("pair bucket %v but connectedness %d", p.Bucket, conn)
		}
	}
	for _, b := range []kb.ConnBucket{kb.ConnLow, kb.ConnMedium, kb.ConnHigh} {
		if counts[b] != 5 {
			t.Errorf("bucket %v has %d pairs, want 5", b, counts[b])
		}
	}
}

func TestSamplePairsDeterministic(t *testing.T) {
	g := Generate(Options{Scale: 0.5, Seed: 1})
	a := SamplePairs(g, PairOptions{PerBucket: 3, Seed: 2})
	b := SamplePairs(g, PairOptions{PerBucket: 3, Seed: 2})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pair sampling not deterministic")
		}
	}
}

// TestGenerateReproducible pins the determinism contract the presets and
// the macro benchmark rely on: the same (preset, seed) always builds the
// byte-identical graph — equal fingerprints — and a different seed
// builds a different one.
func TestGenerateReproducible(t *testing.T) {
	opt, err := PresetOptions("small", 7)
	if err != nil {
		t.Fatal(err)
	}
	a := Generate(opt)
	b := Generate(opt)
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("same seed, different fingerprints: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	opt2 := opt
	opt2.Seed = 8
	c := Generate(opt2)
	if c.Fingerprint() == a.Fingerprint() {
		t.Error("different seeds produced identical graphs")
	}
}

// TestPresetOptions covers the preset table and its error path.
func TestPresetOptions(t *testing.T) {
	for _, name := range PresetNames() {
		opt, err := PresetOptions(name, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if opt.Scale <= 0 || opt.Seed != 42 {
			t.Errorf("%s: bad options %+v", name, opt)
		}
	}
	if _, err := PresetOptions("galactic", 1); err == nil {
		t.Error("unknown preset accepted")
	}
}
