package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/pattern"
)

// bruteForce enumerates instances by trying every assignment of nodes to
// variables — the trivially correct oracle for small graphs.
func bruteForce(g *kb.Graph, p *pattern.Pattern, start, end kb.NodeID) []pattern.Instance {
	n := p.NumVars()
	inst := make(pattern.Instance, n)
	inst[pattern.Start] = start
	var out []pattern.Instance
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			for _, e := range p.Edges() {
				if !g.HasEdge(inst[e.U], inst[e.V], e.Label) {
					return
				}
			}
			out = append(out, inst.Clone())
			return
		}
		if v == int(pattern.Start) {
			rec(v + 1)
			return
		}
		if v == int(pattern.End) && end != kb.InvalidNode {
			inst[v] = end
			rec(v + 1)
			return
		}
		// Injectivity: variables are assigned in index order, so a
		// candidate only needs to differ from the earlier assignments
		// (which include both targets, at indexes 0 and 1).
		for id := kb.NodeID(0); int(id) < g.NumNodes(); id++ {
			conflict := false
			for u := 0; u < v; u++ {
				if inst[u] == id {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			inst[v] = id
			rec(v + 1)
		}
	}
	rec(0)
	return out
}

func asKeySet(ins []pattern.Instance) map[pattern.InstanceKey]struct{} {
	out := make(map[pattern.InstanceKey]struct{}, len(ins))
	for _, in := range ins {
		out[in.Key()] = struct{}{}
	}
	return out
}

func TestMatcherAgainstBruteForce(t *testing.T) {
	g := kbgen.Sample()
	star := g.LabelByName(kbgen.RelStarring)
	spouse := g.LabelByName(kbgen.RelSpouse)
	dir := g.LabelByName(kbgen.RelDirectedBy)
	brad := g.NodeByName("brad_pitt")
	angelina := g.NodeByName("angelina_jolie")

	patterns := []*pattern.Pattern{
		pattern.MustNew(g, 2, []pattern.Edge{{U: pattern.Start, V: pattern.End, Label: spouse}}),
		pattern.MustNew(g, 3, []pattern.Edge{
			{U: 2, V: pattern.Start, Label: star}, {U: 2, V: pattern.End, Label: star},
		}),
		pattern.MustNew(g, 4, []pattern.Edge{
			{U: 2, V: pattern.Start, Label: star},
			{U: 2, V: 3, Label: dir},
			{U: 2, V: pattern.End, Label: star},
		}),
	}
	for i, p := range patterns {
		got := asKeySet(Find(g, p, brad, angelina, Options{}))
		want := asKeySet(bruteForce(g, p, brad, angelina))
		if len(got) != len(want) {
			t.Errorf("pattern %d: matcher %d vs brute force %d instances", i, len(got), len(want))
			continue
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Errorf("pattern %d: missing instance", i)
			}
		}
	}
}

func TestFreeEndEnumeration(t *testing.T) {
	g := kbgen.Sample()
	star := g.LabelByName(kbgen.RelStarring)
	brad := g.NodeByName("brad_pitt")
	costar := pattern.MustNew(g, 3, []pattern.Edge{
		{U: 2, V: pattern.Start, Label: star}, {U: 2, V: pattern.End, Label: star},
	})
	counts := CountByEnd(g, costar, brad)
	// Brad's direct co-stars in the sample KB (from the film casts).
	julia := g.NodeByName("julia_roberts")
	if counts[julia] != 3 { // oceans 11, oceans 12, the mexican
		t.Errorf("julia_roberts co-star count = %d, want 3", counts[julia])
	}
	angelina := g.NodeByName("angelina_jolie")
	if counts[angelina] != 1 { // mr & mrs smith
		t.Errorf("angelina co-star count = %d, want 1", counts[angelina])
	}
	if _, ok := counts[brad]; ok {
		t.Error("the start entity must not appear as an end")
	}
	// Count with a fixed end agrees with the grouped count.
	if got := Count(g, costar, brad, julia); got != 3 {
		t.Errorf("Count(brad, julia) = %d, want 3", got)
	}
}

func TestFindLimit(t *testing.T) {
	g := kbgen.Sample()
	star := g.LabelByName(kbgen.RelStarring)
	brad := g.NodeByName("brad_pitt")
	costar := pattern.MustNew(g, 3, []pattern.Edge{
		{U: 2, V: pattern.Start, Label: star}, {U: 2, V: pattern.End, Label: star},
	})
	all := Find(g, costar, brad, kb.InvalidNode, Options{})
	if len(all) < 3 {
		t.Fatalf("expected several free-end instances, got %d", len(all))
	}
	two := Find(g, costar, brad, kb.InvalidNode, Options{Limit: 2})
	if len(two) != 2 {
		t.Fatalf("Limit=2 returned %d", len(two))
	}
}

func TestNoMatchWhenEdgeAbsent(t *testing.T) {
	g := kbgen.Sample()
	spouse := g.LabelByName(kbgen.RelSpouse)
	p := pattern.MustNew(g, 2, []pattern.Edge{{U: pattern.Start, V: pattern.End, Label: spouse}})
	brad := g.NodeByName("brad_pitt")
	tom := g.NodeByName("tom_cruise")
	if got := Count(g, p, brad, tom); got != 0 {
		t.Errorf("brad and tom are not married; count = %d", got)
	}
}

func TestDirectedOrientationRespected(t *testing.T) {
	g := kbgen.Sample()
	star := g.LabelByName(kbgen.RelStarring)
	brad := g.NodeByName("brad_pitt")
	troy := g.NodeByName("troy")
	// starring goes film→actor: pattern start→end matches (troy, brad)
	// but not (brad, troy).
	p := pattern.MustNew(g, 2, []pattern.Edge{{U: pattern.Start, V: pattern.End, Label: star}})
	if got := Count(g, p, troy, brad); got != 1 {
		t.Errorf("film→actor orientation: count = %d, want 1", got)
	}
	if got := Count(g, p, brad, troy); got != 0 {
		t.Errorf("reverse orientation: count = %d, want 0", got)
	}
}

// TestQuickMatcherMatchesBruteForce property-checks the matcher against
// the brute-force oracle on random small graphs and random path-or-wedge
// patterns.
func TestQuickMatcherMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := kb.New()
		n := 5 + rng.Intn(6)
		for i := 0; i < n; i++ {
			g.AddNode(string(rune('a'+i)), "t")
		}
		labels := []kb.LabelID{
			g.MustLabel("d", true), g.MustLabel("u", false),
		}
		for i := 0; i < 3*n; i++ {
			a, b := kb.NodeID(rng.Intn(n)), kb.NodeID(rng.Intn(n))
			if a != b {
				g.AddEdge(a, b, labels[rng.Intn(2)])
			}
		}
		g.Freeze()
		start, end := kb.NodeID(0), kb.NodeID(1)

		// Random small connected pattern.
		nv := 2 + rng.Intn(3)
		var edges []pattern.Edge
		for i := 1; i < nv; i++ {
			u := pattern.VarID(rng.Intn(i))
			v := pattern.VarID(i)
			if rng.Intn(2) == 0 {
				u, v = v, u
			}
			edges = append(edges, pattern.Edge{U: u, V: v, Label: labels[rng.Intn(2)]})
		}
		p, err := pattern.New(g, nv, edges)
		if err != nil {
			return true
		}
		got := asKeySet(Find(g, p, start, end, Options{}))
		want := asKeySet(bruteForce(g, p, start, end))
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
