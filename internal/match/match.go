// Package match evaluates explanation patterns against a knowledge base:
// a backtracking subgraph matcher specialised for REX patterns, where the
// start variable is always bound, the end variable may be bound or free,
// and instances are injective embeddings — distinct variables bind
// distinct entities. (Definition 2 of the paper literally allows
// non-injective mappings, but the enumeration framework of Section 3 only
// produces instances assembled from simple paths, and Theorems 1–2 are
// only sound under the injective reading; REX therefore adopts it
// system-wide. See DESIGN.md.)
//
// The matcher powers the distributional interestingness measures (which
// evaluate a pattern with the end — or both targets — varied) and serves
// as an independent oracle in tests: instances produced incrementally by
// the enumeration algorithms must equal the matcher's results.
//
// # Allocation discipline
//
// Measure evaluation calls Count/CountByEnd once per (pattern, pair) —
// thousands of times per query under the distributional measures — so
// matcher state is pooled: every entry point takes a matcher from a
// sync.Pool, resets it, runs, and returns it. All per-run state lives in
// fixed MaxVars-sized arrays or reused slices inside the pooled struct,
// making the steady-state Count path allocation-free (see
// BenchmarkMatchCount). The pool contract: reset rebuilds every field
// that run reads, and release clears the graph, pattern and context
// pointers so a pooled matcher never retains a swapped-out snapshot.
package match

import (
	"context"
	"sync"

	"rex/internal/kb"
	"rex/internal/obs"
	"rex/internal/pattern"
)

// Options configures a match run.
type Options struct {
	// Limit stops enumeration after this many instances when positive.
	Limit int
}

// ctxCheckInterval bounds how many candidate bindings the backtracking
// search tries between context checks, so cancellation is noticed at a
// bounded interval without paying a per-candidate atomic load.
const ctxCheckInterval = 1024

// ForEach enumerates the instances of p in g with the start variable
// bound to start and, if end != kb.InvalidNode, the end variable bound to
// end. The callback receives each instance (the slice is reused across
// calls; clone to retain) and returns false to stop early.
//
// Per Definition 2, non-target variables never bind to the start entity
// or to the (chosen) end entity; variable bindings are otherwise free to
// repeat.
func ForEach(g *kb.Graph, p *pattern.Pattern, start, end kb.NodeID, f func(pattern.Instance) bool) {
	m := acquireMatcher(g, p, start, end)
	m.run(f)
	releaseMatcher(m)
}

// ForEachContext is ForEach with cancellation: the search checks ctx
// every ctxCheckInterval candidate bindings and unwinds early when the
// context is done, returning ctx.Err(). A nil error means the enumeration
// ran to completion (or the callback stopped it).
func ForEachContext(ctx context.Context, g *kb.Graph, p *pattern.Pattern, start, end kb.NodeID, f func(pattern.Instance) bool) error {
	tr := obs.FromContext(ctx)
	t0 := tr.Begin()
	m := acquireMatcher(g, p, start, end)
	m.ctx = ctx
	m.run(f)
	err := m.err
	releaseMatcher(m)
	tr.End(obs.StageMatch, t0, 0)
	return err
}

// CountContext is Count with cancellation; the count is partial when an
// error is returned.
func CountContext(ctx context.Context, g *kb.Graph, p *pattern.Pattern, start, end kb.NodeID) (int, error) {
	tr := obs.FromContext(ctx)
	t0 := tr.Begin()
	m := acquireMatcher(g, p, start, end)
	m.ctx = ctx
	m.run(m.countFn)
	n, err := m.count, m.err
	releaseMatcher(m)
	tr.End(obs.StageMatch, t0, int64(n))
	return n, err
}

// CountByEndContext is CountByEnd with cancellation; the map is partial
// when an error is returned.
func CountByEndContext(ctx context.Context, g *kb.Graph, p *pattern.Pattern, start kb.NodeID) (map[kb.NodeID]int, error) {
	counts := make(map[kb.NodeID]int)
	err := CountByEndInto(ctx, g, p, start, counts)
	return counts, err
}

// CountByEndInto evaluates p with a free end variable and accumulates
// the per-end instance counts into dst, which the caller owns (and
// typically reuses — clear it between unrelated runs). Like Count, the
// steady-state path allocates nothing: the matcher and its counting
// callback come from the pool, and dst absorbs the only per-call state
// the map-returning wrappers had to allocate. The count is partial when
// an error is returned. The start entity itself is excluded as an end.
func CountByEndInto(ctx context.Context, g *kb.Graph, p *pattern.Pattern, start kb.NodeID, dst map[kb.NodeID]int) error {
	tr := obs.FromContext(ctx)
	t0 := tr.Begin()
	m := acquireMatcher(g, p, start, kb.InvalidNode)
	m.ctx = ctx
	m.endCounts = dst
	m.run(m.byEndFn)
	err := m.err
	m.endCounts = nil
	releaseMatcher(m)
	tr.End(obs.StageMatch, t0, int64(len(dst)))
	return err
}

// Find collects the instances of p with the given target bindings. Pass
// end = kb.InvalidNode to leave the end variable free. The zero Options
// value enumerates everything.
func Find(g *kb.Graph, p *pattern.Pattern, start, end kb.NodeID, opt Options) []pattern.Instance {
	var out []pattern.Instance
	ForEach(g, p, start, end, func(in pattern.Instance) bool {
		out = append(out, in.Clone())
		return opt.Limit <= 0 || len(out) < opt.Limit
	})
	return out
}

// Count reports the number of instances of p between start and end; this
// is Mcount evaluated from scratch. The steady-state path performs no
// allocations: the matcher, its buffers and the counting callback all
// come from the pool.
func Count(g *kb.Graph, p *pattern.Pattern, start, end kb.NodeID) int {
	m := acquireMatcher(g, p, start, end)
	m.run(m.countFn)
	n := m.count
	releaseMatcher(m)
	return n
}

// CountByEnd evaluates p with a free end variable and returns the number
// of instances per end entity: the raw material of the paper's local
// distribution D_l. The start entity itself is excluded as an end.
// Callers that reuse a table should prefer CountByEndInto, which is
// allocation-free in the steady state.
func CountByEnd(g *kb.Graph, p *pattern.Pattern, start kb.NodeID) map[kb.NodeID]int {
	counts := make(map[kb.NodeID]int)
	_ = CountByEndInto(context.Background(), g, p, start, counts)
	return counts
}

// matcher holds the per-run state of the backtracking search. Instances
// are pooled; all variable-indexed state sits in MaxVars-sized arrays so
// a reset writes no pointers and performs no allocations.
type matcher struct {
	g     *kb.Graph
	p     *pattern.Pattern
	start kb.NodeID
	end   kb.NodeID // InvalidNode when free

	n        int
	instBuf  [pattern.MaxVars]kb.NodeID
	inst     pattern.Instance // instBuf[:n]
	assigned [pattern.MaxVars]bool

	// plan output: order[:orderLen] is the assignment order excluding
	// pre-bound variables; anchorAt[d] generates candidates for order[d];
	// checks[checkSpan[d][0]:checkSpan[d][1]] are the edges to verify
	// once order[d] is assigned.
	order     [pattern.MaxVars]pattern.VarID
	orderLen  int
	anchorAt  [pattern.MaxVars]anchor
	checkSpan [pattern.MaxVars][2]int32
	checks    []pattern.Edge

	// countFn is the pooled counting callback for Count/CountContext,
	// allocated once per pooled matcher so the steady-state count path
	// closes over nothing. byEndFn is its per-end sibling: it increments
	// endCounts, the caller-owned table wired up by CountByEndInto.
	countFn   func(pattern.Instance) bool
	count     int
	byEndFn   func(pattern.Instance) bool
	endCounts map[kb.NodeID]int

	// Cancellation: ctx is checked every ctxCheckInterval candidate
	// tries; when done, err records ctx.Err() and the search unwinds.
	ctx   context.Context
	err   error
	tries int
}

var matcherPool = sync.Pool{
	New: func() any {
		m := &matcher{}
		m.countFn = func(pattern.Instance) bool {
			m.count++
			return true
		}
		m.byEndFn = func(in pattern.Instance) bool {
			m.endCounts[in[pattern.End]]++
			return true
		}
		return m
	},
}

// acquireMatcher takes a pooled matcher and rebuilds its state for one
// run. The caller must pass it to releaseMatcher when done.
func acquireMatcher(g *kb.Graph, p *pattern.Pattern, start, end kb.NodeID) *matcher {
	m := matcherPool.Get().(*matcher)
	m.g, m.p, m.start, m.end = g, p, start, end
	m.n = p.NumVars()
	m.inst = m.instBuf[:m.n]
	for i := 0; i < m.n; i++ {
		m.assigned[i] = false
	}
	m.inst[pattern.Start] = start
	m.assigned[pattern.Start] = true
	if end != kb.InvalidNode {
		m.inst[pattern.End] = end
		m.assigned[pattern.End] = true
	}
	m.orderLen = 0
	m.checks = m.checks[:0]
	m.count = 0
	m.tries = 0
	m.ctx = nil
	m.err = nil
	m.plan()
	return m
}

// releaseMatcher returns a matcher to the pool, clearing every pointer so
// pooled matchers never pin a knowledge-base snapshot or context alive.
// The reusable buffers (instance, plan and check storage) are retained —
// that reuse is the point of the pool.
func releaseMatcher(m *matcher) {
	m.g, m.p = nil, nil
	m.inst = nil
	m.ctx = nil
	m.err = nil
	m.endCounts = nil
	matcherPool.Put(m)
}

// cancelled reports whether the search should abort, checking the context
// at a bounded interval.
func (m *matcher) cancelled() bool {
	if m.err != nil {
		return true
	}
	if m.ctx == nil {
		return false
	}
	m.tries++
	if m.tries%ctxCheckInterval != 0 {
		return false
	}
	if err := m.ctx.Err(); err != nil {
		m.err = err
		return true
	}
	return false
}

// anchor tells the matcher how to generate candidates for a variable:
// follow one incident pattern edge from an already-assigned neighbor.
type anchor struct {
	from  pattern.VarID // assigned neighbor variable
	label kb.LabelID
	// wantDir is the orientation candidates must satisfy as half-edges of
	// the anchor's value: Out when the pattern edge leaves from, In when
	// it enters from, Undirected for undirected labels.
	wantDir kb.Dir
}

// plan picks a static assignment order: repeatedly the unassigned
// variable with the most edges into the assigned set — the most
// constrained, hence most selective, binding — breaking ties by higher
// total pattern degree (more future constraints resolved early) and then
// by lowest ID for determinism. At least one edge into the assigned set
// is required so candidates always come from adjacency rather than a
// full node scan; patterns are connected to the start, so the greedy
// order always completes.
func (m *matcher) plan() {
	n := m.n
	var done [pattern.MaxVars]bool
	var degree [pattern.MaxVars]int
	copy(done[:n], m.assigned[:n])
	for _, e := range m.p.Edges() {
		degree[e.U]++
		degree[e.V]++
	}
	remaining := 0
	for v := 0; v < n; v++ {
		if !done[v] {
			remaining++
		}
	}
	for remaining > 0 {
		best := pattern.VarID(-1)
		bestEdges, bestDegree := 0, 0
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			cnt := 0
			for _, e := range m.p.Edges() {
				if (e.U == pattern.VarID(v) && done[e.V]) || (e.V == pattern.VarID(v) && done[e.U]) {
					cnt++
				}
			}
			if cnt > bestEdges || (cnt == bestEdges && cnt > 0 && degree[v] > bestDegree) {
				best, bestEdges, bestDegree = pattern.VarID(v), cnt, degree[v]
			}
		}
		if best < 0 {
			// No unassigned variable touches the assigned set: the
			// pattern has a component disconnected from the start (an
			// isolated end, or NaiveEnum's intermediate shapes). Seed the
			// component with a full-scan binding and resume the greedy
			// anchored order from there.
			for v := 0; v < n; v++ {
				if !done[v] {
					done[v] = true
					remaining--
					m.pushPlan(pattern.VarID(v), anchor{from: -1}, 0)
					break
				}
			}
			continue
		}
		done[best] = true
		remaining--

		// Candidate anchor: the incident edge whose other endpoint is
		// assigned; remaining incident-to-assigned edges become checks.
		var anc anchor
		anc.from = -1
		checkStart := len(m.checks)
		for _, e := range m.p.Edges() {
			var other pattern.VarID
			var outward bool // edge leaves the anchor toward best
			switch {
			case e.U == best && done[e.V] && e.V != best:
				other, outward = e.V, true // directed edge best→other
			case e.V == best && done[e.U] && e.U != best:
				other, outward = e.U, false // directed edge other→best
			default:
				continue
			}
			// Candidates for best are enumerated from the half-edges at
			// the anchor's bound node value(other). For a directed label,
			// the edge best→other appears at other as a half-edge with
			// Dir==In, and other→best as Dir==Out.
			dir := kb.Undirected
			if m.g.LabelDirected(e.Label) {
				if outward {
					dir = kb.In
				} else {
					dir = kb.Out
				}
			}
			if anc.from < 0 {
				anc = anchor{from: other, label: e.Label, wantDir: dir}
			} else {
				m.checks = append(m.checks, e)
			}
		}
		m.pushPlan(best, anc, checkStart)
	}
}

// pushPlan appends one step to the assignment plan; the step's checks are
// m.checks[checkStart:len(m.checks)].
func (m *matcher) pushPlan(v pattern.VarID, anc anchor, checkStart int) {
	d := m.orderLen
	m.order[d] = v
	m.anchorAt[d] = anc
	m.checkSpan[d] = [2]int32{int32(checkStart), int32(len(m.checks))}
	m.orderLen++
}

// run performs the backtracking search, invoking f for each complete
// instance until f returns false.
func (m *matcher) run(f func(pattern.Instance) bool) {
	// Quick reject: when both targets are bound and the pattern has
	// direct start–end edges, verify them once up front.
	for _, e := range m.p.Edges() {
		if m.assigned[e.U] && m.assigned[e.V] {
			if !m.g.HasEdge(m.inst[e.U], m.inst[e.V], e.Label) {
				return
			}
		}
	}
	m.search(0, f)
}

// search assigns m.order[depth] and recurses.
func (m *matcher) search(depth int, f func(pattern.Instance) bool) bool {
	if depth == m.orderLen {
		return f(m.inst)
	}
	v := m.order[depth]
	anc := m.anchorAt[depth]
	try := func(cand kb.NodeID) bool {
		if m.cancelled() {
			return false
		}
		if !m.admissible(v, cand) {
			return true
		}
		m.inst[v] = cand
		m.assigned[v] = true
		ok := true
		if m.checkEdges(depth) {
			ok = m.search(depth+1, f)
		}
		m.assigned[v] = false
		return ok
	}
	if anc.from < 0 {
		// Variable in a component disconnected from anything assigned
		// (e.g. a free, isolated end): bind by full scan.
		for id := kb.NodeID(0); int(id) < m.g.NumNodes(); id++ {
			if !try(id) {
				return false
			}
		}
		return true
	}
	from := m.inst[anc.from]
	// The label index narrows candidates to the anchor's label up front;
	// on a frozen graph the order equals Neighbors filtered to the label,
	// so enumeration stays deterministic.
	for _, he := range m.g.NeighborsLabeled(from, anc.label) {
		if anc.wantDir != kb.Undirected && he.Dir != anc.wantDir {
			continue
		}
		if anc.wantDir == kb.Undirected && he.Dir != kb.Undirected {
			continue
		}
		if !try(he.To) {
			return false
		}
	}
	return true
}

// admissible enforces the instance side conditions for a candidate
// binding of variable v: REX instances are injective (distinct variables
// bind distinct entities), which subsumes Definition 2's requirement that
// non-target variables avoid the target entities.
func (m *matcher) admissible(v pattern.VarID, cand kb.NodeID) bool {
	for u := 0; u < len(m.inst); u++ {
		if pattern.VarID(u) != v && m.assigned[u] && m.inst[u] == cand {
			return false
		}
	}
	return true
}

// checkEdges verifies the non-anchor edges that became fully bound at
// this depth.
func (m *matcher) checkEdges(depth int) bool {
	span := m.checkSpan[depth]
	for _, e := range m.checks[span[0]:span[1]] {
		if !m.g.HasEdge(m.inst[e.U], m.inst[e.V], e.Label) {
			return false
		}
	}
	return true
}
