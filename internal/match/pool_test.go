package match

import (
	"context"
	"testing"

	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/pattern"
)

func poolTestPattern(t *testing.T) (*kb.Graph, *pattern.Pattern, kb.NodeID, kb.NodeID) {
	t.Helper()
	g := kbgen.Sample()
	g.Freeze()
	star := g.LabelByName(kbgen.RelStarring)
	dir := g.LabelByName(kbgen.RelDirectedBy)
	p := pattern.MustNew(g, 4, []pattern.Edge{
		{U: 2, V: pattern.Start, Label: star},
		{U: 2, V: pattern.End, Label: star},
		{U: 2, V: 3, Label: dir},
	})
	return g, p, g.NodeByName("brad_pitt"), g.NodeByName("angelina_jolie")
}

// TestCountSteadyStateAllocFree is the alloc-regression guard for the
// pooled matcher: once the pool is warm, Count must not allocate — the
// matcher, its plan and its counting callback are all reused. The same
// holds for CountByEndInto with a caller-reused table: the per-end
// counting callback and the accumulation map are both recycled.
func TestCountSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop entries; alloc counts are not meaningful")
	}
	g, p, s, e := poolTestPattern(t)
	Count(g, p, s, e) // warm the pool (and the pattern's lazy caches)
	allocs := testing.AllocsPerRun(200, func() {
		Count(g, p, s, e)
	})
	if allocs != 0 {
		t.Errorf("steady-state Count allocates %.1f times per op; want 0", allocs)
	}

	counts := make(map[kb.NodeID]int)
	if err := CountByEndInto(context.Background(), g, p, s, counts); err != nil {
		t.Fatal(err)
	}
	if len(counts) == 0 {
		t.Fatal("CountByEndInto found no ends for the test pattern")
	}
	want := len(counts)
	allocs = testing.AllocsPerRun(200, func() {
		clear(counts)
		if err := CountByEndInto(context.Background(), g, p, s, counts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state CountByEndInto allocates %.1f times per op; want 0", allocs)
	}
	if len(counts) != want {
		t.Errorf("reused-table CountByEndInto found %d ends, want %d", len(counts), want)
	}
}

// TestPoolReuseIsCorrect hammers one pooled matcher sequence across
// different patterns and target bindings, checking that reused state
// never leaks between runs.
func TestPoolReuseIsCorrect(t *testing.T) {
	g, p, s, e := poolTestPattern(t)
	star := g.LabelByName(kbgen.RelStarring)
	direct := pattern.MustNew(g, 2, []pattern.Edge{
		{U: pattern.Start, V: pattern.End, Label: g.LabelByName(kbgen.RelSpouse)},
	})
	path3 := pattern.MustNew(g, 3, []pattern.Edge{
		{U: 2, V: pattern.Start, Label: star},
		{U: 2, V: pattern.End, Label: star},
	})
	want := [3]int{Count(g, p, s, e), Count(g, direct, s, e), Count(g, path3, s, e)}
	for i := 0; i < 50; i++ {
		if got := Count(g, p, s, e); got != want[0] {
			t.Fatalf("iteration %d: Count(p) = %d, want %d", i, got, want[0])
		}
		if got := Count(g, direct, s, e); got != want[1] {
			t.Fatalf("iteration %d: Count(direct) = %d, want %d", i, got, want[1])
		}
		if got := Count(g, path3, s, e); got != want[2] {
			t.Fatalf("iteration %d: Count(path3) = %d, want %d", i, got, want[2])
		}
		// Free-end runs interleave with fixed-end runs so both plan
		// shapes cycle through the same pooled matchers.
		if got, err := CountByEndContext(context.Background(), g, path3, s); err != nil || len(got) == 0 {
			t.Fatalf("iteration %d: CountByEndContext = (%v, %v)", i, got, err)
		}
	}
}

// TestPooledMatcherParallel runs concurrent counts to let the race
// detector prove pooled matchers are never shared between goroutines.
func TestPooledMatcherParallel(t *testing.T) {
	g, p, s, e := poolTestPattern(t)
	want := Count(g, p, s, e)
	done := make(chan bool, 8)
	for w := 0; w < 8; w++ {
		go func() {
			ok := true
			for i := 0; i < 100; i++ {
				if Count(g, p, s, e) != want {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for w := 0; w < 8; w++ {
		if !<-done {
			t.Fatal("concurrent pooled Count returned a wrong result")
		}
	}
}
