package study

import (
	"math"
	"testing"

	"rex/internal/enumerate"
	"rex/internal/kbgen"
	"rex/internal/pattern"
)

func studySetup(t *testing.T) (*Panel, []*pattern.Explanation) {
	t.Helper()
	g := kbgen.Sample()
	s := g.NodeByName("brad_pitt")
	e := g.NodeByName("angelina_jolie")
	es := enumerate.Explanations(g, s, e, enumerate.Config{})
	return NewPanel(g, s, e, es, 10, 99), es
}

func TestPanelDeterministic(t *testing.T) {
	p1, es := studySetup(t)
	p2, _ := studySetup(t)
	for _, ex := range es {
		a := p1.Judge(ex)
		b := p2.Judge(ex)
		if len(a.Labels) != 10 || len(b.Labels) != 10 {
			t.Fatalf("rater counts %d/%d", len(a.Labels), len(b.Labels))
		}
		for i := range a.Labels {
			if a.Labels[i] != b.Labels[i] {
				t.Fatal("panel judgments not deterministic")
			}
		}
	}
}

func TestLabelsInRange(t *testing.T) {
	p, es := studySetup(t)
	for _, ex := range es {
		j := p.Judge(ex)
		for _, l := range j.Labels {
			if l < 0 || l > 2 {
				t.Fatalf("label %d out of range", l)
			}
		}
		avg := j.AvgLabel()
		if avg < 0 || avg > 2 {
			t.Fatalf("average label %v out of range", avg)
		}
	}
}

func TestRatersDisagreeSomewhere(t *testing.T) {
	p, es := studySetup(t)
	disagreements := 0
	for _, ex := range es {
		j := p.Judge(ex)
		for i := 1; i < len(j.Labels); i++ {
			if j.Labels[i] != j.Labels[0] {
				disagreements++
				break
			}
		}
	}
	if disagreements == 0 {
		t.Error("simulated raters never disagree; noise model broken")
	}
}

func TestDCGBounds(t *testing.T) {
	mk := func(labels ...int) []Judged {
		out := make([]Judged, len(labels))
		for i, l := range labels {
			out[i] = Judged{Labels: []int{l}}
		}
		return out
	}
	// All-perfect ranking normalises to exactly 100.
	perfect := DCG(mk(2, 2, 2, 2, 2, 2, 2, 2, 2, 2), 10)
	if math.Abs(perfect-100) > 1e-9 {
		t.Errorf("perfect DCG = %v, want 100", perfect)
	}
	if got := DCG(mk(0, 0, 0), 10); got != 0 {
		t.Errorf("all-zero DCG = %v", got)
	}
	// Order matters: relevant-first beats relevant-last.
	first := DCG(mk(2, 0, 0, 0, 0, 0, 0, 0, 0, 0), 10)
	last := DCG(mk(0, 0, 0, 0, 0, 0, 0, 0, 0, 2), 10)
	if !(first > last && last > 0) {
		t.Errorf("DCG ordering broken: first=%v last=%v", first, last)
	}
	// Shorter lists are fine.
	if got := DCG(mk(2), 10); got <= 0 || got >= 100 {
		t.Errorf("single-item DCG = %v", got)
	}
}

func TestAvgLabelEmpty(t *testing.T) {
	if (Judged{}).AvgLabel() != 0 {
		t.Error("empty judgment average must be 0")
	}
}

func TestPathShare(t *testing.T) {
	p, es := studySetup(t)
	judged := make([]Judged, 0, len(es))
	for _, ex := range es {
		judged = append(judged, p.Judge(ex))
	}
	share5, n5 := PathShare(judged, 5)
	share10, n10 := PathShare(judged, 10)
	if n5 > 5 || n10 > 10 {
		t.Fatalf("considered %d/%d beyond k", n5, n10)
	}
	if share5 < 0 || share5 > 1 || share10 < 0 || share10 > 1 {
		t.Fatalf("shares out of range: %v %v", share5, share10)
	}
	if n10 < n5 {
		t.Fatalf("top-10 considered %d < top-5 %d", n10, n5)
	}
	// Empty input.
	if s, n := PathShare(nil, 5); s != 0 || n != 0 {
		t.Errorf("empty PathShare = %v/%d", s, n)
	}
}

func TestPathShareCountsOnlyQualifying(t *testing.T) {
	// One highly judged path, one unqualifying non-path.
	g := kbgen.Sample()
	s := g.NodeByName("brad_pitt")
	e := g.NodeByName("angelina_jolie")
	es := enumerate.Explanations(g, s, e, enumerate.Config{})
	var path, nonpath *pattern.Explanation
	for _, ex := range es {
		if ex.P.IsPath() && path == nil {
			path = ex
		}
		if !ex.P.IsPath() && nonpath == nil {
			nonpath = ex
		}
	}
	if path == nil || nonpath == nil {
		t.Skip("sample lacks path/non-path mix for this pair")
	}
	judged := []Judged{
		{Ex: path, Labels: []int{2, 2}},
		{Ex: nonpath, Labels: []int{0, 0}}, // below the avg ≥ 1 filter
	}
	share, n := PathShare(judged, 10)
	if n != 1 || share != 1 {
		t.Errorf("share=%v considered=%d, want 1/1", share, n)
	}
}

func TestOracleAgreesWithEnumeration(t *testing.T) {
	g := kbgen.Sample()
	s := g.NodeByName("kate_winslet")
	e := g.NodeByName("leonardo_dicaprio")
	for _, ex := range enumerate.Explanations(g, s, e, enumerate.Config{}) {
		if got := Oracle(g, ex, s, e); got != ex.Count() {
			t.Errorf("oracle %d != enumerated %d for %v", got, ex.Count(), ex.P)
		}
	}
}
