// Package study reproduces the paper's user-study methodology
// (Section 5.4) with simulated raters — the substitution for the 10
// human judges we do not have (see DESIGN.md).
//
// The rater model encodes the paper's central empirical finding as
// ground truth: an explanation's perceived interestingness is driven
// mostly by its rarity (how few competing entity pairs exhibit the same
// pattern at least as strongly), moderated by its structural simplicity,
// plus idiosyncratic per-rater taste. Each simulated rater labels an
// explanation very relevant (2), somewhat relevant (1) or not relevant
// (0), and rankings are compared with the paper's DCG-style score
// normalised to [0, 100].
package study

import (
	"math"

	"rex/internal/kb"
	"rex/internal/match"
	"rex/internal/measure"
	"rex/internal/pattern"
)

// Judged is an explanation with its simulated relevance labels.
type Judged struct {
	Ex     *pattern.Explanation
	Labels []int // one 0/1/2 label per rater
}

// AvgLabel is the mean rater label.
func (j Judged) AvgLabel() float64 {
	if len(j.Labels) == 0 {
		return 0
	}
	sum := 0
	for _, l := range j.Labels {
		sum += l
	}
	return float64(sum) / float64(len(j.Labels))
}

// Panel is a deterministic pool of simulated raters over one entity
// pair's candidate explanations.
type Panel struct {
	NumRaters int
	Seed      int64

	quality map[string]float64 // canonical key → ground-truth quality in [0,1]
}

// Ground-truth component weights. The mix encodes what the paper's user
// study concluded humans respond to: rarity of the pattern (the
// distributional signal) and structural simplicity matter most,
// explanation strength (instance volume) helps, and an idiosyncratic
// taste component stands in for everything no measure captures. No
// single REX measure coincides with the blend, which is what lets
// Table 1 separate them.
const (
	wRarity     = 0.32
	wSimplicity = 0.26
	wStrength   = 0.10
	wFacets     = 0.12
	wTaste      = 0.20
)

// NewPanel builds the ground-truth quality for every candidate
// explanation of a pair:
//
//	quality = wRarity·rarity + wSimplicity·simplicity +
//	          wStrength·strength + wFacets·facets + wTaste·taste
//
// rarity blends the pair-local and (sampled) global positions of the
// explanation, both computed independently with the subgraph matcher;
// simplicity = 1/(size-1); strength saturates with the instance count;
// facets rewards edges beyond a spanning tree (the paper's observed
// preference for non-path explanations); taste is a stable
// pseudo-random per-pattern component. globalStarts may be nil, in
// which case rarity is purely local.
func NewPanel(g *kb.Graph, start, end kb.NodeID, candidates []*pattern.Explanation, numRaters int, seed int64, globalStarts ...kb.NodeID) *Panel {
	if numRaters <= 0 {
		numRaters = 10
	}
	p := &Panel{NumRaters: numRaters, Seed: seed, quality: make(map[string]float64, len(candidates))}
	localCtx := &measure.Context{G: g, Start: start, End: end}
	globalCtx := &measure.Context{G: g, Start: start, End: end, SampleStarts: globalStarts}
	var local measure.LocalPosition
	var global measure.GlobalPosition
	for _, ex := range candidates {
		key := ex.P.CanonicalKey()
		rarity := 1.0 / (1.0 - local.Score(localCtx, ex)[0])
		if len(globalStarts) > 0 {
			gpos := -global.Score(globalCtx, ex)[0] / float64(len(globalStarts))
			rarity = 0.5*rarity + 0.5/(1.0+gpos)
		}
		simplicity := 1.0 / float64(ex.P.NumVars()-1)
		// Raters discount the rarity of convoluted patterns: a rare but
		// complicated explanation reads as puzzling rather than
		// interesting, so the rarity payoff shrinks with pattern size.
		// This interaction is the behavioural reason the paper's
		// size-primary combination measures beat pure rarity ranking.
		rarity *= math.Pow(simplicity, 0.7)
		count := float64(ex.Count())
		strength := count / (count + 2)
		// Facets: edges beyond a spanning tree of the pattern. The
		// paper's Section 5.4.2 finding is that raters prefer
		// explanations whose connection is confirmed along several
		// interlocking relationships (non-paths) over bare chains; this
		// component encodes that documented behaviour.
		extra := float64(ex.P.NumEdges() - (ex.P.NumVars() - 1))
		if extra > 2 {
			extra = 2
		}
		if extra < 0 {
			extra = 0
		}
		facets := extra / 2
		taste := hash01(key, seed)
		p.quality[key] = wRarity*rarity + wSimplicity*simplicity +
			wStrength*strength + wFacets*facets + wTaste*taste
	}
	return p
}

// Judge labels an explanation by every rater: the rater perturbs the
// ground-truth quality with personal noise and quantises to {0,1,2}.
func (p *Panel) Judge(ex *pattern.Explanation) Judged {
	key := ex.P.CanonicalKey()
	q := p.quality[key]
	labels := make([]int, p.NumRaters)
	for r := range labels {
		noise := (hash01(key, p.Seed^(int64(r+1)*0x9e3779b9)) - 0.5) * 0.30
		v := q + noise
		switch {
		case v >= 0.50:
			labels[r] = 2
		case v >= 0.30:
			labels[r] = 1
		default:
			labels[r] = 0
		}
	}
	return Judged{Ex: ex, Labels: labels}
}

// DCG computes the paper's ranking score (Section 5.4.1):
//
//	score(M) = m · Σ_i w_i · s_i,  w_i = 1/log2(i+1),  i ∈ [1, k]
//
// where s_i is the mean rater label of the explanation at rank i and m
// normalises a perfect ranking (all labels 2) to 100.
func DCG(ranked []Judged, k int) float64 {
	if k <= 0 {
		k = 10
	}
	wsum := 0.0
	for i := 1; i <= k; i++ {
		wsum += 1 / math.Log2(float64(i)+1)
	}
	m := 100.0 / (2.0 * wsum)
	total := 0.0
	for i := 0; i < k && i < len(ranked); i++ {
		w := 1 / math.Log2(float64(i)+2)
		total += w * ranked[i].AvgLabel()
	}
	return m * total
}

// hash01 maps a string and seed to a deterministic float in [0, 1).
func hash01(s string, seed int64) float64 {
	h := uint64(seed) ^ 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}

// PathShare reports the fraction of path-shaped explanations among the
// top-k explanations by rater judgment, counting only explanations whose
// average label is at least 1 (the paper's Section 5.4.2 filter). The
// second return is the number of explanations that qualified.
func PathShare(judged []Judged, k int) (share float64, considered int) {
	// Sort by average label descending, canonical key as tie-break.
	ordered := append([]Judged{}, judged...)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0; j-- {
			a, b := ordered[j-1], ordered[j]
			if a.AvgLabel() > b.AvgLabel() {
				break
			}
			if a.AvgLabel() == b.AvgLabel() &&
				a.Ex.P.CanonicalKey() <= b.Ex.P.CanonicalKey() {
				break
			}
			ordered[j-1], ordered[j] = b, a
		}
	}
	paths := 0
	for _, j := range ordered {
		if considered >= k || j.AvgLabel() < 1 {
			break
		}
		considered++
		if j.Ex.P.IsPath() {
			paths++
		}
	}
	if considered == 0 {
		return 0, 0
	}
	return float64(paths) / float64(considered), considered
}

// Oracle re-exports the matcher count so experiment code can sanity-check
// enumerated counts without importing match directly.
func Oracle(g *kb.Graph, ex *pattern.Explanation, start, end kb.NodeID) int {
	return match.Count(g, ex.P, start, end)
}
