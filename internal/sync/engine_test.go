package sync_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rex"
	"rex/internal/fail"
	"rex/internal/serve"
	rexsync "rex/internal/sync"
)

// seedTSV is a tiny KB every test store starts from; both sides of a
// sync seeded from it share generation 1 and its fingerprint, so the
// only divergence in a test is the divergence the test creates.
const seedTSV = `node	a	person
node	b	person
node	c	person
label	knows	U
edge	a	b	knows
edge	a	c	knows
`

// newStore boots one store; ckptEvery > 0 makes it durable in a temp
// dir with that checkpoint cadence (1 = every delta truncates the WAL,
// forcing full-snapshot catch-up; large = the whole history stays in
// the WAL tail).
func newStore(t *testing.T, ckptEvery int) *rex.Store {
	t.Helper()
	k, err := rex.ReadKB(strings.NewReader(seedTSV))
	if err != nil {
		t.Fatal(err)
	}
	opt := rex.Options{Measure: "size", TopK: 4, MaxPatternSize: 3, CacheSize: 16}
	if ckptEvery > 0 {
		opt.Durability = rex.DurabilityOptions{Dir: t.TempDir(), Fsync: "off", CheckpointEvery: ckptEvery}
	}
	store, err := rex.NewStore(k, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

// bootPeer serves one store over a real listener so the engine's HTTP
// paths (conditional requests, ranges, aborts) are exercised for real.
func bootPeer(t *testing.T, store *rex.Store, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	srv := serve.New(store, cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

// advance applies n unique deltas, one generation each.
func advance(t *testing.T, store *rex.Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		delta := fmt.Sprintf("label\tk%d\tU\nnode\tm%d\tperson\nedge\ta\tm%d\tk%d\n", i, i, i, i)
		if _, err := store.Apply(strings.NewReader(delta)); err != nil {
			t.Fatal(err)
		}
	}
}

func newEngine(t *testing.T, store *rex.Store, peers ...string) *rexsync.Engine {
	t.Helper()
	e, err := rexsync.New(store, rexsync.Config{
		Peers:          peers,
		Attempts:       5,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       25 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
		Interval:       20 * time.Millisecond,
		SpoolDir:       t.TempDir(),
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// assertConverged requires both stores to hold the same generation and
// fingerprint — the convergence invariant every sync must establish.
func assertConverged(t *testing.T, local, peer *rex.Store) {
	t.Helper()
	ls, ps := local.Current(), peer.Current()
	if ls.Generation != ps.Generation || ls.Fingerprint != ps.Fingerprint {
		t.Fatalf("not converged: local gen %d (%s), peer gen %d (%s)",
			ls.Generation, ls.Fingerprint, ps.Generation, ps.Fingerprint)
	}
}

func TestSyncCatchesUpViaWALTail(t *testing.T) {
	peerStore := newStore(t, 1000) // checkpoint horizon stays at the seed
	advance(t, peerStore, 5)
	_, hs := bootPeer(t, peerStore, serve.Config{})
	local := newStore(t, 1000)

	e := newEngine(t, local, hs.URL)
	rep, err := e.Sync(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullSnapshot {
		t.Fatal("used a full snapshot where the WAL tail sufficed")
	}
	if rep.WALRecords != 5 {
		t.Fatalf("applied %d wal records, want 5", rep.WALRecords)
	}
	if rep.Before != 1 || rep.After != 6 {
		t.Fatalf("report generations %d -> %d, want 1 -> 6", rep.Before, rep.After)
	}
	assertConverged(t, local, peerStore)
}

// Satellite edge case: a replica below the peer's checkpoint horizon
// cannot replay the WAL (410 Gone) and must transfer the full snapshot.
func TestSyncBelowHorizonForcesFullSnapshot(t *testing.T) {
	peerStore := newStore(t, 1) // every delta checkpoints; the WAL is always empty
	advance(t, peerStore, 3)
	_, hs := bootPeer(t, peerStore, serve.Config{})
	local := newStore(t, 64)

	e := newEngine(t, local, hs.URL)
	rep, err := e.Sync(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullSnapshot {
		t.Fatal("expected a full snapshot transfer below the WAL horizon")
	}
	if st := e.Stats(); st.Snapshots != 1 {
		t.Fatalf("snapshots installed = %d, want 1", st.Snapshots)
	}
	assertConverged(t, local, peerStore)

	// The installed snapshot must be durable locally: reopen the journal
	// by asking the store, not the peer.
	if got := local.Generation(); got != peerStore.Generation() {
		t.Fatalf("local generation %d after install, want %d", got, peerStore.Generation())
	}
}

// Satellite edge case: the WAL stream tears inside its final record.
// The engine keeps every whole record and re-requests from the new
// position; convergence still happens in one Sync call.
func TestSyncTornWALStreamKeepsWholeRecords(t *testing.T) {
	t.Cleanup(fail.Reset)
	peerStore := newStore(t, 1000)
	advance(t, peerStore, 4)
	_, hs := bootPeer(t, peerStore, serve.Config{})
	local := newStore(t, 1000)

	fail.EnableTimes("serve.wal.cut", 1)
	e := newEngine(t, local, hs.URL)
	rep, err := e.Sync(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullSnapshot {
		t.Fatal("a torn tail must not force a snapshot; whole records were applied")
	}
	if rep.WALRecords != 4 {
		t.Fatalf("applied %d wal records across the tear, want 4", rep.WALRecords)
	}
	assertConverged(t, local, peerStore)
}

// Satellite edge case: the snapshot transfer is cut mid-body. The spool
// file keeps the delivered half and the retry resumes with a range
// request instead of restarting from byte zero.
func TestSyncSnapshotCutThenRangeResume(t *testing.T) {
	t.Cleanup(fail.Reset)
	peerStore := newStore(t, 1)
	advance(t, peerStore, 3)
	_, hs := bootPeer(t, peerStore, serve.Config{})
	local := newStore(t, 64)

	fail.EnableTimes("serve.snapshot.cut", 1)
	e := newEngine(t, local, hs.URL)
	rep, err := e.Sync(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullSnapshot || !rep.Resumed {
		t.Fatalf("full_snapshot=%v resumed=%v, want both true", rep.FullSnapshot, rep.Resumed)
	}
	if st := e.Stats(); st.Resumes != 1 {
		t.Fatalf("resumes = %d, want 1", st.Resumes)
	}
	assertConverged(t, local, peerStore)
}

// Satellite edge case: the peer starts draining mid-catch-up. Its
// snapshot and WAL endpoints stay available through the drain, so the
// in-flight sync completes instead of restarting elsewhere.
func TestSyncCompletesAgainstDrainingPeer(t *testing.T) {
	peerStore := newStore(t, 1000)
	advance(t, peerStore, 3)
	srv, hs := bootPeer(t, peerStore, serve.Config{})
	srv.StartDraining()
	local := newStore(t, 1000)

	e := newEngine(t, local, hs.URL)
	if _, err := e.Sync(context.Background(), hs.URL); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, local, peerStore)
}

func TestSyncPicksFreshestPeer(t *testing.T) {
	behindStore := newStore(t, 1000)
	advance(t, behindStore, 1)
	_, behindHS := bootPeer(t, behindStore, serve.Config{})
	aheadStore := newStore(t, 1000)
	advance(t, aheadStore, 4)
	_, aheadHS := bootPeer(t, aheadStore, serve.Config{})
	local := newStore(t, 1000)

	e := newEngine(t, local, behindHS.URL, aheadHS.URL)
	rep, err := e.Sync(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Peer != aheadHS.URL {
		t.Fatalf("synced from %s, want the fresher %s", rep.Peer, aheadHS.URL)
	}
	assertConverged(t, local, aheadStore)
}

func TestSyncHonorsAdminToken(t *testing.T) {
	peerStore := newStore(t, 1000)
	advance(t, peerStore, 2)
	_, hs := bootPeer(t, peerStore, serve.Config{AdminToken: "s3cret"})
	local := newStore(t, 1000)

	e, err := rexsync.New(local, rexsync.Config{
		Peers: []string{hs.URL}, AdminToken: "s3cret",
		Attempts: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		SpoolDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sync(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, local, peerStore)

	// The wrong token must fail, not silently skip.
	bad, err := rexsync.New(newStore(t, 1000), rexsync.Config{
		Peers: []string{hs.URL}, AdminToken: "wrong",
		Attempts: 1, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		SpoolDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	advance(t, peerStore, 1)
	if _, err := bad.Sync(context.Background(), ""); err == nil {
		t.Fatal("sync with a wrong admin token unexpectedly succeeded")
	}
}

// Forked histories at the same generation cannot be reconciled by any
// WAL replay; the engine must detect the fingerprint mismatch and
// repair by adopting the peer's snapshot wholesale — even though its
// generation is not above the local one — instead of leaving the fork
// in place to be served forever.
func TestSyncRepairsSameGenerationFork(t *testing.T) {
	for _, durable := range []bool{false, true} {
		t.Run(fmt.Sprintf("durable=%v", durable), func(t *testing.T) {
			ckptEvery := 0
			if durable {
				ckptEvery = 1000
			}
			peerStore := newStore(t, ckptEvery)
			if _, err := peerStore.Apply(strings.NewReader("node\tx\tperson\nedge\ta\tx\tknows\n")); err != nil {
				t.Fatal(err)
			}
			_, hs := bootPeer(t, peerStore, serve.Config{})
			local := newStore(t, ckptEvery)
			if _, err := local.Apply(strings.NewReader("node\ty\tperson\nedge\ta\ty\tknows\n")); err != nil {
				t.Fatal(err)
			}

			e := newEngine(t, local, hs.URL)
			rep, err := e.Sync(context.Background(), "")
			if err != nil {
				t.Fatalf("repair sync failed: %v", err)
			}
			if !rep.FullSnapshot {
				t.Fatal("a same-generation fork must be repaired by a full snapshot")
			}
			if st := e.Stats(); st.Mismatches == 0 {
				t.Fatal("mismatch not counted")
			}
			assertConverged(t, local, peerStore)
		})
	}
}

// The nastier fork shape from a cold restart: the forked replica's
// generation lines up with the peer's WAL numbering, so the tail
// replays "cleanly" onto the fork and only the final fingerprint check
// can expose it. The repair then rebases onto the peer's checkpoint —
// below the forked local generation — and replays the true history
// forward.
func TestSyncRepairsForkedWALHistory(t *testing.T) {
	peerStore := newStore(t, 1000) // whole history stays in the WAL
	if _, err := peerStore.Apply(strings.NewReader("node\tx\tperson\nedge\ta\tx\tknows\n")); err != nil {
		t.Fatal(err)
	}
	advance(t, peerStore, 3) // peer at generation 5
	_, hs := bootPeer(t, peerStore, serve.Config{})
	local := newStore(t, 1000)
	if _, err := local.Apply(strings.NewReader("node\ty\tperson\nedge\ta\ty\tknows\n")); err != nil {
		t.Fatal(err) // forked at generation 2
	}

	e := newEngine(t, local, hs.URL)
	rep, err := e.Sync(context.Background(), "")
	if err != nil {
		t.Fatalf("repair sync failed: %v", err)
	}
	if !rep.FullSnapshot {
		t.Fatal("a forked WAL history must end in a snapshot repair")
	}
	if st := e.Stats(); st.Mismatches == 0 {
		t.Fatal("mismatch not counted")
	}
	assertConverged(t, local, peerStore)
	if got, want := local.Generation(), peerStore.Generation(); got != want {
		t.Fatalf("local generation %d after repair, want %d", got, want)
	}
}

// Stop is documented safe to call more than once — including
// concurrently (two shutdown paths racing must not double-close the
// stop channel and panic).
func TestEngineStopConcurrent(t *testing.T) {
	peerStore := newStore(t, 1000)
	_, hs := bootPeer(t, peerStore, serve.Config{})
	e := newEngine(t, newStore(t, 1000), hs.URL)
	e.Start()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			e.Stop()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	e.Stop() // and once more after it is fully stopped
}

// The background loop is the zero-operator-action path: Start, fall
// behind, converge, no explicit Sync call.
func TestBackgroundLoopCatchesUp(t *testing.T) {
	peerStore := newStore(t, 1000)
	_, hs := bootPeer(t, peerStore, serve.Config{})
	local := newStore(t, 1000)

	e := newEngine(t, local, hs.URL)
	e.Start()
	defer e.Stop()

	advance(t, peerStore, 3)
	deadline := time.Now().Add(5 * time.Second)
	for local.Generation() != peerStore.Generation() {
		if time.Now().After(deadline) {
			t.Fatalf("background loop never converged: local %d, peer %d",
				local.Generation(), peerStore.Generation())
		}
		time.Sleep(10 * time.Millisecond)
	}
	assertConverged(t, local, peerStore)
}

func TestValidatePeers(t *testing.T) {
	got, err := rexsync.ValidatePeers("http://a:1, r2=http://b:2 ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("parsed %v", got)
	}
	for _, bad := range []string{"", "a:1", "r2=", "http://"} {
		if _, err := rexsync.ValidatePeers(bad); err == nil {
			t.Fatalf("ValidatePeers(%q) unexpectedly succeeded", bad)
		}
	}
}
