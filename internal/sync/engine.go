// Package sync implements the client side of replica anti-entropy: a
// lagging store catches up to the fleet by streaming a peer's WAL tail
// — or, when it is behind the peer's checkpoint GC horizon, the full
// binary checkpoint — and converges to the fleet's generation and
// fingerprint with zero operator action.
//
// The engine applies WAL records through the store's normal Apply path,
// so the local journal stays durable and crash-safe mid-sync: a crash
// between records recovers to the last applied generation and the next
// sync resumes from there. Snapshot transfers spool to a local file and
// resume with HTTP range requests after an interrupted transfer. While
// a sync runs, the store keeps serving its stale-but-honest snapshot;
// the serving layer can instead refuse queries with 503 if configured.
package sync

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rex"
	"rex/internal/fail"
	"rex/internal/live"
)

// Config configures a sync engine. Peers and the store are required;
// everything else has serviceable defaults.
type Config struct {
	// Peers are the base URLs of the other replicas (e.g.
	// "http://127.0.0.1:8081"). The engine probes all of them and syncs
	// from the freshest healthy one.
	Peers []string
	// Client is the HTTP client used for probes and transfers; nil uses
	// a dedicated client (per-attempt timeouts come from AttemptTimeout,
	// not the client).
	Client *http.Client
	// AdminToken, when set, is sent as a bearer token on sync requests
	// (the peer's /admin/* endpoints are token-gated the same way).
	AdminToken string
	// Interval is the anti-entropy probe period of the background loop
	// (default 2s).
	Interval time.Duration
	// Attempts bounds the retry loop of one Sync call (default 5).
	Attempts int
	// RetryBase and RetryMax bound the jittered exponential backoff
	// between attempts (defaults 100ms and 5s).
	RetryBase, RetryMax time.Duration
	// AttemptTimeout bounds each HTTP request (probe or transfer)
	// within an attempt (default 30s).
	AttemptTimeout time.Duration
	// SpoolDir is where snapshot downloads are spooled so an
	// interrupted transfer resumes (default os.TempDir()).
	SpoolDir string
	// Logf, when set, receives one line per sync outcome and per
	// recovered error (e.g. log.Printf).
	Logf func(format string, args ...any)
}

func (c Config) normalized() Config {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Attempts <= 0 {
		c.Attempts = 5
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 30 * time.Second
	}
	if c.SpoolDir == "" {
		c.SpoolDir = os.TempDir()
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// ErrSyncInProgress reports that another Sync call is already running;
// one catch-up at a time is enough (and concurrent installs would
// race).
var ErrSyncInProgress = errors.New("sync: a sync is already in progress")

// errTorn marks a transfer cut mid-stream: progress up to the tear is
// kept and the attempt is retried.
var errTorn = errors.New("sync: transfer cut mid-stream")

// Stats snapshots the engine's cumulative counters.
type Stats struct {
	// Syncing reports a sync running right now.
	Syncing bool `json:"syncing"`
	// Attempts counts Sync calls started; Successes and Failures their
	// outcomes.
	Attempts  uint64 `json:"attempts"`
	Successes uint64 `json:"successes"`
	Failures  uint64 `json:"failures"`
	// WALRecords and WALBytes count tail records applied and their
	// payload bytes transferred.
	WALRecords uint64 `json:"wal_records"`
	WALBytes   uint64 `json:"wal_bytes"`
	// Snapshots counts full checkpoint transfers installed,
	// SnapshotBytes the bytes downloaded for them (resumed portions
	// only count once), Resumes the transfers continued from a partial
	// spool file.
	Snapshots     uint64 `json:"snapshots"`
	SnapshotBytes uint64 `json:"snapshot_bytes"`
	Resumes       uint64 `json:"resumes"`
	// Mismatches counts fingerprint verification failures: a transferred
	// snapshot that hashed wrong, a WAL record that did not reproduce
	// the peer's generation step, or a same-generation fork against the
	// peer — the last two each trigger a snapshot (re)install that
	// discards the divergent local history.
	Mismatches uint64 `json:"fingerprint_mismatches"`
}

// Report describes one completed Sync call.
type Report struct {
	Peer          string        `json:"peer"`
	Before        uint64        `json:"generation_before"`
	After         uint64        `json:"generation_after"`
	Fingerprint   string        `json:"fingerprint"`
	WALRecords    int           `json:"wal_records"`
	WALBytes      int64         `json:"wal_bytes"`
	FullSnapshot  bool          `json:"full_snapshot"`
	SnapshotBytes int64         `json:"snapshot_bytes,omitempty"`
	Resumed       bool          `json:"resumed"`
	Attempts      int           `json:"attempts"`
	Elapsed       time.Duration `json:"-"`
	ElapsedMS     float64       `json:"elapsed_ms"`
}

// Engine drives one store's catch-up. All methods are safe for
// concurrent use; at most one Sync runs at a time.
type Engine struct {
	store *rex.Store
	cfg   Config

	syncing atomic.Bool
	stopC   chan struct{}
	doneC   chan struct{}
	started atomic.Bool
	stopped atomic.Bool // CAS gate so concurrent Stops close stopC once

	attempts   atomic.Uint64
	successes  atomic.Uint64
	failures   atomic.Uint64
	walRecords atomic.Uint64
	walBytes   atomic.Uint64
	snapshots  atomic.Uint64
	snapBytes  atomic.Uint64
	resumes    atomic.Uint64
	mismatches atomic.Uint64

	// spoolETag remembers the fingerprint of the partially spooled
	// snapshot so a resumed range request can prove it continues the
	// same content (If-Range).
	spoolETag atomic.Pointer[string]
}

// New builds an engine catching up store from cfg.Peers.
func New(store *rex.Store, cfg Config) (*Engine, error) {
	if store == nil {
		return nil, fmt.Errorf("sync: nil store")
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("sync: no peers configured")
	}
	return &Engine{
		store: store,
		cfg:   cfg.normalized(),
		stopC: make(chan struct{}),
		doneC: make(chan struct{}),
	}, nil
}

// Syncing reports whether a sync is running right now.
func (e *Engine) Syncing() bool { return e.syncing.Load() }

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Syncing:       e.syncing.Load(),
		Attempts:      e.attempts.Load(),
		Successes:     e.successes.Load(),
		Failures:      e.failures.Load(),
		WALRecords:    e.walRecords.Load(),
		WALBytes:      e.walBytes.Load(),
		Snapshots:     e.snapshots.Load(),
		SnapshotBytes: e.snapBytes.Load(),
		Resumes:       e.resumes.Load(),
		Mismatches:    e.mismatches.Load(),
	}
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// peerState is what a probe learns about one peer.
type peerState struct {
	url         string
	generation  uint64
	fingerprint string
	draining    bool
}

// probe asks one peer's /healthz for its generation and fingerprint. A
// draining peer answers 503 with the same body and is still a valid
// sync source (its store keeps serving reads until exit).
func (e *Engine) probe(ctx context.Context, peer string) (peerState, error) {
	if err := fail.Hit("sync.probe"); err != nil {
		return peerState{}, err
	}
	ctx, cancel := context.WithTimeout(ctx, e.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		return peerState{}, err
	}
	resp, err := e.cfg.Client.Do(req)
	if err != nil {
		return peerState{}, err
	}
	defer resp.Body.Close() //nolint:errcheck // read-only body
	var body struct {
		Status      string `json:"status"`
		Draining    bool   `json:"draining"`
		Generation  uint64 `json:"generation"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		return peerState{}, fmt.Errorf("sync: probe %s: %w", peer, err)
	}
	if body.Generation == 0 {
		return peerState{}, fmt.Errorf("sync: probe %s: no generation in health response", peer)
	}
	return peerState{
		url:         peer,
		generation:  body.Generation,
		fingerprint: body.Fingerprint,
		draining:    body.Draining,
	}, nil
}

// pickPeer probes every configured peer and returns the freshest
// reachable one; among equals a non-draining peer wins (a draining one
// may exit mid-transfer).
func (e *Engine) pickPeer(ctx context.Context) (peerState, error) {
	var best peerState
	var firstErr error
	for _, p := range e.cfg.Peers {
		st, err := e.probe(ctx, p)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		better := best.url == "" || st.generation > best.generation ||
			(st.generation == best.generation && best.draining && !st.draining)
		if better {
			best = st
		}
	}
	if best.url == "" {
		if firstErr == nil {
			firstErr = fmt.Errorf("no peers configured")
		}
		return peerState{}, fmt.Errorf("sync: no reachable peer: %w", firstErr)
	}
	return best, nil
}

// Behind probes the peers and reports whether any reachable peer is
// ahead of the local store (the background loop's trigger).
func (e *Engine) Behind(ctx context.Context) bool {
	st, err := e.pickPeer(ctx)
	return err == nil && st.generation > e.store.Generation()
}

// Sync catches the local store up to the fleet. With peerURL empty the
// freshest healthy peer is chosen; otherwise that peer is used (the
// router passes its own freshest view). Progress is kept across
// retries and across calls: applied WAL records are durable in the
// local journal, and an interrupted snapshot download resumes from its
// spool file. Only one Sync runs at a time; concurrent calls return
// ErrSyncInProgress.
func (e *Engine) Sync(ctx context.Context, peerURL string) (*Report, error) {
	if !e.syncing.CompareAndSwap(false, true) {
		return nil, ErrSyncInProgress
	}
	defer e.syncing.Store(false)
	e.attempts.Add(1)
	t0 := time.Now()
	rep := &Report{Before: e.store.Generation()}
	var lastErr error
	for attempt := 1; attempt <= e.cfg.Attempts; attempt++ {
		rep.Attempts = attempt
		if attempt > 1 {
			if err := sleepCtx(ctx, e.backoff(attempt-1)); err != nil {
				break
			}
		}
		err := e.syncOnce(ctx, peerURL, rep)
		if err == nil {
			rep.After = e.store.Generation()
			rep.Elapsed = time.Since(t0)
			rep.ElapsedMS = float64(rep.Elapsed) / float64(time.Millisecond)
			rep.Fingerprint = e.store.Current().Fingerprint
			e.successes.Add(1)
			e.logf("sync: caught up from %s: generation %d -> %d (%d wal records, snapshot=%v resumed=%v) in %s",
				rep.Peer, rep.Before, rep.After, rep.WALRecords, rep.FullSnapshot, rep.Resumed, rep.Elapsed.Round(time.Millisecond))
			return rep, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
		e.logf("sync: attempt %d/%d from %q failed: %v", attempt, e.cfg.Attempts, peerURL, err)
	}
	e.failures.Add(1)
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	return rep, fmt.Errorf("sync: gave up after %d attempts: %w", rep.Attempts, lastErr)
}

// backoff returns the jittered exponential delay before retry n (1+).
func (e *Engine) backoff(n int) time.Duration {
	d := e.cfg.RetryBase << (n - 1)
	if d > e.cfg.RetryMax || d <= 0 {
		d = e.cfg.RetryMax
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)/2+1)) //nolint:gosec // jitter, not crypto
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// syncOnce runs one catch-up round: probe, then stream WAL tail (or
// full snapshot when below the peer's horizon) until the local store
// reaches the peer's generation, then verify fingerprints.
func (e *Engine) syncOnce(ctx context.Context, peerURL string, rep *Report) error {
	var peer peerState
	var err error
	if peerURL != "" {
		peer, err = e.probe(ctx, peerURL)
	} else {
		peer, err = e.pickPeer(ctx)
	}
	if err != nil {
		return err
	}
	rep.Peer = peer.url
	forceSnapshot := false
	// repair marks a proven fork (same generation, different content):
	// the snapshot fetch then installs the peer's checkpoint even at or
	// below the local generation, discarding the divergent history.
	repair := false
	// Bounded rounds: a fast writer can keep advancing the target, but
	// each round makes generation progress, so a small bound only cuts
	// off a peer that outruns us indefinitely (the next Sync continues).
	for round := 0; round < 64; round++ {
		local := e.store.Generation()
		if local > peer.generation {
			return nil // ahead of the chosen peer; nothing to pull
		}
		if local == peer.generation && !repair {
			if fp := e.store.Current().Fingerprint; fp != peer.fingerprint {
				// Same generation, different content: the histories forked.
				// No WAL replay can reconcile that — the only way back is
				// to discard the divergent local history and adopt the
				// peer's checkpoint wholesale, even though its generation
				// is at or below ours. The routing tier's floor keeps this
				// replica out of rotation until it re-converges.
				e.mismatches.Add(1)
				e.logf("sync: fingerprint mismatch with %s at generation %d (local %s, peer %s); repairing from snapshot",
					peer.url, local, fp, peer.fingerprint)
				repair = true
			} else {
				return nil
			}
		}
		if repair || forceSnapshot {
			if err := e.fetchSnapshot(ctx, peer, rep, repair); err != nil {
				return err
			}
			repair = false
			forceSnapshot = false
		} else {
			err := e.applyTail(ctx, peer, local, rep)
			switch {
			case errors.Is(err, rex.ErrBelowWALHorizon):
				forceSnapshot = true
			case errors.Is(err, errDiverged):
				// Applying the peer's record did not reproduce the peer's
				// generation step: local content drifted. Start over from
				// the peer's checkpoint.
				e.mismatches.Add(1)
				forceSnapshot = true
			case err != nil:
				return err
			}
		}
		// Refresh the target: the peer may have advanced while we
		// caught up, and the final same-generation fingerprint check
		// needs its current answer.
		if peer, err = e.probe(ctx, peer.url); err != nil {
			return err
		}
	}
	return fmt.Errorf("sync: peer %s kept advancing; no convergence after 64 rounds", peer.url)
}

// errDiverged reports that a WAL record applied locally did not advance
// the store to the record's generation — local history drifted from the
// peer's and a full snapshot is needed.
var errDiverged = errors.New("sync: local state diverged from peer history")

func (e *Engine) authorize(req *http.Request) {
	if e.cfg.AdminToken != "" {
		req.Header.Set("Authorization", "Bearer "+e.cfg.AdminToken)
	}
}

// applyTail streams the peer's WAL records above from and applies each
// through the store's normal Apply path (durable locally before
// acknowledged). A stream cut mid-record keeps all fully applied
// records — the caller retries from the new local generation.
func (e *Engine) applyTail(ctx context.Context, peer peerState, from uint64, rep *Report) error {
	if err := fail.Hit("sync.tail.request"); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, e.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		peer.url+"/admin/wal?from="+strconv.FormatUint(from, 10), nil)
	if err != nil {
		return err
	}
	e.authorize(req)
	resp, err := e.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck // read-only body
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck // drain for reuse
		return rex.ErrBelowWALHorizon
	default:
		return fmt.Errorf("sync: %s/admin/wal: status %d", peer.url, resp.StatusCode)
	}
	sc := live.NewFrameScanner(resp.Body)
	applied := 0
	for {
		gen, payload, err := sc.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// Torn mid-stream (peer died, connection cut): keep the
			// records already applied; only report failure if no progress
			// was possible at all, otherwise let the caller re-request
			// from the new position.
			if applied > 0 {
				return nil
			}
			return errTorn
		}
		local := e.store.Generation()
		if gen <= local {
			continue // already have it (e.g. a broadcast landed mid-sync)
		}
		if gen != local+1 {
			return fmt.Errorf("sync: wal tail gap: have generation %d, next record is %d", local, gen)
		}
		if err := fail.Hit("sync.tail.apply"); err != nil {
			return err
		}
		// ApplyAt makes the apply conditional on the expected generation
		// inside the store's writer lock: if a delta broadcast commits
		// between the check above and the apply, the store refuses
		// without mutating instead of double-applying the record.
		info, err := e.store.ApplyAt(bytes.NewReader(payload), gen)
		if errors.Is(err, rex.ErrGenerationConflict) {
			if gen <= e.store.Generation() {
				continue // the concurrent writer WAS this record's broadcast
			}
			return fmt.Errorf("sync: wal tail gap after concurrent apply: next record is %d, store is at %d",
				gen, e.store.Generation())
		}
		if err != nil {
			return fmt.Errorf("sync: applying wal record %d: %w", gen, err)
		}
		if info.Generation != gen {
			return fmt.Errorf("%w: record %d applied as generation %d", errDiverged, gen, info.Generation)
		}
		applied++
		rep.WALRecords++
		rep.WALBytes += int64(len(payload))
		e.walRecords.Add(1)
		e.walBytes.Add(uint64(len(payload)))
	}
}

// spoolPath is where a snapshot download accumulates; derived from the
// peer so two sources never interleave into one file.
func (e *Engine) spoolPath(peer string) string {
	sum := uint64(1469598103934665603)
	for i := 0; i < len(peer); i++ {
		sum = (sum ^ uint64(peer[i])) * 1099511628211
	}
	return filepath.Join(e.cfg.SpoolDir, fmt.Sprintf("rex-sync-%016x.partial", sum))
}

// fetchSnapshot downloads the peer's newest checkpoint — resuming a
// partial spool file by byte range when the peer still serves the same
// fingerprint — verifies it, and installs it at the peer's checkpoint
// generation. With repair set the install goes through the store's
// divergence-repair path: the checkpoint is adopted even at or below
// the local generation, discarding forked local history.
func (e *Engine) fetchSnapshot(ctx context.Context, peer peerState, rep *Report, repair bool) error {
	if err := fail.Hit("sync.snapshot.request"); err != nil {
		return err
	}
	spool := e.spoolPath(peer.url)
	f, err := os.OpenFile(spool, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("sync: spool: %w", err)
	}
	defer f.Close() //nolint:errcheck // closed explicitly on success
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("sync: spool: %w", err)
	}
	have := st.Size()
	rctx, cancel := context.WithTimeout(ctx, e.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, peer.url+"/admin/snapshot", nil)
	if err != nil {
		return err
	}
	e.authorize(req)
	etag := e.spoolETag.Load()
	if have > 0 && etag != nil {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", have))
		req.Header.Set("If-Range", *etag)
	}
	resp, err := e.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck // read-only body
	switch resp.StatusCode {
	case http.StatusOK:
		// Full body: anything spooled is stale (no range sent, the
		// fingerprint changed, or the peer ignored the range).
		if err := f.Truncate(0); err != nil {
			return fmt.Errorf("sync: spool truncate: %w", err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("sync: spool seek: %w", err)
		}
		have = 0
	case http.StatusPartialContent:
		if _, err := f.Seek(have, io.SeekStart); err != nil {
			return fmt.Errorf("sync: spool seek: %w", err)
		}
		rep.Resumed = true
		e.resumes.Add(1)
	default:
		return fmt.Errorf("sync: %s/admin/snapshot: status %d", peer.url, resp.StatusCode)
	}
	gen, err := strconv.ParseUint(resp.Header.Get("X-Rex-Generation"), 10, 64)
	if err != nil || gen == 0 {
		return fmt.Errorf("sync: %s/admin/snapshot: missing generation header", peer.url)
	}
	fp := strings.Trim(resp.Header.Get("ETag"), `"`)
	if respETag := resp.Header.Get("ETag"); respETag != "" {
		e.spoolETag.Store(&respETag)
	}
	n, err := io.Copy(f, resp.Body)
	e.snapBytes.Add(uint64(n))
	rep.FullSnapshot = true
	if err != nil {
		// Cut mid-transfer: the spool keeps what arrived; the retry
		// resumes from there.
		return fmt.Errorf("%w: snapshot transfer after %d bytes: %v", errTorn, have+n, err)
	}
	if err := fail.Hit("sync.snapshot.install"); err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("sync: spool seek: %w", err)
	}
	if gen <= e.store.Generation() && !repair {
		// The local store advanced past the peer's checkpoint while we
		// downloaded (e.g. a broadcast landed); nothing to install, the
		// tail path takes over from here. A repair install skips this
		// short-circuit on purpose: the local generation is forked, so
		// "already past it" proves nothing — the checkpoint must be
		// adopted to rebase onto the fleet's history.
		e.discardSpool(f, spool)
		return nil
	}
	install := e.store.InstallSnapshot
	if repair {
		install = e.store.RepairSnapshot
	}
	if _, err := install(f, gen, fp); err != nil {
		if strings.Contains(err.Error(), "fingerprint") {
			// Corrupt or mixed-source spool: drop it so the retry starts
			// a clean transfer.
			e.mismatches.Add(1)
			e.discardSpool(f, spool)
		}
		return err
	}
	rep.SnapshotBytes = have + n
	e.snapshots.Add(1)
	e.discardSpool(f, spool)
	e.logf("sync: installed snapshot generation %d (%s, %d bytes) from %s", gen, fp, have+n, peer.url)
	return nil
}

// discardSpool closes and removes a spool file and forgets its etag.
func (e *Engine) discardSpool(f *os.File, path string) {
	f.Close()       //nolint:errcheck // read side already consumed
	os.Remove(path) //nolint:errcheck // best-effort cleanup
	e.spoolETag.Store(nil)
}

// Start launches the background anti-entropy loop: an immediate
// catch-up attempt (the boot-time rejoin), then a probe every Interval
// that syncs whenever a peer is ahead. Stop shuts it down.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(e.doneC)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-e.stopC
			cancel()
		}()
		e.syncIfBehind(ctx)
		tick := time.NewTicker(e.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				e.syncIfBehind(ctx)
			}
		}
	}()
}

func (e *Engine) syncIfBehind(ctx context.Context) {
	if ctx.Err() != nil || !e.Behind(ctx) {
		return
	}
	if _, err := e.Sync(ctx, ""); err != nil && !errors.Is(err, ErrSyncInProgress) && ctx.Err() == nil {
		e.logf("sync: background catch-up failed: %v", err)
	}
}

// Stop terminates the background loop and waits for it to exit. Safe
// to call without Start and more than once.
func (e *Engine) Stop() {
	if !e.started.Load() {
		return
	}
	// The CAS, not a select-with-default, makes concurrent Stops safe:
	// two racing selects can both observe the channel open and both
	// close it, panicking; exactly one CAS wins.
	if e.stopped.CompareAndSwap(false, true) {
		close(e.stopC)
	}
	<-e.doneC
}

// ValidatePeers parses and normalizes a comma-separated peer list
// ("http://host:port,..." or "name=http://host:port,...") into base
// URLs, for the -peers flag.
func ValidatePeers(s string) ([]string, error) {
	var peers []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if i := strings.Index(part, "="); i >= 0 && !strings.Contains(part[:i], "/") {
			part = part[i+1:]
		}
		u, err := url.Parse(part)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("sync: bad peer %q (want http://host:port)", part)
		}
		peers = append(peers, strings.TrimRight(u.String(), "/"))
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("sync: empty peer list")
	}
	return peers, nil
}
