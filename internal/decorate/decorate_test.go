package decorate

import (
	"strings"
	"testing"

	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/match"
	"rex/internal/pattern"
)

// costarExplanation builds the co-starring explanation for a pair with
// complete instances from the matcher.
func costarExplanation(t *testing.T, g *kb.Graph, start, end string) (*pattern.Explanation, kb.NodeID, kb.NodeID) {
	t.Helper()
	star := g.LabelByName(kbgen.RelStarring)
	p := pattern.MustNew(g, 3, []pattern.Edge{
		{U: 2, V: pattern.Start, Label: star}, {U: 2, V: pattern.End, Label: star},
	})
	s := g.NodeByName(start)
	e := g.NodeByName(end)
	insts := match.Find(g, p, s, e, match.Options{})
	if len(insts) == 0 {
		t.Fatalf("no co-star instances for (%s, %s)", start, end)
	}
	return pattern.NewExplanation(p, insts), s, e
}

func TestDecorateCostarFilm(t *testing.T) {
	g := kbgen.Sample()
	ex, _, _ := costarExplanation(t, g, "brad_pitt", "angelina_jolie")
	decos := Explanation(g, ex, Options{})
	if len(decos) == 0 {
		t.Fatal("no decorations for the co-starred film")
	}
	dir := g.LabelByName(kbgen.RelDirectedBy)
	var sawDirector bool
	for _, d := range decos {
		if d.Var != 2 {
			t.Errorf("decoration on unexpected variable %d", d.Var)
		}
		if d.Coverage <= 0 || d.Coverage > 1 {
			t.Errorf("coverage out of range: %v", d.Coverage)
		}
		if len(d.Values) == 0 {
			t.Error("decoration without example values")
		}
		if d.Label == dir {
			sawDirector = true
			// The one shared film is mr_and_mrs_smith, directed by
			// doug_liman: this is exactly Figure 5(a)'s non-essential
			// director fact, now re-attached post hoc.
			if g.NodeName(d.Values[0]) != "doug_liman" {
				t.Errorf("director decoration = %s", g.NodeName(d.Values[0]))
			}
		}
	}
	if !sawDirector {
		t.Error("expected the directed_by decoration of Figure 5(a)")
	}
}

func TestDecorationsExcludePatternEdges(t *testing.T) {
	g := kbgen.Sample()
	ex, _, _ := costarExplanation(t, g, "brad_pitt", "angelina_jolie")
	star := g.LabelByName(kbgen.RelStarring)
	for _, d := range Explanation(g, ex, Options{}) {
		if d.Label == star && d.Var == 2 && d.Outgoing {
			t.Errorf("pattern edge resurfaced as decoration: %s", d.Describe(g))
		}
	}
}

func TestDecorationCoverageFilter(t *testing.T) {
	g := kbgen.Sample()
	// Brad + Julia share three films; facts present on only one of the
	// three instances (coverage 1/3) must be dropped at MinCoverage 0.5.
	ex, _, _ := costarExplanation(t, g, "brad_pitt", "julia_roberts")
	if len(ex.Instances) != 3 {
		t.Fatalf("expected 3 co-star instances, got %d", len(ex.Instances))
	}
	for _, d := range Explanation(g, ex, Options{MinCoverage: 0.5}) {
		if d.Coverage < 0.5 {
			t.Errorf("low-coverage decoration kept: %v", d)
		}
	}
	// With the filter lowered, the sequel_of fact (only oceans_twelve)
	// can appear.
	low := Explanation(g, ex, Options{MinCoverage: 0.1, MaxPerVar: 10})
	if len(low) == 0 {
		t.Fatal("no decorations at low coverage")
	}
	anyPartial := false
	for _, d := range low {
		if d.Coverage < 0.5 {
			anyPartial = true
		}
	}
	if !anyPartial {
		t.Error("lowering MinCoverage surfaced no partial-coverage facts")
	}
}

func TestMaxPerVarCap(t *testing.T) {
	g := kbgen.Sample()
	ex, _, _ := costarExplanation(t, g, "brad_pitt", "julia_roberts")
	counts := map[pattern.VarID]int{}
	for _, d := range Explanation(g, ex, Options{MaxPerVar: 1, MinCoverage: 0.1}) {
		counts[d.Var]++
	}
	for v, c := range counts {
		if c > 1 {
			t.Errorf("variable %d has %d decorations with MaxPerVar=1", v, c)
		}
	}
}

func TestIncludeTargets(t *testing.T) {
	g := kbgen.Sample()
	ex, _, _ := costarExplanation(t, g, "brad_pitt", "angelina_jolie")
	without := Explanation(g, ex, Options{})
	for _, d := range without {
		if d.Var == pattern.Start || d.Var == pattern.End {
			t.Error("target decorated without IncludeTargets")
		}
	}
	with := Explanation(g, ex, Options{IncludeTargets: true, MinCoverage: 0.1, MaxPerVar: 10})
	sawTarget := false
	for _, d := range with {
		if d.Var == pattern.Start || d.Var == pattern.End {
			sawTarget = true
		}
	}
	if !sawTarget {
		t.Error("IncludeTargets produced no target decorations")
	}
}

func TestDescribe(t *testing.T) {
	g := kbgen.Sample()
	ex, _, _ := costarExplanation(t, g, "brad_pitt", "angelina_jolie")
	decos := Explanation(g, ex, Options{})
	if len(decos) == 0 {
		t.Fatal("no decorations")
	}
	s := decos[0].Describe(g)
	if !strings.Contains(s, "v2") {
		t.Errorf("Describe missing variable name: %s", s)
	}
}

func TestEmptyExplanation(t *testing.T) {
	g := kbgen.Sample()
	star := g.LabelByName(kbgen.RelStarring)
	p := pattern.MustNew(g, 3, []pattern.Edge{
		{U: 2, V: pattern.Start, Label: star}, {U: 2, V: pattern.End, Label: star},
	})
	ex := &pattern.Explanation{P: p}
	if got := Explanation(g, ex, Options{}); got != nil {
		t.Errorf("decorating an instance-less explanation returned %v", got)
	}
}
