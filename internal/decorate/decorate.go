// Package decorate implements the post-processing stage the paper defers
// in Section 2.3: once the most interesting *minimal* explanations are
// chosen, non-essential nodes and edges can be re-attached to make them
// more informative — e.g. annotating the shared film of a co-starring
// explanation with its director (the very structure Figure 5(a) shows
// being excluded from enumeration).
//
// A decoration is a single extra fact about one pattern variable: a
// relationship label, its orientation, and the entities observed across
// the explanation's instances. Decorations are ranked by coverage (the
// fraction of instances exhibiting the fact) and capped per variable, so
// the output stays readable.
package decorate

import (
	"sort"

	"rex/internal/kb"
	"rex/internal/pattern"
)

// Decoration is one non-essential fact attached to a pattern variable.
type Decoration struct {
	// Var is the decorated pattern variable.
	Var pattern.VarID
	// Label is the relationship connecting the variable to the fact.
	Label kb.LabelID
	// Outgoing reports the orientation: true when the edge points from
	// the variable's entity to the fact entity (or the label is
	// undirected).
	Outgoing bool
	// Coverage is the fraction of the explanation's instances whose
	// binding of Var has at least one such fact, in (0, 1].
	Coverage float64
	// Values holds example fact entities, most frequent first (capped).
	Values []kb.NodeID
}

// Options bounds the decoration search.
type Options struct {
	// MaxPerVar caps decorations per pattern variable (default 3).
	MaxPerVar int
	// MaxValues caps example entities per decoration (default 3).
	MaxValues int
	// MinCoverage drops facts observed on fewer than this fraction of
	// instances (default 0.5).
	MinCoverage float64
	// IncludeTargets also decorates the two target variables; off by
	// default since the user already knows the queried entities.
	IncludeTargets bool
}

func (o Options) normalized() Options {
	if o.MaxPerVar <= 0 {
		o.MaxPerVar = 3
	}
	if o.MaxValues <= 0 {
		o.MaxValues = 3
	}
	if o.MinCoverage <= 0 {
		o.MinCoverage = 0.5
	}
	return o
}

// decoKey identifies a candidate decoration during aggregation.
type decoKey struct {
	v        pattern.VarID
	label    kb.LabelID
	outgoing bool
}

// Explanation decorates a minimal explanation against the knowledge
// base: for every (non-target) pattern variable it finds the
// relationship facts shared by most instances that are not already part
// of the pattern, and returns them ranked by coverage (ties: smaller
// variable, then label order). The explanation itself is not modified —
// decorations deliberately stay outside the minimal pattern, preserving
// the enumeration semantics.
func Explanation(g *kb.Graph, ex *pattern.Explanation, opt Options) []Decoration {
	opt = opt.normalized()
	p := ex.P
	if len(ex.Instances) == 0 {
		return nil
	}

	// Edges already in the pattern must not resurface as decorations:
	// index the (var, label, orientation) triples the pattern uses, and
	// also track, per instance, which concrete neighbor entities are
	// bound by pattern edges so multi-edges to pattern co-variables are
	// skipped entirely.
	inPattern := make(map[decoKey]bool)
	for _, e := range p.Edges() {
		directed := g.LabelDirected(e.Label)
		inPattern[decoKey{e.U, e.Label, true}] = true
		inPattern[decoKey{e.V, e.Label, !directed}] = true
	}

	type agg struct {
		instancesWith map[pattern.InstanceKey]struct{} // instance keys having ≥1 fact
		valueCounts   map[kb.NodeID]int
	}
	aggs := make(map[decoKey]*agg)

	for _, in := range ex.Instances {
		instKey := in.Key()
		// Entities bound by this instance (any variable): facts pointing
		// back into the instance are part of the connection structure,
		// not decoration.
		bound := make(map[kb.NodeID]bool, len(in))
		for _, id := range in {
			bound[id] = true
		}
		for v := 0; v < p.NumVars(); v++ {
			if !opt.IncludeTargets && (v == int(pattern.Start) || v == int(pattern.End)) {
				continue
			}
			entity := in[v]
			for _, he := range g.Neighbors(entity) {
				if bound[he.To] {
					continue
				}
				outgoing := he.Dir == kb.Out || he.Dir == kb.Undirected
				key := decoKey{pattern.VarID(v), he.Label, outgoing}
				if inPattern[key] {
					continue
				}
				a, ok := aggs[key]
				if !ok {
					a = &agg{
						instancesWith: make(map[pattern.InstanceKey]struct{}),
						valueCounts:   make(map[kb.NodeID]int),
					}
					aggs[key] = a
				}
				a.instancesWith[instKey] = struct{}{}
				a.valueCounts[he.To]++
			}
		}
	}

	total := float64(len(ex.Instances))
	var out []Decoration
	perVar := make(map[pattern.VarID]int)
	// Deterministic candidate order: by coverage desc, then var, label,
	// orientation.
	keys := make([]decoKey, 0, len(aggs))
	for k := range aggs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ci := float64(len(aggs[keys[i]].instancesWith)) / total
		cj := float64(len(aggs[keys[j]].instancesWith)) / total
		if ci != cj {
			return ci > cj
		}
		if keys[i].v != keys[j].v {
			return keys[i].v < keys[j].v
		}
		if keys[i].label != keys[j].label {
			return keys[i].label < keys[j].label
		}
		return keys[i].outgoing && !keys[j].outgoing
	})
	for _, k := range keys {
		a := aggs[k]
		coverage := float64(len(a.instancesWith)) / total
		if coverage < opt.MinCoverage || perVar[k.v] >= opt.MaxPerVar {
			continue
		}
		perVar[k.v]++
		out = append(out, Decoration{
			Var:      k.v,
			Label:    k.label,
			Outgoing: k.outgoing,
			Coverage: coverage,
			Values:   topValues(a.valueCounts, opt.MaxValues),
		})
	}
	return out
}

// topValues returns the most frequent fact entities, ties by ID.
func topValues(counts map[kb.NodeID]int, max int) []kb.NodeID {
	ids := make([]kb.NodeID, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if counts[ids[i]] != counts[ids[j]] {
			return counts[ids[i]] > counts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if len(ids) > max {
		ids = ids[:max]
	}
	return ids
}

// Describe renders a decoration for display, e.g.
// "v2 --directed_by--> sam_mendes (coverage 100%)".
func (d Decoration) Describe(g *kb.Graph) string {
	arrow := "--" + g.LabelName(d.Label) + "--"
	if g.LabelDirected(d.Label) {
		if d.Outgoing {
			arrow += ">"
		} else {
			arrow = "<" + arrow
		}
	}
	names := ""
	for i, v := range d.Values {
		if i > 0 {
			names += ", "
		}
		names += g.NodeName(v)
	}
	return varName(d.Var) + " " + arrow + " " + names
}

func varName(v pattern.VarID) string {
	switch v {
	case pattern.Start:
		return "start"
	case pattern.End:
		return "end"
	}
	return "v" + string(rune('0'+int(v)))
}
