package harness

import (
	"bytes"
	"strings"
	"testing"

	"rex/internal/kb"
)

// tinyEnv builds a fast experiment environment for smoke tests.
func tinyEnv(t *testing.T) *Env {
	t.Helper()
	return NewEnv(EnvOptions{Scale: 0.3, Seed: 7, PerBucket: 1, GlobalSamples: 5})
}

func TestNewEnvWorkload(t *testing.T) {
	env := tinyEnv(t)
	if env.G.NumNodes() == 0 || env.G.NumEdges() == 0 {
		t.Fatal("empty synthetic graph")
	}
	if len(env.Pairs) == 0 {
		t.Fatal("no pairs sampled")
	}
	for _, b := range Buckets() {
		for _, p := range env.PairsIn(b) {
			if p.Bucket != b {
				t.Errorf("PairsIn(%v) returned a %v pair", b, p.Bucket)
			}
		}
	}
}

func TestEnvDefaults(t *testing.T) {
	opt := EnvOptions{}.normalized()
	if opt.Scale != 1 || opt.PerBucket != 10 || opt.MaxPatternSize != 5 || opt.GlobalSamples != 100 {
		t.Errorf("defaults wrong: %+v", opt)
	}
}

func TestTablePrint(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Headers: []string{"a", "long-header"},
		Rows:    [][]string{{"x", "1"}, {"yyyy", "2"}},
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "long-header", "yyyy"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed table missing %q:\n%s", want, out)
		}
	}
}

func TestSecondsFormatting(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{123, "123s"},
		{2.5, "2.50s"},
		{0.0123, "12.3ms"},
		{0.0000015, "2µs"},
	}
	for _, tc := range cases {
		if got := Seconds(tc.in); got != tc.want {
			t.Errorf("Seconds(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTimePositive(t *testing.T) {
	s := Time(func() {
		x := 0
		for i := 0; i < 1000; i++ {
			x += i
		}
		_ = x
	})
	if s <= 0 {
		t.Fatalf("Time returned %v", s)
	}
}

func TestFig7Smoke(t *testing.T) {
	env := tinyEnv(t)
	tab := env.Fig7(true) // skip NaiveEnum for speed
	if len(tab.Rows) != len(Fig7Combos())-1 {
		t.Fatalf("fig7 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 4 {
			t.Fatalf("fig7 row arity %d", len(row))
		}
	}
}

func TestFig7IncludesNaive(t *testing.T) {
	env := NewEnv(EnvOptions{Scale: 0.15, Seed: 7, PerBucket: 1, GlobalSamples: 3})
	tab := env.Fig7(false)
	found := false
	for _, row := range tab.Rows {
		if row[0] == "NaiveEnum" {
			found = true
		}
	}
	if !found {
		t.Error("full fig7 must include the NaiveEnum baseline")
	}
}

func TestFig8Smoke(t *testing.T) {
	env := tinyEnv(t)
	tab := env.Fig8()
	if len(tab.Rows) != len(env.Pairs) {
		t.Fatalf("fig8 rows %d != pairs %d", len(tab.Rows), len(env.Pairs))
	}
}

func TestFig9Smoke(t *testing.T) {
	env := tinyEnv(t)
	tab := env.Fig9()
	if len(tab.Rows) != 3 {
		t.Fatalf("fig9 rows = %d", len(tab.Rows))
	}
}

func TestFig10Smoke(t *testing.T) {
	env := tinyEnv(t)
	tab := env.Fig10([]int{1, 10})
	if len(tab.Rows) != 6 { // 3 buckets × 2 k values
		t.Fatalf("fig10 rows = %d", len(tab.Rows))
	}
}

func TestFig11Smoke(t *testing.T) {
	env := tinyEnv(t)
	tab := env.Fig11()
	if len(tab.Rows) != 3 {
		t.Fatalf("fig11 rows = %d", len(tab.Rows))
	}
}

func TestTable1Smoke(t *testing.T) {
	tab := Table1(StudyOptions{Scale: 0.3, Seed: 7, NumRaters: 3, GlobalSamples: 6, NumPairs: 2})
	if len(tab.Rows) != len(Table1Measures()) {
		t.Fatalf("table1 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 2+2 { // measure, P1, P2, avg
			t.Fatalf("table1 row arity %d: %v", len(row), row)
		}
	}
}

func TestPathShareSmoke(t *testing.T) {
	tab := PathShare(StudyOptions{Scale: 0.3, Seed: 7, NumRaters: 3, GlobalSamples: 6, NumPairs: 2})
	if len(tab.Rows) != 3 { // 2 pairs + overall
		t.Fatalf("pathshare rows = %d", len(tab.Rows))
	}
}

func TestStudyPairsNamed(t *testing.T) {
	if len(StudyPairs()) != 5 {
		t.Fatal("the paper uses five study pairs")
	}
}

func TestBucketsOrder(t *testing.T) {
	bs := Buckets()
	if len(bs) != 3 || bs[0] != kb.ConnLow || bs[2] != kb.ConnHigh {
		t.Fatalf("bucket order: %v", bs)
	}
}
