package harness

import (
	"fmt"

	"rex/internal/learn"
	"rex/internal/measure"
	"rex/internal/rank"
	"rex/internal/study"
)

// Learned runs the future-work extension experiment: train the linear
// measure combination on simulated judgments with leave-one-out
// cross-validation over the study pairs, and compare held-out DCG
// against the paper's best hand combinations. The paper conjectures the
// learned combination "definitely" improves on the hand-tuned ones; this
// experiment quantifies it under the simulated raters.
func Learned(opt StudyOptions) Table {
	data := buildStudy(opt)
	t := Table{
		Title:   "Extension: learned measure combination (held-out DCG, leave-one-out)",
		Headers: []string{"measure"},
	}
	for i := range data {
		t.Headers = append(t.Headers, fmt.Sprintf("P%d", i+1))
	}
	t.Headers = append(t.Headers, "avg")

	// Pre-extract one training example per pair.
	examples := make([]learn.Example, len(data))
	for i, sd := range data {
		rel := make(map[string]float64, len(sd.all))
		for key, j := range sd.labels {
			rel[key] = j.AvgLabel()
		}
		examples[i] = learn.NewExample(sd.ctx, sd.all, rel)
	}

	// Baselines: the paper's two winning hand combinations plus pure
	// local-dist, evaluated on every pair (they involve no training, so
	// "held-out" equals their Table 1 scores).
	baselines := []measure.Measure{
		measure.LocalPosition{},
		measure.Combined{Primary: measure.Size{}, Secondary: measure.Monocount{}},
		measure.Combined{Primary: measure.Size{}, Secondary: measure.LocalPosition{}},
	}
	evalMeasure := func(m measure.Measure, sd *studyData) float64 {
		ranked := rank.General(sd.ctx, sd.all, m, 10)
		judged := make([]study.Judged, len(ranked))
		for i, r := range ranked {
			judged[i] = sd.labels[r.Ex.P.CanonicalKey()]
		}
		return study.DCG(judged, 10)
	}
	for _, m := range baselines {
		row := []string{m.Name()}
		total := 0.0
		for _, sd := range data {
			s := evalMeasure(m, sd)
			total += s
			row = append(row, fmt.Sprintf("%.0f", s))
		}
		row = append(row, fmt.Sprintf("%.0f", total/float64(len(data))))
		t.Rows = append(t.Rows, row)
	}

	// Leave-one-out learned model.
	row := []string{"learned (LOO)"}
	total := 0.0
	for i, sd := range data {
		var train []learn.Example
		for j := range examples {
			if j != i {
				train = append(train, examples[j])
			}
		}
		model := learn.Train(train, 4)
		s := evalMeasure(learn.NewMeasure(model), sd)
		total += s
		row = append(row, fmt.Sprintf("%.0f", s))
	}
	row = append(row, fmt.Sprintf("%.0f", total/float64(len(data))))
	t.Rows = append(t.Rows, row)
	return t
}
