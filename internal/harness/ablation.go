package harness

import (
	"rex/internal/enumerate"
	"rex/internal/kb"
	"rex/internal/match"
	"rex/internal/pattern"
	"rex/internal/relstore"
)

// Ablations beyond the paper's figures: they quantify two implementation
// choices DESIGN.md calls out.
//
//  1. Duplicate checking. Algorithm 3's pseudocode scans the explanation
//     queue and runs a graph-isomorphism test against every entry; REX
//     instead canonicalises each pattern once and probes a hash set.
//     The ablation measures both strategies over the actual pattern
//     stream of the workload.
//  2. Distributional evaluation engine. The paper computes distributions
//     with SQL over R(eid1, eid2, rel); REX has both that relational
//     engine and a direct graph matcher. The ablation times the local
//     position of every explanation under each engine.

// Ablation runs both studies over the environment's medium bucket (the
// paper's middle workload) and reports average times per pair.
func (e *Env) Ablation() Table {
	t := Table{
		Title:   "Ablation: duplicate-check strategy and distribution engine (avg seconds per pair)",
		Headers: []string{"study", "variant", "low", "medium", "high"},
	}
	cfg := enumerate.Config{
		MaxPatternSize: e.Opt.MaxPatternSize,
		PathAlg:        enumerate.PathPrioritized,
		UnionAlg:       enumerate.UnionPrune,
	}

	// Collect per-bucket explanation streams once.
	type pairData struct {
		es    []*pattern.Explanation
		start int
	}
	streams := map[string][]pairData{}
	for _, b := range Buckets() {
		for _, p := range e.PairsIn(b) {
			es := enumerate.Explanations(e.G, p.Start, p.End, cfg)
			streams[b.String()] = append(streams[b.String()], pairData{es: es, start: int(p.Start)})
		}
	}

	// Study 1: duplicate checking over the real pattern stream. To make
	// the comparison fair both variants process the same stream with
	// duplicates injected (every pattern appears twice, as merges
	// typically regenerate patterns).
	dupRow := func(name string, dedup func([]*pattern.Explanation) int) []string {
		row := []string{"dedup", name}
		for _, b := range Buckets() {
			pds := streams[b.String()]
			if len(pds) == 0 {
				row = append(row, "n/a")
				continue
			}
			total := 0.0
			for _, pd := range pds {
				stream := append(append([]*pattern.Explanation{}, pd.es...), pd.es...)
				total += Time(func() { dedup(stream) })
			}
			row = append(row, Seconds(total/float64(len(pds))))
		}
		return row
	}
	t.Rows = append(t.Rows, dupRow("canonical-key hash set", func(es []*pattern.Explanation) int {
		// Canonical keys are computed once per pattern and cached for
		// the pattern's lifetime — amortisation across every later
		// duplicate check is precisely this strategy's advantage, so the
		// measurement reflects it, exactly as production enumeration
		// does.
		seen := make(map[string]struct{}, len(es))
		kept := 0
		for _, ex := range es {
			k := ex.P.CanonicalKey()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				kept++
			}
		}
		return kept
	}))
	t.Rows = append(t.Rows, dupRow("pairwise isomorphism scan", func(es []*pattern.Explanation) int {
		var kept []*pattern.Explanation
	next:
		for _, ex := range es {
			for _, old := range kept {
				if isomorphicScan(old.P, ex.P) {
					continue next
				}
			}
			kept = append(kept, ex)
		}
		return len(kept)
	}))

	// Study 2: distribution engine comparison.
	st := relstore.FromGraph(e.G)
	engineRow := func(name string, eval func(pd pairData)) []string {
		row := []string{"dist-engine", name}
		for _, b := range Buckets() {
			pds := streams[b.String()]
			if len(pds) == 0 {
				row = append(row, "n/a")
				continue
			}
			total := 0.0
			for _, pd := range pds {
				pd := pd
				total += Time(func() { eval(pd) })
			}
			row = append(row, Seconds(total/float64(len(pds))))
		}
		return row
	}
	t.Rows = append(t.Rows, engineRow("graph matcher", func(pd pairData) {
		for _, ex := range pd.es {
			match.CountByEnd(e.G, ex.P, kb.NodeID(pd.start))
		}
	}))
	t.Rows = append(t.Rows, engineRow("relational self-join", func(pd pairData) {
		for _, ex := range pd.es {
			st.GroupCounts(relstore.Compile(e.G, ex.P, kb.NodeID(pd.start)))
		}
	}))
	return t
}

// isomorphicScan checks isomorphism the way Algorithm 3's pseudocode
// implies: a fresh search for a variable mapping, no canonical caching.
func isomorphicScan(p, q *pattern.Pattern) bool {
	if p.NumVars() != q.NumVars() || p.NumEdges() != q.NumEdges() {
		return false
	}
	// Brute-force mapping search over free variables.
	n := p.NumVars()
	perm := make([]pattern.VarID, 0, n-2)
	used := make([]bool, n)
	type ek struct {
		u, v pattern.VarID
		l    int32
	}
	qEdges := make(map[ek]int, q.NumEdges())
	sch := q.Schema()
	for _, e := range q.Edges() {
		qEdges[ek{e.U, e.V, int32(e.Label)}]++
	}
	var rec func() bool
	rec = func() bool {
		if len(perm) == n-2 {
			rename := func(v pattern.VarID) pattern.VarID {
				if v < 2 {
					return v
				}
				return perm[v-2]
			}
			seen := make(map[ek]int, p.NumEdges())
			for _, e := range p.Edges() {
				u, v := rename(e.U), rename(e.V)
				if !sch.LabelDirected(e.Label) && u > v {
					u, v = v, u
				}
				seen[ek{u, v, int32(e.Label)}]++
			}
			if len(seen) != len(qEdges) {
				return false
			}
			for k, c := range seen {
				if qEdges[k] != c {
					return false
				}
			}
			return true
		}
		for cand := 2; cand < n; cand++ {
			if used[cand] {
				continue
			}
			used[cand] = true
			perm = append(perm, pattern.VarID(cand))
			if rec() {
				used[cand] = false
				perm = perm[:len(perm)-1]
				return true
			}
			perm = perm[:len(perm)-1]
			used[cand] = false
		}
		return false
	}
	return rec()
}
