// Package harness builds the workloads, timings and tables behind every
// figure and table of the paper's evaluation (Section 5). Both the
// rexbench command and the repository's testing.B benchmarks call into
// this package so the two always agree on what an experiment means.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"rex/internal/kb"
	"rex/internal/kbgen"
)

// EnvOptions configures an experiment environment.
type EnvOptions struct {
	// Scale is the synthetic KB scale factor (see kbgen.Options). The
	// default 1.0 builds a graph whose local density is comparable to
	// the paper's DBpedia extraction while keeping single-core runs
	// tractable.
	Scale float64
	// Seed drives KB generation and pair sampling.
	Seed int64
	// PerBucket is the number of entity pairs per connectedness group
	// (the paper uses 10).
	PerBucket int
	// MaxPatternSize is the pattern node limit (the paper uses 5).
	MaxPatternSize int
	// GlobalSamples is the number of start entities used to estimate the
	// global distribution (the paper uses 100).
	GlobalSamples int
}

func (o EnvOptions) normalized() EnvOptions {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.PerBucket <= 0 {
		o.PerBucket = 10
	}
	if o.MaxPatternSize <= 0 {
		o.MaxPatternSize = 5
	}
	if o.GlobalSamples <= 0 {
		o.GlobalSamples = 100
	}
	return o
}

// Env is a ready-to-run experiment environment: the knowledge base and
// the bucketed entity-pair workload.
type Env struct {
	Opt   EnvOptions
	G     *kb.Graph
	Pairs []kbgen.Pair
}

// NewEnv generates the synthetic knowledge base and samples the
// connectedness-bucketed pair workload.
func NewEnv(opt EnvOptions) *Env {
	opt = opt.normalized()
	g := kbgen.Generate(kbgen.Options{Scale: opt.Scale, Seed: opt.Seed})
	pairs := kbgen.SamplePairs(g, kbgen.PairOptions{
		PerBucket: opt.PerBucket,
		MaxLen:    opt.MaxPatternSize - 1,
		Seed:      opt.Seed + 1,
	})
	return &Env{Opt: opt, G: g, Pairs: pairs}
}

// PairsIn returns the workload pairs of one connectedness bucket.
func (e *Env) PairsIn(b kb.ConnBucket) []kbgen.Pair {
	var out []kbgen.Pair
	for _, p := range e.Pairs {
		if p.Bucket == b {
			out = append(out, p)
		}
	}
	return out
}

// Buckets lists the experiment groups in presentation order.
func Buckets() []kb.ConnBucket {
	return []kb.ConnBucket{kb.ConnLow, kb.ConnMedium, kb.ConnHigh}
}

// Time runs f once and reports the wall-clock seconds. Fast bodies are
// repeated until the total exceeds a few milliseconds so the measurement
// is stable on coarse clocks, and the mean per run is reported.
func Time(f func()) float64 {
	start := time.Now()
	f()
	elapsed := time.Since(start)
	if elapsed >= 5*time.Millisecond {
		return elapsed.Seconds()
	}
	// Repeat to stabilise sub-millisecond measurements.
	runs := 1
	total := elapsed
	for total < 20*time.Millisecond && runs < 1000 {
		s := time.Now()
		f()
		total += time.Since(s)
		runs++
	}
	return total.Seconds() / float64(runs)
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Print renders the table with aligned columns.
func (t Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Seconds formats a duration in seconds with adaptive precision.
func Seconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0fs", s)
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 0.001:
		return fmt.Sprintf("%.1fms", s*1000)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}
