package harness

import (
	"fmt"

	"rex/internal/enumerate"
	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/measure"
	"rex/internal/pattern"
	"rex/internal/rank"
	"rex/internal/study"
)

// StudyPairs returns the paper's five user-study entity pairs
// (Section 5.4.1), all present in the curated sample knowledge base.
// The timing-independent effectiveness experiments (Table 1, path share)
// run on the synthetic knowledge base instead, where aggregate
// distributions have enough spread to separate the measures; these named
// pairs remain available for demos and tests.
func StudyPairs() [][2]string {
	return [][2]string{
		{"brad_pitt", "angelina_jolie"},       // P1
		{"kate_winslet", "leonardo_dicaprio"}, // P2
		{"tom_cruise", "will_smith"},          // P3
		{"james_cameron", "kate_winslet"},     // P4
		{"mel_gibson", "helen_hunt"},          // P5
	}
}

// Table1Measures returns the eight measures of Table 1 in row order.
func Table1Measures() []measure.Measure {
	return []measure.Measure{
		measure.Size{},
		measure.RandomWalk{},
		measure.Count{},
		measure.Monocount{},
		measure.LocalPosition{},
		measure.GlobalPosition{},
		measure.Combined{Primary: measure.Size{}, Secondary: measure.Monocount{}},
		measure.Combined{Primary: measure.Size{}, Secondary: measure.LocalPosition{}},
	}
}

// StudyOptions configures the simulated user-study experiments.
type StudyOptions struct {
	// Scale and Seed build the synthetic knowledge base the judged
	// pairs are drawn from.
	Scale float64
	Seed  int64
	// NumRaters is the size of the simulated panel (paper: 10).
	NumRaters int
	// GlobalSamples estimates the global distribution (paper: 100).
	GlobalSamples int
	// NumPairs is how many entity pairs are judged (paper: 5).
	NumPairs int
}

func (o StudyOptions) normalized() StudyOptions {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.NumRaters <= 0 {
		o.NumRaters = 10
	}
	if o.GlobalSamples <= 0 {
		o.GlobalSamples = 100
	}
	if o.NumPairs <= 0 {
		o.NumPairs = 5
	}
	return o
}

// studyData holds one pair's enumeration, rater panel and judgments.
type studyData struct {
	g     *kb.Graph
	start kb.NodeID
	end   kb.NodeID
	all   []*pattern.Explanation
	ctx   *measure.Context
	panel *study.Panel

	labels map[string]study.Judged // canonical key → judgment
}

// buildStudy samples study pairs from a synthetic knowledge base,
// enumerates their explanations, and judges everything with the
// simulated rater panel. Pairs come from the medium and high
// connectedness buckets — like the paper's celebrity pairs, they must
// have enough explanations for a top-10 comparison to be meaningful.
func buildStudy(opt StudyOptions) []*studyData {
	opt = opt.normalized()
	g := kbgen.Generate(kbgen.Options{Scale: opt.Scale, Seed: opt.Seed})
	sampled := kbgen.SamplePairs(g, kbgen.PairOptions{
		PerBucket: opt.NumPairs, Seed: opt.Seed + 1,
	})
	var pairs []kbgen.Pair
	for _, b := range []kb.ConnBucket{kb.ConnHigh, kb.ConnMedium, kb.ConnLow} {
		for _, p := range sampled {
			if p.Bucket == b && len(pairs) < opt.NumPairs {
				pairs = append(pairs, p)
			}
		}
	}
	cfg := enumerate.Config{
		MaxPatternSize: enumerate.DefaultMaxPatternSize,
		PathAlg:        enumerate.PathPrioritized,
		UnionAlg:       enumerate.UnionPrune,
	}
	var out []*studyData
	for _, p := range pairs {
		all := enumerate.Explanations(g, p.Start, p.End, cfg)
		// Start samples for the global distribution match the query
		// entity's type (see measure.SampleStartsOfType). The rater
		// model's global-rarity component uses its own smaller,
		// differently-seeded sample so that no ranked measure computes
		// the ground truth exactly.
		typ := g.Node(p.Start).Type
		raterStarts := measure.SampleStartsOfType(g, typ, opt.GlobalSamples/2, opt.Seed+7)
		panel := study.NewPanel(g, p.Start, p.End, all, opt.NumRaters, opt.Seed, raterStarts...)
		sd := &studyData{
			g: g, start: p.Start, end: p.End, all: all, panel: panel,
			ctx: &measure.Context{
				G: g, Start: p.Start, End: p.End,
				SampleStarts: measure.SampleStartsOfType(g, typ, opt.GlobalSamples, opt.Seed),
			},
			labels: make(map[string]study.Judged, len(all)),
		}
		for _, ex := range all {
			sd.labels[ex.P.CanonicalKey()] = sd.panel.Judge(ex)
		}
		out = append(out, sd)
	}
	return out
}

// Table1 reproduces the measure-effectiveness comparison: each measure
// ranks the top 10 explanations for each study pair; simulated raters
// judge them; the DCG-style score of Section 5.4.1 summarises each
// ranking.
func Table1(opt StudyOptions) Table {
	data := buildStudy(opt)
	t := Table{
		Title:   "Table 1: interestingness measure effectiveness (DCG-style score, higher is better)",
		Headers: []string{"measure"},
	}
	for i := range data {
		t.Headers = append(t.Headers, fmt.Sprintf("P%d", i+1))
	}
	t.Headers = append(t.Headers, "avg")
	for _, m := range Table1Measures() {
		row := []string{m.Name()}
		total := 0.0
		for _, sd := range data {
			ranked := rank.General(sd.ctx, sd.all, m, 10)
			judged := make([]study.Judged, len(ranked))
			for i, r := range ranked {
				judged[i] = sd.labels[r.Ex.P.CanonicalKey()]
			}
			score := study.DCG(judged, 10)
			total += score
			row = append(row, fmt.Sprintf("%.0f", score))
		}
		row = append(row, fmt.Sprintf("%.0f", total/float64(len(data))))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// PathShare reproduces Section 5.4.2: among the user-judged most
// interesting explanations (average label ≥ 1), what fraction are simple
// paths? The paper reports 36% paths in the top 5 and 38% in the top 10,
// i.e. non-path explanations dominate.
func PathShare(opt StudyOptions) Table {
	data := buildStudy(opt)
	t := Table{
		Title:   "Section 5.4.2: share of path explanations among top judged explanations",
		Headers: []string{"pair", "top-5 paths", "top-10 paths", "qualifying"},
	}
	var paths5, tot5, paths10, tot10 float64
	for i, sd := range data {
		judged := make([]study.Judged, 0, len(sd.all))
		for _, ex := range sd.all {
			judged = append(judged, sd.labels[ex.P.CanonicalKey()])
		}
		s5, n5 := study.PathShare(judged, 5)
		s10, n10 := study.PathShare(judged, 10)
		paths5 += s5 * float64(n5)
		tot5 += float64(n5)
		paths10 += s10 * float64(n10)
		tot10 += float64(n10)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("P%d (%s, %s)", i+1, sd.g.NodeName(sd.start), sd.g.NodeName(sd.end)),
			fmt.Sprintf("%.0f%%", 100*s5),
			fmt.Sprintf("%.0f%%", 100*s10),
			fmt.Sprint(n10),
		})
	}
	overall5, overall10 := "n/a", "n/a"
	if tot5 > 0 {
		overall5 = fmt.Sprintf("%.0f%%", 100*paths5/tot5)
	}
	if tot10 > 0 {
		overall10 = fmt.Sprintf("%.0f%%", 100*paths10/tot10)
	}
	t.Rows = append(t.Rows, []string{"overall", overall5, overall10, fmt.Sprintf("%.0f", tot10)})
	return t
}
