package harness

import (
	"fmt"
	"sort"

	"rex/internal/enumerate"
	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/measure"
	"rex/internal/pattern"
	"rex/internal/rank"
)

// Combo is one algorithm combination of Figure 7.
type Combo struct {
	Name  string
	Naive bool // NaiveEnum instead of the path framework
	Path  enumerate.PathAlgorithm
	Union enumerate.UnionAlgorithm
}

// Fig7Combos returns the five combinations compared in Figure 7, in the
// paper's order.
func Fig7Combos() []Combo {
	return []Combo{
		{Name: "NaiveEnum", Naive: true},
		{Name: "PathEnumNaive+PathUnionBasic", Path: enumerate.PathNaive, Union: enumerate.UnionBasic},
		{Name: "PathEnumBasic+PathUnionBasic", Path: enumerate.PathBasic, Union: enumerate.UnionBasic},
		{Name: "PathEnumPrioritized+PathUnionBasic", Path: enumerate.PathPrioritized, Union: enumerate.UnionBasic},
		{Name: "PathEnumPrioritized+PathUnionPrune", Path: enumerate.PathPrioritized, Union: enumerate.UnionPrune},
	}
}

// runCombo enumerates explanations for a pair with the given combination.
func (e *Env) runCombo(c Combo, p kbgen.Pair) []*pattern.Explanation {
	if c.Naive {
		return enumerate.NaiveEnum(e.G, p.Start, p.End, e.Opt.MaxPatternSize)
	}
	return enumerate.Explanations(e.G, p.Start, p.End, enumerate.Config{
		MaxPatternSize: e.Opt.MaxPatternSize,
		PathAlg:        c.Path,
		UnionAlg:       c.Union,
	})
}

// Fig7 measures average explanation-enumeration time per algorithm
// combination and connectedness group. skipNaive drops the NaiveEnum
// baseline (useful when its runtime would dominate a quick run).
func (e *Env) Fig7(skipNaive bool) Table {
	t := Table{
		Title:   "Figure 7: explanation enumeration time by algorithm (avg seconds per pair)",
		Headers: []string{"algorithm", "low", "medium", "high"},
	}
	for _, c := range Fig7Combos() {
		if c.Naive && skipNaive {
			continue
		}
		row := []string{c.Name}
		for _, b := range Buckets() {
			pairs := e.PairsIn(b)
			if len(pairs) == 0 {
				row = append(row, "n/a")
				continue
			}
			total := 0.0
			for _, p := range pairs {
				p := p
				total += Time(func() { e.runCombo(c, p) })
			}
			row = append(row, Seconds(total/float64(len(pairs))))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig8 measures enumeration time (best algorithms) against the number of
// explanation instances per pair — the scalability scatter of Figure 8.
func (e *Env) Fig8() Table {
	t := Table{
		Title:   "Figure 8: enumeration time vs number of explanation instances (best algorithms)",
		Headers: []string{"pair", "bucket", "instances", "seconds"},
	}
	best := Combo{Path: enumerate.PathPrioritized, Union: enumerate.UnionPrune}
	type point struct {
		name      string
		bucket    string
		instances int
		secs      float64
	}
	var pts []point
	for _, p := range e.Pairs {
		p := p
		var es []*pattern.Explanation
		secs := Time(func() { es = e.runCombo(best, p) })
		instances := 0
		for _, ex := range es {
			instances += len(ex.Instances)
		}
		pts = append(pts, point{
			name:      fmt.Sprintf("%s/%s", e.G.NodeName(p.Start), e.G.NodeName(p.End)),
			bucket:    p.Bucket.String(),
			instances: instances,
			secs:      secs,
		})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].instances < pts[j].instances })
	for _, pt := range pts {
		t.Rows = append(t.Rows, []string{pt.name, pt.bucket, fmt.Sprint(pt.instances), Seconds(pt.secs)})
	}
	return t
}

// Fig9 compares full enumerate-then-rank against the interleaved top-k
// (k=10) pruning for the anti-monotonic monocount measure.
func (e *Env) Fig9() Table {
	t := Table{
		Title:   "Figure 9: top-k (k=10) pruning for monocount (avg seconds per pair)",
		Headers: []string{"group", "full enumeration", "top-k pruning", "speedup"},
	}
	for _, b := range Buckets() {
		full, pruned := e.rankTimes(b, 10)
		speedup := "n/a"
		if pruned > 0 {
			speedup = fmt.Sprintf("%.1fx", full/pruned)
		}
		t.Rows = append(t.Rows, []string{b.String(), Seconds(full), Seconds(pruned), speedup})
	}
	return t
}

// rankTimes measures average full-rank and pruned-rank time for the
// monocount measure over one bucket.
func (e *Env) rankTimes(b kb.ConnBucket, k int) (full, pruned float64) {
	pairs := e.PairsIn(b)
	if len(pairs) == 0 {
		return 0, 0
	}
	cfg := enumerate.Config{
		MaxPatternSize: e.Opt.MaxPatternSize,
		PathAlg:        enumerate.PathPrioritized,
		UnionAlg:       enumerate.UnionPrune,
	}
	m := measure.Monocount{}
	for _, p := range pairs {
		p := p
		ctx := &measure.Context{G: e.G, Start: p.Start, End: p.End}
		full += Time(func() {
			es := enumerate.Explanations(e.G, p.Start, p.End, cfg)
			rank.General(ctx, es, m, k)
		})
		pruned += Time(func() {
			rank.TopKAntiMonotone(e.G, p.Start, p.End, cfg, ctx, m, k)
		})
	}
	n := float64(len(pairs))
	return full / n, pruned / n
}

// Fig10 sweeps k and reports average compute time with and without top-k
// pruning per connectedness group.
func (e *Env) Fig10(ks []int) Table {
	if len(ks) == 0 {
		ks = []int{1, 5, 10, 20, 50, 100, 200}
	}
	t := Table{
		Title:   "Figure 10: average compute time vs k (monocount; pruned vs full)",
		Headers: []string{"group", "k", "full", "pruned"},
	}
	for _, b := range Buckets() {
		for _, k := range ks {
			full, pruned := e.rankTimes(b, k)
			t.Rows = append(t.Rows, []string{b.String(), fmt.Sprint(k), Seconds(full), Seconds(pruned)})
		}
	}
	return t
}

// Fig11 measures the cost of ranking top-10 explanations by the
// distribution-based position measure in the paper's four scenarios:
// local and global distributions, each with and without LIMIT pruning.
func (e *Env) Fig11() Table {
	t := Table{
		Title:   "Figure 11: top-10 ranking cost with distributional measures (avg seconds per pair)",
		Headers: []string{"group", "local", "local+prune", "global", "global+prune"},
	}
	cfg := enumerate.Config{
		MaxPatternSize: e.Opt.MaxPatternSize,
		PathAlg:        enumerate.PathPrioritized,
		UnionAlg:       enumerate.UnionPrune,
	}
	local := measure.LocalPosition{}
	global := measure.GlobalPosition{}
	for _, b := range Buckets() {
		pairs := e.PairsIn(b)
		if len(pairs) == 0 {
			t.Rows = append(t.Rows, []string{b.String(), "n/a", "n/a", "n/a", "n/a"})
			continue
		}
		var tl, tlp, tg, tgp float64
		for _, p := range pairs {
			p := p
			es := enumerate.Explanations(e.G, p.Start, p.End, cfg)
			ctx := &measure.Context{
				G: e.G, Start: p.Start, End: p.End,
				SampleStarts: measure.SampleStartsOfType(
					e.G, e.G.Node(p.Start).Type, e.Opt.GlobalSamples, e.Opt.Seed),
			}
			tl += Time(func() { rank.General(ctx, es, local, 10) })
			tlp += Time(func() { rank.TopKDistributional(ctx, es, local, 10) })
			tg += Time(func() { rank.General(ctx, es, global, 10) })
			tgp += Time(func() { rank.TopKDistributional(ctx, es, global, 10) })
		}
		n := float64(len(pairs))
		t.Rows = append(t.Rows, []string{
			b.String(), Seconds(tl / n), Seconds(tlp / n), Seconds(tg / n), Seconds(tgp / n),
		})
	}
	return t
}
