package serve

import (
	"context"
	"log"
	"math/rand/v2"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"
)

// Overload resilience and lifecycle: admission control bounds the
// in-flight work per endpoint class so a request flood degrades into
// fast 429s instead of a goroutine pile-up; the panic middleware keeps
// one poisoned request from killing every other connection; the
// draining flag flips /healthz to 503 ahead of a graceful shutdown so
// load balancers stop routing before the listener closes.

// classLimiter bounds the concurrently admitted requests of one
// endpoint class with a buffered-channel semaphore. A request that
// cannot get a slot waits up to the configured bound, then is shed.
// nil means unlimited.
type classLimiter struct {
	slots chan struct{}
	wait  time.Duration
	shed  atomic.Uint64
}

func newClassLimiter(max int, wait time.Duration) *classLimiter {
	if max <= 0 {
		return nil
	}
	return &classLimiter{slots: make(chan struct{}, max), wait: wait}
}

// acquire takes a slot, waiting at most the limiter's wait bound (and
// no longer than the request lives). It reports whether the request
// was admitted; a false return is already counted as shed.
func (l *classLimiter) acquire(ctx context.Context) bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
	}
	if l.wait <= 0 {
		l.shed.Add(1)
		return false
	}
	t := time.NewTimer(l.wait)
	defer t.Stop()
	select {
	case l.slots <- struct{}{}:
		return true
	case <-t.C:
	case <-ctx.Done():
	}
	l.shed.Add(1)
	return false
}

func (l *classLimiter) release() { <-l.slots }

// inflight reports the currently admitted requests of this class.
func (l *classLimiter) inflight() int { return len(l.slots) }

// shedCount is nil-safe for the metrics closures.
func (l *classLimiter) shedCount() uint64 {
	if l == nil {
		return 0
	}
	return l.shed.Load()
}

// AdmissionDefaults sizes the limiters when main does not override
// them. Queries are CPU-bound, so admitting far more than the core
// count only grows tail latency; admin mutations serialise on the
// store's writer lock anyway, so two slots (one active, one queued)
// lose nothing.
func AdmissionDefaults() (queries, admin int) {
	q := 4 * runtime.GOMAXPROCS(0)
	if q < 8 {
		q = 8
	}
	return q, 2
}

// DefaultAdmissionWait bounds how long an over-limit request queues
// before shedding. Long enough to absorb a burst of fast queries,
// short enough that a shed client learns quickly.
const DefaultAdmissionWait = 250 * time.Millisecond

// SetAdmission configures the per-class limiters. Call before the
// handler starts serving. max <= 0 disables the class's limit; wait <=
// 0 sheds immediately when the class is full.
func (s *Server) SetAdmission(maxQueries, maxAdmin int, wait time.Duration) {
	s.queryLimit = newClassLimiter(maxQueries, wait)
	s.adminLimit = newClassLimiter(maxAdmin, wait)
}

// admit wraps a handler with class-based admission control: over the
// in-flight bound and past the wait bound, the request is shed with
// 429 and a Retry-After hint instead of joining an unbounded goroutine
// pile.
func (s *Server) admit(l *classLimiter, h http.HandlerFunc) http.HandlerFunc {
	if l == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !l.acquire(r.Context()) {
			w.Header().Set("Retry-After", retryAfter())
			writeJSON(w, http.StatusTooManyRequests,
				errorResponse{Error: "server overloaded, retry later"})
			return
		}
		defer l.release()
		h(w, r)
	}
}

// retryAfter is the 429 Retry-After hint with bounded server-side
// jitter. A fixed constant synchronises every shed client into one
// retry stampede that re-sheds itself indefinitely; spreading the hint
// uniformly over [1, 3] seconds decorrelates them. Whole seconds only —
// the header's delta-seconds form doesn't allow fractions.
func retryAfter() string {
	return strconv.Itoa(1 + rand.IntN(3)) // 1, 2 or 3
}

// recoverPanics is the outermost middleware: a panicking handler is
// logged with its stack and answered with a best-effort 500 instead of
// unwinding the connection goroutine. net/http would only kill that
// one connection, but through this the panic is counted, the stack is
// in the server log rather than lost to stderr interleaving, and the
// client gets a well-formed JSON error when the header is still
// unsent. http.ErrAbortHandler passes through — it is the sanctioned
// way to abort a response, not a bug.
func (s *Server) recoverPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.panics.Add(1)
				log.Printf("rexserve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				writeJSON(w, http.StatusInternalServerError,
					errorResponse{Error: "internal server error"})
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// StartDraining flips the server into drain mode: /healthz answers 503
// so load balancers and probes stop routing here, while in-flight and
// already-routed requests still complete normally. Call it before
// http.Server.Shutdown.
func (s *Server) StartDraining() { s.draining.Store(true) }
