// Package serve is the HTTP serving layer of one REX replica: the
// query, admin, observability and lifecycle endpoints that cmd/rexserve
// exposes. It is a library so the replicated serving tier — the
// rexrouter front tier, the internal/cluster chaos tests and the
// rexbench router suite — can boot real replicas (in-process or as
// child processes) instead of re-implementing the wire contract.
package serve

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rex"
	"rex/internal/obs"
	rexsync "rex/internal/sync"
)

// Server is the HTTP serving layer over one live rex.Store. All
// handlers are safe for concurrent use: every query handler pins the
// active snapshot once (a lock-free atomic load) and serves the whole
// request from that pinned (KB, Explainer, cache) version, so a delta
// swap mid-request can never mix generations. The admin endpoints
// mutate only through the store, which serialises writers internally.
type Server struct {
	store      *rex.Store
	kbPath     string        // source file for /admin/reload; "" when serving a built-in KB
	adminToken string        // bearer token required by /admin/*; "" leaves them open
	timeout    time.Duration // per-request deadline
	maxBatch   int           // largest accepted /batch pair count
	pprof      bool          // expose /debug/pprof/* (off by default)
	name       string        // instance name scoping this replica's failpoints
	started    time.Time

	explains atomic.Uint64 // completed /explain queries (incl. batch pairs)
	errors   atomic.Uint64 // queries that returned an error
	timeouts atomic.Uint64 // queries aborted by deadline or cancellation
	deltas   atomic.Uint64 // successfully applied /admin/delta requests
	reloads  atomic.Uint64 // successful /admin/reload requests
	panics   atomic.Uint64 // handler panics contained by the recovery middleware

	// draining flips /healthz to 503 ahead of a graceful shutdown so
	// load balancers stop routing before the listener closes.
	draining atomic.Bool

	// Admission control: per-class in-flight bounds (see lifecycle.go).
	// Configured by SetAdmission before serving starts; nil = unlimited.
	queryLimit *classLimiter
	adminLimit *classLimiter

	slow    *obs.SlowLog   // slow-query forensics ring, served at /admin/slow
	metrics *serverMetrics // Prometheus registry behind /metrics

	// sync is the optional anti-entropy wiring (see sync.go): the
	// engine behind POST /admin/sync plus the refuse-stale policy.
	sync             syncState
	syncKickFailures atomic.Uint64 // admin-triggered syncs that failed
}

// maxDeltaBytes bounds one streamed /admin/delta body. Deltas are
// line-oriented, so even modest limits admit hundreds of thousands of
// mutations; raise it here if an extraction pipeline batches bigger.
const maxDeltaBytes = 256 << 20

// Config parameterises one Server. The zero value serves a built-in KB
// with the default batch limit, no admin token, no pprof and no
// per-request deadline.
type Config struct {
	// KBPath is the source file for /admin/reload; "" disables reload.
	KBPath string
	// AdminToken gates /admin/* behind a bearer token; "" leaves them
	// open (only safe on a trusted listener).
	AdminToken string
	// Timeout is the per-request query deadline (0 = none).
	Timeout time.Duration
	// MaxBatch bounds one /batch pair count (<= 0 = 1024).
	MaxBatch int
	// Pprof exposes /debug/pprof/* when set.
	Pprof bool
	// Name scopes this replica's failpoint seams ("serve.<point>@<name>")
	// so multi-replica chaos tests can fault one instance at a time.
	// Empty uses the unscoped "serve.<point>" names.
	Name string
}

// New builds a Server over one live store. Admission control and the
// slow-query log start at their defaults; override with SetAdmission
// and SetSlowLog before the handler starts serving.
func New(store *rex.Store, cfg Config) *Server {
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 1024
	}
	s := &Server{
		store: store, kbPath: cfg.KBPath, adminToken: cfg.AdminToken,
		timeout: cfg.Timeout, maxBatch: maxBatch, pprof: cfg.Pprof,
		name: cfg.Name, started: time.Now(),
	}
	s.slow = obs.NewSlowLog(DefaultSlowThreshold, DefaultSlowRing, nil)
	q, a := AdmissionDefaults()
	s.SetAdmission(q, a, DefaultAdmissionWait)
	s.metrics = newServerMetrics(s)
	store.OnSwap(func(info rex.SwapInfo) {
		s.metrics.swapDuration.With().Observe(info.Elapsed.Seconds())
	})
	return s
}

// Default slow-query log configuration; main overrides both via
// -slow-threshold and -slow-log before serving starts.
const (
	DefaultSlowThreshold = 500 * time.Millisecond
	DefaultSlowRing      = 128
)

// SetSlowLog replaces the slow-query log. Call before the handler is
// serving — the /metrics closure reads the current s.slow at scrape
// time, so a replacement mid-traffic would race.
func (s *Server) SetSlowLog(threshold time.Duration, size int, w io.Writer) {
	s.slow = obs.NewSlowLog(threshold, size, w)
}

// authorizeAdmin gates the mutating admin endpoints: when the server
// was started with -admin-token, requests must carry it as a bearer
// token. Comparison is constant-time so the token cannot be guessed
// byte by byte. With no token configured the endpoints are open —
// suitable only when the listener itself is trusted (loopback, private
// network); the flag docs say so.
func (s *Server) authorizeAdmin(w http.ResponseWriter, r *http.Request) bool {
	if s.adminToken == "" {
		return true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(s.adminToken)) != 1 {
		writeJSON(w, http.StatusUnauthorized, errorResponse{Error: "missing or invalid admin token"})
		return false
	}
	return true
}

// handler builds the route table. Query and admin endpoints run behind
// their class's admission limiter (shed with 429 + Retry-After when
// over the in-flight bound); the cheap introspection endpoints are
// never shed — an overloaded server must still answer its probes and
// scrapes. The whole mux sits behind the panic-recovery middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/explain", s.instrument("/explain", s.admit(s.queryLimit, s.handleExplain)))
	mux.HandleFunc("/batch", s.instrument("/batch", s.admit(s.queryLimit, s.handleBatch)))
	mux.HandleFunc("/stats", s.instrument("/stats", s.handleStats))
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/admin/delta", s.instrument("/admin/delta", s.admit(s.adminLimit, s.handleAdminDelta)))
	mux.HandleFunc("/admin/reload", s.instrument("/admin/reload", s.admit(s.adminLimit, s.handleAdminReload)))
	mux.HandleFunc("/admin/slow", s.instrument("/admin/slow", s.handleSlow))
	// Anti-entropy: peers stream the checkpoint and WAL tail from here
	// (available during drain — a mid-transfer peer finishes) and the
	// router kicks lagging replicas via /admin/sync. Not behind the
	// admin admission limiter: a catch-up transfer can be long-lived and
	// must not starve delta acks (or vice versa).
	mux.HandleFunc("/admin/snapshot", s.instrument("/admin/snapshot", s.handleSnapshot))
	mux.HandleFunc("/admin/wal", s.instrument("/admin/wal", s.handleWALStream))
	mux.HandleFunc("/admin/sync", s.instrument("/admin/sync", s.handleSyncTrigger))
	if s.pprof {
		// Runtime profiling for performance work, opt-in via -pprof.
		// Registered explicitly rather than through the package's
		// DefaultServeMux side effect, so the endpoints exist only when
		// asked for; see DESIGN.md for usage. The profiles expose
		// operational internals — enable only on a trusted listener.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.recoverPanics(s.withRequestID(mux))
}

// explainResponse wraps one query result for the wire. Generation and
// Fingerprint identify the snapshot that computed the result, so
// clients (and the swap-under-traffic tests) can correlate answers
// with KB versions. Truncated mirrors Result.Truncated: the query
// exhausted its budget and the explanations are the best found within
// it, not the exhaustive ranking.
type explainResponse struct {
	Result      *rex.Result `json:"result"`
	Truncated   bool        `json:"truncated"`
	Generation  uint64      `json:"generation"`
	Fingerprint string      `json:"fingerprint"`
	ElapsedMS   float64     `json:"elapsed_ms"`
}

// budgetRequest carries the per-request work budget accepted by
// /explain (query parameters or JSON body fields) and /batch (top-level
// body fields, applied to every pair). Zero values fall back to the
// server's default budget flags.
type budgetRequest struct {
	// BudgetMS bounds the query's wall-clock milliseconds; on expiry
	// the best-so-far explanations are returned with truncated=true.
	BudgetMS int64 `json:"budget_ms"`
	// BudgetExpansions bounds enumeration node expansions —
	// deterministic truncation, unlike the wall-clock budget.
	BudgetExpansions int `json:"budget_expansions"`
}

func (b budgetRequest) budget() rex.Budget {
	return rex.Budget{
		MaxExpansions: b.BudgetExpansions,
		Timeout:       time.Duration(b.BudgetMS) * time.Millisecond,
	}
}

// validate rejects nonsensical budgets so a client typo (a negative
// value would silently mean "unbudgeted") gets a 400, not an unbounded
// query.
func (b budgetRequest) validate() error {
	if b.BudgetMS < 0 {
		return fmt.Errorf("budget_ms must be non-negative, got %d", b.BudgetMS)
	}
	if b.BudgetExpansions < 0 {
		return fmt.Errorf("budget_expansions must be non-negative, got %d", b.BudgetExpansions)
	}
	return nil
}

// parseBudgetQuery reads the budget knobs from URL query parameters.
func parseBudgetQuery(q url.Values) (budgetRequest, error) {
	var b budgetRequest
	if v := q.Get("budget_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return b, fmt.Errorf("invalid budget_ms %q", v)
		}
		b.BudgetMS = ms
	}
	if v := q.Get("budget_expansions"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return b, fmt.Errorf("invalid budget_expansions %q", v)
		}
		b.BudgetExpansions = n
	}
	return b, b.validate()
}

// errorResponse is the JSON error shape of every endpoint.
type errorResponse struct {
	Error string `json:"error"`
}

// batchRequest is the /batch input. The budget fields apply to every
// pair of the batch.
type batchRequest struct {
	Pairs            []rex.Pair `json:"pairs"`
	BudgetMS         int64      `json:"budget_ms"`
	BudgetExpansions int        `json:"budget_expansions"`
	// Trace includes each pair's per-stage trace in its result.
	Trace bool `json:"trace"`
}

// batchResponse is the /batch output: one entry per requested pair, in
// request order, each carrying either a result or that pair's error.
// The whole batch runs on one pinned snapshot.
type batchResponse struct {
	Results     []batchEntry `json:"results"`
	Generation  uint64       `json:"generation"`
	Fingerprint string       `json:"fingerprint"`
	ElapsedMS   float64      `json:"elapsed_ms"`
}

type batchEntry struct {
	Start     string      `json:"start"`
	End       string      `json:"end"`
	Result    *rex.Result `json:"result,omitempty"`
	Truncated bool        `json:"truncated,omitempty"`
	Error     string      `json:"error,omitempty"`
}

// swapResponse reports a completed snapshot swap from the admin
// endpoints.
type swapResponse struct {
	Generation   uint64 `json:"generation"`
	Fingerprint  string `json:"fingerprint"`
	Nodes        int    `json:"nodes"`
	Edges        int    `json:"edges"`
	Labels       int    `json:"labels"`
	NodesAdded   int    `json:"nodes_added,omitempty"`
	LabelsAdded  int    `json:"labels_added,omitempty"`
	EdgesAdded   int    `json:"edges_added,omitempty"`
	EdgesRemoved int    `json:"edges_removed,omitempty"`
	TypesSet     int    `json:"types_set,omitempty"`
	// Overlay/Compacted/OverlayDepth describe how the swap was built:
	// as an O(delta) overlay over the previous CSR, and whether the
	// overlay chain was folded back into fresh arrays.
	Overlay      bool `json:"overlay,omitempty"`
	Compacted    bool `json:"compacted,omitempty"`
	OverlayDepth int  `json:"overlay_depth,omitempty"`
	// ResultsCarried/ResultsDropped report swap-time cache carry-over:
	// previous-generation results that survived into, or were
	// invalidated out of, the new snapshot's cache.
	ResultsCarried int `json:"results_carried,omitempty"`
	ResultsDropped int `json:"results_dropped,omitempty"`
}

func swapResponseOf(info rex.SwapInfo) swapResponse {
	return swapResponse{
		Generation:     info.Generation,
		Fingerprint:    info.Fingerprint,
		Nodes:          info.KB.Nodes,
		Edges:          info.KB.Edges,
		Labels:         info.KB.Labels,
		NodesAdded:     info.NodesAdded,
		LabelsAdded:    info.LabelsAdded,
		EdgesAdded:     info.EdgesAdded,
		EdgesRemoved:   info.EdgesRemoved,
		TypesSet:       info.TypesSet,
		Overlay:        info.Overlay,
		Compacted:      info.Compacted,
		OverlayDepth:   info.OverlayDepth,
		ResultsCarried: info.ResultsCarried,
		ResultsDropped: info.ResultsDropped,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// decodeStatus distinguishes an oversized request body (413) from
// malformed JSON (400).
func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// errStatus maps a query error to its HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, rex.ErrUnknownEntity):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// note updates the per-query counters.
func (s *Server) note(err error) {
	s.explains.Add(1)
	if err == nil {
		return
	}
	s.errors.Add(1)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.timeouts.Add(1)
	}
}

// requestCtx derives the per-request deadline context.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// handleExplain answers GET /explain?start=a&end=b and the equivalent
// POST with a JSON {"start","end"} body. Both forms accept the
// per-request budget knobs budget_ms and budget_expansions; requests
// without them run under the server's default budget flags.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var p rex.Pair
	var bud budgetRequest
	var wantTrace bool
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		p.Start = q.Get("start")
		p.End = q.Get("end")
		wantTrace = q.Get("trace") == "1"
		var err error
		if bud, err = parseBudgetQuery(q); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
	case http.MethodPost:
		body := http.MaxBytesReader(w, r.Body, 1<<20)
		var req struct {
			rex.Pair
			budgetRequest
			Trace bool `json:"trace"`
		}
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeJSON(w, decodeStatus(err), errorResponse{Error: "invalid JSON body: " + err.Error()})
			return
		}
		p, bud, wantTrace = req.Pair, req.budgetRequest, req.Trace
		if err := bud.validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
	default:
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET or POST"})
		return
	}
	if p.Start == "" || p.End == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "start and end are required"})
		return
	}
	if !s.refuseWhileSyncing(w) {
		return
	}
	// Chaos seam: an injected error is a broken replica (500), an
	// injected stall is a lagging one — both before any engine work, so
	// faults never corrupt state.
	if err := s.failpoint(FailRespond); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	reqID := RequestIDFrom(r.Context())
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	// Every query runs traced — the trace is O(stages) atomics per
	// query and feeds the stage histograms and the slow-query log.
	// The trace=1 flag only controls whether the report reaches the
	// response.
	ctx = rex.WithTrace(ctx)
	snap := s.store.Current() // pin one KB version for the whole request
	t0 := time.Now()
	var res *rex.Result
	var err error
	if b := bud.budget(); b != (rex.Budget{}) {
		res, err = snap.Explainer.ExplainBudgeted(ctx, p.Start, p.End, b)
	} else {
		res, err = snap.Explainer.ExplainContext(ctx, p.Start, p.End)
	}
	s.note(err)
	if res != nil && res.Trace != nil {
		res.Trace.RequestID = reqID // the trace is a private per-query report
	}
	s.noteQuery("/explain", reqID, p, bud, res, err, time.Since(t0), snap.Generation)
	if err != nil {
		writeJSON(w, errStatus(err), errorResponse{Error: err.Error()})
		return
	}
	if !wantTrace {
		// tracedResult hands each caller a private shallow copy, so
		// clearing the report cannot corrupt cached results.
		res.Trace = nil
	}
	writeJSON(w, http.StatusOK, explainResponse{
		Result:      res,
		Truncated:   res.Truncated,
		Generation:  snap.Generation,
		Fingerprint: snap.Fingerprint,
		ElapsedMS:   float64(time.Since(t0).Microseconds()) / 1000,
	})
}

// handleBatch answers POST /batch with {"pairs":[{"start","end"},...]},
// fanning the pairs out over the explainer's worker pool with per-pair
// error isolation. All pairs run on the same pinned snapshot.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	// Bound the body before decoding: the pair-count limit below cannot
	// protect memory once an unbounded payload has been parsed. Entity
	// names are short, so 1 KiB per allowed pair is generous.
	body := http.MaxBytesReader(w, r.Body, 1<<20+int64(s.maxBatch)*1024)
	var req batchRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, decodeStatus(err), errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if len(req.Pairs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "pairs must be non-empty"})
		return
	}
	if len(req.Pairs) > s.maxBatch {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Pairs), s.maxBatch)})
		return
	}
	bud := budgetRequest{BudgetMS: req.BudgetMS, BudgetExpansions: req.BudgetExpansions}
	if err := bud.validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if !s.refuseWhileSyncing(w) {
		return
	}
	if err := s.failpoint(FailRespond); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	reqID := RequestIDFrom(r.Context())
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	snap := s.store.Current()
	t0 := time.Now()
	// Traced gives every pair its own trace (stage histograms, slow
	// log); the request's trace flag decides whether reports reach the
	// response.
	results := snap.Explainer.BatchExplain(ctx, req.Pairs, rex.BatchOptions{Budget: bud.budget(), Traced: true})
	resp := batchResponse{
		Results:     make([]batchEntry, len(results)),
		Generation:  snap.Generation,
		Fingerprint: snap.Fingerprint,
	}
	for i, br := range results {
		s.note(br.Err)
		// Per-pair wall time comes from the trace; the request-level
		// elapsed would blame every pair for the whole batch.
		var pairElapsed time.Duration
		if br.Result != nil && br.Result.Trace != nil {
			br.Result.Trace.RequestID = reqID
			pairElapsed = time.Duration(br.Result.Trace.TotalMS * float64(time.Millisecond))
		}
		s.noteQuery("/batch", reqID, br.Pair, bud, br.Result, br.Err, pairElapsed, snap.Generation)
		entry := batchEntry{Start: br.Pair.Start, End: br.Pair.End, Result: br.Result}
		if br.Result != nil {
			entry.Truncated = br.Result.Truncated
			if !req.Trace {
				// Traced results are private shallow copies, so
				// stripping the report cannot touch cached entries.
				br.Result.Trace = nil
			}
		}
		if br.Err != nil {
			entry.Error = br.Err.Error()
		}
		resp.Results[i] = entry
	}
	resp.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// handleAdminDelta answers POST /admin/delta: the body is a streamed
// mutation log in the delta wire format (node/label/edge records plus
// settype/deledge). On success the store has atomically swapped to the
// new generation and the response describes it; a delta of pure no-ops
// publishes nothing and reports the unchanged generation. On any error
// the active snapshot is unchanged (422 for parse/apply failures).
func (s *Server) handleAdminDelta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if !s.refuseDuringDrain(w) || !s.authorizeAdmin(w, r) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxDeltaBytes)
	info, err := s.store.Apply(body)
	if err != nil {
		status := http.StatusUnprocessableEntity
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	s.deltas.Add(1)
	writeJSON(w, http.StatusOK, swapResponseOf(info))
}

// handleAdminReload answers POST /admin/reload: re-read the knowledge
// base from the file the server was started with and swap it in
// wholesale — the recovery path when the delta stream and the
// authoritative file have diverged.
func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if !s.refuseDuringDrain(w) || !s.authorizeAdmin(w, r) {
		return
	}
	if s.kbPath == "" {
		writeJSON(w, http.StatusConflict,
			errorResponse{Error: "server is serving a built-in knowledge base; start with -kb to enable reload"})
		return
	}
	info, err := s.store.ReloadFrom(s.kbPath)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.reloads.Add(1)
	writeJSON(w, http.StatusOK, swapResponseOf(info))
}

// refuseDuringDrain sheds a mutating admin request while the server is
// draining. In-flight queries finishing is the drain contract; a new
// mutation, by contrast, would race Store.Close — the shutdown sequence
// closes the journal as soon as http.Server.Shutdown returns, and an
// Apply/ReloadFrom admitted after the drain flag flips could still be
// writing the WAL at that point. 503 tells the router/operator to send
// the mutation to a replica that is staying up.
func (s *Server) refuseDuringDrain(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return true
	}
	writeJSON(w, http.StatusServiceUnavailable,
		errorResponse{Error: "server is draining; mutations refused"})
	return false
}

// statsResponse is the /stats snapshot.
type statsResponse struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Version       versionInfo    `json:"version"`
	KB            rex.Stats      `json:"kb"`
	Cache         rex.CacheStats `json:"cache"`
	Queries       queryStats     `json:"queries"`
	Live          liveStats      `json:"live"`
	// Sync is the replica catch-up section, present when the server was
	// started with peers (-peers).
	Sync *rexsync.Stats `json:"sync,omitempty"`
}

// versionInfo identifies the active KB snapshot and the swap history.
type versionInfo struct {
	Generation  uint64 `json:"generation"`
	Fingerprint string `json:"fingerprint"`
	Swaps       uint64 `json:"swaps"`
	Deltas      uint64 `json:"deltas_applied"`
	Reloads     uint64 `json:"reloads"`
}

type queryStats struct {
	Explains uint64 `json:"explains"`
	Errors   uint64 `json:"errors"`
	Timeouts uint64 `json:"timeouts"`
}

// liveStats is the write-path and carry-over section of /stats: overlay
// state of the active snapshot plus cumulative carry-over counters.
type liveStats struct {
	OverlayDepth   int    `json:"overlay_depth"`
	Compactions    uint64 `json:"compactions"`
	ResultsCarried uint64 `json:"results_carried"`
	ResultsDropped uint64 `json:"results_dropped"`
	MemoPromotions uint64 `json:"memo_promotions"`
}

func liveStatsOf(ls rex.LiveStats) liveStats {
	return liveStats{
		OverlayDepth:   ls.OverlayDepth,
		Compactions:    ls.Compactions,
		ResultsCarried: ls.ResultsCarried,
		ResultsDropped: ls.ResultsDropped,
		MemoPromotions: ls.MemoPromotions,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Current()
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Version: versionInfo{
			Generation:  snap.Generation,
			Fingerprint: snap.Fingerprint,
			Swaps:       s.store.Swaps(),
			Deltas:      s.deltas.Load(),
			Reloads:     s.reloads.Load(),
		},
		KB:    snap.KB.Stats(),
		Cache: snap.Explainer.CacheStats(),
		Queries: queryStats{
			Explains: s.explains.Load(),
			Errors:   s.errors.Load(),
			Timeouts: s.timeouts.Load(),
		},
		Live: liveStatsOf(s.store.LiveStats()),
		Sync: syncStatsOf(s.syncEngine()),
	})
}

// healthResponse is the /healthz liveness answer, carrying the active
// KB version so probes and the router's generation-aware pinning can
// watch swaps land, the explicit draining flag, plus build
// identification so a fleet rollout can confirm which binary answered.
type healthResponse struct {
	Status      string `json:"status"`
	Draining    bool   `json:"draining"`
	Generation  uint64 `json:"generation"`
	Fingerprint string `json:"fingerprint"`
	// Syncing reports a replica catch-up in progress: the generation and
	// fingerprint above are honest but possibly behind the fleet.
	Syncing   bool   `json:"syncing,omitempty"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Chaos seam: a flapping health endpoint while the query path still
	// works — the health checker's view and the client's view diverge.
	if err := s.failpoint(FailHealthz); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	snap := s.store.Current()
	b := rex.Build()
	resp := healthResponse{
		Status:      "ok",
		Generation:  snap.Generation,
		Fingerprint: snap.Fingerprint,
		GoVersion:   b.GoVersion,
		Revision:    b.Revision,
	}
	if e := s.syncEngine(); e != nil && e.Syncing() {
		resp.Syncing = true
	}
	// During a graceful shutdown the probe flips to 503 before the
	// listener closes, so load balancers drain this instance while its
	// in-flight (and still-routed) requests finish normally.
	if s.draining.Load() {
		resp.Status = "draining"
		resp.Draining = true
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
