package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rex"
	"rex/internal/fail"
)

// durableServer builds a server over a crash-safe store journaling into
// dir.
func durableServer(t *testing.T, dir string) *Server {
	t.Helper()
	k, err := rex.ReadKB(strings.NewReader(liveBaseTSV))
	if err != nil {
		t.Fatal(err)
	}
	store, err := rex.NewStore(k, rex.Options{
		Measure: "size", TopK: 100, MaxPatternSize: 3, CacheSize: 64,
		Durability: rex.DurabilityOptions{Dir: dir, Fsync: "always", CheckpointEvery: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return New(store, Config{Timeout: time.Minute, MaxBatch: 8})
}

func TestHealthzDrainFlip(t *testing.T) {
	srv := liveServer(t, "")
	h := srv.Handler()
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy status = %d", rec.Code)
	}
	srv.StartDraining()
	rec = get(t, h, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", rec.Code)
	}
	var resp healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "draining" {
		t.Fatalf("draining body status = %q", resp.Status)
	}
	// Queries keep answering during the drain — only the probe flips.
	if _, code := explain(t, h, "a", "b"); code != http.StatusOK {
		t.Fatalf("query during drain = %d, want 200", code)
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	srv := liveServer(t, "")
	// One slot, shed immediately when full.
	srv.SetAdmission(1, 1, 0)
	h := srv.Handler()

	// Park a request inside the single query slot via the engine's
	// failpoint: the query blocks until released, holding its admission
	// slot the whole time.
	defer fail.Reset()
	inside := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	fail.EnableFunc("explain.query", func() error {
		once.Do(func() { close(inside); <-release })
		return nil
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, h, "/explain?start=a&end=b")
	}()
	<-inside

	rec := get(t, h, "/explain?start=a&end=b")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit status = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	// Probe and scrape endpoints are never shed.
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz shed: %d", rec.Code)
	}
	if rec := get(t, h, "/metrics"); rec.Code != http.StatusOK {
		t.Fatalf("metrics shed: %d", rec.Code)
	}
	if got := srv.queryLimit.shedCount(); got != 1 {
		t.Fatalf("shed count = %d, want 1", got)
	}
	close(release)
	wg.Wait()
	fail.Reset()

	// With the slot free again, requests are admitted.
	if rec := get(t, h, "/explain?start=a&end=b"); rec.Code != http.StatusOK {
		t.Fatalf("post-release status = %d", rec.Code)
	}
	// The shed counter is exported.
	if body := get(t, h, "/metrics").Body.String(); !strings.Contains(body, `rex_requests_shed_total{class="query"} 1`) {
		t.Error("shed counter missing from /metrics")
	}
}

// TestSustainedOverloadRecovers hammers a one-slot server with far
// more concurrent requests than it admits: every request must answer
// 200 or 429 (with Retry-After), no panics, and the in-flight count
// must drain back to zero — the admission gate leaks no slots.
func TestSustainedOverloadRecovers(t *testing.T) {
	srv := liveServer(t, "")
	srv.SetAdmission(1, 1, 0)
	h := srv.Handler()

	const clients = 32
	var ok, shed atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/explain?start=a&end=b", nil))
			switch rec.Code {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				if rec.Header().Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				shed.Add(1)
			default:
				t.Errorf("unexpected status %d under overload", rec.Code)
			}
		}()
	}
	wg.Wait()

	if ok.Load() == 0 {
		t.Error("no request admitted under overload")
	}
	if ok.Load()+shed.Load() != clients {
		t.Errorf("accounted %d+%d requests, want %d", ok.Load(), shed.Load(), clients)
	}
	if srv.panics.Load() != 0 {
		t.Errorf("%d panics under overload", srv.panics.Load())
	}
	if got := srv.queryLimit.inflight(); got != 0 {
		t.Errorf("in-flight = %d after the storm, want 0 (leaked admission slot)", got)
	}
	if got := srv.queryLimit.shedCount(); got != shed.Load() {
		t.Errorf("shed counter = %d, clients saw %d", got, shed.Load())
	}
	// The server still answers normally afterwards.
	if rec := get(t, h, "/explain?start=a&end=b"); rec.Code != http.StatusOK {
		t.Fatalf("post-storm status = %d", rec.Code)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	defer fail.Reset()
	srv := liveServer(t, "")
	h := srv.Handler()
	fail.EnableFunc("explain.query", func() error { panic("injected handler bug") })
	rec := get(t, h, "/explain?start=a&end=b")
	fail.Reset()
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler status = %d, want 500", rec.Code)
	}
	if srv.panics.Load() != 1 {
		t.Fatalf("panic counter = %d, want 1", srv.panics.Load())
	}
	// The server keeps serving afterwards.
	if _, code := explain(t, h, "a", "b"); code != http.StatusOK {
		t.Fatalf("post-panic query = %d, want 200", code)
	}
	if body := get(t, h, "/metrics").Body.String(); !strings.Contains(body, "rex_handler_panics_total 1") {
		t.Error("panic counter missing from /metrics")
	}
}

// errReader simulates a client disconnecting mid-stream: some valid
// delta bytes, then a read error — what net/http's body reader returns
// when the peer goes away.
type errReader struct {
	prefix io.Reader
	err    error
}

func (r *errReader) Read(p []byte) (int, error) {
	n, err := r.prefix.Read(p)
	if err == io.EOF {
		return n, r.err
	}
	return n, err
}

func TestAdminDeltaClientDisconnectLeavesStoreIntact(t *testing.T) {
	srv := durableServer(t, t.TempDir())
	h := srv.Handler()
	gen := srv.store.Generation()
	fp := srv.store.Current().Fingerprint

	body := &errReader{
		prefix: strings.NewReader("edge\tc\td\tknows\n"),
		err:    errors.New("client disconnected"),
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/delta", body))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("disconnected delta status = %d, want 422", rec.Code)
	}
	if srv.store.Generation() != gen || srv.store.Current().Fingerprint != fp {
		t.Fatal("aborted delta disturbed the active snapshot")
	}
	// Nothing was acknowledged, so nothing may have reached the WAL.
	if ds := srv.store.DurabilityStats(); ds.Appends != 0 {
		t.Fatalf("aborted delta reached the WAL: %+v", ds)
	}
	// The same delta, fully delivered, applies cleanly afterwards.
	rec = postBody(t, h, "/admin/delta", "edge\tc\td\tknows\n")
	if rec.Code != http.StatusOK {
		t.Fatalf("retry status = %d: %s", rec.Code, rec.Body)
	}
	if ds := srv.store.DurabilityStats(); ds.Appends != 1 {
		t.Fatalf("retried delta missing from the WAL: %+v", ds)
	}
}

func TestOversizedBodies413(t *testing.T) {
	srv := liveServer(t, "")
	h := srv.Handler()
	// A syntactically valid JSON prefix, so the decoder keeps reading
	// until MaxBytesReader cuts it off — the error must then map to 413,
	// not be mistaken for malformed JSON (400).
	big := `{"start":"` + strings.Repeat("a", 2<<20) + `"}`
	for _, path := range []string{"/explain", "/batch"} {
		rec := postBody(t, h, path, big)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body status = %d, want 413", path, rec.Code)
		}
	}
}

func TestDurabilityMetricsExported(t *testing.T) {
	srv := durableServer(t, t.TempDir())
	h := srv.Handler()
	if rec := postBody(t, h, "/admin/delta", "edge\tc\td\tknows\n"); rec.Code != http.StatusOK {
		t.Fatalf("delta status = %d: %s", rec.Code, rec.Body)
	}
	body := get(t, h, "/metrics").Body.String()
	for _, line := range []string{
		"rex_durability_enabled 1",
		"rex_wal_appends_total 1",
		"rex_wal_fsyncs_total 1",
		"rex_checkpoint_generation 1",
		"rex_draining 0",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("metrics missing %q", line)
		}
	}
}
