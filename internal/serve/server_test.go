package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rex"
)

func testServer(t *testing.T, timeout time.Duration) *Server {
	t.Helper()
	store, err := rex.NewStore(rex.SampleKB(), rex.Options{Measure: "size", TopK: 5, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	return New(store, Config{Timeout: timeout, MaxBatch: 8})
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	return rec
}

func TestExplainEndpoint(t *testing.T) {
	h := testServer(t, time.Minute).Handler()
	rec := get(t, h, "/explain?start=brad_pitt&end=angelina_jolie")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result == nil || len(resp.Result.Explanations) == 0 {
		t.Fatalf("no explanations in %s", rec.Body)
	}
	if !strings.Contains(resp.Result.Explanations[0].Pattern, "spouse") {
		t.Errorf("top pattern = %q, want the spouse edge", resp.Result.Explanations[0].Pattern)
	}

	// POST body form.
	rec = post(t, h, "/explain", `{"start":"brad_pitt","end":"angelina_jolie"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST status = %d, body %s", rec.Code, rec.Body)
	}
}

func TestExplainEndpointErrors(t *testing.T) {
	h := testServer(t, time.Minute).Handler()
	if rec := get(t, h, "/explain?start=brad_pitt"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing end: status = %d", rec.Code)
	}
	if rec := get(t, h, "/explain?start=brad_pitt&end=ghost"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown entity: status = %d", rec.Code)
	}
	if rec := post(t, h, "/explain", "{nope"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON: status = %d", rec.Code)
	}
}

func TestExplainTimeout(t *testing.T) {
	h := testServer(t, time.Nanosecond).Handler()
	rec := get(t, h, "/explain?start=brad_pitt&end=angelina_jolie")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", rec.Code, rec.Body)
	}
}

func TestBatchEndpoint(t *testing.T) {
	s := testServer(t, time.Minute)
	h := s.Handler()
	body := `{"pairs":[
		{"start":"brad_pitt","end":"angelina_jolie"},
		{"start":"ghost","end":"brad_pitt"},
		{"start":"kate_winslet","end":"leonardo_dicaprio"}]}`
	rec := post(t, h, "/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Result == nil || resp.Results[0].Error != "" {
		t.Errorf("pair 0 should succeed: %+v", resp.Results[0])
	}
	if resp.Results[1].Result != nil || !strings.Contains(resp.Results[1].Error, "unknown entity") {
		t.Errorf("pair 1 should fail with unknown entity: %+v", resp.Results[1])
	}
	if resp.Results[2].Result == nil {
		t.Errorf("pair 2 should succeed despite pair 1 failing: %+v", resp.Results[2])
	}
}

func TestBatchEndpointLimits(t *testing.T) {
	h := testServer(t, time.Minute).Handler() // maxBatch = 8
	if rec := post(t, h, "/batch", `{"pairs":[]}`); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d", rec.Code)
	}
	pairs := make([]string, 9)
	for i := range pairs {
		pairs[i] = `{"start":"a","end":"b"}`
	}
	body := `{"pairs":[` + strings.Join(pairs, ",") + `]}`
	if rec := post(t, h, "/batch", body); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status = %d", rec.Code)
	}
	if rec := get(t, h, "/batch"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /batch: status = %d", rec.Code)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	s := testServer(t, time.Minute)
	h := s.Handler()
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status = %d", rec.Code)
	}
	var hr healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Generation != 1 || hr.Fingerprint == "" {
		t.Errorf("healthz = %+v, want ok/gen 1/non-empty fingerprint", hr)
	}

	// Two identical queries: the second must be served by the cache.
	get(t, h, "/explain?start=brad_pitt&end=angelina_jolie")
	get(t, h, "/explain?start=brad_pitt&end=angelina_jolie")

	rec = get(t, h, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.KB.Nodes == 0 {
		t.Error("stats KB empty")
	}
	if st.Version.Generation != 1 || st.Version.Swaps != 0 || st.Version.Fingerprint != hr.Fingerprint {
		t.Errorf("version = %+v, want generation 1, 0 swaps, healthz fingerprint", st.Version)
	}
	if st.Queries.Explains != 2 {
		t.Errorf("explains = %d, want 2", st.Queries.Explains)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
}

// TestPprofEndpointsGated checks that the profiling endpoints exist only
// when -pprof is set: off by default (404), fully served when enabled.
func TestPprofEndpointsGated(t *testing.T) {
	srv := testServer(t, time.Second)
	if rec := get(t, srv.Handler(), "/debug/pprof/heap"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof disabled: GET /debug/pprof/heap = %d, want 404", rec.Code)
	}

	srv.pprof = true
	h := srv.Handler()
	if rec := get(t, h, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Errorf("pprof index = %d, want 200", rec.Code)
	}
	rec := get(t, h, "/debug/pprof/heap")
	if rec.Code != http.StatusOK {
		t.Errorf("heap profile = %d, want 200", rec.Code)
	}
	// Enabling pprof must not shadow the query routes.
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz with pprof on = %d, want 200", rec.Code)
	}
}

// TestExplainBudgetKnobs drives the per-request anytime budget through
// both /explain forms and /batch: a deterministic one-expansion budget
// must answer 200 with truncated=true (never a 504), an invalid knob is
// a 400, and unbudgeted requests stay exhaustive.
func TestExplainBudgetKnobs(t *testing.T) {
	h := testServer(t, time.Minute).Handler()

	rec := get(t, h, "/explain?start=brad_pitt&end=angelina_jolie&budget_expansions=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("budgeted GET status = %d, body %s", rec.Code, rec.Body)
	}
	var resp explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated || resp.Result == nil || !resp.Result.Truncated {
		t.Fatalf("one-expansion budget not reported truncated: %s", rec.Body)
	}

	rec = post(t, h, "/explain", `{"start":"brad_pitt","end":"angelina_jolie","budget_expansions":1,"budget_ms":60000}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("budgeted POST status = %d, body %s", rec.Code, rec.Body)
	}
	resp = explainResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Fatalf("budgeted POST not reported truncated: %s", rec.Body)
	}

	// Unbudgeted requests remain exhaustive.
	rec = get(t, h, "/explain?start=brad_pitt&end=angelina_jolie")
	resp = explainResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Truncated {
		t.Fatalf("unbudgeted request reported truncated: %s", rec.Body)
	}

	if rec := get(t, h, "/explain?start=a&end=b&budget_ms=nope"); rec.Code != http.StatusBadRequest {
		t.Errorf("invalid budget_ms: status = %d, want 400", rec.Code)
	}

	rec = post(t, h, "/batch", `{"pairs":[{"start":"brad_pitt","end":"angelina_jolie"},{"start":"tom_cruise","end":"nicole_kidman"}],"budget_expansions":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("budgeted batch status = %d, body %s", rec.Code, rec.Body)
	}
	var bresp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &bresp); err != nil {
		t.Fatal(err)
	}
	for i, e := range bresp.Results {
		if e.Error != "" {
			t.Fatalf("batch entry %d: %s", i, e.Error)
		}
		if !e.Truncated {
			t.Errorf("batch entry %d not truncated under a one-expansion budget", i)
		}
	}
}

// TestBudgetKnobsRejectNegative: a negative budget would silently mean
// "unbudgeted"; the API must reject it instead.
func TestBudgetKnobsRejectNegative(t *testing.T) {
	h := testServer(t, time.Minute).Handler()
	if rec := get(t, h, "/explain?start=a&end=b&budget_ms=-50"); rec.Code != http.StatusBadRequest {
		t.Errorf("negative budget_ms GET: status = %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/explain?start=a&end=b&budget_expansions=-1"); rec.Code != http.StatusBadRequest {
		t.Errorf("negative budget_expansions GET: status = %d, want 400", rec.Code)
	}
	if rec := post(t, h, "/explain", `{"start":"a","end":"b","budget_ms":-50}`); rec.Code != http.StatusBadRequest {
		t.Errorf("negative budget_ms POST: status = %d, want 400", rec.Code)
	}
	if rec := post(t, h, "/batch", `{"pairs":[{"start":"a","end":"b"}],"budget_expansions":-2}`); rec.Code != http.StatusBadRequest {
		t.Errorf("negative budget_expansions batch: status = %d, want 400", rec.Code)
	}
}
