package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// Request identity: every request gets an X-Request-Id, minted here
// unless the caller (a client, or the router tier duplicating a hedged
// attempt) already supplied one. The ID rides the request context into
// the handlers, is echoed on the response, and is stamped into the
// query trace and the slow-query log — so a hedged duplicate is
// attributable across tiers: both attempts of one logical query carry
// the same ID, and the router's logs line up with each replica's
// forensics.

// RequestIDHeader is the wire header carrying the request ID.
const RequestIDHeader = "X-Request-Id"

type requestIDKey struct{}

// maxRequestIDLen caps an attacker-supplied ID before it enters logs
// and traces; overlong IDs are replaced, not truncated, so a spoofed
// prefix cannot impersonate another request.
const maxRequestIDLen = 64

// newRequestID mints a 16-hex-char random ID. crypto/rand never fails
// on the supported platforms; on the impossible error path the constant
// fallback still yields a well-formed (if non-unique) ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// withRequestID is the outermost-but-one middleware: it adopts a
// well-formed incoming X-Request-Id (trusting the router tier to mint
// them), mints one otherwise, echoes it on the response, and threads it
// through the context for handlers and forensics.
func (s *Server) withRequestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" || len(id) > maxRequestIDLen {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		h.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

// RequestIDFrom returns the request ID threaded by withRequestID, or
// "" outside a request.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
