package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"rex"
	"rex/internal/fail"
)

// namedServer is liveServer plus an instance name, for the per-replica
// failpoint seams.
func namedServer(t *testing.T, name string) *Server {
	t.Helper()
	k, err := rex.ReadKB(strings.NewReader(liveBaseTSV))
	if err != nil {
		t.Fatal(err)
	}
	store, err := rex.NewStore(k, rex.Options{
		Measure: "size", TopK: 100, MaxPatternSize: 3, CacheSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(store, Config{Timeout: time.Minute, MaxBatch: 8, Name: name})
}

func TestHealthzBodyCarriesDrainingFlag(t *testing.T) {
	srv := liveServer(t, "")
	h := srv.Handler()

	var resp healthResponse
	if err := json.Unmarshal(get(t, h, "/healthz").Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Draining {
		t.Error("healthy replica reports draining=true")
	}
	if resp.Generation == 0 || resp.Fingerprint == "" {
		t.Errorf("healthz missing generation/fingerprint: %+v", resp)
	}

	srv.StartDraining()
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Draining || resp.Status != "draining" {
		t.Errorf("draining healthz body = %+v, want draining=true status=draining", resp)
	}
	// The version info survives the flip: a router can still read which
	// generation the draining replica holds.
	if resp.Generation == 0 || resp.Fingerprint == "" {
		t.Errorf("draining healthz lost version info: %+v", resp)
	}
}

func TestRequestIDMintedAndEchoed(t *testing.T) {
	srv := liveServer(t, "")
	h := srv.Handler()

	// No inbound ID: the server mints one and echoes it.
	rec := get(t, h, "/explain?start=a&end=b&trace=1")
	minted := rec.Header().Get(RequestIDHeader)
	if minted == "" {
		t.Fatal("response without X-Request-Id")
	}
	var resp explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result == nil || resp.Result.Trace == nil {
		t.Fatal("traced explain returned no trace")
	}
	if resp.Result.Trace.RequestID != minted {
		t.Errorf("trace request_id = %q, header = %q", resp.Result.Trace.RequestID, minted)
	}

	// An inbound ID (the router tier labelling a hedged attempt) is
	// adopted verbatim, so both tiers log the same identity.
	req := httptest.NewRequest(http.MethodGet, "/explain?start=a&end=b&trace=1", nil)
	req.Header.Set(RequestIDHeader, "hedge-attempt-2")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "hedge-attempt-2" {
		t.Errorf("echoed id = %q, want the inbound one", got)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result.Trace.RequestID != "hedge-attempt-2" {
		t.Errorf("trace request_id = %q, want hedge-attempt-2", resp.Result.Trace.RequestID)
	}

	// An overlong (attacker-shaped) ID is replaced, not propagated.
	req = httptest.NewRequest(http.MethodGet, "/explain?start=a&end=b", nil)
	req.Header.Set(RequestIDHeader, strings.Repeat("x", 200))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); len(got) > maxRequestIDLen || strings.Contains(got, "xxx") {
		t.Errorf("overlong inbound id propagated: %q", got)
	}
}

func TestRequestIDReachesSlowLog(t *testing.T) {
	srv := liveServer(t, "")
	srv.SetSlowLog(0, 16, nil) // threshold 0: record every query
	h := srv.Handler()

	req := httptest.NewRequest(http.MethodGet, "/explain?start=a&end=b", nil)
	req.Header.Set(RequestIDHeader, "slow-forensics-1")
	h.ServeHTTP(httptest.NewRecorder(), req)

	entries := srv.slow.Entries()
	if len(entries) == 0 {
		t.Fatal("slow log empty")
	}
	if entries[0].RequestID != "slow-forensics-1" {
		t.Errorf("slow entry request_id = %q, want slow-forensics-1", entries[0].RequestID)
	}
	// Batch pairs inherit the request's ID too.
	req = httptest.NewRequest(http.MethodPost, "/batch",
		strings.NewReader(`{"pairs":[{"start":"a","end":"b"}]}`))
	req.Header.Set(RequestIDHeader, "batch-forensics-1")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if entries := srv.slow.Entries(); entries[0].RequestID != "batch-forensics-1" {
		t.Errorf("batch slow entry request_id = %q", entries[0].RequestID)
	}
}

// TestRetryAfterJitter draws the 429 hint many times: every value must
// stay inside the documented [1, 3] second bound, and the draws must
// not all collapse onto one value — the fix exists to decorrelate shed
// clients.
func TestRetryAfterJitter(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		v := retryAfter()
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 3 {
			t.Fatalf("retryAfter() = %q, want an integer in [1,3]", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Errorf("200 draws yielded a single value %v — no jitter", seen)
	}
}

func TestAdminMutationsRefusedDuringDrain(t *testing.T) {
	srv := liveServer(t, "ignored.tsv")
	h := srv.Handler()
	gen := srv.store.Generation()
	srv.StartDraining()

	for _, path := range []string{"/admin/delta", "/admin/reload"} {
		rec := postBody(t, h, path, "edge\tc\td\tknows\n")
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s during drain = %d, want 503", path, rec.Code)
		}
	}
	if srv.store.Generation() != gen {
		t.Error("drained server still applied a mutation")
	}
	// Queries still answer: the drain bleeds routing, it doesn't cut
	// already-routed work.
	if _, code := explain(t, h, "a", "b"); code != http.StatusOK {
		t.Errorf("query during drain = %d, want 200", code)
	}
}

// TestInstanceScopedFailpoints proves the chaos lever the cluster tests
// rely on: arming "serve.respond@r1" faults exactly replica r1, and the
// unscoped "serve.respond" faults every replica.
func TestInstanceScopedFailpoints(t *testing.T) {
	defer fail.Reset()
	r1, r2 := namedServer(t, "r1"), namedServer(t, "r2")
	h1, h2 := r1.Handler(), r2.Handler()

	fail.Enable("serve.respond@r1")
	if rec := get(t, h1, "/explain?start=a&end=b"); rec.Code != http.StatusInternalServerError {
		t.Errorf("faulted replica answered %d, want 500", rec.Code)
	}
	if _, code := explain(t, h2, "a", "b"); code != http.StatusOK {
		t.Errorf("unfaulted replica answered %d, want 200", code)
	}
	// Health seam: the checker's view breaks while queries still work.
	fail.Reset()
	fail.Enable("serve.healthz@r1")
	if rec := get(t, h1, "/healthz"); rec.Code != http.StatusInternalServerError {
		t.Errorf("faulted healthz = %d, want 500", rec.Code)
	}
	if _, code := explain(t, h1, "a", "b"); code != http.StatusOK {
		t.Errorf("query on health-faulted replica = %d, want 200", code)
	}
	if rec := get(t, h2, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("unfaulted healthz = %d, want 200", rec.Code)
	}

	// The unscoped seam trips every instance, batch path included.
	fail.Reset()
	fail.Enable("serve.respond")
	for name, h := range map[string]http.Handler{"r1": h1, "r2": h2} {
		if rec := postBody(t, h, "/batch", `{"pairs":[{"start":"a","end":"b"}]}`); rec.Code != http.StatusInternalServerError {
			t.Errorf("%s: unscoped seam /batch = %d, want 500", name, rec.Code)
		}
	}
}

// TestFailpointStall proves EnableStall delays without erroring — the
// hedging trigger.
func TestFailpointStall(t *testing.T) {
	defer fail.Reset()
	srv := namedServer(t, "r1")
	h := srv.Handler()
	const stall = 50 * time.Millisecond
	fail.EnableStall("serve.respond@r1", stall)
	t0 := time.Now()
	_, code := explain(t, h, "a", "b")
	if elapsed := time.Since(t0); elapsed < stall {
		t.Errorf("stalled query returned in %v, want >= %v", elapsed, stall)
	}
	if code != http.StatusOK {
		t.Errorf("stalled query = %d, want 200 (stall is not an error)", code)
	}
}
