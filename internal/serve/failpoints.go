package serve

import "rex/internal/fail"

// Failpoint seams of the serving layer. The fail registry is
// process-global, but the router's chaos tests boot several replicas in
// one process and must fault exactly one of them — so every seam fires
// twice: once under the unscoped "serve.<point>" name (single-replica
// tests, child processes) and once under "serve.<point>@<name>" when
// the Server was configured with an instance Name. Arming either name
// trips the seam; arming the scoped name faults only that replica.
//
// Seams (each a fail.Hit on the handler path, one atomic load when
// nothing is armed):
//
//	serve.respond   before computing a /explain or /batch answer; an
//	                injected error becomes a 500, an injected stall
//	                (fail.EnableStall) delays the response — the lever
//	                for "replica is up but broken/lagging"
//	serve.healthz   before answering /healthz; an error becomes a 500,
//	                so health checkers see a flapping replica while the
//	                query path still works
//	serve.snapshot  before serving /admin/snapshot (500 — "checkpoint
//	                unreadable")
//	serve.snapshot.cut  cut the snapshot body halfway through — the
//	                    mid-transfer disconnect the client must resume
//	                    from with a range request
//	serve.wal       before serving /admin/wal (500)
//	serve.wal.cut   tear the WAL stream inside its final record — the
//	                client keeps the whole records and re-requests
const (
	FailRespond      = "respond"
	FailHealthz      = "healthz"
	FailSnapshot     = "snapshot"
	FailSnapshotCut  = "snapshot.cut"
	FailWALStream    = "wal"
	FailWALStreamCut = "wal.cut"
)

// failpoint fires the unscoped and (when named) instance-scoped seam,
// returning the first injected error.
func (s *Server) failpoint(point string) error {
	if err := fail.Hit("serve." + point); err != nil {
		return err
	}
	if s.name != "" {
		return fail.Hit("serve." + point + "@" + s.name)
	}
	return nil
}
