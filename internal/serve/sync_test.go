package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"rex"
	"rex/internal/live"
	rexsync "rex/internal/sync"
)

// durableServer boots a durable store (temp dir) behind a Server;
// ckptEvery 1 keeps the WAL empty (snapshot-only catch-up), a large
// value keeps every delta in the tail.
func durableSyncServer(t *testing.T, ckptEvery int) (*Server, *rex.Store) {
	t.Helper()
	k, err := rex.ReadKB(strings.NewReader("node\ta\tperson\nnode\tb\tperson\nlabel\tknows\tU\nedge\ta\tb\tknows\n"))
	if err != nil {
		t.Fatal(err)
	}
	store, err := rex.NewStore(k, rex.Options{
		Measure: "size", TopK: 4, MaxPatternSize: 3,
		Durability: rex.DurabilityOptions{Dir: t.TempDir(), Fsync: "off", CheckpointEvery: ckptEvery},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return New(store, Config{Timeout: 5 * time.Second}), store
}

func applyOne(t *testing.T, store *rex.Store, n string) {
	t.Helper()
	if _, err := store.Apply(strings.NewReader("node\t" + n + "\tperson\nedge\ta\t" + n + "\tknows\n")); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotEndpointConditionalAndRange(t *testing.T) {
	srv, store := durableSyncServer(t, 1)
	applyOne(t, store, "x")
	h := srv.Handler()

	rec := get(t, h, "/admin/snapshot")
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot = %d: %s", rec.Code, rec.Body)
	}
	etag := rec.Header().Get("ETag")
	wantFP := `"` + store.Current().Fingerprint + `"`
	if etag != wantFP {
		t.Fatalf("ETag = %s, want %s", etag, wantFP)
	}
	if rec.Header().Get("X-Rex-Generation") != "2" {
		t.Fatalf("X-Rex-Generation = %s, want 2", rec.Header().Get("X-Rex-Generation"))
	}
	full := rec.Body.Bytes()

	// A peer already holding this content revalidates for free.
	req := httptest.NewRequest(http.MethodGet, "/admin/snapshot", nil)
	req.Header.Set("If-None-Match", etag)
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match = %d, want 304", rec2.Code)
	}

	// An interrupted transfer resumes by byte range.
	req = httptest.NewRequest(http.MethodGet, "/admin/snapshot", nil)
	req.Header.Set("Range", "bytes=10-")
	req.Header.Set("If-Range", etag)
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, req)
	if rec3.Code != http.StatusPartialContent {
		t.Fatalf("Range = %d, want 206", rec3.Code)
	}
	if !bytes.Equal(rec3.Body.Bytes(), full[10:]) {
		t.Fatal("range body is not the tail of the full body")
	}
}

// A non-durable store has no checkpoint file; the snapshot is encoded
// from the live graph so in-memory deployments can still seed peers.
func TestSnapshotEndpointNonDurable(t *testing.T) {
	srv := testServer(t, 5*time.Second)
	rec := get(t, srv.Handler(), "/admin/snapshot")
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot = %d: %s", rec.Code, rec.Body)
	}
	if rec.Body.Len() == 0 || rec.Header().Get("X-Rex-Generation") != "1" {
		t.Fatalf("empty or unversioned snapshot: generation %q, %d bytes",
			rec.Header().Get("X-Rex-Generation"), rec.Body.Len())
	}
}

func TestWALStreamEndpoint(t *testing.T) {
	srv, store := durableSyncServer(t, 1000)
	applyOne(t, store, "x")
	applyOne(t, store, "y")
	h := srv.Handler()

	rec := get(t, h, "/admin/wal?from=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("wal = %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Rex-Wal-Records"); got != "2" {
		t.Fatalf("X-Rex-Wal-Records = %s, want 2", got)
	}
	sc := live.NewFrameScanner(bytes.NewReader(rec.Body.Bytes()))
	var gens []uint64
	for {
		gen, _, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		gens = append(gens, gen)
	}
	if len(gens) != 2 || gens[0] != 2 || gens[1] != 3 {
		t.Fatalf("tail generations = %v, want [2 3]", gens)
	}

	// The declared length must match the streamed body (the handler
	// streams from the WAL file; a wrong size would cut or pad frames).
	if got := rec.Header().Get("Content-Length"); got != strconv.Itoa(rec.Body.Len()) {
		t.Fatalf("Content-Length = %s, body is %d bytes", got, rec.Body.Len())
	}

	// An already-current peer gets an empty tail, not an error.
	if rec := get(t, h, "/admin/wal?from=3"); rec.Code != http.StatusOK ||
		rec.Header().Get("X-Rex-Wal-Records") != "0" || rec.Body.Len() != 0 {
		t.Fatalf("current peer tail = %d, %s records, %d bytes; want empty 200",
			rec.Code, rec.Header().Get("X-Rex-Wal-Records"), rec.Body.Len())
	}

	// Below the checkpoint horizon: 410 Gone points at the snapshot.
	if rec := get(t, h, "/admin/wal?from=0"); rec.Code != http.StatusGone {
		t.Fatalf("below horizon = %d, want 410", rec.Code)
	}
	// from is mandatory.
	if rec := get(t, h, "/admin/wal"); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing from = %d, want 400", rec.Code)
	}
}

func TestSyncTriggerRequiresEngine(t *testing.T) {
	srv := testServer(t, 5*time.Second)
	h := srv.Handler()
	if rec := post(t, h, "/admin/sync", ""); rec.Code != http.StatusConflict {
		t.Fatalf("sync without engine = %d, want 409", rec.Code)
	}
	if rec := get(t, h, "/admin/sync"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET sync = %d, want 405", rec.Code)
	}
}

func TestStatsAndMetricsExposeSync(t *testing.T) {
	srv := testServer(t, 5*time.Second)
	e, err := rexsync.New(srv.store, rexsync.Config{Peers: []string{"http://127.0.0.1:9"}, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetSync(e, false)
	h := srv.Handler()
	if rec := get(t, h, "/stats"); !strings.Contains(rec.Body.String(), `"sync"`) {
		t.Fatalf("/stats lacks a sync section: %s", rec.Body)
	}
	if rec := get(t, h, "/metrics"); !strings.Contains(rec.Body.String(), "rex_sync_attempts_total") {
		t.Fatal("/metrics lacks the rex_sync_* families")
	}
}
