package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rex"
	"rex/internal/kb"
	"rex/internal/kbgen"
)

// liveBaseTSV connects a—b directly; c and d exist but share no
// connection, so (c, d) is only explainable after a delta ingests the
// missing edge.
const liveBaseTSV = `node	a	person
node	b	person
node	c	person
node	d	person
label	knows	U
edge	a	b	knows
`

func liveServer(t *testing.T, kbPath string) *Server {
	t.Helper()
	k, err := rex.ReadKB(strings.NewReader(liveBaseTSV))
	if err != nil {
		t.Fatal(err)
	}
	store, err := rex.NewStore(k, rex.Options{
		Measure: "size", TopK: 100, MaxPatternSize: 3, CacheSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(store, Config{KBPath: kbPath, Timeout: time.Minute, MaxBatch: 8})
}

func postBody(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)))
	return rec
}

func explain(t *testing.T, h http.Handler, start, end string) (explainResponse, int) {
	t.Helper()
	rec := get(t, h, "/explain?start="+start+"&end="+end)
	var resp explainResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad /explain body: %v: %s", err, rec.Body)
		}
	}
	return resp, rec.Code
}

func stats(t *testing.T, h http.Handler) statsResponse {
	t.Helper()
	rec := get(t, h, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestAdminDeltaEndpoint(t *testing.T) {
	s := liveServer(t, "")
	h := s.Handler()

	// Method and error handling.
	if rec := get(t, h, "/admin/delta"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /admin/delta: status = %d", rec.Code)
	}
	if rec := postBody(t, h, "/admin/delta", ""); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("empty delta: status = %d, body %s", rec.Code, rec.Body)
	}
	if rec := postBody(t, h, "/admin/delta", "edge\tghost\tb\tknows\n"); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unknown node: status = %d", rec.Code)
	}
	if rec := postBody(t, h, "/admin/delta", "bogus\trecord\n"); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("parse error: status = %d", rec.Code)
	}
	if st := stats(t, h); st.Version.Generation != 1 || st.Version.Deltas != 0 {
		t.Fatalf("failed deltas moved version info: %+v", st.Version)
	}

	// A real delta: add node e, connect c—d and c—e, retype d, drop a—b.
	delta := strings.Join([]string{
		"# incremental update",
		"node\te\tperson",
		"edge\tc\td\tknows",
		"edge\tc\te\tknows",
		"settype\td\trobot",
		"deledge\ta\tb\tknows",
	}, "\n")
	rec := postBody(t, h, "/admin/delta", delta)
	if rec.Code != http.StatusOK {
		t.Fatalf("delta status = %d, body %s", rec.Code, rec.Body)
	}
	var sw swapResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Generation != 2 || sw.NodesAdded != 1 || sw.EdgesAdded != 2 || sw.EdgesRemoved != 1 || sw.TypesSet != 1 {
		t.Errorf("swap response = %+v", sw)
	}
	if sw.Nodes != 5 || sw.Edges != 2 {
		t.Errorf("swap KB size = %d nodes, %d edges, want 5, 2", sw.Nodes, sw.Edges)
	}

	// The swap is visible everywhere and the mutations took effect.
	if st := stats(t, h); st.Version.Generation != 2 || st.Version.Swaps != 1 || st.Version.Deltas != 1 {
		t.Errorf("version after delta = %+v", st.Version)
	}
	if resp, code := explain(t, h, "c", "d"); code != http.StatusOK || len(resp.Result.Explanations) == 0 {
		t.Errorf("(c, d) post-swap: code %d, %d explanations", code, len(resp.Result.Explanations))
	}
	if resp, code := explain(t, h, "a", "b"); code != http.StatusOK || len(resp.Result.Explanations) != 0 {
		t.Errorf("(a, b) after deledge: code %d, %d explanations, want 0", code, len(resp.Result.Explanations))
	}
}

// TestStatsLiveSection checks the /stats "live" section and the
// overlay/carry fields of the swap response: a one-edge delta swaps in
// as a depth-1 overlay, carries the cached result whose pair is out of
// the delta's reach, and drops the touched pair's entry.
func TestStatsLiveSection(t *testing.T) {
	// Pad the base with filler edges disconnected from every queried
	// pair so the one-edge delta stays under the compaction ratio and
	// the swap publishes a depth-1 overlay rather than compacting.
	var sb strings.Builder
	sb.WriteString(liveBaseTSV)
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&sb, "node\tf%d\tperson\n", i)
		if i > 0 {
			fmt.Fprintf(&sb, "edge\tf%d\tf%d\tknows\n", i-1, i)
		}
	}
	k, err := rex.ReadKB(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	store, err := rex.NewStore(k, rex.Options{
		Measure: "size", TopK: 100, MaxPatternSize: 3, CacheSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(store, Config{Timeout: time.Minute, MaxBatch: 8})
	h := s.Handler()

	if st := stats(t, h); st.Live.OverlayDepth != 0 || st.Live.Compactions != 0 ||
		st.Live.ResultsCarried != 0 || st.Live.ResultsDropped != 0 || st.Live.MemoPromotions != 0 {
		t.Fatalf("live stats before any delta = %+v", st.Live)
	}

	// Warm the cache on both pairs, then ingest an edge touching only
	// (c, d): the (a, b) entry is outside the delta's radius and must be
	// carried, the (c, d) entry must be invalidated.
	explain(t, h, "a", "b")
	explain(t, h, "c", "d")
	rec := postBody(t, h, "/admin/delta", "edge\tc\td\tknows\n")
	if rec.Code != http.StatusOK {
		t.Fatalf("delta: status %d, body %s", rec.Code, rec.Body)
	}
	var sw swapResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sw); err != nil {
		t.Fatal(err)
	}
	if !sw.Overlay || sw.Compacted || sw.OverlayDepth != 1 {
		t.Errorf("swap overlay fields = %+v, want depth-1 uncompacted overlay", sw)
	}
	if sw.ResultsCarried != 1 || sw.ResultsDropped != 1 {
		t.Errorf("swap carry fields = carried %d, dropped %d, want 1/1", sw.ResultsCarried, sw.ResultsDropped)
	}

	st := stats(t, h)
	if st.Live.OverlayDepth != 1 || st.Live.Compactions != 0 {
		t.Errorf("live overlay stats after delta = %+v", st.Live)
	}
	if st.Live.ResultsCarried != 1 || st.Live.ResultsDropped != 1 {
		t.Errorf("live carry stats after delta = %+v", st.Live)
	}

	// The carried (a, b) entry is a post-swap cache hit.
	hits0 := st.Cache.Hits
	explain(t, h, "a", "b")
	if st := stats(t, h); st.Cache.Hits != hits0+1 {
		t.Errorf("carried result was not a post-swap cache hit: %+v", st.Cache)
	}
}

func TestAdminTokenGate(t *testing.T) {
	s := liveServer(t, "")
	s.adminToken = "sekrit"
	h := s.Handler()
	delta := "edge\tc\td\tknows\n"

	if rec := postBody(t, h, "/admin/delta", delta); rec.Code != http.StatusUnauthorized {
		t.Errorf("missing token: status = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/admin/delta", strings.NewReader(delta))
	req.Header.Set("Authorization", "Bearer wrong")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnauthorized {
		t.Errorf("wrong token: status = %d", rec.Code)
	}
	if rec := postBody(t, h, "/admin/reload", ""); rec.Code != http.StatusUnauthorized {
		t.Errorf("reload without token: status = %d", rec.Code)
	}
	if st := stats(t, h); st.Version.Generation != 1 {
		t.Fatalf("unauthorized request swapped: %+v", st.Version)
	}

	req = httptest.NewRequest(http.MethodPost, "/admin/delta", strings.NewReader(delta))
	req.Header.Set("Authorization", "Bearer sekrit")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("valid token: status = %d, body %s", rec.Code, rec.Body)
	}
	// Query endpoints stay open regardless of the token.
	if _, code := explain(t, h, "c", "d"); code != http.StatusOK {
		t.Errorf("explain with admin token set: status = %d", code)
	}
}

// TestAdminDeltaNoop checks that a redelivered delta reports success
// without swapping, so at-least-once delivery keeps the warm cache.
func TestAdminDeltaNoop(t *testing.T) {
	s := liveServer(t, "")
	h := s.Handler()
	if rec := postBody(t, h, "/admin/delta", "edge\tc\td\tknows\n"); rec.Code != http.StatusOK {
		t.Fatalf("first delta: %s", rec.Body)
	}
	explain(t, h, "c", "d") // warm the generation-2 cache
	rec := postBody(t, h, "/admin/delta", "edge\tc\td\tknows\n")
	if rec.Code != http.StatusOK {
		t.Fatalf("redelivered delta: status %d, body %s", rec.Code, rec.Body)
	}
	var sw swapResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Generation != 2 || sw.EdgesAdded != 0 {
		t.Errorf("no-op delta swapped: %+v", sw)
	}
	st := stats(t, h)
	if st.Version.Generation != 2 || st.Version.Swaps != 1 {
		t.Errorf("version after no-op = %+v", st.Version)
	}
	if st.Cache.Hits+st.Cache.Misses == 0 || st.Cache.Entries == 0 {
		t.Errorf("warm cache lost after no-op delta: %+v", st.Cache)
	}
}

func TestAdminReloadEndpoint(t *testing.T) {
	// Without -kb, reload is refused.
	s := liveServer(t, "")
	if rec := postBody(t, s.Handler(), "/admin/reload", ""); rec.Code != http.StatusConflict {
		t.Errorf("reload without -kb: status = %d", rec.Code)
	}

	// With a file: delta away from the file's content, then reload back.
	path := filepath.Join(t.TempDir(), "kb.tsv")
	if err := os.WriteFile(path, []byte(liveBaseTSV), 0o644); err != nil {
		t.Fatal(err)
	}
	s = liveServer(t, path)
	h := s.Handler()
	fp1 := stats(t, h).Version.Fingerprint
	if rec := postBody(t, h, "/admin/delta", "edge\tc\td\tknows\n"); rec.Code != http.StatusOK {
		t.Fatalf("delta failed: %s", rec.Body)
	}
	if rec := get(t, h, "/admin/reload"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /admin/reload: status = %d", rec.Code)
	}
	rec := postBody(t, h, "/admin/reload", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("reload status = %d, body %s", rec.Code, rec.Body)
	}
	var sw swapResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Generation != 3 || sw.Fingerprint != fp1 {
		t.Errorf("reload swap = %+v, want generation 3 with the file's fingerprint %s", sw, fp1)
	}
	if st := stats(t, h); st.Version.Reloads != 1 || st.Version.Swaps != 2 {
		t.Errorf("version after reload = %+v", st.Version)
	}

	// A vanished file fails the reload and keeps the current snapshot.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if rec := postBody(t, h, "/admin/reload", ""); rec.Code != http.StatusInternalServerError {
		t.Errorf("reload of missing file: status = %d", rec.Code)
	}
	if st := stats(t, h); st.Version.Generation != 3 {
		t.Errorf("failed reload moved generation to %d", st.Version.Generation)
	}
}

// TestDeltaIngestionSoak is the CI soak: a small-preset synthetic KB
// (~11K relationships) served over HTTP while a stream of localized
// deltas applies through /admin/delta under concurrent /explain
// traffic. Run with -race it exercises the overlay build, compaction
// policy and cache carry-over against live readers at a realistic
// graph size; its own assertions check that every request succeeds,
// every delta lands as the expected generation, and the /stats live
// section stays coherent.
func TestDeltaIngestionSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak generates a preset KB and streams deltas; skip under -short")
	}
	genOpt, err := kbgen.PresetOptions("small", 42)
	if err != nil {
		t.Fatal(err)
	}
	g := kbgen.Generate(genOpt)
	path := filepath.Join(t.TempDir(), "kb.bin")
	if err := g.SaveBinary(path); err != nil {
		t.Fatal(err)
	}
	store, err := rex.OpenStore(path, rex.Options{TopK: 10, MaxPatternSize: 3, CacheSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	h := New(store, Config{KBPath: path, Timeout: time.Minute, MaxBatch: 8}).Handler()

	sampled := kbgen.SamplePairs(g, kbgen.PairOptions{PerBucket: 2, Seed: 43})
	if len(sampled) == 0 {
		t.Fatal("no pairs sampled")
	}
	const (
		numDeltas   = 24
		opsPerDelta = 30
		numReaders  = 3
	)

	// Warm the generation-1 cache so the first swap has entries to carry
	// or drop even if the readers below are scheduled late.
	for _, p := range sampled {
		url := "/explain?start=" + g.NodeName(p.Start) + "&end=" + g.NodeName(p.End)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("warm %s: status %d: %s", url, rec.Code, rec.Body)
		}
	}

	var (
		wg       sync.WaitGroup
		done     atomic.Bool
		readErrs = make([]error, numReaders)
	)
	for r := 0; r < numReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				p := sampled[(i+r)%len(sampled)]
				url := "/explain?start=" + g.NodeName(p.Start) + "&end=" + g.NodeName(p.End)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
				if rec.Code != http.StatusOK {
					readErrs[r] = fmt.Errorf("%s: status %d: %s", url, rec.Code, rec.Body)
					return
				}
			}
		}(r)
	}

	// Writer: each delta hangs a chain of fresh entities off a random
	// anchor under the "soak" label (registered by the first delta).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < numDeltas; i++ {
		var sb strings.Builder
		if i == 0 {
			sb.WriteString("label\tsoak\tU\n")
		}
		prev := g.NodeName(kb.NodeID(rng.Intn(g.NumNodes())))
		for j := 0; j < opsPerDelta/2; j++ {
			name := fmt.Sprintf("soak_%d_%d", i, j)
			fmt.Fprintf(&sb, "node\t%s\tconcept\n", name)
			fmt.Fprintf(&sb, "edge\t%s\t%s\tsoak\n", prev, name)
			prev = name
		}
		rec := postBody(t, h, "/admin/delta", sb.String())
		if rec.Code != http.StatusOK {
			t.Fatalf("delta %d: status %d, body %s", i, rec.Code, rec.Body)
		}
		var sw swapResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &sw); err != nil {
			t.Fatal(err)
		}
		if sw.Generation != uint64(i+2) || !sw.Overlay {
			t.Fatalf("delta %d: swap = %+v, want overlay generation %d", i, sw, i+2)
		}
	}
	done.Store(true)
	wg.Wait()
	for r, err := range readErrs {
		if err != nil {
			t.Fatalf("reader %d: %v", r, err)
		}
	}

	st := stats(t, h)
	if st.Version.Generation != numDeltas+1 || st.Version.Deltas != numDeltas {
		t.Errorf("version after soak = %+v", st.Version)
	}
	if st.Queries.Errors != 0 {
		t.Errorf("%d query errors during soak", st.Queries.Errors)
	}
	if st.Live.ResultsCarried+st.Live.ResultsDropped == 0 {
		t.Error("no carry-over accounting after a warm soak")
	}
	if st.Live.OverlayDepth < 0 || st.Live.OverlayDepth > numDeltas {
		t.Errorf("implausible overlay depth %d", st.Live.OverlayDepth)
	}
}

// TestLiveSwapUnderTraffic is the subsystem's acceptance test: readers
// hammer /explain while deltas stream in through /admin/delta. Run
// under -race it checks the lock-free snapshot discipline; its own
// assertions check that no request errors, no response mixes
// generations, version info lands on /stats, a query answerable only
// via an ingested edge succeeds post-swap, and pre-swap cached results
// are never served for a new snapshot.
//
// Generation-mixing is made observable by construction: delta i adds
// the path a—m<i>—b under its own fresh label k<i>, so each ingested
// path is a distinct pattern and a result computed wholly on
// generation g has exactly g explanations for (a, b) — the direct edge
// plus one per applied delta. A response whose explanation count
// disagrees with its reported generation mixed snapshots.
func TestLiveSwapUnderTraffic(t *testing.T) {
	s := liveServer(t, "")
	h := s.Handler()
	const (
		numDeltas  = 8
		numReaders = 4
	)

	// Pre-swap: (a, b) has its one direct explanation; (c, d) has none,
	// and the empty result is now cached on generation 1.
	resp, code := explain(t, h, "a", "b")
	if code != http.StatusOK || len(resp.Result.Explanations) != 1 || resp.Generation != 1 {
		t.Fatalf("pre-swap (a, b): code %d, %d explanations, generation %d",
			code, len(resp.Result.Explanations), resp.Generation)
	}
	fp1 := resp.Fingerprint
	if resp, code = explain(t, h, "c", "d"); code != http.StatusOK || len(resp.Result.Explanations) != 0 {
		t.Fatalf("pre-swap (c, d): code %d, %d explanations, want 0", code, len(resp.Result.Explanations))
	}
	explain(t, h, "c", "d") // cache the empty result on the gen-1 snapshot

	var (
		wg         sync.WaitGroup
		done       atomic.Bool
		readErrs   = make([]error, numReaders)
		maxGenSeen = make([]uint64, numReaders)
	)
	for r := 0; r < numReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastGen uint64
			for !done.Load() {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/explain?start=a&end=b", nil))
				if rec.Code != http.StatusOK {
					readErrs[r] = fmt.Errorf("status %d: %s", rec.Code, rec.Body)
					return
				}
				var resp explainResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					readErrs[r] = err
					return
				}
				// Atomicity of the swap: the explanation count must match
				// the generation the response claims it was computed on.
				if got, want := len(resp.Result.Explanations), int(resp.Generation); got != want {
					readErrs[r] = fmt.Errorf("generation mix: %d explanations on generation %d", got, want)
					return
				}
				// Requests in one goroutine are sequential, so the pinned
				// generation can never go backwards.
				if resp.Generation < lastGen {
					readErrs[r] = fmt.Errorf("generation went backwards: %d after %d", resp.Generation, lastGen)
					return
				}
				lastGen = resp.Generation
				maxGenSeen[r] = lastGen
			}
		}(r)
	}

	// Writer: stream deltas; delta i adds the path a—m<i>—b. The final
	// delta also ingests the c—d edge the stale-cache check needs.
	for i := 1; i <= numDeltas; i++ {
		delta := fmt.Sprintf("label\tk%d\tU\nnode\tm%d\tperson\nedge\ta\tm%d\tk%d\nedge\tm%d\tb\tk%d\n",
			i, i, i, i, i, i)
		if i == numDeltas {
			delta += "edge\tc\td\tknows\n"
		}
		rec := postBody(t, h, "/admin/delta", delta)
		if rec.Code != http.StatusOK {
			t.Fatalf("delta %d: status %d, body %s", i, rec.Code, rec.Body)
		}
		var sw swapResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &sw); err != nil {
			t.Fatal(err)
		}
		if sw.Generation != uint64(i+1) {
			t.Fatalf("delta %d produced generation %d, want %d", i, sw.Generation, i+1)
		}
		// Every delta applies as an overlay; whether it compacts depends
		// on the ratio policy, but the reported depth must be consistent:
		// zero exactly when the swap compacted.
		if !sw.Overlay || sw.Compacted != (sw.OverlayDepth == 0) {
			t.Fatalf("delta %d: overlay = %v, compacted = %v, depth = %d", i, sw.Overlay, sw.Compacted, sw.OverlayDepth)
		}
		time.Sleep(2 * time.Millisecond) // let readers overlap several generations
	}
	done.Store(true)
	wg.Wait()
	for r, err := range readErrs {
		if err != nil {
			t.Fatalf("reader %d: %v", r, err)
		}
	}

	// Post-swap: the final generation answers with all ingested paths.
	resp, code = explain(t, h, "a", "b")
	if code != http.StatusOK || resp.Generation != numDeltas+1 || len(resp.Result.Explanations) != numDeltas+1 {
		t.Fatalf("post-swap (a, b): code %d, generation %d, %d explanations, want %d/%d",
			code, resp.Generation, len(resp.Result.Explanations), numDeltas+1, numDeltas+1)
	}
	// The query answerable only via the newly ingested edge succeeds —
	// the gen-1 cached empty result for (c, d) is not served.
	if resp, code = explain(t, h, "c", "d"); code != http.StatusOK || len(resp.Result.Explanations) == 0 {
		t.Fatalf("post-swap (c, d): code %d, %d explanations, want ≥1 via the ingested edge",
			code, len(resp.Result.Explanations))
	}

	// /stats reports the bumped generation and a changed fingerprint.
	st := stats(t, h)
	if st.Version.Generation != numDeltas+1 || st.Version.Swaps != numDeltas || st.Version.Deltas != numDeltas {
		t.Errorf("version after swaps = %+v", st.Version)
	}
	if st.Version.Fingerprint == fp1 || st.Version.Fingerprint == "" {
		t.Errorf("fingerprint did not change across swaps: %q", st.Version.Fingerprint)
	}
	if st.Queries.Errors != 0 {
		t.Errorf("%d query errors during swaps, want 0", st.Queries.Errors)
	}

	// Carry-over accounting: the cached (c, d) result lives outside
	// every delta's reach until the final one ingests the c—d edge, so
	// it is carried across exactly the first numDeltas-1 swaps and then
	// invalidated. (a, b) entries sit inside every delta's ball and are
	// always dropped, never carried.
	if st.Live.ResultsCarried != numDeltas-1 {
		t.Errorf("results carried = %d, want %d (the (c, d) entry per untouching swap)",
			st.Live.ResultsCarried, numDeltas-1)
	}
	if st.Live.ResultsDropped < 2 {
		t.Errorf("results dropped = %d, want ≥ 2", st.Live.ResultsDropped)
	}
	// The first delta doubles the one-edge base, so the ratio policy
	// must have compacted at least once during the run.
	if st.Live.Compactions == 0 {
		t.Error("no compactions under the ratio policy on a tiny base")
	}
}
