package serve

// Tests for the observability layer: the /metrics exposition, the
// trace=1 response block, the slow-query forensics ring at /admin/slow,
// budget-truncated /batch responses, and a -race soak scraping /metrics
// during live delta ingestion.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rex"
	"rex/internal/kb"
	"rex/internal/kbgen"
)

// scrape fetches /metrics and returns the body.
func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	return rec.Body.String()
}

// metricFamilies parses the `# TYPE name type` lines of an exposition.
func metricFamilies(body string) map[string]string {
	fams := map[string]string{}
	for _, line := range strings.Split(body, "\n") {
		if f, ok := strings.CutPrefix(line, "# TYPE "); ok {
			if name, typ, ok := strings.Cut(f, " "); ok {
				fams[name] = typ
			}
		}
	}
	return fams
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t, time.Minute)
	h := s.Handler()

	// Traffic first, so the trace-fold counters have something to show.
	if rec := get(t, h, "/explain?start=brad_pitt&end=angelina_jolie"); rec.Code != http.StatusOK {
		t.Fatalf("explain status = %d", rec.Code)
	}
	if rec := get(t, h, "/explain?start=brad_pitt&end=angelina_jolie"); rec.Code != http.StatusOK {
		t.Fatalf("explain status = %d", rec.Code)
	}
	if rec := get(t, h, "/explain?start=nobody&end=brad_pitt"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown-entity explain status = %d", rec.Code)
	}

	body := scrape(t, h)
	fams := metricFamilies(body)
	if len(fams) < 12 {
		t.Errorf("/metrics exposes %d families, want >= 12:\n%v", len(fams), fams)
	}
	wantType := map[string]string{
		"rex_build_info":                    "gauge",
		"rex_uptime_seconds":                "gauge",
		"rex_http_requests_total":           "counter",
		"rex_http_request_duration_seconds": "histogram",
		"rex_query_stage_duration_seconds":  "histogram",
		"rex_queries_total":                 "counter",
		"rex_query_truncated_total":         "counter",
		"rex_queries_inflight":              "gauge",
		"rex_result_cache_hits_total":       "counter",
		"rex_result_cache_misses_total":     "counter",
		"rex_singleflight_dedup_total":      "counter",
		"rex_result_cache_entries":          "gauge",
		"rex_evaluator_memo_entries":        "gauge",
		"rex_overlay_depth":                 "gauge",
		"rex_store_swaps_total":             "counter",
		"rex_store_compactions_total":       "counter",
		"rex_deltas_applied_total":          "counter",
		"rex_reloads_total":                 "counter",
		"rex_swap_duration_seconds":         "histogram",
		"rex_kb_nodes":                      "gauge",
		"rex_kb_edges":                      "gauge",
		"rex_slow_queries_total":            "counter",
	}
	for name, typ := range wantType {
		if got := fams[name]; got != typ {
			t.Errorf("family %s: type %q, want %q", name, got, typ)
		}
	}

	// Spot-check folded values: one cold query + one cache hit + one
	// error, each visible on the right counter series.
	for _, want := range []string{
		`rex_http_requests_total{endpoint="/explain",code="200"} 2`,
		`rex_http_requests_total{endpoint="/explain",code="404"} 1`,
		`rex_queries_total{outcome="ok"} 2`,
		`rex_queries_total{outcome="error"} 1`,
		`rex_result_cache_hits_total 1`,
		`rex_result_cache_misses_total 1`,
		`rex_query_stage_duration_seconds_bucket{stage="enumerate",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(body, `go_version="go`) {
		t.Errorf("rex_build_info has no go_version label:\n%.300s", body)
	}
}

func TestExplainTraceBlock(t *testing.T) {
	h := testServer(t, time.Minute).Handler()

	rec := get(t, h, "/explain?start=brad_pitt&end=angelina_jolie")
	var resp explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result.Trace != nil {
		t.Error("untraced /explain response carries a trace block")
	}

	rec = get(t, h, "/explain?start=brad_pitt&end=angelina_jolie&trace=1")
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	tr := resp.Result.Trace
	if tr == nil {
		t.Fatal("trace=1 /explain response has no trace block")
	}
	// The first query warmed the cache, so this trace is a cache hit.
	if !tr.CacheHit {
		t.Errorf("repeat query trace = %+v, want CacheHit", tr)
	}

	rec = post(t, h, "/explain", `{"start":"tom_cruise","end":"nicole_kidman","trace":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST status = %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result.Trace == nil || resp.Result.Trace.TotalMS <= 0 {
		t.Fatalf("traced POST /explain trace = %+v", resp.Result.Trace)
	}
	found := false
	for _, st := range resp.Result.Trace.Stages {
		if st.Stage == "enumerate" {
			found = true
		}
	}
	if !found {
		t.Errorf("cold traced query has no enumerate stage: %+v", resp.Result.Trace.Stages)
	}
}

// TestBatchBudgetTruncation is the satellite coverage for budgeted
// /batch responses: a deterministic expansion budget truncates every
// pair with well-formed partial results, and a wall-clock budget that
// may expire mid-batch still yields a well-formed entry per pair with
// the truncated flag mirroring the result.
func TestBatchBudgetTruncation(t *testing.T) {
	h := testServer(t, time.Minute).Handler()
	pairsJSON := `[{"start":"brad_pitt","end":"angelina_jolie"},` +
		`{"start":"kate_winslet","end":"leonardo_dicaprio"},` +
		`{"start":"tom_cruise","end":"nicole_kidman"}]`

	rec := post(t, h, "/batch", `{"pairs":`+pairsJSON+`,"budget_expansions":1,"trace":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	for i, e := range resp.Results {
		if e.Error != "" {
			t.Fatalf("entry %d: unexpected error %q", i, e.Error)
		}
		if e.Result == nil {
			t.Fatalf("entry %d: no result", i)
		}
		if !e.Truncated || !e.Result.Truncated {
			t.Errorf("entry %d: truncated = (%v, %v), want true under a 1-expansion budget",
				i, e.Truncated, e.Result.Truncated)
		}
		if e.Result.Start == "" || e.Result.End == "" {
			t.Errorf("entry %d: partial result missing pair identity: %+v", i, e.Result)
		}
		if e.Result.Trace == nil {
			t.Fatalf("entry %d: traced batch has no trace block", i)
		}
		if got := e.Result.Trace.TruncatedBy; got != "enumerate:expansions" {
			t.Errorf("entry %d: TruncatedBy = %q, want enumerate:expansions", i, got)
		}
	}

	// Wall-clock budget: expiry is timing-dependent, so assert only
	// well-formedness — every entry answers, truncation mirrors the
	// result, and no trace blocks leak without the trace flag.
	rec = post(t, h, "/batch", `{"pairs":`+pairsJSON+`,"budget_ms":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("budget_ms batch status = %d: %s", rec.Code, rec.Body)
	}
	resp = batchResponse{} // omitempty fields must not inherit the first decode
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	for i, e := range resp.Results {
		if e.Error != "" {
			t.Fatalf("entry %d: budgeted pair errored (%q); budgets must truncate, not fail", i, e.Error)
		}
		if e.Result == nil {
			t.Fatalf("entry %d: no result", i)
		}
		if e.Truncated != e.Result.Truncated {
			t.Errorf("entry %d: entry truncated %v != result truncated %v", i, e.Truncated, e.Result.Truncated)
		}
		if e.Result.Trace != nil {
			t.Errorf("entry %d: trace block without trace flag", i)
		}
	}
}

func TestSlowQueryLog(t *testing.T) {
	s := testServer(t, time.Minute)
	s.adminToken = "hush"
	s.SetSlowLog(0, 16, nil) // threshold 0: record every query
	h := s.Handler()

	if rec := get(t, h, "/admin/slow"); rec.Code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /admin/slow status = %d", rec.Code)
	}

	if rec := get(t, h, "/explain?start=brad_pitt&end=angelina_jolie&budget_expansions=1"); rec.Code != http.StatusOK {
		t.Fatalf("explain status = %d", rec.Code)
	}
	if rec := get(t, h, "/explain?start=nobody&end=brad_pitt"); rec.Code != http.StatusNotFound {
		t.Fatalf("error explain status = %d", rec.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/admin/slow", nil)
	req.Header.Set("Authorization", "Bearer hush")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/admin/slow status = %d: %s", rec.Code, rec.Body)
	}
	var resp slowResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 2 || len(resp.Entries) != 2 {
		t.Fatalf("slow log total=%d entries=%d, want 2 and 2", resp.Total, len(resp.Entries))
	}
	// Newest first: the failed lookup, then the truncated query.
	bad, good := resp.Entries[0], resp.Entries[1]
	if bad.Start != "nobody" || bad.Error == "" {
		t.Errorf("newest entry = %+v, want the failed nobody query", bad)
	}
	if good.Start != "brad_pitt" || good.End != "angelina_jolie" {
		t.Errorf("older entry = %+v, want the brad_pitt query", good)
	}
	if !good.Truncated || good.BudgetExpansions != 1 {
		t.Errorf("budgeted entry = %+v, want truncated with budget_expansions=1", good)
	}
	if good.Trace == nil || good.Trace.TruncatedBy != "enumerate:expansions" {
		t.Errorf("budgeted entry trace = %+v, want enumerate:expansions attribution", good.Trace)
	}
	if good.ElapsedMS < 0 || good.Time == "" {
		t.Errorf("entry missing timing: %+v", good)
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	h := testServer(t, time.Minute).Handler()
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status = %d", rec.Code)
	}
	var resp healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || !strings.HasPrefix(resp.GoVersion, "go") || resp.Revision == "" {
		t.Errorf("healthz = %+v, want ok with build info", resp)
	}
}

// TestMetricsScrapeUnderIngestion is the observability soak: concurrent
// /metrics and /admin/slow scrapes while deltas hot-swap the store
// under /explain traffic. Run with -race it checks that scrape-time
// gauge sampling (cache stats, memo occupancy, overlay depth) is safe
// against live swaps; its own assertions check every scrape parses and
// the swap counters land.
func TestMetricsScrapeUnderIngestion(t *testing.T) {
	if testing.Short() {
		t.Skip("soak generates a preset KB and streams deltas; skip under -short")
	}
	genOpt, err := kbgen.PresetOptions("small", 42)
	if err != nil {
		t.Fatal(err)
	}
	g := kbgen.Generate(genOpt)
	path := filepath.Join(t.TempDir(), "kb.bin")
	if err := g.SaveBinary(path); err != nil {
		t.Fatal(err)
	}
	store, err := rex.OpenStore(path, rex.Options{TopK: 10, MaxPatternSize: 3, CacheSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	s := New(store, Config{KBPath: path, Timeout: time.Minute, MaxBatch: 8})
	s.SetSlowLog(0, 64, nil) // record everything: exercises ring writes under load
	h := s.Handler()

	sampled := kbgen.SamplePairs(g, kbgen.PairOptions{PerBucket: 2, Seed: 43})
	if len(sampled) == 0 {
		t.Fatal("no pairs sampled")
	}

	const numDeltas = 12
	var (
		wg      sync.WaitGroup
		done    atomic.Bool
		workErr = make([]error, 3)
	)
	// Reader: /explain traffic, alternating traced and untraced.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !done.Load(); i++ {
			p := sampled[i%len(sampled)]
			url := "/explain?start=" + g.NodeName(p.Start) + "&end=" + g.NodeName(p.End)
			if i%2 == 0 {
				url += "&trace=1"
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
			if rec.Code != http.StatusOK {
				workErr[0] = fmt.Errorf("%s: status %d: %s", url, rec.Code, rec.Body)
				return
			}
		}
	}()
	// Scraper: /metrics must stay parseable through every swap.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
			if rec.Code != http.StatusOK {
				workErr[1] = fmt.Errorf("/metrics status %d", rec.Code)
				return
			}
			if fams := metricFamilies(rec.Body.String()); len(fams) < 12 {
				workErr[1] = fmt.Errorf("scrape shrank to %d families", len(fams))
				return
			}
		}
	}()
	// Forensics reader: /admin/slow under concurrent ring writes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/admin/slow", nil))
			if rec.Code != http.StatusOK {
				workErr[2] = fmt.Errorf("/admin/slow status %d", rec.Code)
				return
			}
			var sr slowResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
				workErr[2] = fmt.Errorf("/admin/slow parse: %v", err)
				return
			}
		}
	}()

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < numDeltas; i++ {
		var sb strings.Builder
		if i == 0 {
			sb.WriteString("label\tsoak\tU\n")
		}
		prev := g.NodeName(kb.NodeID(rng.Intn(g.NumNodes())))
		for j := 0; j < 10; j++ {
			name := fmt.Sprintf("soak_%d_%d", i, j)
			fmt.Fprintf(&sb, "node\t%s\tconcept\n", name)
			fmt.Fprintf(&sb, "edge\t%s\t%s\tsoak\n", prev, name)
			prev = name
		}
		if rec := postBody(t, h, "/admin/delta", sb.String()); rec.Code != http.StatusOK {
			t.Fatalf("delta %d: status %d, body %s", i, rec.Code, rec.Body)
		}
	}
	done.Store(true)
	wg.Wait()
	for i, err := range workErr {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	body := scrape(t, h)
	for _, want := range []string{
		fmt.Sprintf("rex_deltas_applied_total %d", numDeltas),
		fmt.Sprintf("rex_store_swaps_total %d", numDeltas),
		`rex_swap_duration_seconds_count `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("post-soak /metrics missing %q", want)
		}
	}
}
