package serve

import (
	"bufio"
	"context"
	"errors"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"rex"
	"rex/internal/obs"
)

// serverMetrics owns the Prometheus registry for one server. Counters
// fold from completed per-query traces — the per-snapshot CacheStats
// counters reset on every hot swap, which a Prometheus counter must
// never do, so the server accumulates its own monotonic totals and
// exposes the snapshot-scoped values only as gauges sampled at scrape
// time.
type serverMetrics struct {
	reg *serverRegistry

	httpRequests  *obs.Family // counter{endpoint,code}
	httpDuration  *obs.Family // histogram{endpoint}
	stageDuration *obs.Family // histogram{stage}
	queries       *obs.Family // counter{outcome}
	truncated     *obs.Family // counter{by}
	swapDuration  *obs.Family // histogram

	cacheHits   *obs.Series
	cacheMisses *obs.Series
	dedup       *obs.Series

	inflight atomic.Int64
}

// serverRegistry is the obs.Registry alias kept separate so handler
// code reads s.metrics.reg without importing obs everywhere.
type serverRegistry = obs.Registry

// newServerMetrics registers every metric family. Gauge families
// sample the store and slow log at scrape time, so a scrape is a few
// atomic loads plus the brief shard locks of MemoStats.
func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{reg: reg}

	b := obs.Build()
	reg.Gauge("rex_build_info",
		"Build identification; value is always 1.",
		"go_version", "revision").With(b.GoVersion, b.Revision).Set(1)
	reg.Gauge("rex_uptime_seconds",
		"Seconds since the server started.").With().
		SetFunc(func() float64 { return time.Since(s.started).Seconds() })

	m.httpRequests = reg.Counter("rex_http_requests_total",
		"HTTP requests by endpoint and status code.", "endpoint", "code")
	m.httpDuration = reg.Histogram("rex_http_request_duration_seconds",
		"HTTP request latency by endpoint.", obs.LatencyBuckets(), "endpoint")
	reg.Gauge("rex_queries_inflight",
		"Explain queries currently executing (including batch pairs).").With().
		SetFunc(func() float64 { return float64(m.inflight.Load()) })

	m.stageDuration = reg.Histogram("rex_query_stage_duration_seconds",
		"Per-query pipeline stage wall time (match nests inside measure).",
		obs.LatencyBuckets(), "stage")
	for _, st := range obs.Stages() {
		m.stageDuration.With(st.String())
	}
	m.queries = reg.Counter("rex_queries_total",
		"Completed queries by outcome (ok, error, timeout).", "outcome")
	m.truncated = reg.Counter("rex_query_truncated_total",
		"Budget-truncated queries by attribution (stage:cause).", "by")

	m.cacheHits = reg.Counter("rex_result_cache_hits_total",
		"Queries served from the result cache.").With()
	m.cacheMisses = reg.Counter("rex_result_cache_misses_total",
		"Queries that missed the result cache.").With()
	m.dedup = reg.Counter("rex_singleflight_dedup_total",
		"Queries coalesced onto a concurrent identical computation.").With()

	reg.Gauge("rex_result_cache_entries",
		"Result-cache entries of the active snapshot.").With().
		SetFunc(func() float64 { return float64(s.store.Current().Explainer.CacheStats().Entries) })
	reg.Gauge("rex_result_cache_capacity",
		"Configured result-cache capacity.").With().
		SetFunc(func() float64 { return float64(s.store.Current().Explainer.CacheStats().Capacity) })

	memo := reg.Gauge("rex_evaluator_memo_entries",
		"Evaluator memo occupancy of the active snapshot by kind.", "kind")
	memo.With("pairs").SetFunc(func() float64 {
		return float64(s.store.Current().Explainer.MemoStats().PairMemos)
	})
	memo.With("table_cells").SetFunc(func() float64 {
		return float64(s.store.Current().Explainer.MemoStats().TableCells)
	})
	memo.With("prefix_starts").SetFunc(func() float64 {
		return float64(s.store.Current().Explainer.MemoStats().PrefixStarts)
	})
	memo.With("prefix_nodes").SetFunc(func() float64 {
		return float64(s.store.Current().Explainer.MemoStats().PrefixNodes)
	})
	// Evaluator memo counters are per-snapshot and reset on hot swap;
	// exposed as counters anyway because Prometheus rate() handles
	// counter resets natively.
	reg.Counter("rex_evaluator_memo_hits_total",
		"Evaluator memo hits of the active snapshot (resets on swap).").With().
		SetFunc(func() float64 { return float64(s.store.Current().Explainer.MemoStats().Hits) })
	reg.Counter("rex_evaluator_memo_misses_total",
		"Evaluator memo misses of the active snapshot (resets on swap).").With().
		SetFunc(func() float64 { return float64(s.store.Current().Explainer.MemoStats().Misses) })

	reg.Gauge("rex_overlay_depth",
		"Overlay depth of the active snapshot (0 = fully compacted CSR).").With().
		SetFunc(func() float64 { return float64(s.store.LiveStats().OverlayDepth) })
	reg.Counter("rex_store_swaps_total",
		"Published snapshot swaps since startup.").With().
		SetFunc(func() float64 { return float64(s.store.Swaps()) })
	reg.Counter("rex_store_compactions_total",
		"Overlay chains folded into fresh CSR arrays.").With().
		SetFunc(func() float64 { return float64(s.store.LiveStats().Compactions) })
	reg.Counter("rex_deltas_applied_total",
		"Successfully applied /admin/delta requests.").With().
		SetFunc(func() float64 { return float64(s.deltas.Load()) })
	reg.Counter("rex_reloads_total",
		"Successful /admin/reload requests.").With().
		SetFunc(func() float64 { return float64(s.reloads.Load()) })
	m.swapDuration = reg.Histogram("rex_swap_duration_seconds",
		"End-to-end snapshot swap latency (parse, build, publish).",
		obs.LatencyBuckets())
	m.swapDuration.With()

	reg.Gauge("rex_kb_nodes", "Entities in the active snapshot.").With().
		SetFunc(func() float64 { return float64(s.store.Current().KB.Stats().Nodes) })
	reg.Gauge("rex_kb_edges", "Relationships in the active snapshot.").With().
		SetFunc(func() float64 { return float64(s.store.Current().KB.Stats().Edges) })

	reg.Counter("rex_slow_queries_total",
		"Queries recorded by the slow-query log.").With().
		SetFunc(func() float64 { return float64(s.slow.Total()) })

	// Overload and lifecycle: shed counts per admission class, panics
	// contained by the recovery middleware, and the drain flag probes
	// can alert on.
	shed := reg.Counter("rex_requests_shed_total",
		"Requests shed by admission control (429) by endpoint class.", "class")
	shed.With("query").SetFunc(func() float64 { return float64(s.queryLimit.shedCount()) })
	shed.With("admin").SetFunc(func() float64 { return float64(s.adminLimit.shedCount()) })
	reg.Counter("rex_handler_panics_total",
		"Handler panics contained by the recovery middleware.").With().
		SetFunc(func() float64 { return float64(s.panics.Load()) })
	reg.Gauge("rex_draining",
		"1 while the server is draining ahead of shutdown, else 0.").With().
		SetFunc(func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})

	// Durability: WAL and checkpoint state of the store's journal. All
	// zero when the server runs without -data-dir.
	reg.Gauge("rex_durability_enabled",
		"1 when the store runs with a crash-safety journal (-data-dir).").With().
		SetFunc(func() float64 {
			if s.store.DurabilityStats().Enabled {
				return 1
			}
			return 0
		})
	reg.Counter("rex_wal_appends_total",
		"Delta batches appended to the write-ahead log.").With().
		SetFunc(func() float64 { return float64(s.store.DurabilityStats().Appends) })
	reg.Counter("rex_wal_appended_bytes_total",
		"Bytes appended to the write-ahead log (framing included).").With().
		SetFunc(func() float64 { return float64(s.store.DurabilityStats().AppendedBytes) })
	reg.Counter("rex_wal_fsyncs_total",
		"WAL fsync calls.").With().
		SetFunc(func() float64 { return float64(s.store.DurabilityStats().Fsyncs) })
	reg.Gauge("rex_wal_size_bytes",
		"Current write-ahead log size.").With().
		SetFunc(func() float64 { return float64(s.store.DurabilityStats().WALSize) })
	reg.Counter("rex_checkpoints_total",
		"Checkpoints completed since the journal was opened.").With().
		SetFunc(func() float64 { return float64(s.store.DurabilityStats().Checkpoints) })
	reg.Counter("rex_checkpoint_failures_total",
		"Checkpoints that failed after their delta was already durable.").With().
		SetFunc(func() float64 { return float64(s.store.DurabilityStats().CheckpointFailures) })
	reg.Gauge("rex_checkpoint_generation",
		"Generation of the newest on-disk checkpoint (0 = none).").With().
		SetFunc(func() float64 { return float64(s.store.DurabilityStats().CheckpointGen) })
	reg.Gauge("rex_wal_replayed_records",
		"WAL records replayed at the last boot.").With().
		SetFunc(func() float64 { return float64(s.store.DurabilityStats().Replayed) })
	reg.Gauge("rex_wal_torn_tail",
		"1 when the last recovery dropped a torn or corrupt WAL tail.").With().
		SetFunc(func() float64 {
			if s.store.DurabilityStats().TornTail {
				return 1
			}
			return 0
		})

	// Anti-entropy: replica catch-up counters (zero until SetSync
	// installs an engine).
	registerSyncMetrics(reg, s)

	return m
}

// observeTrace folds one completed query's trace into the stage
// histograms and cache/dedup/truncation counters.
func (m *serverMetrics) observeTrace(rep *rex.QueryTrace) {
	if rep == nil {
		return
	}
	for _, st := range rep.Stages {
		m.stageDuration.With(st.Stage).Observe(st.DurationMS / 1e3)
	}
	if rep.CacheHit {
		m.cacheHits.Inc()
	} else {
		m.cacheMisses.Inc()
	}
	if rep.Deduped {
		m.dedup.Inc()
	}
	if rep.TruncatedBy != "" {
		m.truncated.With(rep.TruncatedBy).Inc()
	}
}

// statusRecorder captures the status code a handler wrote so the
// request counter can label it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Hijack forwards to the underlying writer so the transfer-cut
// failpoint seams can kill a connection mid-body.
func (w *statusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if hj, ok := w.ResponseWriter.(http.Hijacker); ok {
		return hj.Hijack()
	}
	return nil, nil, http.ErrNotSupported
}

// instrument wraps a handler with the per-endpoint request counter,
// latency histogram and in-flight gauge.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.inflight.Add(1)
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		s.metrics.inflight.Add(-1)
		s.metrics.httpRequests.With(endpoint, strconv.Itoa(rec.status)).Inc()
		s.metrics.httpDuration.With(endpoint).Observe(time.Since(t0).Seconds())
	}
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w) //nolint:errcheck // streaming response
}

// slowResponse is the /admin/slow answer: the retained slow-query
// entries, newest first.
type slowResponse struct {
	ThresholdMS float64         `json:"threshold_ms"`
	Total       uint64          `json:"total"`
	Entries     []obs.SlowEntry `json:"entries"`
}

// handleSlow serves the slow-query ring buffer. Behind the admin token
// because entries expose query content (entity pairs).
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	if !s.authorizeAdmin(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, slowResponse{
		ThresholdMS: float64(s.slow.Threshold()) / 1e6,
		Total:       s.slow.Total(),
		Entries:     s.slow.Entries(),
	})
}

// isTimeout mirrors note's timeout classification for the outcome
// label.
func isTimeout(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// noteQuery feeds one completed query (an /explain request or one batch
// pair) into the trace-fold metrics and the slow-query log.
func (s *Server) noteQuery(endpoint, reqID string, p rex.Pair, bud budgetRequest, res *rex.Result, err error, elapsed time.Duration, generation uint64) {
	var rep *rex.QueryTrace
	truncated := false
	if res != nil {
		rep = res.Trace
		truncated = res.Truncated
	}
	s.metrics.observeTrace(rep)
	switch {
	case err == nil:
		s.metrics.queries.With("ok").Inc()
	case isTimeout(err):
		s.metrics.queries.With("timeout").Inc()
	default:
		s.metrics.queries.With("error").Inc()
	}
	entry := obs.SlowEntry{
		RequestID:        reqID,
		Endpoint:         endpoint,
		Start:            p.Start,
		End:              p.End,
		BudgetMS:         bud.BudgetMS,
		BudgetExpansions: bud.BudgetExpansions,
		Generation:       generation,
		Truncated:        truncated,
		Trace:            rep,
	}
	if err != nil {
		entry.Error = err.Error()
	}
	s.slow.Note(elapsed, entry)
}
