package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"rex"
	rexsync "rex/internal/sync"
)

// Anti-entropy endpoints: the serving side of replica catch-up. A
// lagging peer (or the router, on its behalf) uses
//
//	GET  /admin/snapshot        the newest binary checkpoint, content-
//	                            addressed by fingerprint (ETag) — an
//	                            already-current peer revalidates with
//	                            If-None-Match and transfers nothing, an
//	                            interrupted transfer resumes with Range
//	GET  /admin/wal?from=<gen>  the CRC-framed WAL tail above <gen>
//	                            (410 Gone below the checkpoint horizon)
//	POST /admin/sync?peer=<url> kick this replica's sync engine
//
// The read endpoints stay available while the server drains: a peer
// mid-transfer finishes against the draining instance instead of
// restarting against another.

// syncState holds the server's optional sync wiring, installed by
// SetSync before serving starts.
type syncState struct {
	engine      atomic.Pointer[rexsync.Engine]
	refuseStale atomic.Bool
}

// SetSync installs the replica's sync engine behind POST /admin/sync
// and the /stats and /metrics sync sections. With refuseStale set the
// query endpoints answer 503 while a sync is running, for deployments
// that prefer unavailability over stale-but-honest answers.
func (s *Server) SetSync(e *rexsync.Engine, refuseStale bool) {
	s.sync.engine.Store(e)
	s.sync.refuseStale.Store(refuseStale)
}

// syncEngine returns the installed engine, nil if none.
func (s *Server) syncEngine() *rexsync.Engine { return s.sync.engine.Load() }

// syncStatsOf snapshots e's counters for the /stats sync section, nil
// when no engine is installed.
func syncStatsOf(e *rexsync.Engine) *rexsync.Stats {
	if e == nil {
		return nil
	}
	st := e.Stats()
	return &st
}

// refuseWhileSyncing sheds a query with 503 when the server is
// configured to refuse stale answers and a catch-up is running.
func (s *Server) refuseWhileSyncing(w http.ResponseWriter) bool {
	e := s.syncEngine()
	if e == nil || !s.sync.refuseStale.Load() || !e.Syncing() {
		return true
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable,
		errorResponse{Error: "replica is catching up; stale answers are disabled"})
	return false
}

// hijackCut answers with a 200 that declares the full Content-Length
// but delivers only partial, then flushes and closes the connection —
// the "peer died mid-transfer" chaos shape. Hijacking matters: a
// handler panic resets the connection (RST), which can destroy bytes
// already queued for the client, while the explicit flush + close (FIN)
// guarantees everything written arrives before the short read.
func hijackCut(w http.ResponseWriter, headers [][2]string, total int64, partial io.Reader) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic(http.ErrAbortHandler)
	}
	conn, bufrw, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	defer conn.Close()
	fmt.Fprintf(bufrw, "HTTP/1.1 200 OK\r\nContent-Length: %d\r\nConnection: close\r\n", total)
	for _, kv := range headers {
		fmt.Fprintf(bufrw, "%s: %s\r\n", kv[0], kv[1])
	}
	bufrw.WriteString("\r\n") //nolint:errcheck // injected cut
	io.Copy(bufrw, partial)   //nolint:errcheck // injected cut
	bufrw.Flush()             //nolint:errcheck // injected cut
}

// handleSnapshot serves the newest checkpoint. http.ServeContent
// supplies the conditional (If-None-Match) and range (resume) handling
// against the fingerprint ETag; the X-Rex-Generation header tells the
// peer which generation it is installing.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	if !s.authorizeAdmin(w, r) {
		return
	}
	if err := s.failpoint(FailSnapshot); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	h, err := s.store.SyncCheckpoint()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	defer h.Close() //nolint:errcheck // read-only handle
	if h.Fingerprint != "" {
		w.Header().Set("ETag", `"`+h.Fingerprint+`"`)
		w.Header().Set("X-Rex-Fingerprint", h.Fingerprint)
	}
	w.Header().Set("X-Rex-Generation", strconv.FormatUint(h.Generation, 10))
	if s.failpoint(FailSnapshotCut) != nil {
		// Chaos: deliver half the checkpoint, then die. The client sees
		// a short body under the full declared length and must resume
		// with a range request (the ETag proves the content is the same).
		hdrs := [][2]string{
			{"Content-Type", "application/octet-stream"},
			{"X-Rex-Generation", strconv.FormatUint(h.Generation, 10)},
		}
		if h.Fingerprint != "" {
			hdrs = append(hdrs, [2]string{"ETag", `"` + h.Fingerprint + `"`})
		}
		hijackCut(w, hdrs, h.Size, io.LimitReader(h.Reader, h.Size/2))
		return
	}
	http.ServeContent(w, r, "checkpoint.rexkb", time.Time{}, h.Reader)
}

// handleWALStream serves the CRC-framed WAL tail above ?from=<gen>. A
// peer below the checkpoint GC horizon gets 410 Gone and must transfer
// the full snapshot first.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	if !s.authorizeAdmin(w, r) {
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "from must be a generation number"})
		return
	}
	if err := s.failpoint(FailWALStream); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	// The tail streams straight from the WAL file — the handler never
	// holds a full copy, so N concurrently rejoining peers cost N open
	// descriptors, not N tail-sized buffers (this endpoint deliberately
	// sits outside the admission limiter).
	tail, size, records, err := s.store.WALTailReader(from)
	if errors.Is(err, rex.ErrBelowWALHorizon) {
		writeJSON(w, http.StatusGone,
			errorResponse{Error: fmt.Sprintf("generation %d is below the checkpoint horizon; fetch /admin/snapshot", from)})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	defer tail.Close() //nolint:errcheck // read-only descriptor
	if s.failpoint(FailWALStreamCut) != nil && size > walCutMargin {
		// Chaos: tear the stream mid-record. The declared length is the
		// full tail, so the client's frame scanner hits a torn frame and
		// keeps only the records that arrived whole.
		hijackCut(w, [][2]string{
			{"Content-Type", "application/octet-stream"},
			{"X-Rex-Wal-From", strconv.FormatUint(from, 10)},
			{"X-Rex-Wal-Records", strconv.Itoa(records)},
		}, size, io.LimitReader(tail, size-walCutMargin))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Rex-Wal-From", strconv.FormatUint(from, 10))
	w.Header().Set("X-Rex-Wal-Records", strconv.Itoa(records))
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
	io.Copy(w, tail) //nolint:errcheck // streaming response
}

// walCutMargin is how many trailing bytes the FailWALStreamCut seam
// withholds — smaller than any frame, so the cut always lands inside
// the final record.
const walCutMargin = 7

// syncTriggerResponse answers POST /admin/sync.
type syncTriggerResponse struct {
	Status string `json:"status"`
	Peer   string `json:"peer,omitempty"`
}

// handleSyncTrigger answers POST /admin/sync?peer=<url>: kick the
// replica's sync engine (asynchronously — the router fires and
// forgets). The optional peer is the caller's view of the freshest
// source; without it the engine probes its configured peers.
func (s *Server) handleSyncTrigger(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if !s.refuseDuringDrain(w) || !s.authorizeAdmin(w, r) {
		return
	}
	e := s.syncEngine()
	if e == nil {
		writeJSON(w, http.StatusConflict,
			errorResponse{Error: "no sync engine configured; start with -peers"})
		return
	}
	peer := r.URL.Query().Get("peer")
	if e.Syncing() {
		writeJSON(w, http.StatusOK, syncTriggerResponse{Status: "already syncing", Peer: peer})
		return
	}
	go func() {
		if _, err := e.Sync(context.Background(), peer); err != nil &&
			!errors.Is(err, rexsync.ErrSyncInProgress) {
			s.logSyncFailure(err)
		}
	}()
	writeJSON(w, http.StatusAccepted, syncTriggerResponse{Status: "sync started", Peer: peer})
}

// logSyncFailure counts a failed admin-triggered sync; the engine's own
// Logf already narrates the details.
func (s *Server) logSyncFailure(error) { s.syncKickFailures.Add(1) }

// registerSyncMetrics adds the rex_sync_* families. All closures are
// nil-safe: they read zeroes until SetSync installs an engine.
func registerSyncMetrics(reg *serverRegistry, s *Server) {
	stats := func() rexsync.Stats {
		if e := s.syncEngine(); e != nil {
			return e.Stats()
		}
		return rexsync.Stats{}
	}
	reg.Gauge("rex_syncing",
		"1 while a replica catch-up (anti-entropy sync) is running.").With().
		SetFunc(func() float64 {
			if stats().Syncing {
				return 1
			}
			return 0
		})
	reg.Counter("rex_sync_attempts_total",
		"Replica catch-up runs started.").With().
		SetFunc(func() float64 { return float64(stats().Attempts) })
	sc := reg.Counter("rex_sync_total",
		"Completed replica catch-up runs by outcome.", "outcome")
	sc.With("ok").SetFunc(func() float64 { return float64(stats().Successes) })
	sc.With("error").SetFunc(func() float64 { return float64(stats().Failures) })
	reg.Counter("rex_sync_wal_records_total",
		"WAL records applied from peers during catch-up.").With().
		SetFunc(func() float64 { return float64(stats().WALRecords) })
	sb := reg.Counter("rex_sync_bytes_total",
		"Bytes transferred during catch-up by kind (wal, snapshot).", "kind")
	sb.With("wal").SetFunc(func() float64 { return float64(stats().WALBytes) })
	sb.With("snapshot").SetFunc(func() float64 { return float64(stats().SnapshotBytes) })
	reg.Counter("rex_sync_snapshots_total",
		"Full checkpoint transfers installed during catch-up.").With().
		SetFunc(func() float64 { return float64(stats().Snapshots) })
	reg.Counter("rex_sync_resumes_total",
		"Snapshot transfers resumed from a partial spool file.").With().
		SetFunc(func() float64 { return float64(stats().Resumes) })
	reg.Counter("rex_sync_fingerprint_mismatches_total",
		"Fingerprint verification failures during catch-up.").With().
		SetFunc(func() float64 { return float64(stats().Mismatches) })
	reg.Counter("rex_sync_trigger_failures_total",
		"Admin-triggered (POST /admin/sync) catch-ups that failed.").With().
		SetFunc(func() float64 { return float64(s.syncKickFailures.Load()) })
}
