package live

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rex/internal/fail"
	"rex/internal/kb"
)

// walDelta builds the i-th test delta: a fresh node chained onto "a".
func walDelta(i int) string {
	return fmt.Sprintf("node\tw%d\tperson\nedge\ta\tw%d\tknows\n", i, i)
}

// openFresh seeds a journal directory with the base graph as
// generation 1, ready for appends.
func openFresh(t *testing.T, dir string, opt JournalOptions) (*Journal, *kb.Graph) {
	t.Helper()
	j, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	if j.HasState() {
		t.Fatal("fresh journal reports state")
	}
	g := baseGraph(t)
	if err := j.Checkpoint(g, 1); err != nil {
		t.Fatal(err)
	}
	return j, g
}

// applyAndAppend replays src onto g and appends it to the journal as
// the given generation, returning the new graph.
func applyAndAppend(t *testing.T, j *Journal, g *kb.Graph, gen uint64, src string) *kb.Graph {
	t.Helper()
	d := parse(t, src)
	next, _, _, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(gen, d.AppendWire(nil)); err != nil {
		t.Fatal(err)
	}
	return next
}

func TestDeltaWireRoundTrip(t *testing.T) {
	src := strings.Join([]string{
		"# comment dropped",
		"node\td\tfilm",
		"label\tstarring\tD",
		"label\tfriend\tU",
		"edge\ta\td\tstarring",
		"settype\ta\tdirector",
		"deledge\ta\tb\tknows",
	}, "\n")
	d := parse(t, src)
	wire := d.AppendWire(nil)
	d2, err := ParseDelta(strings.NewReader(string(wire)))
	if err != nil {
		t.Fatalf("re-parse of wire encoding: %v", err)
	}
	if len(d2.Ops) != len(d.Ops) {
		t.Fatalf("round trip: %d ops, want %d", len(d2.Ops), len(d.Ops))
	}
	for i := range d.Ops {
		a, b := d.Ops[i], d2.Ops[i]
		a.Line, b.Line = 0, 0 // line numbers shift once comments are dropped
		if a != b {
			t.Errorf("op %d: %+v != %+v", i, a, b)
		}
	}
	// Encoding the re-parse must be byte-identical: the wire form is a
	// fixed point.
	if got := string(d2.AppendWire(nil)); got != string(wire) {
		t.Errorf("wire encoding is not a fixed point:\n%q\n%q", got, wire)
	}
}

func TestJournalRecoverFresh(t *testing.T) {
	j, err := OpenJournal(t.TempDir(), JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	g, gen, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if g != nil || gen != 0 {
		t.Fatalf("fresh recover = (%v, %d), want (nil, 0)", g, gen)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, g := openFresh(t, dir, JournalOptions{Fsync: FsyncNever})
	for i := 0; i < 5; i++ {
		g = applyAndAppend(t, j, g, uint64(i+2), walDelta(i))
	}
	want := g.Fingerprint()
	j.Close()

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.HasState() {
		t.Fatal("journal with checkpoint reports no state")
	}
	rg, gen, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 6 {
		t.Fatalf("recovered generation = %d, want 6", gen)
	}
	if got := rg.Fingerprint(); got != want {
		t.Fatalf("recovered fingerprint = %s, want %s", got, want)
	}
	st := j2.Stats()
	if st.Replayed != 5 || st.TornTail {
		t.Fatalf("stats = %+v, want 5 replayed and no torn tail", st)
	}
	// The recovered journal accepts further appends and recovers again.
	rg = applyAndAppend(t, j2, rg, 7, walDelta(99))
	want = rg.Fingerprint()
	j2.Close()
	j3, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	rg3, gen3, err := j3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if gen3 != 7 || rg3.Fingerprint() != want {
		t.Fatalf("second recovery = (gen %d, %s), want (7, %s)", gen3, rg3.Fingerprint(), want)
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	for _, cut := range []int64{1, 8, walFrameHeader, walFrameHeader + 3} {
		t.Run(fmt.Sprintf("keep%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			j, g := openFresh(t, dir, JournalOptions{Fsync: FsyncNever})
			g = applyAndAppend(t, j, g, 2, walDelta(0))
			want := g.Fingerprint()
			prefix := j.Stats().WALSize
			applyAndAppend(t, j, g, 3, walDelta(1))
			j.Close()
			// Tear the final record: keep only cut bytes of it.
			if err := os.Truncate(filepath.Join(dir, walName), prefix+cut); err != nil {
				t.Fatal(err)
			}
			j2, err := OpenJournal(dir, JournalOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			rg, gen, err := j2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if gen != 2 || rg.Fingerprint() != want {
				t.Fatalf("recovered (gen %d, %s), want (2, %s)", gen, rg.Fingerprint(), want)
			}
			st := j2.Stats()
			if !st.TornTail || st.Replayed != 1 {
				t.Fatalf("stats = %+v, want torn tail with 1 replayed", st)
			}
			if st.WALSize != prefix {
				t.Fatalf("WAL size after recovery = %d, want the %d-byte valid prefix", st.WALSize, prefix)
			}
			// Appends continue cleanly after the truncated tail.
			rg = applyAndAppend(t, j2, rg, 3, walDelta(7))
			want = rg.Fingerprint()
			j2.Close()
			j3, err := OpenJournal(dir, JournalOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer j3.Close()
			rg3, gen3, err := j3.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if gen3 != 3 || rg3.Fingerprint() != want {
				t.Fatalf("post-tear append lost: (gen %d, %s), want (3, %s)", gen3, rg3.Fingerprint(), want)
			}
		})
	}
}

func TestJournalCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, g := openFresh(t, dir, JournalOptions{Fsync: FsyncNever})
	g = applyAndAppend(t, j, g, 2, walDelta(0))
	want := g.Fingerprint()
	prefix := j.Stats().WALSize
	applyAndAppend(t, j, g, 3, walDelta(1))
	j.Close()
	// Flip one payload byte of the second record.
	path := filepath.Join(dir, walName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[prefix+walFrameHeader] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rg, gen, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || rg.Fingerprint() != want {
		t.Fatalf("recovered (gen %d, %s), want (2, %s)", gen, rg.Fingerprint(), want)
	}
	if st := j2.Stats(); !st.TornTail {
		t.Fatalf("stats = %+v, want torn tail", st)
	}
}

func TestJournalCheckpointTruncatesAndGCs(t *testing.T) {
	dir := t.TempDir()
	j, g := openFresh(t, dir, JournalOptions{Fsync: FsyncNever})
	for i := 0; i < 3; i++ {
		g = applyAndAppend(t, j, g, uint64(i+2), walDelta(i))
	}
	if st := j.Stats(); st.WALSize == 0 {
		t.Fatal("WAL empty before checkpoint")
	}
	if err := j.Checkpoint(g, 4); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.WALSize != 0 || st.CheckpointGen != 4 {
		t.Fatalf("after checkpoint: %+v, want empty WAL at generation 4", st)
	}
	if gens := j.checkpointGens(); len(gens) != 1 || gens[0] != 4 {
		t.Fatalf("checkpoints on disk = %v, want [4]", gens)
	}
	want := g.Fingerprint()
	j.Close()
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rg, gen, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 4 || rg.Fingerprint() != want {
		t.Fatalf("recovered (gen %d, %s), want (4, %s)", gen, rg.Fingerprint(), want)
	}
	if st := j2.Stats(); st.Replayed != 0 {
		t.Fatalf("replayed %d records after a clean checkpoint, want 0", st.Replayed)
	}
}

func TestJournalInterruptedCheckpointGC(t *testing.T) {
	defer fail.Reset()
	dir := t.TempDir()
	j, g := openFresh(t, dir, JournalOptions{Fsync: FsyncNever})
	for i := 0; i < 3; i++ {
		g = applyAndAppend(t, j, g, uint64(i+2), walDelta(i))
	}
	want := g.Fingerprint()
	fail.Enable("checkpoint.gc")
	if err := j.Checkpoint(g, 4); !errors.Is(err, fail.ErrInjected) {
		t.Fatalf("checkpoint with gc failpoint = %v, want injected", err)
	}
	fail.Reset()
	j.Close()
	// Both checkpoints and the full WAL are on disk; recovery must pick
	// the newer checkpoint and skip the stale records.
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if gens := j2.checkpointGens(); len(gens) != 2 {
		t.Fatalf("checkpoints on disk = %v, want two (GC was interrupted)", gens)
	}
	rg, gen, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 4 || rg.Fingerprint() != want {
		t.Fatalf("recovered (gen %d, %s), want (4, %s)", gen, rg.Fingerprint(), want)
	}
	if st := j2.Stats(); st.Replayed != 0 || st.TornTail {
		t.Fatalf("stats = %+v, want 0 replayed (all records shadowed by the checkpoint)", st)
	}
}

func TestJournalCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	j, g := openFresh(t, dir, JournalOptions{Fsync: FsyncNever})
	g = applyAndAppend(t, j, g, 2, walDelta(0))
	want := g.Fingerprint()
	j.Close()
	// A later checkpoint that got renamed but is unreadable garbage.
	if err := os.WriteFile(filepath.Join(dir, ckptPrefix+"0000000000000005"+ckptSuffix),
		[]byte(binaryPartialStub), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rg, gen, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || rg.Fingerprint() != want {
		t.Fatalf("recovered (gen %d, %s), want fallback to (2, %s)", gen, rg.Fingerprint(), want)
	}
}

func TestJournalTornAppendFailpoint(t *testing.T) {
	defer fail.Reset()
	dir := t.TempDir()
	j, g := openFresh(t, dir, JournalOptions{Fsync: FsyncNever})
	g = applyAndAppend(t, j, g, 2, walDelta(0))
	want := g.Fingerprint()
	fail.Enable("wal.append.torn")
	d := parse(t, walDelta(1))
	if err := j.Append(3, d.AppendWire(nil)); !errors.Is(err, fail.ErrInjected) {
		t.Fatalf("torn append = %v, want injected", err)
	}
	fail.Reset()
	// The journal refuses further writes (the crash already "happened").
	if err := j.Append(3, d.AppendWire(nil)); err == nil {
		t.Fatal("append after simulated crash succeeded, want refusal")
	}
	j.Close()
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rg, gen, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || rg.Fingerprint() != want {
		t.Fatalf("recovered (gen %d, %s), want (2, %s)", gen, rg.Fingerprint(), want)
	}
	if st := j2.Stats(); !st.TornTail {
		t.Fatalf("stats = %+v, want torn tail from the half-written frame", st)
	}
}

func TestJournalAppendErrorRollsBack(t *testing.T) {
	defer fail.Reset()
	dir := t.TempDir()
	j, g := openFresh(t, dir, JournalOptions{Fsync: FsyncNever})
	g = applyAndAppend(t, j, g, 2, walDelta(0))
	size := j.Stats().WALSize
	// A sync-layer failure (e.g. ENOSPC at fsync) must leave the WAL
	// appendable with the failed frame rolled back.
	fail.Enable("wal.sync.error")
	d := parse(t, walDelta(1))
	if err := j.Append(3, d.AppendWire(nil)); !errors.Is(err, fail.ErrInjected) {
		t.Fatalf("append with sync failure = %v, want injected", err)
	}
	fail.Reset()
	if st := j.Stats(); st.WALSize != size {
		t.Fatalf("WAL size after rollback = %d, want %d", st.WALSize, size)
	}
	// The journal keeps working: the same generation can be re-appended.
	g = applyAndAppend(t, j, g, 3, walDelta(1))
	want := g.Fingerprint()
	j.Close()
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rg, gen, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 || rg.Fingerprint() != want || j2.Stats().TornTail {
		t.Fatalf("recovered (gen %d, %s, torn %v), want (3, %s, false)", gen, rg.Fingerprint(), j2.Stats().TornTail, want)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, c := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"off", FsyncNever, true},
		{"never", FsyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseFsyncPolicy(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Errorf("ParseFsyncPolicy(%q) = (%v, %v), want (%v, ok=%v)", c.in, got, err, c.want, c.ok)
		}
	}
	// FsyncAlways syncs every append; FsyncNever none.
	dir := t.TempDir()
	j, g := openFresh(t, dir, JournalOptions{Fsync: FsyncAlways})
	applyAndAppend(t, j, g, 2, walDelta(0))
	if st := j.Stats(); st.Fsyncs == 0 {
		t.Fatalf("FsyncAlways: %+v, want at least one fsync", st)
	}
	dir2 := t.TempDir()
	j2, g2 := openFresh(t, dir2, JournalOptions{Fsync: FsyncNever})
	applyAndAppend(t, j2, g2, 2, walDelta(0))
	if st := j2.Stats(); st.Fsyncs != 0 {
		t.Fatalf("FsyncNever: %+v, want zero fsyncs", st)
	}
	// FsyncInterval with a huge interval syncs the WAL lazily.
	dir3 := t.TempDir()
	j3, g3 := openFresh(t, dir3, JournalOptions{Fsync: FsyncInterval, FsyncInterval: time.Hour})
	g3 = applyAndAppend(t, j3, g3, 2, walDelta(0))
	applyAndAppend(t, j3, g3, 3, walDelta(1))
	if st := j3.Stats(); st.Fsyncs != 0 {
		t.Fatalf("FsyncInterval(1h): %+v, want fsyncs deferred", st)
	}
	if err := j3.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := j3.Stats(); st.Fsyncs != 1 {
		t.Fatalf("explicit Sync: %+v, want exactly one fsync", st)
	}
}
