package live

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rex/internal/fail"
	"rex/internal/kb"
)

// The journal makes a live store crash-safe. It owns one directory with
// two kinds of files:
//
//	checkpoint-<gen16x>.rexkb   a full binary snapshot of generation gen
//	wal.log                     the write-ahead log of delta batches
//
// Every accepted delta batch is appended to the WAL — length+CRC
// framed, tagged with the generation it produces — and fsynced per
// policy *before* the manager publishes the new snapshot, so an
// acknowledged delta can never be lost to a crash. Periodically the
// published graph is checkpointed: written to a temp file, fsynced,
// atomically renamed, and the WAL truncated. Recovery loads the newest
// valid checkpoint and replays the WAL tail, tolerating a torn final
// record (the crash window of an in-flight append).
//
// WAL record framing, all integers big-endian:
//
//	gen(8) len(4) crc(4) payload(len)
//
// where crc is CRC-32 (IEEE) over the 12 gen+len bytes followed by the
// payload, and the payload is the delta's canonical wire encoding
// (Delta.AppendWire). A record is valid only if its header and payload
// read completely, the CRC matches, and its generation continues the
// replay sequence; the first invalid record ends recovery — everything
// after it is by construction unacknowledged tail garbage, and the file
// is truncated back to the validated prefix before new appends.

// FsyncPolicy selects when the WAL is flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acknowledged delta is on
	// stable storage before the swap publishes. The durable default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per FsyncInterval, bounding the
	// unsynced window: a crash loses at most the last interval's
	// acknowledged deltas (they remain all-or-nothing, never torn).
	FsyncInterval
	// FsyncNever leaves flushing to the OS page cache. Fastest; a crash
	// of the machine (not just the process) can lose recent deltas.
	FsyncNever
)

// String names the policy as the -fsync flag spells it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses the -fsync flag values always, interval, off.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off", "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("live: unknown fsync policy %q (want always, interval or off)", s)
}

// JournalOptions configures durability. The zero value syncs every
// append and checkpoints every DefaultCheckpointEvery deltas.
type JournalOptions struct {
	// Fsync selects the WAL flush policy.
	Fsync FsyncPolicy
	// FsyncInterval bounds the unsynced window under FsyncInterval
	// (default 100ms; ignored by the other policies).
	FsyncInterval time.Duration
	// CheckpointEvery checkpoints after this many WAL appends
	// (default DefaultCheckpointEvery; negative disables count-driven
	// checkpoints).
	CheckpointEvery int
	// CheckpointBytes checkpoints once the WAL exceeds this size
	// (default DefaultCheckpointBytes; negative disables).
	CheckpointBytes int64
}

// Default checkpoint policy: bound both replay work and WAL size.
const (
	DefaultCheckpointEvery = 64
	DefaultCheckpointBytes = int64(64) << 20
)

func (o JournalOptions) normalized() JournalOptions {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = DefaultCheckpointEvery
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = DefaultCheckpointBytes
	}
	return o
}

// JournalStats reports the journal's cumulative counters and current
// sizes; all fields are safe to read concurrently with the write path.
type JournalStats struct {
	Appends       uint64 // WAL records written
	AppendedBytes uint64 // WAL bytes written (frames included)
	Fsyncs        uint64 // WAL fsync calls
	Checkpoints   uint64 // checkpoints written since open
	Replayed      int    // WAL records replayed by Recover
	TornTail      bool   // Recover dropped a torn/corrupt tail
	WALSize       int64  // current WAL size in bytes
	CheckpointGen uint64 // newest on-disk checkpoint generation (0 = none)
}

// Journal is the durability sidecar of one live store. Append and
// Checkpoint are called from the store's (already serialised) write
// path; Stats may be called from any goroutine.
type Journal struct {
	dir string
	opt JournalOptions

	mu       sync.Mutex
	wal      *os.File
	walSize  int64
	sinceCk  int  // appends since the last checkpoint
	broken   bool // a failed append left an unrolled-back tail: refuse writes
	lastSync time.Time

	appends   atomic.Uint64
	appBytes  atomic.Uint64
	fsyncs    atomic.Uint64
	ckpts     atomic.Uint64
	replayed  int
	tornTail  bool
	walSizeA  atomic.Int64
	ckptGen   atomic.Uint64
	ckptFP    atomic.Pointer[string] // fingerprint of the newest checkpoint
	closeOnce sync.Once
}

const (
	walName        = "wal.log"
	ckptPrefix     = "checkpoint-"
	ckptSuffix     = ".rexkb"
	walFrameHeader = 16 // gen(8) + len(4) + crc(4)
	// maxWALRecord bounds one record's payload so a corrupt length field
	// cannot drive a huge allocation during recovery. Matches the
	// serving layer's delta body limit.
	maxWALRecord = 256 << 20
)

// OpenJournal opens (creating if needed) the journal directory. Stale
// temp files from an interrupted checkpoint are removed; the WAL is
// opened for appending but not yet validated — call Recover before the
// first Append.
func OpenJournal(dir string, opt JournalOptions) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("live: empty journal directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("live: journal dir: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("live: journal dir: %w", err)
	}
	j := &Journal{dir: dir, opt: opt.normalized(), lastSync: time.Now()}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name())) //nolint:errcheck // best-effort cleanup
		}
	}
	if gens := j.checkpointGens(); len(gens) > 0 {
		j.ckptGen.Store(gens[len(gens)-1])
	}
	f, err := os.OpenFile(j.walPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("live: wal: %w", err)
	}
	j.wal = f
	return j, nil
}

func (j *Journal) walPath() string { return filepath.Join(j.dir, walName) }

func (j *Journal) ckptPath(gen uint64) string {
	return filepath.Join(j.dir, fmt.Sprintf("%s%016x%s", ckptPrefix, gen, ckptSuffix))
}

// checkpointGens lists the on-disk checkpoint generations, ascending.
func (j *Journal) checkpointGens() []uint64 {
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		gen, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		gens = append(gens, gen)
	}
	sort.Slice(gens, func(a, b int) bool { return gens[a] < gens[b] })
	return gens
}

// HasState reports whether the journal holds anything to recover from
// (at least one checkpoint file). A journal without state is fresh: the
// caller seeds it with Checkpoint of its initial graph.
func (j *Journal) HasState() bool { return j.ckptGen.Load() != 0 }

// Recover loads the newest valid checkpoint and replays the WAL tail
// onto it, returning the recovered graph and its generation. Corrupt
// checkpoints fall back to the next older one; a torn or corrupt final
// WAL record (the crash window of an in-flight append) ends replay and
// is truncated away, as are leftover records at or below the checkpoint
// generation (the crash window of an interrupted checkpoint GC). After
// Recover the journal is positioned for appends.
//
// A fresh journal (no checkpoint) returns a nil graph and generation 0;
// a WAL tail without any checkpoint to base it on is an error.
func (j *Journal) Recover() (*kb.Graph, uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var g *kb.Graph
	var gen uint64
	gens := j.checkpointGens()
	for i := len(gens) - 1; i >= 0; i-- {
		loaded, err := kb.LoadBinary(j.ckptPath(gens[i]))
		if err != nil {
			// A corrupt checkpoint (torn write that still got renamed, disk
			// damage) falls back to the predecessor; the WAL bridges the
			// generation gap only from the generation we actually load, so
			// older records must still be present — GC removes them only
			// after the newer checkpoint is durable.
			continue
		}
		g, gen = loaded, gens[i]
		fp := loaded.Fingerprint()
		j.ckptFP.Store(&fp)
		break
	}
	j.ckptGen.Store(gen)
	size, err := j.wal.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, fmt.Errorf("live: wal seek: %w", err)
	}
	if g == nil {
		if len(gens) > 0 {
			return nil, 0, fmt.Errorf("live: no readable checkpoint among %d candidates in %s", len(gens), j.dir)
		}
		if size > 0 {
			return nil, 0, fmt.Errorf("live: wal has %d bytes but no checkpoint to replay onto", size)
		}
		j.walSize = 0
		j.walSizeA.Store(0)
		return nil, 0, nil
	}
	g, gen, validEnd, replayed, torn, err := j.replayLocked(g, gen, size)
	if err != nil {
		return nil, 0, err
	}
	j.replayed, j.tornTail = replayed, torn
	if validEnd < size {
		if err := j.wal.Truncate(validEnd); err != nil {
			return nil, 0, fmt.Errorf("live: wal truncate: %w", err)
		}
	}
	if _, err := j.wal.Seek(validEnd, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("live: wal seek: %w", err)
	}
	j.walSize = validEnd
	j.walSizeA.Store(validEnd)
	// Replay rebuilt the tail as stacked overlays; fold them so the
	// recovered store starts from fresh CSR arrays like a clean boot.
	if replayed > 0 && g.Overlay().Depth > 0 {
		g = g.Compact()
	}
	return g, gen, nil
}

// replayLocked scans the WAL from the start, applying every valid
// record above the checkpoint generation, and reports where the valid
// prefix ends.
func (j *Journal) replayLocked(g *kb.Graph, gen uint64, size int64) (*kb.Graph, uint64, int64, int, bool, error) {
	if _, err := j.wal.Seek(0, io.SeekStart); err != nil {
		return nil, 0, 0, 0, false, fmt.Errorf("live: wal seek: %w", err)
	}
	var (
		off      int64
		replayed int
		header   [walFrameHeader]byte
		payload  []byte
	)
	for off < size {
		if _, err := io.ReadFull(j.wal, header[:]); err != nil {
			return g, gen, off, replayed, true, nil // torn header
		}
		recGen := binary.BigEndian.Uint64(header[0:8])
		n := binary.BigEndian.Uint32(header[8:12])
		crc := binary.BigEndian.Uint32(header[12:16])
		if int64(n) > maxWALRecord || off+walFrameHeader+int64(n) > size {
			return g, gen, off, replayed, true, nil // torn or corrupt length
		}
		if int(n) > cap(payload) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(j.wal, payload); err != nil {
			return g, gen, off, replayed, true, nil // torn payload
		}
		h := crc32.NewIEEE()
		h.Write(header[0:12]) //nolint:errcheck // hash writes cannot fail
		h.Write(payload)      //nolint:errcheck
		if h.Sum32() != crc {
			return g, gen, off, replayed, true, nil // corrupt record
		}
		off += walFrameHeader + int64(n)
		if recGen <= gen {
			continue // pre-checkpoint leftover of an interrupted GC
		}
		if recGen != gen+1 {
			// A generation gap can only follow a record the rollback path
			// failed to truncate; everything from here on is unreachable
			// tail garbage.
			return g, gen, off - walFrameHeader - int64(n), replayed, true, nil
		}
		d, err := ParseDelta(strings.NewReader(string(payload)))
		if err != nil {
			return g, gen, off - walFrameHeader - int64(n), replayed, true, nil
		}
		next, _, _, err := d.Apply(g)
		if err != nil {
			// The record was acknowledged against exactly this graph state
			// once, so replay cannot legitimately fail: surface it rather
			// than silently dropping acknowledged writes.
			return nil, 0, 0, 0, false, fmt.Errorf("live: wal replay of generation %d: %w", recGen, err)
		}
		g, gen = next, recGen
		replayed++
	}
	return g, gen, off, replayed, false, nil
}

// Append writes one delta batch producing generation gen to the WAL and
// flushes it per the fsync policy. It must be called before the
// generation is published — the caller acknowledges the delta only
// after both Append and the publish succeed. On error nothing is
// acknowledged: a partially written frame is truncated away so the next
// append starts from a clean tail, and if even that fails the journal
// refuses further writes (the process must restart and recover).
func (j *Journal) Append(gen uint64, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return fmt.Errorf("live: append to closed journal")
	}
	if j.broken {
		return fmt.Errorf("live: wal is broken by an earlier failed append; restart to recover")
	}
	if err := fail.Hit("wal.append"); err != nil {
		return err
	}
	frame := make([]byte, walFrameHeader+len(payload))
	binary.BigEndian.PutUint64(frame[0:8], gen)
	binary.BigEndian.PutUint32(frame[8:12], uint32(len(payload)))
	h := crc32.NewIEEE()
	h.Write(frame[0:12]) //nolint:errcheck // hash writes cannot fail
	h.Write(payload)     //nolint:errcheck
	binary.BigEndian.PutUint32(frame[12:16], h.Sum32())
	copy(frame[walFrameHeader:], payload)

	written := frame
	var werr error
	if err := fail.Hit("wal.append.torn"); err != nil {
		// Simulated crash mid-write: flush half the frame and stop cold,
		// leaving the torn tail on disk exactly as a real crash would.
		written = frame[:len(frame)/2]
		werr = err
	}
	n, err := j.wal.Write(written)
	if werr == nil {
		werr = err
	} else {
		// The simulated crash also skips the rollback below — a crashed
		// process cannot clean up after itself.
		j.broken = true
		return werr
	}
	if werr == nil {
		werr = fail.Hit("wal.sync.error")
	}
	if werr == nil && j.shouldSyncLocked() {
		if err := j.syncLocked(); err != nil {
			werr = err
		}
	}
	if werr != nil {
		// Roll the tail back so the journal stays appendable: an unsynced
		// or half-written frame must not sit in front of future records.
		if err := j.wal.Truncate(j.walSize); err != nil {
			j.broken = true
			return fmt.Errorf("live: wal append failed (%v) and rollback failed (%v); restart to recover", werr, err)
		}
		if _, err := j.wal.Seek(j.walSize, io.SeekStart); err != nil {
			j.broken = true
			return fmt.Errorf("live: wal append failed (%v) and rollback seek failed (%v); restart to recover", werr, err)
		}
		return werr
	}
	j.walSize += int64(n)
	j.walSizeA.Store(j.walSize)
	j.sinceCk++
	j.appends.Add(1)
	j.appBytes.Add(uint64(n))
	return nil
}

// shouldSyncLocked applies the fsync policy to this append.
func (j *Journal) shouldSyncLocked() bool {
	switch j.opt.Fsync {
	case FsyncAlways:
		return true
	case FsyncInterval:
		return time.Since(j.lastSync) >= j.opt.FsyncInterval
	}
	return false
}

func (j *Journal) syncLocked() error {
	if err := fail.Hit("wal.sync"); err != nil {
		return err
	}
	if err := j.wal.Sync(); err != nil {
		return err
	}
	j.fsyncs.Add(1)
	j.lastSync = time.Now()
	return nil
}

// ShouldCheckpoint reports whether the checkpoint policy asks for one
// (appends since the last checkpoint, or WAL size).
func (j *Journal) ShouldCheckpoint() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return (j.opt.CheckpointEvery > 0 && j.sinceCk >= j.opt.CheckpointEvery) ||
		(j.opt.CheckpointBytes > 0 && j.walSize >= j.opt.CheckpointBytes)
}

// Checkpoint writes g (generation gen) as a durable snapshot: temp
// file, fsync, atomic rename, directory fsync — then garbage-collects
// older checkpoints and truncates the WAL. A crash at any point leaves
// a recoverable directory: before the rename the old checkpoint + full
// WAL still recover, after it the new checkpoint shadows the stale WAL
// records (replay skips records at or below the checkpoint generation).
func (j *Journal) Checkpoint(g *kb.Graph, gen uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return fmt.Errorf("live: checkpoint on closed journal")
	}
	final := j.ckptPath(gen)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("live: checkpoint: %w", err)
	}
	werr := fail.Hit("checkpoint.write")
	if werr != nil {
		// Simulated crash mid-checkpoint: leave a partial temp file.
		f.Write([]byte(binaryPartialStub)) //nolint:errcheck // injected-crash path
		f.Close()                          //nolint:errcheck
		return werr
	}
	if err := g.WriteBinary(f); err != nil {
		f.Close()      //nolint:errcheck
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("live: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()      //nolint:errcheck
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("live: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("live: checkpoint close: %w", err)
	}
	if err := fail.Hit("checkpoint.rename"); err != nil {
		return err // simulated crash: durable temp file, no rename
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("live: checkpoint rename: %w", err)
	}
	syncDir(j.dir)
	j.ckptGen.Store(gen)
	fp := g.Fingerprint()
	j.ckptFP.Store(&fp)
	j.ckpts.Add(1)
	if err := fail.Hit("checkpoint.gc"); err != nil {
		return err // simulated crash: new checkpoint durable, GC pending
	}
	// GC: the new checkpoint is durable, so every other checkpoint and
	// every WAL record are now redundant. Removing checkpoints *above*
	// gen matters for divergence repair: a forked replica installing
	// the fleet's (lower-numbered) checkpoint must not leave its forked
	// higher checkpoint behind, or the next recovery would resurrect
	// the fork. A crash in here merely leaves extra files — recovery
	// would then pick the forked checkpoint, but the sync engine
	// re-detects the fingerprint mismatch and repairs again.
	for _, old := range j.checkpointGens() {
		if old != gen {
			os.Remove(j.ckptPath(old)) //nolint:errcheck // stale files are re-GCed next time
		}
	}
	if err := j.wal.Truncate(0); err != nil {
		return fmt.Errorf("live: wal truncate after checkpoint: %w", err)
	}
	if _, err := j.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("live: wal seek after checkpoint: %w", err)
	}
	j.walSize = 0
	j.walSizeA.Store(0)
	j.sinceCk = 0
	return nil
}

// binaryPartialStub is what an injected checkpoint.write crash leaves in
// the temp file: a few bytes that are not a valid snapshot, so cleanup
// and corrupt-fallback paths are exercised.
const binaryPartialStub = "REXKB\x03partial"

// syncDir best-effort fsyncs a directory so a rename is durable. Errors
// are ignored: not every filesystem supports directory fsync, and the
// rename itself already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()  //nolint:errcheck // best-effort
	d.Close() //nolint:errcheck
}

// Sync forces a WAL flush regardless of policy (used on shutdown).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return nil
	}
	return j.syncLocked()
}

// Close flushes and closes the WAL. The journal is unusable afterwards.
func (j *Journal) Close() error {
	var err error
	j.closeOnce.Do(func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if j.wal == nil {
			return
		}
		serr := j.wal.Sync()
		cerr := j.wal.Close()
		j.wal = nil
		if serr != nil {
			err = serr
		} else {
			err = cerr
		}
	})
	return err
}

// Stats snapshots the journal counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	replayed, torn := j.replayed, j.tornTail
	j.mu.Unlock()
	return JournalStats{
		Appends:       j.appends.Load(),
		AppendedBytes: j.appBytes.Load(),
		Fsyncs:        j.fsyncs.Load(),
		Checkpoints:   j.ckpts.Load(),
		Replayed:      replayed,
		TornTail:      torn,
		WALSize:       j.walSizeA.Load(),
		CheckpointGen: j.ckptGen.Load(),
	}
}
