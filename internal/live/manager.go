package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"rex/internal/fail"
	"rex/internal/kb"
)

// ErrGenerationConflict reports that ApplyDeltaCommitAt found the
// store at a different generation than the caller expected — a
// concurrent writer published in between. Nothing was mutated; the
// caller re-reads the current generation and decides whether its
// record is already covered or genuinely conflicts.
var ErrGenerationConflict = errors.New("live: generation conflict")

// Snapshot is one immutable knowledge-base version: a frozen graph, the
// serving payload built for it (e.g. an explainer plus its result
// cache), a monotonic generation and the graph's content fingerprint.
// Snapshots are never mutated after publication — readers pin one with
// Manager.Current and may use it for the rest of their request even
// after newer generations are swapped in.
type Snapshot struct {
	// Generation counts published versions, starting at 1 for the
	// snapshot the Manager was constructed with. It increases by exactly
	// one per swap.
	Generation uint64
	// Fingerprint is the graph's content hash (kb.Graph.Fingerprint).
	Fingerprint string
	// Graph is the frozen knowledge base of this version.
	Graph *kb.Graph
	// Payload is the per-snapshot serving state produced by the
	// Manager's BuildFunc. Because every snapshot carries its own
	// payload, result caches are invalidated by construction on swap:
	// the new generation starts with a fresh cache and the old one is
	// unreachable to new requests.
	Payload any
}

// BuildFunc constructs the per-snapshot serving payload for a freshly
// built frozen graph. It runs once per swap, before the snapshot is
// published; an error aborts the swap and keeps the current snapshot
// active.
//
// prev and cs enable cache carry-over: for a delta-driven swap, prev is
// the snapshot being replaced and cs the delta's touched-set, so the
// builder may seed the new payload's caches with entries from prev that
// provably cannot observe the change. Both are nil for the initial
// build and for whole-graph swaps (SwapGraph), where no sound carry
// basis exists — the payload must then start cold.
type BuildFunc func(g *kb.Graph, prev *Snapshot, cs *ChangeSet) (any, error)

// Manager owns the active snapshot and serialises its replacement.
//
// Reads are epoch-style and lock-free: Current is a single
// atomic.Pointer load, so request handlers pin a snapshot with no
// contention and in-flight work never observes a torn (graph, payload)
// pair. Writers (ApplyDelta, SwapGraph) serialise on a mutex, build the
// complete next snapshot off to the side, and publish it with one
// atomic store.
type Manager struct {
	build BuildFunc

	// CompactDepth and CompactRatio bound the overlay chain: when a
	// delta-built generation reaches CompactDepth stacked overlays or
	// its materialised half-edges exceed CompactRatio of the base CSR,
	// the manager folds it into fresh CSR arrays before publishing.
	// Compaction runs on the writer path under the same mutex as the
	// apply — readers keep serving the previous snapshot lock-free
	// throughout. Set both before traffic starts; zero values take the
	// defaults (32 and 0.25).
	CompactDepth int
	CompactRatio float64

	mu  sync.Mutex // serialises writers; readers never take it
	cur atomic.Pointer[Snapshot]

	swaps       atomic.Uint64 // completed swaps (generation - 1)
	compactions atomic.Uint64 // overlay chains folded on the write path
}

// Default compaction policy: fold the overlay chain every 32 deltas, or
// sooner if the materialised patch spans reach a quarter of the base
// CSR (at that point the memory sharing no longer pays for the extra
// page-table indirection).
const (
	DefaultCompactDepth = 32
	DefaultCompactRatio = 0.25
)

// NewManager freezes g, builds its payload and installs it as
// generation 1.
func NewManager(g *kb.Graph, build BuildFunc) (*Manager, error) {
	return NewManagerAt(g, build, 1)
}

// NewManagerAt is NewManager with an explicit initial generation, the
// recovery entry point: a store rebuilt from a checkpoint plus a WAL
// tail resumes the generation sequence it crashed at, so generation
// numbers stay comparable across restarts (and across the crash-free
// run the recovery tests diff against).
func NewManagerAt(g *kb.Graph, build BuildFunc, gen uint64) (*Manager, error) {
	if g == nil {
		return nil, fmt.Errorf("live: NewManager: nil graph")
	}
	if gen == 0 {
		return nil, fmt.Errorf("live: NewManagerAt: generation must be positive")
	}
	if build == nil {
		build = func(*kb.Graph, *Snapshot, *ChangeSet) (any, error) { return nil, nil }
	}
	g.Freeze()
	payload, err := build(g, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("live: building initial snapshot: %w", err)
	}
	m := &Manager{
		build:        build,
		CompactDepth: DefaultCompactDepth,
		CompactRatio: DefaultCompactRatio,
	}
	m.cur.Store(&Snapshot{
		Generation:  gen,
		Fingerprint: g.Fingerprint(),
		Graph:       g,
		Payload:     payload,
	})
	return m, nil
}

// Current returns the active snapshot. It is lock-free and safe to call
// from any number of goroutines; the returned snapshot stays valid (and
// immutable) even after later swaps.
func (m *Manager) Current() *Snapshot { return m.cur.Load() }

// Generation returns the active snapshot's generation.
func (m *Manager) Generation() uint64 { return m.cur.Load().Generation }

// Swaps returns the number of completed snapshot swaps since
// construction.
func (m *Manager) Swaps() uint64 { return m.swaps.Load() }

// Compactions returns the number of overlay chains folded into fresh
// CSR arrays on the write path.
func (m *Manager) Compactions() uint64 { return m.compactions.Load() }

// ApplyDelta replays a delta onto the current snapshot's graph as an
// O(delta) overlay generation and atomically publishes the result as
// the next generation, compacting the overlay chain first when it
// crosses the CompactDepth/CompactRatio policy. The current snapshot
// keeps serving until the new one — graph and payload — is fully
// built; on any error nothing is published and the active generation
// is unchanged (the stats returned alongside an error are partial
// counts, undefined for any use beyond diagnostics).
//
// A delta whose every record is a no-op (duplicate nodes and edges,
// deletions of absent edges) changes nothing, so nothing is published:
// the active snapshot — generation, fingerprint and warm result cache —
// stays in place. This makes at-least-once delta delivery idempotent
// instead of a cache flush.
func (m *Manager) ApplyDelta(d *Delta) (*Snapshot, ApplyStats, error) {
	return m.ApplyDeltaCommit(d, nil)
}

// CommitFunc is the durability hook of a swap: called with the fully
// built next generation (graph and number) after the payload is
// constructed and immediately before the atomic publish. A write-ahead
// log appends and flushes the delta here, so by the time any reader can
// observe the new generation its delta is already durable. An error
// aborts the swap — nothing is published, the active snapshot is
// unchanged, and the caller must not acknowledge the delta.
type CommitFunc func(gen uint64, g *kb.Graph) error

// ApplyDeltaCommit is ApplyDelta with a durability hook. A nil commit
// degrades to the plain in-memory swap.
func (m *Manager) ApplyDeltaCommit(d *Delta, commit CommitFunc) (*Snapshot, ApplyStats, error) {
	return m.applyDeltaCommit(d, 0, commit)
}

// ApplyDeltaCommitAt is ApplyDeltaCommit conditioned on the current
// generation: the delta is applied only if it would publish exactly
// generation next. The check runs under the writer mutex, so there is
// no window between validating the generation and mutating — a
// concurrent writer that got there first makes this call fail with
// ErrGenerationConflict without touching the store. This is the
// compare-and-swap the anti-entropy engine needs to replay a peer's
// WAL record without ever double-applying it.
func (m *Manager) ApplyDeltaCommitAt(d *Delta, next uint64, commit CommitFunc) (*Snapshot, ApplyStats, error) {
	if next == 0 {
		return nil, ApplyStats{}, fmt.Errorf("live: ApplyDeltaCommitAt: generation must be positive")
	}
	return m.applyDeltaCommit(d, next, commit)
}

// applyDeltaCommit applies d and publishes the result; a non-zero
// expect demands the published generation be exactly expect, failing
// with ErrGenerationConflict (no mutation) otherwise.
func (m *Manager) applyDeltaCommit(d *Delta, expect uint64, commit CommitFunc) (*Snapshot, ApplyStats, error) {
	if d == nil || len(d.Ops) == 0 {
		return nil, ApplyStats{}, fmt.Errorf("live: empty delta")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.cur.Load()
	if expect != 0 && cur.Generation+1 != expect {
		return nil, ApplyStats{}, fmt.Errorf("%w: expected to publish generation %d, store is at %d",
			ErrGenerationConflict, expect, cur.Generation)
	}
	g, st, cs, err := d.Apply(cur.Graph)
	if err != nil {
		return nil, st, err
	}
	if !st.Changed() {
		return cur, st, nil
	}
	if info := g.Overlay(); info.Depth >= m.CompactDepth || info.Ratio > m.CompactRatio {
		g = g.Compact()
		st.Compacted = true
		st.OverlayDepth = 0
		m.compactions.Add(1)
	}
	snap, err := m.publishLocked(g, cur, cs, commit)
	if err != nil {
		return nil, st, err
	}
	return snap, st, nil
}

// SwapGraph publishes an independently built graph (e.g. re-read from
// disk) as the next generation, freezing it first if needed. There is
// no delta relating it to the current snapshot, so the payload is built
// without a carry basis and starts cold.
func (m *Manager) SwapGraph(g *kb.Graph) (*Snapshot, error) {
	return m.SwapGraphCommit(g, nil)
}

// SwapGraphCommit is SwapGraph with a durability hook (see CommitFunc);
// a durable store checkpoints the wholesale replacement there, since no
// delta exists that a WAL could replay to reproduce it.
func (m *Manager) SwapGraphCommit(g *kb.Graph, commit CommitFunc) (*Snapshot, error) {
	if g == nil {
		return nil, fmt.Errorf("live: SwapGraph: nil graph")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g.Freeze()
	return m.publishLocked(g, nil, nil, commit)
}

// SwapGraphAt publishes an independently built graph at an explicit
// generation — the anti-entropy entry point: a lagging replica installs
// a peer's checkpoint of generation gen, jumping its own sequence
// forward to match the fleet's numbering instead of incrementing by
// one. gen must be strictly above the current generation (generations
// never move backwards, and an equal generation with different content
// would fork the fleet's history). Like SwapGraph, the payload is built
// without a carry basis and starts cold.
func (m *Manager) SwapGraphAt(g *kb.Graph, gen uint64, commit CommitFunc) (*Snapshot, error) {
	if g == nil {
		return nil, fmt.Errorf("live: SwapGraphAt: nil graph")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur := m.cur.Load().Generation; gen <= cur {
		return nil, fmt.Errorf("live: SwapGraphAt: generation %d is not above current %d", gen, cur)
	}
	g.Freeze()
	return m.publishAtLocked(g, gen, nil, nil, commit)
}

// SwapGraphRepair publishes an independently built graph at an
// explicit generation with the monotonicity requirement waived — the
// divergence-repair entry point. A replica whose history forked (same
// generation number, different content than the fleet) can only heal
// by adopting the fleet's state wholesale, and the fleet's newest
// checkpoint may sit at or below the forked local generation. The
// local generation may therefore move backwards here; that is safe
// only because the caller (the sync engine) is discarding local
// history it has proven divergent, and the routing tier's generation
// floor keeps the replica out of client-visible rotation until it has
// re-converged at or above the fleet's floor.
func (m *Manager) SwapGraphRepair(g *kb.Graph, gen uint64, commit CommitFunc) (*Snapshot, error) {
	if g == nil {
		return nil, fmt.Errorf("live: SwapGraphRepair: nil graph")
	}
	if gen == 0 {
		return nil, fmt.Errorf("live: SwapGraphRepair: generation must be positive")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g.Freeze()
	return m.publishAtLocked(g, gen, nil, nil, commit)
}

// publishLocked builds the payload for g, runs the durability commit
// hook, and stores the next-generation snapshot. prev and cs are
// forwarded to the BuildFunc as the carry basis when the swap came from
// a delta. Callers hold m.mu.
func (m *Manager) publishLocked(g *kb.Graph, prev *Snapshot, cs *ChangeSet, commit CommitFunc) (*Snapshot, error) {
	return m.publishAtLocked(g, m.cur.Load().Generation+1, prev, cs, commit)
}

// publishAtLocked is publishLocked at an explicit target generation.
func (m *Manager) publishAtLocked(g *kb.Graph, next uint64, prev *Snapshot, cs *ChangeSet, commit CommitFunc) (*Snapshot, error) {
	payload, err := m.build(g, prev, cs)
	if err != nil {
		return nil, fmt.Errorf("live: building snapshot payload: %w", err)
	}
	if commit != nil {
		if err := commit(next, g); err != nil {
			return nil, err
		}
	}
	if err := fail.Hit("live.publish"); err != nil {
		// Fault-injection point for the crash window between a durable
		// WAL append and the in-memory publish: the delta is on disk but
		// was never acknowledged, so recovery may legitimately replay it.
		return nil, err
	}
	snap := &Snapshot{
		Generation:  next,
		Fingerprint: g.Fingerprint(),
		Graph:       g,
		Payload:     payload,
	}
	m.cur.Store(snap)
	m.swaps.Add(1)
	return snap, nil
}
