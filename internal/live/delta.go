// Package live manages versioned knowledge-base snapshots: a delta log
// of graph mutations parsed from the TSV record syntax, a builder that
// replays a delta onto a frozen snapshot to produce the next one, and
// an epoch-based Manager that atomically hot-swaps the active snapshot
// while in-flight readers keep their pinned version lock-free.
//
// The lifecycle follows one rule: **served graphs are immutable**. A
// delta is never applied in place — it is replayed onto a deep clone of
// the current graph, the clone is frozen, and the (graph, payload) pair
// is published with a single atomic pointer store. Readers that loaded
// the previous snapshot finish on it undisturbed; the old version is
// garbage-collected when the last pinned reader drops it.
package live

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"rex/internal/kb"
)

// The delta wire format extends the knowledge-base TSV record syntax
// (internal/kb/tsv.go) with mutation records, so an extraction pipeline
// can stream both initial loads and incremental updates in one dialect:
//
//	# comment
//	node\t<name>\t<type>           add an entity (existing: no-op)
//	label\t<name>\t<D|U>           register a relationship label
//	edge\t<from>\t<to>\t<label>    add an edge (duplicate: no-op)
//	settype\t<name>\t<type>        change an entity's type
//	deledge\t<from>\t<to>\t<label> remove an edge (absent: no-op)
//
// Records are replayed in order, so a delta may introduce a node and
// connect it on the next line. Edge records may reference entities and
// labels from the base snapshot or from earlier records of the same
// delta; unknown references are errors that abort the whole delta —
// application is all-or-nothing.

// OpKind discriminates delta mutations.
type OpKind uint8

// The delta mutation kinds, in record-syntax order.
const (
	OpAddNode OpKind = iota
	OpAddLabel
	OpAddEdge
	OpSetType
	OpDelEdge
)

// String returns the record keyword for the kind.
func (k OpKind) String() string {
	switch k {
	case OpAddNode:
		return "node"
	case OpAddLabel:
		return "label"
	case OpAddEdge:
		return "edge"
	case OpSetType:
		return "settype"
	case OpDelEdge:
		return "deledge"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one parsed mutation. Field use depends on Kind: node and
// settype records use Name+Type, label records use Name+Directed, edge
// and deledge records use From+To+Label.
type Op struct {
	Kind     OpKind
	Line     int // 1-based source line, for error reporting
	Name     string
	Type     string
	Directed bool
	From     string
	To       string
	Label    string
}

// Delta is an ordered log of graph mutations.
type Delta struct {
	Ops []Op
}

// ParseDelta reads a mutation log in the delta wire format. The input
// is streamed line by line; one oversized or malformed record fails the
// whole parse.
func ParseDelta(r io.Reader) (*Delta, error) {
	d := &Delta{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		op := Op{Line: lineNo}
		switch fields[0] {
		case "node", "settype":
			if len(fields) != 3 {
				return nil, fmt.Errorf("live: line %d: %s wants 2 fields, got %d", lineNo, fields[0], len(fields)-1)
			}
			op.Kind = OpAddNode
			if fields[0] == "settype" {
				op.Kind = OpSetType
			}
			op.Name, op.Type = fields[1], fields[2]
		case "label":
			if len(fields) != 3 {
				return nil, fmt.Errorf("live: line %d: label wants 2 fields, got %d", lineNo, len(fields)-1)
			}
			op.Kind = OpAddLabel
			op.Name = fields[1]
			switch fields[2] {
			case "D":
				op.Directed = true
			case "U":
				op.Directed = false
			default:
				return nil, fmt.Errorf("live: line %d: label direction must be D or U, got %q", lineNo, fields[2])
			}
		case "edge", "deledge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("live: line %d: %s wants 3 fields, got %d", lineNo, fields[0], len(fields)-1)
			}
			op.Kind = OpAddEdge
			if fields[0] == "deledge" {
				op.Kind = OpDelEdge
			}
			op.From, op.To, op.Label = fields[1], fields[2], fields[3]
		default:
			return nil, fmt.Errorf("live: line %d: unknown record type %q", lineNo, fields[0])
		}
		d.Ops = append(d.Ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// ApplyStats counts the effective mutations of one delta application.
// No-op records (re-adding an existing node, label or edge, deleting an
// absent edge, setting a type to its current value) parse and apply
// cleanly but are not counted, so the stats report what actually
// changed — and a delta that changes nothing publishes nothing (see
// Manager.ApplyDelta).
type ApplyStats struct {
	NodesAdded   int
	LabelsAdded  int
	EdgesAdded   int
	EdgesRemoved int
	TypesSet     int
}

// Changed reports whether the application mutated anything.
func (s ApplyStats) Changed() bool {
	return s.NodesAdded+s.LabelsAdded+s.EdgesAdded+s.EdgesRemoved+s.TypesSet > 0
}

// Apply replays the delta onto a deep clone of base and returns the
// resulting frozen graph. base is never mutated and keeps serving
// concurrent reads throughout. Application is all-or-nothing: any
// failing record (unknown entity or label, directedness conflict,
// self-loop) aborts with an error identifying the source line, and no
// new graph is produced.
func (d *Delta) Apply(base *kb.Graph) (*kb.Graph, ApplyStats, error) {
	g := base.Clone()
	var st ApplyStats
	for _, op := range d.Ops {
		if err := applyOp(g, op, &st); err != nil {
			return nil, ApplyStats{}, err
		}
	}
	g.Freeze()
	return g, st, nil
}

// applyOp replays one mutation onto the graph under construction.
func applyOp(g *kb.Graph, op Op, st *ApplyStats) error {
	switch op.Kind {
	case OpAddNode:
		if g.NodeByName(op.Name) == kb.InvalidNode {
			st.NodesAdded++
		}
		g.AddNode(op.Name, op.Type)
	case OpAddLabel:
		known := g.LabelByName(op.Name) != kb.InvalidLabel
		if _, err := g.Label(op.Name, op.Directed); err != nil {
			return fmt.Errorf("live: line %d: %v", op.Line, err)
		}
		if !known {
			st.LabelsAdded++
		}
	case OpSetType:
		id := g.NodeByName(op.Name)
		if id == kb.InvalidNode {
			return fmt.Errorf("live: line %d: settype: unknown node %q", op.Line, op.Name)
		}
		if g.Node(id).Type == op.Type {
			return nil // already that type: no-op, not counted
		}
		if err := g.SetNodeType(id, op.Type); err != nil {
			return fmt.Errorf("live: line %d: %v", op.Line, err)
		}
		st.TypesSet++
	case OpAddEdge, OpDelEdge:
		from := g.NodeByName(op.From)
		if from == kb.InvalidNode {
			return fmt.Errorf("live: line %d: %s: unknown node %q", op.Line, op.Kind, op.From)
		}
		to := g.NodeByName(op.To)
		if to == kb.InvalidNode {
			return fmt.Errorf("live: line %d: %s: unknown node %q", op.Line, op.Kind, op.To)
		}
		label := g.LabelByName(op.Label)
		if label == kb.InvalidLabel {
			return fmt.Errorf("live: line %d: %s: unknown label %q", op.Line, op.Kind, op.Label)
		}
		if op.Kind == OpAddEdge {
			added, err := g.AddEdge(from, to, label)
			if err != nil {
				return fmt.Errorf("live: line %d: %v", op.Line, err)
			}
			if added {
				st.EdgesAdded++
			}
		} else {
			removed, err := g.RemoveEdge(from, to, label)
			if err != nil {
				return fmt.Errorf("live: line %d: %v", op.Line, err)
			}
			if removed {
				st.EdgesRemoved++
			}
		}
	default:
		return fmt.Errorf("live: line %d: unhandled op kind %v", op.Line, op.Kind)
	}
	return nil
}
