// Package live manages versioned knowledge-base snapshots: a delta log
// of graph mutations parsed from the TSV record syntax, a builder that
// replays a delta onto a frozen snapshot to produce the next one, and
// an epoch-based Manager that atomically hot-swaps the active snapshot
// while in-flight readers keep their pinned version lock-free.
//
// The lifecycle follows one rule: **served graphs are immutable**. A
// delta is never applied in place — it is replayed onto a deep clone of
// the current graph, the clone is frozen, and the (graph, payload) pair
// is published with a single atomic pointer store. Readers that loaded
// the previous snapshot finish on it undisturbed; the old version is
// garbage-collected when the last pinned reader drops it.
package live

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"rex/internal/kb"
)

// The delta wire format extends the knowledge-base TSV record syntax
// (internal/kb/tsv.go) with mutation records, so an extraction pipeline
// can stream both initial loads and incremental updates in one dialect:
//
//	# comment
//	node\t<name>\t<type>           add an entity (existing: no-op)
//	label\t<name>\t<D|U>           register a relationship label
//	edge\t<from>\t<to>\t<label>    add an edge (duplicate: no-op)
//	settype\t<name>\t<type>        change an entity's type
//	deledge\t<from>\t<to>\t<label> remove an edge (absent: no-op)
//
// Records are replayed in order, so a delta may introduce a node and
// connect it on the next line. Edge records may reference entities and
// labels from the base snapshot or from earlier records of the same
// delta; unknown references are errors that abort the whole delta —
// application is all-or-nothing.

// OpKind discriminates delta mutations.
type OpKind uint8

// The delta mutation kinds, in record-syntax order.
const (
	OpAddNode OpKind = iota
	OpAddLabel
	OpAddEdge
	OpSetType
	OpDelEdge
)

// String returns the record keyword for the kind.
func (k OpKind) String() string {
	switch k {
	case OpAddNode:
		return "node"
	case OpAddLabel:
		return "label"
	case OpAddEdge:
		return "edge"
	case OpSetType:
		return "settype"
	case OpDelEdge:
		return "deledge"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one parsed mutation. Field use depends on Kind: node and
// settype records use Name+Type, label records use Name+Directed, edge
// and deledge records use From+To+Label.
type Op struct {
	Kind     OpKind
	Line     int // 1-based source line, for error reporting
	Name     string
	Type     string
	Directed bool
	From     string
	To       string
	Label    string
}

// Delta is an ordered log of graph mutations.
type Delta struct {
	Ops []Op
}

// ParseDelta reads a mutation log in the delta wire format. The input
// is streamed line by line; one oversized or malformed record fails the
// whole parse.
func ParseDelta(r io.Reader) (*Delta, error) {
	d := &Delta{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		op := Op{Line: lineNo}
		switch fields[0] {
		case "node", "settype":
			if len(fields) != 3 {
				return nil, fmt.Errorf("live: line %d: %s wants 2 fields, got %d", lineNo, fields[0], len(fields)-1)
			}
			op.Kind = OpAddNode
			if fields[0] == "settype" {
				op.Kind = OpSetType
			}
			op.Name, op.Type = fields[1], fields[2]
		case "label":
			if len(fields) != 3 {
				return nil, fmt.Errorf("live: line %d: label wants 2 fields, got %d", lineNo, len(fields)-1)
			}
			op.Kind = OpAddLabel
			op.Name = fields[1]
			switch fields[2] {
			case "D":
				op.Directed = true
			case "U":
				op.Directed = false
			default:
				return nil, fmt.Errorf("live: line %d: label direction must be D or U, got %q", lineNo, fields[2])
			}
		case "edge", "deledge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("live: line %d: %s wants 3 fields, got %d", lineNo, fields[0], len(fields)-1)
			}
			op.Kind = OpAddEdge
			if fields[0] == "deledge" {
				op.Kind = OpDelEdge
			}
			op.From, op.To, op.Label = fields[1], fields[2], fields[3]
		default:
			return nil, fmt.Errorf("live: line %d: unknown record type %q", lineNo, fields[0])
		}
		d.Ops = append(d.Ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// AppendWire appends the delta's canonical wire encoding to b: one
// record line per op, in order, in the same TSV record syntax ParseDelta
// reads. Comments and blank lines of the original input are not
// preserved — the encoding is the parsed mutation log, nothing else —
// so ParseDelta(AppendWire(d)) reproduces d exactly. This is the WAL
// payload format: what is replayed after a crash is byte-for-byte what
// the wire parser accepted before it.
func (d *Delta) AppendWire(b []byte) []byte {
	for _, op := range d.Ops {
		switch op.Kind {
		case OpAddNode, OpSetType:
			b = append(b, op.Kind.String()...)
			b = append(b, '\t')
			b = append(b, op.Name...)
			b = append(b, '\t')
			b = append(b, op.Type...)
		case OpAddLabel:
			b = append(b, "label\t"...)
			b = append(b, op.Name...)
			if op.Directed {
				b = append(b, "\tD"...)
			} else {
				b = append(b, "\tU"...)
			}
		case OpAddEdge, OpDelEdge:
			b = append(b, op.Kind.String()...)
			b = append(b, '\t')
			b = append(b, op.From...)
			b = append(b, '\t')
			b = append(b, op.To...)
			b = append(b, '\t')
			b = append(b, op.Label...)
		}
		b = append(b, '\n')
	}
	return b
}

// ApplyStats counts the effective mutations of one delta application.
// No-op records (re-adding an existing node, label or edge, deleting an
// absent edge, setting a type to its current value) parse and apply
// cleanly but are not counted, so the stats report what actually
// changed — and a delta that changes nothing publishes nothing (see
// Manager.ApplyDelta).
type ApplyStats struct {
	NodesAdded   int
	LabelsAdded  int
	EdgesAdded   int
	EdgesRemoved int
	TypesSet     int

	// Overlay reports whether the new generation was built as an
	// O(delta) overlay over the previous snapshot (Apply) rather than a
	// full Clone+Freeze rebuild (ApplyRebuild).
	Overlay bool
	// Compacted reports that the manager folded the overlay chain into
	// fresh CSR arrays while publishing this generation.
	Compacted bool
	// OverlayDepth is the overlay depth of the published snapshot
	// (0 after a rebuild or compaction).
	OverlayDepth int
}

// Changed reports whether the application mutated anything.
func (s ApplyStats) Changed() bool {
	return s.NodesAdded+s.LabelsAdded+s.EdgesAdded+s.EdgesRemoved+s.TypesSet > 0
}

// ChangeSet is the touched-set of one delta application, the input to
// label-scoped cache carry-over (see the rex facade): which labels had
// edges added or removed, which nodes changed (edge endpoints, added
// entities, retyped entities), and whether any entity changed type.
type ChangeSet struct {
	// Labels holds every label with an edge added or removed. Cached
	// state whose pattern mentions none of these labels cannot observe
	// the edge changes.
	Labels map[kb.LabelID]struct{}
	// Nodes holds the endpoints of every changed edge plus added and
	// retyped entities. Both endpoints of every removed edge are here,
	// so a breadth-first ball grown from Nodes over the NEW graph also
	// covers every path that existed only in the old graph: any such
	// path crosses a removed edge, whose endpoints seed the ball.
	Nodes map[kb.NodeID]struct{}
	// Retyped reports that some entity's type changed. Type changes
	// shift pattern applicability globally (matching is type-scoped), so
	// carry-over is disabled wholesale when set.
	Retyped bool
}

// NewChangeSet returns an empty change set.
func NewChangeSet() *ChangeSet {
	return &ChangeSet{
		Labels: make(map[kb.LabelID]struct{}),
		Nodes:  make(map[kb.NodeID]struct{}),
	}
}

// AffectedBall grows a breadth-first ball of the given radius from the
// change set's touched nodes over g (the new generation) and returns
// every node in it. Growth stops once the ball would exceed maxNodes,
// returning (nil, false) — the caller should then treat every node as
// potentially affected. Radius 0 returns just the touched nodes.
func (cs *ChangeSet) AffectedBall(g *kb.Graph, radius, maxNodes int) (map[kb.NodeID]struct{}, bool) {
	ball := make(map[kb.NodeID]struct{}, len(cs.Nodes))
	frontier := make([]kb.NodeID, 0, len(cs.Nodes))
	for id := range cs.Nodes {
		ball[id] = struct{}{}
		frontier = append(frontier, id)
	}
	if len(ball) > maxNodes {
		return nil, false
	}
	for hop := 0; hop < radius && len(frontier) > 0; hop++ {
		var next []kb.NodeID
		for _, id := range frontier {
			if int(id) >= g.NumNodes() {
				continue
			}
			for _, he := range g.Neighbors(id) {
				if _, seen := ball[he.To]; seen {
					continue
				}
				if len(ball) >= maxNodes {
					return nil, false
				}
				ball[he.To] = struct{}{}
				next = append(next, he.To)
			}
		}
		frontier = next
	}
	return ball, true
}

// mutator is the graph surface applyOp drives, implemented by both the
// O(delta) overlay builder and a plain clone, so the two apply paths
// share one replay loop with identical record semantics and error text.
type mutator interface {
	NodeByName(string) kb.NodeID
	LabelByName(string) kb.LabelID
	NodeType(kb.NodeID) string
	AddNode(string, string) kb.NodeID
	Label(string, bool) (kb.LabelID, error)
	AddEdge(kb.NodeID, kb.NodeID, kb.LabelID) (bool, error)
	RemoveEdge(kb.NodeID, kb.NodeID, kb.LabelID) (bool, error)
	SetNodeType(kb.NodeID, string) error
}

// graphAdapter lifts *kb.Graph to the mutator surface.
type graphAdapter struct{ *kb.Graph }

func (a graphAdapter) NodeType(id kb.NodeID) string { return a.Node(id).Type }

// Apply replays the delta as an overlay generation over base in
// O(delta · degree): base's CSR arrays are shared, only touched nodes
// get materialised spans, and base is never mutated — it keeps serving
// concurrent reads throughout. The returned ChangeSet records what the
// delta touched, for cache carry-over across the swap.
//
// Application is all-or-nothing: any failing record (unknown entity or
// label, directedness conflict, self-loop) aborts with an error
// identifying the source line, and no new graph or change set is
// produced. The stats returned alongside an error are the partial
// counts accumulated before the failing record and are undefined for
// any other purpose — callers must not publish or act on them.
//
// A delta whose records are all no-ops returns base itself (with
// zero-valued stats), not a new generation.
func (d *Delta) Apply(base *kb.Graph) (*kb.Graph, ApplyStats, *ChangeSet, error) {
	b, err := kb.NewOverlayBuilder(base)
	if err != nil {
		return nil, ApplyStats{}, nil, fmt.Errorf("live: %v", err)
	}
	var st ApplyStats
	cs := NewChangeSet()
	for _, op := range d.Ops {
		if err := applyOp(b, op, &st, cs); err != nil {
			return nil, st, nil, err
		}
	}
	if !st.Changed() {
		return base, st, cs, nil
	}
	g := b.Graph()
	st.Overlay = true
	st.OverlayDepth = g.Overlay().Depth
	return g, st, cs, nil
}

// ApplyRebuild replays the delta onto a deep clone of base and freezes
// the result from scratch — the legacy O(graph) path, kept as the
// equivalence oracle for the overlay path and for measuring the
// rebuild-vs-overlay cost gap (cmd/rexbench). Semantics and error text
// are identical to Apply, including the undefined-stats error contract.
func (d *Delta) ApplyRebuild(base *kb.Graph) (*kb.Graph, ApplyStats, *ChangeSet, error) {
	g := base.Clone()
	var st ApplyStats
	cs := NewChangeSet()
	for _, op := range d.Ops {
		if err := applyOp(graphAdapter{g}, op, &st, cs); err != nil {
			return nil, st, nil, err
		}
	}
	g.Freeze()
	return g, st, cs, nil
}

// applyOp replays one mutation onto the generation under construction,
// recording effective changes in both the stats and the change set.
func applyOp(g mutator, op Op, st *ApplyStats, cs *ChangeSet) error {
	switch op.Kind {
	case OpAddNode:
		known := g.NodeByName(op.Name) != kb.InvalidNode
		id := g.AddNode(op.Name, op.Type)
		if !known {
			st.NodesAdded++
			cs.Nodes[id] = struct{}{}
		}
	case OpAddLabel:
		known := g.LabelByName(op.Name) != kb.InvalidLabel
		if _, err := g.Label(op.Name, op.Directed); err != nil {
			return fmt.Errorf("live: line %d: %v", op.Line, err)
		}
		if !known {
			st.LabelsAdded++
			// A label first seen in this delta cannot appear in any
			// pattern cached against earlier generations, so it does not
			// join the touched-label set; edges using it touch their
			// endpoints as usual.
		}
	case OpSetType:
		id := g.NodeByName(op.Name)
		if id == kb.InvalidNode {
			return fmt.Errorf("live: line %d: settype: unknown node %q", op.Line, op.Name)
		}
		if g.NodeType(id) == op.Type {
			return nil // already that type: no-op, not counted
		}
		if err := g.SetNodeType(id, op.Type); err != nil {
			return fmt.Errorf("live: line %d: %v", op.Line, err)
		}
		st.TypesSet++
		cs.Nodes[id] = struct{}{}
		cs.Retyped = true
	case OpAddEdge, OpDelEdge:
		from := g.NodeByName(op.From)
		if from == kb.InvalidNode {
			return fmt.Errorf("live: line %d: %s: unknown node %q", op.Line, op.Kind, op.From)
		}
		to := g.NodeByName(op.To)
		if to == kb.InvalidNode {
			return fmt.Errorf("live: line %d: %s: unknown node %q", op.Line, op.Kind, op.To)
		}
		label := g.LabelByName(op.Label)
		if label == kb.InvalidLabel {
			return fmt.Errorf("live: line %d: %s: unknown label %q", op.Line, op.Kind, op.Label)
		}
		if op.Kind == OpAddEdge {
			added, err := g.AddEdge(from, to, label)
			if err != nil {
				return fmt.Errorf("live: line %d: %v", op.Line, err)
			}
			if added {
				st.EdgesAdded++
				cs.Labels[label] = struct{}{}
				cs.Nodes[from] = struct{}{}
				cs.Nodes[to] = struct{}{}
			}
		} else {
			removed, err := g.RemoveEdge(from, to, label)
			if err != nil {
				return fmt.Errorf("live: line %d: %v", op.Line, err)
			}
			if removed {
				st.EdgesRemoved++
				cs.Labels[label] = struct{}{}
				cs.Nodes[from] = struct{}{}
				cs.Nodes[to] = struct{}{}
			}
		}
	default:
		return fmt.Errorf("live: line %d: unhandled op kind %v", op.Line, op.Kind)
	}
	return nil
}
