package live

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"rex/internal/kb"
)

func baseGraph(t *testing.T) *kb.Graph {
	t.Helper()
	g := kb.New()
	a := g.AddNode("a", "person")
	b := g.AddNode("b", "person")
	g.AddNode("c", "person")
	knows := g.MustLabel("knows", false)
	g.MustAddEdge(a, b, knows)
	g.Freeze()
	return g
}

func parse(t *testing.T, src string) *Delta {
	t.Helper()
	d, err := ParseDelta(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseDelta(t *testing.T) {
	d := parse(t, strings.Join([]string{
		"# a comment",
		"",
		"node\td\tfilm",
		"label\tstarring\tD",
		"edge\ta\td\tstarring",
		"settype\ta\tdirector",
		"deledge\ta\tb\tknows",
	}, "\n"))
	kinds := []OpKind{OpAddNode, OpAddLabel, OpAddEdge, OpSetType, OpDelEdge}
	if len(d.Ops) != len(kinds) {
		t.Fatalf("parsed %d ops, want %d", len(d.Ops), len(kinds))
	}
	for i, k := range kinds {
		if d.Ops[i].Kind != k {
			t.Errorf("op %d kind = %v, want %v", i, d.Ops[i].Kind, k)
		}
	}
	if d.Ops[0].Line != 3 {
		t.Errorf("first op line = %d, want 3 (comments and blanks counted)", d.Ops[0].Line)
	}
}

func TestParseDeltaErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown record", "grow\ta\tb", "unknown record type"},
		{"node fields", "node\ta", "node wants 2 fields"},
		{"settype fields", "settype\ta\tb\tc", "settype wants 2 fields"},
		{"label fields", "label\tx", "label wants 2 fields"},
		{"label direction", "label\tx\tB", "direction must be D or U"},
		{"edge fields", "edge\ta\tb", "edge wants 3 fields"},
		{"deledge fields", "deledge\ta\tb\tc\td", "deledge wants 3 fields"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseDelta(strings.NewReader(c.src))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
			if !strings.Contains(fmt.Sprint(err), "line 1") {
				t.Errorf("err %v does not name the line", err)
			}
		})
	}
}

func TestDeltaApply(t *testing.T) {
	g := baseGraph(t)
	d := parse(t, strings.Join([]string{
		"node\td\tfilm",
		"node\ta\tperson", // exists: no-op, not counted
		"label\tstarring\tD",
		"label\tknows\tU", // exists: no-op
		"edge\td\ta\tstarring",
		"edge\ta\tb\tknows", // duplicate: no-op
		"settype\tc\tdirector",
		"deledge\ta\tb\tknows",
		"deledge\ta\tc\tknows", // absent: no-op
	}, "\n"))
	g2, st, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	want := ApplyStats{NodesAdded: 1, LabelsAdded: 1, EdgesAdded: 1, EdgesRemoved: 1, TypesSet: 1}
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
	if !st.Changed() {
		t.Error("Changed() = false")
	}

	// The base graph is untouched.
	if g.NumNodes() != 3 || g.NumEdges() != 1 {
		t.Errorf("base mutated: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.Frozen() {
		t.Error("base unfrozen by Apply")
	}

	// The new graph reflects every mutation.
	if !g2.Frozen() {
		t.Error("applied graph not frozen")
	}
	if g2.NumNodes() != 4 || g2.NumEdges() != 1 {
		t.Errorf("new graph: %d nodes, %d edges, want 4, 1", g2.NumNodes(), g2.NumEdges())
	}
	dID := g2.NodeByName("d")
	aID := g2.NodeByName("a")
	if !g2.HasEdge(dID, aID, g2.LabelByName("starring")) {
		t.Error("new edge missing")
	}
	if g2.HasEdge(aID, g2.NodeByName("b"), g2.LabelByName("knows")) {
		t.Error("deleted edge still present")
	}
	if g2.Node(g2.NodeByName("c")).Type != "director" {
		t.Error("settype not applied")
	}
	if g2.Fingerprint() == g.Fingerprint() {
		t.Error("fingerprint unchanged by a mutating delta")
	}
}

func TestDeltaApplyErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"edge unknown from", "edge\tghost\tb\tknows", `unknown node "ghost"`},
		{"edge unknown to", "edge\ta\tghost\tknows", `unknown node "ghost"`},
		{"edge unknown label", "edge\ta\tb\tghost", `unknown label "ghost"`},
		{"deledge unknown node", "deledge\tghost\tb\tknows", `unknown node "ghost"`},
		{"settype unknown node", "settype\tghost\tx", `unknown node "ghost"`},
		{"label conflict", "label\tknows\tD", "registered as directed=false"},
		{"self loop", "edge\ta\ta\tknows", "self-loop"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := baseGraph(t)
			fp := g.Fingerprint()
			g2, _, err := parse(t, c.src).Apply(g)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
			if g2 != nil {
				t.Error("graph returned alongside an error")
			}
			if g.Fingerprint() != fp {
				t.Error("failed apply mutated the base graph")
			}
		})
	}
}

func TestManagerLifecycle(t *testing.T) {
	builds := 0
	m, err := NewManager(baseGraph(t), func(g *kb.Graph) (any, error) {
		builds++
		return fmt.Sprintf("payload-%d", builds), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s1 := m.Current()
	if s1.Generation != 1 || m.Generation() != 1 || m.Swaps() != 0 {
		t.Fatalf("initial gen/swaps = %d/%d, want 1/0", s1.Generation, m.Swaps())
	}
	if s1.Payload != "payload-1" {
		t.Fatalf("payload = %v", s1.Payload)
	}

	s2, st, err := m.ApplyDelta(parse(t, "node\td\tperson\nedge\ta\td\tknows"))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Generation != 2 || m.Swaps() != 1 {
		t.Errorf("gen/swaps = %d/%d, want 2/1", s2.Generation, m.Swaps())
	}
	if st.NodesAdded != 1 || st.EdgesAdded != 1 {
		t.Errorf("stats = %+v", st)
	}
	if s2.Fingerprint == s1.Fingerprint {
		t.Error("fingerprint unchanged across swap")
	}
	if s2.Payload != "payload-2" {
		t.Errorf("payload not rebuilt: %v", s2.Payload)
	}

	// The pinned old snapshot is still intact and immutable.
	if s1.Graph.NumNodes() != 3 || s1.Generation != 1 || s1.Payload != "payload-1" {
		t.Error("old snapshot disturbed by swap")
	}
	if m.Current() != s2 {
		t.Error("Current is not the new snapshot")
	}
}

// TestManagerNoopDeltaPublishesNothing checks delta idempotency: a
// redelivered delta whose records are all no-ops must not bump the
// generation or rebuild the payload (which would flush a warm cache).
func TestManagerNoopDeltaPublishesNothing(t *testing.T) {
	m, err := NewManager(baseGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	delta := "node\ta\tperson\nedge\ta\tb\tknows\ndeledge\ta\tc\tknows\nsettype\ta\tperson\nlabel\tknows\tU"
	before := m.Current()
	snap, st, err := m.ApplyDelta(parse(t, delta))
	if err != nil {
		t.Fatal(err)
	}
	if st.Changed() {
		t.Errorf("no-op delta reported changes: %+v", st)
	}
	if snap != before || m.Generation() != 1 || m.Swaps() != 0 {
		t.Errorf("no-op delta published a new snapshot: generation %d, swaps %d", m.Generation(), m.Swaps())
	}
}

func TestManagerApplyErrorKeepsSnapshot(t *testing.T) {
	m, err := NewManager(baseGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Current()
	if _, _, err := m.ApplyDelta(parse(t, "edge\tghost\tb\tknows")); err == nil {
		t.Fatal("bad delta accepted")
	}
	if _, _, err := m.ApplyDelta(&Delta{}); err == nil {
		t.Fatal("empty delta accepted")
	}
	if m.Current() != before || m.Swaps() != 0 || m.Generation() != 1 {
		t.Error("failed apply disturbed the active snapshot")
	}
}

func TestManagerBuildErrorKeepsSnapshot(t *testing.T) {
	builds := 0
	m, err := NewManager(baseGraph(t), func(g *kb.Graph) (any, error) {
		builds++
		if builds > 1 {
			return nil, fmt.Errorf("boom")
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Current()
	if _, _, err := m.ApplyDelta(parse(t, "node\td\tperson")); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want boom", err)
	}
	if m.Current() != before || m.Generation() != 1 {
		t.Error("failed payload build disturbed the active snapshot")
	}
}

func TestManagerInitialBuildError(t *testing.T) {
	if _, err := NewManager(baseGraph(t), func(*kb.Graph) (any, error) {
		return nil, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("NewManager swallowed build error")
	}
	if _, err := NewManager(nil, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// TestManagerConcurrentReadersAndWriters drives lock-free reads under
// concurrent swaps; run with -race this checks the epoch discipline.
func TestManagerConcurrentReadersAndWriters(t *testing.T) {
	m, err := NewManager(baseGraph(t), func(g *kb.Graph) (any, error) {
		return g.Fingerprint(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const swaps = 20
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := m.Current()
				// A pinned snapshot must be internally consistent: its
				// payload (built from its graph) matches its fingerprint.
				if s.Payload.(string) != s.Fingerprint {
					t.Errorf("torn snapshot: payload %v, fingerprint %s", s.Payload, s.Fingerprint)
					return
				}
				if got := s.Graph.Fingerprint(); got != s.Fingerprint {
					t.Errorf("graph fingerprint %s != snapshot %s", got, s.Fingerprint)
					return
				}
			}
		}()
	}
	for i := 0; i < swaps; i++ {
		d := parse(t, fmt.Sprintf("node\tn%d\tperson\nedge\ta\tn%d\tknows", i, i))
		if _, _, err := m.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if m.Generation() != swaps+1 || m.Swaps() != swaps {
		t.Errorf("gen/swaps = %d/%d, want %d/%d", m.Generation(), m.Swaps(), swaps+1, swaps)
	}
}
