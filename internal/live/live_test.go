package live

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"rex/internal/kb"
)

func baseGraph(t *testing.T) *kb.Graph {
	t.Helper()
	g := kb.New()
	a := g.AddNode("a", "person")
	b := g.AddNode("b", "person")
	g.AddNode("c", "person")
	knows := g.MustLabel("knows", false)
	g.MustAddEdge(a, b, knows)
	g.Freeze()
	return g
}

func parse(t *testing.T, src string) *Delta {
	t.Helper()
	d, err := ParseDelta(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseDelta(t *testing.T) {
	d := parse(t, strings.Join([]string{
		"# a comment",
		"",
		"node\td\tfilm",
		"label\tstarring\tD",
		"edge\ta\td\tstarring",
		"settype\ta\tdirector",
		"deledge\ta\tb\tknows",
	}, "\n"))
	kinds := []OpKind{OpAddNode, OpAddLabel, OpAddEdge, OpSetType, OpDelEdge}
	if len(d.Ops) != len(kinds) {
		t.Fatalf("parsed %d ops, want %d", len(d.Ops), len(kinds))
	}
	for i, k := range kinds {
		if d.Ops[i].Kind != k {
			t.Errorf("op %d kind = %v, want %v", i, d.Ops[i].Kind, k)
		}
	}
	if d.Ops[0].Line != 3 {
		t.Errorf("first op line = %d, want 3 (comments and blanks counted)", d.Ops[0].Line)
	}
}

func TestParseDeltaErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown record", "grow\ta\tb", "unknown record type"},
		{"node fields", "node\ta", "node wants 2 fields"},
		{"settype fields", "settype\ta\tb\tc", "settype wants 2 fields"},
		{"label fields", "label\tx", "label wants 2 fields"},
		{"label direction", "label\tx\tB", "direction must be D or U"},
		{"edge fields", "edge\ta\tb", "edge wants 3 fields"},
		{"deledge fields", "deledge\ta\tb\tc\td", "deledge wants 3 fields"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseDelta(strings.NewReader(c.src))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
			if !strings.Contains(fmt.Sprint(err), "line 1") {
				t.Errorf("err %v does not name the line", err)
			}
		})
	}
}

func TestDeltaApply(t *testing.T) {
	g := baseGraph(t)
	d := parse(t, strings.Join([]string{
		"node\td\tfilm",
		"node\ta\tperson", // exists: no-op, not counted
		"label\tstarring\tD",
		"label\tknows\tU", // exists: no-op
		"edge\td\ta\tstarring",
		"edge\ta\tb\tknows", // duplicate: no-op
		"settype\tc\tdirector",
		"deledge\ta\tb\tknows",
		"deledge\ta\tc\tknows", // absent: no-op
	}, "\n"))
	g2, st, cs, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	want := ApplyStats{NodesAdded: 1, LabelsAdded: 1, EdgesAdded: 1, EdgesRemoved: 1, TypesSet: 1,
		Overlay: true, OverlayDepth: 1}
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
	if cs == nil || !cs.Retyped {
		t.Errorf("change set = %+v, want Retyped", cs)
	}
	if !st.Changed() {
		t.Error("Changed() = false")
	}

	// The base graph is untouched.
	if g.NumNodes() != 3 || g.NumEdges() != 1 {
		t.Errorf("base mutated: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.Frozen() {
		t.Error("base unfrozen by Apply")
	}

	// The new graph reflects every mutation.
	if !g2.Frozen() {
		t.Error("applied graph not frozen")
	}
	if g2.NumNodes() != 4 || g2.NumEdges() != 1 {
		t.Errorf("new graph: %d nodes, %d edges, want 4, 1", g2.NumNodes(), g2.NumEdges())
	}
	dID := g2.NodeByName("d")
	aID := g2.NodeByName("a")
	if !g2.HasEdge(dID, aID, g2.LabelByName("starring")) {
		t.Error("new edge missing")
	}
	if g2.HasEdge(aID, g2.NodeByName("b"), g2.LabelByName("knows")) {
		t.Error("deleted edge still present")
	}
	if g2.Node(g2.NodeByName("c")).Type != "director" {
		t.Error("settype not applied")
	}
	if g2.Fingerprint() == g.Fingerprint() {
		t.Error("fingerprint unchanged by a mutating delta")
	}
}

func TestDeltaApplyErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"edge unknown from", "edge\tghost\tb\tknows", `unknown node "ghost"`},
		{"edge unknown to", "edge\ta\tghost\tknows", `unknown node "ghost"`},
		{"edge unknown label", "edge\ta\tb\tghost", `unknown label "ghost"`},
		{"deledge unknown node", "deledge\tghost\tb\tknows", `unknown node "ghost"`},
		{"settype unknown node", "settype\tghost\tx", `unknown node "ghost"`},
		{"label conflict", "label\tknows\tD", "registered as directed=false"},
		{"self loop", "edge\ta\ta\tknows", "self-loop"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := baseGraph(t)
			fp := g.Fingerprint()
			g2, _, _, err := parse(t, c.src).Apply(g)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
			if g2 != nil {
				t.Error("graph returned alongside an error")
			}
			if g.Fingerprint() != fp {
				t.Error("failed apply mutated the base graph")
			}
		})
	}
}

func TestManagerLifecycle(t *testing.T) {
	builds := 0
	m, err := NewManager(baseGraph(t), func(g *kb.Graph, prev *Snapshot, cs *ChangeSet) (any, error) {
		builds++
		return fmt.Sprintf("payload-%d", builds), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s1 := m.Current()
	if s1.Generation != 1 || m.Generation() != 1 || m.Swaps() != 0 {
		t.Fatalf("initial gen/swaps = %d/%d, want 1/0", s1.Generation, m.Swaps())
	}
	if s1.Payload != "payload-1" {
		t.Fatalf("payload = %v", s1.Payload)
	}

	s2, st, err := m.ApplyDelta(parse(t, "node\td\tperson\nedge\ta\td\tknows"))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Generation != 2 || m.Swaps() != 1 {
		t.Errorf("gen/swaps = %d/%d, want 2/1", s2.Generation, m.Swaps())
	}
	if st.NodesAdded != 1 || st.EdgesAdded != 1 {
		t.Errorf("stats = %+v", st)
	}
	if s2.Fingerprint == s1.Fingerprint {
		t.Error("fingerprint unchanged across swap")
	}
	if s2.Payload != "payload-2" {
		t.Errorf("payload not rebuilt: %v", s2.Payload)
	}

	// The pinned old snapshot is still intact and immutable.
	if s1.Graph.NumNodes() != 3 || s1.Generation != 1 || s1.Payload != "payload-1" {
		t.Error("old snapshot disturbed by swap")
	}
	if m.Current() != s2 {
		t.Error("Current is not the new snapshot")
	}
}

// TestManagerNoopDeltaPublishesNothing checks delta idempotency: a
// redelivered delta whose records are all no-ops must not bump the
// generation or rebuild the payload (which would flush a warm cache).
func TestManagerNoopDeltaPublishesNothing(t *testing.T) {
	m, err := NewManager(baseGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	delta := "node\ta\tperson\nedge\ta\tb\tknows\ndeledge\ta\tc\tknows\nsettype\ta\tperson\nlabel\tknows\tU"
	before := m.Current()
	snap, st, err := m.ApplyDelta(parse(t, delta))
	if err != nil {
		t.Fatal(err)
	}
	if st.Changed() {
		t.Errorf("no-op delta reported changes: %+v", st)
	}
	if snap != before || m.Generation() != 1 || m.Swaps() != 0 {
		t.Errorf("no-op delta published a new snapshot: generation %d, swaps %d", m.Generation(), m.Swaps())
	}
}

// TestApplyRebuildMatchesOverlay pins that both apply paths produce
// identical content, fingerprints and effective-change stats.
func TestApplyRebuildMatchesOverlay(t *testing.T) {
	src := strings.Join([]string{
		"node\td\tfilm",
		"label\tstarring\tD",
		"edge\td\ta\tstarring",
		"edge\td\tb\tstarring",
		"deledge\ta\tb\tknows",
		"settype\tc\tdirector",
	}, "\n")
	d := parse(t, src)
	ovG, ovSt, ovCS, err := d.Apply(baseGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	rbG, rbSt, rbCS, err := d.ApplyRebuild(baseGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if ovG.Fingerprint() != rbG.Fingerprint() {
		t.Errorf("overlay fingerprint %s != rebuild %s", ovG.Fingerprint(), rbG.Fingerprint())
	}
	if !ovSt.Overlay || rbSt.Overlay {
		t.Errorf("Overlay flags: apply %+v, rebuild %+v", ovSt, rbSt)
	}
	ovSt.Overlay, ovSt.OverlayDepth = false, 0
	if ovSt != rbSt {
		t.Errorf("stats diverge: %+v vs %+v", ovSt, rbSt)
	}
	if len(ovCS.Labels) != len(rbCS.Labels) || len(ovCS.Nodes) != len(rbCS.Nodes) || ovCS.Retyped != rbCS.Retyped {
		t.Errorf("change sets diverge: %+v vs %+v", ovCS, rbCS)
	}
}

// TestChangeSetCollection checks that the touched-set records exactly
// the labels and nodes of effective mutations.
func TestChangeSetCollection(t *testing.T) {
	g := baseGraph(t)
	d := parse(t, strings.Join([]string{
		"node\td\tfilm",
		"label\tstarring\tD",
		"edge\td\tc\tstarring",
		"edge\ta\tb\tknows", // duplicate: no-op, must not touch knows
	}, "\n"))
	g2, _, cs, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Retyped {
		t.Error("Retyped set without a settype")
	}
	starring := g2.LabelByName("starring")
	if _, ok := cs.Labels[starring]; !ok || len(cs.Labels) != 1 {
		t.Errorf("touched labels = %v, want only starring (%d)", cs.Labels, starring)
	}
	wantNodes := []kb.NodeID{g2.NodeByName("c"), g2.NodeByName("d")}
	if len(cs.Nodes) != len(wantNodes) {
		t.Fatalf("touched nodes = %v, want %v", cs.Nodes, wantNodes)
	}
	for _, id := range wantNodes {
		if _, ok := cs.Nodes[id]; !ok {
			t.Errorf("node %d missing from touched set %v", id, cs.Nodes)
		}
	}

	// The ball at radius 1 reaches c's and d's neighbours; the cap makes
	// growth fail soft.
	ball, ok := cs.AffectedBall(g2, 1, 100)
	if !ok {
		t.Fatal("ball overflowed a generous cap")
	}
	for id := range cs.Nodes {
		if _, in := ball[id]; !in {
			t.Errorf("touched node %d not in its own ball", id)
		}
	}
	if _, _, ok := func() (map[kb.NodeID]struct{}, bool, bool) {
		b, ok := cs.AffectedBall(g2, 1, 1)
		return b, ok, ok
	}(); ok {
		t.Error("ball cap of 1 not enforced")
	}
}

// TestManagerCompaction drives enough deltas through a tight compaction
// policy to trigger folding, and checks depth bookkeeping.
func TestManagerCompaction(t *testing.T) {
	m, err := NewManager(baseGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.CompactDepth = 3
	m.CompactRatio = 100 // depth-only policy for the test
	var depths []int
	for i := 0; i < 7; i++ {
		d := parse(t, fmt.Sprintf("node\tx%d\tperson\nedge\ta\tx%d\tknows", i, i))
		snap, st, err := m.ApplyDelta(d)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Overlay {
			t.Fatalf("delta %d not applied as overlay: %+v", i, st)
		}
		depths = append(depths, st.OverlayDepth)
		if got := snap.Graph.Overlay().Depth; got != st.OverlayDepth {
			t.Fatalf("delta %d: stats depth %d != graph depth %d", i, st.OverlayDepth, got)
		}
		if st.Compacted != (st.OverlayDepth == 0) {
			t.Fatalf("delta %d: Compacted=%v at depth %d", i, st.Compacted, st.OverlayDepth)
		}
	}
	// Depth counts 1, 2, then hits CompactDepth=3 and folds to 0.
	want := []int{1, 2, 0, 1, 2, 0, 1}
	for i := range want {
		if depths[i] != want[i] {
			t.Fatalf("depths = %v, want %v", depths, want)
		}
	}
	if m.Compactions() != 2 {
		t.Errorf("compactions = %d, want 2", m.Compactions())
	}
	if m.Generation() != 8 {
		t.Errorf("generation = %d, want 8", m.Generation())
	}
}

// TestFailedApplyPublishesNothing pins the all-or-nothing contract: a
// delta that fails mid-apply — after several effective records — must
// not publish, bump the generation, or disturb the served graph, even
// though the partial stats are non-zero.
func TestFailedApplyPublishesNothing(t *testing.T) {
	m, err := NewManager(baseGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Current()
	d := parse(t, strings.Join([]string{
		"node\td\tfilm",          // effective
		"edge\ta\td\tknows",      // effective
		"edge\ta\tghost\tknows",  // fails here
		"node\tnever\tunreached", // never replayed
	}, "\n"))
	_, st, err := m.ApplyDelta(d)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line-3 failure", err)
	}
	// Stats-so-far are returned for diagnostics but documented undefined.
	if st.NodesAdded != 1 || st.EdgesAdded != 1 {
		t.Logf("partial stats = %+v", st)
	}
	if m.Current() != before || m.Generation() != 1 || m.Swaps() != 0 {
		t.Error("failed apply published a snapshot")
	}
	if before.Graph.NodeByName("d") != kb.InvalidNode {
		t.Error("failed apply leaked a node into the served graph")
	}
	if before.Graph.Fingerprint() != before.Fingerprint {
		t.Error("failed apply mutated the served graph")
	}
}

func TestManagerApplyErrorKeepsSnapshot(t *testing.T) {
	m, err := NewManager(baseGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Current()
	if _, _, err := m.ApplyDelta(parse(t, "edge\tghost\tb\tknows")); err == nil {
		t.Fatal("bad delta accepted")
	}
	if _, _, err := m.ApplyDelta(&Delta{}); err == nil {
		t.Fatal("empty delta accepted")
	}
	if m.Current() != before || m.Swaps() != 0 || m.Generation() != 1 {
		t.Error("failed apply disturbed the active snapshot")
	}
}

func TestManagerBuildErrorKeepsSnapshot(t *testing.T) {
	builds := 0
	m, err := NewManager(baseGraph(t), func(g *kb.Graph, prev *Snapshot, cs *ChangeSet) (any, error) {
		builds++
		if builds > 1 {
			return nil, fmt.Errorf("boom")
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Current()
	if _, _, err := m.ApplyDelta(parse(t, "node\td\tperson")); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want boom", err)
	}
	if m.Current() != before || m.Generation() != 1 {
		t.Error("failed payload build disturbed the active snapshot")
	}
}

func TestManagerInitialBuildError(t *testing.T) {
	if _, err := NewManager(baseGraph(t), func(*kb.Graph, *Snapshot, *ChangeSet) (any, error) {
		return nil, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("NewManager swallowed build error")
	}
	if _, err := NewManager(nil, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// TestManagerConcurrentReadersAndWriters drives lock-free reads under
// concurrent swaps; run with -race this checks the epoch discipline.
func TestManagerConcurrentReadersAndWriters(t *testing.T) {
	m, err := NewManager(baseGraph(t), func(g *kb.Graph, prev *Snapshot, cs *ChangeSet) (any, error) {
		return g.Fingerprint(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const swaps = 20
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := m.Current()
				// A pinned snapshot must be internally consistent: its
				// payload (built from its graph) matches its fingerprint.
				if s.Payload.(string) != s.Fingerprint {
					t.Errorf("torn snapshot: payload %v, fingerprint %s", s.Payload, s.Fingerprint)
					return
				}
				if got := s.Graph.Fingerprint(); got != s.Fingerprint {
					t.Errorf("graph fingerprint %s != snapshot %s", got, s.Fingerprint)
					return
				}
			}
		}()
	}
	for i := 0; i < swaps; i++ {
		d := parse(t, fmt.Sprintf("node\tn%d\tperson\nedge\ta\tn%d\tknows", i, i))
		if _, _, err := m.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if m.Generation() != swaps+1 || m.Swaps() != swaps {
		t.Errorf("gen/swaps = %d/%d, want %d/%d", m.Generation(), m.Swaps(), swaps+1, swaps)
	}
}
