package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Anti-entropy support: the journal doubles as the serving side of
// replica catch-up. A lagging peer fetches the newest checkpoint file
// (content-addressed by fingerprint, resumable by byte range) and the
// WAL tail above its own generation, framed exactly as on disk, and
// replays the records through its own write path. Everything here
// reads the same files the durability path writes — there is no
// second representation to drift.

// ErrBelowHorizon reports that a requested WAL position has been
// garbage-collected by a checkpoint: the journal only retains records
// above its newest checkpoint generation, so a peer that far behind
// must transfer the full checkpoint instead.
var ErrBelowHorizon = errors.New("live: requested generation below the checkpoint horizon")

// ErrTornFrame reports that a WAL frame stream ended mid-record or
// failed its CRC — the transfer was cut or corrupted and the remainder
// must be refetched.
var ErrTornFrame = errors.New("live: torn or corrupt WAL frame")

// EncodeFrame appends one WAL frame (gen, payload) to buf in the
// on-disk framing — gen(8) len(4) crc(4) payload — and returns the
// extended buffer.
func EncodeFrame(buf []byte, gen uint64, payload []byte) []byte {
	var header [walFrameHeader]byte
	binary.BigEndian.PutUint64(header[0:8], gen)
	binary.BigEndian.PutUint32(header[8:12], uint32(len(payload)))
	h := crc32.NewIEEE()
	h.Write(header[0:12]) //nolint:errcheck // hash writes cannot fail
	h.Write(payload)      //nolint:errcheck
	binary.BigEndian.PutUint32(header[12:16], h.Sum32())
	buf = append(buf, header[:]...)
	return append(buf, payload...)
}

// FrameScanner reads CRC-framed WAL records from a byte stream (a WAL
// file or a streamed tail transfer). Next returns io.EOF at a clean
// frame boundary and ErrTornFrame when the stream ends mid-record or a
// CRC fails — the receiver keeps everything before the tear and
// refetches from there.
type FrameScanner struct {
	r       io.Reader
	payload []byte
}

// NewFrameScanner wraps r for frame-by-frame reading.
func NewFrameScanner(r io.Reader) *FrameScanner { return &FrameScanner{r: r} }

// Next reads one frame, verifying its CRC. The returned payload is
// valid until the next call.
func (s *FrameScanner) Next() (gen uint64, payload []byte, err error) {
	var header [walFrameHeader]byte
	if _, err := io.ReadFull(s.r, header[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, ErrTornFrame
	}
	gen = binary.BigEndian.Uint64(header[0:8])
	n := binary.BigEndian.Uint32(header[8:12])
	crc := binary.BigEndian.Uint32(header[12:16])
	if int64(n) > maxWALRecord {
		return 0, nil, ErrTornFrame
	}
	if int(n) > cap(s.payload) {
		s.payload = make([]byte, n)
	}
	s.payload = s.payload[:n]
	if _, err := io.ReadFull(s.r, s.payload); err != nil {
		return 0, nil, ErrTornFrame
	}
	h := crc32.NewIEEE()
	h.Write(header[0:12]) //nolint:errcheck // hash writes cannot fail
	h.Write(s.payload)    //nolint:errcheck
	if h.Sum32() != crc {
		return 0, nil, ErrTornFrame
	}
	return gen, s.payload, nil
}

// OpenCheckpoint opens the newest on-disk checkpoint for reading and
// returns it with its generation and content fingerprint. The open file
// descriptor stays readable even if a concurrent checkpoint
// garbage-collects the file (the unlink only removes the name), so a
// long snapshot transfer survives checkpoints happening under it. The
// caller closes the file.
func (j *Journal) OpenCheckpoint() (f *os.File, gen uint64, fingerprint string, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	gen = j.ckptGen.Load()
	if gen == 0 {
		return nil, 0, "", fmt.Errorf("live: no checkpoint to serve")
	}
	f, err = os.Open(j.ckptPath(gen))
	if err != nil {
		return nil, 0, "", fmt.Errorf("live: open checkpoint: %w", err)
	}
	return f, gen, j.checkpointFP(), nil
}

func (j *Journal) checkpointFP() string {
	if p := j.ckptFP.Load(); p != nil {
		return *p
	}
	return ""
}

// TailSince returns the WAL records above generation from, framed
// exactly as on disk (EncodeFrame layout), along with the record count.
// A from below the checkpoint horizon returns ErrBelowHorizon — those
// records were garbage-collected, so the caller needs the full
// checkpoint first. A from at or past the newest record returns an
// empty tail. The read snapshots the acknowledged WAL under the
// journal lock, so it never observes a half-written frame. Prefer
// TailReaderSince for serving tails over the network: it streams from
// the file instead of materializing the whole tail here.
func (j *Journal) TailSince(from uint64) (data []byte, records int, err error) {
	rc, size, records, err := j.TailReaderSince(from)
	if err != nil {
		return nil, 0, err
	}
	defer rc.Close() //nolint:errcheck // read-only descriptor
	if size == 0 {
		return nil, 0, nil
	}
	data = make([]byte, size)
	if _, err := io.ReadFull(rc, data); err != nil {
		return nil, 0, fmt.Errorf("live: wal tail read: %w", err)
	}
	return data, records, nil
}

// TailReaderSince is the streaming form of TailSince: it returns a
// reader positioned at the first WAL record above from, plus the
// tail's byte size and record count. Only frame headers are touched
// here — payload bytes flow straight from the file to the caller, so
// a large tail costs O(1) memory per concurrent transfer instead of a
// full in-memory copy each. The returned reader owns its own
// descriptor (Close releases it); the offsets are computed under the
// journal lock against the acknowledged WAL size, so the section
// never covers a half-written frame. A checkpoint truncating the WAL
// mid-transfer surfaces to the receiver as a short read — a torn
// frame, which the catch-up protocol already retries.
func (j *Journal) TailReaderSince(from uint64) (r io.ReadCloser, size int64, records int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return nil, 0, 0, fmt.Errorf("live: tail of closed journal")
	}
	if from < j.ckptGen.Load() {
		return nil, 0, 0, ErrBelowHorizon
	}
	// A separate descriptor leaves the append position of j.wal alone.
	f, err := os.Open(j.walPath())
	if err != nil {
		return nil, 0, 0, fmt.Errorf("live: open wal for tail: %w", err)
	}
	start := j.walSize // empty tail: a zero-length section at the end
	var header [walFrameHeader]byte
	for off := int64(0); off < j.walSize; {
		if _, err := f.ReadAt(header[:], off); err != nil {
			f.Close() //nolint:errcheck // already failing
			return nil, 0, 0, fmt.Errorf("live: wal tail header at offset %d: %w", off, ErrTornFrame)
		}
		gen := binary.BigEndian.Uint64(header[0:8])
		n := int64(binary.BigEndian.Uint32(header[8:12]))
		if n > maxWALRecord || off+walFrameHeader+n > j.walSize {
			// The acknowledged prefix was validated at recovery and every
			// append since was framed by this process; an impossible
			// length inside it means on-disk corruption.
			f.Close() //nolint:errcheck // already failing
			return nil, 0, 0, fmt.Errorf("live: wal tail at offset %d: %w", off, ErrTornFrame)
		}
		if gen > from {
			if records == 0 {
				start = off
			}
			records++
		}
		off += walFrameHeader + n
	}
	return &walSection{
		SectionReader: io.NewSectionReader(f, start, j.walSize-start),
		f:             f,
	}, j.walSize - start, records, nil
}

// walSection is a SectionReader over the WAL file that owns (and
// closes) its descriptor.
type walSection struct {
	*io.SectionReader
	f *os.File
}

func (s *walSection) Close() error { return s.f.Close() }
