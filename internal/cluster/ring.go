// Package cluster is the replicated serving tier over rexserve
// replicas: a consistent-hash router with generation-aware pinning,
// active health checking, per-replica circuit breakers, retries and
// request hedging. The replicas stay share-nothing — each holds its own
// immutable CSR snapshots — and the router holds only soft state (ring,
// health, breaker, latency), so a router restart loses nothing.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over replica indices. Each replica
// owns vnodes points so ownership stays near-uniform at small replica
// counts, and removing a replica only moves its own keys. The ring is
// immutable after construction — membership changes build a new ring —
// so lookups are lock-free.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // distinct replicas
}

type ringPoint struct {
	hash    uint64
	replica int
}

// defaultVNodes balances uniformity against preference-walk cost. At
// 64 points per replica the max/min key-share spread stays under ~20%
// for 2–16 replicas, which is well inside what breakers and hedging
// absorb.
const defaultVNodes = 64

func newRing(replicas, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{points: make([]ringPoint, 0, replicas*vnodes), n: replicas}
	for i := 0; i < replicas; i++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%d|%d", i, v)), replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never errors
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finaliser. FNV-1a alone avalanches poorly on
// short keys (vnode labels, short entity names), which shows up directly
// as skewed arc ownership; the finaliser spreads every input bit across
// the full 64-bit ordering the ring depends on.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// order returns every replica index in the key's preference order: the
// owner (first point clockwise of the key's hash), then each successor
// the first time it appears. order(key)[0] is stable under the ring's
// lifetime — that is what makes per-pair result caches on the replicas
// effective — and order(key)[1:] is the deterministic failover chain.
func (r *ring) order(key string) []int {
	out := make([]int, 0, r.n)
	if len(r.points) == 0 {
		return out
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.n)
	for i := 0; len(out) < r.n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

// queryKey is the routing key of one (pair, budget) query. The budget
// is part of the key because the replicas' result caches key on
// (pair, options): pinning each budget variant to one owner keeps its
// cache hit rate intact instead of smearing variants across the fleet.
func queryKey(start, end string, budgetMS int64, budgetExp int) string {
	return fmt.Sprintf("%s\x00%s\x00%d\x00%d", start, end, budgetMS, budgetExp)
}
