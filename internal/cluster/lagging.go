package cluster

import (
	"context"
	"net/http"
	"net/url"
	"time"
)

// Lagging management: the router's half of self-healing catch-up. A
// replica is *lagging* when the router knows its generation is below
// the floor — it rejected a query for answering too old, or it missed
// a delta broadcast. Lagging replicas are excluded from failover
// chains and from delta fan-out (applying a broadcast onto stale state
// would fork history at the same generation numbers), and the router
// kicks their sync engine (POST /admin/sync?peer=...) pointing at the
// freshest routable peer. Re-admission is automatic: the moment a
// health probe, ack or response shows the replica back at the floor,
// candidates() clears the flag and the ring order applies again.

// defaultSyncKickInterval rate-limits kicks per replica; the engine
// also self-serialises, so this only bounds wasted HTTP chatter.
const defaultSyncKickInterval = 5 * time.Second

// noteLagging marks rp lagging and (rate-limited) kicks its sync
// engine. Callers hold no locks; everything here is atomics plus a
// fire-and-forget goroutine.
func (rt *Router) noteLagging(rp *replica) {
	if !rp.lagging.Swap(true) {
		rt.m.laggingMarks.Inc()
	}
	rt.kickSync(rp)
}

// kickSync asks rp's sync engine to catch up from the freshest routable
// peer. At most one kick per SyncKickInterval per replica; the POST is
// asynchronous and best-effort — a dead replica just drops it, and the
// next lagging observation retries.
func (rt *Router) kickSync(rp *replica) {
	interval := rt.cfg.SyncKickInterval
	if interval <= 0 {
		interval = defaultSyncKickInterval
	}
	now := time.Now().UnixNano()
	last := rp.lastKick.Load()
	if now-last < int64(interval) || !rp.lastKick.CompareAndSwap(last, now) {
		return
	}
	peer := rt.freshestPeer(rp)
	var auth string
	if a := rt.adminAuth.Load(); a != nil {
		auth = *a
	}
	rt.m.syncKicks.Inc()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		u := rp.baseURL + "/admin/sync"
		if peer != "" {
			u += "?peer=" + url.QueryEscape(peer)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
		if err != nil {
			return
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			return
		}
		resp.Body.Close()
	}()
}

// freshestPeer returns the base URL of the best catch-up source for rp:
// the routable replica (other than rp itself) with the largest known
// generation. Empty when no peer qualifies — the kicked engine then
// probes its own configured peer list.
func (rt *Router) freshestPeer(rp *replica) string {
	var best *replica
	for _, cand := range rt.replicas {
		if cand == rp || !cand.routable() {
			continue
		}
		if best == nil || cand.knownGen.Load() > best.knownGen.Load() {
			best = cand
		}
	}
	if best == nil {
		return ""
	}
	return best.baseURL
}

// reconcileLagging clears the lagging latch of every replica whose
// probed generation is back at the floor and whose content does not
// contradict the fleet's. candidates() performs the same re-admission
// on the query path; this pass (ticked alongside the health checker)
// covers an idle tier, so a caught-up replica never waits for the next
// query to rejoin.
func (rt *Router) reconcileLagging() {
	floor := rt.genFloor.load()
	for _, rp := range rt.replicas {
		if rp.lagging.Load() && rp.knownGen.Load() >= floor && !rt.forkSuspect(rp) {
			rp.lagging.Store(false)
		}
	}
}

// forkSuspect reports whether rp's last probed fingerprint contradicts
// a non-lagging replica's at the same generation. The same generation
// number with different content is a forked history — re-admitting it
// on the generation alone (the number is at the floor, after all)
// would serve divergent answers to clients. No comparable evidence —
// no probe yet, an empty fingerprint, or no trusted replica at the
// same generation — clears the suspect: generation-based re-admission
// then applies as before, and the replica's sync engine has already
// been kicked to repair any fork the probes have not yet exposed.
func (rt *Router) forkSuspect(rp *replica) bool {
	pi := rp.probed.Load()
	if pi == nil || pi.fp == "" {
		return false
	}
	for _, other := range rt.replicas {
		if other == rp || other.lagging.Load() {
			continue
		}
		if oi := other.probed.Load(); oi != nil && oi.gen == pi.gen && oi.fp != "" && oi.fp != pi.fp {
			return true
		}
	}
	return false
}
