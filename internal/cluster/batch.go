package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Batch routing. A /batch is scattered by ring ownership: each pair
// goes to its owner's failover chain, the sub-batches run concurrently,
// and the results are reassembled in request order. The generation
// invariant of the single-replica /batch — the whole batch answers from
// one pinned snapshot — must survive the scatter, so a gather that
// mixed generations (a delta landed between sub-responses, or a stale
// replica answered a chain) is discarded and the entire batch re-sent
// to one replica holding the newest observed generation: one replica
// pins one snapshot, so the repin is single-generation by construction.

type batchPair struct {
	Start string `json:"start"`
	End   string `json:"end"`
}

type batchRequest struct {
	Pairs            []batchPair `json:"pairs"`
	BudgetMS         int64       `json:"budget_ms,omitempty"`
	BudgetExpansions int         `json:"budget_expansions,omitempty"`
	Trace            bool        `json:"trace,omitempty"`
}

// batchWire is the replica /batch response with each entry kept as raw
// JSON: the router reorders entries but never interprets results.
type batchWire struct {
	Results     []json.RawMessage `json:"results"`
	Generation  uint64            `json:"generation"`
	Fingerprint string            `json:"fingerprint"`
}

// gatheredBatch is the client-facing reassembled response.
type gatheredBatch struct {
	Results     []json.RawMessage `json:"results"`
	Generation  uint64            `json:"generation"`
	Fingerprint string            `json:"fingerprint"`
	ElapsedMS   float64           `json:"elapsed_ms"`
}

// subResult is one gathered sub-batch: which original pair indices it
// covered and the replica answer.
type subResult struct {
	indices []int
	res     *proxyResult
}

// maxBatchBody bounds one inbound /batch request body.
const maxBatchBody = 32 << 20

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	reqID := requestID(r)
	w.Header().Set("X-Request-Id", reqID)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "reading body: " + err.Error()})
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if len(req.Pairs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "pairs must be non-empty"})
		return
	}
	t0 := time.Now()

	// Scatter by ring owner. Pairs whose chains start at the same
	// replica share one sub-batch, so the common case (few replicas,
	// many pairs) stays a handful of sub-requests.
	type group struct {
		indices []int
		pairs   []batchPair
		chain   []*replica
	}
	groups := map[string]*group{}
	for i, p := range req.Pairs {
		chain := rt.candidates(queryKey(p.Start, p.End, req.BudgetMS, req.BudgetExpansions))
		if len(chain) == 0 {
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: errNoReplica.Error()})
			return
		}
		k := chain[0].name
		g := groups[k]
		if g == nil {
			g = &group{chain: chain}
			groups[k] = g
		}
		g.indices = append(g.indices, i)
		g.pairs = append(g.pairs, p)
	}

	type subOut struct {
		sub subResult
		err error
	}
	out := make(chan subOut, len(groups))
	for _, g := range groups {
		go func(g *group) {
			sb, _ := json.Marshal(batchRequest{
				Pairs: g.pairs, BudgetMS: req.BudgetMS,
				BudgetExpansions: req.BudgetExpansions, Trace: req.Trace,
			})
			res, err := rt.trySequence(r.Context(), g.chain, http.MethodPost, "/batch", "", sb, reqID, true)
			out <- subOut{subResult{indices: g.indices, res: res}, err}
		}(g)
	}

	// Gather. Any non-200 terminal sub-response (a 4xx the replicas
	// agree on, or a 429 shed) answers the whole batch — merging partial
	// HTTP failures would hide them from the client.
	subs := make([]subResult, 0, len(groups))
	for range groups {
		o := <-out
		if o.err != nil {
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no replica answered: " + o.err.Error()})
			return
		}
		if o.sub.res.status != http.StatusOK {
			forward(w, reqID, o.sub.res)
			return
		}
		subs = append(subs, o.sub)
	}

	gathered, mixed, err := assembleBatch(len(req.Pairs), subs)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: err.Error()})
		return
	}
	if mixed {
		// Generations mixed across sub-responses: repin the whole batch
		// on the freshest replica observed in the gather.
		rt.m.batchRepins.Inc()
		res, err := rt.repinBatch(r, subs, body, reqID)
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "batch repin failed: " + err.Error()})
			return
		}
		if res.status == http.StatusOK {
			rt.genFloor.lift(res.generation)
		}
		forward(w, reqID, res)
		return
	}
	rt.genFloor.lift(gathered.Generation)
	rt.lat.note(time.Since(t0))
	gathered.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, gathered)
}

// assembleBatch reorders sub-batch entries into request order and
// reports whether the sub-responses disagreed on generation.
func assembleBatch(n int, subs []subResult) (*gatheredBatch, bool, error) {
	g := &gatheredBatch{Results: make([]json.RawMessage, n)}
	for _, o := range subs {
		var wire batchWire
		if err := json.Unmarshal(o.res.body, &wire); err != nil {
			return nil, false, fmt.Errorf("corrupt sub-batch from %s: %v", o.res.replica.name, err)
		}
		if len(wire.Results) != len(o.indices) {
			return nil, false, fmt.Errorf("sub-batch from %s returned %d results for %d pairs",
				o.res.replica.name, len(wire.Results), len(o.indices))
		}
		for j, raw := range wire.Results {
			g.Results[o.indices[j]] = raw
		}
		if g.Generation == 0 {
			g.Generation, g.Fingerprint = wire.Generation, wire.Fingerprint
		} else if g.Generation != wire.Generation {
			return g, true, nil
		}
	}
	return g, false, nil
}

// repinBatch re-sends the entire original batch to the freshest replica
// seen in the gather, with every other replica as its failover chain.
func (rt *Router) repinBatch(r *http.Request, subs []subResult, body []byte, reqID string) (*proxyResult, error) {
	var freshest *replica
	var maxGen uint64
	for _, o := range subs {
		if o.res.generation > maxGen {
			maxGen, freshest = o.res.generation, o.res.replica
		}
	}
	chain := make([]*replica, 0, len(rt.replicas))
	if freshest != nil {
		chain = append(chain, freshest)
	}
	for _, rp := range rt.replicas {
		if rp != freshest {
			chain = append(chain, rp)
		}
	}
	return rt.trySequence(r.Context(), chain, http.MethodPost, "/batch", "", body, reqID, true)
}
