package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rex"
	"rex/internal/serve"
)

// A 200 ack at a generation off the fleet's is a fork, not a success:
// the review scenario is a cold-restarted (wiped) replica whose
// knownGen is still stale-high, which applies the broadcast onto
// near-empty state and acks a tiny generation. The router must
// discount the ack, adopt the truthful generation, and quarantine the
// replica instead of counting it applied.
func TestDeltaBroadcastQuarantinesDivergentAck(t *testing.T) {
	real := bootReplica(t, "rex-real")
	// The fake replica plays the forked role deterministically: health
	// probes see a stale-high generation (so it is never pre-excluded
	// from fan-out), but every delta it receives is acked at the forked
	// generation 1 — the shape of a wiped store applying broadcasts.
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/healthz":
			w.Write([]byte(`{"status":"ok","generation":100,"fingerprint":"forked"}`)) //nolint:errcheck
		case "/admin/delta":
			w.Write([]byte(`{"generation":1}`)) //nolint:errcheck
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	t.Cleanup(fake.Close)

	rt, err := New(Config{
		Replicas: []ReplicaConfig{
			{Name: "rex-real", URL: real.hs.URL},
			{Name: "rex-fake", URL: fake.URL},
		},
		HealthInterval: time.Hour, // no probes: the broadcast alone is under test
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)

	rec := routerDo(rt.Handler(), http.MethodPost, "/admin/delta", uniqueDelta(1))
	if rec.Code != http.StatusOK {
		t.Fatalf("broadcast = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Generation uint64 `json:"generation"`
		Applied    int    `json:"applied"`
		Replicas   []struct {
			Name       string `json:"name"`
			Generation uint64 `json:"generation"`
			Error      string `json:"error"`
		} `json:"replicas"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("unparseable response: %v\n%s", err, rec.Body.String())
	}
	if resp.Applied != 1 || resp.Generation != 2 {
		t.Fatalf("applied=%d generation=%d, want 1 applied at generation 2", resp.Applied, resp.Generation)
	}
	var forkRow bool
	for _, row := range resp.Replicas {
		if row.Name == "rex-fake" {
			forkRow = true
			if !strings.Contains(row.Error, "diverged") {
				t.Fatalf("fake replica row error = %q, want a diverged report", row.Error)
			}
		}
	}
	if !forkRow {
		t.Fatal("no response row for the diverged replica")
	}
	if n := metricSum(t, rt, "rex_router_delta_diverged_acks_total"); n != 1 {
		t.Fatalf("diverged acks metric = %v, want 1", n)
	}
	if n := metricSum(t, rt, "rex_router_lagging_marks_total"); n < 1 {
		t.Fatalf("lagging marks metric = %v, want >= 1", n)
	}
	// The divergent ack must adopt the replica's truthful generation —
	// not lift knownGen to the acked value as a success would.
	if g := rt.replicas[1].knownGen.Load(); g != 1 {
		t.Fatalf("diverged replica knownGen = %d, want the adopted 1", g)
	}
}

// The router replays the last Authorization header on sync kicks, so
// it must only remember a header that a replica actually accepted —
// otherwise one request with a bad token poisons every future kick.
func TestRouterAdoptsOnlyAcceptedAuth(t *testing.T) {
	k, err := rex.ReadKB(strings.NewReader(clusterTSV))
	if err != nil {
		t.Fatal(err)
	}
	store, err := rex.NewStore(k, rex.Options{Measure: "size", TopK: 8, MaxPatternSize: 3, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(store, serve.Config{Timeout: 10 * time.Second, Name: "rex-gated", AdminToken: "s3cret"})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		store.Close()
	})

	rt, err := New(Config{
		Replicas:       []ReplicaConfig{{Name: "rex-gated", URL: hs.URL}},
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)

	bad := httptest.NewRequest(http.MethodPost, "/admin/delta", strings.NewReader(uniqueDelta(1)))
	bad.Header.Set("Authorization", "Bearer wrong")
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, bad)
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("broadcast with wrong token = %d, want 401", rec.Code)
	}
	if rt.adminAuth.Load() != nil {
		t.Fatal("rejected Authorization header was stored")
	}

	good := httptest.NewRequest(http.MethodPost, "/admin/delta", strings.NewReader(uniqueDelta(2)))
	good.Header.Set("Authorization", "Bearer s3cret")
	rec = httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, good)
	if rec.Code != http.StatusOK {
		t.Fatalf("broadcast with right token = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rt.adminAuth.Load(); got == nil || *got != "Bearer s3cret" {
		t.Fatalf("accepted Authorization header not stored (got %v)", got)
	}
}

// Generation numbers alone cannot tell a healed replica from one that
// forked at the fleet's generation; re-admission must also check that
// the replica's probed fingerprint does not contradict a trusted
// peer's at the same generation.
func TestForkSuspectBlocksReadmission(t *testing.T) {
	rt, err := New(Config{
		Replicas: []ReplicaConfig{
			{Name: "rex-good", URL: "http://127.0.0.1:1"},
			{Name: "rex-fork", URL: "http://127.0.0.1:2"},
		},
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	// No Start: the test drives the state machine directly.
	good, fork := rt.replicas[0], rt.replicas[1]
	rt.genFloor.lift(5)
	good.healthy.Store(true)
	good.knownGen.Store(5)
	good.probed.Store(&probeInfo{gen: 5, fp: "AAA"})
	fork.healthy.Store(true)
	fork.knownGen.Store(5)
	fork.lagging.Store(true)
	fork.probed.Store(&probeInfo{gen: 5, fp: "BBB"})

	rt.reconcileLagging()
	if !fork.lagging.Load() {
		t.Fatal("forked replica re-admitted on generation alone despite a contradicting fingerprint")
	}
	for _, rp := range rt.candidates("some-key") {
		if rp == fork {
			t.Fatal("forked replica present in the failover chain")
		}
	}

	// Once the probe shows the fleet's fingerprint the fork is healed
	// and generation-based re-admission applies again.
	fork.probed.Store(&probeInfo{gen: 5, fp: "AAA"})
	rt.reconcileLagging()
	if fork.lagging.Load() {
		t.Fatal("healed replica not re-admitted")
	}
}
