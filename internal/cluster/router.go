package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterises one Router.
type Config struct {
	// Replicas is the static replica set. At least one is required.
	Replicas []ReplicaConfig
	// Client performs replica requests; nil uses a default with sane
	// connection pooling. Health checks share it.
	Client *http.Client
	// HealthInterval is the /healthz polling period (default 1s).
	HealthInterval time.Duration

	// Retries is how many full passes over a query's failover chain are
	// made before giving up (default 3). Passes after the first sleep an
	// exponentially growing, jittered backoff.
	Retries   int
	RetryBase time.Duration // first inter-pass backoff (default 50ms)
	RetryMax  time.Duration // backoff cap (default 2s)

	// Hedging: budgeted queries that outlive the observed p95 latency
	// fire a duplicate attempt against the next replica; first answer
	// wins, the loser is cancelled. HedgeMin/HedgeMax clamp the
	// p95-derived delay (defaults 10ms / 2s); DisableHedging turns the
	// mechanism off (the rexbench comparison mode).
	HedgeMin       time.Duration
	HedgeMax       time.Duration
	DisableHedging bool

	// Breaker tuning; zero values take the breaker defaults.
	BreakerThreshold int
	BreakerBase      time.Duration
	BreakerMax       time.Duration

	// VNodes per replica on the hash ring (default 64).
	VNodes int

	// SyncKickInterval rate-limits per-replica catch-up kicks
	// (POST /admin/sync) fired at lagging replicas (default 5s).
	SyncKickInterval time.Duration
}

// Router routes (pair, budget) queries across the replica set. All
// state is soft — health, breakers, latency, the generation floor — so
// a router restart costs nothing but a health-check round.
type Router struct {
	cfg      Config
	client   *http.Client
	replicas []*replica
	ring     *ring
	checker  *healthChecker
	m        *routerMetrics

	// genFloor is the largest generation ever returned to a client.
	// Responses below it are re-routed, and replicas known to be below
	// it are deprioritized — the cross-replica monotonicity invariant:
	// no client observes the KB moving backwards.
	genFloor atomicMax

	// deltaMu serialises delta broadcasts: the stores are deterministic,
	// so identical apply order keeps every replica's fingerprint equal.
	deltaMu sync.Mutex

	// adminAuth is the last Authorization header a replica *accepted* on
	// an /admin/delta broadcast, replayed on sync kicks so
	// token-protected replicas accept them. Unvalidated headers are
	// never stored — one bad token must not poison future kicks.
	adminAuth atomic.Pointer[string]

	lat latencyRing
}

// atomicMax is a CAS-max uint64.
type atomicMax struct{ v atomic.Uint64 }

func (a *atomicMax) load() uint64 { return a.v.Load() }
func (a *atomicMax) lift(g uint64) {
	for {
		cur := a.v.Load()
		if g <= cur || a.v.CompareAndSwap(cur, g) {
			return
		}
	}
}

// New builds a Router; Start begins health checking.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("cluster: at least one replica required")
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = 10 * time.Millisecond
	}
	if cfg.HedgeMax <= 0 {
		cfg.HedgeMax = 2 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	bcfg := breakerConfig{threshold: cfg.BreakerThreshold, baseBackoff: cfg.BreakerBase, maxBackoff: cfg.BreakerMax}
	rt := &Router{cfg: cfg, client: client}
	for i, rc := range cfg.Replicas {
		name := rc.Name
		if name == "" {
			name = fmt.Sprintf("r%d", i)
		}
		u, err := url.Parse(rc.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: replica %s: bad URL %q", name, rc.URL)
		}
		rt.replicas = append(rt.replicas, &replica{
			name:    name,
			baseURL: u.Scheme + "://" + u.Host,
			breaker: newBreaker(bcfg),
		})
	}
	rt.ring = newRing(len(rt.replicas), cfg.VNodes)
	rt.checker = newHealthChecker(cfg.HealthInterval, client)
	rt.m = newRouterMetrics(rt)
	rt.lat.init(256)
	return rt, nil
}

// Start performs one synchronous health sweep — so the first request
// already sees real health, not optimistic defaults — then begins the
// periodic checks.
func (rt *Router) Start() {
	var wg sync.WaitGroup
	for _, rp := range rt.replicas {
		wg.Add(1)
		go func(rp *replica) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), rt.checker.interval)
			defer cancel()
			rp.checkHealth(ctx, rt.client)
		}(rp)
	}
	wg.Wait()
	rt.checker.start(rt.replicas)
	go func() {
		t := time.NewTicker(rt.checker.interval)
		defer t.Stop()
		for {
			select {
			case <-rt.checker.stop:
				return
			case <-t.C:
				rt.reconcileLagging()
			}
		}
	}()
}

// Close stops the health checker.
func (rt *Router) Close() { rt.checker.close() }

// GenFloor exposes the monotonicity floor (tests, metrics).
func (rt *Router) GenFloor() uint64 { return rt.genFloor.load() }

// candidates returns the key's failover chain: ring preference order,
// with replicas known to be at or above the generation floor ahead of
// stale ones. Stale replicas stay in the chain as a last resort — their
// health view may simply lag — but every response is still checked
// against the floor before it reaches a client. Replicas *marked*
// lagging (caught below the floor, sync kicked) are excluded outright
// until their probed generation reaches the floor again without their
// probed fingerprint contradicting the fleet's — that is the
// re-admission gate — unless excluding them would empty the chain,
// where availability wins over freshness.
func (rt *Router) candidates(key string) []*replica {
	order := rt.ring.order(key)
	floor := rt.genFloor.load()
	out := make([]*replica, 0, len(order))
	var stale, lagging []*replica
	for _, i := range order {
		rp := rt.replicas[i]
		if rp.knownGen.Load() >= floor && (!rp.lagging.Load() || !rt.forkSuspect(rp)) {
			// Automatic re-admission: a lagging replica whose probed
			// generation caught back up rejoins at its ring position —
			// unless its probed fingerprint contradicts a trusted
			// replica's at the same generation (a fork wearing the
			// fleet's generation number; see forkSuspect).
			rp.lagging.Store(false)
			out = append(out, rp)
		} else if rp.lagging.Load() {
			lagging = append(lagging, rp)
		} else {
			stale = append(stale, rp)
		}
	}
	out = append(out, stale...)
	if len(out) == 0 {
		return lagging
	}
	return out
}

// proxyResult is one replica's buffered answer, ready to forward.
type proxyResult struct {
	status      int
	contentType string
	retryAfter  string // preserved from a forwarded 429
	body        []byte
	replica     *replica
	generation  uint64 // parsed from 200 query responses, else 0
}

// maxProxyBody bounds one buffered replica response. Batch responses
// over the wire dominate; 64 MiB comfortably holds a maximal batch.
const maxProxyBody = 64 << 20

// errNoReplica is returned when a request exhausts its failover chain.
var errNoReplica = errors.New("cluster: no routable replica")

// attempt sends one request to one replica and classifies the answer.
// terminal=true means the result must go to the client as-is (success,
// client error, or 429 — shed is shed, the router never retries a shed
// request into an overloaded fleet); terminal=false with err set means
// the chain should move on (connect failure, 5xx, corrupt body, stale
// generation).
func (rt *Router) attempt(ctx context.Context, rp *replica, method, path, rawQuery string, body []byte, reqID string, wantGen bool) (res *proxyResult, terminal bool, err error) {
	u := rp.baseURL + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("X-Request-Id", reqID)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		// Connect-class failure: trip the breaker and mark the replica
		// down immediately — a SIGKILLed process should stop receiving
		// attempts now, not at the next health tick.
		rp.breaker.failure()
		if ctx.Err() == nil {
			rp.healthy.Store(false)
		}
		return nil, false, fmt.Errorf("%s: %w", rp.name, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		rp.breaker.failure()
		return nil, false, fmt.Errorf("%s: reading body: %w", rp.name, err)
	}
	switch {
	case resp.StatusCode >= 500:
		rp.breaker.failure()
		return nil, false, fmt.Errorf("%s: status %d", rp.name, resp.StatusCode)
	case resp.StatusCode == http.StatusTooManyRequests:
		// The replica is alive and protecting itself; forward the shed
		// (and its Retry-After) untouched.
		rp.breaker.success()
		return &proxyResult{
			status:      resp.StatusCode,
			contentType: resp.Header.Get("Content-Type"),
			retryAfter:  resp.Header.Get("Retry-After"),
			body:        raw,
			replica:     rp,
		}, true, nil
	}
	rp.breaker.success()
	pr := &proxyResult{status: resp.StatusCode, contentType: resp.Header.Get("Content-Type"), body: raw, replica: rp}
	if wantGen && resp.StatusCode == http.StatusOK {
		var env struct {
			Generation uint64 `json:"generation"`
		}
		if json.Unmarshal(raw, &env) != nil || env.Generation == 0 {
			// A 200 the router cannot attribute to a generation is a
			// corrupt replica answer — never forward it.
			return nil, false, fmt.Errorf("%s: corrupt response body", rp.name)
		}
		pr.generation = env.Generation
		rp.liftGen(env.Generation)
		if floor := rt.genFloor.load(); env.Generation < floor {
			// The replica answered from a snapshot older than one a
			// client has already seen; serving it would move the KB
			// backwards. Route on, and tell the straggler to catch up.
			rt.m.staleRejects.Inc()
			rt.noteLagging(rp)
			return nil, false, fmt.Errorf("%s: generation %d below floor %d", rp.name, env.Generation, floor)
		}
	}
	return pr, true, nil
}

// trySequence walks the failover chain until a terminal answer, making
// cfg.Retries passes with jittered exponential backoff between them. A
// replica whose breaker refuses (or that is known-dead) is skipped; the
// pass structure means a chain that is briefly all-down gets re-walked
// after the backoff instead of failing the client immediately — riding
// out the gap between a replica dying and its successor warming.
func (rt *Router) trySequence(ctx context.Context, cands []*replica, method, path, rawQuery string, body []byte, reqID string, wantGen bool) (*proxyResult, error) {
	var lastErr error
	for round := 0; round < rt.cfg.Retries; round++ {
		if round > 0 {
			rt.m.retries.Inc()
			if err := sleepCtx(ctx, backoffFor(round, rt.cfg.RetryBase, rt.cfg.RetryMax)); err != nil {
				return nil, err
			}
		}
		attempted := false
		for i, rp := range cands {
			if !rp.routable() {
				continue
			}
			attempted = true
			if round > 0 || i > 0 {
				rt.m.failovers.Inc()
			}
			res, terminal, err := rt.attempt(ctx, rp, method, path, rawQuery, body, reqID, wantGen)
			if terminal {
				return res, nil
			}
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
		if !attempted && lastErr == nil {
			lastErr = errNoReplica
		}
	}
	if lastErr == nil {
		lastErr = errNoReplica
	}
	return nil, lastErr
}

// backoffFor is the inter-pass backoff: base·2^(round-1), capped, with
// uniform jitter over [1/2, 1]× so concurrent failed-over requests do
// not re-walk the chain in lockstep.
func backoffFor(round int, base, max time.Duration) time.Duration {
	d := base << (round - 1)
	if d > max || d <= 0 {
		d = max
	}
	return d/2 + rand.N(d/2+1)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// routeQuery answers /explain through the chain-with-hedging machinery.
// The primary attempt walks the key's failover chain; if the query is
// budgeted and the primary outlives the hedge delay, a duplicate walk
// starts one position down the chain, both carrying the same
// X-Request-Id. First terminal answer wins; the loser's context is
// cancelled so the fleet never does more than one extra query of work.
func (rt *Router) routeQuery(ctx context.Context, cands []*replica, method, path, rawQuery string, body []byte, reqID string, budgeted bool) (*proxyResult, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type seqOut struct {
		res    *proxyResult
		err    error
		hedged bool
	}
	out := make(chan seqOut, 2)
	launch := func(c []*replica, hedged bool) {
		go func() {
			res, err := rt.trySequence(ctx, c, method, path, rawQuery, body, reqID, true)
			out <- seqOut{res, err, hedged}
		}()
	}
	launch(cands, false)
	inFlight := 1

	var hedgeC <-chan time.Time
	hedgeFired := false
	if budgeted && !rt.cfg.DisableHedging && len(cands) > 1 {
		t := time.NewTimer(rt.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}

	var firstErr error
	for inFlight > 0 {
		select {
		case o := <-out:
			inFlight--
			if o.err == nil {
				if hedgeFired {
					if o.hedged {
						rt.m.hedges.With("won").Inc()
					} else {
						rt.m.hedges.With("lost").Inc()
					}
				}
				return o.res, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
		case <-hedgeC:
			hedgeC = nil
			hedgeFired = true
			inFlight++
			rt.m.hedgesFired.Inc()
			// Start the duplicate one position down the chain so the two
			// walks begin on different replicas.
			rotated := append(append([]*replica{}, cands[1:]...), cands[0])
			launch(rotated, true)
		}
	}
	return nil, firstErr
}

// hedgeDelay derives the duplicate-attempt delay from the observed p95
// query latency, clamped to [HedgeMin, HedgeMax]. Before enough
// latencies exist the delay is HedgeMax — hedge conservatively until
// the tier knows what slow means here.
func (rt *Router) hedgeDelay() time.Duration {
	p95 := rt.lat.p95()
	if p95 <= 0 {
		return rt.cfg.HedgeMax
	}
	return min(max(p95, rt.cfg.HedgeMin), rt.cfg.HedgeMax)
}

// latencyRing keeps the most recent successful query latencies for the
// p95 derivation.
type latencyRing struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	n    int
}

func (l *latencyRing) init(size int) { l.buf = make([]time.Duration, size) }

func (l *latencyRing) note(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = d
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
}

// p95 returns the 95th percentile of the retained latencies, or 0 when
// fewer than 16 have been observed (warmup).
func (l *latencyRing) p95() time.Duration {
	l.mu.Lock()
	sample := make([]time.Duration, l.n)
	copy(sample, l.buf[:l.n])
	l.mu.Unlock()
	if len(sample) < 16 {
		return 0
	}
	sort.Slice(sample, func(a, b int) bool { return sample[a] < sample[b] })
	return sample[(len(sample)*95)/100]
}

// parsedQuery is the routing-relevant shape of one /explain request.
type parsedQuery struct {
	start, end string
	budgetMS   int64
	budgetExp  int
}

func (p parsedQuery) budgeted() bool { return p.budgetMS > 0 || p.budgetExp > 0 }

// parseExplain extracts the pair and budget from a GET query string or
// a POST body without validating further — the replica owns request
// validation; the router only needs the routing key.
func parseExplain(r *http.Request, body []byte) (parsedQuery, error) {
	var p parsedQuery
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		p.start, p.end = q.Get("start"), q.Get("end")
		if v := q.Get("budget_ms"); v != "" {
			p.budgetMS, _ = strconv.ParseInt(v, 10, 64)
		}
		if v := q.Get("budget_expansions"); v != "" {
			p.budgetExp, _ = strconv.Atoi(v)
		}
	case http.MethodPost:
		var req struct {
			Start            string `json:"start"`
			End              string `json:"end"`
			BudgetMS         int64  `json:"budget_ms"`
			BudgetExpansions int    `json:"budget_expansions"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return p, fmt.Errorf("invalid JSON body: %w", err)
		}
		p = parsedQuery{req.Start, req.End, req.BudgetMS, req.BudgetExpansions}
	default:
		return p, errors.New("use GET or POST")
	}
	return p, nil
}
