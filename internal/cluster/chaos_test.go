package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rex/internal/fail"
)

// The chaos soak: three replicas serve continuous explain, batch and
// delta traffic while every failpoint seam is armed in turn against
// every replica — hard 500s, stalls, corrupt 200s, failing health
// checks, overlapping faults on two replicas at once — and finally one
// replica is killed outright. The contract under test is the tentpole
// claim: while at least one healthy replica remains, clients see zero
// failures and per-client generations never move backwards.
//
// Run with -race; the test is skipped under -short so plain unit runs
// stay fast (CI runs it explicitly).

// chaosClient accumulates one traffic goroutine's observations.
type chaosClient struct {
	name     string
	ops      int
	failures []string
	lastGen  uint64
}

func (c *chaosClient) observe(code int, wantCode int, gen uint64, detail string) {
	c.ops++
	if code != wantCode {
		if len(c.failures) < 10 {
			c.failures = append(c.failures, fmt.Sprintf("%s op %d: status %d (want %d): %s", c.name, c.ops, code, wantCode, detail))
		}
		return
	}
	if gen < c.lastGen {
		c.failures = append(c.failures, fmt.Sprintf("%s op %d: generation moved backwards %d -> %d", c.name, c.ops, c.lastGen, gen))
		return
	}
	c.lastGen = gen
}

func TestRouterChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	rt, reps := bootCluster(t, 3, nil)
	h := rt.Handler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var deltaSeq atomic.Int64
	clients := make([]*chaosClient, 0, 6)
	var mu sync.Mutex // guards clients slice during setup only

	spawn := func(name string, pace time.Duration, op func(c *chaosClient)) {
		c := &chaosClient{name: name}
		mu.Lock()
		clients = append(clients, c)
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				op(c)
				time.Sleep(pace)
			}
		}()
	}

	pairs := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"a", "d"}, {"b", "d"}, {"d", "c"}}

	// Three explain clients: one plain, two budgeted (so hedging runs
	// throughout the soak). Each cycles through different keys, so the
	// traffic spreads over every replica's arcs.
	for i := 0; i < 3; i++ {
		i := i
		budget := ""
		if i > 0 {
			budget = fmt.Sprintf("&budget_ms=%d", 100+50*i)
		}
		spawn(fmt.Sprintf("explain-%d", i), 2*time.Millisecond, func(c *chaosClient) {
			p := pairs[c.ops%len(pairs)]
			rec := routerDo(h, http.MethodGet, "/explain?start="+p[0]+"&end="+p[1]+budget, "")
			gen := uint64(0)
			if rec.Code == http.StatusOK {
				var env struct {
					Generation uint64 `json:"generation"`
				}
				json.Unmarshal(rec.Body.Bytes(), &env) //nolint:errcheck
				gen = env.Generation
			}
			c.observe(rec.Code, http.StatusOK, gen, rec.Body.String())
		})
	}

	// One batch client: scattered sub-batches must gather into a single
	// generation every time, no matter what the fleet is doing.
	spawn("batch", 5*time.Millisecond, func(c *chaosClient) {
		body := `{"pairs":[{"start":"a","end":"b"},{"start":"b","end":"c"},{"start":"c","end":"d"},{"start":"a","end":"d"}]}`
		rec := routerDo(h, http.MethodPost, "/batch", body)
		gen := uint64(0)
		detail := rec.Body.String()
		if rec.Code == http.StatusOK {
			var resp struct {
				Results    []json.RawMessage `json:"results"`
				Generation uint64            `json:"generation"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || len(resp.Results) != 4 {
				c.ops++
				c.failures = append(c.failures, fmt.Sprintf("batch op %d: malformed gather: %v", c.ops, detail))
				return
			}
			gen = resp.Generation
		}
		c.observe(rec.Code, http.StatusOK, gen, detail)
	})

	// One delta writer: the tier's generation must march strictly
	// forward through every fault. Strictness comes free because each
	// broadcast applies exactly one delta.
	spawn("delta", 25*time.Millisecond, func(c *chaosClient) {
		n := deltaSeq.Add(1)
		rec := routerDo(h, http.MethodPost, "/admin/delta", uniqueDelta(int(n)))
		gen := uint64(0)
		if rec.Code == http.StatusOK {
			var env struct {
				Generation uint64 `json:"generation"`
			}
			json.Unmarshal(rec.Body.Bytes(), &env) //nolint:errcheck
			gen = env.Generation
			if gen <= c.lastGen {
				c.failures = append(c.failures, fmt.Sprintf("delta op %d: generation did not advance: %d -> %d", c.ops, c.lastGen, gen))
			}
		}
		c.observe(rec.Code, http.StatusOK, gen, rec.Body.String())
	})

	// The fault schedule: every seam against every replica, one at a
	// time, then two replicas faulted at once, then a kill.
	armDuration := 70 * time.Millisecond
	recovery := 40 * time.Millisecond
	for _, rep := range reps {
		for _, seam := range []struct {
			name string
			arm  func()
			off  func()
		}{
			{"respond-error", func() { fail.Enable("serve.respond@" + rep.name) }, func() { fail.Disable("serve.respond@" + rep.name) }},
			{"respond-stall", func() { fail.EnableStall("serve.respond@"+rep.name, 60*time.Millisecond) }, func() { fail.Disable("serve.respond@" + rep.name) }},
			{"corrupt-body", func() { fail.Enable("test.corrupt@" + rep.name) }, func() { fail.Disable("test.corrupt@" + rep.name) }},
			{"healthz-error", func() { fail.Enable("serve.healthz@" + rep.name) }, func() { fail.Disable("serve.healthz@" + rep.name) }},
		} {
			seam.arm()
			time.Sleep(armDuration)
			seam.off()
			time.Sleep(recovery)
		}
	}

	// Overlapping faults on two of three replicas: the single healthy
	// survivor must carry the whole tier.
	fail.EnableStall("serve.respond@"+reps[0].name, 60*time.Millisecond)
	fail.Enable("serve.respond@" + reps[1].name)
	time.Sleep(armDuration)
	fail.Disable("serve.respond@" + reps[0].name)
	fail.Disable("serve.respond@" + reps[1].name)
	time.Sleep(recovery)

	// SIGKILL-equivalent: connections die mid-flight, the port goes
	// dark, nobody says goodbye.
	reps[2].hs.CloseClientConnections()
	reps[2].hs.Close()
	time.Sleep(250 * time.Millisecond)

	close(stop)
	wg.Wait()

	for _, c := range clients {
		for _, f := range c.failures {
			t.Error(f)
		}
		if c.ops < 10 {
			t.Errorf("%s made only %d requests; the soak barely exercised it", c.name, c.ops)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// The tier settled: the two survivors are routable and hold the same
	// final generation, and the floor matches what clients saw.
	deadline := time.Now().Add(2 * time.Second)
	for {
		hz := routerDo(h, http.MethodGet, "/healthz", "")
		var health routerHealth
		if err := json.Unmarshal(hz.Body.Bytes(), &health); err != nil {
			t.Fatal(err)
		}
		if hz.Code == http.StatusOK && health.RoutableCount == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tier never settled at 2 routable replicas: %s", hz.Body.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	s0, s1 := reps[0].store.Current(), reps[1].store.Current()
	if s0.Generation != s1.Generation || s0.Fingerprint != s1.Fingerprint {
		t.Fatalf("survivors diverged: %s at gen %d (%s) vs %s at gen %d (%s)",
			reps[0].name, s0.Generation, s0.Fingerprint, reps[1].name, s1.Generation, s1.Fingerprint)
	}
	if floor := rt.GenFloor(); floor > s0.Generation {
		t.Fatalf("generation floor %d above the survivors' %d", floor, s0.Generation)
	}
}
