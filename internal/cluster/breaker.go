package cluster

import (
	"math/rand/v2"
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker.
type breakerState int32

const (
	breakerClosed   breakerState = iota // normal: requests flow
	breakerOpen                         // tripped: requests refused until the backoff expires
	breakerHalfOpen                     // probing: one request through; success closes, failure re-opens
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breakerConfig tunes one replica's breaker.
type breakerConfig struct {
	// threshold is the consecutive-failure count that trips the
	// breaker open.
	threshold int
	// baseBackoff is the first open interval; each re-open doubles it
	// up to maxBackoff (exponential backoff), and the interval actually
	// waited is jittered uniformly over [1/2, 1]× so a fleet of routers
	// does not re-probe a recovering replica in lockstep.
	baseBackoff time.Duration
	maxBackoff  time.Duration
}

func (c breakerConfig) withDefaults() breakerConfig {
	if c.threshold <= 0 {
		c.threshold = 3
	}
	if c.baseBackoff <= 0 {
		c.baseBackoff = 200 * time.Millisecond
	}
	if c.maxBackoff <= 0 {
		c.maxBackoff = 10 * time.Second
	}
	return c
}

// breaker is one replica's circuit breaker. Failures are connect errors
// and 5xx responses — never 429: a shed is the replica protecting
// itself while healthy, and counting it as failure would convert an
// overload into an outage by tripping every breaker at peak load.
type breaker struct {
	cfg breakerConfig

	mu        sync.Mutex
	state     breakerState
	failures  int           // consecutive failures while closed
	backoff   time.Duration // next open interval (doubles per re-open)
	openUntil time.Time     // when the open state expires into half-open
}

func newBreaker(cfg breakerConfig) *breaker {
	c := cfg.withDefaults()
	return &breaker{cfg: c, backoff: c.baseBackoff}
}

// allow reports whether a request may be sent. An expired open breaker
// transitions to half-open and admits exactly one probe; concurrent
// callers during the probe are refused, so a broken replica sees one
// request per backoff interval, not a thundering herd.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Now().Before(b.openUntil) {
			return false
		}
		b.state = breakerHalfOpen
		return true
	default: // half-open: the single probe is already in flight
		return false
	}
}

// success records a completed request: the replica answered (any
// non-5xx status), so the breaker closes and the backoff resets.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.backoff = b.cfg.baseBackoff
}

// failure records a connect error or 5xx. Threshold consecutive
// failures trip the breaker open; a failed half-open probe re-opens it
// with a doubled (capped, jittered) backoff.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.open()
	case breakerClosed:
		b.failures++
		if b.failures >= b.cfg.threshold {
			b.open()
		}
	}
}

// open trips the breaker using the current backoff, then doubles it for
// the next trip. Callers hold b.mu.
func (b *breaker) open() {
	b.state = breakerOpen
	b.failures = 0
	// Uniform jitter over [backoff/2, backoff]: decorrelated probes
	// without ever probing sooner than half the intended interval.
	d := b.backoff/2 + rand.N(b.backoff/2+1)
	b.openUntil = time.Now().Add(d)
	b.backoff = min(b.backoff*2, b.cfg.maxBackoff)
}

// current returns the state for metrics, resolving an expired open
// interval to what allow would see.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && !time.Now().Before(b.openUntil) {
		return breakerHalfOpen
	}
	return b.state
}
