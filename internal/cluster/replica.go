package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ReplicaConfig names one replica and where to reach it.
type ReplicaConfig struct {
	Name string // stable identity for logs, metrics and failpoints
	URL  string // base URL, e.g. http://127.0.0.1:8081
}

// replica is the router's view of one rexserve instance: address,
// breaker, and the soft health state the checker maintains. knownGen is
// the router's best estimate of the replica's generation — lifted by
// delta acks and observed query responses, overwritten (downward
// included) by health probes so a cold-restarted replica is caught —
// used to deprioritize replicas that missed a delta, so one client
// never sees generations move backwards across failovers.
type replica struct {
	name    string
	baseURL string
	breaker *breaker

	healthy  atomic.Bool
	draining atomic.Bool
	knownGen atomic.Uint64
	checks   atomic.Uint64 // completed health probes, for tests/metrics

	// lagging marks a replica the router has caught below the
	// generation floor: excluded from chains and delta fan-out until a
	// probe or ack shows it caught up (candidates clears the flag).
	lagging  atomic.Bool
	lastKick atomic.Int64 // unixnano of the last sync kick (rate limit)

	// probed is the last health probe's (generation, fingerprint) pair,
	// stored as one pointer so a fingerprint is never compared against
	// another probe's generation. Re-admission uses it to refuse a
	// replica whose content at the fleet's generation provably differs
	// from a trusted peer's — generation numbers alone cannot tell a
	// healed replica from a forked one.
	probed atomic.Pointer[probeInfo]
}

// probeInfo is one health probe's version observation.
type probeInfo struct {
	gen uint64
	fp  string
}

// liftGen raises knownGen to at least g (CAS max) — for delta acks and
// query responses, which prove the replica holds at least g.
func (rp *replica) liftGen(g uint64) {
	for {
		cur := rp.knownGen.Load()
		if g <= cur || rp.knownGen.CompareAndSwap(cur, g) {
			return
		}
	}
}

// adoptGen overwrites knownGen with a health probe's observation —
// downward included. A replica restarted over an empty data dir comes
// back at generation 1; treating knownGen as a pure maximum would keep
// routing deltas to it and fork its history at already-published
// generation numbers. Probes run on one goroutine per replica, so the
// only race is against a concurrent ack's liftGen; losing that race
// under-estimates the generation, which is the safe direction (the
// replica is briefly treated as lagging and the next probe corrects
// it).
func (rp *replica) adoptGen(g uint64) {
	rp.knownGen.Store(g)
}

// routable reports whether queries may be sent here: the checker saw it
// healthy (a draining replica still finishes in-flight work but takes
// no new routing — that is the drain contract) and its breaker admits.
func (rp *replica) routable() bool {
	return rp.healthy.Load() && !rp.draining.Load() && rp.breaker.allow()
}

// healthBody is the subset of the rexserve /healthz JSON the router
// consumes.
type healthBody struct {
	Status      string `json:"status"`
	Draining    bool   `json:"draining"`
	Generation  uint64 `json:"generation"`
	Fingerprint string `json:"fingerprint"`
}

// checkHealth probes the replica once and folds the result into its
// soft state. A 200 marks it healthy; a 503 with draining=true marks it
// draining (reachable, bleeding traffic, not routable); anything else —
// connect error, 5xx, garbage body — marks it unhealthy. The generation
// is adopted from any parseable body, draining included: a draining
// replica's version info is still truthful.
func (rp *replica) checkHealth(ctx context.Context, client *http.Client) {
	defer rp.checks.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rp.baseURL+"/healthz", nil)
	if err != nil {
		rp.healthy.Store(false)
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		rp.healthy.Store(false)
		return
	}
	defer resp.Body.Close()
	var hb healthBody
	bodyErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hb)
	if bodyErr == nil && hb.Generation > 0 {
		rp.adoptGen(hb.Generation)
		rp.probed.Store(&probeInfo{gen: hb.Generation, fp: hb.Fingerprint})
	}
	switch {
	case resp.StatusCode == http.StatusOK && bodyErr == nil:
		rp.healthy.Store(true)
		rp.draining.Store(false)
	case resp.StatusCode == http.StatusServiceUnavailable && bodyErr == nil && hb.Draining:
		// Honoring the drain: the replica is alive and finishing its
		// in-flight work, but asked the tier to stop routing here.
		rp.healthy.Store(true)
		rp.draining.Store(true)
	default:
		rp.healthy.Store(false)
	}
}

// healthChecker polls every replica on a fixed interval from one
// goroutine per replica (a stalled probe against one replica must not
// delay the others' checks).
type healthChecker struct {
	interval time.Duration
	client   *http.Client
	stop     chan struct{}
	wg       sync.WaitGroup
}

func newHealthChecker(interval time.Duration, client *http.Client) *healthChecker {
	if interval <= 0 {
		interval = time.Second
	}
	return &healthChecker{interval: interval, client: client, stop: make(chan struct{})}
}

func (hc *healthChecker) start(replicas []*replica) {
	for _, rp := range replicas {
		hc.wg.Add(1)
		go func(rp *replica) {
			defer hc.wg.Done()
			t := time.NewTicker(hc.interval)
			defer t.Stop()
			for {
				ctx, cancel := context.WithTimeout(context.Background(), hc.interval)
				rp.checkHealth(ctx, hc.client)
				cancel()
				select {
				case <-hc.stop:
					return
				case <-t.C:
				}
			}
		}(rp)
	}
}

func (hc *healthChecker) close() {
	close(hc.stop)
	hc.wg.Wait()
}

// replicaStatus is one replica's row in the router's /healthz answer.
type replicaStatus struct {
	Name       string `json:"name"`
	URL        string `json:"url"`
	Healthy    bool   `json:"healthy"`
	Draining   bool   `json:"draining,omitempty"`
	Lagging    bool   `json:"lagging,omitempty"`
	Generation uint64 `json:"generation"`
	Breaker    string `json:"breaker"`
}

func (rp *replica) status() replicaStatus {
	return replicaStatus{
		Name:       rp.name,
		URL:        rp.baseURL,
		Healthy:    rp.healthy.Load(),
		Draining:   rp.draining.Load(),
		Lagging:    rp.lagging.Load(),
		Generation: rp.knownGen.Load(),
		Breaker:    rp.breaker.current().String(),
	}
}

func (rp *replica) String() string {
	return fmt.Sprintf("%s(%s)", rp.name, rp.baseURL)
}
