package cluster

import (
	"fmt"
	"testing"
)

func TestRingOrderDeterministicAndComplete(t *testing.T) {
	r := newRing(5, 0)
	for i := 0; i < 100; i++ {
		key := queryKey(fmt.Sprintf("s%d", i), "e", 0, 0)
		a, b := r.order(key), r.order(key)
		if len(a) != 5 {
			t.Fatalf("order(%q) returned %d replicas, want 5", key, len(a))
		}
		seen := map[int]bool{}
		for j, v := range a {
			if v != b[j] {
				t.Fatalf("order(%q) not deterministic: %v vs %v", key, a, b)
			}
			if seen[v] {
				t.Fatalf("order(%q) repeats replica %d: %v", key, v, a)
			}
			seen[v] = true
		}
	}
}

func TestRingDistributionRoughlyUniform(t *testing.T) {
	const replicas, keys = 3, 30000
	r := newRing(replicas, 0)
	counts := make([]int, replicas)
	for i := 0; i < keys; i++ {
		counts[r.order(fmt.Sprintf("pair-%d", i))[0]]++
	}
	// With 64 vnodes each owner should be within ~2x of fair share;
	// a badly broken hash would send nearly everything to one replica.
	fair := keys / replicas
	for i, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("replica %d owns %d of %d keys (fair %d): distribution skewed %v", i, c, keys, fair, counts)
		}
	}
}

func TestRingBudgetPartOfKey(t *testing.T) {
	// Different budgets may route differently (they are distinct cache
	// keys replica-side), and identical budgets must route identically.
	if queryKey("a", "b", 50, 0) == queryKey("a", "b", 100, 0) {
		t.Error("budget not part of the routing key")
	}
	if queryKey("a", "b", 50, 0) != queryKey("a", "b", 50, 0) {
		t.Error("identical queries produced different keys")
	}
}
