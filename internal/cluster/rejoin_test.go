package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rex"
	"rex/internal/serve"
	rexsync "rex/internal/sync"
)

// Satellite check: a delta broadcast's response must report each failed
// or skipped replica's current generation — the caller sees the lag
// depth, not an anonymous zero — and the router must mark the straggler
// lagging and kick its sync engine.
func TestDeltaBroadcastReportsLaggingGeneration(t *testing.T) {
	rt, reps := bootCluster(t, 2, nil)
	h := rt.Handler()

	if rec := routerDo(h, http.MethodPost, "/admin/delta", uniqueDelta(1)); rec.Code != http.StatusOK {
		t.Fatalf("delta 1 = %d: %s", rec.Code, rec.Body.String())
	}

	// SIGKILL-equivalent on r1: connections die, the port goes dark.
	reps[1].hs.CloseClientConnections()
	reps[1].hs.Close()

	rec := routerDo(h, http.MethodPost, "/admin/delta", uniqueDelta(2))
	if rec.Code != http.StatusOK {
		t.Fatalf("delta 2 = %d: %s", rec.Code, rec.Body.String())
	}
	var resp deltaResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var row *deltaReplicaResult
	for i := range resp.Replicas {
		if resp.Replicas[i].Name == reps[1].name {
			row = &resp.Replicas[i]
		}
	}
	if row == nil || row.Error == "" {
		t.Fatalf("dead replica not reported as failed: %s", rec.Body.String())
	}
	if row.Generation != 2 {
		t.Fatalf("failed replica row generation = %d, want its last known 2", row.Generation)
	}

	// The next broadcast excludes the straggler outright (divergence
	// guard) and still names it, with its generation and a lagging error.
	rec = routerDo(h, http.MethodPost, "/admin/delta", uniqueDelta(3))
	if rec.Code != http.StatusOK {
		t.Fatalf("delta 3 = %d: %s", rec.Code, rec.Body.String())
	}
	resp = deltaResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	row = nil
	for i := range resp.Replicas {
		if resp.Replicas[i].Name == reps[1].name {
			row = &resp.Replicas[i]
		}
	}
	if row == nil || !strings.Contains(row.Error, "lagging") {
		t.Fatalf("skipped replica not reported as lagging: %s", rec.Body.String())
	}
	if row.Generation != 2 {
		t.Fatalf("skipped replica row generation = %d, want 2", row.Generation)
	}

	if got := metricSum(t, rt, "rex_router_replica_lagging"); got != 1 {
		t.Fatalf("rex_router_replica_lagging sum = %v, want 1", got)
	}
	if got := metricSum(t, rt, "rex_router_lagging_marks_total"); got < 1 {
		t.Fatalf("rex_router_lagging_marks_total = %v, want >= 1", got)
	}
}

// The re-admission gate: a lagging replica takes no queries until a
// probe shows it back at the floor, then rejoins with no operator (or
// router restart) involved.
func TestLaggingReplicaExcludedThenReadmitted(t *testing.T) {
	rt, reps := bootCluster(t, 2, nil)
	h := rt.Handler()
	if rec := routerDo(h, http.MethodPost, "/admin/delta", uniqueDelta(1)); rec.Code != http.StatusOK {
		t.Fatalf("delta = %d: %s", rec.Code, rec.Body.String())
	}

	// Simulate the router catching r1 below the floor (the replica's
	// store is actually current; only the router's view lags — the probe
	// will correct it, which is exactly the re-admission path).
	rp := rt.replicas[1]
	rp.knownGen.Store(1)
	rt.noteLagging(rp)

	// While marked lagging, every query lands on r0.
	for i := 0; i < 10; i++ {
		rec := routerDo(h, http.MethodGet, "/explain?start=a&end=b", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("explain = %d: %s", rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("X-Rex-Replica"); got != reps[0].name {
			t.Fatalf("query %d served by %s while %s was the only non-lagging replica", i, got, reps[0].name)
		}
	}

	// The next health probe adopts the replica's true generation and
	// candidates() clears the flag — automatic re-admission.
	deadline := time.Now().Add(2 * time.Second)
	for rp.lagging.Load() || rp.knownGen.Load() < rt.GenFloor() {
		if time.Now().After(deadline) {
			t.Fatalf("replica never re-admitted: lagging=%v knownGen=%d floor=%d",
				rp.lagging.Load(), rp.knownGen.Load(), rt.GenFloor())
		}
		routerDo(h, http.MethodGet, "/explain?start=a&end=b", "")
		time.Sleep(5 * time.Millisecond)
	}
	if row := rp.status(); row.Lagging {
		t.Fatal("healthz row still shows lagging after re-admission")
	}
}

// A cold restart regresses a replica's generation to 1. The router's
// knownGen must follow it DOWN (probes adopt, not merely lift), or the
// next broadcast would fork the replica's history at generation numbers
// the fleet already published.
func TestProbeAdoptsGenerationRegression(t *testing.T) {
	rt, _ := bootCluster(t, 2, nil)
	rp := rt.replicas[0]
	rp.liftGen(100)
	deadline := time.Now().Add(2 * time.Second)
	for rp.knownGen.Load() == 100 {
		if time.Now().After(deadline) {
			t.Fatal("probe never corrected the inflated knownGen")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if g := rp.knownGen.Load(); g != 1 {
		t.Fatalf("knownGen = %d after probe, want the replica's true 1", g)
	}
}

// rejoinReplica is one durable in-process rexserve with a sync engine,
// restartable on a fixed address — the unit the rejoin soak kills.
type rejoinReplica struct {
	name  string
	addr  string
	url   string
	peers []string

	store  *rex.Store
	engine *rexsync.Engine
	hs     *httptest.Server
}

// boot starts (or cold-restarts) the replica on l with a FRESH durable
// store over an empty data dir — the worst rejoin case: everything it
// knew is gone and catch-up starts from the seed.
func (r *rejoinReplica) boot(t *testing.T, l net.Listener) {
	t.Helper()
	k, err := rex.ReadKB(strings.NewReader(clusterTSV))
	if err != nil {
		t.Fatal(err)
	}
	store, err := rex.NewStore(k, rex.Options{
		Measure: "size", TopK: 8, MaxPatternSize: 3, CacheSize: 64,
		Durability: rex.DurabilityOptions{Dir: t.TempDir(), Fsync: "off", CheckpointEvery: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(store, serve.Config{Timeout: 10 * time.Second, Name: r.name})
	engine, err := rexsync.New(store, rexsync.Config{
		Peers:          r.peers,
		Interval:       25 * time.Millisecond,
		Attempts:       3,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       50 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
		SpoolDir:       t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetSync(engine, false)
	hs := &httptest.Server{Listener: l, Config: &http.Server{Handler: srv.Handler()}}
	hs.Start()
	engine.Start()
	r.store, r.engine, r.hs = store, engine, hs
	t.Cleanup(func() {
		engine.Stop()
		hs.Close()
		store.Close()
	})
}

// kill is the SIGKILL: engine stops, connections reset, port goes dark.
// The store is abandoned unflushed, like a dead process's heap.
func (r *rejoinReplica) kill() {
	r.engine.Stop()
	r.hs.CloseClientConnections()
	r.hs.Close()
}

// restartCold rebinds the fixed address and boots over an empty dir.
func (r *rejoinReplica) restartCold(t *testing.T) {
	t.Helper()
	var l net.Listener
	var err error
	deadline := time.Now().Add(2 * time.Second)
	for {
		l, err = net.Listen("tcp", r.addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", r.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	r.boot(t, l)
}

// The tentpole proof: replicas are SIGKILLed and cold-restarted with
// empty data dirs under continuous query and delta traffic. With zero
// operator action every restarted replica must catch back up to the
// fleet's generation and fingerprint and be re-admitted to routing,
// and clients must see zero failures and no generation moving
// backwards throughout. Run with -race; skipped under -short.
func TestReplicaRejoinChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("rejoin soak skipped in -short mode")
	}

	// Bind all listeners first so every engine knows its peers up front.
	ls := make([]net.Listener, 3)
	urls := make([]string, 3)
	for i := range ls {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	reps := make([]*rejoinReplica, 3)
	rcs := make([]ReplicaConfig, 3)
	for i := range reps {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		reps[i] = &rejoinReplica{
			name: fmt.Sprintf("rejoin-r%d", i), addr: ls[i].Addr().String(), url: urls[i], peers: peers,
		}
		reps[i].boot(t, ls[i])
		rcs[i] = ReplicaConfig{Name: reps[i].name, URL: urls[i]}
	}
	rt, err := New(Config{
		Replicas:         rcs,
		HealthInterval:   15 * time.Millisecond,
		Retries:          3,
		RetryBase:        5 * time.Millisecond,
		RetryMax:         40 * time.Millisecond,
		HedgeMin:         5 * time.Millisecond,
		HedgeMax:         25 * time.Millisecond,
		BreakerBase:      10 * time.Millisecond,
		BreakerMax:       80 * time.Millisecond,
		SyncKickInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)
	h := rt.Handler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var deltaSeq atomic.Int64
	var clients []*chaosClient
	spawn := func(name string, pace time.Duration, op func(c *chaosClient)) {
		c := &chaosClient{name: name}
		clients = append(clients, c)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				op(c)
				time.Sleep(pace)
			}
		}()
	}
	pairs := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"a", "d"}}
	for i := 0; i < 2; i++ {
		i := i
		spawn(fmt.Sprintf("explain-%d", i), 2*time.Millisecond, func(c *chaosClient) {
			p := pairs[(c.ops+i)%len(pairs)]
			rec := routerDo(h, http.MethodGet, "/explain?start="+p[0]+"&end="+p[1], "")
			gen := uint64(0)
			if rec.Code == http.StatusOK {
				var env struct {
					Generation uint64 `json:"generation"`
				}
				json.Unmarshal(rec.Body.Bytes(), &env) //nolint:errcheck
				gen = env.Generation
			}
			c.observe(rec.Code, http.StatusOK, gen, rec.Body.String())
		})
	}
	spawn("delta", 10*time.Millisecond, func(c *chaosClient) {
		n := deltaSeq.Add(1)
		rec := routerDo(h, http.MethodPost, "/admin/delta", uniqueDelta(int(n)))
		gen := uint64(0)
		if rec.Code == http.StatusOK {
			var env struct {
				Generation uint64 `json:"generation"`
			}
			json.Unmarshal(rec.Body.Bytes(), &env) //nolint:errcheck
			gen = env.Generation
		}
		c.observe(rec.Code, http.StatusOK, gen, rec.Body.String())
	})

	// Kill two replicas in turn; each comes back empty and must rejoin
	// on its own.
	for round := 0; round < 2; round++ {
		victim := reps[round]
		time.Sleep(150 * time.Millisecond) // traffic establishes a floor
		victim.kill()
		time.Sleep(120 * time.Millisecond) // the fleet runs degraded; deltas keep flowing
		floorAtRestart := rt.GenFloor()
		victim.restartCold(t)
		waitForRejoin(t, rt, victim.name, floorAtRestart)
	}

	close(stop)
	wg.Wait()

	for _, c := range clients {
		for _, f := range c.failures {
			t.Error(f)
		}
		if c.ops < 10 {
			t.Errorf("%s made only %d requests", c.name, c.ops)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced: the whole fleet converges to one generation and one
	// fingerprint (the anti-entropy loops mop up any straggler).
	deadline := time.Now().Add(10 * time.Second)
	for {
		s0, s1, s2 := reps[0].store.Current(), reps[1].store.Current(), reps[2].store.Current()
		if s0.Generation == s1.Generation && s1.Generation == s2.Generation &&
			s0.Fingerprint == s1.Fingerprint && s1.Fingerprint == s2.Fingerprint {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never converged: %d/%s %d/%s %d/%s",
				s0.Generation, s0.Fingerprint, s1.Generation, s1.Fingerprint, s2.Generation, s2.Fingerprint)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The healing was router-driven, not luck: kicks fired, marks
	// happened, and nothing is left marked lagging.
	if got := metricSum(t, rt, "rex_router_sync_kicks_total"); got < 1 {
		t.Errorf("rex_router_sync_kicks_total = %v, want >= 1", got)
	}
	if got := metricSum(t, rt, "rex_router_lagging_marks_total"); got < 1 {
		t.Errorf("rex_router_lagging_marks_total = %v, want >= 1", got)
	}
	// Re-admission is asynchronous (a reconcile tick plus a probe cycle
	// refreshing the fingerprint evidence), so poll: every lagging mark
	// must clear shortly after convergence, with no query traffic to
	// help it along.
	deadline = time.Now().Add(5 * time.Second)
	for {
		hz := routerDo(h, http.MethodGet, "/healthz", "")
		var health routerHealth
		if err := json.Unmarshal(hz.Body.Bytes(), &health); err != nil {
			t.Fatal(err)
		}
		stillLagging := ""
		for _, row := range health.Replicas {
			if row.Lagging {
				stillLagging = row.Name
			}
		}
		if stillLagging == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s still marked lagging after convergence", stillLagging)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitForRejoin polls the router's health view until the named replica
// is healthy, cleared of its lagging mark, and at or above the floor
// observed when it restarted — the automatic re-admission contract.
func waitForRejoin(t *testing.T, rt *Router, name string, floor uint64) {
	t.Helper()
	h := rt.Handler()
	deadline := time.Now().Add(15 * time.Second)
	for {
		rec := routerDo(h, http.MethodGet, "/healthz", "")
		var health routerHealth
		if err := json.Unmarshal(rec.Body.Bytes(), &health); err == nil {
			for _, row := range health.Replicas {
				if row.Name == name && row.Healthy && !row.Lagging && row.Generation >= floor {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never rejoined at floor %d: %s", name, floor, rec.Body.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
