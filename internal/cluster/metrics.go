package cluster

import (
	"rex/internal/obs"
)

// routerMetrics is the router's Prometheus registry: the routing
// families (requests, retries, failovers, hedges, generation rejects,
// batch repins, delta broadcasts) plus per-replica health, generation
// and breaker-state gauges sampled at scrape time.
type routerMetrics struct {
	reg *obs.Registry

	requests *obs.Family // counter{endpoint,code}
	duration *obs.Family // histogram{endpoint}

	retries      *obs.Series // extra failover-chain passes
	failovers    *obs.Series // attempts sent anywhere but the first choice
	hedgesFired  *obs.Series // duplicate attempts launched
	hedges       *obs.Family // counter{outcome}: won|lost
	staleRejects *obs.Series // 200s discarded for being below the generation floor
	batchRepins  *obs.Series // gathers re-sent whole for mixing generations
	laggingMarks *obs.Series // replicas newly marked lagging (below the floor)
	syncKicks    *obs.Series // catch-up kicks (POST /admin/sync) fired
	divergedAcks *obs.Series // broadcast acks at a generation off the fleet's

	deltaBroadcasts *obs.Family // counter{outcome}: ok|partial|rejected|failed
}

func newRouterMetrics(rt *Router) *routerMetrics {
	reg := obs.NewRegistry()
	m := &routerMetrics{reg: reg}

	b := obs.Build()
	reg.Gauge("rex_router_build_info",
		"Build identification; value is always 1.",
		"go_version", "revision").With(b.GoVersion, b.Revision).Set(1)

	m.requests = reg.Counter("rex_router_requests_total",
		"Routed requests by endpoint and status code.", "endpoint", "code")
	m.duration = reg.Histogram("rex_router_request_duration_seconds",
		"End-to-end routed request latency by endpoint (includes retries and hedges).",
		obs.LatencyBuckets(), "endpoint")

	m.retries = reg.Counter("rex_router_retries_total",
		"Extra passes over a request's failover chain after the first failed.").With()
	m.failovers = reg.Counter("rex_router_failovers_total",
		"Attempts sent to a replica other than the request's first choice.").With()
	m.hedgesFired = reg.Counter("rex_router_hedges_fired_total",
		"Duplicate attempts launched after the hedge delay expired.").With()
	m.hedges = reg.Counter("rex_router_hedges_total",
		"Hedged requests by outcome: won (duplicate answered first) or lost.", "outcome")
	m.hedges.With("won")
	m.hedges.With("lost")
	m.staleRejects = reg.Counter("rex_router_generation_rejects_total",
		"Replica 200s discarded because their generation was below the floor.").With()
	m.batchRepins = reg.Counter("rex_router_batch_repins_total",
		"Scattered batches re-sent to one replica after the gather mixed generations.").With()
	m.laggingMarks = reg.Counter("rex_router_lagging_marks_total",
		"Replicas newly marked lagging (caught below the generation floor).").With()
	m.syncKicks = reg.Counter("rex_router_sync_kicks_total",
		"Catch-up kicks (POST /admin/sync) fired at lagging replicas.").With()
	m.divergedAcks = reg.Counter("rex_router_delta_diverged_acks_total",
		"Delta acks discounted because the replica applied at a generation off the fleet's (forked history).").With()

	m.deltaBroadcasts = reg.Counter("rex_router_delta_broadcasts_total",
		"Delta broadcasts by outcome (ok, partial, rejected, failed).", "outcome")

	reg.Gauge("rex_router_generation_floor",
		"Largest KB generation ever served to a client; responses below it are re-routed.").With().
		SetFunc(func() float64 { return float64(rt.genFloor.load()) })
	reg.Gauge("rex_router_replicas",
		"Configured replica count.").With().Set(float64(len(rt.replicas)))

	healthy := reg.Gauge("rex_router_replica_healthy",
		"1 while the replica passes health checks, else 0.", "replica")
	draining := reg.Gauge("rex_router_replica_draining",
		"1 while the replica reports draining, else 0.", "replica")
	lagging := reg.Gauge("rex_router_replica_lagging",
		"1 while the replica is marked lagging behind the generation floor, else 0.", "replica")
	gen := reg.Gauge("rex_router_replica_generation",
		"Largest KB generation the router knows this replica holds.", "replica")
	brk := reg.Gauge("rex_router_breaker_state",
		"Replica circuit breaker state: 0 closed, 1 half-open, 2 open.", "replica")
	for _, rp := range rt.replicas {
		rp := rp
		healthy.With(rp.name).SetFunc(func() float64 { return boolGauge(rp.healthy.Load()) })
		draining.With(rp.name).SetFunc(func() float64 { return boolGauge(rp.draining.Load()) })
		lagging.With(rp.name).SetFunc(func() float64 { return boolGauge(rp.lagging.Load()) })
		gen.With(rp.name).SetFunc(func() float64 { return float64(rp.knownGen.Load()) })
		brk.With(rp.name).SetFunc(func() float64 {
			switch rp.breaker.current() {
			case breakerOpen:
				return 2
			case breakerHalfOpen:
				return 1
			}
			return 0
		})
	}
	return m
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
