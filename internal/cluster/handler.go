package cluster

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"time"
)

// The router's HTTP surface mirrors the replica's where it proxies
// (/explain, /batch, /admin/delta) and adds its own introspection
// (/healthz over the whole tier, /metrics for the routing families).

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response already committed
}

// Handler builds the router's route table.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/explain", rt.instrument("/explain", rt.handleExplain))
	mux.HandleFunc("/batch", rt.instrument("/batch", rt.handleBatch))
	mux.HandleFunc("/admin/delta", rt.instrument("/admin/delta", rt.handleDelta))
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	return mux
}

// requestID adopts the inbound X-Request-Id or mints one; the same ID
// is stamped on every replica attempt of the request — a hedged
// duplicate is the same logical query and must be attributable as such.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" && len(id) <= 64 {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// instrument wraps a handler with the per-endpoint request counter and
// latency histogram.
func (rt *Router) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		rt.m.requests.With(endpoint, strconv.Itoa(rec.status)).Inc()
		rt.m.duration.With(endpoint).Observe(time.Since(t0).Seconds())
	}
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// forward writes a replica's buffered answer to the client.
func forward(w http.ResponseWriter, reqID string, res *proxyResult) {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	w.Header().Set("X-Request-Id", reqID)
	w.Header().Set("X-Rex-Replica", res.replica.name)
	w.WriteHeader(res.status)
	w.Write(res.body) //nolint:errcheck // response already committed
}

func (rt *Router) handleExplain(w http.ResponseWriter, r *http.Request) {
	reqID := requestID(r)
	w.Header().Set("X-Request-Id", reqID)
	var body []byte
	if r.Method == http.MethodPost {
		var err error
		if body, err = io.ReadAll(io.LimitReader(r.Body, 1<<20)); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "reading body: " + err.Error()})
			return
		}
	}
	pq, err := parseExplain(r, body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	key := queryKey(pq.start, pq.end, pq.budgetMS, pq.budgetExp)
	t0 := time.Now()
	res, err := rt.routeQuery(r.Context(), rt.candidates(key), r.Method, "/explain", r.URL.RawQuery, body, reqID, pq.budgeted())
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no replica answered: " + err.Error()})
		return
	}
	if res.status == http.StatusOK {
		rt.lat.note(time.Since(t0))
		rt.genFloor.lift(res.generation)
	}
	forward(w, reqID, res)
}

// routerHealth is the router's /healthz body: tier-level status plus
// every replica's row, so one probe shows the whole topology.
type routerHealth struct {
	Status          string          `json:"status"`
	RoutableCount   int             `json:"routable_count"`
	GenerationFloor uint64          `json:"generation_floor"`
	Replicas        []replicaStatus `json:"replicas"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := routerHealth{Status: "ok", GenerationFloor: rt.genFloor.load()}
	for _, rp := range rt.replicas {
		st := rp.status()
		if st.Healthy && !st.Draining {
			h.RoutableCount++
		}
		h.Replicas = append(h.Replicas, st)
	}
	status := http.StatusOK
	if h.RoutableCount == 0 {
		h.Status = "unavailable"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.m.reg.WritePrometheus(w) //nolint:errcheck // streaming response
}
