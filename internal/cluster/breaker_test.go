package cluster

import (
	"testing"
	"time"
)

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b := newBreaker(breakerConfig{threshold: 3, baseBackoff: 20 * time.Millisecond, maxBackoff: 100 * time.Millisecond})
	for i := 0; i < 2; i++ {
		b.failure()
		if !b.allow() {
			t.Fatalf("breaker open after %d failures, threshold 3", i+1)
		}
	}
	b.failure()
	if b.allow() {
		t.Fatal("breaker still closed after threshold failures")
	}
	if st := b.current(); st != breakerOpen {
		t.Fatalf("state = %v, want open", st)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(breakerConfig{threshold: 1, baseBackoff: 5 * time.Millisecond, maxBackoff: 10 * time.Millisecond})
	b.failure()
	time.Sleep(12 * time.Millisecond) // past the jittered open interval
	if !b.allow() {
		t.Fatal("expired breaker refused the half-open probe")
	}
	if b.allow() {
		t.Fatal("half-open admitted a second concurrent probe")
	}
	b.success()
	if !b.allow() {
		t.Fatal("breaker not closed after a successful probe")
	}
}

func TestBreakerReopenDoublesBackoff(t *testing.T) {
	b := newBreaker(breakerConfig{threshold: 1, baseBackoff: 10 * time.Millisecond, maxBackoff: 40 * time.Millisecond})
	b.failure() // open @ 10ms, next 20ms
	if got := b.backoff; got != 20*time.Millisecond {
		t.Fatalf("backoff after first trip = %v, want 20ms", got)
	}
	time.Sleep(12 * time.Millisecond)
	if !b.allow() { // half-open
		t.Fatal("no probe admitted")
	}
	b.failure() // probe failed: re-open @ 20ms, next 40ms
	if got := b.backoff; got != 40*time.Millisecond {
		t.Fatalf("backoff after re-open = %v, want 40ms", got)
	}
	b.failure()
	b.failure() // capped
	if got := b.backoff; got != 40*time.Millisecond {
		t.Fatalf("backoff exceeded cap: %v", got)
	}
}

func TestBreakerSuccessResets(t *testing.T) {
	b := newBreaker(breakerConfig{threshold: 3, baseBackoff: 10 * time.Millisecond, maxBackoff: 40 * time.Millisecond})
	b.failure()
	b.failure()
	b.success() // consecutive-failure count resets
	b.failure()
	b.failure()
	if !b.allow() {
		t.Fatal("breaker tripped on non-consecutive failures")
	}
}
