package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"rex"
	"rex/internal/fail"
	"rex/internal/serve"
)

// clusterTSV connects every node through a, so any ordered pair is
// explainable and batches can cover keys owned by different replicas.
const clusterTSV = `node	a	person
node	b	person
node	c	person
node	d	person
label	knows	U
edge	a	b	knows
edge	a	c	knows
edge	a	d	knows
`

// testReplica is one in-process rexserve instance behind a real HTTP
// listener, wrapped so chaos tests can corrupt its query responses via
// the "test.corrupt@<name>" failpoint.
type testReplica struct {
	name  string
	store *rex.Store
	srv   *serve.Server
	hs    *httptest.Server
}

func bootReplica(t *testing.T, name string, setup ...func(*serve.Server)) *testReplica {
	t.Helper()
	k, err := rex.ReadKB(strings.NewReader(clusterTSV))
	if err != nil {
		t.Fatal(err)
	}
	store, err := rex.NewStore(k, rex.Options{
		Measure: "size", TopK: 8, MaxPatternSize: 3, CacheSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(store, serve.Config{Timeout: 10 * time.Second, MaxBatch: 64, Name: name})
	for _, fn := range setup {
		fn(srv)
	}
	h := srv.Handler()
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if (r.URL.Path == "/explain" || r.URL.Path == "/batch") &&
			fail.Hit("test.corrupt@"+name) != nil {
			// A 200 whose body is truncated mid-object: the worst kind of
			// corruption, because only body inspection can catch it.
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"explanations": [], "genera`)) //nolint:errcheck
			return
		}
		h.ServeHTTP(w, r)
	})
	hs := httptest.NewServer(wrapped)
	t.Cleanup(func() {
		hs.Close()
		store.Close()
	})
	return &testReplica{name: name, store: store, srv: srv, hs: hs}
}

// bootCluster starts n replicas and a router over them, tuned fast for
// tests: 15ms health checks, millisecond retries, 25ms hedge ceiling.
func bootCluster(t *testing.T, n int, mut func(*Config)) (*Router, []*testReplica) {
	t.Helper()
	t.Cleanup(fail.Reset)
	reps := make([]*testReplica, n)
	rcs := make([]ReplicaConfig, n)
	for i := range reps {
		reps[i] = bootReplica(t, fmt.Sprintf("rex-r%d", i))
		rcs[i] = ReplicaConfig{Name: reps[i].name, URL: reps[i].hs.URL}
	}
	cfg := Config{
		Replicas:       rcs,
		HealthInterval: 15 * time.Millisecond,
		Retries:        3,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       40 * time.Millisecond,
		HedgeMin:       5 * time.Millisecond,
		HedgeMax:       25 * time.Millisecond,
		BreakerBase:    10 * time.Millisecond,
		BreakerMax:     80 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)
	return rt, reps
}

func routerDo(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, rd))
	return rec
}

// generationOf pulls the generation field out of any response body that
// carries one.
func generationOf(t *testing.T, rec *httptest.ResponseRecorder) uint64 {
	t.Helper()
	var env struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("unparseable response body: %v\n%s", err, rec.Body.String())
	}
	return env.Generation
}

// metricSum sums every series of the named family in the router's
// /metrics output (labelled or not).
func metricSum(t *testing.T, rt *Router, family string) float64 {
	t.Helper()
	rec := routerDo(rt.Handler(), http.MethodGet, "/metrics", "")
	var sum float64
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if rest != "" && rest[0] != ' ' && rest[0] != '{' {
			continue // a longer family name sharing the prefix
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad metric line %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// uniqueDelta returns a delta stream that is safe to apply repeatedly
// with distinct n: a fresh label and node wired to a.
func uniqueDelta(n int) string {
	return fmt.Sprintf("label\tk%d\tU\nnode\tm%d\tperson\nedge\ta\tm%d\tk%d\n", n, n, n, n)
}

func TestRouterRoutesAndPinsByKey(t *testing.T) {
	rt, _ := bootCluster(t, 3, nil)
	h := rt.Handler()

	first := routerDo(h, http.MethodGet, "/explain?start=a&end=b", "")
	if first.Code != http.StatusOK {
		t.Fatalf("explain = %d: %s", first.Code, first.Body.String())
	}
	if g := generationOf(t, first); g != 1 {
		t.Fatalf("generation = %d, want 1", g)
	}
	if first.Header().Get("X-Request-Id") == "" {
		t.Fatal("router did not stamp X-Request-Id")
	}
	owner := first.Header().Get("X-Rex-Replica")
	if owner == "" {
		t.Fatal("router did not name the serving replica")
	}
	for i := 0; i < 5; i++ {
		rec := routerDo(h, http.MethodGet, "/explain?start=a&end=b", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("repeat explain = %d", rec.Code)
		}
		if got := rec.Header().Get("X-Rex-Replica"); got != owner {
			t.Fatalf("same key moved replicas with a healthy fleet: %s then %s", owner, got)
		}
	}

	// An inbound request ID is adopted, not replaced.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/explain?start=a&end=c", nil)
	req.Header.Set("X-Request-Id", "caller-supplied-id")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "caller-supplied-id" {
		t.Fatalf("X-Request-Id = %q, want the caller's", got)
	}
}

func TestRouterDeltaBroadcastLiftsFloor(t *testing.T) {
	rt, reps := bootCluster(t, 3, nil)
	h := rt.Handler()

	rec := routerDo(h, http.MethodPost, "/admin/delta", uniqueDelta(1))
	if rec.Code != http.StatusOK {
		t.Fatalf("broadcast = %d: %s", rec.Code, rec.Body.String())
	}
	var resp deltaResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 3 || resp.Generation != 2 {
		t.Fatalf("applied=%d generation=%d, want 3 and 2", resp.Applied, resp.Generation)
	}
	if got := rt.GenFloor(); got != 2 {
		t.Fatalf("generation floor = %d, want 2 after an acked broadcast", got)
	}
	// Every store really applied, and every fingerprint agrees: same
	// order everywhere means the tier cannot silently diverge.
	fp := ""
	for _, r := range reps {
		snap := r.store.Current()
		if snap.Generation != 2 {
			t.Fatalf("%s at generation %d, want 2", r.name, snap.Generation)
		}
		if fp == "" {
			fp = snap.Fingerprint
		} else if snap.Fingerprint != fp {
			t.Fatalf("fingerprint diverged on %s", r.name)
		}
	}
	// The new entity answers through the router at the new generation.
	q := routerDo(h, http.MethodGet, "/explain?start=a&end=m1", "")
	if q.Code != http.StatusOK {
		t.Fatalf("post-delta explain = %d: %s", q.Code, q.Body.String())
	}
	if g := generationOf(t, q); g != 2 {
		t.Fatalf("post-delta generation = %d, want 2", g)
	}
}

func TestRouterFailoverOnKilledReplica(t *testing.T) {
	rt, reps := bootCluster(t, 3, nil)
	h := rt.Handler()

	// Kill one replica outright — connections refused, no drain, no
	// goodbye — then sweep every ordered pair so some queries must have
	// been owned by the corpse.
	reps[1].hs.CloseClientConnections()
	reps[1].hs.Close()

	nodes := []string{"a", "b", "c", "d"}
	for _, s := range nodes {
		for _, e := range nodes {
			if s == e {
				continue
			}
			rec := routerDo(h, http.MethodGet, "/explain?start="+s+"&end="+e, "")
			if rec.Code != http.StatusOK {
				t.Fatalf("explain(%s,%s) = %d with 2/3 replicas up: %s", s, e, rec.Code, rec.Body.String())
			}
			if got := rec.Header().Get("X-Rex-Replica"); got == reps[1].name {
				t.Fatalf("explain(%s,%s) claims the dead replica answered", s, e)
			}
		}
	}
	if n := metricSum(t, rt, "rex_router_failovers_total"); n == 0 {
		t.Fatal("killing an owner caused no recorded failovers")
	}
}

func TestRouterForwards429Untouched(t *testing.T) {
	t.Cleanup(fail.Reset)
	// One replica with a single admission slot and no queueing: the
	// second concurrent query is shed, and the router must forward that
	// shed verbatim instead of hammering the failover chain.
	rep := bootReplica(t, "rex-shed", func(s *serve.Server) {
		s.SetAdmission(1, 1, 0)
	})
	rt, err := New(Config{
		Replicas:       []ReplicaConfig{{Name: rep.name, URL: rep.hs.URL}},
		HealthInterval: 15 * time.Millisecond,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)
	h := rt.Handler()

	// Park one query inside the engine so it holds the admission slot.
	// The release is deferred too, so a failing assertion cannot strand
	// the parked handler and wedge the server's cleanup.
	release := make(chan struct{})
	released := false
	releaseParked := func() {
		if !released {
			released = true
			close(release)
		}
	}
	defer releaseParked()
	parked := make(chan struct{})
	fail.EnableFunc("explain.query", func() error {
		close(parked)
		<-release
		return nil
	})
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- routerDo(h, http.MethodGet, "/explain?start=a&end=b", "") }()
	<-parked
	fail.Disable("explain.query") // only the parked query blocks

	rec := routerDo(h, http.MethodGet, "/explain?start=a&end=c", "")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 forwarded", rec.Code)
	}
	ra := rec.Header().Get("Retry-After")
	if sec, err := strconv.Atoi(ra); err != nil || sec < 1 || sec > 3 {
		t.Fatalf("Retry-After = %q, want the replica's jittered 1..3s", ra)
	}

	releaseParked()
	if first := <-done; first.Code != http.StatusOK {
		t.Fatalf("parked query = %d, want 200", first.Code)
	}
	// A shed is not a fault: the breaker must still admit immediately.
	after := routerDo(h, http.MethodGet, "/explain?start=a&end=d", "")
	if after.Code != http.StatusOK {
		t.Fatalf("post-shed query = %d, want 200 (breaker must not count 429s)", after.Code)
	}
}

func TestRouterHedgesAroundStalledReplica(t *testing.T) {
	rt, _ := bootCluster(t, 2, nil)
	h := rt.Handler()

	const q = "/explain?start=a&end=b&budget_ms=200"
	first := routerDo(h, http.MethodGet, q, "")
	if first.Code != http.StatusOK {
		t.Fatalf("warmup explain = %d", first.Code)
	}
	owner := first.Header().Get("X-Rex-Replica")

	fail.EnableStall("serve.respond@"+owner, 400*time.Millisecond)
	t0 := time.Now()
	rec := routerDo(h, http.MethodGet, q, "")
	elapsed := time.Since(t0)
	fail.Disable("serve.respond@" + owner)
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged explain = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Rex-Replica"); got == owner {
		t.Fatalf("stalled owner %s still answered; hedge never won", owner)
	}
	if elapsed >= 300*time.Millisecond {
		t.Fatalf("hedged query took %v, should beat the 400ms stall", elapsed)
	}
	if n := metricSum(t, rt, `rex_router_hedges_total{outcome="won"}`); n == 0 {
		t.Fatal("no hedge recorded as won")
	}
}

func TestRouterUnhedgedEatsTheStall(t *testing.T) {
	// The control for the hedging test: same stall, hedging disabled —
	// the client waits out the full stall. This pair of tests is what
	// rexbench's hedged-vs-unhedged comparison automates.
	rt, _ := bootCluster(t, 2, func(c *Config) { c.DisableHedging = true })
	h := rt.Handler()

	const q = "/explain?start=a&end=b&budget_ms=200"
	first := routerDo(h, http.MethodGet, q, "")
	if first.Code != http.StatusOK {
		t.Fatalf("warmup explain = %d", first.Code)
	}
	owner := first.Header().Get("X-Rex-Replica")

	fail.EnableStall("serve.respond@"+owner, 150*time.Millisecond)
	t0 := time.Now()
	rec := routerDo(h, http.MethodGet, q, "")
	elapsed := time.Since(t0)
	fail.Disable("serve.respond@" + owner)
	if rec.Code != http.StatusOK {
		t.Fatalf("explain = %d", rec.Code)
	}
	if elapsed < 140*time.Millisecond {
		t.Fatalf("unhedged query finished in %v; expected to ride out the 150ms stall", elapsed)
	}
}

func TestRouterRejectsBelowFloorResponses(t *testing.T) {
	rt, reps := bootCluster(t, 2, func(c *Config) { c.DisableHedging = true })
	h := rt.Handler()

	// Advance r0 one generation ahead behind the router's back.
	if _, err := reps[0].store.Apply(strings.NewReader(uniqueDelta(1))); err != nil {
		t.Fatal(err)
	}
	// Find a key the stale replica owns (pure ring order, no floor yet).
	var key string
	var pair [2]string
	nodes := []string{"a", "b", "c", "d"}
search:
	for _, s := range nodes {
		for _, e := range nodes {
			if s == e {
				continue
			}
			k := queryKey(s, e, 0, 0)
			if rt.ring.order(k)[0] == 1 {
				key, pair = k, [2]string{s, e}
				break search
			}
		}
	}
	if key == "" {
		t.Fatal("no ordered pair hashes to replica 1; fixture needs more keys")
	}

	// Simulate the race window: a client has seen generation 2, and the
	// router's health view still (wrongly) believes r1 carries it.
	rt.genFloor.lift(2)
	rt.replicas[1].liftGen(2)

	rec := routerDo(h, http.MethodGet, "/explain?start="+pair[0]+"&end="+pair[1], "")
	if rec.Code != http.StatusOK {
		t.Fatalf("explain = %d: %s", rec.Code, rec.Body.String())
	}
	if g := generationOf(t, rec); g != 2 {
		t.Fatalf("generation = %d, want 2: a below-floor answer reached the client", g)
	}
	if got := rec.Header().Get("X-Rex-Replica"); got != reps[0].name {
		t.Fatalf("served by %s, want the fresh replica %s", got, reps[0].name)
	}
	if n := metricSum(t, rt, "rex_router_generation_rejects_total"); n == 0 {
		t.Fatal("no stale rejection recorded")
	}

	// Once the health view catches up (r1 known to be at generation 1,
	// floor at 2), the chain deprioritizes r1 before any request is sent.
	rt.replicas[1].knownGen.Store(1)
	if chain := rt.candidates(key); chain[0] != rt.replicas[0] {
		t.Fatalf("stale replica still leads its chain: %v", chain[0])
	}
}

func TestRouterBatchRepinsMixedGenerations(t *testing.T) {
	rt, reps := bootCluster(t, 2, func(c *Config) { c.DisableHedging = true })
	h := rt.Handler()

	// All ordered pairs: the scatter must touch both replicas.
	nodes := []string{"a", "b", "c", "d"}
	var pairs []string
	owners := map[int]bool{}
	for _, s := range nodes {
		for _, e := range nodes {
			if s == e {
				continue
			}
			pairs = append(pairs, fmt.Sprintf(`{"start":%q,"end":%q}`, s, e))
			owners[rt.ring.order(queryKey(s, e, 0, 0))[0]] = true
		}
	}
	if !owners[0] || !owners[1] {
		t.Fatal("all pairs hash to one replica; fixture needs more keys")
	}
	body := `{"pairs":[` + strings.Join(pairs, ",") + `]}`

	// r0 takes a delta behind the router's back, so a scattered batch
	// would answer half at generation 2 and half at 1.
	if _, err := reps[0].store.Apply(strings.NewReader(uniqueDelta(1))); err != nil {
		t.Fatal(err)
	}

	rec := routerDo(h, http.MethodPost, "/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Results    []json.RawMessage `json:"results"`
		Generation uint64            `json:"generation"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 2 {
		t.Fatalf("batch generation = %d, want the repinned 2", resp.Generation)
	}
	if len(resp.Results) != len(pairs) {
		t.Fatalf("batch returned %d results for %d pairs", len(resp.Results), len(pairs))
	}
	for i, r := range resp.Results {
		if len(r) == 0 || string(r) == "null" {
			t.Fatalf("result %d missing after repin", i)
		}
	}
	if n := metricSum(t, rt, "rex_router_batch_repins_total"); n == 0 {
		t.Fatal("mixed-generation gather did not record a repin")
	}
}

func TestRouterHonorsDrain(t *testing.T) {
	rt, reps := bootCluster(t, 2, nil)
	h := rt.Handler()

	reps[0].srv.StartDraining()
	deadline := time.Now().Add(2 * time.Second)
	for !rt.replicas[0].draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("router never noticed the drain")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Every query lands on the survivor; none race the draining process.
	nodes := []string{"a", "b", "c", "d"}
	for _, s := range nodes {
		for _, e := range nodes {
			if s == e {
				continue
			}
			rec := routerDo(h, http.MethodGet, "/explain?start="+s+"&end="+e, "")
			if rec.Code != http.StatusOK {
				t.Fatalf("explain(%s,%s) = %d during drain", s, e, rec.Code)
			}
			if got := rec.Header().Get("X-Rex-Replica"); got != reps[1].name {
				t.Fatalf("explain(%s,%s) routed to draining %s", s, e, got)
			}
		}
	}

	// The tier healthz shows one routable replica and the drain flag.
	hz := routerDo(h, http.MethodGet, "/healthz", "")
	if hz.Code != http.StatusOK {
		t.Fatalf("healthz = %d", hz.Code)
	}
	var health routerHealth
	if err := json.Unmarshal(hz.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.RoutableCount != 1 {
		t.Fatalf("routable_count = %d, want 1", health.RoutableCount)
	}
	var sawDrain bool
	for _, r := range health.Replicas {
		if r.Name == reps[0].name && r.Draining {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Fatal("healthz does not report the draining replica")
	}

	// A broadcast during the drain acks on the shrunken barrier: the
	// draining replica refuses mutations (503) and is not counted.
	rec := routerDo(h, http.MethodPost, "/admin/delta", uniqueDelta(9))
	if rec.Code != http.StatusOK {
		t.Fatalf("broadcast during drain = %d: %s", rec.Code, rec.Body.String())
	}
	var resp deltaResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 1 || resp.Generation != 2 {
		t.Fatalf("applied=%d generation=%d, want 1 and 2", resp.Applied, resp.Generation)
	}
}

func TestRouterHealthzUnavailableWhenAllDown(t *testing.T) {
	rt, reps := bootCluster(t, 1, nil)
	h := rt.Handler()

	reps[0].hs.CloseClientConnections()
	reps[0].hs.Close()
	deadline := time.Now().Add(2 * time.Second)
	for rt.replicas[0].healthy.Load() {
		if time.Now().After(deadline) {
			t.Fatal("router never noticed the dead replica")
		}
		time.Sleep(5 * time.Millisecond)
	}

	hz := routerDo(h, http.MethodGet, "/healthz", "")
	if hz.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d with zero routable replicas, want 503", hz.Code)
	}
	rec := routerDo(h, http.MethodGet, "/explain?start=a&end=b", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("explain = %d with no replicas, want 503", rec.Code)
	}
}

func TestRouterMasksEnginePanics(t *testing.T) {
	rt, _ := bootCluster(t, 3, nil)
	h := rt.Handler()

	// The engine panics on the next few queries fleet-wide; the replica
	// converts each panic to a 500 and the router retries it away. The
	// budget (4) is below the worst-case attempt count of one request's
	// retry rounds, so every client request must eventually succeed.
	n := 0
	fail.EnableFunc("explain.query", func() error {
		if n++; n <= 4 {
			panic("injected engine panic")
		}
		return nil
	})
	defer fail.Reset()

	rec := routerDo(h, http.MethodGet, "/explain?start=a&end=b", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("explain = %d while the engine panics: %s", rec.Code, rec.Body.String())
	}
}
