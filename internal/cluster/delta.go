package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// Delta broadcast. The router is the single writer of the tier: one
// /admin/delta fans out to every replica, serialised by deltaMu so two
// concurrent deltas cannot apply in different orders on different
// replicas (the stores are deterministic, so same order = same state =
// same fingerprint fleet-wide).
//
// Ack discipline: the broadcast succeeds once every replica that was
// healthy going in has applied. A replica that dies mid-broadcast is
// marked down and does not block the ack — it is no longer
// "currently healthy"; the router marks it lagging, kicks its sync
// engine, and re-admits it once it catches back up to the floor. The
// response row names it and reports its last known generation so the
// caller can see the lag depth. A replica that is up but *rejects* the
// delta (422) fails the whole broadcast: that is a bad delta, not a
// bad replica.
//
// A 200 ack only counts if its generation matches the fleet's. A
// replica restarted over a wiped data dir, caught before the first
// downward-adopting health probe, happily applies the broadcast onto
// near-empty state and acks a tiny generation — a forked history that
// generation numbers alone can never betray again. Such an ack is a
// failure in disguise: the replica's true (low) generation is adopted,
// it is quarantined as lagging, and its sync engine is kicked to
// repair from a peer's snapshot. The broadcast itself still succeeds
// when the rest of the fleet acked consistently — the delta IS durably
// applied, and the fork is healing, not silent.
//
// Fan-out excludes replicas already known to be below the floor:
// applying a new delta onto stale state would fork history — same
// generation numbers, different contents — which no later sync could
// reconcile. The skipped replica's WAL-tail transfer carries the delta
// to it instead, in the same order everyone else applied it.

// maxDeltaBody mirrors the replica-side bound.
const maxDeltaBody = 256 << 20

// deltaReplicaResult is one replica's row in the broadcast response.
type deltaReplicaResult struct {
	Name       string `json:"name"`
	Generation uint64 `json:"generation,omitempty"`
	Error      string `json:"error,omitempty"`
}

// deltaResponse is the broadcast answer: the tier's new generation plus
// per-replica outcomes.
type deltaResponse struct {
	Generation uint64               `json:"generation"`
	Applied    int                  `json:"applied"`
	Replicas   []deltaReplicaResult `json:"replicas"`
}

func (rt *Router) handleDelta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxDeltaBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "reading body: " + err.Error()})
		return
	}

	rt.deltaMu.Lock()
	defer rt.deltaMu.Unlock()

	// Partition the fleet: replicas below the floor are excluded from
	// fan-out (divergence guard — see the package comment) and reported
	// as lagging; everyone else gets the delta.
	floor := rt.genFloor.load()
	var targets, skipped []*replica
	for _, rp := range rt.replicas {
		if rp.knownGen.Load() < floor {
			skipped = append(skipped, rp)
		} else {
			targets = append(targets, rp)
		}
	}

	// Snapshot who counts toward the ack barrier before fanning out.
	healthyBefore := map[string]bool{}
	for _, rp := range targets {
		if rp.healthy.Load() && !rp.draining.Load() {
			healthyBefore[rp.name] = true
		}
	}

	results := make([]deltaOutcome, len(targets))
	var wg sync.WaitGroup
	for i, rp := range targets {
		wg.Add(1)
		go func(i int, rp *replica) {
			defer wg.Done()
			results[i] = rt.applyDeltaTo(r.Context(), rp, body, r.Header.Get("Authorization"))
		}(i, rp)
	}
	wg.Wait()

	// Establish the fleet's post-apply generation from the successful
	// acks before counting any of them. Acks below the floor cannot
	// vote — a wiped replica acking a tiny generation must not define
	// "the fleet" and quarantine the healthy majority. Among voters,
	// majority wins (ties to the higher generation); deterministic
	// stores applying the same delta in the same order cannot honestly
	// disagree, so any losing ack applied onto a forked history.
	floorVotes := map[uint64]int{}
	for i := range results {
		o := &results[i]
		if o.err == nil && o.status == http.StatusOK && o.gen >= floor {
			floorVotes[o.gen]++
		}
	}
	var fleetGen uint64
	bestVotes := 0
	for gen, n := range floorVotes {
		if n > bestVotes || (n == bestVotes && gen > fleetGen) {
			fleetGen, bestVotes = gen, n
		}
	}

	resp := deltaResponse{}
	var rejected *deltaOutcome
	failedHealthy := false
	for i := range results {
		o := &results[i]
		row := deltaReplicaResult{Name: o.rp.name, Generation: o.gen}
		switch {
		case o.err == nil && o.status == http.StatusOK && o.gen == fleetGen:
			resp.Applied++
			o.rp.liftGen(o.gen)
			if o.gen > resp.Generation {
				resp.Generation = o.gen
			}
		case o.err == nil && o.status == http.StatusOK:
			// A 200 at the wrong generation: the replica applied the
			// delta onto a history that is not the fleet's. Counting it
			// as applied would bless the fork; instead adopt its truthful
			// (divergent) generation, quarantine it and kick a repair.
			if fleetGen == 0 {
				row.Error = fmt.Sprintf("diverged: acked generation %d below floor %d; quarantined for repair", o.gen, floor)
			} else {
				row.Error = fmt.Sprintf("diverged: acked generation %d, fleet applied at %d; quarantined for repair", o.gen, fleetGen)
			}
			o.rp.adoptGen(o.gen)
			rt.m.divergedAcks.Inc()
			rt.noteLagging(o.rp)
		case o.status >= 400 && o.status < 500 && o.status != http.StatusTooManyRequests:
			// The replica is up and says the delta itself is bad.
			rejected = o
			row.Error = fmt.Sprintf("status %d: %s", o.status, firstLine(o.body))
		default:
			// The replica missed the delta: report its last known
			// generation (the caller sees the lag depth, not a zero) and
			// start catch-up now rather than at the next stale answer.
			row.Generation = o.rp.knownGen.Load()
			row.Error = errString(o.err, o.status)
			rt.noteLagging(o.rp)
			if healthyBefore[o.rp.name] {
				failedHealthy = true
			}
		}
		resp.Replicas = append(resp.Replicas, row)
	}
	for _, rp := range skipped {
		rt.noteLagging(rp)
		resp.Replicas = append(resp.Replicas, deltaReplicaResult{
			Name:       rp.name,
			Generation: rp.knownGen.Load(),
			Error:      fmt.Sprintf("lagging below floor %d; excluded from broadcast, sync kicked", floor),
		})
	}

	// Remember the caller's Authorization header for sync kicks — but
	// only once a replica accepted a broadcast carrying it. Storing an
	// unvalidated header would let a single request with a bad token
	// poison every future kick until a good token happened to arrive.
	if auth := r.Header.Get("Authorization"); auth != "" && resp.Applied > 0 {
		rt.adminAuth.Store(&auth)
	}

	switch {
	case rejected != nil:
		rt.m.deltaBroadcasts.With("rejected").Inc()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(rejected.status)
		json.NewEncoder(w).Encode(resp) //nolint:errcheck
	case resp.Applied == 0:
		rt.m.deltaBroadcasts.With("failed").Inc()
		writeJSON(w, http.StatusBadGateway, resp)
	case failedHealthy:
		// Some replica that looked healthy failed mid-broadcast. If it
		// is *still* reachable the tier has silently diverged — refuse
		// the ack so the operator notices. If it died (connect errors
		// marked it down), the ack barrier legitimately shrank.
		stillUp := false
		for i := range results {
			o := &results[i]
			if o.err != nil || o.status != http.StatusOK {
				if healthyBefore[o.rp.name] && o.rp.healthy.Load() {
					stillUp = true
				}
			}
		}
		if stillUp {
			rt.m.deltaBroadcasts.With("partial").Inc()
			writeJSON(w, http.StatusBadGateway, resp)
			return
		}
		rt.m.deltaBroadcasts.With("ok").Inc()
		rt.genFloor.lift(resp.Generation)
		writeJSON(w, http.StatusOK, resp)
	default:
		rt.m.deltaBroadcasts.With("ok").Inc()
		// The new generation is client-visible from this response on;
		// lifting the floor here (not just at the next query) closes the
		// window where a stale replica could answer below it.
		rt.genFloor.lift(resp.Generation)
		writeJSON(w, http.StatusOK, resp)
	}
}

// deltaOutcome is one replica's raw broadcast result.
type deltaOutcome struct {
	rp     *replica
	gen    uint64
	status int
	err    error
	body   []byte
}

// applyDeltaTo posts one delta body to one replica.
func (rt *Router) applyDeltaTo(ctx context.Context, rp *replica, body []byte, auth string) (o deltaOutcome) {
	o.rp = rp
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rp.baseURL+"/admin/delta", bytes.NewReader(body))
	if err != nil {
		o.err = err
		return o
	}
	if auth != "" {
		req.Header.Set("Authorization", auth)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rp.breaker.failure()
		if ctx.Err() == nil {
			rp.healthy.Store(false)
		}
		o.err = err
		return o
	}
	defer resp.Body.Close()
	o.status = resp.StatusCode
	o.body, _ = io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode == http.StatusOK {
		var swap struct {
			Generation uint64 `json:"generation"`
		}
		if json.Unmarshal(o.body, &swap) == nil {
			o.gen = swap.Generation
		}
		rp.breaker.success()
	} else if resp.StatusCode >= 500 {
		rp.breaker.failure()
	}
	return o
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}

func errString(err error, status int) string {
	if err != nil {
		return err.Error()
	}
	return fmt.Sprintf("status %d", status)
}
