package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: the Go toolchain version and
// the VCS revision stamped by `go build` (when built from a checkout).
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"`
	Modified  bool   `json:"modified,omitempty"`
	BuildTime string `json:"build_time,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build identification, computed once.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{GoVersion: runtime.Version(), Revision: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			case "vcs.time":
				buildInfo.BuildTime = s.Value
			}
		}
	})
	return buildInfo
}

// String renders a one-line "goX.Y <sha12> [modified]" form for
// -version flags.
func (b BuildInfo) String() string {
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	s := b.GoVersion + " " + rev
	if b.Modified {
		s += " (modified)"
	}
	return s
}
