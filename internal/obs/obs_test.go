package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	t0 := tr.Begin()
	if !t0.IsZero() {
		t.Fatal("nil trace Begin should return the zero time")
	}
	tr.End(StageEnumerate, t0, 5)
	tr.AddStage(StageRank, time.Second, 1, 1)
	tr.AddExpansions(3)
	tr.AddMerges(3)
	tr.MemoHit()
	tr.MemoMiss()
	tr.WalkHit()
	tr.WalkMiss()
	tr.MarkCacheHit()
	tr.MarkDeduped()
	tr.MarkPoolReused()
	tr.Truncated(StageEnumerate, TruncExpansions)
	if tr.StageNs(StageEnumerate) != 0 || tr.InnerNs() != 0 {
		t.Fatal("nil trace should read zero")
	}
	if rep := tr.Report(); rep != nil {
		t.Fatal("nil trace should render a nil report")
	}
}

func TestTraceContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("background context should carry no trace")
	}
	tr := NewTrace()
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost on the context")
	}
}

func TestTraceReport(t *testing.T) {
	tr := NewTrace()
	tr.AddStage(StageEnumerate, 2*time.Millisecond, 1, 10)
	tr.AddStage(StageMeasure, 3*time.Millisecond, 4, 4)
	tr.AddExpansions(42)
	tr.MemoHit()
	tr.MemoMiss()
	tr.MarkPoolReused()
	tr.Truncated(StageEnumerate, TruncExpansions)
	tr.Truncated(StageRank, TruncDeadline) // later attribution must not overwrite

	rep := tr.Report()
	if rep.TruncatedBy != "enumerate:expansions" {
		t.Fatalf("TruncatedBy = %q, want enumerate:expansions", rep.TruncatedBy)
	}
	if !rep.PoolReused || rep.CacheHit || rep.Deduped {
		t.Fatalf("flags wrong: %+v", rep)
	}
	if rep.Expansions != 42 || rep.MemoHits != 1 || rep.MemoMisses != 1 {
		t.Fatalf("counters wrong: %+v", rep)
	}
	if len(rep.Stages) != 2 {
		t.Fatalf("want 2 stages, got %d: %+v", len(rep.Stages), rep.Stages)
	}
	if rep.Stages[0].Stage != "enumerate" || rep.Stages[0].Items != 10 {
		t.Fatalf("enumerate stage wrong: %+v", rep.Stages[0])
	}
	if rep.Stages[1].Stage != "measure" || rep.Stages[1].Calls != 4 {
		t.Fatalf("measure stage wrong: %+v", rep.Stages[1])
	}
	if tr.InnerNs() != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("InnerNs = %d", tr.InnerNs())
	}
}

func TestTraceBeginEnd(t *testing.T) {
	tr := NewTrace()
	t0 := tr.Begin()
	if t0.IsZero() {
		t.Fatal("Begin on a live trace should read the clock")
	}
	time.Sleep(time.Millisecond)
	tr.End(StageMatch, t0, 7)
	if tr.StageNs(StageMatch) <= 0 {
		t.Fatal("End should record elapsed time")
	}
	// End with a zero start (from a formerly nil trace) is a no-op.
	tr.End(StageMatch, time.Time{}, 7)
	rep := tr.Report()
	if len(rep.Stages) != 1 || rep.Stages[0].Calls != 1 || rep.Stages[0].Items != 7 {
		t.Fatalf("stages wrong: %+v", rep.Stages)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rex_test_requests_total", "Requests.", "endpoint", "code")
	c.With("/explain", "200").Add(3)
	c.With("/batch", "400").Inc()
	g := r.Gauge("rex_test_inflight", "In-flight.")
	g.With().SetFunc(func() float64 { return 2 })
	h := r.Histogram("rex_test_latency_seconds", "Latency.", []float64{0.1, 1}, "endpoint")
	h.With("/explain").Observe(0.05)
	h.With("/explain").Observe(0.5)
	h.With("/explain").Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE rex_test_requests_total counter",
		`rex_test_requests_total{endpoint="/explain",code="200"} 3`,
		`rex_test_requests_total{endpoint="/batch",code="400"} 1`,
		"# TYPE rex_test_inflight gauge",
		"rex_test_inflight 2",
		"# TYPE rex_test_latency_seconds histogram",
		`rex_test_latency_seconds_bucket{endpoint="/explain",le="0.1"} 1`,
		`rex_test_latency_seconds_bucket{endpoint="/explain",le="1"} 2`,
		`rex_test_latency_seconds_bucket{endpoint="/explain",le="+Inf"} 3`,
		`rex_test_latency_seconds_sum{endpoint="/explain"} 5.55`,
		`rex_test_latency_seconds_count{endpoint="/explain"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("rex_test_esc_total", "Escapes.", "v").With("a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `{v="a\"b\\c\nd"}`) {
		t.Fatalf("label not escaped:\n%s", buf.String())
	}
}

func TestRegistryDuplicateRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("rex_test_dup_total", "Dup.")
	b := r.Counter("rex_test_dup_total", "Dup.")
	if a != b {
		t.Fatal("re-registering a family should return the same one")
	}
	a.With().Inc()
	if b.With().Value() != 1 {
		t.Fatal("family identity lost")
	}
}

func TestSlowLog(t *testing.T) {
	var sink bytes.Buffer
	l := NewSlowLog(10*time.Millisecond, 3, &sink)
	if l.Note(5*time.Millisecond, SlowEntry{Start: "fast"}) {
		t.Fatal("below-threshold query recorded")
	}
	for i, name := range []string{"a", "b", "c", "d"} {
		if !l.Note(time.Duration(11+i)*time.Millisecond, SlowEntry{Start: name, Endpoint: "/explain"}) {
			t.Fatalf("entry %s not recorded", name)
		}
	}
	ents := l.Entries()
	if len(ents) != 3 {
		t.Fatalf("ring should retain 3, got %d", len(ents))
	}
	// Newest first; "a" evicted.
	if ents[0].Start != "d" || ents[1].Start != "c" || ents[2].Start != "b" {
		t.Fatalf("order wrong: %+v", ents)
	}
	if l.Total() != 4 {
		t.Fatalf("Total = %d, want 4", l.Total())
	}
	if ents[0].ElapsedMS < 14 || ents[0].Time == "" {
		t.Fatalf("entry not stamped: %+v", ents[0])
	}
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("sink should hold 4 JSON lines, got %d", len(lines))
	}
	var e SlowEntry
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil || e.Start != "a" {
		t.Fatalf("sink line broken: %v %+v", err, e)
	}

	var nilLog *SlowLog
	if nilLog.Note(time.Hour, SlowEntry{}) || nilLog.Entries() != nil || nilLog.Total() != 0 {
		t.Fatal("nil slow log should be inert")
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.GoVersion == "" || b.Revision == "" {
		t.Fatalf("build info incomplete: %+v", b)
	}
	if b.String() == "" {
		t.Fatal("empty String()")
	}
}
