// Package obs is the observability layer of the engine: a per-query
// stage trace carried on the context, a dependency-free Prometheus
// registry with text exposition, a slow-query ring log, and build
// identification.
//
// The design constraint is zero allocation on the hot path when tracing
// is off. Every recording method on *Trace is nil-receiver safe, so
// instrumented code calls obs.FromContext(ctx) once and records
// unconditionally; with no trace on the context every call degrades to
// a nil check. Begin returns the zero time.Time when the trace is nil,
// so the untraced path does not even read the clock. When tracing is
// on, the per-query cost is one *Trace (fixed-size, all atomics), one
// context value, and an O(stages) Report at the end.
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage of a query. Stages nest: match
// runs inside measure (the evaluator calls the matcher on memo misses),
// so match time is informational and not disjoint from measure time.
// The rank stage is recorded as the ranker's wall time minus the
// enumerate/measure/merge time it drove, keeping the top-level stages
// additive.
type Stage uint8

const (
	StageEnumerate Stage = iota
	StageMatch
	StageMeasure
	StageRank
	StageMerge
	numStages
)

var stageNames = [numStages]string{"enumerate", "match", "measure", "rank", "merge"}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists every stage in pipeline order, for metric registration.
func Stages() []Stage {
	return []Stage{StageEnumerate, StageMatch, StageMeasure, StageRank, StageMerge}
}

// TruncCause says which budget dimension cut a query short.
type TruncCause uint8

const (
	TruncNone TruncCause = iota
	TruncExpansions
	TruncDeadline
)

func (c TruncCause) String() string {
	switch c {
	case TruncExpansions:
		return "expansions"
	case TruncDeadline:
		return "deadline"
	}
	return "none"
}

// stageRec accumulates one stage's timings. All fields are atomic
// because enumeration and batch scoring record from worker goroutines.
type stageRec struct {
	ns    atomic.Int64
	calls atomic.Int64
	items atomic.Int64
}

// Trace accumulates one query's per-stage wall time, counters and
// budget attribution. A nil *Trace is valid and records nothing.
type Trace struct {
	stages [numStages]stageRec

	expansions atomic.Int64
	merges     atomic.Int64
	memoHits   atomic.Int64
	memoMisses atomic.Int64
	walkHits   atomic.Int64
	walkMisses atomic.Int64

	flags atomic.Uint32
	// trunc packs the first budget-truncation event as
	// 1<<16 | stage<<8 | cause; first writer wins, so attribution
	// names the stage where the budget actually ran out.
	trunc atomic.Uint32
}

const (
	flagCacheHit uint32 = 1 << iota
	flagDeduped
	flagPoolReused
)

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Begin starts a stage timer. On a nil trace it returns the zero time
// without reading the clock, and the matching End is a no-op.
func (t *Trace) Begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// End closes a stage timer opened by Begin, attributing the elapsed
// wall time, one call, and items processed to the stage.
func (t *Trace) End(s Stage, t0 time.Time, items int64) {
	if t == nil || t0.IsZero() {
		return
	}
	r := &t.stages[s]
	r.ns.Add(time.Since(t0).Nanoseconds())
	r.calls.Add(1)
	r.items.Add(items)
}

// AddStage attributes an externally measured duration to a stage.
func (t *Trace) AddStage(s Stage, d time.Duration, calls, items int64) {
	if t == nil {
		return
	}
	r := &t.stages[s]
	r.ns.Add(d.Nanoseconds())
	r.calls.Add(calls)
	r.items.Add(items)
}

// StageNs returns the nanoseconds recorded for a stage so far.
func (t *Trace) StageNs(s Stage) int64 {
	if t == nil {
		return 0
	}
	return t.stages[s].ns.Load()
}

// InnerNs sums the stages a ranker drives (enumerate, measure, merge).
// Rankers snapshot it before and after to report their own exclusive
// time; match is excluded because it already nests inside measure.
func (t *Trace) InnerNs() int64 {
	if t == nil {
		return 0
	}
	return t.stages[StageEnumerate].ns.Load() +
		t.stages[StageMeasure].ns.Load() +
		t.stages[StageMerge].ns.Load()
}

// AddExpansions adds popped enumeration jobs.
func (t *Trace) AddExpansions(n int64) {
	if t == nil {
		return
	}
	t.expansions.Add(n)
}

// AddMerges adds pattern-merge attempts.
func (t *Trace) AddMerges(n int64) {
	if t == nil {
		return
	}
	t.merges.Add(n)
}

// MemoHit records an evaluator memo hit.
func (t *Trace) MemoHit() {
	if t == nil {
		return
	}
	t.memoHits.Add(1)
}

// MemoMiss records an evaluator memo miss.
func (t *Trace) MemoMiss() {
	if t == nil {
		return
	}
	t.memoMisses.Add(1)
}

// WalkHit records a prefix walk-cache hit.
func (t *Trace) WalkHit() {
	if t == nil {
		return
	}
	t.walkHits.Add(1)
}

// WalkMiss records a prefix walk-cache miss.
func (t *Trace) WalkMiss() {
	if t == nil {
		return
	}
	t.walkMisses.Add(1)
}

// MarkCacheHit flags the query as served from the result cache.
func (t *Trace) MarkCacheHit() {
	if t == nil {
		return
	}
	t.flags.Or(flagCacheHit)
}

// MarkDeduped flags the query as a single-flight follower that reused
// a concurrent identical computation.
func (t *Trace) MarkDeduped() {
	if t == nil {
		return
	}
	t.flags.Or(flagDeduped)
}

// MarkPoolReused flags that enumeration state came warm from the pool
// rather than freshly allocated.
func (t *Trace) MarkPoolReused() {
	if t == nil {
		return
	}
	t.flags.Or(flagPoolReused)
}

// Truncated records which stage exhausted which budget dimension. The
// first recording wins; later stages observing the already-tripped
// budget do not overwrite the attribution.
func (t *Trace) Truncated(s Stage, c TruncCause) {
	if t == nil || c == TruncNone {
		return
	}
	t.trunc.CompareAndSwap(0, 1<<16|uint32(s)<<8|uint32(c))
}

// ctxKey is the zero-size context key: FromContext on a traceless
// context costs a Value walk and nothing else.
type ctxKey struct{}

// NewContext returns a context carrying the trace.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// StageReport is one stage's rendered totals.
type StageReport struct {
	Stage      string  `json:"stage"`
	DurationMS float64 `json:"duration_ms"`
	Calls      int64   `json:"calls"`
	Items      int64   `json:"items"`
}

// Report is the rendered, serializable form of a Trace, attached to
// Result and embedded in slow-log entries. TruncatedBy is
// "<stage>:<cause>" (e.g. "enumerate:expansions") or empty.
type Report struct {
	// RequestID ties this trace to the HTTP request (and, behind a
	// router, the hedged attempt) that ran the query. Stamped by the
	// serving layer, not the engine.
	RequestID        string        `json:"request_id,omitempty"`
	TotalMS          float64       `json:"total_ms"`
	BudgetMS         int64         `json:"budget_ms,omitempty"`
	BudgetExpansions int           `json:"budget_expansions,omitempty"`
	CacheHit         bool          `json:"cache_hit,omitempty"`
	Deduped          bool          `json:"deduped,omitempty"`
	PoolReused       bool          `json:"pool_reused,omitempty"`
	Stages           []StageReport `json:"stages,omitempty"`
	Expansions       int64         `json:"expansions,omitempty"`
	Merges           int64         `json:"merges,omitempty"`
	MemoHits         int64         `json:"memo_hits,omitempty"`
	MemoMisses       int64         `json:"memo_misses,omitempty"`
	WalkCacheHits    int64         `json:"walk_cache_hits,omitempty"`
	WalkCacheMisses  int64         `json:"walk_cache_misses,omitempty"`
	TruncatedBy      string        `json:"truncated_by,omitempty"`
}

// Report renders the trace. The cost is O(stages): one Report and one
// slice of the stages that actually ran.
func (t *Trace) Report() *Report {
	if t == nil {
		return nil
	}
	rep := &Report{
		Expansions:      t.expansions.Load(),
		Merges:          t.merges.Load(),
		MemoHits:        t.memoHits.Load(),
		MemoMisses:      t.memoMisses.Load(),
		WalkCacheHits:   t.walkHits.Load(),
		WalkCacheMisses: t.walkMisses.Load(),
	}
	fl := t.flags.Load()
	rep.CacheHit = fl&flagCacheHit != 0
	rep.Deduped = fl&flagDeduped != 0
	rep.PoolReused = fl&flagPoolReused != 0
	for s := Stage(0); s < numStages; s++ {
		r := &t.stages[s]
		calls, ns := r.calls.Load(), r.ns.Load()
		if calls == 0 && ns == 0 {
			continue
		}
		rep.Stages = append(rep.Stages, StageReport{
			Stage:      s.String(),
			DurationMS: float64(ns) / 1e6,
			Calls:      calls,
			Items:      r.items.Load(),
		})
	}
	if v := t.trunc.Load(); v != 0 {
		rep.TruncatedBy = Stage(v>>8&0xff).String() + ":" + TruncCause(v&0xff).String()
	}
	return rep
}
