package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType is the Prometheus metric type of a Family.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Registry is a minimal, dependency-free Prometheus-compatible metric
// registry: families of counter/gauge/histogram series rendered in the
// text exposition format (version 0.0.4). It exists because the repo's
// no-new-deps constraint rules out client_golang, and the serving tier
// only needs Inc/Add/Observe plus scrape-time sampled gauges.
type Registry struct {
	mu   sync.Mutex
	fams []*Family
	byN  map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byN: make(map[string]*Family)}
}

// Counter registers (or returns) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Family {
	return r.register(name, help, TypeCounter, nil, labels)
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Family {
	return r.register(name, help, TypeGauge, nil, labels)
}

// Histogram registers (or returns) a histogram family with the given
// upper bucket bounds (an +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Family {
	return r.register(name, help, TypeHistogram, buckets, labels)
}

func (r *Registry) register(name, help string, typ MetricType, buckets []float64, labels []string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byN[name]; ok {
		return f
	}
	f := &Family{
		name: name, help: help, typ: typ,
		labels:  labels,
		buckets: buckets,
		series:  make(map[string]*Series),
	}
	r.fams = append(r.fams, f)
	r.byN[name] = f
	return f
}

// Family is one named metric with a fixed label schema.
type Family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64

	mu     sync.RWMutex
	series map[string]*Series
	order  []*Series
}

// With returns the series for the given label values, creating it on
// first use. The number of values must match the family's label names.
func (f *Family) With(labelValues ...string) *Series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &Series{fam: f, labelVals: append([]string(nil), labelValues...)}
	if f.typ == TypeHistogram {
		s.counts = make([]atomic.Uint64, len(f.buckets)+1)
	}
	f.series[key] = s
	f.order = append(f.order, s)
	return s
}

// Series is one labeled time series. Counters and gauges store float64
// bits atomically; histograms keep per-bucket counts plus sum/count.
type Series struct {
	fam       *Family
	labelVals []string

	bits atomic.Uint64  // counter/gauge value as float64 bits
	fn   func() float64 // scrape-time sampled value; set before serving

	counts []atomic.Uint64 // histogram: non-cumulative bucket counts
	sumB   atomic.Uint64   // histogram: sum of observations, float64 bits
	cnt    atomic.Uint64   // histogram: observation count
}

// Inc adds 1.
func (s *Series) Inc() { s.Add(1) }

// Add adds v (CAS loop over the float bits; safe from any goroutine).
func (s *Series) Add(v float64) {
	for {
		old := s.bits.Load()
		if s.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Set stores v.
func (s *Series) Set(v float64) { s.bits.Store(math.Float64bits(v)) }

// SetFunc makes the series sample fn at scrape time. Call during
// registration, before the registry serves scrapes.
func (s *Series) SetFunc(fn func() float64) { s.fn = fn }

// Observe records one histogram observation.
func (s *Series) Observe(v float64) {
	i := 0
	for ; i < len(s.fam.buckets); i++ {
		if v <= s.fam.buckets[i] {
			break
		}
	}
	s.counts[i].Add(1)
	s.cnt.Add(1)
	for {
		old := s.sumB.Load()
		if s.sumB.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current counter/gauge value (sampling fn if set).
func (s *Series) Value() float64 {
	if s.fn != nil {
		return s.fn()
	}
	return math.Float64frombits(s.bits.Load())
}

// Count returns the histogram observation count.
func (s *Series) Count() uint64 { return s.cnt.Load() }

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// labelString renders {k="v",...} for the series, with extra appended
// as a pre-rendered pair (used for histogram le bounds).
func (s *Series) labelString(extra string) string {
	if len(s.labelVals) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range s.fam.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(s.labelVals[i]))
		b.WriteString(`"`)
	}
	if extra != "" {
		if len(s.labelVals) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in registration order, series in
// creation order, in the Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*Family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		f.mu.RLock()
		series := append([]*Series(nil), f.order...)
		f.mu.RUnlock()
		for _, s := range series {
			if err := s.write(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Series) write(w io.Writer) error {
	f := s.fam
	if f.typ != TypeHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labelString(""), formatFloat(s.Value()))
		return err
	}
	var cum uint64
	for i, ub := range f.buckets {
		cum += s.counts[i].Load()
		le := `le="` + formatFloat(ub) + `"`
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, s.labelString(le), cum); err != nil {
			return err
		}
	}
	cum += s.counts[len(f.buckets)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, s.labelString(`le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labelString(""), formatFloat(math.Float64frombits(s.sumB.Load()))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labelString(""), s.cnt.Load())
	return err
}

// LatencyBuckets are the default request/stage duration bounds in
// seconds, spanning cached sub-millisecond hits to multi-second
// million-edge enumerations.
func LatencyBuckets() []float64 {
	return []float64{
		0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}
