package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowEntry is one slow-query record: the forensics needed to answer
// "what was this query and where did its time go" after the fact.
type SlowEntry struct {
	Time             string  `json:"time"`
	RequestID        string  `json:"request_id,omitempty"`
	Endpoint         string  `json:"endpoint"`
	Start            string  `json:"start"`
	End              string  `json:"end"`
	ElapsedMS        float64 `json:"elapsed_ms"`
	BudgetMS         int64   `json:"budget_ms,omitempty"`
	BudgetExpansions int     `json:"budget_expansions,omitempty"`
	Generation       uint64  `json:"generation"`
	Truncated        bool    `json:"truncated,omitempty"`
	Error            string  `json:"error,omitempty"`
	Trace            *Report `json:"trace,omitempty"`
}

// SlowLog keeps the most recent slow queries in a ring buffer and
// optionally appends each as a JSON line to a writer. A nil *SlowLog
// is valid and records nothing.
type SlowLog struct {
	threshold time.Duration

	mu    sync.Mutex
	ring  []SlowEntry
	next  int
	n     int
	total uint64
	w     io.Writer
}

// NewSlowLog returns a log recording queries at or above threshold,
// keeping the last size entries; w (optional) receives each entry as a
// JSON line. A non-positive threshold records every query — useful in
// tests, pathological in production.
func NewSlowLog(threshold time.Duration, size int, w io.Writer) *SlowLog {
	if size <= 0 {
		size = 128
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowEntry, size), w: w}
}

// Threshold returns the configured slow threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Note records the entry if elapsed meets the threshold, stamping its
// Time and ElapsedMS. It reports whether the entry was recorded.
func (l *SlowLog) Note(elapsed time.Duration, e SlowEntry) bool {
	if l == nil || elapsed < l.threshold {
		return false
	}
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	e.ElapsedMS = float64(elapsed) / 1e6
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.total++
	if l.w != nil {
		// Marshal under the lock so concurrent entries cannot interleave
		// bytes within a line; SlowEntry always marshals.
		if b, err := json.Marshal(e); err == nil {
			l.w.Write(append(b, '\n'))
		}
	}
	return true
}

// Entries returns the retained entries, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// Total returns how many slow queries have been recorded overall,
// including entries the ring has since evicted.
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
