package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rex/internal/kb"
)

// TestQuickKeyAgreesWithCanonicalString property-checks the hashed key
// against the string canonicalisation it replaces: for random pattern
// pairs up to the size limit, the 64-bit interned keys are equal exactly
// when the canonical strings are equal — i.e. exactly when the patterns
// are isomorphic with targets pinned.
func TestQuickKeyAgreesWithCanonicalString(t *testing.T) {
	g := kb.New()
	labels := []kb.LabelID{
		g.MustLabel("d1", true), g.MustLabel("d2", true), g.MustLabel("u1", false),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(g, labels, rng)
		// Half the time compare against an isomorphic relabeling of p,
		// half the time against an independent random pattern, so both
		// directions of the equivalence get exercised.
		var q *Pattern
		if seed%2 == 0 {
			q = relabelFree(g, p, rng)
		} else {
			q = randomPattern(g, labels, rng)
		}
		return (p.Key() == q.Key()) == (p.CanonicalKey() == q.CanonicalKey())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// relabelFree renames p's free variables by a random permutation,
// producing an isomorphic pattern.
func relabelFree(g *kb.Graph, p *Pattern, rng *rand.Rand) *Pattern {
	n := p.NumVars()
	if n <= 2 {
		return p
	}
	freePerm := rng.Perm(n - 2)
	rename := func(v VarID) VarID {
		if v < 2 {
			return v
		}
		return VarID(freePerm[v-2] + 2)
	}
	var renamed []Edge
	for _, e := range p.Edges() {
		renamed = append(renamed, Edge{U: rename(e.U), V: rename(e.V), Label: e.Label})
	}
	return MustNew(g, n, renamed)
}

// TestKeyInterningIsStable checks that re-deriving a pattern yields the
// same interned key, and that the key is cached on the pattern.
func TestKeyInterningIsStable(t *testing.T) {
	g, star, _, dir := testSchema(t)
	mk := func() *Pattern {
		return MustNew(g, 4, []Edge{
			{U: 2, V: Start, Label: star},
			{U: 2, V: End, Label: star},
			{U: 2, V: 3, Label: dir},
		})
	}
	p, q := mk(), mk()
	if p.Key() != q.Key() {
		t.Fatal("equal patterns got different keys")
	}
	if p.Key() != p.Key() {
		t.Fatal("key not stable across calls")
	}
	if Key(fnv64(p.CanonicalKey())) != p.Key() {
		t.Fatal("key is not the FNV-1a hash of the canonical encoding (rank tie-breaking relies on this)")
	}
}

// TestCanonicalKeyAllocs bounds the allocation cost of computing a
// canonical key from scratch: the permutation search must reuse its
// buffers, leaving only the pattern-level caches (encoding string, best
// permutation, scratch) — a constant, not factorial, count.
func TestCanonicalKeyAllocs(t *testing.T) {
	g, star, _, dir := testSchema(t)
	edges := []Edge{
		{U: 2, V: Start, Label: star},
		{U: 2, V: End, Label: star},
		{U: 3, V: Start, Label: star},
		{U: 3, V: 4, Label: dir},
		{U: 2, V: 4, Label: dir},
		{U: 3, V: End, Label: star},
	}
	allocs := testing.AllocsPerRun(100, func() {
		p := MustNew(g, 5, edges)
		_ = p.CanonicalKey()
	})
	// MustNew itself allocates (pattern + normalised edges); the
	// canonicalisation adds a handful of fixed buffers. 12 leaves wide
	// headroom while still failing if per-permutation allocation
	// returns (3! permutations × several allocs each would exceed it
	// for this 3-free-variable pattern... and real regressions show up
	// at larger sizes first).
	if allocs > 12 {
		t.Errorf("CanonicalKey allocates %.0f times per fresh pattern; want ≤ 12", allocs)
	}
}

// TestInstanceKeyLegacyOrder pins the InstanceKey sort order to the
// legacy byte-string order (little-endian per ID): rendered instance
// lists must not reorder across the key representation change.
func TestInstanceKeyLegacyOrder(t *testing.T) {
	// 256 encodes as bytes [0,1,0,0]; 1 as [1,0,0,0] — the legacy
	// string order put 256 first.
	lo := Instance{256}.Key()
	hi := Instance{1}.Key()
	if !lo.Less(hi) || hi.Less(lo) {
		t.Error("InstanceKey order diverges from the legacy little-endian byte order")
	}
	// Prefix rule: a shorter key that is a prefix sorts first.
	short := Instance{7}.Key()
	long := Instance{7, 0}.Key()
	if !short.Less(long) || long.Less(short) {
		t.Error("prefix ordering broken")
	}
}
