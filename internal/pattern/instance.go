package pattern

import (
	"fmt"

	"rex/internal/kb"
)

// Instance is an explanation instance (Definition 2): the assignment of a
// knowledge-base entity to each pattern variable. inst[0] is always the
// start target, inst[1] the end target. REX instances are injective
// embeddings — distinct variables bind distinct entities — which
// subsumes the definition's requirement that non-target variables avoid
// the target entities (see the match package for why).
type Instance []kb.NodeID

// Clone returns a copy of the instance.
func (in Instance) Clone() Instance {
	out := make(Instance, len(in))
	copy(out, in)
	return out
}

// Explanation is a relationship explanation: a pattern together with its
// non-empty instance set for a specific entity pair (the pair is implicit
// in inst[0] and inst[1] of every instance).
type Explanation struct {
	P         *Pattern
	Instances []Instance
}

// NewExplanation bundles a pattern with instances, de-duplicating the
// instance list.
func NewExplanation(p *Pattern, instances []Instance) *Explanation {
	seen := make(map[InstanceKey]struct{}, len(instances))
	out := instances[:0:0]
	for _, in := range instances {
		k := in.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, in)
	}
	return &Explanation{P: p, Instances: out}
}

// Count reports the number of distinct instances (the paper's Mcount).
func (e *Explanation) Count() int { return len(e.Instances) }

// UniqueAssignments reports |uniq(v)|: the number of distinct entities
// assigned to variable v across all instances (Section 4.2).
func (e *Explanation) UniqueAssignments(v VarID) int {
	seen := make(map[kb.NodeID]struct{})
	for _, in := range e.Instances {
		seen[in[v]] = struct{}{}
	}
	return len(seen)
}

// Monocount computes the paper's anti-monotonic aggregate: the minimum
// over all non-target variables of the number of distinct assignments.
// When the pattern has no non-target variable (a direct edge between the
// targets) the paper overrides the value to 1.
func (e *Explanation) Monocount() int {
	if e.P.NumVars() == 2 {
		return 1
	}
	min := -1
	for v := VarID(2); int(v) < e.P.NumVars(); v++ {
		u := e.UniqueAssignments(v)
		if min < 0 || u < min {
			min = u
		}
	}
	if min < 0 {
		return 1
	}
	return min
}

// Validate checks every instance against the pattern's edge constraints
// and target conventions; it is used by tests and the NaiveEnum baseline
// to assert correctness of instance propagation.
func (e *Explanation) Validate(g *kb.Graph, start, end kb.NodeID) error {
	for idx, in := range e.Instances {
		if len(in) != e.P.NumVars() {
			return fmt.Errorf("instance %d: %d assignments for %d variables", idx, len(in), e.P.NumVars())
		}
		if in[Start] != start || in[End] != end {
			return fmt.Errorf("instance %d: targets (%d,%d) != (%d,%d)", idx, in[Start], in[End], start, end)
		}
		for v := 2; v < len(in); v++ {
			if in[v] == start || in[v] == end {
				return fmt.Errorf("instance %d: non-target variable %d maps to a target entity", idx, v)
			}
		}
		if !injective(in) {
			return fmt.Errorf("instance %d: bindings are not pairwise distinct", idx)
		}
		for _, pe := range e.P.Edges() {
			u, v := in[pe.U], in[pe.V]
			if g.LabelDirected(pe.Label) {
				if !g.HasEdge(u, v, pe.Label) {
					return fmt.Errorf("instance %d: missing edge %s→%s [%s]",
						idx, g.NodeName(u), g.NodeName(v), g.LabelName(pe.Label))
				}
			} else if !g.HasEdge(u, v, pe.Label) {
				return fmt.Errorf("instance %d: missing undirected edge %s—%s [%s]",
					idx, g.NodeName(u), g.NodeName(v), g.LabelName(pe.Label))
			}
		}
	}
	return nil
}
