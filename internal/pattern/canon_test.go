package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rex/internal/kb"
)

func TestCanonicalKeyIsomorphicVariants(t *testing.T) {
	g, star, _, dir := testSchema(t)
	// The same "co-star in a film directed by someone" shape with the
	// two free variables numbered both ways.
	p1 := MustNew(g, 4, []Edge{
		{U: 2, V: Start, Label: star},
		{U: 2, V: End, Label: star},
		{U: 2, V: 3, Label: dir},
	})
	p2 := MustNew(g, 4, []Edge{
		{U: 3, V: Start, Label: star},
		{U: 3, V: End, Label: star},
		{U: 3, V: 2, Label: dir},
	})
	if p1.CanonicalKey() != p2.CanonicalKey() {
		t.Error("isomorphic patterns got different canonical keys")
	}
	if !p1.Isomorphic(p2) {
		t.Error("Isomorphic() disagrees")
	}
}

func TestCanonicalKeyTargetsPinned(t *testing.T) {
	g, star, _, _ := testSchema(t)
	// start←film→end with producing on the START side vs the END side:
	// mirror images, but targets are pinned, so NOT isomorphic.
	prod := g.MustLabel("produced_by", true)
	pStart := MustNew(g, 3, []Edge{
		{U: 2, V: Start, Label: star},
		{U: 2, V: End, Label: star},
		{U: 2, V: Start, Label: prod},
	})
	pEnd := MustNew(g, 3, []Edge{
		{U: 2, V: Start, Label: star},
		{U: 2, V: End, Label: star},
		{U: 2, V: End, Label: prod},
	})
	if pStart.CanonicalKey() == pEnd.CanonicalKey() {
		t.Error("mirror patterns must differ when targets are pinned")
	}
}

func TestCanonicalKeyDifferentLabelsDiffer(t *testing.T) {
	g, star, spouse, _ := testSchema(t)
	p1 := MustNew(g, 2, []Edge{{U: Start, V: End, Label: spouse}})
	p2 := MustNew(g, 3, []Edge{
		{U: 2, V: Start, Label: star}, {U: 2, V: End, Label: star},
	})
	if p1.CanonicalKey() == p2.CanonicalKey() {
		t.Error("different patterns share a canonical key")
	}
	if p1.Isomorphic(p2) {
		t.Error("different-size patterns reported isomorphic")
	}
}

func TestCanonicalPermIsValidRenaming(t *testing.T) {
	g, star, _, dir := testSchema(t)
	p := MustNew(g, 5, []Edge{
		{U: 2, V: Start, Label: star},
		{U: 2, V: End, Label: star},
		{U: 3, V: Start, Label: star},
		{U: 3, V: 4, Label: dir},
		{U: 2, V: 4, Label: dir},
		{U: 3, V: End, Label: star},
	})
	perm := p.CanonicalPerm()
	if perm[Start] != Start || perm[End] != End {
		t.Fatal("targets must map to themselves")
	}
	seen := make(map[VarID]bool)
	for _, v := range perm {
		if seen[v] {
			t.Fatalf("perm not a bijection: %v", perm)
		}
		seen[v] = true
	}
	// Renaming the pattern by its canonical perm must preserve the key.
	renamed := make([]Edge, 0, p.NumEdges())
	for _, e := range p.Edges() {
		renamed = append(renamed, Edge{U: perm[e.U], V: perm[e.V], Label: e.Label})
	}
	q := MustNew(g, p.NumVars(), renamed)
	if q.CanonicalKey() != p.CanonicalKey() {
		t.Error("canonical renaming changed the canonical key")
	}
}

// randomPattern builds a connected-ish random pattern over the schema.
func randomPattern(g *kb.Graph, labels []kb.LabelID, rng *rand.Rand) *Pattern {
	n := 2 + rng.Intn(4) // 2..5 vars
	var edges []Edge
	// Chain everything to guarantee validity, then sprinkle extras.
	order := rng.Perm(n)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{
			U:     VarID(order[i-1]),
			V:     VarID(order[i]),
			Label: labels[rng.Intn(len(labels))],
		})
	}
	extra := rng.Intn(3)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, Edge{U: VarID(u), V: VarID(v), Label: labels[rng.Intn(len(labels))]})
	}
	p, err := New(g, n, edges)
	if err != nil {
		panic(err)
	}
	return p
}

// TestQuickCanonicalInvariantUnderRelabeling property-checks the core
// canonicalisation guarantee: renaming free variables by any permutation
// leaves the canonical key unchanged.
func TestQuickCanonicalInvariantUnderRelabeling(t *testing.T) {
	g := kb.New()
	labels := []kb.LabelID{
		g.MustLabel("d1", true), g.MustLabel("d2", true), g.MustLabel("u1", false),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(g, labels, rng)
		n := p.NumVars()
		if n <= 2 {
			return true
		}
		// Random permutation of free variables.
		freePerm := rng.Perm(n - 2)
		rename := func(v VarID) VarID {
			if v < 2 {
				return v
			}
			return VarID(freePerm[v-2] + 2)
		}
		var renamed []Edge
		for _, e := range p.Edges() {
			renamed = append(renamed, Edge{U: rename(e.U), V: rename(e.V), Label: e.Label})
		}
		q, err := New(g, n, renamed)
		if err != nil {
			return false
		}
		return q.CanonicalKey() == p.CanonicalKey() && p.Isomorphic(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCanonicalSeparatesLabels property-checks that changing one
// edge's label changes the canonical key.
func TestQuickCanonicalSeparatesLabels(t *testing.T) {
	g := kb.New()
	labels := []kb.LabelID{g.MustLabel("d1", true), g.MustLabel("d2", true)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(g, labels[:1], rng) // all edges labeled d1
		// Flip one edge to d2.
		edges := append([]Edge{}, p.Edges()...)
		edges[rng.Intn(len(edges))].Label = labels[1]
		q, err := New(g, p.NumVars(), edges)
		if err != nil {
			return false
		}
		// q now has at least one d2 edge while p has none; keys differ.
		return q.CanonicalKey() != p.CanonicalKey()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
