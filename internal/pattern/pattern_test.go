package pattern

import (
	"strings"
	"testing"

	"rex/internal/kb"
)

// testSchema builds a graph used only for its label metadata.
func testSchema(t *testing.T) (*kb.Graph, kb.LabelID, kb.LabelID, kb.LabelID) {
	t.Helper()
	g := kb.New()
	star := g.MustLabel("starring", true)
	spouse := g.MustLabel("spouse", false)
	dir := g.MustLabel("directed_by", true)
	return g, star, spouse, dir
}

func TestNewValidation(t *testing.T) {
	g, star, _, _ := testSchema(t)
	if _, err := New(g, 1, nil); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(g, MaxVars+1, nil); err == nil {
		t.Error("n beyond MaxVars accepted")
	}
	if _, err := New(g, 3, []Edge{{U: 2, V: 2, Label: star}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := New(g, 3, []Edge{{U: 0, V: 5, Label: star}}); err == nil {
		t.Error("out-of-range variable accepted")
	}
	if _, err := New(g, 2, []Edge{{U: Start, V: End, Label: star}}); err != nil {
		t.Errorf("minimal valid pattern rejected: %v", err)
	}
}

func TestNewNormalisesUndirected(t *testing.T) {
	g, _, spouse, _ := testSchema(t)
	p := MustNew(g, 3, []Edge{{U: 2, V: Start, Label: spouse}})
	e := p.Edges()[0]
	if e.U != Start || e.V != 2 {
		t.Fatalf("undirected edge not normalised: %+v", e)
	}
}

func TestNewDedupsEdges(t *testing.T) {
	g, star, spouse, _ := testSchema(t)
	p := MustNew(g, 3, []Edge{
		{U: 2, V: Start, Label: star},
		{U: 2, V: Start, Label: star},   // exact duplicate
		{U: Start, V: 2, Label: spouse}, // undirected, one orientation
		{U: 2, V: Start, Label: spouse}, // same edge, other orientation
	})
	if p.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (%v)", p.NumEdges(), p.Edges())
	}
}

func TestDirectedOrientationDistinct(t *testing.T) {
	g, star, _, _ := testSchema(t)
	p := MustNew(g, 3, []Edge{
		{U: 2, V: Start, Label: star},
		{U: Start, V: 2, Label: star}, // reverse orientation is distinct
	})
	if p.NumEdges() != 2 {
		t.Fatalf("directed reverse orientation merged: %v", p.Edges())
	}
}

func TestIsPath(t *testing.T) {
	g, star, spouse, _ := testSchema(t)
	cases := []struct {
		name string
		p    *Pattern
		want bool
	}{
		{"direct edge", MustNew(g, 2, []Edge{{U: Start, V: End, Label: spouse}}), true},
		{"two-hop", MustNew(g, 3, []Edge{
			{U: 2, V: Start, Label: star}, {U: 2, V: End, Label: star},
		}), true},
		{"double edge between targets", MustNew(g, 2, []Edge{
			{U: Start, V: End, Label: spouse}, {U: Start, V: End, Label: star},
		}), false},
		{"triangle extra edge", MustNew(g, 3, []Edge{
			{U: 2, V: Start, Label: star}, {U: 2, V: End, Label: star},
			{U: Start, V: End, Label: spouse},
		}), false},
		{"costar+produce", MustNew(g, 3, []Edge{
			{U: 2, V: Start, Label: star}, {U: 2, V: End, Label: star},
			{U: 2, V: Start, Label: kb.LabelID(2)},
		}), false},
	}
	for _, tc := range cases {
		if got := tc.p.IsPath(); got != tc.want {
			t.Errorf("%s: IsPath = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDegree(t *testing.T) {
	g, star, _, dir := testSchema(t)
	p := MustNew(g, 4, []Edge{
		{U: 2, V: Start, Label: star},
		{U: 2, V: End, Label: star},
		{U: 2, V: 3, Label: dir},
	})
	if p.Degree(2) != 3 || p.Degree(Start) != 1 || p.Degree(3) != 1 {
		t.Fatalf("degrees: %d %d %d", p.Degree(2), p.Degree(Start), p.Degree(3))
	}
}

func TestStringRendering(t *testing.T) {
	g, star, spouse, _ := testSchema(t)
	p := MustNew(g, 3, []Edge{
		{U: Start, V: End, Label: spouse},
		{U: 2, V: Start, Label: star},
	})
	s := p.String()
	if !strings.Contains(s, "spouse") || !strings.Contains(s, "starring") {
		t.Fatalf("String() missing labels: %s", s)
	}
	if !strings.Contains(s, "->") {
		t.Fatalf("directed edge should render an arrow: %s", s)
	}
}

func TestDescribeWithInstance(t *testing.T) {
	g, star, _, _ := testSchema(t)
	a := g.AddNode("film1", "film")
	b := g.AddNode("alice", "actor")
	c := g.AddNode("bob", "actor")
	g.MustAddEdge(a, b, star)
	g.MustAddEdge(a, c, star)
	p := MustNew(g, 3, []Edge{
		{U: 2, V: Start, Label: star}, {U: 2, V: End, Label: star},
	})
	desc := p.Describe(g, Instance{b, c, a})
	if !strings.Contains(desc, "film1") || !strings.Contains(desc, "alice") {
		t.Fatalf("Describe missing entity names: %s", desc)
	}
	// Without an instance it falls back to variable names.
	if d := p.Describe(g, nil); !strings.Contains(d, "start") {
		t.Fatalf("variable fallback broken: %s", d)
	}
}
