package pattern

import (
	"sync"

	"rex/internal/kb"
)

// Explanation merging: the ∪f operator of Algorithm 3 (lines 24–41).
//
// Two explanations for the same entity pair are merged under a partial
// one-to-one mapping f between their non-target variables. The paper's
// requirements on f:
//
//	(1) start maps to start, end to end (implicit: both explanations
//	    target the same pair);
//	(2) a non-target variable maps to a non-target variable or nothing;
//	(3) the mapping is injective where defined;
//	(4) at least one non-target pair is matched.
//
// Requirement (4) is what makes every merge result non-decomposable, and
// the covering-path argument (Theorem 1) makes it essential, so every
// result is minimal by construction. Instances are combined pairwise,
// keeping combinations that agree on every matched variable.

// Merge implements merge(re1, re2, n): it returns all minimal
// explanations obtainable by merging re1 with re2 under some valid
// partial mapping, keeping only results with at most maxVars variables
// and at least one instance. Results are not de-duplicated against each
// other; the caller's duplication check handles that (as in the paper).
func Merge(re1, re2 *Explanation, maxVars int) []*Explanation {
	m := AcquireMerger()
	defer ReleaseMerger(m)
	var out []*Explanation
	m.Merge(re1, re2, maxVars,
		func(Key) MergeAction { return MergeTake },
		func(_ Key, ex *Explanation) { out = append(out, ex) })
	return out
}

// MergeAction tells the Merger how far to take one merge candidate,
// decided from its canonical key — after the (pooled, allocation-free)
// instance join proved the candidate non-empty, but before anything is
// materialised.
type MergeAction int

const (
	// MergeSkip discards the candidate: nothing is materialised and take
	// is not called. Correct whenever the caller has already committed an
	// explanation under the same key (the classic duplication check).
	MergeSkip MergeAction = iota
	// MergeProbe reports the candidate without materialising it: take
	// receives a nil explanation. Used by the pruned union to record
	// composition history for a pattern that already exists in the
	// current ring.
	MergeProbe
	// MergeTake materialises the merged explanation and passes it to
	// take.
	MergeTake
)

// Merger runs the ∪f enumeration with every intermediate buffer — the
// mapping search state, the merged-edge scratch, the canonical-encoding
// buffers and the hash-join tables — reused across calls, so the only
// allocations a merge performs are for explanations the caller actually
// keeps. A Merger retains no reference to any graph or explanation after
// a call returns and is freely reusable across snapshots; it is not safe
// for concurrent use (pool one per goroutine, see AcquireMerger).
type Merger struct {
	mapping []VarID
	used    []bool
	rename2 [MaxVars]VarID
	edges   []Edge
	cs      canonScratch

	// Hash-join state: heads/next chain re2's instance indexes by
	// matched-variable projection; seen de-duplicates joined instances;
	// arena accumulates accepted instances flattened (total IDs each).
	heads map[InstanceKey]int32
	next  []int32
	seen  map[InstanceKey]struct{}
	arena []kb.NodeID
}

// NewMerger returns a Merger with empty (lazily grown) buffers.
func NewMerger() *Merger {
	return &Merger{
		heads: make(map[InstanceKey]int32),
		seen:  make(map[InstanceKey]struct{}),
	}
}

var mergerPool = sync.Pool{New: func() any { return NewMerger() }}

// AcquireMerger takes a Merger from the process-wide pool.
func AcquireMerger() *Merger { return mergerPool.Get().(*Merger) }

// ReleaseMerger returns a Merger to the pool. The warm buffers are the
// point; they hold no pointers into caller state. A merger whose join
// tables outgrew the retention bound is dropped instead — Go maps never
// shrink, so re-pooling it would pin a pathological query's footprint
// for the life of the process.
func ReleaseMerger(m *Merger) {
	if m.Oversized(mergerRetainedCap) {
		return
	}
	mergerPool.Put(m)
}

// mergerRetainedCap bounds the elements a pooled Merger may keep
// between uses.
const mergerRetainedCap = 1 << 16

// Oversized reports whether the merger's reusable buffers grew past
// limit elements; pools use it to decide between reuse and release.
func (m *Merger) Oversized(limit int) bool {
	return cap(m.arena) > limit || len(m.heads) > limit ||
		len(m.seen) > limit || cap(m.next) > limit
}

// Merge enumerates the valid partial mappings of merge(re1, re2, n) in
// the same order as the package-level Merge. Each candidate's instance
// sets are hash-joined in pooled scratch; for non-empty candidates the
// merged pattern's canonical key is resolved and decide picks the action
// (see MergeAction). take is invoked — in enumeration order — once per
// candidate whose join was non-empty and whose action was MergeProbe
// (ex == nil) or MergeTake (ex materialised).
func (m *Merger) Merge(re1, re2 *Explanation, maxVars int, decide func(Key) MergeAction, take func(Key, *Explanation)) {
	p1, p2 := re1.P, re2.P
	free1 := p1.NumVars() - 2
	free2 := p2.NumVars() - 2
	if free1 == 0 || free2 == 0 {
		// Requirement (4) cannot be met: nothing to match.
		return
	}
	if cap(m.mapping) < free2 {
		m.mapping = make([]VarID, free2)
	}
	if cap(m.used) < free1 {
		m.used = make([]bool, free1)
	}
	mapping := m.mapping[:free2]
	used := m.used[:free1]
	for i := range used {
		used[i] = false
	}
	// mapping[j] is the p1 variable matched to p2 variable j+2, or -1.
	var rec func(j, matched int)
	rec = func(j, matched int) {
		if j == free2 {
			if matched == 0 {
				return
			}
			m.candidate(re1, re2, mapping, maxVars, decide, take)
			return
		}
		mapping[j] = -1
		rec(j+1, matched)
		for i := 0; i < free1; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			mapping[j] = VarID(i + 2)
			rec(j+1, matched+1)
			used[i] = false
		}
		mapping[j] = -1
	}
	rec(0, 0)
}

// candidate processes one mapping: renames, normalises the merged edge
// multiset in scratch, resolves the canonical key, and — if the caller
// wants the candidate — joins the instance sets and materialises.
func (m *Merger) candidate(re1, re2 *Explanation, mapping []VarID, maxVars int, decide func(Key) MergeAction, take func(Key, *Explanation)) {
	p1, p2 := re1.P, re2.P
	// Assign variable IDs in the merged pattern: p1 variables keep their
	// IDs; unmatched p2 variables get fresh IDs.
	rename2 := m.rename2[:p2.NumVars()]
	rename2[Start], rename2[End] = Start, End
	next := VarID(p1.NumVars())
	for j := 0; j < p2.NumVars()-2; j++ {
		if mapping[j] >= 0 {
			rename2[j+2] = mapping[j]
		} else {
			rename2[j+2] = next
			next++
		}
	}
	total := int(next)
	if total > maxVars {
		return
	}

	// Join the instance sets first: the pooled hash-join is cheap, and a
	// candidate with no instance — the common case — must skip the
	// (factorial) canonical-form computation entirely.
	n := m.joinInstances(re1, re2, mapping, rename2, total)
	if n == 0 {
		return
	}

	// Merged edge multiset in New's normal form: per-edge orientation
	// normalisation, canonical sort, dedup — all in the reused scratch.
	schema := p1.Schema()
	m.edges = m.edges[:0]
	m.edges = append(m.edges, p1.Edges()...)
	for _, e := range p2.Edges() {
		u, v := rename2[e.U], rename2[e.V]
		if !schema.LabelDirected(e.Label) && u > v {
			u, v = v, u
		}
		m.edges = append(m.edges, Edge{U: u, V: v, Label: e.Label})
	}
	insertionSortEdges(m.edges)
	m.edges = dedupEdges(m.edges)

	enc := canonEncode(&m.cs, schema, total, m.edges, nil)
	key, canon := internKeyBytes(enc)
	action := decide(key)
	if action == MergeSkip {
		return
	}
	if action == MergeProbe {
		take(key, nil)
		return
	}
	p := newInterned(schema, total, m.edges, canon, key)
	// Exactly two allocations for the instance set: one flat ID backing
	// array and one header slice.
	backing := make([]kb.NodeID, n*total)
	copy(backing, m.arena[:n*total])
	insts := make([]Instance, n)
	for i := range insts {
		insts[i] = Instance(backing[i*total : (i+1)*total])
	}
	take(key, &Explanation{P: p, Instances: insts})
}

// joinInstances hash-joins the two instance sets on the matched
// variables into the reused arena, returning the number of accepted
// (injective, de-duplicated) merged instances; the arena holds them
// flattened, total IDs each, in the same order the legacy join emitted.
func (m *Merger) joinInstances(re1, re2 *Explanation, mapping []VarID, rename2 []VarID, total int) int {
	var matched1, matched2 [MaxVars]VarID
	nm := 0
	for j, v := range mapping {
		if v >= 0 {
			matched2[nm] = VarID(j + 2)
			matched1[nm] = v
			nm++
		}
	}
	// joinKey projects an instance onto the matched variables; the
	// resulting InstanceKey is the hash-join key, built without
	// allocating.
	joinKey := func(in Instance, vars []VarID) InstanceKey {
		var k InstanceKey
		k.n = int8(len(vars))
		for i, v := range vars {
			k.ids[i] = in[v]
		}
		return k
	}
	// Index re2's instances by projection as forward chains: heads holds
	// the first instance index per key, next the following one. Built in
	// reverse so chain traversal preserves instance order.
	clear(m.heads)
	if cap(m.next) < len(re2.Instances) {
		m.next = make([]int32, len(re2.Instances))
	}
	nxt := m.next[:len(re2.Instances)]
	for i := len(re2.Instances) - 1; i >= 0; i-- {
		k := joinKey(re2.Instances[i], matched2[:nm])
		if head, ok := m.heads[k]; ok {
			nxt[i] = head
		} else {
			nxt[i] = -1
		}
		m.heads[k] = int32(i)
	}

	clear(m.seen)
	m.arena = m.arena[:0]
	n := 0
	var buf [MaxVars]kb.NodeID
	for _, i1 := range re1.Instances {
		k := joinKey(i1, matched1[:nm])
		idx, ok := m.heads[k]
		if !ok {
			continue
		}
		for ; idx >= 0; idx = nxt[idx] {
			i2 := re2.Instances[idx]
			merged := Instance(buf[:total])
			copy(merged, i1)
			for v2 := 2; v2 < len(i2); v2++ {
				merged[rename2[v2]] = i2[v2]
			}
			if !injective(merged) {
				continue
			}
			ik := merged.Key()
			if _, dup := m.seen[ik]; dup {
				continue
			}
			m.seen[ik] = struct{}{}
			m.arena = append(m.arena, merged...)
			n++
		}
	}
	return n
}

// injective reports whether all variable bindings are distinct. REX
// instances are injective embeddings; both joined instances already are,
// so only collisions between one side's private variables and the other
// side's bindings can occur, but the full quadratic check is trivial at
// these sizes.
func injective(in Instance) bool {
	for i := 1; i < len(in); i++ {
		for j := 0; j < i; j++ {
			if in[i] == in[j] {
				return false
			}
		}
	}
	return true
}

// FromPathInstance builds the (pattern, instance) pair for one simple
// path in the knowledge base. nodes is the full node sequence from start
// to end; steps[i] is the half-edge taken from nodes[i] to nodes[i+1].
// Internal path nodes become variables 2,3,... in path order; the
// canonical key makes the numbering immaterial for de-duplication.
func FromPathInstance(g *kb.Graph, nodes []kb.NodeID, steps []kb.HalfEdge) (*Pattern, Instance, error) {
	L := len(steps)
	if len(nodes) != L+1 {
		return nil, nil, errPathShape
	}
	varOf := make([]VarID, L+1)
	varOf[0] = Start
	varOf[L] = End
	for i := 1; i < L; i++ {
		varOf[i] = VarID(i + 1) // nodes[1] -> v2, nodes[2] -> v3, ...
	}
	edges := make([]Edge, L)
	for i, he := range steps {
		u, v := varOf[i], varOf[i+1]
		if g.LabelDirected(he.Label) && he.Dir == kb.In {
			u, v = v, u // the underlying edge points nodes[i+1] → nodes[i]
		}
		edges[i] = Edge{U: u, V: v, Label: he.Label}
	}
	p, err := New(g, L+1, edges)
	if err != nil {
		return nil, nil, err
	}
	inst := make(Instance, L+1)
	inst[Start] = nodes[0]
	inst[End] = nodes[L]
	for i := 1; i < L; i++ {
		inst[varOf[i]] = nodes[i]
	}
	return p, inst, nil
}

var errPathShape = &pathShapeError{}

type pathShapeError struct{}

func (*pathShapeError) Error() string {
	return "pattern: node sequence and step list lengths disagree"
}
