package pattern

import (
	"rex/internal/kb"
)

// Explanation merging: the ∪f operator of Algorithm 3 (lines 24–41).
//
// Two explanations for the same entity pair are merged under a partial
// one-to-one mapping f between their non-target variables. The paper's
// requirements on f:
//
//	(1) start maps to start, end to end (implicit: both explanations
//	    target the same pair);
//	(2) a non-target variable maps to a non-target variable or nothing;
//	(3) the mapping is injective where defined;
//	(4) at least one non-target pair is matched.
//
// Requirement (4) is what makes every merge result non-decomposable, and
// the covering-path argument (Theorem 1) makes it essential, so every
// result is minimal by construction. Instances are combined pairwise,
// keeping combinations that agree on every matched variable.

// Merge implements merge(re1, re2, n): it returns all minimal
// explanations obtainable by merging re1 with re2 under some valid
// partial mapping, keeping only results with at most maxVars variables
// and at least one instance. Results are not de-duplicated against each
// other; the caller's duplication check handles that (as in the paper).
func Merge(re1, re2 *Explanation, maxVars int) []*Explanation {
	p1, p2 := re1.P, re2.P
	free1 := p1.NumVars() - 2
	free2 := p2.NumVars() - 2
	if free1 == 0 || free2 == 0 {
		// Requirement (4) cannot be met: nothing to match.
		return nil
	}
	var out []*Explanation
	// mapping[j] is the p1 variable matched to p2 variable j+2, or -1.
	mapping := make([]VarID, free2)
	used := make([]bool, free1)
	var rec func(j, matched int)
	rec = func(j, matched int) {
		if j == free2 {
			if matched == 0 {
				return
			}
			if merged := applyMapping(re1, re2, mapping, maxVars); merged != nil {
				out = append(out, merged)
			}
			return
		}
		mapping[j] = -1
		rec(j+1, matched)
		for i := 0; i < free1; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			mapping[j] = VarID(i + 2)
			rec(j+1, matched+1)
			used[i] = false
		}
		mapping[j] = -1
	}
	rec(0, 0)
	return out
}

// applyMapping builds the merged explanation for one mapping, or nil when
// the result exceeds maxVars or has no instance.
func applyMapping(re1, re2 *Explanation, mapping []VarID, maxVars int) *Explanation {
	p1, p2 := re1.P, re2.P
	// Assign variable IDs in the merged pattern: p1 variables keep their
	// IDs; unmatched p2 variables get fresh IDs.
	rename2 := make([]VarID, p2.NumVars())
	rename2[Start], rename2[End] = Start, End
	next := VarID(p1.NumVars())
	for j := 0; j < p2.NumVars()-2; j++ {
		if mapping[j] >= 0 {
			rename2[j+2] = mapping[j]
		} else {
			rename2[j+2] = next
			next++
		}
	}
	total := int(next)
	if total > maxVars {
		return nil
	}

	edges := make([]Edge, 0, p1.NumEdges()+p2.NumEdges())
	edges = append(edges, p1.Edges()...)
	for _, e := range p2.Edges() {
		edges = append(edges, Edge{U: rename2[e.U], V: rename2[e.V], Label: e.Label})
	}
	merged, err := New(p1.Schema(), total, edges)
	if err != nil {
		return nil
	}

	instances := mergeInstances(re1, re2, mapping, rename2, total)
	if len(instances) == 0 {
		return nil
	}
	return &Explanation{P: merged, Instances: instances}
}

// mergeInstances joins the two instance sets on the matched variables.
// To avoid the |I1|×|I2| scan of the pseudocode, re2's instances are
// indexed by their matched-variable values first; the join then probes
// that index, which is the standard hash-join the paper's SQL evaluation
// would perform.
func mergeInstances(re1, re2 *Explanation, mapping []VarID, rename2 []VarID, total int) []Instance {
	matchedVars2 := make([]VarID, 0, len(mapping))
	matchedVars1 := make([]VarID, 0, len(mapping))
	for j, m := range mapping {
		if m >= 0 {
			matchedVars2 = append(matchedVars2, VarID(j+2))
			matchedVars1 = append(matchedVars1, m)
		}
	}
	// joinKey projects an instance onto the matched variables; the
	// resulting InstanceKey is the hash-join key, built without
	// allocating.
	joinKey := func(in Instance, vars []VarID) InstanceKey {
		var k InstanceKey
		k.n = int8(len(vars))
		for i, v := range vars {
			k.ids[i] = in[v]
		}
		return k
	}
	index2 := make(map[InstanceKey][]Instance, len(re2.Instances))
	for _, i2 := range re2.Instances {
		k := joinKey(i2, matchedVars2)
		index2[k] = append(index2[k], i2)
	}

	var out []Instance
	seen := make(map[InstanceKey]struct{})
	for _, i1 := range re1.Instances {
		k := joinKey(i1, matchedVars1)
		for _, i2 := range index2[k] {
			merged := make(Instance, total)
			copy(merged, i1)
			for v2 := 2; v2 < len(i2); v2++ {
				merged[rename2[v2]] = i2[v2]
			}
			if !injective(merged) {
				continue
			}
			ik := merged.Key()
			if _, dup := seen[ik]; dup {
				continue
			}
			seen[ik] = struct{}{}
			out = append(out, merged)
		}
	}
	return out
}

// injective reports whether all variable bindings are distinct. REX
// instances are injective embeddings; both joined instances already are,
// so only collisions between one side's private variables and the other
// side's bindings can occur, but the full quadratic check is trivial at
// these sizes.
func injective(in Instance) bool {
	for i := 1; i < len(in); i++ {
		for j := 0; j < i; j++ {
			if in[i] == in[j] {
				return false
			}
		}
	}
	return true
}

// FromPathInstance builds the (pattern, instance) pair for one simple
// path in the knowledge base. nodes is the full node sequence from start
// to end; steps[i] is the half-edge taken from nodes[i] to nodes[i+1].
// Internal path nodes become variables 2,3,... in path order; the
// canonical key makes the numbering immaterial for de-duplication.
func FromPathInstance(g *kb.Graph, nodes []kb.NodeID, steps []kb.HalfEdge) (*Pattern, Instance, error) {
	L := len(steps)
	if len(nodes) != L+1 {
		return nil, nil, errPathShape
	}
	varOf := make([]VarID, L+1)
	varOf[0] = Start
	varOf[L] = End
	for i := 1; i < L; i++ {
		varOf[i] = VarID(i + 1) // nodes[1] -> v2, nodes[2] -> v3, ...
	}
	edges := make([]Edge, L)
	for i, he := range steps {
		u, v := varOf[i], varOf[i+1]
		if g.LabelDirected(he.Label) && he.Dir == kb.In {
			u, v = v, u // the underlying edge points nodes[i+1] → nodes[i]
		}
		edges[i] = Edge{U: u, V: v, Label: he.Label}
	}
	p, err := New(g, L+1, edges)
	if err != nil {
		return nil, nil, err
	}
	inst := make(Instance, L+1)
	inst[Start] = nodes[0]
	inst[End] = nodes[L]
	for i := 1; i < L; i++ {
		inst[varOf[i]] = nodes[i]
	}
	return p, inst, nil
}

var errPathShape = &pathShapeError{}

type pathShapeError struct{}

func (*pathShapeError) Error() string {
	return "pattern: node sequence and step list lengths disagree"
}
