package pattern

// Structural properties of explanation patterns (Section 2.3 of the
// paper): essentiality, decomposability, and their conjunction,
// minimality. REX only enumerates minimal patterns; these predicates are
// used by the NaiveEnum baseline (which must filter) and by tests that
// verify the path-union framework generates exactly the minimal set.

// Essential reports whether every node and edge of the pattern lies on a
// simple path (edges treated as undirected, no repeated nodes) between
// the start and end targets (Definition 3).
func (p *Pattern) Essential() bool {
	if p.n == 2 {
		// Only the targets: essential iff every edge connects them, which
		// the constructor guarantees (all edges are between vars 0 and 1).
		return len(p.edges) > 0
	}
	nodeOn := make([]bool, p.n)
	edgeOn := make([]bool, len(p.edges))
	p.walkSimplePaths(func(nodes []VarID, edges []int) bool {
		for _, v := range nodes {
			nodeOn[v] = true
		}
		for _, e := range edges {
			edgeOn[e] = true
		}
		return true // keep enumerating
	})
	for v := 0; v < p.n; v++ {
		if !nodeOn[v] {
			return false
		}
	}
	for i := range p.edges {
		if !edgeOn[i] {
			return false
		}
	}
	return true
}

// walkSimplePaths enumerates every simple start→end path in the pattern
// graph (ignoring edge direction). For each path it invokes f with the
// node sequence and the indexes of the traversed edges; if f returns
// false enumeration stops early.
func (p *Pattern) walkSimplePaths(f func(nodes []VarID, edges []int) bool) {
	type halfEdge struct {
		to   VarID
		edge int
	}
	adj := make([][]halfEdge, p.n)
	for i, e := range p.edges {
		adj[e.U] = append(adj[e.U], halfEdge{to: e.V, edge: i})
		adj[e.V] = append(adj[e.V], halfEdge{to: e.U, edge: i})
	}
	onPath := make([]bool, p.n)
	nodes := []VarID{Start}
	var edges []int
	onPath[Start] = true
	stop := false
	var dfs func(at VarID)
	dfs = func(at VarID) {
		if stop {
			return
		}
		for _, he := range adj[at] {
			if stop {
				return
			}
			if he.to == End {
				nodes = append(nodes, End)
				edges = append(edges, he.edge)
				if !f(nodes, edges) {
					stop = true
				}
				nodes = nodes[:len(nodes)-1]
				edges = edges[:len(edges)-1]
				continue
			}
			if onPath[he.to] {
				continue
			}
			onPath[he.to] = true
			nodes = append(nodes, he.to)
			edges = append(edges, he.edge)
			dfs(he.to)
			nodes = nodes[:len(nodes)-1]
			edges = edges[:len(edges)-1]
			onPath[he.to] = false
		}
	}
	dfs(Start)
}

// Decomposable reports whether the edge set can be partitioned into two
// non-empty parts that share no non-target variable (Definition 4). An
// explanation that decomposes is semantically redundant: its instances
// are exactly the cross product of its parts' instances.
//
// The check is linear: build the graph whose vertices are the pattern's
// edges, connecting two edges when they share a non-target variable. The
// pattern is decomposable iff that graph has more than one connected
// component.
func (p *Pattern) Decomposable() bool {
	m := len(p.edges)
	if m <= 1 {
		return false
	}
	parent := make([]int, m)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// firstEdge[v] remembers one edge incident to the non-target variable
	// v; every later incident edge unions with it.
	firstEdge := make([]int, p.n)
	for i := range firstEdge {
		firstEdge[i] = -1
	}
	for i, e := range p.edges {
		for _, v := range [2]VarID{e.U, e.V} {
			if v == Start || v == End {
				continue
			}
			if firstEdge[v] == -1 {
				firstEdge[v] = i
			} else {
				union(firstEdge[v], i)
			}
		}
	}
	root := find(0)
	for i := 1; i < m; i++ {
		if find(i) != root {
			return true
		}
	}
	return false
}

// Minimal reports whether the pattern is essential and non-decomposable
// (Section 2.3). Only minimal patterns are returned by REX.
func (p *Pattern) Minimal() bool {
	return p.Essential() && !p.Decomposable()
}
