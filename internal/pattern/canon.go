package pattern

import (
	"bytes"
	"sort"
	"strconv"
	"sync"
)

// Canonicalisation and isomorphism.
//
// The paper's duplication check (Algorithm 3, lines 16–23) discards a
// newly generated explanation whenever its pattern is isomorphic to an
// already-kept pattern, where isomorphism must respect the two target
// variables (start maps to start, end to end). Patterns are bounded by
// the size limit (5 in the paper's experiments), so exact isomorphism is
// affordable: we canonicalise by trying every permutation of the
// non-target variables and keeping the lexicographically smallest edge
// encoding. Two patterns are isomorphic iff their canonical keys are
// equal, which turns the queue scan of the pseudocode into a hash-map
// lookup — and, via the interned 64-bit Key, a cheap integer-keyed one.
//
// The permutation search reuses two byte buffers and one edge scratch
// slice for the whole run, so computing a canonical form performs a
// constant number of allocations regardless of pattern size; the result
// is cached on the pattern, making every later access free.

// CanonicalKey returns a string that is identical for exactly the
// patterns isomorphic to p (with targets pinned). The key is cached on
// first use; computing it is O((n-2)! · |E|), trivial for the pattern
// sizes REX enumerates. Hot paths should prefer Key, the interned 64-bit
// form; the string form remains the deterministic sort key for output
// ordering.
//
// The string itself comes from the process-wide intern table, so the
// steady state — recomputing the canonical form of a pattern shape seen
// before — allocates nothing: the factorial search runs in pooled
// buffers and the interned string is shared.
func (p *Pattern) CanonicalKey() string {
	if !p.hasKey {
		cs := canonPool.Get().(*canonScratch)
		enc := canonEncode(cs, p.schema, p.n, p.edges, nil)
		p.key, p.canon = internKeyBytes(enc)
		p.hasKey = true
		canonPool.Put(cs)
	}
	return p.canon
}

// canonScratch holds the reusable buffers of the factorial canonical
// search: the renamed-edge scratch, the permutation and best-permutation
// arrays, and the two encoding buffers (current candidate and
// best-so-far, swapped on improvement) — so one canonical-form
// computation performs no allocations once the buffers are warm.
type canonScratch struct {
	scratch    []Edge
	perm       []VarID
	best, cand []byte
}

var canonPool = sync.Pool{New: func() any { return &canonScratch{} }}

// canonEncode computes the canonical encoding of the pattern (n, edges)
// into cs's buffers and returns it; the result is valid until cs is
// reused. When bestPerm is non-nil it receives a permutation achieving
// the canonical form (len n-2). edges must be in the New normal form
// (undirected U ≤ V, sorted, deduped).
func canonEncode(cs *canonScratch, schema Schema, n int, edges []Edge, bestPerm []VarID) []byte {
	if cap(cs.scratch) < len(edges) {
		cs.scratch = make([]Edge, len(edges))
	}
	scratch := cs.scratch[:len(edges)]
	free := n - 2 // variables 2..n-1 may be permuted
	if free <= 0 {
		cs.best = appendEncoding(cs.best[:0], schema, n, edges, nil, scratch)
		return cs.best
	}
	if cap(cs.perm) < free {
		cs.perm = make([]VarID, free)
	}
	perm := cs.perm[:free] // perm[i] = image of variable i+2
	for i := range perm {
		perm[i] = VarID(i + 2)
	}
	haveBest := false
	best, cand := cs.best[:0], cs.cand[:0]
	permute(perm, 0, func() {
		cand = appendEncoding(cand[:0], schema, n, edges, perm, scratch)
		if !haveBest || bytes.Compare(cand, best) < 0 {
			haveBest = true
			best, cand = cand, best
			if bestPerm != nil {
				copy(bestPerm, perm)
			}
		}
	})
	cs.best, cs.cand = best, cand
	return best
}

// CanonicalPerm returns a full variable renaming into the canonical
// numbering: result[v] is the canonical name of variable v (targets map
// to themselves). Two isomorphic patterns renamed by their respective
// CanonicalPerms have identical edge lists, and their instance sets —
// remapped the same way — become directly comparable (equal up to
// automorphisms of the canonical pattern, which permute the instance set
// onto itself).
func (p *Pattern) CanonicalPerm() []VarID {
	out := make([]VarID, p.n)
	out[Start], out[End] = Start, End
	for i := 2; i < p.n; i++ {
		out[i] = VarID(i)
	}
	if p.n > 2 {
		cs := canonPool.Get().(*canonScratch)
		canonEncode(cs, p.schema, p.n, p.edges, out[2:])
		canonPool.Put(cs)
	}
	return out
}

// CanonicalInstanceKeys remaps every instance into the canonical variable
// numbering and returns the sorted key list. Two explanations with
// isomorphic patterns have equal canonical instance keys iff their
// instance sets are equal.
func (e *Explanation) CanonicalInstanceKeys() []InstanceKey {
	perm := e.P.CanonicalPerm()
	keys := make([]InstanceKey, len(e.Instances))
	remapped := make(Instance, len(perm))
	for i, in := range e.Instances {
		for v, id := range in {
			remapped[perm[v]] = id
		}
		keys[i] = remapped.Key()
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys
}

// permute generates all permutations of perm[k:] in place, invoking f for
// each complete permutation.
func permute(perm []VarID, k int, f func()) {
	if k == len(perm) {
		f()
		return
	}
	for i := k; i < len(perm); i++ {
		perm[k], perm[i] = perm[i], perm[k]
		permute(perm, k+1, f)
		perm[k], perm[i] = perm[i], perm[k]
	}
}

// appendEncoding renders the edge multiset under a relabeling of the free
// variables into dst, reusing scratch for the renamed edges. perm[i] is
// the new name of variable i+2; a nil perm is the identity. Directed
// edges keep their orientation; undirected edges are re-normalised to
// U ≤ V after renaming so that equal patterns encode equally. The format
// ("n|u,v,label;...") is the legacy string encoding — output ordering
// depends on comparisons of these strings, so it must not change.
func appendEncoding(dst []byte, schema Schema, n int, edges []Edge, perm []VarID, scratch []Edge) []byte {
	for i, e := range edges {
		u, v := renameVar(e.U, perm), renameVar(e.V, perm)
		if !schema.LabelDirected(e.Label) && u > v {
			u, v = v, u
		}
		scratch[i] = Edge{U: u, V: v, Label: e.Label}
	}
	insertionSortEdges(scratch)
	dst = strconv.AppendInt(dst, int64(n), 10)
	dst = append(dst, '|')
	for _, e := range scratch {
		dst = strconv.AppendInt(dst, int64(e.U), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(e.V), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(e.Label), 10)
		dst = append(dst, ';')
	}
	return dst
}

func renameVar(v VarID, perm []VarID) VarID {
	if v < 2 || perm == nil {
		return v
	}
	return perm[v-2]
}

// insertionSortEdges sorts in place by edgeLess — the same order as
// sortEdges, which shares the comparator — without the sort.Slice
// closure allocation; edge lists are tiny, so insertion sort also wins
// on constants.
func insertionSortEdges(es []Edge) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && edgeLess(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// edgeLess is the canonical (U, V, Label) edge order used by both the
// normal form (sortEdges) and the canonical encoding.
func edgeLess(a, b Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	if a.V != b.V {
		return a.V < b.V
	}
	return a.Label < b.Label
}

// Isomorphic reports whether p and q are isomorphic with targets pinned.
func (p *Pattern) Isomorphic(q *Pattern) bool {
	if p.n != q.n || len(p.edges) != len(q.edges) {
		return false
	}
	return p.Key() == q.Key()
}
