package pattern

import (
	"bytes"
	"sort"
	"strconv"
)

// Canonicalisation and isomorphism.
//
// The paper's duplication check (Algorithm 3, lines 16–23) discards a
// newly generated explanation whenever its pattern is isomorphic to an
// already-kept pattern, where isomorphism must respect the two target
// variables (start maps to start, end to end). Patterns are bounded by
// the size limit (5 in the paper's experiments), so exact isomorphism is
// affordable: we canonicalise by trying every permutation of the
// non-target variables and keeping the lexicographically smallest edge
// encoding. Two patterns are isomorphic iff their canonical keys are
// equal, which turns the queue scan of the pseudocode into a hash-map
// lookup — and, via the interned 64-bit Key, a cheap integer-keyed one.
//
// The permutation search reuses two byte buffers and one edge scratch
// slice for the whole run, so computing a canonical form performs a
// constant number of allocations regardless of pattern size; the result
// is cached on the pattern, making every later access free.

// CanonicalKey returns a string that is identical for exactly the
// patterns isomorphic to p (with targets pinned). The key is cached on
// first use; computing it is O((n-2)! · |E|), trivial for the pattern
// sizes REX enumerates. Hot paths should prefer Key, the interned 64-bit
// form; the string form remains the deterministic sort key for output
// ordering.
func (p *Pattern) CanonicalKey() string {
	if p.canon == "" {
		p.canon = p.computeCanon()
	}
	return p.canon
}

func (p *Pattern) computeCanon() string {
	enc, _ := p.canonWithPerm()
	return enc
}

// canonWithPerm computes the canonical encoding together with a
// permutation achieving it. Candidate encodings are rendered into two
// reused byte buffers (current candidate and best-so-far, swapped on
// improvement) so the factorial search allocates nothing per
// permutation.
func (p *Pattern) canonWithPerm() (string, []VarID) {
	free := p.n - 2 // variables 2..n-1 may be permuted
	scratch := make([]Edge, len(p.edges))
	if free <= 0 {
		return string(p.appendEncoding(nil, nil, scratch)), nil
	}
	perm := make([]VarID, free) // perm[i] = image of variable i+2
	for i := range perm {
		perm[i] = VarID(i + 2)
	}
	// Both buffers are sized for the worst-case encoding up front so the
	// factorial search never reallocates: the "n|" prefix plus up to 16
	// bytes per "u,v,label;" triple (labels are int32).
	encCap := 4 + 16*len(p.edges)
	best := make([]byte, 0, encCap)
	cand := make([]byte, 0, encCap)
	haveBest := false
	bestPerm := make([]VarID, free)
	permute(perm, 0, func() {
		cand = p.appendEncoding(cand[:0], perm, scratch)
		if !haveBest || bytes.Compare(cand, best) < 0 {
			haveBest = true
			best, cand = cand, best
			copy(bestPerm, perm)
		}
	})
	return string(best), bestPerm
}

// CanonicalPerm returns a full variable renaming into the canonical
// numbering: result[v] is the canonical name of variable v (targets map
// to themselves). Two isomorphic patterns renamed by their respective
// CanonicalPerms have identical edge lists, and their instance sets —
// remapped the same way — become directly comparable (equal up to
// automorphisms of the canonical pattern, which permute the instance set
// onto itself).
func (p *Pattern) CanonicalPerm() []VarID {
	_, perm := p.canonWithPerm()
	out := make([]VarID, p.n)
	out[Start], out[End] = Start, End
	for i := 2; i < p.n; i++ {
		if perm == nil {
			out[i] = VarID(i)
		} else {
			out[i] = perm[i-2]
		}
	}
	return out
}

// CanonicalInstanceKeys remaps every instance into the canonical variable
// numbering and returns the sorted key list. Two explanations with
// isomorphic patterns have equal canonical instance keys iff their
// instance sets are equal.
func (e *Explanation) CanonicalInstanceKeys() []InstanceKey {
	perm := e.P.CanonicalPerm()
	keys := make([]InstanceKey, len(e.Instances))
	remapped := make(Instance, len(perm))
	for i, in := range e.Instances {
		for v, id := range in {
			remapped[perm[v]] = id
		}
		keys[i] = remapped.Key()
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys
}

// permute generates all permutations of perm[k:] in place, invoking f for
// each complete permutation.
func permute(perm []VarID, k int, f func()) {
	if k == len(perm) {
		f()
		return
	}
	for i := k; i < len(perm); i++ {
		perm[k], perm[i] = perm[i], perm[k]
		permute(perm, k+1, f)
		perm[k], perm[i] = perm[i], perm[k]
	}
}

// appendEncoding renders the edge multiset under a relabeling of the free
// variables into dst, reusing scratch for the renamed edges. perm[i] is
// the new name of variable i+2; a nil perm is the identity. Directed
// edges keep their orientation; undirected edges are re-normalised to
// U ≤ V after renaming so that equal patterns encode equally. The format
// ("n|u,v,label;...") is the legacy string encoding — output ordering
// depends on comparisons of these strings, so it must not change.
func (p *Pattern) appendEncoding(dst []byte, perm []VarID, scratch []Edge) []byte {
	for i, e := range p.edges {
		u, v := renameVar(e.U, perm), renameVar(e.V, perm)
		if !p.schema.LabelDirected(e.Label) && u > v {
			u, v = v, u
		}
		scratch[i] = Edge{U: u, V: v, Label: e.Label}
	}
	insertionSortEdges(scratch)
	dst = strconv.AppendInt(dst, int64(p.n), 10)
	dst = append(dst, '|')
	for _, e := range scratch {
		dst = strconv.AppendInt(dst, int64(e.U), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(e.V), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(e.Label), 10)
		dst = append(dst, ';')
	}
	return dst
}

func renameVar(v VarID, perm []VarID) VarID {
	if v < 2 || perm == nil {
		return v
	}
	return perm[v-2]
}

// insertionSortEdges sorts in place by edgeLess — the same order as
// sortEdges, which shares the comparator — without the sort.Slice
// closure allocation; edge lists are tiny, so insertion sort also wins
// on constants.
func insertionSortEdges(es []Edge) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && edgeLess(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// edgeLess is the canonical (U, V, Label) edge order used by both the
// normal form (sortEdges) and the canonical encoding.
func edgeLess(a, b Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	if a.V != b.V {
		return a.V < b.V
	}
	return a.Label < b.Label
}

// Isomorphic reports whether p and q are isomorphic with targets pinned.
func (p *Pattern) Isomorphic(q *Pattern) bool {
	if p.n != q.n || len(p.edges) != len(q.edges) {
		return false
	}
	return p.Key() == q.Key()
}
