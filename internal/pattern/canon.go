package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Canonicalisation and isomorphism.
//
// The paper's duplication check (Algorithm 3, lines 16–23) discards a
// newly generated explanation whenever its pattern is isomorphic to an
// already-kept pattern, where isomorphism must respect the two target
// variables (start maps to start, end to end). Patterns are bounded by
// the size limit (5 in the paper's experiments), so exact isomorphism is
// affordable: we canonicalise by trying every permutation of the
// non-target variables and keeping the lexicographically smallest edge
// encoding. Two patterns are isomorphic iff their canonical keys are
// equal, which turns the queue scan of the pseudocode into a hash-map
// lookup.

// CanonicalKey returns a string that is identical for exactly the
// patterns isomorphic to p (with targets pinned). The key is cached on
// first use; computing it is O((n-2)! · |E| log |E|), trivial for the
// pattern sizes REX enumerates.
func (p *Pattern) CanonicalKey() string {
	if p.canon == "" {
		p.canon = p.computeCanon()
	}
	return p.canon
}

func (p *Pattern) computeCanon() string {
	enc, _ := p.canonWithPerm()
	return enc
}

// canonWithPerm computes the canonical encoding together with a
// permutation achieving it.
func (p *Pattern) canonWithPerm() (string, []VarID) {
	free := p.n - 2 // variables 2..n-1 may be permuted
	if free <= 0 {
		return p.encodeEdges(nil), nil
	}
	perm := make([]VarID, free) // perm[i] = image of variable i+2
	for i := range perm {
		perm[i] = VarID(i + 2)
	}
	best := ""
	var bestPerm []VarID
	permute(perm, 0, func() {
		enc := p.encodeEdges(perm)
		if best == "" || enc < best {
			best = enc
			bestPerm = append(bestPerm[:0], perm...)
		}
	})
	return best, bestPerm
}

// CanonicalPerm returns a full variable renaming into the canonical
// numbering: result[v] is the canonical name of variable v (targets map
// to themselves). Two isomorphic patterns renamed by their respective
// CanonicalPerms have identical edge lists, and their instance sets —
// remapped the same way — become directly comparable (equal up to
// automorphisms of the canonical pattern, which permute the instance set
// onto itself).
func (p *Pattern) CanonicalPerm() []VarID {
	_, perm := p.canonWithPerm()
	out := make([]VarID, p.n)
	out[Start], out[End] = Start, End
	for i := 2; i < p.n; i++ {
		if perm == nil {
			out[i] = VarID(i)
		} else {
			out[i] = perm[i-2]
		}
	}
	return out
}

// CanonicalInstanceKeys remaps every instance into the canonical variable
// numbering and returns the sorted key list. Two explanations with
// isomorphic patterns have equal canonical instance keys iff their
// instance sets are equal.
func (e *Explanation) CanonicalInstanceKeys() []string {
	perm := e.P.CanonicalPerm()
	keys := make([]string, len(e.Instances))
	for i, in := range e.Instances {
		remapped := make(Instance, len(in))
		for v, id := range in {
			remapped[perm[v]] = id
		}
		keys[i] = remapped.Key()
	}
	sortStrings(keys)
	return keys
}

func sortStrings(a []string) {
	sort.Strings(a)
}

// permute generates all permutations of perm[k:] in place, invoking f for
// each complete permutation.
func permute(perm []VarID, k int, f func()) {
	if k == len(perm) {
		f()
		return
	}
	for i := k; i < len(perm); i++ {
		perm[k], perm[i] = perm[i], perm[k]
		permute(perm, k+1, f)
		perm[k], perm[i] = perm[i], perm[k]
	}
}

// encodeEdges renders the edge multiset under a relabeling of the free
// variables. perm[i] is the new name of variable i+2; a nil perm is the
// identity. Directed edges keep their orientation; undirected edges are
// re-normalised to U ≤ V after renaming so that equal patterns encode
// equally.
func (p *Pattern) encodeEdges(perm []VarID) string {
	mapped := make([]Edge, len(p.edges))
	rename := func(v VarID) VarID {
		if v < 2 || perm == nil {
			return v
		}
		return perm[v-2]
	}
	for i, e := range p.edges {
		u, v := rename(e.U), rename(e.V)
		if !p.schema.LabelDirected(e.Label) && u > v {
			u, v = v, u
		}
		mapped[i] = Edge{U: u, V: v, Label: e.Label}
	}
	sortEdges(mapped)
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", p.n)
	for _, e := range mapped {
		fmt.Fprintf(&b, "%d,%d,%d;", e.U, e.V, e.Label)
	}
	return b.String()
}

// Isomorphic reports whether p and q are isomorphic with targets pinned.
func (p *Pattern) Isomorphic(q *Pattern) bool {
	if p.n != q.n || len(p.edges) != len(q.edges) {
		return false
	}
	return p.CanonicalKey() == q.CanonicalKey()
}
