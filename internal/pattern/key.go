package pattern

import (
	"fmt"
	"math/bits"
	"sync"

	"rex/internal/kb"
)

// Key is a compact 64-bit canonical pattern key: the FNV-1a hash of the
// canonical encoding (see CanonicalKey). Two patterns have equal Keys iff
// they are isomorphic with targets pinned, which makes Key a drop-in
// replacement for the canonical string in de-duplication maps at a
// fraction of the hashing and memory cost. Because the hash is a pure
// function of the canonical encoding, Keys are stable across runs,
// goroutines and worker counts — they are safe to use anywhere the
// canonical string was.
//
// A 64-bit hash can in principle collide; a process-wide intern table
// records every (Key, encoding) pair ever issued and fails loudly on a
// collision instead of silently conflating two distinct patterns. With
// FNV-1a's distribution a collision needs on the order of 2^32 distinct
// patterns in one process (the birthday bound), far beyond the pattern
// diversity any knowledge-base schema produces; the check turns the
// astronomically unlikely event into a crash rather than a wrong answer.
type Key uint64

// internTable is the process-wide collision checker. It grows with the
// number of distinct pattern shapes seen by the process — bounded by
// schema diversity (label combinations × structures within MaxVars), not
// by query volume, so it stays small for any real knowledge base.
var internTable = struct {
	sync.RWMutex
	m map[Key]string
}{m: make(map[Key]string, 256)}

// internKey issues the Key for a canonical encoding, registering it in
// the collision-check table.
func internKey(canon string) Key {
	k, _ := internKeyBytes([]byte(canon))
	return k
}

// internKeyBytes issues the Key for a canonical encoding given as bytes
// and returns the interned string form. In the steady state — an
// encoding already registered — it allocates nothing: the hash runs over
// the byte slice and the comparison against the stored string converts
// without copying. Only the first sighting of a new pattern shape
// allocates (the retained string).
func internKeyBytes(canon []byte) (Key, string) {
	k := Key(fnv64Bytes(canon))
	internTable.RLock()
	prev, ok := internTable.m[k]
	internTable.RUnlock()
	if !ok {
		internTable.Lock()
		if prev2, ok2 := internTable.m[k]; ok2 {
			prev, ok = prev2, true
		} else {
			prev = string(canon)
			internTable.m[k] = prev
		}
		internTable.Unlock()
	}
	if ok && prev != string(canon) {
		panic(fmt.Sprintf("pattern: 64-bit canonical key collision between %q and %q", prev, canon))
	}
	return k, prev
}

// fnv64 is the FNV-1a hash of the canonical encoding. The rank layer's
// deterministic tie-breaking relies on Key being exactly this hash (it
// historically hashed the canonical string itself), so changing the
// algorithm would reorder tied explanations.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// fnv64Bytes is fnv64 over a byte slice, so hashing a scratch-buffer
// encoding needs no string conversion.
func fnv64Bytes(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 0x100000001b3
	}
	return h
}

// Key returns the interned 64-bit canonical key. Equal keys ⇔ isomorphic
// patterns (targets pinned). Computed once and cached, like CanonicalKey
// (which computes both in one pooled pass).
func (p *Pattern) Key() Key {
	if !p.hasKey {
		p.CanonicalKey()
	}
	return p.key
}

// InstanceKey is the compact, comparable identity of an instance: the
// variable count and the bound entity IDs. It replaces the legacy packed
// string key in de-duplication maps and join indexes — same identity
// semantics, zero allocation.
type InstanceKey struct {
	n   int8
	ids [MaxVars]kb.NodeID
}

// Key packs the assignment into a comparable value usable as a map key
// for de-duplication. Instances are bounded by MaxVars variables.
func (in Instance) Key() InstanceKey {
	if len(in) > MaxVars {
		panic(fmt.Sprintf("pattern: instance with %d variables exceeds MaxVars=%d", len(in), MaxVars))
	}
	var k InstanceKey
	k.n = int8(len(in))
	copy(k.ids[:], in)
	return k
}

// Less orders keys exactly as the legacy byte-packed string keys did
// (per-ID little-endian byte order, shorter prefix first), so instance
// ordering inside explanations — and therefore rendered output — is
// byte-identical to the string era.
func (k InstanceKey) Less(o InstanceKey) bool {
	n := k.n
	if o.n < n {
		n = o.n
	}
	for i := int8(0); i < n; i++ {
		if k.ids[i] != o.ids[i] {
			return leLess32(uint32(k.ids[i]), uint32(o.ids[i]))
		}
	}
	return k.n < o.n
}

// leLess32 compares two 32-bit values by their little-endian byte
// encoding, the comparison the legacy string keys performed byte by byte.
func leLess32(a, b uint32) bool {
	return bits.ReverseBytes32(a) < bits.ReverseBytes32(b)
}
