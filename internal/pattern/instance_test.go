package pattern

import (
	"testing"
	"testing/quick"

	"rex/internal/kb"
)

func TestInstanceKeyDistinguishes(t *testing.T) {
	a := Instance{1, 2, 3}
	b := Instance{1, 2, 4}
	c := Instance{1, 2, 3}
	if a.Key() == b.Key() {
		t.Error("different instances share a key")
	}
	if a.Key() != c.Key() {
		t.Error("equal instances have different keys")
	}
}

func TestQuickInstanceKeyInjective(t *testing.T) {
	f := func(a, b []int32) bool {
		// Instances are bounded by MaxVars variables by construction
		// (pattern.New enforces it); InstanceKey relies on that bound.
		if len(a) > MaxVars {
			a = a[:MaxVars]
		}
		if len(b) > MaxVars {
			b = b[:MaxVars]
		}
		ia := make(Instance, len(a))
		for i, v := range a {
			ia[i] = kb.NodeID(v)
		}
		ib := make(Instance, len(b))
		for i, v := range b {
			ib[i] = kb.NodeID(v)
		}
		// Keys equal iff instances equal (same length, same values).
		keysEqual := ia.Key() == ib.Key()
		valsEqual := len(ia) == len(ib)
		if valsEqual {
			for i := range ia {
				if ia[i] != ib[i] {
					valsEqual = false
					break
				}
			}
		}
		return keysEqual == valsEqual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Instance{1, 2, 3}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestNewExplanationDedups(t *testing.T) {
	g, star, _, _ := testSchema(t)
	p := MustNew(g, 3, []Edge{
		{U: 2, V: Start, Label: star}, {U: 2, V: End, Label: star},
	})
	ex := NewExplanation(p, []Instance{
		{0, 1, 2}, {0, 1, 2}, {0, 1, 3},
	})
	if ex.Count() != 2 {
		t.Fatalf("Count = %d, want 2", ex.Count())
	}
}

func TestUniqueAssignmentsAndMonocount(t *testing.T) {
	// Example 6: v1 → director, v2 → film. With instances
	// (mendes, revroad) and (mendes, revroad2): uniq(v1)=1, uniq(v2)=2,
	// monocount = 1 while count = 2.
	g, star, _, dir := testSchema(t)
	p := MustNew(g, 4, []Edge{
		{U: 2, V: Start, Label: star},
		{U: 2, V: End, Label: star},
		{U: 2, V: 3, Label: dir},
	})
	ex := NewExplanation(p, []Instance{
		{10, 11, 20, 30}, // film 20, director 30
		{10, 11, 21, 30}, // film 21, same director
	})
	if got := ex.UniqueAssignments(3); got != 1 {
		t.Errorf("uniq(v3) = %d, want 1", got)
	}
	if got := ex.UniqueAssignments(2); got != 2 {
		t.Errorf("uniq(v2) = %d, want 2", got)
	}
	if got := ex.Monocount(); got != 1 {
		t.Errorf("monocount = %d, want 1", got)
	}
	if got := ex.Count(); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	_ = star
}

func TestMonocountDirectEdgeOverride(t *testing.T) {
	g, _, spouse, _ := testSchema(t)
	p := MustNew(g, 2, []Edge{{U: Start, V: End, Label: spouse}})
	ex := NewExplanation(p, []Instance{{0, 1}})
	if got := ex.Monocount(); got != 1 {
		t.Errorf("direct-edge monocount = %d, want 1 (paper override)", got)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	g := kb.New()
	film := g.AddNode("film", "film")
	alice := g.AddNode("alice", "actor")
	bob := g.AddNode("bob", "actor")
	other := g.AddNode("other", "actor")
	star := g.MustLabel("starring", true)
	g.MustAddEdge(film, alice, star)
	g.MustAddEdge(film, bob, star)
	g.Freeze()

	p := MustNew(g, 3, []Edge{
		{U: 2, V: Start, Label: star}, {U: 2, V: End, Label: star},
	})
	good := NewExplanation(p, []Instance{{alice, bob, film}})
	if err := good.Validate(g, alice, bob); err != nil {
		t.Fatalf("valid explanation rejected: %v", err)
	}

	cases := []struct {
		name string
		ex   *Explanation
	}{
		{"wrong arity", &Explanation{P: p, Instances: []Instance{{alice, bob}}}},
		{"wrong targets", &Explanation{P: p, Instances: []Instance{{bob, alice, film}}}},
		{"missing edge", &Explanation{P: p, Instances: []Instance{{alice, bob, other}}}},
		{"non-target on target", &Explanation{P: p, Instances: []Instance{{alice, bob, alice}}}},
	}
	for _, tc := range cases {
		if err := tc.ex.Validate(g, alice, bob); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
}
