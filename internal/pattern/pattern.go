// Package pattern implements relationship-explanation patterns and
// instances (Definitions 1 and 2 of the REX paper) together with the
// structural machinery the enumeration algorithms need: canonical forms,
// isomorphism checks, essentiality and decomposability tests, and the
// ∪f pattern-merge operator of Algorithm 3.
//
// A pattern is a small graph whose nodes are variables. Two variables are
// special: Start (always variable 0) and End (always variable 1); they
// are pinned to the queried entity pair. Edges carry knowledge-base
// relationship labels; whether an edge is directed follows from its
// label. An instance of a pattern is an assignment of knowledge-base
// entities to the pattern's variables that satisfies every edge
// constraint.
package pattern

import (
	"fmt"
	"strings"

	"rex/internal/kb"
)

// VarID indexes a variable within a pattern. Variables are dense;
// 0 is always the start target and 1 the end target.
type VarID int8

// Reserved variable positions.
const (
	Start VarID = 0
	End   VarID = 1
)

// Schema exposes the label metadata patterns need from a knowledge base.
// *kb.Graph satisfies Schema.
type Schema interface {
	LabelName(kb.LabelID) string
	LabelDirected(kb.LabelID) bool
}

// Edge is a labeled pattern edge between two variables. For directed
// labels the edge is oriented U→V; for undirected labels U ≤ V is
// maintained as a normal form.
type Edge struct {
	U, V  VarID
	Label kb.LabelID
}

// Pattern is a relationship-explanation pattern: N variables (including
// the two targets) and a set of labeled edges. Patterns are immutable
// after construction; all mutating helpers return new patterns.
type Pattern struct {
	n      int
	edges  []Edge
	schema Schema

	canon  string // lazily computed canonical encoding
	key    Key    // lazily interned 64-bit canonical key
	hasKey bool

	steps     []PathStep // lazily computed start→end walk (path patterns)
	stepsOK   bool
	stepsDone bool
}

// New constructs a pattern with n variables (n ≥ 2) and the given edges.
// Edges are normalised (undirected labels get U ≤ V), sorted, and
// de-duplicated, per the merge semantics of the paper ("if there are
// multiple edges with same label between a pair of nodes ... they are
// merged").
func New(schema Schema, n int, edges []Edge) (*Pattern, error) {
	if n < 2 {
		return nil, fmt.Errorf("pattern: need at least the two target variables, got n=%d", n)
	}
	if n > MaxVars {
		return nil, fmt.Errorf("pattern: %d variables exceeds MaxVars=%d", n, MaxVars)
	}
	norm := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("pattern: self-loop on variable %d", e.U)
		}
		if int(e.U) >= n || int(e.V) >= n || e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("pattern: edge (%d,%d) references variable outside [0,%d)", e.U, e.V, n)
		}
		if !schema.LabelDirected(e.Label) && e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		norm = append(norm, e)
	}
	insertionSortEdges(norm)
	norm = dedupEdges(norm)
	return &Pattern{n: n, edges: norm, schema: schema}, nil
}

// newInterned builds a pattern whose normal form and canonical identity
// were already computed externally (the merge scratch): edges must be
// normalised, sorted and deduped, and (canon, key) must be the interned
// canonical encoding of exactly this shape. The edge list is copied.
func newInterned(schema Schema, n int, edges []Edge, canon string, key Key) *Pattern {
	return &Pattern{
		n:      n,
		edges:  append([]Edge(nil), edges...),
		schema: schema,
		canon:  canon,
		key:    key,
		hasKey: true,
	}
}

// MaxVars bounds pattern size. The paper uses a size limit of 5; the cap
// of 12 keeps the permutation-based canonicalisation safe while leaving
// headroom for larger experiments.
const MaxVars = 12

// MustNew is New but panics on error; for static construction in tests.
func MustNew(schema Schema, n int, edges []Edge) *Pattern {
	p, err := New(schema, n, edges)
	if err != nil {
		panic(err)
	}
	return p
}

func dedupEdges(es []Edge) []Edge {
	out := es[:0]
	for i, e := range es {
		if i == 0 || e != es[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// NumVars reports the number of variables including the two targets.
// This is the paper's pattern "size" that the limit n bounds.
func (p *Pattern) NumVars() int { return p.n }

// NumEdges reports the number of distinct labeled edges.
func (p *Pattern) NumEdges() int { return len(p.edges) }

// Edges returns the normalised edge list. The slice is owned by the
// pattern and must not be modified.
func (p *Pattern) Edges() []Edge { return p.edges }

// Schema returns the label metadata source the pattern was built with.
func (p *Pattern) Schema() Schema { return p.schema }

// Degree reports the number of edges incident to a variable.
func (p *Pattern) Degree(v VarID) int {
	d := 0
	for _, e := range p.edges {
		if e.U == v || e.V == v {
			d++
		}
	}
	return d
}

// IsPath reports whether the pattern is a simple path between the
// targets: both targets have degree 1, every other variable degree 2,
// and the edge count is exactly NumVars-1. (A single direct edge between
// the targets is a path of length 1.)
func (p *Pattern) IsPath() bool {
	if len(p.edges) != p.n-1 {
		return false
	}
	if p.Degree(Start) != 1 || p.Degree(End) != 1 {
		return false
	}
	for v := VarID(2); int(v) < p.n; v++ {
		if p.Degree(v) != 2 {
			return false
		}
	}
	return p.connected()
}

// PathStep is one hop of a path pattern walked from the start target to
// the end target: the edge label and the orientation the matching
// knowledge-base half-edge must have at the hop's origin node (Out for a
// pattern edge leaving the origin, In for one entering it, Undirected
// for undirected labels). The sequence lets path instances be matched by
// a plain label-indexed walk, without the general backtracking matcher.
type PathStep struct {
	Label kb.LabelID
	Dir   kb.Dir
}

// PathSteps returns the start→end step sequence when p is a simple path
// (IsPath), or ok=false otherwise. The measure evaluator uses it to
// enumerate path instances with shared prefixes across explanations.
// Computed once and cached, like the canonical key.
func (p *Pattern) PathSteps() ([]PathStep, bool) {
	if !p.stepsDone {
		p.steps, p.stepsOK = p.computePathSteps()
		p.stepsDone = true
	}
	return p.steps, p.stepsOK
}

func (p *Pattern) computePathSteps() (steps []PathStep, ok bool) {
	if !p.IsPath() {
		return nil, false
	}
	steps = make([]PathStep, 0, p.n-1)
	cur, prev := Start, VarID(-1)
	for range p.edges {
		var next VarID
		var st PathStep
		found := false
		for _, e := range p.edges {
			var other VarID
			var outward bool // edge leaves cur
			switch {
			case e.U == cur && e.V != prev:
				other, outward = e.V, true
			case e.V == cur && e.U != prev:
				other, outward = e.U, false
			default:
				continue
			}
			st = PathStep{Label: e.Label, Dir: kb.Undirected}
			if p.schema.LabelDirected(e.Label) {
				if outward {
					st.Dir = kb.Out
				} else {
					st.Dir = kb.In
				}
			}
			next, found = other, true
			break
		}
		if !found {
			return nil, false // unreachable for a well-formed path
		}
		steps = append(steps, st)
		prev, cur = cur, next
	}
	if cur != End {
		return nil, false // unreachable for a well-formed path
	}
	return steps, true
}

// connected reports whether the pattern graph (edges undirected) is a
// single connected component containing every variable.
func (p *Pattern) connected() bool {
	if p.n == 0 {
		return true
	}
	adj := p.adjacency()
	seen := make([]bool, p.n)
	stack := []VarID{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				cnt++
				stack = append(stack, v)
			}
		}
	}
	return cnt == p.n
}

// adjacency builds an undirected adjacency list over variables (one entry
// per incident edge; parallel labels produce parallel entries).
func (p *Pattern) adjacency() [][]VarID {
	adj := make([][]VarID, p.n)
	for _, e := range p.edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	return adj
}

// String renders the pattern compactly, e.g.
// "p{3: start-[starring]->v2, end-[starring]->v2}". Directed edges use
// -[l]->, undirected -[l]-.
func (p *Pattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p{%d:", p.n)
	for i, e := range p.edges {
		if i > 0 {
			b.WriteString(",")
		}
		arrow := "-"
		if p.schema.LabelDirected(e.Label) {
			arrow = "->"
		}
		fmt.Fprintf(&b, " %s-[%s]%s%s", varName(e.U), p.schema.LabelName(e.Label), arrow, varName(e.V))
	}
	b.WriteString("}")
	return b.String()
}

func varName(v VarID) string {
	switch v {
	case Start:
		return "start"
	case End:
		return "end"
	default:
		return fmt.Sprintf("v%d", v)
	}
}

// Describe renders a multi-line, human-oriented description of the
// pattern with entity names from an instance substituted in, used by the
// CLI and examples.
func (p *Pattern) Describe(g *kb.Graph, inst Instance) string {
	var b strings.Builder
	for i, e := range p.edges {
		if i > 0 {
			b.WriteString("; ")
		}
		uname, vname := varName(e.U), varName(e.V)
		if inst != nil {
			uname = g.NodeName(inst[e.U])
			vname = g.NodeName(inst[e.V])
		}
		if p.schema.LabelDirected(e.Label) {
			fmt.Fprintf(&b, "%s --%s--> %s", uname, p.schema.LabelName(e.Label), vname)
		} else {
			fmt.Fprintf(&b, "%s --%s-- %s", uname, p.schema.LabelName(e.Label), vname)
		}
	}
	return b.String()
}
