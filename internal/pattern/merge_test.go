package pattern

import (
	"testing"

	"rex/internal/kb"
)

// winsletGraph builds the Figure 6 neighbourhood: Kate Winslet and
// Leonardo DiCaprio co-star in Titanic and Revolutionary Road; Sam
// Mendes directed Revolutionary Road and (for the same-director path)
// Jarhead, which stars DiCaprio in this test fixture.
func winsletGraph(t *testing.T) (*kb.Graph, map[string]kb.NodeID, kb.LabelID, kb.LabelID) {
	t.Helper()
	g := kb.New()
	ids := map[string]kb.NodeID{}
	for _, n := range []struct{ name, typ string }{
		{"kate", "actor"}, {"leo", "actor"}, {"mendes", "director"},
		{"titanic", "film"}, {"revroad", "film"}, {"jarhead", "film"},
	} {
		ids[n.name] = g.AddNode(n.name, n.typ)
	}
	star := g.MustLabel("starring", true)
	dir := g.MustLabel("directed_by", true)
	g.MustAddEdge(ids["titanic"], ids["kate"], star)
	g.MustAddEdge(ids["titanic"], ids["leo"], star)
	g.MustAddEdge(ids["revroad"], ids["kate"], star)
	g.MustAddEdge(ids["revroad"], ids["leo"], star)
	g.MustAddEdge(ids["revroad"], ids["mendes"], dir)
	g.MustAddEdge(ids["jarhead"], ids["leo"], star)
	g.MustAddEdge(ids["jarhead"], ids["mendes"], dir)
	g.Freeze()
	return g, ids, star, dir
}

// figure6Paths builds the two covering path explanations of Example 4/5:
// p1 the co-starring path (Figure 6(b)) and p2 the same-director path
// (Figure 6(c)): start ←star— v2 —dir→ v3 ←dir— v4 —star→ end.
func figure6Paths(t *testing.T) (*kb.Graph, map[string]kb.NodeID, *Explanation, *Explanation) {
	t.Helper()
	g, ids, star, dir := winsletGraph(t)
	kate, leo := ids["kate"], ids["leo"]
	p1 := MustNew(g, 3, []Edge{
		{U: 2, V: Start, Label: star},
		{U: 2, V: End, Label: star},
	})
	re1 := NewExplanation(p1, []Instance{
		{kate, leo, ids["titanic"]},
		{kate, leo, ids["revroad"]},
	})
	p2 := MustNew(g, 5, []Edge{
		{U: 2, V: Start, Label: star},
		{U: 2, V: 3, Label: dir},
		{U: 4, V: 3, Label: dir},
		{U: 4, V: End, Label: star},
	})
	re2 := NewExplanation(p2, []Instance{
		{kate, leo, ids["revroad"], ids["mendes"], ids["jarhead"]},
	})
	return g, ids, re1, re2
}

// TestMergeFigure6 reproduces Example 5: merging the co-starring path
// with the same-director path under the mapping that unifies the film
// variables yields the Figure 6(a) combined pattern, whose instances are
// computed by joining the covering paths' instances.
func TestMergeFigure6(t *testing.T) {
	g, ids, re1, re2 := figure6Paths(t)
	kate, leo := ids["kate"], ids["leo"]

	merged := Merge(re1, re2, 5)
	if len(merged) == 0 {
		t.Fatal("no merge results")
	}
	// The only instance-supported mapping unifies p1.v2 (the co-starred
	// film) with p2's start-side film: both bind revolutionary road. The
	// result is the 5-variable Figure 6(a) pattern: kate and leo co-star
	// in v2, which mendes (v3) directed, and mendes also directed v4
	// starring leo.
	want := MustNew(g, 5, []Edge{
		{U: 2, V: Start, Label: re1.P.Edges()[0].Label},
		{U: 2, V: End, Label: re1.P.Edges()[0].Label},
		{U: 2, V: 3, Label: re2.P.Edges()[1].Label},
		{U: 4, V: 3, Label: re2.P.Edges()[1].Label},
		{U: 4, V: End, Label: re1.P.Edges()[0].Label},
	})
	found := false
	for _, m := range merged {
		if !m.P.Minimal() {
			t.Errorf("non-minimal merge result %v", m.P)
		}
		if err := m.Validate(g, kate, leo); err != nil {
			t.Errorf("invalid merged instances: %v", err)
		}
		if m.P.Isomorphic(want) {
			found = true
			if len(m.Instances) != 1 {
				t.Errorf("Figure 6(a) pattern: %d instances, want 1", len(m.Instances))
			}
		}
	}
	if !found {
		t.Error("merge never produced the Figure 6(a) pattern")
	}
}

func TestMergeRespectsMaxVars(t *testing.T) {
	g, ids, star, dir := winsletGraph(t)
	kate, leo := ids["kate"], ids["leo"]
	p2 := MustNew(g, 4, []Edge{
		{U: 2, V: Start, Label: star},
		{U: 2, V: End, Label: star},
		{U: 2, V: 3, Label: dir},
	})
	re2 := NewExplanation(p2, []Instance{{kate, leo, ids["revroad"], ids["mendes"]}})
	for _, m := range Merge(re2, re2, 4) {
		if m.P.NumVars() > 4 {
			t.Errorf("merge produced %d vars beyond limit", m.P.NumVars())
		}
	}
}

func TestMergeNeedsFreeVariables(t *testing.T) {
	g, ids, _, _ := winsletGraph(t)
	spouse := g.MustLabel("spouse", false)
	p := MustNew(g, 2, []Edge{{U: Start, V: End, Label: spouse}})
	re := NewExplanation(p, []Instance{{ids["kate"], ids["mendes"]}})
	if got := Merge(re, re, 5); got != nil {
		t.Errorf("direct-edge explanations must not merge, got %d results", len(got))
	}
}

func TestMergeSelfIsMinimal(t *testing.T) {
	// Merging the co-starring path with itself: the only supported
	// mapping unifies the film variables (yielding a duplicate of the
	// input, discarded later by the union's duplication check) — keeping
	// them separate is decomposable and must not be produced.
	g, ids, re1, _ := figure6Paths(t)
	kate, leo := ids["kate"], ids["leo"]
	for _, m := range Merge(re1, re1, 5) {
		if !m.P.Minimal() {
			t.Errorf("merge produced non-minimal pattern %v", m.P)
		}
		if err := m.Validate(g, kate, leo); err != nil {
			t.Errorf("merge instance invalid: %v", err)
		}
		if m.P.NumVars() != 3 {
			t.Errorf("self-merge of the co-star wedge must keep 3 vars, got %v", m.P)
		}
	}
}

func TestFromPathInstanceOrientations(t *testing.T) {
	g, ids, star, dir := winsletGraph(t)
	// Path kate ←star– titanic –star→ leo at the instance level: steps
	// are half-edges from each node. kate's half-edge to titanic is In
	// (edge titanic→kate), titanic's half-edge to leo is Out.
	nodes := []kb.NodeID{ids["kate"], ids["titanic"], ids["leo"]}
	steps := []kb.HalfEdge{
		{To: ids["titanic"], Label: star, Dir: kb.In},
		{To: ids["leo"], Label: star, Dir: kb.Out},
	}
	p, inst, err := FromPathInstance(g, nodes, steps)
	if err != nil {
		t.Fatal(err)
	}
	want := MustNew(g, 3, []Edge{
		{U: 2, V: Start, Label: star}, {U: 2, V: End, Label: star},
	})
	if !p.Isomorphic(want) {
		t.Fatalf("pattern %v, want co-star wedge", p)
	}
	if inst[Start] != ids["kate"] || inst[End] != ids["leo"] || inst[2] != ids["titanic"] {
		t.Fatalf("instance %v misassigned", inst)
	}
	// Length-mismatch error path.
	if _, _, err := FromPathInstance(g, nodes, steps[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
	_ = dir
}
