package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rex/internal/kb"
)

// Patterns from the paper's figures, used as ground truth for the
// structural property predicates.

func TestEssentialityFigure5a(t *testing.T) {
	// Figure 5(a): start←star—v0→star→end plus v0→directed_by→v1. The
	// dangling director v1 (and its edge) is not on any start–end simple
	// path, so the pattern is not essential.
	g, star, _, dir := testSchema(t)
	p := MustNew(g, 4, []Edge{
		{U: 2, V: Start, Label: star},
		{U: 2, V: End, Label: star},
		{U: 2, V: 3, Label: dir},
	})
	if p.Essential() {
		t.Error("Figure 5(a) pattern reported essential")
	}
	if p.Minimal() {
		t.Error("Figure 5(a) pattern reported minimal")
	}
}

func TestDecomposabilityFigure5b(t *testing.T) {
	// Figure 5(b): a spouse edge between the targets PLUS a co-starring
	// wedge — decomposes into Figure 4(a) and 4(b).
	g, star, spouse, _ := testSchema(t)
	p := MustNew(g, 3, []Edge{
		{U: Start, V: End, Label: spouse},
		{U: 2, V: Start, Label: star},
		{U: 2, V: End, Label: star},
	})
	if !p.Essential() {
		t.Error("Figure 5(b) pattern should be essential")
	}
	if !p.Decomposable() {
		t.Error("Figure 5(b) pattern should be decomposable")
	}
	if p.Minimal() {
		t.Error("Figure 5(b) pattern reported minimal")
	}
}

func TestFigure4PatternsMinimal(t *testing.T) {
	g, star, spouse, dir := testSchema(t)
	prod := g.MustLabel("produced_by", true)
	cases := []struct {
		name string
		p    *Pattern
	}{
		{"4(a) spouse", MustNew(g, 2, []Edge{
			{U: Start, V: End, Label: spouse},
		})},
		{"4(b) co-starring", MustNew(g, 3, []Edge{
			{U: 2, V: Start, Label: star},
			{U: 2, V: End, Label: star},
		})},
		{"4(c) co-starring+producing", MustNew(g, 3, []Edge{
			{U: 2, V: Start, Label: star},
			{U: 2, V: End, Label: star},
			{U: 2, V: Start, Label: prod},
		})},
		{"4(d) same director", MustNew(g, 5, []Edge{
			{U: 2, V: Start, Label: star},
			{U: 2, V: 3, Label: dir},
			{U: 4, V: 3, Label: dir},
			{U: 4, V: End, Label: star},
		})},
	}
	for _, tc := range cases {
		if !tc.p.Essential() {
			t.Errorf("%s: not essential", tc.name)
		}
		if tc.p.Decomposable() {
			t.Errorf("%s: decomposable", tc.name)
		}
		if !tc.p.Minimal() {
			t.Errorf("%s: not minimal", tc.name)
		}
	}
}

func TestTwoDisjointPathsDecomposable(t *testing.T) {
	// Two vertex-disjoint co-starring wedges decompose into each wedge.
	g, star, _, _ := testSchema(t)
	prod := g.MustLabel("produced_by", true)
	p := MustNew(g, 4, []Edge{
		{U: 2, V: Start, Label: star},
		{U: 2, V: End, Label: star},
		{U: 3, V: Start, Label: prod},
		{U: 3, V: End, Label: prod},
	})
	if !p.Essential() {
		t.Error("two disjoint wedges are essential")
	}
	if !p.Decomposable() {
		t.Error("two disjoint wedges must be decomposable")
	}
}

func TestSharedVariableNotDecomposable(t *testing.T) {
	// The same two wedges sharing the film variable: non-decomposable.
	g, star, _, _ := testSchema(t)
	prod := g.MustLabel("produced_by", true)
	p := MustNew(g, 3, []Edge{
		{U: 2, V: Start, Label: star},
		{U: 2, V: End, Label: star},
		{U: 2, V: Start, Label: prod},
		{U: 2, V: End, Label: prod},
	})
	if p.Decomposable() {
		t.Error("wedges sharing their variable reported decomposable")
	}
	if !p.Minimal() {
		t.Error("shared-variable double wedge should be minimal")
	}
}

func TestSingleEdgeNonDecomposable(t *testing.T) {
	g, _, spouse, _ := testSchema(t)
	p := MustNew(g, 2, []Edge{{U: Start, V: End, Label: spouse}})
	if p.Decomposable() {
		t.Error("single edge decomposable")
	}
	if !p.Minimal() {
		t.Error("single edge should be minimal")
	}
}

func TestDisconnectedEndNotEssential(t *testing.T) {
	// NaiveEnum intermediate: end variable isolated.
	g, star, _, _ := testSchema(t)
	p := MustNew(g, 3, []Edge{{U: 2, V: Start, Label: star}})
	if p.Essential() {
		t.Error("pattern with unreachable end reported essential")
	}
}

// TestQuickPathsAreMinimal property-checks that every simple path pattern
// between the targets is minimal.
func TestQuickPathsAreMinimal(t *testing.T) {
	g := kb.New()
	labels := []kb.LabelID{
		g.MustLabel("d1", true), g.MustLabel("d2", true), g.MustLabel("u1", false),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		length := 1 + rng.Intn(4)
		// Build a path start → v2 → v3 → ... → end with random labels
		// and orientations.
		var nodes []VarID
		nodes = append(nodes, Start)
		for i := 0; i < length-1; i++ {
			nodes = append(nodes, VarID(2+i))
		}
		nodes = append(nodes, End)
		var edges []Edge
		for i := 0; i < length; i++ {
			u, v := nodes[i], nodes[i+1]
			if rng.Intn(2) == 0 {
				u, v = v, u
			}
			edges = append(edges, Edge{U: u, V: v, Label: labels[rng.Intn(len(labels))]})
		}
		p, err := New(g, length+1, edges)
		if err != nil {
			return false
		}
		return p.IsPath() && p.Minimal()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEssentialImpliesConnected property-checks a structural
// implication: essential patterns are connected and every variable lies
// on a start–end path, so in particular both targets are connected.
func TestQuickEssentialImpliesConnected(t *testing.T) {
	g := kb.New()
	labels := []kb.LabelID{g.MustLabel("d1", true), g.MustLabel("u1", false)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(g, labels, rng)
		if !p.Essential() {
			return true // nothing to check
		}
		return p.connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
