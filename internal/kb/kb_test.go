package kb

import (
	"testing"
)

func buildTiny(t *testing.T) (*Graph, NodeID, NodeID, NodeID, LabelID, LabelID) {
	t.Helper()
	g := New()
	a := g.AddNode("a", "person")
	b := g.AddNode("b", "person")
	c := g.AddNode("c", "film")
	star := g.MustLabel("starring", true)
	spouse := g.MustLabel("spouse", false)
	g.MustAddEdge(c, a, star)
	g.MustAddEdge(c, b, star)
	g.MustAddEdge(a, b, spouse)
	g.Freeze()
	return g, a, b, c, star, spouse
}

func TestAddNodeDeduplicates(t *testing.T) {
	g := New()
	a := g.AddNode("x", "person")
	b := g.AddNode("x", "film") // same name: returns existing, keeps type
	if a != b {
		t.Fatalf("AddNode returned %d then %d for the same name", a, b)
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
	if g.Node(a).Type != "person" {
		t.Fatalf("type overwritten to %q", g.Node(a).Type)
	}
}

func TestLabelDirectednessConflict(t *testing.T) {
	g := New()
	if _, err := g.Label("starring", true); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	if _, err := g.Label("starring", true); err != nil {
		t.Fatalf("consistent re-registration: %v", err)
	}
	if _, err := g.Label("starring", false); err == nil {
		t.Fatal("conflicting directedness accepted")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	a := g.AddNode("a", "t")
	b := g.AddNode("b", "t")
	l := g.MustLabel("rel", true)
	cases := []struct {
		name     string
		from, to NodeID
		label    LabelID
	}{
		{"from out of range", 99, b, l},
		{"to out of range", a, 99, l},
		{"negative from", -1, b, l},
		{"label out of range", a, b, 7},
		{"self loop", a, a, l},
	}
	for _, tc := range cases {
		if _, err := g.AddEdge(tc.from, tc.to, tc.label); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestAddEdgeDeduplicates(t *testing.T) {
	g := New()
	a := g.AddNode("a", "t")
	b := g.AddNode("b", "t")
	d := g.MustLabel("directed", true)
	u := g.MustLabel("undirected", false)

	ins, err := g.AddEdge(a, b, d)
	if err != nil || !ins {
		t.Fatalf("first directed insert: ins=%v err=%v", ins, err)
	}
	ins, _ = g.AddEdge(a, b, d)
	if ins {
		t.Fatal("duplicate directed edge inserted")
	}
	// Opposite orientation of a directed label is a different edge.
	ins, _ = g.AddEdge(b, a, d)
	if !ins {
		t.Fatal("reverse directed edge rejected as duplicate")
	}
	// Undirected edges deduplicate in either orientation.
	ins, _ = g.AddEdge(a, b, u)
	if !ins {
		t.Fatal("first undirected insert rejected")
	}
	ins, _ = g.AddEdge(b, a, u)
	if ins {
		t.Fatal("reversed undirected duplicate inserted")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
}

func TestHasEdgeOrientation(t *testing.T) {
	g, a, b, c, star, spouse := buildTiny(t)
	if !g.HasEdge(c, a, star) {
		t.Error("missing directed edge c→a")
	}
	if g.HasEdge(a, c, star) {
		t.Error("directed edge matched in reverse orientation")
	}
	if !g.HasEdge(a, b, spouse) || !g.HasEdge(b, a, spouse) {
		t.Error("undirected edge must match both orientations")
	}
	if g.HasEdge(a, c, spouse) {
		t.Error("nonexistent edge reported")
	}
	_ = b
}

func TestNeighborsAndDegree(t *testing.T) {
	g, a, b, c, star, spouse := buildTiny(t)
	if g.Degree(a) != 2 || g.Degree(b) != 2 || g.Degree(c) != 2 {
		t.Fatalf("degrees = %d,%d,%d want 2,2,2", g.Degree(a), g.Degree(b), g.Degree(c))
	}
	var sawStar, sawSpouse bool
	for _, he := range g.Neighbors(a) {
		switch {
		case he.Label == star && he.Dir == In && he.To == c:
			sawStar = true
		case he.Label == spouse && he.Dir == Undirected && he.To == b:
			sawSpouse = true
		}
	}
	if !sawStar || !sawSpouse {
		t.Errorf("half-edge views wrong: star=%v spouse=%v", sawStar, sawSpouse)
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g, _, _, _, _, _ := buildTiny(t)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("Edges() returned %d, want 3", len(es))
	}
	for i := 1; i < len(es); i++ {
		a, b := es[i-1], es[i]
		if a.From > b.From || (a.From == b.From && a.To > b.To) {
			t.Fatalf("edges not sorted at %d: %v then %v", i, a, b)
		}
	}
}

func TestFreezeDeterminism(t *testing.T) {
	build := func() *Graph {
		g := New()
		names := []string{"n0", "n1", "n2", "n3", "n4"}
		for _, n := range names {
			g.AddNode(n, "t")
		}
		l := g.MustLabel("r", true)
		// Insert in a scrambled order.
		g.MustAddEdge(3, 1, l)
		g.MustAddEdge(0, 4, l)
		g.MustAddEdge(0, 2, l)
		g.MustAddEdge(0, 1, l)
		g.Freeze()
		return g
	}
	g1, g2 := build(), build()
	for id := NodeID(0); int(id) < g1.NumNodes(); id++ {
		n1, n2 := g1.Neighbors(id), g2.Neighbors(id)
		if len(n1) != len(n2) {
			t.Fatalf("node %d: neighbor counts differ", id)
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatalf("node %d: neighbor %d differs: %v vs %v", id, i, n1[i], n2[i])
			}
		}
	}
	if !g1.Frozen() {
		t.Error("graph not marked frozen")
	}
}

func TestMutationUnfreezes(t *testing.T) {
	g, _, _, _, star, _ := buildTiny(t)
	if !g.Frozen() {
		t.Fatal("expected frozen after buildTiny")
	}
	d := g.AddNode("d", "person")
	if g.Frozen() {
		t.Fatal("AddNode should unfreeze")
	}
	g.Freeze()
	g.MustAddEdge(NodeID(2), d, star)
	if g.Frozen() {
		t.Fatal("AddEdge should unfreeze")
	}
}

func TestNodesOfType(t *testing.T) {
	g, a, b, c, _, _ := buildTiny(t)
	persons := g.NodesOfType("person")
	if len(persons) != 2 || persons[0] != a || persons[1] != b {
		t.Fatalf("persons = %v, want [%d %d]", persons, a, b)
	}
	films := g.NodesOfType("film")
	if len(films) != 1 || films[0] != c {
		t.Fatalf("films = %v", films)
	}
	if got := g.NodesOfType("nope"); got != nil {
		t.Fatalf("unknown type returned %v", got)
	}
}

func TestStats(t *testing.T) {
	g, _, _, _, _, _ := buildTiny(t)
	s := g.Stats()
	if s.Nodes != 3 || s.Edges != 3 || s.Labels != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxDegree != 2 || s.AvgDegree != 2 {
		t.Fatalf("degree stats = %+v", s)
	}
}

func TestLookupsOnMissing(t *testing.T) {
	g := New()
	if g.NodeByName("ghost") != InvalidNode {
		t.Error("NodeByName on empty graph")
	}
	if g.LabelByName("ghost") != InvalidLabel {
		t.Error("LabelByName on empty graph")
	}
	if g.NodeName(-1) == "" || g.LabelName(-1) == "" {
		t.Error("placeholder names must be non-empty")
	}
}

func TestDirString(t *testing.T) {
	if Out.String() != "out" || In.String() != "in" || Undirected.String() != "undirected" {
		t.Error("Dir.String basics")
	}
	if Dir(9).String() == "" {
		t.Error("unknown Dir must render something")
	}
}
