package kb

import (
	"testing"
)

func TestCloneIsDeep(t *testing.T) {
	g, a, b, c, star, spouse := buildTiny(t)
	cl := g.Clone()
	if cl.Frozen() {
		t.Error("clone should start unfrozen")
	}
	if cl.NumNodes() != g.NumNodes() || cl.NumEdges() != g.NumEdges() || cl.NumLabels() != g.NumLabels() {
		t.Fatalf("clone counts = (%d,%d,%d), want (%d,%d,%d)",
			cl.NumNodes(), cl.NumEdges(), cl.NumLabels(),
			g.NumNodes(), g.NumEdges(), g.NumLabels())
	}

	// Mutating the clone must leave the original untouched.
	d := cl.AddNode("d", "person")
	cl.MustAddEdge(a, d, spouse)
	if _, err := cl.RemoveEdge(c, b, star); err != nil {
		t.Fatal(err)
	}
	if err := cl.SetNodeType(b, "robot"); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Errorf("original mutated: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(c, b, star) {
		t.Error("original lost edge removed from clone")
	}
	if g.Node(b).Type != "person" {
		t.Errorf("original node type = %q, want person", g.Node(b).Type)
	}
	if g.NodeByName("d") != InvalidNode {
		t.Error("original sees node added to clone")
	}

	cl.Freeze()
	if !cl.HasEdge(a, d, spouse) || cl.HasEdge(c, b, star) {
		t.Error("clone mutations lost")
	}
}

func TestCloneFingerprintMatchesOriginal(t *testing.T) {
	g, _, _, _, _, _ := buildTiny(t)
	cl := g.Clone()
	cl.Freeze()
	if g.Fingerprint() == "" {
		t.Fatal("empty fingerprint")
	}
	if cl.Fingerprint() != g.Fingerprint() {
		t.Errorf("unmutated clone fingerprint %s != original %s", cl.Fingerprint(), g.Fingerprint())
	}
}

func TestRemoveEdgeDirected(t *testing.T) {
	g, a, _, c, star, _ := buildTiny(t)
	// Wrong orientation: directed c→a cannot be removed as a→c.
	if ok, err := g.RemoveEdge(a, c, star); err != nil || ok {
		t.Fatalf("reverse orientation: removed=%v err=%v, want false nil", ok, err)
	}
	ok, err := g.RemoveEdge(c, a, star)
	if err != nil || !ok {
		t.Fatalf("removed=%v err=%v, want true nil", ok, err)
	}
	g.Freeze()
	if g.HasEdge(c, a, star) {
		t.Error("edge still present after removal")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if got := len(g.NeighborsLabeled(c, star)); got != 1 {
		t.Errorf("c has %d starring half-edges, want 1", got)
	}
	// Removing again is a no-op.
	if ok, err := g.RemoveEdge(c, a, star); err != nil || ok {
		t.Errorf("second removal: removed=%v err=%v, want false nil", ok, err)
	}
}

func TestRemoveEdgeUndirectedEitherOrientation(t *testing.T) {
	g, a, b, _, _, spouse := buildTiny(t)
	// The spouse edge was added as (a, b); removing as (b, a) must work.
	ok, err := g.RemoveEdge(b, a, spouse)
	if err != nil || !ok {
		t.Fatalf("removed=%v err=%v, want true nil", ok, err)
	}
	g.Freeze()
	if g.HasEdge(a, b, spouse) || g.HasEdge(b, a, spouse) {
		t.Error("undirected edge still present after removal")
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Errorf("degrees = %d/%d, want 1/1", g.Degree(a), g.Degree(b))
	}
}

func TestRemoveEdgeValidation(t *testing.T) {
	g, a, _, _, star, _ := buildTiny(t)
	if _, err := g.RemoveEdge(99, a, star); err == nil {
		t.Error("out-of-range from accepted")
	}
	if _, err := g.RemoveEdge(a, -1, star); err == nil {
		t.Error("out-of-range to accepted")
	}
	if _, err := g.RemoveEdge(a, a, 99); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestSetNodeType(t *testing.T) {
	g, a, _, _, _, _ := buildTiny(t)
	if err := g.SetNodeType(a, "director"); err != nil {
		t.Fatal(err)
	}
	if g.Frozen() {
		t.Error("SetNodeType must unfreeze")
	}
	g.Freeze()
	if g.Node(a).Type != "director" {
		t.Errorf("type = %q, want director", g.Node(a).Type)
	}
	persons := g.NodesOfType("person")
	if len(persons) != 1 {
		t.Errorf("NodesOfType(person) = %v after retype, want 1 node", persons)
	}
	if len(g.NodesOfType("director")) != 1 {
		t.Error("type index missing retyped node")
	}
	if err := g.SetNodeType(99, "x"); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestFingerprintTracksContent(t *testing.T) {
	g, a, b, _, _, spouse := buildTiny(t)
	fp1 := g.Fingerprint()
	if fp1 == "" {
		t.Fatal("empty fingerprint")
	}

	// Identical build history hashes identically.
	g2, _, _, _, _, _ := buildTiny(t)
	if g2.Fingerprint() != fp1 {
		t.Errorf("identical graphs hash %s vs %s", g2.Fingerprint(), fp1)
	}

	// Registering a label unfreezes and changes the hash: labels are
	// hashed content even before any edge uses them.
	g2.MustLabel("directed_by", true)
	if g2.Frozen() {
		t.Error("Label left the graph frozen")
	}
	g2.Freeze()
	if g2.Fingerprint() == fp1 {
		t.Error("fingerprint unchanged after label registration")
	}

	// Every mutation kind changes the hash.
	if _, err := g.RemoveEdge(a, b, spouse); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	fp2 := g.Fingerprint()
	if fp2 == fp1 {
		t.Error("fingerprint unchanged after edge removal")
	}
	if err := g.SetNodeType(a, "director"); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	if g.Fingerprint() == fp2 {
		t.Error("fingerprint unchanged after retype")
	}
}
