package kb

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTSV hardens the TSV parser: the live subsystem's delta path
// (POST /admin/delta in cmd/rexserve) feeds attacker-controlled input
// into this record syntax, so malformed bytes must produce an error,
// never a panic. On accepted input the parsed graph must be usable and
// survive a write/re-read round trip.
func FuzzReadTSV(f *testing.F) {
	seeds := []string{
		"",
		"# just a comment\n",
		"node\ta\tperson\nnode\tb\tperson\nlabel\tknows\tU\nedge\ta\tb\tknows\n",
		"node\ta\tperson\nlabel\tdirected_by\tD\n",
		"node\ta\tperson\nnode\ta\tfilm\n",         // duplicate name keeps first type
		"node\ta\n",                                // wrong field count
		"node\ta\tb\tc\n",                          // too many fields
		"label\tx\tZ\n",                            // bad direction
		"label\tx\tD\nlabel\tx\tU\n",               // directedness conflict
		"edge\ta\tb\tknows\n",                      // undeclared everything
		"node\ta\tt\nlabel\tl\tU\nedge\ta\ta\tl\n", // self-loop
		"bogus\trecord\n",
		"\t\t\t\n",
		"node\t\t\n", // empty name and type
		"node\ta\tt\r\n",
		strings.Repeat("x", 4096) + "\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadTSV(strings.NewReader(in))
		if err != nil {
			if g != nil {
				t.Fatal("non-nil graph returned alongside an error")
			}
			return
		}
		// Accepted input must yield a usable, frozen graph.
		if !g.Frozen() {
			t.Fatal("ReadTSV returned an unfrozen graph")
		}
		st := g.Stats()
		if st.Edges > 0 && st.Nodes == 0 {
			t.Fatalf("impossible stats: %+v", st)
		}
		// Round trip: what we serialise must parse back to the same
		// content. Carriage returns are excluded — bufio.ScanLines
		// strips a trailing \r, so names ending in \r do not survive
		// re-serialisation by design.
		if strings.ContainsRune(in, '\r') {
			return
		}
		var buf bytes.Buffer
		if err := g.WriteTSV(&buf); err != nil {
			t.Fatalf("WriteTSV: %v", err)
		}
		g2, err := ReadTSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of serialised graph failed: %v\ninput: %q\nserialised: %q", err, in, buf.String())
		}
		if g2.Fingerprint() != g.Fingerprint() {
			t.Fatalf("round trip changed content: %s -> %s\ninput: %q", g.Fingerprint(), g2.Fingerprint(), in)
		}
	})
}
