package kb

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// The TSV wire format is line-oriented so huge knowledge bases stream:
//
//	# comment
//	node\t<name>\t<type>
//	label\t<name>\t<D|U>
//	edge\t<from-name>\t<to-name>\t<label-name>
//
// Labels must be declared before the first edge that uses them; nodes
// must be declared before edges reference them. Node and label names may
// contain any character except tab and newline.

// WriteTSV serialises the graph in the TSV wire format. Output is
// deterministic: nodes in ID order, labels in registration order, edges
// sorted by (from, to, label).
func (g *Graph) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# rex knowledge base: %d nodes, %d edges, %d labels\n",
		g.NumNodes(), g.NumEdges(), g.NumLabels())
	for _, n := range g.nodes {
		fmt.Fprintf(bw, "node\t%s\t%s\n", n.Name, n.Type)
	}
	for i, name := range g.labels {
		d := "U"
		if g.labelDirected[i] {
			d = "D"
		}
		fmt.Fprintf(bw, "label\t%s\t%s\n", name, d)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "edge\t%s\t%s\t%s\n",
			g.NodeName(e.From), g.NodeName(e.To), g.LabelName(e.Label))
	}
	return bw.Flush()
}

// SaveTSV writes the graph to a file in the TSV wire format.
func (g *Graph) SaveTSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteTSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTSV parses a graph from the TSV wire format.
func ReadTSV(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "node":
			if len(fields) != 3 {
				return nil, fmt.Errorf("kb: line %d: node wants 2 fields, got %d", lineNo, len(fields)-1)
			}
			g.AddNode(fields[1], fields[2])
		case "label":
			if len(fields) != 3 {
				return nil, fmt.Errorf("kb: line %d: label wants 2 fields, got %d", lineNo, len(fields)-1)
			}
			var directed bool
			switch fields[2] {
			case "D":
				directed = true
			case "U":
				directed = false
			default:
				return nil, fmt.Errorf("kb: line %d: label direction must be D or U, got %q", lineNo, fields[2])
			}
			if _, err := g.Label(fields[1], directed); err != nil {
				return nil, fmt.Errorf("kb: line %d: %v", lineNo, err)
			}
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("kb: line %d: edge wants 3 fields, got %d", lineNo, len(fields)-1)
			}
			from := g.NodeByName(fields[1])
			if from == InvalidNode {
				return nil, fmt.Errorf("kb: line %d: unknown node %q", lineNo, fields[1])
			}
			to := g.NodeByName(fields[2])
			if to == InvalidNode {
				return nil, fmt.Errorf("kb: line %d: unknown node %q", lineNo, fields[2])
			}
			label := g.LabelByName(fields[3])
			if label == InvalidLabel {
				return nil, fmt.Errorf("kb: line %d: unknown label %q", lineNo, fields[3])
			}
			if _, err := g.AddEdge(from, to, label); err != nil {
				return nil, fmt.Errorf("kb: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("kb: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g.Freeze()
	return g, nil
}

// LoadTSV reads a graph from a file in the TSV wire format.
func LoadTSV(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTSV(f)
}
