package kb

import (
	"fmt"
	"hash/fnv"
)

// This file holds the mutation and snapshot primitives behind the live
// knowledge-base subsystem (internal/live): deep cloning, edge removal,
// entity retyping and content fingerprinting. The copy-apply-swap
// lifecycle never mutates a served graph — deltas are replayed onto a
// Clone, which is then frozen and atomically swapped in.

// Clone returns a deep, unfrozen copy of the graph sharing no mutable
// state with the original. The original may keep serving reads while
// the clone is mutated; call Freeze on the clone before querying it
// concurrently.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes:    append([]Node(nil), g.nodes...),
		numEdges: g.numEdges,
	}
	c.byName = make(map[string]NodeID, len(g.byName))
	for k, v := range g.byName {
		c.byName[k] = v
	}
	c.labels = append([]string(nil), g.labels...)
	c.labelDirected = append([]bool(nil), g.labelDirected...)
	c.labelIDs = make(map[string]LabelID, len(g.labelIDs))
	for k, v := range g.labelIDs {
		c.labelIDs[k] = v
	}
	if g.frozen {
		// A frozen graph holds only the CSR arrays; materialise the
		// clone's build-time state from them. The original stays frozen
		// and keeps serving reads.
		c.adj = g.adjFromCSR()
		c.edgeSet = edgeSetFromAdj(c.adj)
		return c
	}
	c.adj = make([][]HalfEdge, len(g.adj))
	for i := range g.adj {
		c.adj[i] = append([]HalfEdge(nil), g.adj[i]...)
	}
	c.edgeSet = make(map[edgeKey]struct{}, len(g.edgeSet))
	for k := range g.edgeSet {
		c.edgeSet[k] = struct{}{}
	}
	return c
}

// SetNodeType changes the entity type of an existing node. It unfreezes
// the graph; the entity-type index is rebuilt on the next Freeze.
func (g *Graph) SetNodeType(id NodeID, typ string) error {
	if id < 0 || int(id) >= len(g.nodes) {
		return fmt.Errorf("kb: SetNodeType: node %d out of range", id)
	}
	g.thaw()
	g.nodes[id].Type = typ
	return nil
}

// RemoveEdge deletes the edge (from, to, label). For directed labels the
// orientation from→to is required; for undirected labels either
// orientation matches — mirroring HasEdge. It reports whether an edge
// was actually removed and unfreezes the graph when it was.
func (g *Graph) RemoveEdge(from, to NodeID, label LabelID) (bool, error) {
	if int(from) >= len(g.nodes) || from < 0 {
		return false, fmt.Errorf("kb: RemoveEdge: from node %d out of range", from)
	}
	if int(to) >= len(g.nodes) || to < 0 {
		return false, fmt.Errorf("kb: RemoveEdge: to node %d out of range", to)
	}
	if int(label) >= len(g.labels) || label < 0 {
		return false, fmt.Errorf("kb: RemoveEdge: label %d out of range", label)
	}
	directed := g.labelDirected[label]
	key := edgeKey{from, to, label}
	if !directed && from > to {
		key = edgeKey{to, from, label}
	}
	// Existence check before thawing: a miss must not unfreeze the graph.
	if !g.HasEdge(from, to, label) {
		return false, nil
	}
	g.thaw()
	delete(g.edgeSet, key)
	if directed {
		g.adj[from] = removeHalf(g.adj[from], HalfEdge{To: to, Label: label, Dir: Out})
		g.adj[to] = removeHalf(g.adj[to], HalfEdge{To: from, Label: label, Dir: In})
	} else {
		g.adj[from] = removeHalf(g.adj[from], HalfEdge{To: to, Label: label, Dir: Undirected})
		g.adj[to] = removeHalf(g.adj[to], HalfEdge{To: from, Label: label, Dir: Undirected})
	}
	g.numEdges--
	return true, nil
}

// removeHalf deletes the first occurrence of he from list, preserving
// the order of the remaining entries.
func removeHalf(list []HalfEdge, he HalfEdge) []HalfEdge {
	for i, x := range list {
		if x == he {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// Fingerprint returns a 16-hex-digit FNV-1a content hash over the
// graph's nodes (name, type), labels (name, directedness) and edges.
// Two snapshots built through the same insertion history hash equal iff
// their content is equal, so a swap that changed anything is observable
// through /stats without diffing graphs. On a frozen graph the value is
// precomputed by Freeze; on an unfrozen graph it is computed on the
// spot.
func (g *Graph) Fingerprint() string {
	if g.frozen {
		return g.fp
	}
	return g.fingerprint()
}

func (g *Graph) fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%d\x00%d\x00", g.NumNodes(), g.NumEdges(), g.NumLabels())
	for _, n := range g.nodes {
		fmt.Fprintf(h, "n\x00%s\x00%s\x00", n.Name, n.Type)
	}
	for i, name := range g.labels {
		fmt.Fprintf(h, "l\x00%s\x00%v\x00", name, g.labelDirected[i])
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(h, "e\x00%s\x00%s\x00%s\x00",
			g.NodeName(e.From), g.NodeName(e.To), g.LabelName(e.Label))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
