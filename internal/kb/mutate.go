package kb

import (
	"fmt"
	"hash/fnv"
)

// This file holds the mutation and snapshot primitives behind the live
// knowledge-base subsystem (internal/live): deep cloning, edge removal,
// entity retyping and content fingerprinting. The copy-apply-swap
// lifecycle never mutates a served graph — deltas are replayed onto a
// Clone, which is then frozen and atomically swapped in.

// Clone returns a deep, unfrozen copy of the graph sharing no mutable
// state with the original. The original may keep serving reads while
// the clone is mutated; call Freeze on the clone before querying it
// concurrently.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes:    append([]Node(nil), g.nodes...),
		numEdges: g.numEdges,
	}
	c.byName = make(map[string]NodeID, len(g.byName))
	for k, v := range g.byName {
		c.byName[k] = v
	}
	c.labels = append([]string(nil), g.labels...)
	c.labelDirected = append([]bool(nil), g.labelDirected...)
	c.labelIDs = make(map[string]LabelID, len(g.labelIDs))
	for k, v := range g.labelIDs {
		c.labelIDs[k] = v
	}
	if g.frozen {
		// A frozen graph holds only the CSR arrays; materialise the
		// clone's build-time state from them. The original stays frozen
		// and keeps serving reads. An overlay generation's shared name
		// index lacks the nodes added since the base freeze — fold its
		// additions in so the clone's index is complete.
		c.adj = g.adjFromCSR()
		c.edgeSet = edgeSetFromAdj(c.adj)
		if g.ov != nil {
			for name, id := range g.ov.addedByName {
				c.byName[name] = id
			}
		}
		return c
	}
	c.adj = make([][]HalfEdge, len(g.adj))
	for i := range g.adj {
		c.adj[i] = append([]HalfEdge(nil), g.adj[i]...)
	}
	c.edgeSet = make(map[edgeKey]struct{}, len(g.edgeSet))
	for k := range g.edgeSet {
		c.edgeSet[k] = struct{}{}
	}
	return c
}

// SetNodeType changes the entity type of an existing node. It unfreezes
// the graph; the entity-type index is rebuilt on the next Freeze.
func (g *Graph) SetNodeType(id NodeID, typ string) error {
	if id < 0 || int(id) >= len(g.nodes) {
		return fmt.Errorf("kb: SetNodeType: node %d out of range", id)
	}
	g.thaw()
	g.nodes[id].Type = typ
	return nil
}

// RemoveEdge deletes the edge (from, to, label). For directed labels the
// orientation from→to is required; for undirected labels either
// orientation matches — mirroring HasEdge. It reports whether an edge
// was actually removed and unfreezes the graph when it was.
func (g *Graph) RemoveEdge(from, to NodeID, label LabelID) (bool, error) {
	if int(from) >= len(g.nodes) || from < 0 {
		return false, fmt.Errorf("kb: RemoveEdge: from node %d out of range", from)
	}
	if int(to) >= len(g.nodes) || to < 0 {
		return false, fmt.Errorf("kb: RemoveEdge: to node %d out of range", to)
	}
	if int(label) >= len(g.labels) || label < 0 {
		return false, fmt.Errorf("kb: RemoveEdge: label %d out of range", label)
	}
	directed := g.labelDirected[label]
	key := edgeKey{from, to, label}
	if !directed && from > to {
		key = edgeKey{to, from, label}
	}
	// Existence check before thawing: a miss must not unfreeze the graph.
	if !g.HasEdge(from, to, label) {
		return false, nil
	}
	g.thaw()
	delete(g.edgeSet, key)
	if directed {
		g.adj[from] = removeHalf(g.adj[from], HalfEdge{To: to, Label: label, Dir: Out})
		g.adj[to] = removeHalf(g.adj[to], HalfEdge{To: from, Label: label, Dir: In})
	} else {
		g.adj[from] = removeHalf(g.adj[from], HalfEdge{To: to, Label: label, Dir: Undirected})
		g.adj[to] = removeHalf(g.adj[to], HalfEdge{To: from, Label: label, Dir: Undirected})
	}
	g.numEdges--
	return true, nil
}

// removeHalf deletes the first occurrence of he from list, preserving
// the order of the remaining entries.
func removeHalf(list []HalfEdge, he HalfEdge) []HalfEdge {
	for i, x := range list {
		if x == he {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// Fingerprint returns a 16-hex-digit content hash over the graph's
// nodes (name, type), labels (name, directedness) and edges. Two
// snapshots hash equal iff their content is equal, regardless of how
// they were built, so a swap that changed anything is observable
// through /stats without diffing graphs. On a frozen graph the value is
// precomputed by Freeze; on an unfrozen graph it is computed on the
// spot.
//
// The hash is the XOR of one FNV-1a digest per content item, mixed with
// the (node, edge, label) counts. XOR makes it order-independent and
// incrementally maintainable: applying a delta updates the hash in
// O(delta) by XOR-ing each changed item in or out, which is how overlay
// generations (overlay.go) fingerprint without touching the whole
// graph. A compacted or re-frozen graph therefore reproduces the
// overlay's fingerprint exactly. This is a change detector, not a
// cryptographic commitment — like the sequential FNV-1a it replaces.
func (g *Graph) Fingerprint() string {
	if g.frozen {
		return g.fp
	}
	return g.fingerprint()
}

func (g *Graph) fingerprint() string {
	return fpString(g.NumNodes(), g.NumEdges(), g.NumLabels(), g.contentXor())
}

// contentXor folds every content item of the graph into the
// XOR-combinable hash. Items are unique — node names are unique, labels
// are interned once, and the edge set holds each (pair, label) once per
// orientation — so the fold is a well-defined set hash.
func (g *Graph) contentXor() uint64 {
	var x uint64
	for i := range g.nodes {
		x ^= nodeHash(g.nodes[i].Name, g.nodes[i].Type)
	}
	for i, name := range g.labels {
		x ^= labelHash(name, g.labelDirected[i])
	}
	for _, e := range g.Edges() {
		x ^= edgeHash(g.NodeName(e.From), g.NodeName(e.To), g.LabelName(e.Label))
	}
	return x
}

// fpString renders the served fingerprint: the item XOR mixed with the
// content counts through one final FNV-1a pass.
func fpString(nodes, edges, labels int, xor uint64) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%d\x00%d\x00%016x", nodes, edges, labels, xor)
	return fmt.Sprintf("%016x", h.Sum64())
}

// itemHash is the FNV-1a digest of one tagged content item. The tag
// byte keeps node, label and edge encodings disjoint; parts are
// NUL-terminated like the legacy sequential encoding.
func itemHash(tag byte, parts ...string) uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	mix(tag)
	mix(0)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			mix(p[i])
		}
		mix(0)
	}
	return h
}

func nodeHash(name, typ string) uint64 { return itemHash('n', name, typ) }

func labelHash(name string, directed bool) uint64 {
	if directed {
		return itemHash('l', name, "true")
	}
	return itemHash('l', name, "false")
}

// edgeHash digests one edge by endpoint names in canonical orientation:
// directed edges as stored, undirected edges with the lower node ID
// first — the order Graph.Edges reports.
func edgeHash(fromName, toName, labelName string) uint64 {
	return itemHash('e', fromName, toName, labelName)
}
