package kb

import (
	"fmt"
	"sort"
)

// This file implements overlay generations: frozen graphs that layer a
// small per-node patch set over an immutable frozen base, so a delta of
// d operations produces the next queryable snapshot in O(d · degree)
// instead of the O(graph) Clone+Freeze rebuild.
//
// An overlay generation is a real *Graph — every read accessor answers
// byte-identically to a full re-freeze of the same content (property
// tested) — but its CSR arrays are aliased from the base. Only nodes
// whose adjacency actually changed get materialised spans, looked up
// through a sparse page table. Stacked deltas produce stacked overlay
// generations over the same base until Compact folds everything back
// into a plain graph with fresh CSR arrays.
//
// Overlay generations follow the same immutability rule as every frozen
// graph: after the builder returns, the generation is never mutated and
// is safe for unlimited concurrent readers. Mutating it through the
// ordinary mutators detaches it from the base first (see thaw), so the
// base keeps serving other generations undisturbed.

const (
	ovPageShift = 9 // 512 nodes per page: a touched page costs 4KB
	ovPageSize  = 1 << ovPageShift
	ovPageMask  = ovPageSize - 1
)

// ovNode is one materialised overlay node: its full half-edge span in
// both CSR sort orders, replacing the base spans entirely. An empty
// ovNode (all fields nil) represents a node with no edges — every node
// added after the base freeze has one, so reads never index the base
// offset arrays out of range.
type ovNode struct {
	csr      []HalfEdge  // sorted by (To, Label, Dir), like Graph.csr spans
	labelCSR []HalfEdge  // sorted by (Label, To, Dir), like Graph.labelCSR spans
	spans    []labelSpan // per-label runs; offsets relative to labelCSR
}

// ovPage is one fixed-size page of the overlay node directory.
type ovPage []*ovNode

// overlay is the patch set of one overlay generation. All fields are
// immutable after the builder returns; pages untouched by later
// generations are shared between them.
type overlay struct {
	base  *Graph // plain frozen root whose CSR arrays the generation aliases
	depth int    // stacked overlay generations since the last plain freeze

	pages []ovPage // node directory, indexed by NodeID >> ovPageShift

	// Cumulative node bookkeeping since the base freeze. addedByName
	// complements the shared base name index; retyped maps base nodes
	// whose current type differs from their base type (so base type
	// lists can be filtered on read); extraByType lists, per type and in
	// ID order, the added and retyped-in nodes missing from the base
	// type lists.
	addedByName map[string]NodeID
	retyped     map[NodeID]string
	extraByType map[string][]NodeID

	halfEdges int // half-edges materialised across all ovNodes
}

// node returns the materialised overlay node for id, or nil when the
// base spans are authoritative.
func (ov *overlay) node(id NodeID) *ovNode {
	p := ov.pages[uint32(id)>>ovPageShift]
	if p == nil {
		return nil
	}
	return p[uint32(id)&ovPageMask]
}

// labeled is NeighborsLabeled over a materialised node: binary search
// the per-label runs, exactly like the base span search.
func (on *ovNode) labeled(label LabelID) []HalfEdge {
	spans := on.spans
	lo, hi := 0, len(spans)
	for lo < hi {
		mid := (lo + hi) / 2
		if spans[mid].label < label {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(spans) && spans[lo].label == label {
		sp := spans[lo]
		return on.labelCSR[sp.off : sp.off+sp.n]
	}
	return nil
}

// nodesOfType answers NodesOfType for an overlay generation: the base
// type list filtered by retypes, merged in ID order with the
// generation's extra list.
func (ov *overlay) nodesOfType(typ string) []NodeID {
	baseList := ov.base.byType[typ]
	extra := ov.extraByType[typ]
	out := make([]NodeID, 0, len(baseList)+len(extra))
	for _, id := range baseList {
		// A base node present in retyped has moved to another type: if
		// its current type were typ it would not appear in this base
		// list at all.
		if _, moved := ov.retyped[id]; moved {
			continue
		}
		for len(extra) > 0 && extra[0] < id {
			out = append(out, extra[0])
			extra = extra[1:]
		}
		out = append(out, id)
	}
	return append(out, extra...)
}

// OverlayInfo describes the overlay state of a frozen graph, for
// compaction policy and observability. A plain graph reports the zero
// value.
type OverlayInfo struct {
	// Depth counts stacked overlay generations over the plain base
	// (0 for a plain graph, 1 after the first O(delta) apply, ...).
	Depth int
	// HalfEdges counts the half-edges materialised in overlay nodes —
	// the memory the overlay costs on top of the shared base arrays.
	HalfEdges int
	// Ratio is HalfEdges relative to the base CSR size; compaction
	// triggers when it grows past a threshold.
	Ratio float64
}

// Overlay reports the graph's overlay state.
func (g *Graph) Overlay() OverlayInfo {
	if g.ov == nil {
		return OverlayInfo{}
	}
	info := OverlayInfo{Depth: g.ov.depth, HalfEdges: g.ov.halfEdges}
	if b := len(g.ov.base.csr); b > 0 {
		info.Ratio = float64(info.HalfEdges) / float64(b)
	} else if info.HalfEdges > 0 {
		info.Ratio = 1
	}
	return info
}

// Compact folds an overlay generation into a plain frozen graph with
// fresh CSR arrays. Per-node spans are already in final sort order, so
// the flat arrays are straight concatenations — no comparison sorts, no
// adjacency-list or edge-set materialisation — and the content
// fingerprint carries over unchanged. Cost is O(nodes + edges); a plain
// graph is returned unchanged.
func (g *Graph) Compact() *Graph {
	if g.ov == nil || !g.frozen {
		return g
	}
	n := len(g.nodes)
	c := &Graph{
		nodes:         append([]Node(nil), g.nodes...),
		labels:        append([]string(nil), g.labels...),
		labelDirected: append([]bool(nil), g.labelDirected...),
		numEdges:      g.numEdges,
		frozen:        true,
		xorFP:         g.xorFP,
		fp:            g.fp,
	}
	c.labelIDs = make(map[string]LabelID, len(g.labelIDs))
	for k, v := range g.labelIDs {
		c.labelIDs[k] = v
	}
	c.byName = make(map[string]NodeID, n)
	for i := range c.nodes {
		c.byName[c.nodes[i].Name] = c.nodes[i].ID
	}
	total := 0
	for i := 0; i < n; i++ {
		total += g.Degree(NodeID(i))
	}
	c.csrOff = make([]int32, n+1)
	c.csr = make([]HalfEdge, 0, total)
	for i := 0; i < n; i++ {
		c.csr = append(c.csr, g.Neighbors(NodeID(i))...)
		c.csrOff[i+1] = int32(len(c.csr))
	}
	c.deriveLabelView()
	c.buildTypeIndex()
	return c
}

// OverlayBuilder accumulates one delta against a frozen graph and
// materialises it as the next overlay generation. The source graph —
// plain or itself an overlay generation — is never modified and keeps
// serving reads throughout.
//
// The builder mirrors the Graph mutators' semantics exactly: re-adding
// an existing node or edge and removing an absent edge are no-ops, and
// validation errors carry the same messages as the mutate path, so the
// delta layer behaves identically whichever apply path it takes.
type OverlayBuilder struct {
	src  *Graph // frozen source generation
	base *Graph // plain frozen root (src, or src's overlay base)

	addNodes  []Node            // nodes added by this delta, IDs from src.NumNodes()
	addByName map[string]NodeID // name index over addNodes
	retypes   map[NodeID]string // pending type changes vs. the src view

	addLabels   []string
	addLabelDir []bool
	addLabelIDs map[string]LabelID

	// edges holds the desired post-delta state of every edge the delta
	// touched, keyed canonically; an entry exists iff that state differs
	// from src, so cancelling operations restore src sharing.
	edges    map[edgeKey]bool
	touched  map[NodeID]struct{} // endpoints of changed edges
	numEdges int                 // running edge count of the new generation
	xor      uint64              // running content-hash delta vs. src
}

// NewOverlayBuilder starts a delta against a frozen graph. It fails on
// an unfrozen graph: overlays patch CSR spans, which only exist frozen.
func NewOverlayBuilder(src *Graph) (*OverlayBuilder, error) {
	if src == nil {
		return nil, fmt.Errorf("kb: NewOverlayBuilder: nil graph")
	}
	if !src.frozen {
		return nil, fmt.Errorf("kb: NewOverlayBuilder: graph is not frozen")
	}
	base := src
	if src.ov != nil {
		base = src.ov.base
	}
	return &OverlayBuilder{
		src:         src,
		base:        base,
		addByName:   make(map[string]NodeID),
		retypes:     make(map[NodeID]string),
		addLabelIDs: make(map[string]LabelID),
		edges:       make(map[edgeKey]bool),
		touched:     make(map[NodeID]struct{}),
		numEdges:    src.NumEdges(),
	}, nil
}

// NumNodes reports the node count of the pending generation.
func (b *OverlayBuilder) NumNodes() int { return b.src.NumNodes() + len(b.addNodes) }

// NumEdges reports the edge count of the pending generation.
func (b *OverlayBuilder) NumEdges() int { return b.numEdges }

// NodeByName resolves a name against the source graph plus this
// delta's additions, returning InvalidNode when absent.
func (b *OverlayBuilder) NodeByName(name string) NodeID {
	if id := b.src.NodeByName(name); id != InvalidNode {
		return id
	}
	if id, ok := b.addByName[name]; ok {
		return id
	}
	return InvalidNode
}

// NodeType reports the pending entity type of a node.
func (b *OverlayBuilder) NodeType(id NodeID) string {
	if i := int(id) - b.src.NumNodes(); i >= 0 {
		return b.addNodes[i].Type
	}
	if t, ok := b.retypes[id]; ok {
		return t
	}
	return b.src.Node(id).Type
}

// nodeName resolves a node name through the pending view.
func (b *OverlayBuilder) nodeName(id NodeID) string {
	if i := int(id) - b.src.NumNodes(); i >= 0 && i < len(b.addNodes) {
		return b.addNodes[i].Name
	}
	return b.src.NodeName(id)
}

// AddNode inserts an entity, returning the existing ID unchanged when
// the name is already bound — the same semantics as Graph.AddNode.
func (b *OverlayBuilder) AddNode(name, typ string) NodeID {
	if id := b.NodeByName(name); id != InvalidNode {
		return id
	}
	id := NodeID(b.NumNodes())
	b.addNodes = append(b.addNodes, Node{ID: id, Name: name, Type: typ})
	b.addByName[name] = id
	b.xor ^= nodeHash(name, typ)
	return id
}

// LabelByName resolves a label through the pending view.
func (b *OverlayBuilder) LabelByName(name string) LabelID {
	if id := b.src.LabelByName(name); id != InvalidLabel {
		return id
	}
	if id, ok := b.addLabelIDs[name]; ok {
		return id
	}
	return InvalidLabel
}

// numLabels reports the label count of the pending generation.
func (b *OverlayBuilder) numLabels() int { return b.src.NumLabels() + len(b.addLabels) }

// labelDirected reports directedness through the pending view.
func (b *OverlayBuilder) labelDirected(id LabelID) bool {
	if i := int(id) - b.src.NumLabels(); i >= 0 {
		return b.addLabelDir[i]
	}
	return b.src.LabelDirected(id)
}

// Label interns a relationship label with Graph.Label's semantics,
// including the directedness-conflict error.
func (b *OverlayBuilder) Label(name string, directed bool) (LabelID, error) {
	if id := b.LabelByName(name); id != InvalidLabel {
		if b.labelDirected(id) != directed {
			return InvalidLabel, fmt.Errorf("kb: label %q registered as directed=%v, got directed=%v",
				name, b.labelDirected(id), directed)
		}
		return id, nil
	}
	id := LabelID(b.numLabels())
	b.addLabels = append(b.addLabels, name)
	b.addLabelDir = append(b.addLabelDir, directed)
	b.addLabelIDs[name] = id
	b.xor ^= labelHash(name, directed)
	return id, nil
}

// SetNodeType changes an entity's pending type, with Graph.SetNodeType's
// range validation.
func (b *OverlayBuilder) SetNodeType(id NodeID, typ string) error {
	if id < 0 || int(id) >= b.NumNodes() {
		return fmt.Errorf("kb: SetNodeType: node %d out of range", id)
	}
	old := b.NodeType(id)
	if old == typ {
		return nil
	}
	name := b.nodeName(id)
	b.xor ^= nodeHash(name, old) ^ nodeHash(name, typ)
	if i := int(id) - b.src.NumNodes(); i >= 0 {
		b.addNodes[i].Type = typ
	} else if b.src.Node(id).Type == typ {
		delete(b.retypes, id)
	} else {
		b.retypes[id] = typ
	}
	return nil
}

// canonicalEdge returns the canonical storage key of an edge: directed
// edges keep their orientation, undirected edges order from ≤ to.
func (b *OverlayBuilder) canonicalEdge(from, to NodeID, label LabelID) edgeKey {
	if !b.labelDirected(label) && from > to {
		from, to = to, from
	}
	return edgeKey{from, to, label}
}

// srcHas reports whether the source graph contains the canonical edge.
func (b *OverlayBuilder) srcHas(key edgeKey) bool {
	if int(key.from) >= b.src.NumNodes() || int(key.to) >= b.src.NumNodes() ||
		int(key.label) >= b.src.NumLabels() {
		return false
	}
	return b.src.HasEdge(key.from, key.to, key.label)
}

// hasEdge reports edge existence through the pending view.
func (b *OverlayBuilder) hasEdge(key edgeKey) bool {
	if present, ok := b.edges[key]; ok {
		return present
	}
	return b.srcHas(key)
}

// edgeXor is the content-hash contribution of the canonical edge.
func (b *OverlayBuilder) edgeXor(key edgeKey) uint64 {
	var labelName string
	if i := int(key.label) - b.src.NumLabels(); i >= 0 {
		labelName = b.addLabels[i]
	} else {
		labelName = b.src.LabelName(key.label)
	}
	return edgeHash(b.nodeName(key.from), b.nodeName(key.to), labelName)
}

// AddEdge inserts an edge with Graph.AddEdge's semantics: range and
// self-loop validation with identical messages, duplicate inserts
// ignored. It reports whether the edge was newly inserted.
func (b *OverlayBuilder) AddEdge(from, to NodeID, label LabelID) (bool, error) {
	if int(from) >= b.NumNodes() || from < 0 {
		return false, fmt.Errorf("kb: AddEdge: from node %d out of range", from)
	}
	if int(to) >= b.NumNodes() || to < 0 {
		return false, fmt.Errorf("kb: AddEdge: to node %d out of range", to)
	}
	if int(label) >= b.numLabels() || label < 0 {
		return false, fmt.Errorf("kb: AddEdge: label %d out of range", label)
	}
	if from == to {
		return false, fmt.Errorf("kb: AddEdge: self-loop on node %d (%s) not supported", from, b.nodeName(from))
	}
	key := b.canonicalEdge(from, to, label)
	if b.hasEdge(key) {
		return false, nil
	}
	if b.srcHas(key) {
		delete(b.edges, key) // re-add after a pending removal: back to src state
	} else {
		b.edges[key] = true
	}
	b.touched[key.from] = struct{}{}
	b.touched[key.to] = struct{}{}
	b.numEdges++
	b.xor ^= b.edgeXor(key)
	return true, nil
}

// RemoveEdge deletes an edge with Graph.RemoveEdge's semantics,
// reporting whether an edge was actually removed.
func (b *OverlayBuilder) RemoveEdge(from, to NodeID, label LabelID) (bool, error) {
	if int(from) >= b.NumNodes() || from < 0 {
		return false, fmt.Errorf("kb: RemoveEdge: from node %d out of range", from)
	}
	if int(to) >= b.NumNodes() || to < 0 {
		return false, fmt.Errorf("kb: RemoveEdge: to node %d out of range", to)
	}
	if int(label) >= b.numLabels() || label < 0 {
		return false, fmt.Errorf("kb: RemoveEdge: label %d out of range", label)
	}
	key := b.canonicalEdge(from, to, label)
	if !b.hasEdge(key) {
		return false, nil
	}
	if b.srcHas(key) {
		b.edges[key] = false // tombstone over the base span
	} else {
		delete(b.edges, key) // remove of a pending add: back to src state
	}
	b.touched[key.from] = struct{}{}
	b.touched[key.to] = struct{}{}
	b.numEdges--
	b.xor ^= b.edgeXor(key)
	return true, nil
}

// Changed reports whether the pending delta differs from the source
// graph at all.
func (b *OverlayBuilder) Changed() bool {
	return len(b.addNodes) > 0 || len(b.retypes) > 0 || len(b.addLabels) > 0 || len(b.edges) > 0
}

// Graph materialises the pending delta as the next overlay generation.
// The builder must not be used afterwards.
func (b *OverlayBuilder) Graph() *Graph {
	src, base := b.src, b.base
	nSrc := src.NumNodes()
	total := nSrc + len(b.addNodes)

	ng := &Graph{
		numEdges: b.numEdges,
		frozen:   true,
		// Aliased base read path: untouched nodes answer straight from
		// the base arrays.
		csrOff:   base.csrOff,
		csr:      base.csr,
		labelCSR: base.labelCSR,
		spanOff:  base.spanOff,
		spans:    base.spans,
		byType:   base.byType,
		byName:   base.byName,
		xorFP:    src.xorFP ^ b.xor,
	}
	ng.fp = fpString(total, b.numEdges, b.numLabels(), ng.xorFP)

	nodeStateChanged := len(b.addNodes) > 0 || len(b.retypes) > 0
	if nodeStateChanged {
		nodes := make([]Node, 0, total)
		nodes = append(nodes, src.nodes...)
		for id, typ := range b.retypes {
			nodes[id].Type = typ
		}
		ng.nodes = append(nodes, b.addNodes...)
	} else {
		ng.nodes = src.nodes // shared with the frozen source
	}

	ng.labels = append(append([]string(nil), src.labels...), b.addLabels...)
	ng.labelDirected = append(append([]bool(nil), src.labelDirected...), b.addLabelDir...)
	ng.labelIDs = make(map[string]LabelID, len(ng.labels))
	for k, v := range src.labelIDs {
		ng.labelIDs[k] = v
	}
	for k, v := range b.addLabelIDs {
		ng.labelIDs[k] = v
	}

	ov := &overlay{base: base, depth: 1}
	if src.ov != nil {
		ov.depth = src.ov.depth + 1
		ov.halfEdges = src.ov.halfEdges
	}

	// Node directory: start from the source generation's pages, extend
	// to cover added nodes, and copy-on-write only the pages this delta
	// touches.
	numPages := (total + ovPageSize - 1) >> ovPageShift
	ov.pages = make([]ovPage, numPages)
	if src.ov != nil {
		copy(ov.pages, src.ov.pages)
	}
	clonedPages := make(map[int]bool)
	setNode := func(id NodeID, on *ovNode) {
		pi := int(id) >> ovPageShift
		if !clonedPages[pi] {
			np := make(ovPage, ovPageSize)
			if ov.pages[pi] != nil {
				copy(np, ov.pages[pi])
			}
			ov.pages[pi] = np
			clonedPages[pi] = true
		}
		ov.pages[pi][int(id)&ovPageMask] = on
	}

	// Cumulative name/type bookkeeping: shared with the source
	// generation when this delta changed no node state.
	if src.ov != nil && !nodeStateChanged {
		ov.addedByName = src.ov.addedByName
		ov.retyped = src.ov.retyped
		ov.extraByType = src.ov.extraByType
	} else {
		ov.addedByName = make(map[string]NodeID, len(b.addByName))
		ov.retyped = make(map[NodeID]string)
		if src.ov != nil {
			for k, v := range src.ov.addedByName {
				ov.addedByName[k] = v
			}
			for k, v := range src.ov.retyped {
				ov.retyped[k] = v
			}
		}
		for k, v := range b.addByName {
			ov.addedByName[k] = v
		}
		for id, typ := range b.retypes {
			if int(id) < base.NumNodes() {
				if base.nodes[id].Type == typ {
					delete(ov.retyped, id)
				} else {
					ov.retyped[id] = typ
				}
			}
		}
		ov.extraByType = make(map[string][]NodeID)
		for id := base.NumNodes(); id < total; id++ {
			t := ng.nodes[id].Type
			ov.extraByType[t] = append(ov.extraByType[t], NodeID(id))
		}
		for id, typ := range ov.retyped {
			ov.extraByType[typ] = append(ov.extraByType[typ], id)
		}
		for _, ids := range ov.extraByType {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		}
	}

	// Group this delta's edge changes by endpoint.
	type nodeDiff struct {
		add, del []HalfEdge
	}
	diffs := make(map[NodeID]*nodeDiff, len(b.touched))
	diffAt := func(id NodeID) *nodeDiff {
		d := diffs[id]
		if d == nil {
			d = &nodeDiff{}
			diffs[id] = d
		}
		return d
	}
	for key, present := range b.edges {
		fromHE := HalfEdge{To: key.to, Label: key.label, Dir: Undirected}
		toHE := HalfEdge{To: key.from, Label: key.label, Dir: Undirected}
		if ng.labelDirected[key.label] {
			fromHE.Dir, toHE.Dir = Out, In
		}
		if present {
			diffAt(key.from).add = append(diffAt(key.from).add, fromHE)
			diffAt(key.to).add = append(diffAt(key.to).add, toHE)
		} else {
			diffAt(key.from).del = append(diffAt(key.from).del, fromHE)
			diffAt(key.to).del = append(diffAt(key.to).del, toHE)
		}
	}

	// Materialise every changed node's merged span.
	for id, d := range diffs {
		var cur []HalfEdge
		var replaced int
		if int(id) < nSrc {
			cur = src.Neighbors(id)
			if src.ov != nil {
				if prev := src.ov.node(id); prev != nil {
					replaced = len(prev.csr)
				}
			}
		}
		merged := make([]HalfEdge, 0, len(cur)+len(d.add)-len(d.del))
		for _, he := range cur {
			drop := false
			for _, del := range d.del {
				if he == del {
					drop = true
					break
				}
			}
			if !drop {
				merged = append(merged, he)
			}
		}
		merged = append(merged, d.add...)
		sort.Slice(merged, func(x, y int) bool {
			if merged[x].To != merged[y].To {
				return merged[x].To < merged[y].To
			}
			if merged[x].Label != merged[y].Label {
				return merged[x].Label < merged[y].Label
			}
			return merged[x].Dir < merged[y].Dir
		})
		labelCSR, spans := buildNodeLabelView(merged)
		setNode(id, &ovNode{csr: merged, labelCSR: labelCSR, spans: spans})
		ov.halfEdges += len(merged) - replaced
	}

	// Added nodes the delta never connected still need (empty) overlay
	// entries so reads never reach the base offset arrays.
	for _, nd := range b.addNodes {
		if diffs[nd.ID] == nil {
			setNode(nd.ID, &ovNode{})
		}
	}

	ng.ov = ov
	return ng
}

// buildNodeLabelView derives one node's (Label, To, Dir)-sorted view and
// label spans from its (To, Label, Dir)-sorted span — the single-node
// analogue of deriveLabelView, using the same stable counting pass so
// run order is byte-identical to a full freeze.
func buildNodeLabelView(span []HalfEdge) ([]HalfEdge, []labelSpan) {
	if len(span) == 0 {
		return nil, nil
	}
	type labelCount struct {
		label LabelID
		count int32
		off   int32
	}
	var touched []labelCount
	for _, he := range span {
		found := false
		for t := range touched {
			if touched[t].label == he.Label {
				touched[t].count++
				found = true
				break
			}
		}
		if !found {
			touched = append(touched, labelCount{label: he.Label, count: 1})
		}
	}
	sort.Slice(touched, func(x, y int) bool { return touched[x].label < touched[y].label })
	labelCSR := make([]HalfEdge, len(span))
	spans := make([]labelSpan, 0, len(touched))
	var off int32
	for t := range touched {
		touched[t].off = off
		spans = append(spans, labelSpan{label: touched[t].label, off: off, n: touched[t].count})
		off += touched[t].count
	}
	for _, he := range span {
		for t := range touched {
			if touched[t].label == he.Label {
				labelCSR[touched[t].off] = he
				touched[t].off++
				break
			}
		}
	}
	return labelCSR, spans
}
