package kb

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	g, _, _, _, _, _ := buildTiny(t)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
	if !g2.Frozen() {
		t.Error("binary load must return a frozen graph")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := randomGraph(3, 15)
	path := filepath.Join(t.TempDir(), "kb.bin")
	if err := g.SaveBinary(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestBinaryPreservesIDs(t *testing.T) {
	g := randomGraph(9, 12)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Declaration order is preserved, so IDs are stable — important for
	// tools that persist node IDs alongside the KB.
	for id := NodeID(0); int(id) < g.NumNodes(); id++ {
		if g.Node(id).Name != g2.Node(id).Name {
			t.Fatalf("node %d renamed: %q vs %q", id, g.Node(id).Name, g2.Node(id).Name)
		}
	}
	for _, l := range g.Labels() {
		if g.LabelName(l) != g2.LabelName(l) || g.LabelDirected(l) != g2.LabelDirected(l) {
			t.Fatalf("label %d changed", l)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad magic", "NOTKB\x01"},
		{"truncated header", "REX"},
		{"truncated body", "REXKB\x01\x05"},
	}
	for _, tc := range cases {
		if _, err := ReadBinary(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestBinaryRejectsWrongVersion(t *testing.T) {
	g, _, _, _, _, _ := buildTiny(t)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(binaryMagic)] = 99 // version byte
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("future version accepted")
	}
}

// TestQuickBinaryRoundTrip property-checks binary serialisation against
// random graphs, and that TSV and binary loads agree with each other.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		nodes := int(sz%20) + 2
		g := randomGraph(seed, nodes)
		var bin, tsv bytes.Buffer
		if g.WriteBinary(&bin) != nil || g.WriteTSV(&tsv) != nil {
			return false
		}
		gb, err := ReadBinary(&bin)
		if err != nil {
			return false
		}
		gt, err := ReadTSV(&tsv)
		if err != nil {
			return false
		}
		if gb.NumNodes() != gt.NumNodes() || gb.NumEdges() != gt.NumEdges() {
			return false
		}
		for _, e := range gb.Edges() {
			f2 := gt.NodeByName(gb.NodeName(e.From))
			t2 := gt.NodeByName(gb.NodeName(e.To))
			l2 := gt.LabelByName(gb.LabelName(e.Label))
			if !gt.HasEdge(f2, t2, l2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
