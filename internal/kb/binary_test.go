package kb

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	g, _, _, _, _, _ := buildTiny(t)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
	if !g2.Frozen() {
		t.Error("binary load must return a frozen graph")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := randomGraph(3, 15)
	path := filepath.Join(t.TempDir(), "kb.bin")
	if err := g.SaveBinary(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestBinaryPreservesIDs(t *testing.T) {
	g := randomGraph(9, 12)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Declaration order is preserved, so IDs are stable — important for
	// tools that persist node IDs alongside the KB.
	for id := NodeID(0); int(id) < g.NumNodes(); id++ {
		if g.Node(id).Name != g2.Node(id).Name {
			t.Fatalf("node %d renamed: %q vs %q", id, g.Node(id).Name, g2.Node(id).Name)
		}
	}
	for _, l := range g.Labels() {
		if g.LabelName(l) != g2.LabelName(l) || g.LabelDirected(l) != g2.LabelDirected(l) {
			t.Fatalf("label %d changed", l)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad magic", "NOTKB\x01"},
		{"truncated header", "REX"},
		{"truncated body", "REXKB\x01\x05"},
	}
	for _, tc := range cases {
		if _, err := ReadBinary(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestBinaryRejectsWrongVersion(t *testing.T) {
	g, _, _, _, _, _ := buildTiny(t)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(binaryMagic)] = 99 // version byte
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("future version accepted")
	}
}

// TestQuickBinaryRoundTrip property-checks binary serialisation against
// random graphs, and that TSV and binary loads agree with each other.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		nodes := int(sz%20) + 2
		g := randomGraph(seed, nodes)
		var bin, tsv bytes.Buffer
		if g.WriteBinary(&bin) != nil || g.WriteTSV(&tsv) != nil {
			return false
		}
		gb, err := ReadBinary(&bin)
		if err != nil {
			return false
		}
		gt, err := ReadTSV(&tsv)
		if err != nil {
			return false
		}
		if gb.NumNodes() != gt.NumNodes() || gb.NumEdges() != gt.NumEdges() {
			return false
		}
		for _, e := range gb.Edges() {
			f2 := gt.NodeByName(gb.NodeName(e.From))
			t2 := gt.NodeByName(gb.NodeName(e.To))
			l2 := gt.LabelByName(gb.LabelName(e.Label))
			if !gt.HasEdge(f2, t2, l2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryV1Compat proves the reader still accepts the legacy edge-list
// layout emitted before the CSR snapshot format.
func TestBinaryV1Compat(t *testing.T) {
	g := randomGraph(11, 20)
	var buf bytes.Buffer
	if err := g.writeBinaryV1(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
	if g.Fingerprint() != g2.Fingerprint() {
		t.Errorf("v1 fingerprint mismatch: %s vs %s", g.Fingerprint(), g2.Fingerprint())
	}
}

// TestBinaryCSRRoundTripFingerprint is the CSR-layout round-trip guard:
// the loaded graph must carry identical CSR arrays (checked via the
// public accessors) and its content fingerprint — recomputed from the
// loaded structure, not trusted from the file — must equal the
// original's.
func TestBinaryCSRRoundTripFingerprint(t *testing.T) {
	g := randomGraph(5, 40)
	g.Freeze()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Frozen() {
		t.Fatal("CSR load must return a frozen graph")
	}
	for id := NodeID(0); int(id) < g.NumNodes(); id++ {
		a, b := g.Neighbors(id), g2.Neighbors(id)
		if len(a) != len(b) {
			t.Fatalf("node %d: degree %d vs %d", id, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d half-edge %d: %+v vs %+v", id, i, a[i], b[i])
			}
		}
		for _, l := range g.Labels() {
			la, lb := g.NeighborsLabeled(id, l), g2.NeighborsLabeled(id, l)
			if len(la) != len(lb) {
				t.Fatalf("node %d label %d: %d vs %d labeled half-edges", id, l, len(la), len(lb))
			}
			for i := range la {
				if la[i] != lb[i] {
					t.Fatalf("node %d label %d entry %d differs", id, l, i)
				}
			}
		}
	}
	// The file carries the fingerprint; verify it against a from-scratch
	// recomputation over the loaded content so a corrupted-but-parsable
	// payload cannot masquerade as the original.
	if got := g2.fingerprint(); got != g.Fingerprint() {
		t.Errorf("recomputed fingerprint %s != original %s", got, g.Fingerprint())
	}
	if g2.Fingerprint() != g.Fingerprint() {
		t.Errorf("served fingerprint %s != original %s", g2.Fingerprint(), g.Fingerprint())
	}
}

// TestBinaryCSRRejectsCorrupt feeds structurally broken v2 payloads to
// the loader.
func TestBinaryCSRRejectsCorrupt(t *testing.T) {
	g := randomGraph(7, 12)
	g.Freeze()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := len(data) / 2; i < len(data); i += 7 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		// A flip may be absorbed (e.g. inside the stored fingerprint
		// text) or rejected; it must never panic or hang, and a graph
		// that does load must be internally consistent enough to walk.
		if g2, err := ReadBinary(bytes.NewReader(mut)); err == nil {
			for id := NodeID(0); int(id) < g2.NumNodes(); id++ {
				_ = g2.Neighbors(id)
			}
		}
	}
	// Truncations must always fail loudly.
	for _, cut := range []int{len(data) - 1, len(data) / 2, 8} {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes loaded successfully", cut)
		}
	}
}
