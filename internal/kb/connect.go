package kb

// Connectedness metrics. The paper buckets entity pairs by their
// "connectedness": the number of simple paths between the two entities
// within a length limit (Section 5.1, limit 4). Connectedness drives the
// cost of explanation enumeration, so the experiment harness uses it to
// build low / medium / high workloads.

// Connectedness counts the simple paths (no repeated nodes, edges treated
// as undirected) of length ≤ maxLen between start and end. Parallel edges
// with different labels count as distinct paths, matching the
// explanation-instance semantics. The count is capped at cap (pass a
// negative cap for no limit) so that dense pairs do not stall bucketing.
func (g *Graph) Connectedness(start, end NodeID, maxLen int, cap int) int {
	if start == end || maxLen <= 0 || cap == 0 {
		return 0
	}
	onPath := make([]bool, g.NumNodes())
	onPath[start] = true
	count := 0
	var dfs func(at NodeID, depth int) bool // returns false when capped
	dfs = func(at NodeID, depth int) bool {
		for _, he := range g.Neighbors(at) {
			if he.To == end {
				count++
				if cap >= 0 && count >= cap {
					return false
				}
				continue
			}
			if depth+1 >= maxLen || onPath[he.To] {
				continue
			}
			onPath[he.To] = true
			ok := dfs(he.To, depth+1)
			onPath[he.To] = false
			if !ok {
				return false
			}
		}
		return true
	}
	dfs(start, 0)
	return count
}

// ConnBucket names a connectedness workload group from the paper.
type ConnBucket int

// Connectedness buckets with the paper's thresholds (Section 5.1):
// low 0–30, medium 30–100, high > 100 simple paths of length ≤ 4.
const (
	ConnLow ConnBucket = iota
	ConnMedium
	ConnHigh
)

// String returns the bucket name used in figures.
func (b ConnBucket) String() string {
	switch b {
	case ConnLow:
		return "low"
	case ConnMedium:
		return "medium"
	case ConnHigh:
		return "high"
	}
	return "unknown"
}

// Bucket classifies a connectedness count with the paper's thresholds.
func Bucket(connectedness int) ConnBucket {
	switch {
	case connectedness <= 30:
		return ConnLow
	case connectedness <= 100:
		return ConnMedium
	default:
		return ConnHigh
	}
}

// Reachable reports whether end can be reached from start within maxLen
// hops, ignoring edge direction. It is a cheap pre-filter before the more
// expensive Connectedness count.
func (g *Graph) Reachable(start, end NodeID, maxLen int) bool {
	if start == end {
		return true
	}
	if maxLen <= 0 {
		return false
	}
	seen := make([]bool, g.NumNodes())
	seen[start] = true
	frontier := []NodeID{start}
	for depth := 0; depth < maxLen && len(frontier) > 0; depth++ {
		var next []NodeID
		for _, u := range frontier {
			for _, he := range g.Neighbors(u) {
				if he.To == end {
					return true
				}
				if !seen[he.To] {
					seen[he.To] = true
					next = append(next, he.To)
				}
			}
		}
		frontier = next
	}
	return false
}
