package kb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary serialisation. The TSV format is the interchange format; the
// binary format exists because a paper-scale knowledge base (hundreds of
// thousands of entities, >10^6 edges) loads an order of magnitude faster
// without string splitting.
//
// Version 3 serialises the frozen CSR layout directly — per-node degrees
// followed by the flat half-edge array in frozen (To, Label, Dir) span
// order — so loading is a streaming fill of the read-path arrays: no
// AddEdge bookkeeping, no edge-set map, no re-sorting. The content
// fingerprint is carried in the file (it is a pure function of the
// content that the loader verifies structurally), together with the
// XOR-combinable item hash behind it, so a loaded graph can serve as an
// overlay base with O(delta) incremental fingerprints. Layout, all
// integers unsigned varints:
//
//	magic "REXKB" version(3)
//	numLabels { nameLen name directed(1 byte) } ...
//	numNodes  { nameLen name typeLen type } ...
//	numEdges
//	degrees   numNodes × degree
//	halfEdges Σdegree × { to label dir(1 byte) }
//	fpLen fp
//	xorFP (8 bytes big-endian)
//
// Version 2 (the same layout without the trailing xorFP) and version 1
// (edge-list layout: numEdges × { from to label }) remain readable;
// their fingerprints are recomputed on load. Writers always emit
// version 3. Node and label references are the dense IDs assigned by
// declaration order, so graphs round-trip with identical IDs.

const binaryMagic = "REXKB"
const (
	binaryVersion1 = 1
	binaryVersion2 = 2
	binaryVersion  = 3
)

// WriteBinary serialises the graph in the binary format (version 3, the
// CSR layout). The graph is frozen first if it is not already — the CSR
// arrays are the wire content. An overlay generation is compacted
// first: its own CSR arrays belong to the base and describe older
// content.
func (g *Graph) WriteBinary(w io.Writer) error {
	if g.ov != nil {
		return g.Compact().WriteBinary(w)
	}
	g.Freeze()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeUvarint(binaryVersion); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(g.labels))); err != nil {
		return err
	}
	for i, name := range g.labels {
		if err := writeString(name); err != nil {
			return err
		}
		d := byte(0)
		if g.labelDirected[i] {
			d = 1
		}
		if err := bw.WriteByte(d); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(g.nodes))); err != nil {
		return err
	}
	for _, n := range g.nodes {
		if err := writeString(n.Name); err != nil {
			return err
		}
		if err := writeString(n.Type); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(g.numEdges)); err != nil {
		return err
	}
	for i := range g.nodes {
		if err := writeUvarint(uint64(g.csrOff[i+1] - g.csrOff[i])); err != nil {
			return err
		}
	}
	for _, he := range g.csr {
		if err := writeUvarint(uint64(he.To)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(he.Label)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(he.Dir)); err != nil {
			return err
		}
	}
	if err := writeString(g.fp); err != nil {
		return err
	}
	var xorBuf [8]byte
	binary.BigEndian.PutUint64(xorBuf[:], g.xorFP)
	if _, err := bw.Write(xorBuf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// writeBinaryV1 emits the legacy edge-list layout; kept (unexported) so
// the compatibility path stays covered by tests.
func (g *Graph) writeBinaryV1(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeUvarint(binaryVersion1); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(g.labels))); err != nil {
		return err
	}
	for i, name := range g.labels {
		if err := writeString(name); err != nil {
			return err
		}
		d := byte(0)
		if g.labelDirected[i] {
			d = 1
		}
		if err := bw.WriteByte(d); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(g.nodes))); err != nil {
		return err
	}
	for _, n := range g.nodes {
		if err := writeString(n.Name); err != nil {
			return err
		}
		if err := writeString(n.Type); err != nil {
			return err
		}
	}
	edges := g.Edges()
	if err := writeUvarint(uint64(len(edges))); err != nil {
		return err
	}
	for _, e := range edges {
		if err := writeUvarint(uint64(e.From)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(e.To)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(e.Label)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a graph from the binary format and returns it
// frozen.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("kb: binary header: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("kb: not a REX binary knowledge base (magic %q)", magic)
	}
	readUvarint := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("kb: binary %s: %w", what, err)
		}
		return v, nil
	}
	readString := func(what string, maxLen uint64) (string, error) {
		n, err := readUvarint(what + " length")
		if err != nil {
			return "", err
		}
		if n > maxLen {
			return "", fmt.Errorf("kb: binary %s length %d exceeds limit %d", what, n, maxLen)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", fmt.Errorf("kb: binary %s: %w", what, err)
		}
		return string(b), nil
	}
	version, err := readUvarint("version")
	if err != nil {
		return nil, err
	}
	if version != binaryVersion1 && version != binaryVersion2 && version != binaryVersion {
		return nil, fmt.Errorf("kb: unsupported binary version %d", version)
	}
	g := New()
	numLabels, err := readUvarint("label count")
	if err != nil {
		return nil, err
	}
	const maxName = 1 << 20
	for i := uint64(0); i < numLabels; i++ {
		name, err := readString("label name", maxName)
		if err != nil {
			return nil, err
		}
		d, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("kb: binary label direction: %w", err)
		}
		if _, err := g.Label(name, d == 1); err != nil {
			return nil, err
		}
	}
	numNodes, err := readUvarint("node count")
	if err != nil {
		return nil, err
	}
	g.nodes = make([]Node, 0, numNodes)
	g.byName = make(map[string]NodeID, numNodes)
	for i := uint64(0); i < numNodes; i++ {
		name, err := readString("node name", maxName)
		if err != nil {
			return nil, err
		}
		typ, err := readString("node type", maxName)
		if err != nil {
			return nil, err
		}
		if _, dup := g.byName[name]; dup {
			return nil, fmt.Errorf("kb: binary node %d: duplicate name %q", i, name)
		}
		id := NodeID(len(g.nodes))
		g.nodes = append(g.nodes, Node{ID: id, Name: name, Type: typ})
		g.byName[name] = id
	}
	numEdges, err := readUvarint("edge count")
	if err != nil {
		return nil, err
	}
	if version == binaryVersion1 {
		g.adj = make([][]HalfEdge, len(g.nodes))
		for i := uint64(0); i < numEdges; i++ {
			from, err := readUvarint("edge from")
			if err != nil {
				return nil, err
			}
			to, err := readUvarint("edge to")
			if err != nil {
				return nil, err
			}
			label, err := readUvarint("edge label")
			if err != nil {
				return nil, err
			}
			if _, err := g.AddEdge(NodeID(from), NodeID(to), LabelID(label)); err != nil {
				return nil, err
			}
		}
		g.Freeze()
		return g, nil
	}
	if err := g.readCSR(br, readUvarint, numEdges); err != nil {
		return nil, err
	}
	fp, err := readString("fingerprint", 64)
	if err != nil {
		return nil, err
	}
	g.numEdges = int(numEdges)
	g.frozen = true
	g.deriveLabelView()
	g.buildTypeIndex()
	if version == binaryVersion2 {
		// The legacy format carries a fingerprint computed by the old
		// sequential hash; recompute both hashes so the invariant
		// fp == fpString(counts, xorFP) holds for every frozen graph.
		g.xorFP = g.contentXor()
		g.fp = fpString(g.NumNodes(), g.NumEdges(), g.NumLabels(), g.xorFP)
		return g, nil
	}
	var xorBuf [8]byte
	if _, err := io.ReadFull(br, xorBuf[:]); err != nil {
		return nil, fmt.Errorf("kb: binary xor hash: %w", err)
	}
	g.fp = fp
	g.xorFP = binary.BigEndian.Uint64(xorBuf[:])
	return g, nil
}

// readCSR streams the version-2 degree and half-edge arrays into the CSR
// layout, validating references, orientation values, span sort order and
// the half-edge/edge-count invariant so a corrupt file cannot produce a
// structurally inconsistent graph.
func (g *Graph) readCSR(br *bufio.Reader, readUvarint func(string) (uint64, error), numEdges uint64) error {
	n := len(g.nodes)
	g.csrOff = make([]int32, n+1)
	total := uint64(0)
	for i := 0; i < n; i++ {
		d, err := readUvarint("node degree")
		if err != nil {
			return err
		}
		total += d
		if total >= uint64(1)<<31 {
			return fmt.Errorf("kb: binary degree sum overflows")
		}
		g.csrOff[i+1] = int32(total)
	}
	if total != 2*numEdges {
		return fmt.Errorf("kb: binary half-edge count %d does not match edge count %d", total, numEdges)
	}
	g.csr = make([]HalfEdge, total)
	for i := range g.csr {
		to, err := readUvarint("half-edge target")
		if err != nil {
			return err
		}
		label, err := readUvarint("half-edge label")
		if err != nil {
			return err
		}
		d, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("kb: binary half-edge dir: %w", err)
		}
		if to >= uint64(n) {
			return fmt.Errorf("kb: binary half-edge %d: target %d out of range", i, to)
		}
		if label >= uint64(len(g.labels)) {
			return fmt.Errorf("kb: binary half-edge %d: label %d out of range", i, label)
		}
		if Dir(d) != Out && Dir(d) != In && Dir(d) != Undirected {
			return fmt.Errorf("kb: binary half-edge %d: bad orientation %d", i, d)
		}
		g.csr[i] = HalfEdge{To: NodeID(to), Label: LabelID(label), Dir: Dir(d)}
	}
	for i := 0; i < n; i++ {
		span := g.csr[g.csrOff[i]:g.csrOff[i+1]]
		for j := 1; j < len(span); j++ {
			a, b := span[j-1], span[j]
			if a.To > b.To || (a.To == b.To && (a.Label > b.Label || (a.Label == b.Label && a.Dir >= b.Dir))) {
				return fmt.Errorf("kb: binary node %d: half-edge span not strictly (To, Label, Dir)-sorted", i)
			}
		}
		for _, he := range span {
			if he.To == NodeID(i) {
				return fmt.Errorf("kb: binary node %d: self-loop", i)
			}
		}
	}
	return nil
}

// SaveBinary writes the graph to a file in the binary format.
func (g *Graph) SaveBinary(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a graph from a binary-format file.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
