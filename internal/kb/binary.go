package kb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary serialisation. The TSV format is the interchange format; the
// binary format exists because a paper-scale knowledge base (hundreds of
// thousands of entities, >10^6 edges) loads an order of magnitude faster
// without string splitting. Layout, all integers unsigned varints:
//
//	magic "REXKB" version(1)
//	numLabels { nameLen name directed(1 byte) } ...
//	numNodes  { nameLen name typeLen type } ...
//	numEdges  { from to label } ...
//
// Node and label references in edges are the dense IDs assigned by
// declaration order, so graphs round-trip with identical IDs.

const binaryMagic = "REXKB"
const binaryVersion = 1

// WriteBinary serialises the graph in the binary format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeUvarint(binaryVersion); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(g.labels))); err != nil {
		return err
	}
	for i, name := range g.labels {
		if err := writeString(name); err != nil {
			return err
		}
		d := byte(0)
		if g.labelDirected[i] {
			d = 1
		}
		if err := bw.WriteByte(d); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(g.nodes))); err != nil {
		return err
	}
	for _, n := range g.nodes {
		if err := writeString(n.Name); err != nil {
			return err
		}
		if err := writeString(n.Type); err != nil {
			return err
		}
	}
	edges := g.Edges()
	if err := writeUvarint(uint64(len(edges))); err != nil {
		return err
	}
	for _, e := range edges {
		if err := writeUvarint(uint64(e.From)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(e.To)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(e.Label)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a graph from the binary format and returns it
// frozen.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("kb: binary header: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("kb: not a REX binary knowledge base (magic %q)", magic)
	}
	readUvarint := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("kb: binary %s: %w", what, err)
		}
		return v, nil
	}
	readString := func(what string, maxLen uint64) (string, error) {
		n, err := readUvarint(what + " length")
		if err != nil {
			return "", err
		}
		if n > maxLen {
			return "", fmt.Errorf("kb: binary %s length %d exceeds limit %d", what, n, maxLen)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", fmt.Errorf("kb: binary %s: %w", what, err)
		}
		return string(b), nil
	}
	version, err := readUvarint("version")
	if err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("kb: unsupported binary version %d", version)
	}
	g := New()
	numLabels, err := readUvarint("label count")
	if err != nil {
		return nil, err
	}
	const maxName = 1 << 20
	for i := uint64(0); i < numLabels; i++ {
		name, err := readString("label name", maxName)
		if err != nil {
			return nil, err
		}
		d, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("kb: binary label direction: %w", err)
		}
		if _, err := g.Label(name, d == 1); err != nil {
			return nil, err
		}
	}
	numNodes, err := readUvarint("node count")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < numNodes; i++ {
		name, err := readString("node name", maxName)
		if err != nil {
			return nil, err
		}
		typ, err := readString("node type", maxName)
		if err != nil {
			return nil, err
		}
		g.AddNode(name, typ)
	}
	numEdges, err := readUvarint("edge count")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < numEdges; i++ {
		from, err := readUvarint("edge from")
		if err != nil {
			return nil, err
		}
		to, err := readUvarint("edge to")
		if err != nil {
			return nil, err
		}
		label, err := readUvarint("edge label")
		if err != nil {
			return nil, err
		}
		if _, err := g.AddEdge(NodeID(from), NodeID(to), LabelID(label)); err != nil {
			return nil, err
		}
	}
	g.Freeze()
	return g, nil
}

// SaveBinary writes the graph to a file in the binary format.
func (g *Graph) SaveBinary(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a graph from a binary-format file.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
