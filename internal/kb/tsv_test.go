package kb

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestTSVRoundTrip(t *testing.T) {
	g, _, _, _, _, _ := buildTiny(t)
	var buf bytes.Buffer
	if err := g.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestTSVFileRoundTrip(t *testing.T) {
	g, _, _, _, _, _ := buildTiny(t)
	path := filepath.Join(t.TempDir(), "kb.tsv")
	if err := g.SaveTSV(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadTSV(path)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func assertGraphsEqual(t *testing.T, g, g2 *Graph) {
	t.Helper()
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() || g2.NumLabels() != g.NumLabels() {
		t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
			g2.NumNodes(), g2.NumEdges(), g2.NumLabels(),
			g.NumNodes(), g.NumEdges(), g.NumLabels())
	}
	for _, n := range g.Nodes() {
		id2 := g2.NodeByName(n.Name)
		if id2 == InvalidNode {
			t.Fatalf("node %q lost", n.Name)
		}
		if g2.Node(id2).Type != n.Type {
			t.Fatalf("node %q type %q vs %q", n.Name, g2.Node(id2).Type, n.Type)
		}
	}
	for _, e := range g.Edges() {
		f2 := g2.NodeByName(g.NodeName(e.From))
		t2 := g2.NodeByName(g.NodeName(e.To))
		l2 := g2.LabelByName(g.LabelName(e.Label))
		if !g2.HasEdge(f2, t2, l2) {
			t.Fatalf("edge %s-%s-%s lost", g.NodeName(e.From), g.LabelName(e.Label), g.NodeName(e.To))
		}
	}
}

func TestTSVParseErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"bad record type", "frob\tx\ty\n"},
		{"node arity", "node\tonlyname\n"},
		{"label arity", "label\tstarring\n"},
		{"label direction", "label\tstarring\tX\n"},
		{"edge arity", "label\tr\tD\nnode\ta\tt\nedge\ta\ta\n"},
		{"unknown from", "label\tr\tD\nnode\ta\tt\nedge\tghost\ta\tr\n"},
		{"unknown to", "label\tr\tD\nnode\ta\tt\nedge\ta\tghost\tr\n"},
		{"unknown label", "node\ta\tt\nnode\tb\tt\nedge\ta\tb\tghost\n"},
		{"self loop edge", "label\tr\tD\nnode\ta\tt\nedge\ta\ta\tr\n"},
	}
	for _, tc := range cases {
		if _, err := ReadTSV(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: parse succeeded", tc.name)
		}
	}
}

func TestTSVCommentsAndBlankLines(t *testing.T) {
	input := "# header\n\nnode\ta\tt\nnode\tb\tt\n# mid comment\nlabel\tr\tU\nedge\ta\tb\tr\n"
	g, err := ReadTSV(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.Frozen() {
		t.Error("ReadTSV must return a frozen graph")
	}
}

// randomGraph builds a pseudo-random graph from a seed for property
// tests.
func randomGraph(seed int64, nodes int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < nodes; i++ {
		typ := "t" + string(rune('a'+i%3))
		g.AddNode("node_"+string(rune('a'+i%26))+string(rune('0'+i/26%10)), typ)
	}
	labels := []LabelID{
		g.MustLabel("r_dir", true),
		g.MustLabel("r_undir", false),
		g.MustLabel("r_dir2", true),
	}
	edges := nodes * 2
	for i := 0; i < edges; i++ {
		from := NodeID(rng.Intn(nodes))
		to := NodeID(rng.Intn(nodes))
		if from == to {
			continue
		}
		g.AddEdge(from, to, labels[rng.Intn(len(labels))])
	}
	g.Freeze()
	return g
}

// TestQuickTSVRoundTrip property-checks that serialisation round-trips
// arbitrary graphs.
func TestQuickTSVRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		nodes := int(sz%20) + 2
		g := randomGraph(seed, nodes)
		var buf bytes.Buffer
		if err := g.WriteTSV(&buf); err != nil {
			return false
		}
		g2, err := ReadTSV(&buf)
		if err != nil {
			return false
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			f2 := g2.NodeByName(g.NodeName(e.From))
			t2 := g2.NodeByName(g.NodeName(e.To))
			l2 := g2.LabelByName(g.LabelName(e.Label))
			if !g2.HasEdge(f2, t2, l2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWriteDeterministic property-checks that serialising the same
// graph twice yields byte-identical output.
func TestQuickWriteDeterministic(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		nodes := int(sz%20) + 2
		g := randomGraph(seed, nodes)
		var b1, b2 bytes.Buffer
		if g.WriteTSV(&b1) != nil || g.WriteTSV(&b2) != nil {
			return false
		}
		return bytes.Equal(b1.Bytes(), b2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
