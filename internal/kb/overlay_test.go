package kb

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// The overlay property: applying any op sequence through an
// OverlayBuilder answers every read accessor byte-identically to
// replaying the same ops through Clone + the ordinary mutators +
// Freeze. The helpers below drive both paths from one randomised op
// stream, including tombstones over base CSR spans, duplicate no-ops,
// node additions, retypes and cancelling op pairs, then compare the
// full read surface.

// ovOp is one randomised mutation applied to both the overlay builder
// and the rebuild reference.
type ovOp struct {
	kind     int // 0 addNode, 1 addLabel, 2 addEdge, 3 delEdge, 4 setType
	name     string
	typ      string
	directed bool
	from, to NodeID
	label    LabelID
}

// applyOpsOverlay runs ops through an OverlayBuilder over src.
func applyOpsOverlay(t *testing.T, src *Graph, ops []ovOp) *Graph {
	t.Helper()
	b, err := NewOverlayBuilder(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		applyToMutator(t, op,
			func(name, typ string) { b.AddNode(name, typ) },
			func(name string, dir bool) error { _, err := b.Label(name, dir); return err },
			func(f, to NodeID, l LabelID) error { _, err := b.AddEdge(f, to, l); return err },
			func(f, to NodeID, l LabelID) error { _, err := b.RemoveEdge(f, to, l); return err },
			func(id NodeID, typ string) error { return b.SetNodeType(id, typ) })
	}
	return b.Graph()
}

// applyOpsRebuild runs ops through the legacy Clone + mutate + Freeze
// path — the byte-identity oracle.
func applyOpsRebuild(t *testing.T, src *Graph, ops []ovOp) *Graph {
	t.Helper()
	g := src.Clone()
	for _, op := range ops {
		applyToMutator(t, op,
			func(name, typ string) { g.AddNode(name, typ) },
			func(name string, dir bool) error { _, err := g.Label(name, dir); return err },
			func(f, to NodeID, l LabelID) error { _, err := g.AddEdge(f, to, l); return err },
			func(f, to NodeID, l LabelID) error { _, err := g.RemoveEdge(f, to, l); return err },
			func(id NodeID, typ string) error { return g.SetNodeType(id, typ) })
	}
	g.Freeze()
	return g
}

func applyToMutator(t *testing.T, op ovOp,
	addNode func(string, string),
	addLabel func(string, bool) error,
	addEdge, delEdge func(NodeID, NodeID, LabelID) error,
	setType func(NodeID, string) error) {
	t.Helper()
	var err error
	switch op.kind {
	case 0:
		addNode(op.name, op.typ)
	case 1:
		err = addLabel(op.name, op.directed)
	case 2:
		err = addEdge(op.from, op.to, op.label)
	case 3:
		err = delEdge(op.from, op.to, op.label)
	case 4:
		err = setType(op.from, op.typ)
	}
	if err != nil {
		t.Fatalf("op %+v: %v", op, err)
	}
}

// randomBase builds a deterministic frozen base graph.
func randomBase(rng *rand.Rand, nodes, labels, edges int) *Graph {
	g := New()
	types := []string{"person", "film", "studio"}
	for i := 0; i < nodes; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), types[i%len(types)])
	}
	for i := 0; i < labels; i++ {
		g.MustLabel(fmt.Sprintf("l%d", i), i%2 == 0)
	}
	for i := 0; i < edges; i++ {
		from := NodeID(rng.Intn(nodes))
		to := NodeID(rng.Intn(nodes))
		if from == to {
			continue
		}
		g.AddEdge(from, to, LabelID(rng.Intn(labels)))
	}
	g.Freeze()
	return g
}

// randomOps generates one delta's op stream against the current state,
// biased toward edge churn with occasional node/label/type changes and
// deliberate duplicate and cancelling pairs.
func randomOps(rng *rand.Rand, numNodes, numLabels, n int, round int) []ovOp {
	ops := make([]ovOp, 0, n)
	newNodes := 0
	for i := 0; i < n; i++ {
		from := NodeID(rng.Intn(numNodes + newNodes))
		to := NodeID(rng.Intn(numNodes + newNodes))
		label := LabelID(rng.Intn(numLabels))
		switch k := rng.Intn(10); {
		case k < 4: // add edge
			if from == to {
				continue
			}
			ops = append(ops, ovOp{kind: 2, from: from, to: to, label: label})
			if rng.Intn(4) == 0 { // duplicate add: must be a no-op
				ops = append(ops, ovOp{kind: 2, from: from, to: to, label: label})
			}
			if rng.Intn(5) == 0 { // cancelling remove in the same delta
				ops = append(ops, ovOp{kind: 3, from: from, to: to, label: label})
			}
		case k < 7: // remove edge (often a tombstone over a base span)
			if from == to {
				continue
			}
			ops = append(ops, ovOp{kind: 3, from: from, to: to, label: label})
			if rng.Intn(5) == 0 { // re-add after remove
				ops = append(ops, ovOp{kind: 2, from: from, to: to, label: label})
			}
		case k < 8: // add node, sometimes connect it
			name := fmt.Sprintf("r%dm%d", round, newNodes)
			ops = append(ops, ovOp{kind: 0, name: name, typ: "robot"})
			id := NodeID(numNodes + newNodes)
			newNodes++
			if rng.Intn(2) == 0 && id != from {
				ops = append(ops, ovOp{kind: 2, from: from, to: id, label: label})
			}
		case k < 9: // retype
			ops = append(ops, ovOp{kind: 4, from: from, typ: fmt.Sprintf("t%d", rng.Intn(4))})
		default: // new label, then use it
			name := fmt.Sprintf("r%dk%d", round, i)
			ops = append(ops, ovOp{kind: 1, name: name, directed: rng.Intn(2) == 0})
			if from != to {
				ops = append(ops, ovOp{kind: 2, from: from, to: to, label: LabelID(numLabels)})
				numLabels++
			}
		}
	}
	return ops
}

// requireGraphsIdentical compares the complete read surface of two
// frozen graphs byte for byte.
func requireGraphsIdentical(t *testing.T, tag string, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() || got.NumLabels() != want.NumLabels() {
		t.Fatalf("%s: size (%d,%d,%d) != (%d,%d,%d)", tag,
			got.NumNodes(), got.NumEdges(), got.NumLabels(),
			want.NumNodes(), want.NumEdges(), want.NumLabels())
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("%s: fingerprint %s != %s", tag, got.Fingerprint(), want.Fingerprint())
	}
	if !reflect.DeepEqual(got.Nodes(), want.Nodes()) {
		t.Fatalf("%s: node records differ", tag)
	}
	for i := 0; i < want.NumNodes(); i++ {
		id := NodeID(i)
		if got.Degree(id) != want.Degree(id) {
			t.Fatalf("%s: node %d degree %d != %d", tag, id, got.Degree(id), want.Degree(id))
		}
		gn, wn := got.Neighbors(id), want.Neighbors(id)
		if len(gn) != len(wn) {
			t.Fatalf("%s: node %d neighbors %v != %v", tag, id, gn, wn)
		}
		for j := range gn {
			if gn[j] != wn[j] {
				t.Fatalf("%s: node %d neighbor %d: %+v != %+v", tag, id, j, gn[j], wn[j])
			}
		}
		for l := 0; l < want.NumLabels(); l++ {
			gl, wl := got.NeighborsLabeled(id, LabelID(l)), want.NeighborsLabeled(id, LabelID(l))
			if len(gl) != len(wl) {
				t.Fatalf("%s: node %d label %d: %v != %v", tag, id, l, gl, wl)
			}
			for j := range gl {
				if gl[j] != wl[j] {
					t.Fatalf("%s: node %d label %d entry %d: %+v != %+v", tag, id, l, j, gl[j], wl[j])
				}
			}
		}
		if got.NodeName(id) != want.NodeName(id) {
			t.Fatalf("%s: node %d name %q != %q", tag, id, got.NodeName(id), want.NodeName(id))
		}
		if got.NodeByName(want.NodeName(id)) != id {
			t.Fatalf("%s: NodeByName(%q) = %d, want %d", tag, want.NodeName(id), got.NodeByName(want.NodeName(id)), id)
		}
	}
	if !reflect.DeepEqual(got.Edges(), want.Edges()) {
		t.Fatalf("%s: edge lists differ", tag)
	}
	types := map[string]bool{}
	for _, n := range want.Nodes() {
		types[n.Type] = true
	}
	for typ := range types {
		if !reflect.DeepEqual(got.NodesOfType(typ), want.NodesOfType(typ)) {
			t.Fatalf("%s: NodesOfType(%q) = %v, want %v", tag, typ, got.NodesOfType(typ), want.NodesOfType(typ))
		}
	}
	// Spot-check HasEdge over present edges and a sample of absent ones.
	for _, e := range want.Edges() {
		if !got.HasEdge(e.From, e.To, e.Label) {
			t.Fatalf("%s: missing edge %+v", tag, e)
		}
	}
}

// TestOverlayEquivalence is the tentpole property test: stacked overlay
// generations answer every read byte-identically to full rebuilds, and
// Compact preserves both content and fingerprint.
func TestOverlayEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			base := randomBase(rng, 40, 6, 150)
			overlayG, rebuildG := base, base
			for round := 0; round < 4; round++ {
				ops := randomOps(rng, overlayG.NumNodes(), overlayG.NumLabels(), 25, round)
				overlayG = applyOpsOverlay(t, overlayG, ops)
				rebuildG = applyOpsRebuild(t, rebuildG, ops)
				tag := fmt.Sprintf("round %d", round)
				if overlayG.Overlay().Depth != round+1 {
					t.Fatalf("%s: overlay depth %d, want %d", tag, overlayG.Overlay().Depth, round+1)
				}
				requireGraphsIdentical(t, tag, overlayG, rebuildG)
			}
			// Compacting folds the chain into a plain graph with the same
			// content and fingerprint.
			compacted := overlayG.Compact()
			if compacted.Overlay().Depth != 0 {
				t.Fatalf("compacted graph still an overlay: %+v", compacted.Overlay())
			}
			requireGraphsIdentical(t, "compacted", compacted, rebuildG)
			// And a from-scratch freeze of the compacted content agrees on
			// the fingerprint (the XOR chain matches recomputation).
			refreeze := compacted.Clone()
			refreeze.Freeze()
			if refreeze.Fingerprint() != overlayG.Fingerprint() {
				t.Fatalf("refreeze fingerprint %s != overlay %s", refreeze.Fingerprint(), overlayG.Fingerprint())
			}
			// Overlay generations keep compacting to the same place after
			// further deltas on top of a compacted graph.
			ops := randomOps(rng, compacted.NumNodes(), compacted.NumLabels(), 10, 99)
			againOverlay := applyOpsOverlay(t, compacted, ops)
			againRebuild := applyOpsRebuild(t, rebuildG, ops)
			requireGraphsIdentical(t, "post-compact delta", againOverlay, againRebuild)
		})
	}
}

// TestOverlayEmptyDelta pins the no-change case: a builder with only
// no-op operations reports Changed()==false and still materialises a
// correct generation if asked.
func TestOverlayEmptyDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := randomBase(rng, 10, 3, 30)
	b, err := NewOverlayBuilder(base)
	if err != nil {
		t.Fatal(err)
	}
	// All no-ops: existing node, existing label, duplicate edge, absent
	// removal, retype to the current type.
	b.AddNode(base.NodeName(0), base.Node(0).Type)
	if _, err := b.Label(base.LabelName(0), base.LabelDirected(0)); err != nil {
		t.Fatal(err)
	}
	e := base.Edges()[0]
	if added, err := b.AddEdge(e.From, e.To, e.Label); err != nil || added {
		t.Fatalf("duplicate AddEdge = (%v, %v), want no-op", added, err)
	}
	if err := b.SetNodeType(0, base.Node(0).Type); err != nil {
		t.Fatal(err)
	}
	if b.Changed() {
		t.Fatal("no-op delta reports Changed")
	}
	g := b.Graph()
	requireGraphsIdentical(t, "noop", g, base)
}

// TestOverlayThawDetaches checks the mutate-an-overlay escape hatch:
// thawing an overlay generation detaches it from the base, so further
// mutations never corrupt the still-serving base or siblings.
func TestOverlayThawDetaches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := randomBase(rng, 20, 4, 60)
	baseFP := base.Fingerprint()
	ops := randomOps(rng, 20, 4, 15, 0)
	ovG := applyOpsOverlay(t, base, ops)
	want := applyOpsRebuild(t, base, ops)

	// Clone of an overlay generation is a full private copy.
	cl := ovG.Clone()
	cl.Freeze()
	requireGraphsIdentical(t, "clone", cl, want)

	// Mutating the overlay generation detaches it; the base is untouched.
	mutated := ovG.Clone()
	id := mutated.AddNode("detached", "robot")
	l := mutated.MustLabel("dl", false)
	mutated.MustAddEdge(0, id, l)
	mutated.Freeze()
	if base.Fingerprint() != baseFP {
		t.Fatalf("base fingerprint changed: %s != %s", base.Fingerprint(), baseFP)
	}
	requireGraphsIdentical(t, "sibling overlay", ovG, want)
	if mutated.NodeByName("detached") != id {
		t.Fatalf("detached mutation lost")
	}
}

// TestOverlayBuilderErrors pins that builder validation matches the
// mutate path's messages.
func TestOverlayBuilderErrors(t *testing.T) {
	g := New()
	a := g.AddNode("a", "person")
	g.AddNode("b", "person")
	knows := g.MustLabel("knows", false)
	g.MustAddEdge(0, 1, knows)
	g.Freeze()
	b, err := NewOverlayBuilder(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddEdge(a, a, knows); err == nil || !bytes.Contains([]byte(err.Error()), []byte("self-loop")) {
		t.Errorf("self-loop error = %v", err)
	}
	if _, err := b.AddEdge(a, 99, knows); err == nil || !bytes.Contains([]byte(err.Error()), []byte("out of range")) {
		t.Errorf("range error = %v", err)
	}
	if _, err := b.Label("knows", true); err == nil || !bytes.Contains([]byte(err.Error()), []byte("registered as directed=false")) {
		t.Errorf("directedness error = %v", err)
	}
	if err := b.SetNodeType(-1, "x"); err == nil {
		t.Error("negative SetNodeType succeeded")
	}
	unfrozen := New()
	unfrozen.AddNode("x", "t")
	if _, err := NewOverlayBuilder(unfrozen); err == nil {
		t.Error("NewOverlayBuilder accepted an unfrozen graph")
	}
}

// TestOverlayBinaryRoundTrip: writing an overlay generation compacts it
// into the wire format; reading back reproduces content and fingerprint.
func TestOverlayBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := randomBase(rng, 15, 4, 50)
	ops := randomOps(rng, 15, 4, 12, 0)
	ovG := applyOpsOverlay(t, base, ops)
	var buf bytes.Buffer
	if err := ovG.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireGraphsIdentical(t, "binary round trip", back, ovG.Compact())
	if back.xorFP != ovG.xorFP {
		t.Fatalf("xorFP %016x != %016x after round trip", back.xorFP, ovG.xorFP)
	}
}

// FuzzOverlayEquivalence drives the same property from fuzzer-chosen
// bytes: each byte pair selects an op against a fixed base, applied
// through both paths and compared.
func FuzzOverlayEquivalence(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x13, 0x24, 0x35, 0x46})
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 0x55, 0xaa, 0x11, 0x22})
	f.Fuzz(func(t *testing.T, data []byte) {
		rng := rand.New(rand.NewSource(42))
		base := randomBase(rng, 12, 3, 30)
		var ops []ovOp
		newNodes := 0
		for i := 0; i+1 < len(data); i += 2 {
			a, c := data[i], data[i+1]
			from := NodeID(int(a>>2) % (12 + newNodes))
			to := NodeID(int(c>>2) % (12 + newNodes))
			label := LabelID(int(c) % 3)
			switch a % 5 {
			case 0:
				ops = append(ops, ovOp{kind: 0, name: fmt.Sprintf("f%d", newNodes), typ: "fuzz"})
				newNodes++
			case 1:
				ops = append(ops, ovOp{kind: 1, name: fmt.Sprintf("fl%d", i), directed: c%2 == 0})
			case 2:
				if from != to {
					ops = append(ops, ovOp{kind: 2, from: from, to: to, label: label})
				}
			case 3:
				if from != to {
					ops = append(ops, ovOp{kind: 3, from: from, to: to, label: label})
				}
			case 4:
				ops = append(ops, ovOp{kind: 4, from: from, typ: fmt.Sprintf("t%d", c%3)})
			}
		}
		got := applyOpsOverlay(t, base, ops)
		want := applyOpsRebuild(t, base, ops)
		requireGraphsIdentical(t, "fuzz", got, want)
	})
}
