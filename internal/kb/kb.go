// Package kb implements the knowledge-base graph that REX explains
// relationships over.
//
// A knowledge base is the three-tuple G = (V, E, λ) of Section 2.1 of the
// paper: entities are nodes, primary relationships are labeled edges, and
// λ maps every edge to its relationship label. Edges are either directed
// (e.g. "starring") or undirected (e.g. "spouse"); whether a relationship
// is directed is a property of its label, fixed when the label is first
// registered.
//
// The graph is an in-memory multigraph optimised for the access patterns
// of explanation enumeration: O(1) edge-existence checks, label-interned
// adjacency lists, and deterministic iteration order once the graph is
// frozen.
//
// # Concurrency
//
// Construction (AddNode, Label, AddEdge, Freeze) is single-threaded. Once
// frozen, every read accessor — Neighbors, NeighborsLabeled, Degree,
// HasEdge, NodeByName, NodesOfType, Connectedness, Reachable, Stats and
// friends — is a pure read with no lazy initialisation, so any number of
// goroutines may query one loaded graph concurrently. Freeze also builds
// the per-label adjacency index behind the matcher's candidate
// generation and the entity-type index behind NodesOfType.
package kb

import (
	"fmt"
	"sort"
)

// NodeID identifies an entity in the knowledge base. IDs are dense and
// assigned in insertion order starting from 0.
type NodeID int32

// InvalidNode is returned by lookups that find no entity.
const InvalidNode NodeID = -1

// LabelID identifies an interned relationship label.
type LabelID int32

// InvalidLabel is returned by label lookups that find no label.
const InvalidLabel LabelID = -1

// Dir describes the orientation of an edge as seen from one endpoint.
type Dir int8

// Edge orientations relative to the owning node of a HalfEdge.
const (
	// Out means the edge points away from the owning node.
	Out Dir = iota
	// In means the edge points toward the owning node.
	In
	// Undirected means the edge has no orientation.
	Undirected
)

// String returns a short human-readable orientation name.
func (d Dir) String() string {
	switch d {
	case Out:
		return "out"
	case In:
		return "in"
	case Undirected:
		return "undirected"
	}
	return fmt.Sprintf("Dir(%d)", int8(d))
}

// Node is an entity: a stable ID, a unique human-readable name and an
// entity type (e.g. "person", "film").
type Node struct {
	ID   NodeID
	Name string
	Type string
}

// HalfEdge is one endpoint's view of an edge. A directed edge u→v is
// stored as {To: v, Dir: Out} on u and {To: u, Dir: In} on v; an
// undirected edge is stored with Dir Undirected on both endpoints.
type HalfEdge struct {
	To    NodeID
	Label LabelID
	Dir   Dir
}

// Edge is a full edge record as returned by Graph.Edges.
type Edge struct {
	From  NodeID
	To    NodeID
	Label LabelID
}

// Graph is a labeled multigraph knowledge base. The zero value is an
// empty graph ready to use.
//
// Graphs are built with AddNode/AddEdge and then (optionally) frozen with
// Freeze, which sorts adjacency lists so that all iteration is
// deterministic. Mutating a frozen graph unfreezes it. Graph is not safe
// for concurrent mutation; concurrent reads are safe.
type Graph struct {
	nodes  []Node
	byName map[string]NodeID

	labels        []string
	labelIDs      map[string]LabelID
	labelDirected []bool

	// Build-time representation: per-node adjacency lists plus the
	// edge-existence set behind AddEdge's duplicate detection. Valid
	// whenever the graph is unfrozen; Freeze flattens both into the CSR
	// arrays below and releases them, and thaw reconstructs them before
	// the first post-freeze mutation.
	adj      [][]HalfEdge
	edgeSet  map[edgeKey]struct{}
	numEdges int
	frozen   bool

	// CSR read path, built by Freeze: every half-edge of the graph lives
	// in one contiguous backing array per view, with per-node offset
	// spans. csr is the plain adjacency view — node i's half-edges are
	// csr[csrOff[i]:csrOff[i+1]], sorted by (To, Label, Dir) — and
	// labelCSR the per-label view, same spans re-sorted by (Label, To,
	// Dir) with spans[spanOff[i]:spanOff[i+1]] locating each label run.
	// Both views index into flat arrays, so a frozen graph costs two
	// half-edge arrays plus three small offset arrays no matter how many
	// nodes it has — no per-node slice headers, no pointer chasing.
	csrOff   []int32
	csr      []HalfEdge
	labelCSR []HalfEdge
	spanOff  []int32
	spans    []labelSpan

	// Remaining read-path indexes, precomputed by Freeze so concurrent
	// queries never mutate shared state.
	byType map[string][]NodeID
	fp     string // content fingerprint, computed by Freeze
	xorFP  uint64 // XOR-combinable content hash behind fp (see mutate.go)

	// ov marks this graph as an overlay generation: the CSR arrays above
	// are aliased from an immutable frozen base, and nodes whose
	// adjacency changed since that base are patched through ov (see
	// overlay.go). nil for ordinary graphs.
	ov *overlay
}

// labelSpan locates the half-edges with one label inside the flat
// label-sorted adjacency array; off is an absolute labelCSR offset.
type labelSpan struct {
	label LabelID
	off   int32
	n     int32
}

// edgeKey packs (from, to, label) into a comparable map key. Direction is
// implied by the label's directedness; undirected edges are inserted in
// both orientations.
type edgeKey struct {
	from, to NodeID
	label    LabelID
}

// New returns an empty graph. Equivalent to new(Graph) but reads better
// at call sites.
func New() *Graph { return &Graph{} }

// NumNodes reports the number of entities.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports the number of edges (undirected edges count once).
func (g *Graph) NumEdges() int { return g.numEdges }

// NumLabels reports the number of distinct relationship labels.
func (g *Graph) NumLabels() int { return len(g.labels) }

// AddNode inserts an entity and returns its ID. If an entity with the
// same name already exists its ID is returned and the type is left
// unchanged.
func (g *Graph) AddNode(name, typ string) NodeID {
	if g.byName == nil {
		g.byName = make(map[string]NodeID)
	}
	if id, ok := g.byName[name]; ok {
		return id
	}
	g.thaw()
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Type: typ})
	g.adj = append(g.adj, nil)
	g.byName[name] = id
	return id
}

// Label interns a relationship label, registering whether relationships
// with that label are directed. It returns an error if the label was
// previously registered with the opposite directedness.
func (g *Graph) Label(name string, directed bool) (LabelID, error) {
	if g.labelIDs == nil {
		g.labelIDs = make(map[string]LabelID)
	}
	if id, ok := g.labelIDs[name]; ok {
		if g.labelDirected[id] != directed {
			return InvalidLabel, fmt.Errorf("kb: label %q registered as directed=%v, got directed=%v",
				name, g.labelDirected[id], directed)
		}
		return id, nil
	}
	// Labels are part of the hashed content, so registering one must
	// invalidate the frozen fingerprint like every other mutation.
	g.thaw()
	id := LabelID(len(g.labels))
	g.labels = append(g.labels, name)
	g.labelDirected = append(g.labelDirected, directed)
	g.labelIDs[name] = id
	return id, nil
}

// MustLabel is Label but panics on directedness conflicts. Intended for
// graph construction in tests and generators where labels are static.
func (g *Graph) MustLabel(name string, directed bool) LabelID {
	id, err := g.Label(name, directed)
	if err != nil {
		panic(err)
	}
	return id
}

// LabelName returns the interned name for a label ID.
func (g *Graph) LabelName(id LabelID) string {
	if id < 0 || int(id) >= len(g.labels) {
		return fmt.Sprintf("label(%d)", id)
	}
	return g.labels[id]
}

// LabelByName looks up a label ID by name, returning InvalidLabel if the
// label is unknown.
func (g *Graph) LabelByName(name string) LabelID {
	if id, ok := g.labelIDs[name]; ok {
		return id
	}
	return InvalidLabel
}

// LabelDirected reports whether edges with the given label are directed.
func (g *Graph) LabelDirected(id LabelID) bool {
	return int(id) < len(g.labelDirected) && g.labelDirected[id]
}

// Labels returns all label IDs in registration order.
func (g *Graph) Labels() []LabelID {
	out := make([]LabelID, len(g.labels))
	for i := range out {
		out[i] = LabelID(i)
	}
	return out
}

// Node returns the entity record for an ID. It panics if the ID is out of
// range, matching slice semantics.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// NodeByName looks an entity up by its unique name, returning InvalidNode
// when absent.
func (g *Graph) NodeByName(name string) NodeID {
	if id, ok := g.byName[name]; ok {
		return id
	}
	if g.ov != nil {
		if id, ok := g.ov.addedByName[name]; ok {
			return id
		}
	}
	return InvalidNode
}

// NodeName returns the name of an entity, or a placeholder for an
// out-of-range ID.
func (g *Graph) NodeName(id NodeID) string {
	if id < 0 || int(id) >= len(g.nodes) {
		return fmt.Sprintf("node(%d)", id)
	}
	return g.nodes[id].Name
}

// AddEdge inserts an edge between two existing entities. The label's
// directedness decides whether the edge is directed (from→to) or
// undirected. Duplicate edges (same endpoints and label, respecting
// orientation) are ignored, making the graph a set-multigraph: multiple
// labels may connect the same pair but each (pair, label) occurs once.
// It reports whether the edge was newly inserted.
func (g *Graph) AddEdge(from, to NodeID, label LabelID) (bool, error) {
	if int(from) >= len(g.nodes) || from < 0 {
		return false, fmt.Errorf("kb: AddEdge: from node %d out of range", from)
	}
	if int(to) >= len(g.nodes) || to < 0 {
		return false, fmt.Errorf("kb: AddEdge: to node %d out of range", to)
	}
	if int(label) >= len(g.labels) || label < 0 {
		return false, fmt.Errorf("kb: AddEdge: label %d out of range", label)
	}
	if from == to {
		return false, fmt.Errorf("kb: AddEdge: self-loop on node %d (%s) not supported", from, g.NodeName(from))
	}
	g.thaw()
	if g.edgeSet == nil {
		g.edgeSet = make(map[edgeKey]struct{})
	}
	directed := g.labelDirected[label]
	key := edgeKey{from, to, label}
	if !directed && from > to {
		key = edgeKey{to, from, label}
	}
	if _, dup := g.edgeSet[key]; dup {
		return false, nil
	}
	g.edgeSet[key] = struct{}{}
	if directed {
		g.adj[from] = append(g.adj[from], HalfEdge{To: to, Label: label, Dir: Out})
		g.adj[to] = append(g.adj[to], HalfEdge{To: from, Label: label, Dir: In})
	} else {
		g.adj[from] = append(g.adj[from], HalfEdge{To: to, Label: label, Dir: Undirected})
		g.adj[to] = append(g.adj[to], HalfEdge{To: from, Label: label, Dir: Undirected})
	}
	g.numEdges++
	return true, nil
}

// MustAddEdge is AddEdge but panics on error. Intended for static graph
// construction.
func (g *Graph) MustAddEdge(from, to NodeID, label LabelID) {
	if _, err := g.AddEdge(from, to, label); err != nil {
		panic(err)
	}
}

// HasEdge reports whether an edge with the given label connects from and
// to. For directed labels the orientation from→to is required; for
// undirected labels either orientation matches. On a frozen graph the
// check is a binary search in the node's label-sorted CSR span — no map,
// no hashing; on an unfrozen graph it consults the edge set.
func (g *Graph) HasEdge(from, to NodeID, label LabelID) bool {
	if g.frozen {
		if from < 0 || int(from) >= len(g.nodes) {
			return false
		}
		span := g.NeighborsLabeled(from, label)
		// Within one label the span is sorted by (To, Dir); at most two
		// entries share a To (the In and Out halves of a directed cycle
		// pair), so scan after the binary search.
		lo, hi := 0, len(span)
		for lo < hi {
			mid := (lo + hi) / 2
			if span[mid].To < to {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		for ; lo < len(span) && span[lo].To == to; lo++ {
			if span[lo].Dir != In {
				return true // Out for the required orientation, or Undirected
			}
		}
		return false
	}
	if g.edgeSet == nil {
		return false
	}
	if int(label) < len(g.labelDirected) && !g.labelDirected[label] && from > to {
		from, to = to, from
	}
	_, ok := g.edgeSet[edgeKey{from, to, label}]
	return ok
}

// Degree reports the number of half-edges at a node (each undirected or
// directed incident edge counts once).
func (g *Graph) Degree(id NodeID) int {
	if g.frozen {
		if g.ov != nil {
			if on := g.ov.node(id); on != nil {
				return len(on.csr)
			}
		}
		return int(g.csrOff[id+1] - g.csrOff[id])
	}
	return len(g.adj[id])
}

// Neighbors returns the half-edges at a node. The returned slice is owned
// by the graph and must not be modified. On a frozen graph it is a span
// of the contiguous CSR array, deterministically ordered by (To, Label,
// Dir); on an overlay generation, nodes the overlay touched answer from
// their materialised span instead, in the identical order.
func (g *Graph) Neighbors(id NodeID) []HalfEdge {
	if g.frozen {
		if g.ov != nil {
			if on := g.ov.node(id); on != nil {
				return on.csr
			}
		}
		return g.csr[g.csrOff[id]:g.csrOff[id+1]]
	}
	return g.adj[id]
}

// Edges returns every edge once, ordered by (From, To, Label). Undirected
// edges are reported with From ≤ To. On a frozen graph the list streams
// straight out of the CSR spans, which are already in emission order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	if g.frozen {
		for i := range g.nodes {
			from := NodeID(i)
			for _, he := range g.Neighbors(from) {
				if he.Dir == Out || (he.Dir == Undirected && from <= he.To) {
					out = append(out, Edge{From: from, To: he.To, Label: he.Label})
				}
			}
		}
		return out
	}
	for k := range g.edgeSet {
		out = append(out, Edge{From: k.from, To: k.to, Label: k.label})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// Freeze flattens the per-node adjacency lists into the contiguous CSR
// arrays (sorted so iteration order is deterministic across runs),
// precomputes the read-path indexes (per-label adjacency spans and
// entity-type lists) that make the graph safe and fast to query from
// many goroutines, computes the content fingerprint served by
// Fingerprint, and releases the build-time adjacency lists and edge set —
// a frozen graph is the CSR arrays. Freeze is idempotent and cheap when
// already frozen; mutating a frozen graph reconstructs the build-time
// state transparently (see thaw).
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	g.buildCSR()
	g.adj = nil
	g.edgeSet = nil
	g.frozen = true
	g.buildTypeIndex()
	g.xorFP = g.contentXor()
	g.fp = fpString(g.NumNodes(), g.NumEdges(), g.NumLabels(), g.xorFP)
}

// buildCSR concatenates the adjacency lists into the flat csr array,
// sorts each node's span by (To, Label, Dir), and derives the label view.
// Backing arrays from a previous freeze are reused.
func (g *Graph) buildCSR() {
	n := len(g.nodes)
	if cap(g.csrOff) < n+1 {
		g.csrOff = make([]int32, n+1)
	} else {
		g.csrOff = g.csrOff[:n+1]
	}
	g.csr = g.csr[:0]
	g.csrOff[0] = 0
	for i := 0; i < n; i++ {
		g.csr = append(g.csr, g.adj[i]...)
		g.csrOff[i+1] = int32(len(g.csr))
	}
	for i := 0; i < n; i++ {
		span := g.csr[g.csrOff[i]:g.csrOff[i+1]]
		sort.Slice(span, func(x, y int) bool {
			if span[x].To != span[y].To {
				return span[x].To < span[y].To
			}
			if span[x].Label != span[y].Label {
				return span[x].Label < span[y].Label
			}
			return span[x].Dir < span[y].Dir
		})
	}
	g.deriveLabelView()
}

// deriveLabelView builds labelCSR (each node's span re-sorted by (Label,
// To, Dir)) and the flat per-label span index from the sorted csr array.
// Because a node's csr span is already sorted by (To, Dir) within each
// label, a stable counting pass per node — group sizes, then placement in
// traversal order — produces the label view without a comparison sort.
func (g *Graph) deriveLabelView() {
	n := len(g.nodes)
	if cap(g.labelCSR) < len(g.csr) {
		g.labelCSR = make([]HalfEdge, len(g.csr))
	} else {
		g.labelCSR = g.labelCSR[:len(g.csr)]
	}
	g.spanOff = g.spanOff[:0]
	g.spans = g.spans[:0]
	// Scratch reused across nodes: per-label counts for the labels
	// touched by the current node.
	type labelCount struct {
		label LabelID
		count int32
		off   int32
	}
	var touched []labelCount
	for i := 0; i < n; i++ {
		g.spanOff = append(g.spanOff, int32(len(g.spans)))
		base := g.csrOff[i]
		span := g.csr[base:g.csrOff[i+1]]
		touched = touched[:0]
		for _, he := range span {
			found := false
			for t := range touched {
				if touched[t].label == he.Label {
					touched[t].count++
					found = true
					break
				}
			}
			if !found {
				touched = append(touched, labelCount{label: he.Label, count: 1})
			}
		}
		// Ascending label order for the binary search in NeighborsLabeled.
		sort.Slice(touched, func(x, y int) bool { return touched[x].label < touched[y].label })
		off := base
		for t := range touched {
			touched[t].off = off
			g.spans = append(g.spans, labelSpan{label: touched[t].label, off: off, n: touched[t].count})
			off += touched[t].count
		}
		// Stable placement: traversal order within a label is (To, Dir).
		for _, he := range span {
			for t := range touched {
				if touched[t].label == he.Label {
					g.labelCSR[touched[t].off] = he
					touched[t].off++
					break
				}
			}
		}
	}
	g.spanOff = append(g.spanOff, int32(len(g.spans)))
}

// thaw reconstructs the build-time representation (per-node adjacency
// lists and the edge-existence set) from the CSR arrays so a frozen graph
// can be mutated again. Every mutator calls it first; on an unfrozen
// graph it is a no-op. The CSR views are truncated, keeping their backing
// arrays for the next Freeze. An overlay generation instead detaches
// from its base entirely — the aliased arrays and the shared name index
// belong to the base, which keeps serving other generations.
func (g *Graph) thaw() {
	if !g.frozen {
		return
	}
	adj := g.adjFromCSR() // reads through the frozen, overlay-aware path
	g.frozen = false
	g.adj = adj
	g.edgeSet = edgeSetFromAdj(adj)
	if g.ov != nil {
		g.csr, g.csrOff, g.labelCSR, g.spanOff, g.spans = nil, nil, nil, nil, nil
		g.nodes = append([]Node(nil), g.nodes...)
		byName := make(map[string]NodeID, len(g.nodes))
		for i := range g.nodes {
			byName[g.nodes[i].Name] = g.nodes[i].ID
		}
		g.byName = byName
		g.byType = nil
		g.ov = nil
	} else {
		g.csr = g.csr[:0]
		g.csrOff = g.csrOff[:0]
		g.labelCSR = g.labelCSR[:0]
		g.spanOff = g.spanOff[:0]
		g.spans = g.spans[:0]
	}
	g.fp = ""
}

// adjFromCSR copies the frozen spans back into per-node adjacency
// lists. It must be called while the graph is still frozen: it reads
// through Neighbors so overlay generations resolve correctly.
func (g *Graph) adjFromCSR() [][]HalfEdge {
	adj := make([][]HalfEdge, len(g.nodes))
	for i := range adj {
		span := g.Neighbors(NodeID(i))
		if len(span) > 0 {
			adj[i] = append([]HalfEdge(nil), span...)
		}
	}
	return adj
}

// edgeSetFromAdj rebuilds the edge-existence set behind AddEdge's
// duplicate detection and the unfrozen HasEdge.
func edgeSetFromAdj(adj [][]HalfEdge) map[edgeKey]struct{} {
	total := 0
	for _, a := range adj {
		total += len(a)
	}
	set := make(map[edgeKey]struct{}, total/2)
	for i, a := range adj {
		from := NodeID(i)
		for _, he := range a {
			switch he.Dir {
			case Out:
				set[edgeKey{from, he.To, he.Label}] = struct{}{}
			case Undirected:
				if from <= he.To {
					set[edgeKey{from, he.To, he.Label}] = struct{}{}
				}
			}
		}
	}
	return set
}

// buildTypeIndex materialises the entity-type → node-ID lists behind
// NodesOfType.
func (g *Graph) buildTypeIndex() {
	g.byType = make(map[string][]NodeID)
	for _, n := range g.nodes {
		g.byType[n.Type] = append(g.byType[n.Type], n.ID)
	}
}

// NeighborsLabeled returns the half-edges at a node carrying the given
// label. On a frozen graph this is an allocation-free slice of the
// precomputed label index, ordered by (To, Dir) — the same relative order
// as Neighbors filtered to the label. On an unfrozen graph it falls back
// to a filtered copy. The returned slice is owned by the graph and must
// not be modified.
func (g *Graph) NeighborsLabeled(id NodeID, label LabelID) []HalfEdge {
	if g.frozen && int(id) < len(g.nodes) {
		if g.ov != nil {
			if on := g.ov.node(id); on != nil {
				return on.labeled(label)
			}
		}
		spans := g.spans[g.spanOff[id]:g.spanOff[id+1]]
		lo, hi := 0, len(spans)
		for lo < hi {
			mid := (lo + hi) / 2
			if spans[mid].label < label {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(spans) && spans[lo].label == label {
			sp := spans[lo]
			return g.labelCSR[sp.off : sp.off+sp.n]
		}
		return nil
	}
	var out []HalfEdge
	for _, he := range g.adj[id] {
		if he.Label == label {
			out = append(out, he)
		}
	}
	return out
}

// Frozen reports whether adjacency iteration order is deterministic.
func (g *Graph) Frozen() bool { return g.frozen }

// Nodes returns all entity records in ID order. The slice is a copy.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// NodesOfType returns the IDs of all entities with the given type, in ID
// order. On a frozen graph the result is copied from the precomputed
// type index instead of scanning every node. The slice is always a copy.
func (g *Graph) NodesOfType(typ string) []NodeID {
	if g.frozen {
		if g.ov != nil {
			return g.ov.nodesOfType(typ)
		}
		return append([]NodeID(nil), g.byType[typ]...)
	}
	var out []NodeID
	for _, n := range g.nodes {
		if n.Type == typ {
			out = append(out, n.ID)
		}
	}
	return out
}

// Stats summarises the graph for logging and experiment reports.
type Stats struct {
	Nodes     int
	Edges     int
	Labels    int
	MaxDegree int
	AvgDegree float64
}

// Stats computes summary statistics over the graph.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges(), Labels: g.NumLabels()}
	total := 0
	for i := 0; i < len(g.nodes); i++ {
		d := g.Degree(NodeID(i))
		total += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	if s.Nodes > 0 {
		s.AvgDegree = float64(total) / float64(s.Nodes)
	}
	return s
}
