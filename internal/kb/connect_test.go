package kb

import (
	"testing"
	"testing/quick"
)

// diamond builds a--b--d and a--c--d plus a direct a--d edge, all with an
// undirected label: 2 two-hop paths and 1 one-hop path between a and d.
func diamond(t *testing.T) (*Graph, NodeID, NodeID) {
	t.Helper()
	g := New()
	a := g.AddNode("a", "t")
	b := g.AddNode("b", "t")
	c := g.AddNode("c", "t")
	d := g.AddNode("d", "t")
	l := g.MustLabel("r", false)
	g.MustAddEdge(a, b, l)
	g.MustAddEdge(b, d, l)
	g.MustAddEdge(a, c, l)
	g.MustAddEdge(c, d, l)
	g.MustAddEdge(a, d, l)
	g.Freeze()
	return g, a, d
}

func TestConnectednessCounts(t *testing.T) {
	g, a, d := diamond(t)
	// Simple paths a→d ignoring direction: the direct edge (length 1)
	// and the two two-hop routes a-b-d and a-c-d; b and c connect only
	// to a and d, so no longer simple path exists.
	cases := []struct {
		maxLen, want int
	}{
		{0, 0},
		{1, 1},
		{2, 3},
		{3, 3},
		{4, 3},
	}
	for _, tc := range cases {
		if got := g.Connectedness(a, d, tc.maxLen, -1); got != tc.want {
			t.Errorf("Connectedness(maxLen=%d) = %d, want %d", tc.maxLen, got, tc.want)
		}
	}
}

func TestConnectednessParallelLabels(t *testing.T) {
	g := New()
	a := g.AddNode("a", "t")
	b := g.AddNode("b", "t")
	l1 := g.MustLabel("r1", true)
	l2 := g.MustLabel("r2", false)
	g.MustAddEdge(a, b, l1)
	g.MustAddEdge(a, b, l2)
	g.Freeze()
	if got := g.Connectedness(a, b, 4, -1); got != 2 {
		t.Fatalf("parallel labels should count as 2 paths, got %d", got)
	}
}

func TestConnectednessCap(t *testing.T) {
	g, a, d := diamond(t)
	if got := g.Connectedness(a, d, 4, 2); got != 2 {
		t.Fatalf("capped count = %d, want 2", got)
	}
	if got := g.Connectedness(a, d, 4, 0); got != 0 {
		t.Fatalf("cap 0 should short-circuit, got %d", got)
	}
}

func TestConnectednessSamePair(t *testing.T) {
	g, a, _ := diamond(t)
	if got := g.Connectedness(a, a, 4, -1); got != 0 {
		t.Fatalf("same-node connectedness = %d", got)
	}
}

func TestBucketThresholds(t *testing.T) {
	cases := []struct {
		conn int
		want ConnBucket
	}{
		{0, ConnLow}, {30, ConnLow}, {31, ConnMedium},
		{100, ConnMedium}, {101, ConnHigh}, {5000, ConnHigh},
	}
	for _, tc := range cases {
		if got := Bucket(tc.conn); got != tc.want {
			t.Errorf("Bucket(%d) = %v, want %v", tc.conn, got, tc.want)
		}
	}
	if ConnLow.String() != "low" || ConnMedium.String() != "medium" || ConnHigh.String() != "high" {
		t.Error("bucket names")
	}
	if ConnBucket(9).String() != "unknown" {
		t.Error("unknown bucket name")
	}
}

func TestReachable(t *testing.T) {
	g := New()
	a := g.AddNode("a", "t")
	b := g.AddNode("b", "t")
	c := g.AddNode("c", "t")
	iso := g.AddNode("iso", "t")
	l := g.MustLabel("r", true)
	g.MustAddEdge(a, b, l)
	g.MustAddEdge(b, c, l)
	g.Freeze()
	if !g.Reachable(a, c, 2) {
		t.Error("a should reach c in 2")
	}
	if g.Reachable(a, c, 1) {
		t.Error("a should not reach c in 1")
	}
	if !g.Reachable(c, a, 2) {
		t.Error("reachability ignores direction")
	}
	if g.Reachable(a, iso, 10) {
		t.Error("isolated node reachable")
	}
	if !g.Reachable(a, a, 0) {
		t.Error("node must reach itself")
	}
}

// TestQuickConnectednessSymmetric property-checks that the simple-path
// count is symmetric in its endpoints (edges are treated undirected).
func TestQuickConnectednessSymmetric(t *testing.T) {
	f := func(seed int64, sz, x, y uint8) bool {
		nodes := int(sz%12) + 3
		g := randomGraph(seed, nodes)
		a := NodeID(int(x) % nodes)
		b := NodeID(int(y) % nodes)
		return g.Connectedness(a, b, 4, -1) == g.Connectedness(b, a, 4, -1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConnectednessMonotoneInLength property-checks that raising the
// length limit never lowers the count.
func TestQuickConnectednessMonotoneInLength(t *testing.T) {
	f := func(seed int64, sz, x, y uint8) bool {
		nodes := int(sz%12) + 3
		g := randomGraph(seed, nodes)
		a := NodeID(int(x) % nodes)
		b := NodeID(int(y) % nodes)
		prev := 0
		for l := 1; l <= 4; l++ {
			cur := g.Connectedness(a, b, l, -1)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
