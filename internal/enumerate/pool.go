package enumerate

import (
	"sync"

	"rex/internal/kb"
	"rex/internal/pattern"
)

// Pool reuses enumeration state across queries. The facade creates one
// Pool per knowledge-base snapshot — the same lifetime contract as
// measure.Evaluator — so steady-state enumeration touches the allocator
// only for the explanations it returns, and a hot-swapped snapshot's
// buffers become collectable the moment its Pool is dropped. A Pool is
// safe for concurrent use: each query checks out a private state, so
// parallel BatchExplain callers never share scratch.
//
// The package-level entry points (Explanations, Paths, ...) fall back to
// a process-wide Pool, keeping the zero-configuration API allocation-
// friendly too.
type Pool struct {
	p sync.Pool
}

// NewPool returns an empty enumeration-state pool.
func NewPool() *Pool {
	pl := &Pool{}
	pl.p.New = func() any { return newEnumState() }
	return pl
}

// defaultPool backs the package-level API.
var defaultPool = NewPool()

// pool resolves the pool configured on cfg, defaulting to the
// process-wide one.
func (cfg Config) pool() *Pool {
	if cfg.Pool != nil {
		return cfg.Pool
	}
	return defaultPool
}

func (pl *Pool) get() *enumState { return pl.p.Get().(*enumState) }

func (pl *Pool) put(s *enumState) {
	if s.oversized() {
		return // let an unusually large query's buffers go to the GC
	}
	pl.p.Put(s)
}

// retainedCap bounds how many elements a pooled buffer may keep between
// queries; a state that outgrew it is dropped instead of pinned forever.
const retainedCap = 1 << 16

// enumState is the per-query scratch of the enumeration pipeline:
// prioritized-path frontier storage, path grouping tables and the
// union-phase merge machinery. All of it is reused across queries; none
// of it retains a reference to any graph, context or returned
// explanation after a query completes.
type enumState struct {
	// Prioritized path search (path.go).
	stateIdx map[kb.NodeID]int32 // node → index into states
	states   []nodeState
	pq       actQueue
	out      []pathKey
	seen     map[pathKey]struct{}
	jobs     []expandJob
	results  [][]partial

	// Path grouping (enumerate.go).
	groups   map[stepSeqKey]int32
	gcounts  []int32
	nodesBuf [pattern.MaxVars]kb.NodeID
	stepsBuf [pattern.MaxVars - 1]kb.HalfEdge

	// Union phase (union.go).
	unionSeen map[pattern.Key]struct{}
	newIndex  map[pattern.Key]int
	merger    *pattern.Merger

	// fresh is true until the state's first enumeration, distinguishing
	// a newly allocated state from one recycled through the pool; the
	// query trace reports the latter as pool reuse.
	fresh bool
}

func newEnumState() *enumState {
	return &enumState{
		stateIdx:  make(map[kb.NodeID]int32),
		seen:      make(map[pathKey]struct{}),
		groups:    make(map[stepSeqKey]int32),
		unionSeen: make(map[pattern.Key]struct{}),
		newIndex:  make(map[pattern.Key]int),
		merger:    pattern.NewMerger(),
		fresh:     true,
	}
}

// oversized reports whether the state grew past what is worth
// retaining. Every reusable buffer counts — maps never shrink, so
// re-pooling a state after one pathological query would pin its
// footprint for the snapshot's lifetime.
func (s *enumState) oversized() bool {
	return cap(s.out) > retainedCap ||
		len(s.seen) > retainedCap ||
		cap(s.states) > retainedCap ||
		len(s.stateIdx) > retainedCap ||
		len(s.groups) > retainedCap ||
		cap(s.gcounts) > retainedCap ||
		len(s.unionSeen) > retainedCap ||
		len(s.newIndex) > retainedCap ||
		s.merger.Oversized(retainedCap)
}

// nodeState is the per-node frontier bookkeeping of the prioritized
// search; see pathEnumPrioritized.
type nodeState struct {
	partial  [2][]partial
	expanded [2]int32 // partial[s][:expanded[s]] have been expanded
	act      [2]float64
}

// expandJob is one popped frontier entry: the node to expand on one
// side, its pending partial paths (snapshotted sequentially before the
// concurrent phase), and the activation it will spread.
type expandJob struct {
	node    kb.NodeID
	s       side
	spread  float64
	pending []partial
}

// resetPrio prepares the prioritized-search state for one query.
func (s *enumState) resetPrio() {
	clear(s.stateIdx)
	s.states = s.states[:0]
	s.pq = s.pq[:0]
	s.out = s.out[:0]
	clear(s.seen)
}

// stateFor returns the index of id's nodeState, creating one (with
// recycled buffers) on first touch. Callers must index s.states fresh
// after any call that can create states — the backing array may move.
func (s *enumState) stateFor(id kb.NodeID) int32 {
	if i, ok := s.stateIdx[id]; ok {
		return i
	}
	i := int32(len(s.states))
	if len(s.states) < cap(s.states) {
		s.states = s.states[:i+1]
		ns := &s.states[i]
		ns.partial[0] = ns.partial[0][:0]
		ns.partial[1] = ns.partial[1][:0]
		ns.expanded = [2]int32{}
		ns.act = [2]float64{}
	} else {
		s.states = append(s.states, nodeState{})
	}
	s.stateIdx[id] = i
	return i
}
