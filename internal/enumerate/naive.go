package enumerate

import (
	"rex/internal/kb"
	"rex/internal/pattern"
)

// NaiveEnum is the baseline of Algorithm 1: enumerate graph patterns by
// gSpan-style expansion (add one edge at a time, between existing
// variables or to a fresh variable), prune patterns that are duplicated
// or have no instance, and report the minimal ones. Unlike the path-union
// framework it generates — and must carry — non-minimal intermediate
// patterns, because a non-minimal pattern can expand into a minimal one.
//
// Instances propagate incrementally, as the paper notes ("can be computed
// efficiently from Qp[i]'s instances and G"): adding an edge between
// existing variables filters the parent's instances; adding an edge to a
// new variable extends them through the adjacency lists.
//
// The seed is the two target variables with no edges (a single trivially
// satisfied instance), which is equivalent to the paper's single-start-
// node seed given that every instance pins both targets anyway.
func NaiveEnum(g *kb.Graph, start, end kb.NodeID, maxVars int) []*pattern.Explanation {
	if maxVars <= 0 {
		maxVars = DefaultMaxPatternSize
	}
	seedP := pattern.MustNew(g, 2, nil)
	seed := &pattern.Explanation{
		P:         seedP,
		Instances: []pattern.Instance{{start, end}},
	}
	queue := []*pattern.Explanation{seed}
	seen := map[pattern.Key]struct{}{seedP.Key(): {}}
	var result []*pattern.Explanation

	for i := 0; i < len(queue); i++ {
		for _, cand := range expandNaive(g, queue[i], start, end, maxVars) {
			key := cand.P.Key()
			if _, dup := seen[key]; dup {
				continue
			}
			if len(cand.Instances) == 0 {
				continue
			}
			seen[key] = struct{}{}
			queue = append(queue, cand)
			if cand.P.Minimal() {
				result = append(result, cand)
			}
		}
	}
	sortExplanations(result)
	return result
}

// expandNaive generates the one-edge expansions of an explanation:
//
//	(a) a new edge between two existing variables, for every label and
//	    (directed) orientation, keeping instances that satisfy it;
//	(b) a new edge from an existing variable to a fresh variable,
//	    data-driven from the adjacency of the variable's bindings.
func expandNaive(g *kb.Graph, re *pattern.Explanation, start, end kb.NodeID, maxVars int) []*pattern.Explanation {
	var out []*pattern.Explanation
	p := re.P
	n := p.NumVars()

	// (a) Close an edge between existing variables. Candidate labels are
	// probed from the data: for each instance and variable pair, the
	// edges actually present between the bound entities.
	type closeKey struct {
		u, v  pattern.VarID
		label kb.LabelID
	}
	closeCands := make(map[closeKey]struct{})
	for _, in := range re.Instances {
		for u := 0; u < n; u++ {
			for _, he := range g.Neighbors(in[u]) {
				for v := 0; v < n; v++ {
					if u == v || in[v] != he.To {
						continue
					}
					var k closeKey
					switch he.Dir {
					case kb.Out:
						k = closeKey{pattern.VarID(u), pattern.VarID(v), he.Label}
					case kb.In:
						k = closeKey{pattern.VarID(v), pattern.VarID(u), he.Label}
					default:
						a, b := pattern.VarID(u), pattern.VarID(v)
						if a > b {
							a, b = b, a
						}
						k = closeKey{a, b, he.Label}
					}
					closeCands[k] = struct{}{}
				}
			}
		}
	}
	for k := range closeCands {
		newEdge := pattern.Edge{U: k.u, V: k.v, Label: k.label}
		if hasEdge(p, newEdge, g) {
			continue
		}
		np, err := pattern.New(g, n, append(append([]pattern.Edge{}, p.Edges()...), newEdge))
		if err != nil {
			continue
		}
		var insts []pattern.Instance
		for _, in := range re.Instances {
			if g.HasEdge(in[k.u], in[k.v], k.label) {
				insts = append(insts, in)
			}
		}
		if len(insts) > 0 {
			out = append(out, pattern.NewExplanation(np, insts))
		}
	}

	// (b) Grow a fresh variable off an existing one, data-driven.
	if n < maxVars {
		type growKey struct {
			u       pattern.VarID
			label   kb.LabelID
			outward bool // pattern edge u→new (for directed labels)
		}
		growCands := make(map[growKey]struct{})
		for _, in := range re.Instances {
			for u := 0; u < n; u++ {
				for _, he := range g.Neighbors(in[u]) {
					if he.To == start || he.To == end {
						continue
					}
					growCands[growKey{pattern.VarID(u), he.Label, he.Dir == kb.Out || he.Dir == kb.Undirected}] = struct{}{}
				}
			}
		}
		for k := range growCands {
			newVar := pattern.VarID(n)
			var newEdge pattern.Edge
			if k.outward {
				newEdge = pattern.Edge{U: k.u, V: newVar, Label: k.label}
			} else {
				newEdge = pattern.Edge{U: newVar, V: k.u, Label: k.label}
			}
			np, err := pattern.New(g, n+1, append(append([]pattern.Edge{}, p.Edges()...), newEdge))
			if err != nil {
				continue
			}
			wantDir := kb.Undirected
			if g.LabelDirected(k.label) {
				if k.outward {
					wantDir = kb.Out
				} else {
					wantDir = kb.In
				}
			}
			var insts []pattern.Instance
			for _, in := range re.Instances {
			nextHalfEdge:
				for _, he := range g.Neighbors(in[k.u]) {
					if he.Label != k.label || he.Dir != wantDir {
						continue
					}
					// Injective embedding: the fresh variable must bind
					// an entity no other variable (targets included)
					// already binds.
					for _, bound := range in {
						if he.To == bound {
							continue nextHalfEdge
						}
					}
					ext := make(pattern.Instance, n+1)
					copy(ext, in)
					ext[newVar] = he.To
					insts = append(insts, ext)
				}
			}
			if len(insts) > 0 {
				out = append(out, pattern.NewExplanation(np, insts))
			}
		}
	}
	return out
}

// hasEdge reports whether the pattern already contains an equivalent edge
// (same endpoints and label, orientation-insensitive for undirected
// labels — New normalises those to U ≤ V, and e is pre-normalised by the
// candidate construction).
func hasEdge(p *pattern.Pattern, e pattern.Edge, sch pattern.Schema) bool {
	for _, pe := range p.Edges() {
		if pe == e {
			return true
		}
	}
	return false
}
