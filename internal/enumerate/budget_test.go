package enumerate

import (
	"context"
	"testing"
	"time"

	"rex/internal/kbgen"
	"rex/internal/pattern"
)

// explanationSets indexes an explanation list by canonical pattern key,
// mapping to the set of instance keys, for subset comparisons.
func explanationSets(es []*pattern.Explanation) map[pattern.Key]map[pattern.InstanceKey]bool {
	out := make(map[pattern.Key]map[pattern.InstanceKey]bool, len(es))
	for _, ex := range es {
		insts := make(map[pattern.InstanceKey]bool, len(ex.Instances))
		for _, in := range ex.Instances {
			insts[in.Key()] = true
		}
		out[ex.P.Key()] = insts
	}
	return out
}

// assertSubset checks that every explanation of sub appears in super
// with an instance set containing sub's.
func assertSubset(t *testing.T, label string, sub, super []*pattern.Explanation) {
	t.Helper()
	superSets := explanationSets(super)
	for _, ex := range sub {
		insts, ok := superSets[ex.P.Key()]
		if !ok {
			t.Fatalf("%s: pattern %v absent from the larger-budget result", label, ex.P)
		}
		for _, in := range ex.Instances {
			if !insts[in.Key()] {
				t.Fatalf("%s: pattern %v instance %v absent from the larger-budget result", label, ex.P, in)
			}
		}
	}
}

// TestBudgetedEnumerationPrefixConsistent is the determinism contract of
// the expansion budget: results for growing budgets are nested subsets
// (budget N ⊆ budget M for N ≤ M ⊆ unbudgeted), identical across worker
// counts, and a budget large enough to finish reports no truncation and
// matches the unbudgeted result exactly.
func TestBudgetedEnumerationPrefixConsistent(t *testing.T) {
	g := kbgen.Sample()
	g.Freeze()
	s := g.NodeByName("brad_pitt")
	e := g.NodeByName("angelina_jolie")
	base := Config{MaxPatternSize: 5, PathAlg: PathPrioritized, UnionAlg: UnionPrune}
	ctx := context.Background()

	full, trunc, err := ExplanationsBudgeted(ctx, g, s, e, base)
	if err != nil {
		t.Fatal(err)
	}
	if trunc {
		t.Fatal("unbudgeted enumeration reported truncation")
	}
	if len(full) == 0 {
		t.Fatal("sample enumeration returned nothing")
	}

	var prev []*pattern.Explanation
	sawTruncated := false
	for budget := 1; budget <= 1024; budget *= 2 {
		cfg := base
		cfg.Budget = Budget{MaxExpansions: budget}
		es, truncated, err := ExplanationsBudgeted(ctx, g, s, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if truncated {
			sawTruncated = true
		}
		assertSubset(t, "budget vs full", es, full)
		if prev != nil {
			assertSubset(t, "nesting", prev, es)
		}
		prev = es

		// Worker-count independence: the expansion budget pins the
		// serial pop order, so any Workers setting yields the same set.
		cfg.Workers = 4
		es4, trunc4, err := ExplanationsBudgeted(ctx, g, s, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if trunc4 != truncated || len(es4) != len(es) {
			t.Fatalf("budget %d: workers=4 gives %d explanations (trunc=%v), workers=0 gives %d (trunc=%v)",
				budget, len(es4), trunc4, len(es), truncated)
		}
		for i := range es {
			if es[i].P.Key() != es4[i].P.Key() || len(es[i].Instances) != len(es4[i].Instances) {
				t.Fatalf("budget %d: explanation %d differs across worker counts", budget, i)
			}
		}

		if !truncated {
			// Budget covered the whole search: output must equal the
			// unbudgeted enumeration exactly.
			if len(es) != len(full) {
				t.Fatalf("untruncated budget %d: %d explanations, unbudgeted %d", budget, len(es), len(full))
			}
			for i := range full {
				if es[i].P.Key() != full[i].P.Key() || len(es[i].Instances) != len(full[i].Instances) {
					t.Fatalf("untruncated budget %d: explanation %d differs from unbudgeted", budget, i)
				}
			}
			break
		}
	}
	if !sawTruncated {
		t.Fatal("budget sweep never truncated; the test exercised nothing")
	}
}

// TestBudgetDeadlineTruncates checks the wall-clock budget: an already-
// expired deadline truncates immediately (returning the cheap early
// paths, possibly none) without error, and a generous deadline changes
// nothing.
func TestBudgetDeadlineTruncates(t *testing.T) {
	g := kbgen.Sample()
	g.Freeze()
	s := g.NodeByName("brad_pitt")
	e := g.NodeByName("angelina_jolie")
	base := Config{MaxPatternSize: 5, PathAlg: PathPrioritized, UnionAlg: UnionPrune}
	ctx := context.Background()

	cfg := base
	cfg.Budget = Budget{Deadline: time.Now().Add(-time.Second)}
	es, truncated, err := ExplanationsBudgeted(ctx, g, s, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("expired deadline did not truncate")
	}

	full, _, err := ExplanationsBudgeted(ctx, g, s, e, base)
	if err != nil {
		t.Fatal(err)
	}
	assertSubset(t, "expired deadline", es, full)

	cfg.Budget = Budget{Deadline: time.Now().Add(time.Hour)}
	es, truncated, err = ExplanationsBudgeted(ctx, g, s, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("generous deadline truncated")
	}
	if len(es) != len(full) {
		t.Fatalf("generous deadline: %d explanations, unbudgeted %d", len(es), len(full))
	}
}
