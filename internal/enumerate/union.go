package enumerate

import (
	"context"
	"time"

	"rex/internal/obs"
	"rex/internal/pattern"
)

// Path explanation combination (Section 3.3): grow the set of minimal
// explanations ring by ring. Ring 0 is the path explanations (MinP(1));
// ring k is obtained by merging ring k-1 explanations with path
// explanations (Theorem 2 guarantees completeness). Duplicates are
// detected by canonical pattern keys, globally across rings, so each
// minimal pattern surfaces exactly once — at the ring equal to its
// minimal covering cardinality minus one.
//
// Both algorithms drive the pattern.Merger with a key-first protocol:
// the canonical key of each merge candidate is computed in reused
// scratch before any instance work, so a candidate that duplicates an
// already-committed pattern costs no instance join and no allocation,
// and only explanations that enter the result are ever materialised.

// PathUnionBasic is Algorithm 3: every explanation of the previous ring
// merges with every path explanation.
func PathUnionBasic(qpath []*pattern.Explanation, maxVars int) []*pattern.Explanation {
	st := defaultPool.get()
	defer defaultPool.put(st)
	out, _, _ := st.pathUnionBasic(context.Background(), qpath, maxVars, time.Time{})
	return out
}

// pathUnionBasic implements PathUnionBasic with cancellation, checked
// once per merge pair, and an optional anytime deadline: on expiry the
// explanations committed so far (each complete, with its instances) are
// returned with truncated = true.
func (st *enumState) pathUnionBasic(ctx context.Context, qpath []*pattern.Explanation, maxVars int, deadline time.Time) ([]*pattern.Explanation, bool, error) {
	tr := obs.FromContext(ctx)
	t0 := tr.Begin()
	var merges int64
	q := append([]*pattern.Explanation{}, qpath...)
	seen := st.unionSeen
	clear(seen)
	for _, re := range qpath {
		seen[re.P.Key()] = struct{}{}
	}
	check := cancelCheck{ctx: ctx}
	clock := budgetClock{deadline: deadline}
	decide := func(k pattern.Key) pattern.MergeAction {
		if _, dup := seen[k]; dup {
			return pattern.MergeSkip
		}
		return pattern.MergeTake
	}
	expand := qpath
	for len(expand) > 0 {
		var qnew []*pattern.Explanation
		take := func(k pattern.Key, re *pattern.Explanation) {
			seen[k] = struct{}{}
			qnew = append(qnew, re)
		}
		for _, re1 := range expand {
			for _, re2 := range qpath {
				if err := check.step(); err != nil {
					return nil, false, err
				}
				if clock.hit() {
					q = append(q, qnew...)
					tr.Truncated(obs.StageMerge, obs.TruncDeadline)
					tr.AddMerges(merges)
					tr.End(obs.StageMerge, t0, int64(len(q)))
					return q, true, nil
				}
				merges++
				st.merger.Merge(re1, re2, maxVars, decide, take)
			}
		}
		q = append(q, qnew...)
		expand = qnew
	}
	tr.AddMerges(merges)
	tr.End(obs.StageMerge, t0, int64(len(q)))
	return q, false, nil
}

// PathUnionPrune is Algorithm 4: composition histories restrict which
// paths each explanation needs to merge with. Per Theorem 3, a pattern in
// MinP(k) (k > 2) has a covering pair {p0, p1} ⊂ MinP(k-1) sharing a
// MinP(k-2) sub-component; so when expanding an explanation of the
// current ring it suffices to try the paths that built its ring-siblings
// sharing a parent (plus, on the first ring, all paths).
func PathUnionPrune(qpath []*pattern.Explanation, maxVars int) []*pattern.Explanation {
	st := defaultPool.get()
	defer defaultPool.put(st)
	out, _, _ := st.pathUnionPrune(context.Background(), qpath, maxVars, time.Time{})
	return out
}

// pathUnionPrune implements PathUnionPrune with cancellation, checked
// once per merge pair. Candidates that duplicate an older ring are
// skipped before instance work; candidates that duplicate the current
// ring run the instance join only to decide whether a composition
// history entry is due (MergeProbe) — exactly the work the unpooled
// implementation performed, minus every wasted materialisation. An
// anytime deadline returns the explanations committed so far (each
// complete) with truncated = true.
func (st *enumState) pathUnionPrune(ctx context.Context, qpath []*pattern.Explanation, maxVars int, deadline time.Time) ([]*pattern.Explanation, bool, error) {
	tr := obs.FromContext(ctx)
	t0 := tr.Begin()
	var merges int64
	q := append([]*pattern.Explanation{}, qpath...)
	seen := st.unionSeen
	clear(seen)
	for _, re := range qpath {
		seen[re.P.Key()] = struct{}{}
	}
	check := cancelCheck{ctx: ctx}
	clock := budgetClock{deadline: deadline}

	type histPair struct{ parent, path int }
	expand := qpath
	var hExpand [][]histPair // composition history per expand entry; nil on ring 0
	newIndex := st.newIndex  // canonical key → index in qnew, reset per ring
	for len(expand) > 0 {
		var (
			qnew []*pattern.Explanation
			hNew [][]histPair
		)
		clear(newIndex)
		// parentPaths[x] is the set of path indexes that, merged with
		// parent x, produced some explanation of the current ring.
		var parentPaths map[int]map[int]struct{}
		if hExpand != nil {
			parentPaths = make(map[int]map[int]struct{})
			for _, h := range hExpand {
				for _, pr := range h {
					set, ok := parentPaths[pr.parent]
					if !ok {
						set = make(map[int]struct{})
						parentPaths[pr.parent] = set
					}
					set[pr.path] = struct{}{}
				}
			}
		}

		decide := func(k pattern.Key) pattern.MergeAction {
			if _, dup := seen[k]; dup {
				return pattern.MergeSkip // duplicated against Q (older rings)
			}
			if _, dup := newIndex[k]; dup {
				return pattern.MergeProbe // current ring: history bookkeeping only
			}
			return pattern.MergeTake
		}
		var curParent, curPath int
		take := func(k pattern.Key, re *pattern.Explanation) {
			idx, ok := newIndex[k]
			if !ok {
				idx = len(qnew)
				newIndex[k] = idx
				qnew = append(qnew, re)
				hNew = append(hNew, nil)
			}
			hNew[idx] = append(hNew[idx], histPair{parent: curParent, path: curPath})
		}

		for i1, re1 := range expand {
			// Candidate paths to merge with re1 (the set S_path of
			// Algorithm 4).
			var candidates []int
			if hExpand == nil {
				candidates = make([]int, len(qpath))
				for j := range qpath {
					candidates[j] = j
				}
			} else {
				set := make(map[int]struct{})
				for _, pr := range hExpand[i1] {
					for j2 := range parentPaths[pr.parent] {
						set[j2] = struct{}{}
					}
				}
				candidates = make([]int, 0, len(set))
				for j2 := range set {
					candidates = append(candidates, j2)
				}
				// Deterministic merge order.
				sortInts(candidates)
			}
			for _, i2 := range candidates {
				if err := check.step(); err != nil {
					return nil, false, err
				}
				if clock.hit() {
					q = append(q, qnew...)
					tr.Truncated(obs.StageMerge, obs.TruncDeadline)
					tr.AddMerges(merges)
					tr.End(obs.StageMerge, t0, int64(len(q)))
					return q, true, nil
				}
				merges++
				curParent, curPath = i1, i2
				st.merger.Merge(re1, qpath[i2], maxVars, decide, take)
			}
		}
		for _, re := range qnew {
			seen[re.P.Key()] = struct{}{}
		}
		q = append(q, qnew...)
		expand, hExpand = qnew, hNew
	}
	tr.AddMerges(merges)
	tr.End(obs.StageMerge, t0, int64(len(q)))
	return q, false, nil
}

// sortInts insertion-sorts the (small) candidate index sets so merge
// order, and therefore instance ordering inside merged explanations, is
// deterministic.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
