package enumerate

import (
	"testing"

	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/match"
	"rex/internal/pattern"
)

// pairNames are entity pairs from the sample KB exercising different
// connection structures: married co-stars, pure co-stars, multi-film
// collaborators, director-actor, and a sparse pair.
var pairNames = [][2]string{
	{"brad_pitt", "angelina_jolie"},
	{"brad_pitt", "tom_cruise"},
	{"kate_winslet", "leonardo_dicaprio"},
	{"james_cameron", "kate_winslet"},
	{"mel_gibson", "helen_hunt"},
	{"will_smith", "jada_pinkett_smith"},
	{"brad_pitt", "julia_roberts"},
}

func samplePair(t *testing.T, g *kb.Graph, names [2]string) (kb.NodeID, kb.NodeID) {
	t.Helper()
	s := g.NodeByName(names[0])
	e := g.NodeByName(names[1])
	if s == kb.InvalidNode || e == kb.InvalidNode {
		t.Fatalf("sample KB is missing %v", names)
	}
	return s, e
}

// resultSignature flattens an explanation list into a canonical
// comparable form: pattern canonical key → sorted instance keys.
func resultSignature(t *testing.T, es []*pattern.Explanation) map[string][]pattern.InstanceKey {
	t.Helper()
	sig := make(map[string][]pattern.InstanceKey, len(es))
	for _, ex := range es {
		key := ex.P.CanonicalKey()
		if _, dup := sig[key]; dup {
			t.Fatalf("duplicate pattern in result: %v", ex.P)
		}
		sig[key] = ex.CanonicalInstanceKeys()
	}
	return sig
}

func diffSignatures(t *testing.T, name string, want, got map[string][]pattern.InstanceKey) {
	t.Helper()
	for k, wi := range want {
		gi, ok := got[k]
		if !ok {
			t.Errorf("%s: missing pattern %q", name, k)
			continue
		}
		if len(wi) != len(gi) {
			t.Errorf("%s: pattern %q has %d instances, want %d", name, k, len(gi), len(wi))
			continue
		}
		for i := range wi {
			if wi[i] != gi[i] {
				t.Errorf("%s: pattern %q instance %d differs", name, k, i)
				break
			}
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: extra pattern %q", name, k)
		}
	}
}

// TestFrameworkMatchesNaiveEnum is the central correctness test of the
// enumeration subsystem: every path-enumeration × path-union combination
// must produce exactly the explanations the brute-force NaiveEnum
// baseline finds (same minimal patterns, same instance sets).
func TestFrameworkMatchesNaiveEnum(t *testing.T) {
	g := kbgen.Sample()
	for _, names := range pairNames {
		start, end := samplePair(t, g, names)
		want := resultSignature(t, NaiveEnum(g, start, end, DefaultMaxPatternSize))
		for _, pa := range []PathAlgorithm{PathNaive, PathBasic, PathPrioritized} {
			for _, ua := range []UnionAlgorithm{UnionBasic, UnionPrune} {
				cfg := Config{PathAlg: pa, UnionAlg: ua}
				got := resultSignature(t, Explanations(g, start, end, cfg))
				name := names[0] + "/" + names[1] + " " + pa.String() + "+" + ua.String()
				diffSignatures(t, name, want, got)
			}
		}
	}
}

// TestAllResultsMinimalWithInstances checks the framework's core
// guarantee: only minimal patterns, each with at least one valid
// instance.
func TestAllResultsMinimalWithInstances(t *testing.T) {
	g := kbgen.Sample()
	for _, names := range pairNames {
		start, end := samplePair(t, g, names)
		for _, ex := range Explanations(g, start, end, Config{PathAlg: PathPrioritized, UnionAlg: UnionPrune}) {
			if !ex.P.Minimal() {
				t.Errorf("%v: non-minimal pattern %v", names, ex.P)
			}
			if len(ex.Instances) == 0 {
				t.Errorf("%v: pattern %v has no instances", names, ex.P)
			}
			if err := ex.Validate(g, start, end); err != nil {
				t.Errorf("%v: pattern %v: %v", names, ex.P, err)
			}
			if ex.P.NumVars() > DefaultMaxPatternSize {
				t.Errorf("%v: pattern %v exceeds size limit", names, ex.P)
			}
		}
	}
}

// TestInstancesMatchOracle verifies that instance sets propagated through
// path joins equal what the independent subgraph matcher computes from
// scratch.
func TestInstancesMatchOracle(t *testing.T) {
	g := kbgen.Sample()
	for _, names := range pairNames {
		start, end := samplePair(t, g, names)
		for _, ex := range Explanations(g, start, end, Config{PathAlg: PathBasic, UnionAlg: UnionBasic}) {
			oracle := match.Find(g, ex.P, start, end, match.Options{})
			if len(oracle) != len(ex.Instances) {
				t.Errorf("%v: pattern %v: enumerated %d instances, matcher finds %d",
					names, ex.P, len(ex.Instances), len(oracle))
				continue
			}
			want := make(map[pattern.InstanceKey]struct{}, len(oracle))
			for _, in := range oracle {
				want[in.Key()] = struct{}{}
			}
			for _, in := range ex.Instances {
				if _, ok := want[in.Key()]; !ok {
					t.Errorf("%v: pattern %v: instance %v not found by matcher", names, ex.P, in)
				}
			}
		}
	}
}

// TestPathAlgorithmsAgree compares the three path enumerators directly.
func TestPathAlgorithmsAgree(t *testing.T) {
	g := kbgen.Sample()
	for _, names := range pairNames {
		start, end := samplePair(t, g, names)
		want := resultSignature(t, Paths(g, start, end, Config{PathAlg: PathNaive}))
		for _, pa := range []PathAlgorithm{PathBasic, PathPrioritized} {
			got := resultSignature(t, Paths(g, start, end, Config{PathAlg: pa}))
			diffSignatures(t, names[0]+"/"+names[1]+" "+pa.String(), want, got)
		}
	}
}

// TestKnownExplanations asserts the presence of the paper's flagship
// explanation shapes for Brad Pitt / Angelina Jolie: the spouse edge
// (Figure 4(a)), co-starring (4(b)) and starring+producing (4(c)).
func TestKnownExplanations(t *testing.T) {
	g := kbgen.Sample()
	start, end := samplePair(t, g, [2]string{"brad_pitt", "angelina_jolie"})
	es := Explanations(g, start, end, Config{PathAlg: PathPrioritized, UnionAlg: UnionPrune})

	spouse := g.LabelByName(kbgen.RelSpouse)
	starring := g.LabelByName(kbgen.RelStarring)
	producedBy := g.LabelByName(kbgen.RelProducedBy)

	wantKeys := map[string]string{
		"spouse": pattern.MustNew(g, 2, []pattern.Edge{
			{U: pattern.Start, V: pattern.End, Label: spouse},
		}).CanonicalKey(),
		"costar": pattern.MustNew(g, 3, []pattern.Edge{
			{U: 2, V: pattern.Start, Label: starring},
			{U: 2, V: pattern.End, Label: starring},
		}).CanonicalKey(),
		"costar+produce": pattern.MustNew(g, 3, []pattern.Edge{
			{U: 2, V: pattern.Start, Label: starring},
			{U: 2, V: pattern.End, Label: starring},
			{U: 2, V: pattern.Start, Label: producedBy},
		}).CanonicalKey(),
	}
	found := map[string]*pattern.Explanation{}
	for _, ex := range es {
		found[ex.P.CanonicalKey()] = ex
	}
	for name, key := range wantKeys {
		ex, ok := found[key]
		if !ok {
			t.Errorf("expected %s explanation, not found", name)
			continue
		}
		if len(ex.Instances) == 0 {
			t.Errorf("%s explanation has no instances", name)
		}
	}
	// Brad and Angelina co-star in exactly one sample film.
	if ex := found[wantKeys["costar"]]; ex != nil && len(ex.Instances) != 1 {
		t.Errorf("costar explanation has %d instances, want 1 (mr_and_mrs_smith)", len(ex.Instances))
	}
}

// TestPathsAreSimple checks every path explanation instance really is a
// simple path at the instance level.
func TestPathsAreSimple(t *testing.T) {
	g := kbgen.Sample()
	start, end := samplePair(t, g, [2]string{"brad_pitt", "tom_cruise"})
	for _, ex := range Paths(g, start, end, Config{PathAlg: PathBasic}) {
		if !ex.P.IsPath() {
			t.Errorf("non-path pattern from Paths: %v", ex.P)
		}
		for _, in := range ex.Instances {
			seen := map[kb.NodeID]bool{}
			for _, id := range in {
				if seen[id] {
					t.Errorf("instance %v repeats node %v", in, id)
				}
				seen[id] = true
			}
		}
	}
}
