package enumerate

import (
	"context"
	"strings"
	"testing"

	"rex/internal/fail"
)

// TestExtensionWorkerPanicContained proves a panic in a parallel
// extension worker surfaces as the query's error instead of crashing
// the process (or deadlocking the other workers on wg.Wait).
func TestExtensionWorkerPanicContained(t *testing.T) {
	defer fail.Reset()
	fail.EnableFunc("enumerate.extend", func() error {
		panic("injected worker bug")
	})
	tripped := false
	for seed := int64(0); seed < 10 && !tripped; seed++ {
		g, start, end := randomKB(seed)
		es, err := PathsContext(context.Background(), g, start, end,
			Config{PathAlg: PathPrioritized, Workers: 4})
		if err == nil {
			continue // this graph never reached the parallel branch
		}
		tripped = true
		if !strings.Contains(err.Error(), "panic") {
			t.Fatalf("seed %d: err = %v, want a panic-containment error", seed, err)
		}
		if es != nil {
			t.Fatalf("seed %d: partial results returned alongside panic error", seed)
		}
	}
	if !tripped {
		t.Fatal("no seed exercised the parallel extension branch; grow the test graphs")
	}
	// With the failpoint disarmed the same queries succeed again — the
	// containment path leaves no poisoned shared state behind.
	fail.Reset()
	for seed := int64(0); seed < 10; seed++ {
		g, start, end := randomKB(seed)
		if _, err := PathsContext(context.Background(), g, start, end,
			Config{PathAlg: PathPrioritized, Workers: 4}); err != nil {
			t.Fatalf("seed %d after reset: %v", seed, err)
		}
	}
}
