//go:build race

package enumerate

// raceEnabled lets alloc-count tests skip themselves: under the race
// detector sync.Pool randomly drops a quarter of Put calls, so pool-miss
// allocations show up in AllocsPerRun no matter how allocation-free the
// steady state really is.
const raceEnabled = true
