package enumerate

import (
	"testing"

	"rex/internal/kb"
	"rex/internal/kbgen"
)

// TestPatternSizeLimits verifies that the size limit n is respected and
// meaningful: smaller limits yield subsets of larger limits' results.
func TestPatternSizeLimits(t *testing.T) {
	g := kbgen.Sample()
	start := g.NodeByName("brad_pitt")
	end := g.NodeByName("angelina_jolie")

	var prevKeys map[string]struct{}
	prevCount := 0
	for _, n := range []int{2, 3, 4, 5} {
		es := Explanations(g, start, end, Config{MaxPatternSize: n})
		keys := make(map[string]struct{}, len(es))
		for _, ex := range es {
			if ex.P.NumVars() > n {
				t.Errorf("n=%d: pattern with %d vars", n, ex.P.NumVars())
			}
			keys[ex.P.CanonicalKey()] = struct{}{}
		}
		if prevKeys != nil {
			for k := range prevKeys {
				if _, ok := keys[k]; !ok {
					t.Errorf("n=%d lost a pattern found at the smaller limit", n)
				}
			}
			if len(keys) < prevCount {
				t.Errorf("n=%d produced fewer patterns (%d) than smaller limit (%d)",
					n, len(keys), prevCount)
			}
		}
		prevKeys, prevCount = keys, len(keys)
	}
}

// TestSizeTwoOnlyDirectEdges: at n=2 the only explanations are the
// direct relationships between the pair.
func TestSizeTwoOnlyDirectEdges(t *testing.T) {
	g := kbgen.Sample()
	start := g.NodeByName("brad_pitt")
	end := g.NodeByName("angelina_jolie")
	es := Explanations(g, start, end, Config{MaxPatternSize: 2})
	if len(es) != 1 {
		t.Fatalf("expected exactly the spouse edge, got %d explanations", len(es))
	}
	if !es[0].P.IsPath() || es[0].P.NumEdges() != 1 {
		t.Errorf("unexpected n=2 explanation: %v", es[0].P)
	}
}

// TestDisconnectedPair: entities with no connection within the limit
// produce no explanations under every algorithm.
func TestDisconnectedPair(t *testing.T) {
	g := kb.New()
	a := g.AddNode("a", "t")
	b := g.AddNode("b", "t")
	c := g.AddNode("c", "t")
	l := g.MustLabel("r", true)
	g.MustAddEdge(a, c, l) // b is isolated
	g.Freeze()
	for _, pa := range []PathAlgorithm{PathNaive, PathBasic, PathPrioritized} {
		for _, ua := range []UnionAlgorithm{UnionBasic, UnionPrune} {
			if es := Explanations(g, a, b, Config{PathAlg: pa, UnionAlg: ua}); len(es) != 0 {
				t.Errorf("%v+%v: %d explanations for a disconnected pair", pa, ua, len(es))
			}
		}
	}
	if es := NaiveEnum(g, a, b, 5); len(es) != 0 {
		t.Errorf("NaiveEnum: %d explanations for a disconnected pair", len(es))
	}
}

// TestAdjacentOnlyPair: a pair connected by exactly one edge.
func TestAdjacentOnlyPair(t *testing.T) {
	g := kb.New()
	a := g.AddNode("a", "t")
	b := g.AddNode("b", "t")
	l := g.MustLabel("r", true)
	g.MustAddEdge(a, b, l)
	g.Freeze()
	es := Explanations(g, a, b, Config{})
	if len(es) != 1 || es[0].P.NumVars() != 2 || len(es[0].Instances) != 1 {
		t.Fatalf("single-edge pair: %d explanations", len(es))
	}
	// Reverse direction: directed edge a→b does not explain (b, a)
	// as a start→end edge, but the path through it does exist (the
	// pattern has the edge oriented end→start).
	esRev := Explanations(g, b, a, Config{})
	if len(esRev) != 1 {
		t.Fatalf("reverse pair: %d explanations", len(esRev))
	}
	e := esRev[0].P.Edges()[0]
	if e.U != 1 || e.V != 0 {
		t.Errorf("reverse pattern edge: %+v (want end→start)", e)
	}
}

// TestSymmetricPairResults: explanations for (a,b) and (b,a) are
// mirrored — same number of patterns and instances.
func TestSymmetricPairResults(t *testing.T) {
	g := kbgen.Sample()
	a := g.NodeByName("kate_winslet")
	b := g.NodeByName("leonardo_dicaprio")
	fwd := Explanations(g, a, b, Config{})
	rev := Explanations(g, b, a, Config{})
	if len(fwd) != len(rev) {
		t.Fatalf("asymmetric explanation counts: %d vs %d", len(fwd), len(rev))
	}
	fi, ri := 0, 0
	for i := range fwd {
		fi += len(fwd[i].Instances)
		ri += len(rev[i].Instances)
	}
	if fi != ri {
		t.Fatalf("asymmetric instance totals: %d vs %d", fi, ri)
	}
}

// TestMinPRingStructure checks Theorem 2's consequence: every non-path
// minimal explanation decomposes into a smaller minimal explanation plus
// a covering path, which PathUnion realises ring by ring — so removing
// path explanations from the input removes all non-paths too.
func TestMinPRingStructure(t *testing.T) {
	g := kbgen.Sample()
	start := g.NodeByName("brad_pitt")
	end := g.NodeByName("angelina_jolie")
	paths := Paths(g, start, end, Config{})
	all := PathUnionBasic(paths, 5)
	if len(all) <= len(paths) {
		t.Skip("pair has no non-path explanations at this size limit")
	}
	// Union with no paths is empty; union with paths contains them all.
	if got := PathUnionBasic(nil, 5); len(got) != 0 {
		t.Errorf("union of no paths produced %d explanations", len(got))
	}
	keyset := map[string]bool{}
	for _, ex := range all {
		keyset[ex.P.CanonicalKey()] = true
	}
	for _, p := range paths {
		if !keyset[p.P.CanonicalKey()] {
			t.Error("a path explanation is missing from the union output")
		}
	}
}
