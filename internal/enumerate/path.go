package enumerate

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"rex/internal/fail"
	"rex/internal/kb"
	"rex/internal/obs"
	"rex/internal/pattern"
)

// Path enumeration at the instance level (Section 3.2). All three
// algorithms return exactly the set of simple paths between the targets
// with length ≤ maxLen; they differ in how much of the graph they touch
// and in what order, which is what Figure 7 measures.
//
// Paths are represented as fixed-size values throughout — a partial path
// is a small struct of inline arrays bounded by pattern.MaxVars, and a
// finished path is its comparable pathKey — so growing, copying and
// joining paths never touches the allocator; the only allocations are
// the amortised growth of the (pooled, reused) frontier and result
// buffers.
//
// Every enumerator checks its context at a bounded interval — every
// ctxCheckInterval expansion steps, not per edge — so an expired deadline
// aborts enumeration mid-flight at a cost that stays invisible on the
// happy path.

// ctxCheckInterval bounds the number of expansion steps between context
// checks in the enumeration loops.
const ctxCheckInterval = 256

// cancelCheck counts expansion steps and polls the context once per
// ctxCheckInterval steps. The zero value with a nil ctx never cancels.
type cancelCheck struct {
	ctx context.Context
	n   int
	err error
}

// step advances the counter and reports a sticky cancellation error on
// interval boundaries.
func (c *cancelCheck) step() error {
	if c.err != nil {
		return c.err
	}
	if c.ctx == nil {
		return nil
	}
	c.n++
	if c.n%ctxCheckInterval != 0 {
		return nil
	}
	c.err = c.ctx.Err()
	return c.err
}

// partial is a simple path grown from one target during enumeration:
// nodes[0] is the owning target. It is a fixed-size value — extending a
// path is a struct copy, not an allocation; lengths are bounded by the
// pattern size limit, which the Config normalisation caps at
// pattern.MaxVars nodes.
type partial struct {
	n     int8 // number of nodes ≥ 1; steps are n-1
	nodes [pattern.MaxVars]kb.NodeID
	steps [pattern.MaxVars - 1]kb.HalfEdge
}

func (p *partial) last() kb.NodeID { return p.nodes[p.n-1] }
func (p *partial) length() int     { return int(p.n) - 1 }

func (p *partial) contains(id kb.NodeID) bool {
	for i := int8(0); i < p.n; i++ {
		if p.nodes[i] == id {
			return true
		}
	}
	return false
}

// extend returns a copy of p grown by one half-edge.
func (p *partial) extend(he kb.HalfEdge) partial {
	np := *p
	np.nodes[np.n] = he.To
	np.steps[np.n-1] = he
	np.n++
	return np
}

// makePathKey packs a full start→end path into its comparable identity.
func makePathKey(nodes []kb.NodeID, steps []kb.HalfEdge) pathKey {
	var k pathKey
	k.n = int8(len(nodes))
	copy(k.nodes[:], nodes)
	for i, s := range steps {
		k.steps[i] = pathStepKey{label: s.Label, dir: s.Dir}
	}
	return k
}

// pathEnumNaive enumerates every length-limited simple path starting at
// start by depth-first search and keeps the ones that end at end. This is
// the strawman PathEnumNaive of Section 5.2: it explores the full
// neighborhood of the start entity regardless of the end entity.
func pathEnumNaive(ctx context.Context, g *kb.Graph, start, end kb.NodeID, maxLen int, out []pathKey) ([]pathKey, error) {
	if maxLen <= 0 || start == end {
		return out, nil
	}
	cur := partial{n: 1}
	cur.nodes[0] = start
	onPath := make(map[kb.NodeID]bool, maxLen+1)
	onPath[start] = true
	check := cancelCheck{ctx: ctx}
	var dfs func(at kb.NodeID) bool
	dfs = func(at kb.NodeID) bool {
		if check.step() != nil {
			return false
		}
		for _, he := range g.Neighbors(at) {
			if he.To == end {
				full := cur.extend(he)
				out = append(out, makePathKey(full.nodes[:full.n], full.steps[:full.n-1]))
				continue
			}
			if onPath[he.To] || cur.length()+1 >= maxLen {
				continue
			}
			onPath[he.To] = true
			cur.nodes[cur.n] = he.To
			cur.steps[cur.n-1] = he
			cur.n++
			ok := dfs(he.To)
			cur.n--
			onPath[he.To] = false
			if !ok {
				return false
			}
		}
		return true
	}
	dfs(start)
	if check.err != nil {
		return nil, check.err
	}
	return out, nil
}

// joinToKey stitches a forward partial path (from start) and a backward
// partial path (from end) meeting at the same terminal node into a full
// path key, or returns false when the two sides share an interior node.
// The backward path is reversed; each reversed step flips the half-edge
// perspective (Out becomes In and vice versa).
func joinToKey(fwd, bwd *partial) (pathKey, bool) {
	// Disjointness except at the meeting node. Both sides are short, so
	// the quadratic scan beats allocating a set.
	for i := int8(0); i < fwd.n; i++ {
		for j := int8(0); j < bwd.n; j++ {
			if fwd.nodes[i] != bwd.nodes[j] {
				continue
			}
			if i == fwd.n-1 && j == bwd.n-1 {
				continue // the meeting node itself
			}
			return pathKey{}, false
		}
	}
	var k pathKey
	k.n = fwd.n + bwd.n - 1
	copy(k.nodes[:], fwd.nodes[:fwd.n])
	for i := int8(0); i < fwd.n-1; i++ {
		k.steps[i] = pathStepKey{label: fwd.steps[i].Label, dir: fwd.steps[i].Dir}
	}
	// Walk the backward path from its terminal (== meet) toward end.
	at := fwd.n
	for i := bwd.n - 2; i >= 0; i-- {
		// bwd.steps[i] goes bwd.nodes[i] → bwd.nodes[i+1]; the full path
		// traverses it from bwd.nodes[i+1] to bwd.nodes[i].
		he := bwd.steps[i]
		k.nodes[at] = bwd.nodes[i]
		k.steps[at-1] = pathStepKey{label: he.Label, dir: flipDir(he.Dir)}
		at++
	}
	return k, true
}

func flipDir(d kb.Dir) kb.Dir {
	switch d {
	case kb.Out:
		return kb.In
	case kb.In:
		return kb.Out
	}
	return kb.Undirected
}

// canonicalSplit reports whether a forward length a and backward length b
// form the canonical split of a path of length a+b: a == ⌈(a+b)/2⌉.
// Joining only at the canonical split yields each full path exactly once.
func canonicalSplit(a, b int) bool { return a == b || a == b+1 }

// pathEnumBasic is the bidirectional enumeration adapted from BANKS
// (Section 3.2): all simple partial paths of length ≤ ⌈l/2⌉ grow from the
// start and ≤ ⌊l/2⌋ from the end, shorter first; opposite partial paths
// ending at a common node join into full paths.
func pathEnumBasic(ctx context.Context, g *kb.Graph, start, end kb.NodeID, maxLen int, out []pathKey) ([]pathKey, error) {
	if maxLen <= 0 || start == end {
		return out, nil
	}
	capFwd := (maxLen + 1) / 2
	capBwd := maxLen / 2

	check := &cancelCheck{ctx: ctx}
	fwd, err := collectPartials(g, start, end, capFwd, forwardSide, check)
	if err != nil {
		return nil, err
	}
	bwd, err := collectPartials(g, end, start, capBwd, backwardSide, check)
	if err != nil {
		return nil, err
	}

	byMeetBwd := make(map[kb.NodeID][]partial)
	for _, p := range bwd {
		byMeetBwd[p.last()] = append(byMeetBwd[p.last()], p)
	}
	for i := range fwd {
		f := &fwd[i]
		if err := check.step(); err != nil {
			return nil, err
		}
		bs := byMeetBwd[f.last()]
		for j := range bs {
			b := &bs[j]
			if !canonicalSplit(f.length(), b.length()) {
				continue
			}
			if f.length()+b.length() == 0 {
				continue
			}
			if k, ok := joinToKey(f, b); ok {
				out = append(out, k)
			}
		}
	}
	return out, nil
}

// side distinguishes expansion rules for the two targets.
type side int

const (
	forwardSide  side = 0 // grows from start; may terminate at end but not pass through it
	backwardSide side = 1 // grows from end; never touches start
)

// collectPartials breadth-first enumerates the simple partial paths of
// length ≤ cap from origin. other is the opposite target: the forward
// side records paths that reach it but never expands beyond; the backward
// side skips it entirely (a path suffix never contains the start).
func collectPartials(g *kb.Graph, origin, other kb.NodeID, cap int, s side, check *cancelCheck) ([]partial, error) {
	seed := partial{n: 1}
	seed.nodes[0] = origin
	out := []partial{seed}
	frontier := []partial{seed}
	for depth := 0; depth < cap && len(frontier) > 0; depth++ {
		var next []partial
		for i := range frontier {
			p := &frontier[i]
			if err := check.step(); err != nil {
				return nil, err
			}
			if p.last() == other {
				continue // terminal: never expand beyond the opposite target
			}
			for _, he := range g.Neighbors(p.last()) {
				if he.To == origin || p.contains(he.To) {
					continue
				}
				if s == backwardSide && he.To == other {
					continue
				}
				np := p.extend(he)
				out = append(out, np)
				next = append(next, np)
			}
		}
		frontier = next
	}
	return out, nil
}

// pathEnumPrioritized is the BANKS2 adaptation: bidirectional expansion
// where the next node to expand is chosen by activation score. A target's
// initial activation is 1/degree; expanding a node zeroes its activation
// and spreads it to each neighbor divided by the neighbor's degree, so
// expansion through high-degree hubs is postponed — ideally until the
// opposite side has met the frontier more cheaply.
//
// The frontier is processed in batches: up to `workers` queue entries are
// popped together, each entry's path extensions are computed concurrently
// on a worker pool, and the results are applied (joins, bookkeeping,
// activation spreading) sequentially in pop order. Shared state is only
// read during the concurrent phase and only mutated during the sequential
// phase, and pop order is deterministic, so the enumerated path set and
// its grouping are identical for every worker count; with workers == 1
// the batch size is 1 and the algorithm is exactly the sequential
// original. Batching changes the traversal order relative to
// one-at-a-time popping, never the result set (every partial path's
// terminal is re-activated by the expansion that created it, so every
// under-cap partial is eventually expanded regardless of order).
//
// All per-query storage — the node-state arena and index, the priority
// queue, the dedup set and the per-worker extension buffers — lives in
// the pooled enumState and is reused across queries.
//
// The budget makes the search anytime: expansions are counted per
// expanded node and the deadline is polled per popped entry; when
// either expires the current batch finishes (its nodes were already
// marked expanded) and the paths completed so far are returned with
// truncated = true. Because activation ordering postpones high-degree
// hubs, the truncated set holds exactly the cheap, high-value paths the
// paper's anytime argument (Section 5) keeps. An expansion budget
// forces the serial batch size, so its truncation point — and therefore
// the returned set — is identical for every Workers setting and is a
// prefix of any larger budget's expansion sequence.
func (st *enumState) pathEnumPrioritized(ctx context.Context, g *kb.Graph, start, end kb.NodeID, maxLen, workers int, bud Budget) ([]pathKey, bool, error) {
	st.resetPrio()
	if maxLen <= 0 || start == end {
		return nil, false, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if bud.MaxExpansions > 0 {
		// Deterministic anytime mode: batch size 1 is exactly the
		// sequential algorithm, so "first N expansions" is well defined
		// independent of the worker count.
		workers = 1
	}
	hasDeadline := !bud.Deadline.IsZero()
	tr := obs.FromContext(ctx)
	expansions := 0
	truncated := false
	caps := [2]int{(maxLen + 1) / 2, maxLen / 2}
	targets := [2]kb.NodeID{start, end}

	for s := forwardSide; s <= backwardSide; s++ {
		deg := g.Degree(targets[s])
		a := 1.0
		if deg > 0 {
			a = 1.0 / float64(deg)
		}
		seed := partial{n: 1}
		seed.nodes[0] = targets[s]
		st.addPartial(s, seed, a)
	}

	if cap(st.results) < workers {
		st.results = append(st.results[:cap(st.results)], make([][]partial, workers-cap(st.results))...)
	}
	results := st.results[:workers]
	jobs := st.jobs[:0]

	check := cancelCheck{ctx: ctx}
	for st.pq.Len() > 0 {
		// Sequential phase 1: pop a batch and snapshot each entry's
		// pending work, marking it expanded. The cancellation check
		// steps once per popped node — the same expansion-step
		// granularity as the other enumerators.
		jobs = jobs[:0]
		pendingTotal := 0
		for st.pq.Len() > 0 && len(jobs) < workers {
			if bud.MaxExpansions > 0 && expansions >= bud.MaxExpansions {
				truncated = true
				tr.Truncated(obs.StageEnumerate, obs.TruncExpansions)
				break
			}
			if hasDeadline && time.Now().After(bud.Deadline) {
				truncated = true
				tr.Truncated(obs.StageEnumerate, obs.TruncDeadline)
				break
			}
			if err := check.step(); err != nil {
				st.jobs = jobs
				return nil, false, err
			}
			e := heap.Pop(&st.pq).(actEntry)
			si := st.stateFor(e.node)
			ns := &st.states[si]
			if ns.act[e.s] == 0 {
				continue // already expanded since this entry was pushed
			}
			spread := ns.act[e.s]
			ns.act[e.s] = 0

			// The forward side never expands beyond the end entity; the
			// backward side never sits on the start entity at all.
			if e.s == forwardSide && e.node == end {
				continue
			}
			pending := ns.partial[e.s][ns.expanded[e.s]:]
			ns.expanded[e.s] = int32(len(ns.partial[e.s]))
			jobs = append(jobs, expandJob{node: e.node, s: e.s, spread: spread, pending: pending})
			pendingTotal += len(pending)
			expansions++
		}

		// Concurrent phase: compute every job's extensions into the
		// per-worker reused buffers. Tiny batches run inline — goroutine
		// fan-out only pays off once there is real expansion work to
		// split.
		if len(jobs) > 1 && pendingTotal >= 16 {
			// Worker panics are contained and surfaced as this query's
			// error (first one wins): a bug tripped by one pathological
			// pair must fail that query, not take down the process every
			// other request lives in.
			var wg sync.WaitGroup
			var panicMu sync.Mutex
			var panicErr error
			for i := range jobs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicErr == nil {
								panicErr = fmt.Errorf("enumerate: panic in extension worker: %v", r)
							}
							panicMu.Unlock()
						}
					}()
					// Failpoint for the containment tests: armed with a
					// panicking function it simulates a worker bug.
					_ = fail.Hit("enumerate.extend")
					results[i] = extendJobPaths(g, &jobs[i], caps, targets, results[i][:0], bud.Deadline)
				}(i)
			}
			wg.Wait()
			if panicErr != nil {
				st.jobs = jobs
				return nil, false, panicErr
			}
		} else {
			for i := range jobs {
				results[i] = extendJobPaths(g, &jobs[i], caps, targets, results[i][:0], bud.Deadline)
			}
		}

		// Sequential phase 2: apply in pop order — register extensions
		// (joining against the opposite side) and spread activation to
		// neighbors with pending work.
		for i := range jobs {
			j := &jobs[i]
			for r := range results[i] {
				st.addPartial(j.s, results[i][r], 0)
			}
			for _, he := range g.Neighbors(j.node) {
				if he.To == start || he.To == end {
					continue
				}
				ni, ok := st.stateIdx[he.To]
				if !ok {
					continue // never touched: nothing pending on this side
				}
				ns := &st.states[ni]
				if len(ns.partial[j.s]) == int(ns.expanded[j.s]) {
					continue // nothing pending on this side
				}
				d := g.Degree(he.To)
				inc := j.spread
				if d > 0 {
					inc = j.spread / float64(d)
				}
				ns.act[j.s] += inc
				heap.Push(&st.pq, actEntry{node: he.To, s: j.s, act: ns.act[j.s]})
			}
			// Partial paths terminating at the opposite target still need
			// to be joinable (they were, at add time) but never expand;
			// nothing further to do for them.
		}
		if truncated {
			// Budget exhausted: the popped batch was applied in full (its
			// nodes were marked expanded before the cut), so st.out holds
			// every path completed by the admitted expansions.
			break
		}
	}
	st.jobs = jobs
	tr.AddExpansions(int64(expansions))
	return st.out, truncated, nil
}

// extendJobPaths computes the new partial paths one job contributes into
// dst. It only reads the graph and the job's snapshot, so jobs run in
// parallel. A non-zero deadline is polled at a bounded interval so one
// huge expansion (a high-degree hub with many pending paths) cannot
// overshoot the anytime budget by its own full cost; cutting the
// extension set short only shrinks the truncated result, which the
// budget contract allows.
func extendJobPaths(g *kb.Graph, j *expandJob, caps [2]int, targets [2]kb.NodeID, dst []partial, deadline time.Time) []partial {
	checked := 0
	for i := range j.pending {
		p := &j.pending[i]
		if p.length() >= caps[j.s] {
			continue
		}
		for _, he := range g.Neighbors(j.node) {
			checked++
			if checked%ctxCheckInterval == 0 && !deadline.IsZero() && time.Now().After(deadline) {
				return dst
			}
			if he.To == targets[j.s] || p.contains(he.To) {
				continue
			}
			if j.s == backwardSide && he.To == targets[forwardSide] {
				continue
			}
			dst = append(dst, p.extend(he))
		}
	}
	return dst
}

// addPartial registers a new partial path at its terminal node, joins it
// against the opposite side, and makes the terminal expandable. Only the
// sequential phases call it.
func (st *enumState) addPartial(s side, p partial, activation float64) {
	x := p.last()
	si := st.stateFor(x)
	ns := &st.states[si]
	ns.partial[s] = append(ns.partial[s], p)
	// join the fresh path with every opposite-side partial already at x,
	// using the canonical split so each full path is produced once.
	opp := ns.partial[1-s]
	for qi := range opp {
		q := &opp[qi]
		var f, b *partial
		if s == forwardSide {
			f, b = &p, q
		} else {
			f, b = q, &p
		}
		if !canonicalSplit(f.length(), b.length()) || f.length()+b.length() == 0 {
			continue
		}
		if k, ok := joinToKey(f, b); ok {
			if _, dup := st.seen[k]; !dup {
				st.seen[k] = struct{}{}
				st.out = append(st.out, k)
			}
		}
	}
	if activation > 0 {
		ns.act[s] += activation
		heap.Push(&st.pq, actEntry{node: x, s: s, act: ns.act[s]})
	}
}

// actEntry is a priority-queue element for activation-driven expansion.
type actEntry struct {
	node kb.NodeID
	s    side
	act  float64
}

// actQueue is a max-heap over activation scores with deterministic
// tie-breaking by (node, side).
type actQueue []actEntry

func (q actQueue) Len() int { return len(q) }
func (q actQueue) Less(i, j int) bool {
	if q[i].act != q[j].act {
		return q[i].act > q[j].act
	}
	if q[i].node != q[j].node {
		return q[i].node < q[j].node
	}
	return q[i].s < q[j].s
}
func (q actQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *actQueue) Push(x any)   { *q = append(*q, x.(actEntry)) }
func (q *actQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}
