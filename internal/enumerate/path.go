package enumerate

import (
	"container/heap"
	"context"
	"runtime"
	"sync"

	"rex/internal/kb"
)

// Path enumeration at the instance level (Section 3.2). All three
// algorithms return exactly the set of simple paths between the targets
// with length ≤ maxLen; they differ in how much of the graph they touch
// and in what order, which is what Figure 7 measures.
//
// Every enumerator checks its context at a bounded interval — every
// ctxCheckInterval expansion steps, not per edge — so an expired deadline
// aborts enumeration mid-flight at a cost that stays invisible on the
// happy path.

// ctxCheckInterval bounds the number of expansion steps between context
// checks in the enumeration loops.
const ctxCheckInterval = 256

// cancelCheck counts expansion steps and polls the context once per
// ctxCheckInterval steps. The zero value with a nil ctx never cancels.
type cancelCheck struct {
	ctx context.Context
	n   int
	err error
}

// step advances the counter and reports a sticky cancellation error on
// interval boundaries.
func (c *cancelCheck) step() error {
	if c.err != nil {
		return c.err
	}
	if c.ctx == nil {
		return nil
	}
	c.n++
	if c.n%ctxCheckInterval != 0 {
		return nil
	}
	c.err = c.ctx.Err()
	return c.err
}

// pathEnumNaive enumerates every length-limited simple path starting at
// start by depth-first search and keeps the ones that end at end. This is
// the strawman PathEnumNaive of Section 5.2: it explores the full
// neighborhood of the start entity regardless of the end entity.
func pathEnumNaive(ctx context.Context, g *kb.Graph, start, end kb.NodeID, maxLen int) ([]pathInst, error) {
	if maxLen <= 0 || start == end {
		return nil, nil
	}
	var out []pathInst
	nodes := []kb.NodeID{start}
	var steps []kb.HalfEdge
	onPath := make(map[kb.NodeID]bool, maxLen+1)
	onPath[start] = true
	check := cancelCheck{ctx: ctx}
	var dfs func(at kb.NodeID) bool
	dfs = func(at kb.NodeID) bool {
		if check.step() != nil {
			return false
		}
		for _, he := range g.Neighbors(at) {
			if he.To == end {
				full := pathInst{
					nodes: append(append([]kb.NodeID{}, nodes...), end),
					steps: append(append([]kb.HalfEdge{}, steps...), he),
				}
				out = append(out, full)
				continue
			}
			if onPath[he.To] || len(steps)+1 >= maxLen {
				continue
			}
			onPath[he.To] = true
			nodes = append(nodes, he.To)
			steps = append(steps, he)
			ok := dfs(he.To)
			nodes = nodes[:len(nodes)-1]
			steps = steps[:len(steps)-1]
			onPath[he.To] = false
			if !ok {
				return false
			}
		}
		return true
	}
	dfs(start)
	if check.err != nil {
		return nil, check.err
	}
	return out, nil
}

// partialPath is a simple path grown from one target during bidirectional
// enumeration.
type partialPath struct {
	nodes []kb.NodeID // nodes[0] is the owning target
	steps []kb.HalfEdge
}

func (p partialPath) last() kb.NodeID { return p.nodes[len(p.nodes)-1] }
func (p partialPath) length() int     { return len(p.steps) }

func (p partialPath) contains(id kb.NodeID) bool {
	for _, n := range p.nodes {
		if n == id {
			return true
		}
	}
	return false
}

// extend returns a copy of p grown by one half-edge.
func (p partialPath) extend(he kb.HalfEdge) partialPath {
	nodes := make([]kb.NodeID, len(p.nodes)+1)
	copy(nodes, p.nodes)
	nodes[len(p.nodes)] = he.To
	steps := make([]kb.HalfEdge, len(p.steps)+1)
	copy(steps, p.steps)
	steps[len(p.steps)] = he
	return partialPath{nodes: nodes, steps: steps}
}

// joinPaths stitches a forward partial path (from start) and a backward
// partial path (from end) meeting at the same terminal node into a full
// path instance, or returns false when the two sides share an interior
// node. The backward path is reversed; each reversed step flips the
// half-edge perspective (Out becomes In and vice versa).
func joinPaths(fwd, bwd partialPath) (pathInst, bool) {
	// Disjointness except at the meeting node. Both sides are short, so
	// the quadratic scan beats allocating a set.
	for i, n := range fwd.nodes {
		for j, m := range bwd.nodes {
			if n != m {
				continue
			}
			if i == len(fwd.nodes)-1 && j == len(bwd.nodes)-1 {
				continue // the meeting node itself
			}
			return pathInst{}, false
		}
	}
	total := fwd.length() + bwd.length()
	nodes := make([]kb.NodeID, 0, total+1)
	steps := make([]kb.HalfEdge, 0, total)
	nodes = append(nodes, fwd.nodes...)
	steps = append(steps, fwd.steps...)
	// Walk the backward path from its terminal (== meet) toward end.
	for i := len(bwd.steps) - 1; i >= 0; i-- {
		// bwd.steps[i] goes bwd.nodes[i] → bwd.nodes[i+1]; the full path
		// traverses it from bwd.nodes[i+1] to bwd.nodes[i].
		he := bwd.steps[i]
		flipped := kb.HalfEdge{To: bwd.nodes[i], Label: he.Label, Dir: flipDir(he.Dir)}
		nodes = append(nodes, bwd.nodes[i])
		steps = append(steps, flipped)
	}
	return pathInst{nodes: nodes, steps: steps}, true
}

func flipDir(d kb.Dir) kb.Dir {
	switch d {
	case kb.Out:
		return kb.In
	case kb.In:
		return kb.Out
	}
	return kb.Undirected
}

// canonicalSplit reports whether a forward length a and backward length b
// form the canonical split of a path of length a+b: a == ⌈(a+b)/2⌉.
// Joining only at the canonical split yields each full path exactly once.
func canonicalSplit(a, b int) bool { return a == b || a == b+1 }

// pathEnumBasic is the bidirectional enumeration adapted from BANKS
// (Section 3.2): all simple partial paths of length ≤ ⌈l/2⌉ grow from the
// start and ≤ ⌊l/2⌋ from the end, shorter first; opposite partial paths
// ending at a common node join into full paths.
func pathEnumBasic(ctx context.Context, g *kb.Graph, start, end kb.NodeID, maxLen int) ([]pathInst, error) {
	if maxLen <= 0 || start == end {
		return nil, nil
	}
	capFwd := (maxLen + 1) / 2
	capBwd := maxLen / 2

	check := &cancelCheck{ctx: ctx}
	fwd, err := collectPartials(g, start, end, capFwd, forwardSide, check)
	if err != nil {
		return nil, err
	}
	bwd, err := collectPartials(g, end, start, capBwd, backwardSide, check)
	if err != nil {
		return nil, err
	}

	byMeetBwd := make(map[kb.NodeID][]partialPath)
	for _, p := range bwd {
		byMeetBwd[p.last()] = append(byMeetBwd[p.last()], p)
	}
	var out []pathInst
	for _, f := range fwd {
		if err := check.step(); err != nil {
			return nil, err
		}
		for _, b := range byMeetBwd[f.last()] {
			if !canonicalSplit(f.length(), b.length()) {
				continue
			}
			if f.length()+b.length() == 0 {
				continue
			}
			if full, ok := joinPaths(f, b); ok {
				out = append(out, full)
			}
		}
	}
	return out, nil
}

// side distinguishes expansion rules for the two targets.
type side int

const (
	forwardSide  side = 0 // grows from start; may terminate at end but not pass through it
	backwardSide side = 1 // grows from end; never touches start
)

// collectPartials breadth-first enumerates the simple partial paths of
// length ≤ cap from origin. other is the opposite target: the forward
// side records paths that reach it but never expands beyond; the backward
// side skips it entirely (a path suffix never contains the start).
func collectPartials(g *kb.Graph, origin, other kb.NodeID, cap int, s side, check *cancelCheck) ([]partialPath, error) {
	seed := partialPath{nodes: []kb.NodeID{origin}}
	out := []partialPath{seed}
	frontier := []partialPath{seed}
	for depth := 0; depth < cap && len(frontier) > 0; depth++ {
		var next []partialPath
		for _, p := range frontier {
			if err := check.step(); err != nil {
				return nil, err
			}
			if p.last() == other {
				continue // terminal: never expand beyond the opposite target
			}
			for _, he := range g.Neighbors(p.last()) {
				if he.To == origin || p.contains(he.To) {
					continue
				}
				if s == backwardSide && he.To == other {
					continue
				}
				np := p.extend(he)
				out = append(out, np)
				next = append(next, np)
			}
		}
		frontier = next
	}
	return out, nil
}

// pathEnumPrioritized is the BANKS2 adaptation: bidirectional expansion
// where the next node to expand is chosen by activation score. A target's
// initial activation is 1/degree; expanding a node zeroes its activation
// and spreads it to each neighbor divided by the neighbor's degree, so
// expansion through high-degree hubs is postponed — ideally until the
// opposite side has met the frontier more cheaply.
//
// The frontier is processed in batches: up to `workers` queue entries are
// popped together, each entry's path extensions — the allocation-heavy
// part of expansion — are computed concurrently on a worker pool, and the
// results are applied (joins, bookkeeping, activation spreading)
// sequentially in pop order. Shared state is only read during the
// concurrent phase and only mutated during the sequential phase, and pop
// order is deterministic, so the enumerated path set and its grouping are
// identical for every worker count; with workers == 1 the batch size is 1
// and the algorithm is exactly the sequential original. Batching changes
// the traversal order relative to one-at-a-time popping, never the
// result set (every partial path's terminal is re-activated by the
// expansion that created it, so every under-cap partial is eventually
// expanded regardless of order).
func pathEnumPrioritized(ctx context.Context, g *kb.Graph, start, end kb.NodeID, maxLen, workers int) ([]pathInst, error) {
	if maxLen <= 0 || start == end {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	caps := [2]int{(maxLen + 1) / 2, maxLen / 2}
	targets := [2]kb.NodeID{start, end}

	type nodeState struct {
		partial  [2][]partialPath
		expanded [2]int // partial[s][:expanded[s]] have been expanded
		act      [2]float64
	}
	states := make(map[kb.NodeID]*nodeState)
	get := func(id kb.NodeID) *nodeState {
		st, ok := states[id]
		if !ok {
			st = &nodeState{}
			states[id] = st
		}
		return st
	}

	pq := &actQueue{}
	heap.Init(pq)

	var out []pathInst
	seen := make(map[pathKey]struct{})

	// join merges a freshly added partial path on side s at node x with
	// every opposite-side partial already at x, using the canonical split
	// so each full path is produced once.
	join := func(x kb.NodeID, s side, p partialPath) {
		st := get(x)
		for _, q := range st.partial[1-s] {
			var f, b partialPath
			if s == forwardSide {
				f, b = p, q
			} else {
				f, b = q, p
			}
			if !canonicalSplit(f.length(), b.length()) || f.length()+b.length() == 0 {
				continue
			}
			if full, ok := joinPaths(f, b); ok {
				k := full.key()
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					full.k, full.hasKey = k, true // memoise for groupPaths
					out = append(out, full)
				}
			}
		}
	}

	// add registers a new partial path at its terminal node, joins it
	// against the opposite side, and makes the terminal expandable. Only
	// the sequential phases call it.
	add := func(s side, p partialPath, activation float64) {
		x := p.last()
		st := get(x)
		st.partial[s] = append(st.partial[s], p)
		join(x, s, p)
		if activation > 0 {
			st.act[s] += activation
			heap.Push(pq, actEntry{node: x, s: s, act: st.act[s]})
		}
	}

	for s := forwardSide; s <= backwardSide; s++ {
		deg := g.Degree(targets[s])
		a := 1.0
		if deg > 0 {
			a = 1.0 / float64(deg)
		}
		add(s, partialPath{nodes: []kb.NodeID{targets[s]}}, a)
	}

	// expandJob is one popped frontier entry: the node to expand on one
	// side, its pending partial paths (snapshotted sequentially before the
	// concurrent phase), and the activation it will spread.
	type expandJob struct {
		node    kb.NodeID
		s       side
		spread  float64
		pending []partialPath
	}
	jobs := make([]expandJob, 0, workers)
	results := make([][]partialPath, workers)

	// extensions computes the new partial paths one job contributes. It
	// only reads the graph and the job's snapshot, so jobs run in
	// parallel.
	extensions := func(j expandJob) []partialPath {
		var exts []partialPath
		for _, p := range j.pending {
			if p.length() >= caps[j.s] {
				continue
			}
			for _, he := range g.Neighbors(j.node) {
				if he.To == targets[j.s] || p.contains(he.To) {
					continue
				}
				if j.s == backwardSide && he.To == targets[forwardSide] {
					continue
				}
				exts = append(exts, p.extend(he))
			}
		}
		return exts
	}

	check := cancelCheck{ctx: ctx}
	for pq.Len() > 0 {
		// Sequential phase 1: pop a batch and snapshot each entry's
		// pending work, marking it expanded. The cancellation check
		// steps once per popped node — the same expansion-step
		// granularity as the other enumerators.
		jobs = jobs[:0]
		pendingTotal := 0
		for pq.Len() > 0 && len(jobs) < workers {
			if err := check.step(); err != nil {
				return nil, err
			}
			e := heap.Pop(pq).(actEntry)
			st := get(e.node)
			if st.act[e.s] == 0 {
				continue // already expanded since this entry was pushed
			}
			spread := st.act[e.s]
			st.act[e.s] = 0

			// The forward side never expands beyond the end entity; the
			// backward side never sits on the start entity at all.
			if e.s == forwardSide && e.node == end {
				continue
			}
			pending := st.partial[e.s][st.expanded[e.s]:]
			st.expanded[e.s] = len(st.partial[e.s])
			jobs = append(jobs, expandJob{node: e.node, s: e.s, spread: spread, pending: pending})
			pendingTotal += len(pending)
		}

		// Concurrent phase: compute every job's extensions. Tiny batches
		// run inline — goroutine fan-out only pays off once there is real
		// expansion work to split.
		if len(jobs) > 1 && pendingTotal >= 16 {
			var wg sync.WaitGroup
			for i := range jobs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i] = extensions(jobs[i])
				}(i)
			}
			wg.Wait()
		} else {
			for i := range jobs {
				results[i] = extensions(jobs[i])
			}
		}

		// Sequential phase 2: apply in pop order — register extensions
		// (joining against the opposite side) and spread activation to
		// neighbors with pending work.
		for i, j := range jobs {
			for _, np := range results[i] {
				add(j.s, np, 0)
			}
			results[i] = nil
			for _, he := range g.Neighbors(j.node) {
				if he.To == start || he.To == end {
					continue
				}
				nst := get(he.To)
				if len(nst.partial[j.s]) == nst.expanded[j.s] {
					continue // nothing pending on this side
				}
				d := g.Degree(he.To)
				inc := j.spread
				if d > 0 {
					inc = j.spread / float64(d)
				}
				nst.act[j.s] += inc
				heap.Push(pq, actEntry{node: he.To, s: j.s, act: nst.act[j.s]})
			}
			// Partial paths terminating at the opposite target still need
			// to be joinable (they were, at add time) but never expand;
			// nothing further to do for them.
		}
	}
	return out, nil
}

// actEntry is a priority-queue element for activation-driven expansion.
type actEntry struct {
	node kb.NodeID
	s    side
	act  float64
}

// actQueue is a max-heap over activation scores with deterministic
// tie-breaking by (node, side).
type actQueue []actEntry

func (q actQueue) Len() int { return len(q) }
func (q actQueue) Less(i, j int) bool {
	if q[i].act != q[j].act {
		return q[i].act > q[j].act
	}
	if q[i].node != q[j].node {
		return q[i].node < q[j].node
	}
	return q[i].s < q[j].s
}
func (q actQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *actQueue) Push(x any)   { *q = append(*q, x.(actEntry)) }
func (q *actQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}
