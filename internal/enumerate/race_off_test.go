//go:build !race

package enumerate

// See race_on_test.go.
const raceEnabled = false
